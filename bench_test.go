// Package repro's top-level benchmarks regenerate every table and figure of
// the paper at the tiny preset — one bench per artifact, so
//
//	go test -bench=. -benchmem
//
// exercises the full harness. DESIGN.md maps each bench to its paper
// artifact; run cmd/fedsim with -preset medium/paper for report-quality
// numbers.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/testutil"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		experiments.ClearCache() // honest timing: no memoized runs
		if _, err := experiments.RunByID(id, experiments.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates paper Table 1 (accuracy + variance, 5 methods
// × 7 dataset configurations).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates paper Table 2 (bytes to target accuracy).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFigure2 regenerates paper Figure 2 (convergence timelines +
// time-to-target bars).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFigure3 regenerates paper Figure 3 (non-IID level sweep).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates paper Figure 4 (accuracy vs uploaded bytes).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates paper Figure 5 (compression precision sweep).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates paper Figure 6 (weighted vs uniform
// aggregation).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates paper Figure 7 (large-scale FEMNIST, six
// methods including ASO-Fed).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates paper Figure 8 (Reddit LSTM accuracy/loss).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates paper Figure 9 (client participation sweep).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates paper Figure 10 (tier-size distributions).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkSchedulerWorkers measures the experiment scheduler's parallel
// dispatch: the same Figure 6 cell batch with one worker vs GOMAXPROCS
// workers. Reports are byte-identical either way (see
// internal/experiments/scheduler_test.go); only wall-clock changes.
func BenchmarkSchedulerWorkers(b *testing.B) {
	run := func(b *testing.B, workers int) {
		experiments.SetWorkers(workers)
		defer experiments.SetWorkers(0)
		for i := 0; i < b.N; i++ {
			experiments.ClearCache()
			if _, err := experiments.RunByID("fig6", experiments.Tiny); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

func benchEnv(b testing.TB, c codec.Codec, seed uint64) *fl.Env {
	b.Helper()
	fed, err := dataset.FashionLike(15, 2, dataset.ScaleSmall, seed)
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients: 15, NumUnstable: 1, DropHorizon: 3000,
		SecPerBatch: 0.5, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 16 << 20,
		Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	env, err := fl.NewEnv(fed, cluster, factory, fl.RunConfig{
		Rounds: 20, ClientsPerRound: 5, LocalEpochs: 2, BatchSize: 8,
		Lambda: 0.4, LearningRate: 0.005, NumTiers: 5,
		Codec: c, EvalEvery: 5, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// benchRun executes one registry method repeatedly over a reusable bench
// environment: the env is built once outside the timed region and reset
// between iterations, so the measurement is the run itself — training,
// aggregation, simulation — not dataset generation or model construction.
// TestEnvReuseDeterministic pins that every iteration is bit-identical to
// a run on a freshly built env.
func benchRun(b *testing.B, name string, c codec.Codec, seed uint64) {
	b.Helper()
	env := benchEnv(b, c, seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ResetState()
		if _, err := fl.Run(name, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMethod measures one full run of every registry method at the
// tiny-scale environment — the per-method perf trajectory CI records into
// BENCH_fl.json — plus the composed async-family variants that exist only
// as aggregation specs (DESIGN.md §1g): the per-update staleness fold and
// the asyncsgd server step, both through the fedbuff buffered pacer.
func BenchmarkMethod(b *testing.B) {
	for _, name := range fl.MethodNames() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			benchRun(b, name, codec.Raw{}, 7)
		})
	}
	for _, c := range []struct{ name, agg string }{
		{"fedasync-fedbuff", "fedasync:poly:0.5"},
		{"asyncsgd-fedbuff", "asyncsgd:poly:0.5"},
	} {
		m, err := fl.Compose("fedasync", "", "fedbuff", c.agg, c.name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			env := benchEnv(b, codec.Raw{}, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.ResetState()
				if _, err := m.Run(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// bytesPerRun reports the mean heap bytes allocated per call of f, after a
// warm-up call has grown pools and scratch to steady-state shape.
func bytesPerRun(runs int, f func()) uint64 {
	f()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
}

// TestMethodRunAllocBudget pins the steady-state heap traffic of one full
// method run — the exact workload BenchmarkMethod times — under explicit
// bytes-per-op and allocs-per-op ceilings. The zero-alloc hot path brought
// fedavg from ~15.5 MB and ~14k allocs per run down to ~0.23 MB and ~550;
// the ceilings sit ~2x above current steady state, so normal drift passes
// but any reintroduced per-round model-sized allocation (1786 params ×
// 8 bytes × clients × rounds blows the budget immediately) fails here with
// an attributable number instead of waiting for the CI bench gate.
func TestMethodRunAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("-race instruments allocations; budgets are meaningless")
	}
	if testing.Short() {
		t.Skip("full method runs in -short")
	}
	budgets := []struct {
		method    string
		maxBytes  uint64
		maxAllocs float64
	}{
		{"fedavg", 500_000, 1100},
		{"fedat", 1_000_000, 2600},
		{"fedasync", 1_500_000, 2600},
	}
	for _, bud := range budgets {
		t.Run(bud.method, func(t *testing.T) {
			env := benchEnv(t, codec.Raw{}, 7)
			run := func() {
				env.ResetState()
				if _, err := fl.Run(bud.method, env); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm up pools and caches
			if got := bytesPerRun(3, run); got > bud.maxBytes {
				t.Errorf("%s allocates %d bytes per run, budget %d", bud.method, got, bud.maxBytes)
			}
			if got := testing.AllocsPerRun(3, run); got > bud.maxAllocs {
				t.Errorf("%s makes %.0f allocs per run, budget %.0f", bud.method, got, bud.maxAllocs)
			}
		})
	}
}

// BenchmarkPopulation measures constructing the LAZY environment — dataset
// source, population, pooled-worker env — at three population sizes up to
// one million clients. The custom bytes/client metric is the per-client
// footprint of what construction actually retains (prototype tables, size
// and part arrays, drop times); laziness holding means it stays a few
// dozen bytes flat while n grows 1000x, where the eager construction costs
// ~10KB per client before the first round starts. CI records the standard
// bytes-per-op column into BENCH_trajectory.json, so an accidental O(n)
// materialization shows up as a step in the 1M rung's trajectory.
func BenchmarkPopulation(b *testing.B) {
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			dcfg := dataset.Config{
				Name: "benchlike", NumClients: n, Classes: 10, SamplesPerClient: 24,
				ClassesPerClient: 2, Seed: 7, ImgC: 1, ImgH: 10, ImgW: 10,
				Signal: 0.34, Noise: 1.0,
			}
			ccfg := simnet.ClusterConfig{
				NumClients: n, NumUnstable: n / 10, DropHorizon: 20000,
				SecPerBatch: 1.0, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 16 << 20,
				Seed: 7,
			}
			rcfg := fl.RunConfig{
				Rounds: 8, ClientsPerRound: 10, LocalEpochs: 1, BatchSize: 10,
				LearningRate: 0.01, NumTiers: 5, Seed: 7,
			}
			b.ReportAllocs()
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := dataset.NewSource(dcfg)
				if err != nil {
					b.Fatal(err)
				}
				pop, err := simnet.NewPopulation(ccfg)
				if err != nil {
					b.Fatal(err)
				}
				factory := func(s uint64) *nn.Network {
					return nn.NewMLP(rng.New(s), src.InDim(), 32, src.Classes())
				}
				if _, err := fl.NewLazyEnv(src, pop, factory, rcfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			perClient := float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N) / float64(n)
			b.ReportMetric(perClient, "bytes/client")
		})
	}
}

// BenchmarkAblationFedATRun measures one full FedAT run end to end.
func BenchmarkAblationFedATRun(b *testing.B) {
	benchRun(b, "fedat", codec.NewPolyline(4), 9)
}

// BenchmarkAblationCompression compares the per-run cost of the polyline
// channel against raw transmission (the codec CPU vs bytes tradeoff).
func BenchmarkAblationCompression(b *testing.B) {
	b.Run("polyline4", func(b *testing.B) {
		benchRun(b, "fedat", codec.NewPolyline(4), 9)
	})
	b.Run("raw", func(b *testing.B) {
		benchRun(b, "fedat", codec.Raw{}, 9)
	})
}

// BenchmarkAblationDeltaEncoding compares absolute vs delta polyline
// payload sizes on trained weights.
func BenchmarkAblationDeltaEncoding(b *testing.B) {
	net := nn.NewMLP(rng.New(1), 100, 32, 10)
	w := net.WeightsCopy()
	abs := codec.NewPolyline(4)
	del := codec.NewPolylineDelta(4)
	b.Run("absolute", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n = len(abs.Encode(w))
		}
		b.ReportMetric(float64(n), "payload-bytes")
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n = len(del.Encode(w))
		}
		b.ReportMetric(float64(n), "payload-bytes")
	})
}
