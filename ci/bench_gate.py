#!/usr/bin/env python3
"""Benchmark trajectory tooling for the BenchmarkMethod suite.

Two subcommands, shared by CI and local use:

  parse <bench.out> <out.json>
      Convert `go test -bench BenchmarkMethod/` output into the BENCH JSON
      schema ({"suite": ..., "results": [{method, iterations, ns_per_op,
      bytes_per_op, allocs_per_op}]}). BenchmarkPopulation/<n> rows (the
      lazy-environment construction ladder) are parsed too, recorded as
      "population/<n>" with their custom bytes/client metric carried in
      bytes_per_client — so BENCH_trajectory.json tracks the per-client
      footprint of the million-client substrate alongside the method
      suite.

  append <current.json> <baseline.json> <trajectory.json> [label]
      Append the current suite as one entry to the committed trajectory
      file (creating it when absent) and print the delta-vs-baseline
      table. CI runs this after every bench run with the commit SHA as
      the label and commits the grown file back on pushes to main, so
      the per-commit history accumulates in BENCH_trajectory.json
      without manual steps. Appending is idempotent per label: re-runs
      of the same commit (retries, PR synchronize events) print the
      table but do not duplicate the entry.

  check <current.json> <baseline.json> [threshold]
      Fail (exit 1) when any method's ns/op regressed more than the
      threshold factor (default 1.25, i.e. >25% slower) against the
      committed baseline, or when the baseline lists a method the current
      suite no longer has (stale baseline — regenerate it).

      allocs/op is gated too, directly (allocation counts are
      machine-independent, so no host normalization applies): a method
      fails when its count exceeds the baseline by the same threshold
      factor AND by more than 8 allocations — the absolute slack keeps
      tiny counts (2 -> 3 allocs) from tripping a ratio meant for real
      pool regressions.

      Ratios are normalized by the MEDIAN ratio across all methods
      before gating: the baseline and the CI runner are different
      machines, so a uniform speed difference (hardware, load) cancels
      out and the gate fires on a METHOD regressing relative to the
      suite — which is what a code change looks like. The median (not a
      mean) keeps one method's genuine big win or loss from dragging the
      normalizer and mis-flagging the others. The raw host-speed factor
      is printed; a genuinely uniform slowdown shows up there and in the
      per-method raw columns, not as a gate failure.

Regenerate the committed baseline after a deliberate perf change:

  go test -run '^$' -bench 'BenchmarkMethod/|BenchmarkPopulation/' -benchtime 5x -count 1 . > bench.out
  python3 ci/bench_gate.py parse bench.out BENCH_baseline.json
"""
import json
import re
import sys

LINE = re.compile(
    r"Benchmark(Method|Population)/(\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op"
    r"(?:\s+(\d+(?:\.\d+)?) bytes/client)?"
    r"\s+(\d+) B/op\s+(\d+) allocs/op"
)


def parse(bench_out, out_json):
    rows = []
    with open(bench_out) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                suite, name = m.group(1), m.group(2)
                row = {
                    # Population rungs are namespaced so they can never
                    # collide with a registry method name.
                    "method": name if suite == "Method" else "population/" + name,
                    "iterations": int(m.group(3)),
                    "ns_per_op": float(m.group(4)),
                    "bytes_per_op": int(m.group(6)),
                    "allocs_per_op": int(m.group(7)),
                }
                if m.group(5) is not None:
                    row["bytes_per_client"] = float(m.group(5))
                rows.append(row)
    if not rows:
        sys.exit("bench_gate: no benchmark lines parsed from %s" % bench_out)
    with open(out_json, "w") as f:
        json.dump({"suite": "BenchmarkMethod", "results": rows}, f, indent=2)
        f.write("\n")
    print("bench_gate: wrote %d methods to %s" % (len(rows), out_json))


def host_factor(ratios):
    # Host-speed normalization: the MEDIAN ratio is the uniform
    # machine-speed factor between the baseline box and this one; dividing
    # it out leaves each method's movement relative to the suite. Median
    # rather than mean, so a single method genuinely getting much faster
    # (or slower) cannot drag the normalizer and flag the others.
    if not ratios:
        return 1.0
    rs = sorted(ratios.values())
    mid = len(rs) // 2
    return rs[mid] if len(rs) % 2 else (rs[mid - 1] + rs[mid]) / 2


def delta_table(cur, base, threshold=None):
    """Print the per-method delta-vs-baseline table; return gate failures.

    With threshold=None the table is informational (the append path);
    with a threshold, normalized ratios above it are flagged and
    collected as failures (the check path).
    """
    failures = []
    common = [m for m in sorted(base) if m in cur]
    ratios = {}
    for method in common:
        b, c = base[method]["ns_per_op"], cur[method]["ns_per_op"]
        ratios[method] = c / b if b else float("inf")
    host = host_factor(ratios)
    print("host speed factor vs baseline: %.2fx" % host)
    print("%-16s %14s %14s %7s %11s %13s %17s" % (
        "method", "baseline ns/op", "current ns/op", "raw", "normalized",
        "allocs (b->c)", "bytes/op (b->c)"))
    for method in common:
        b, c = base[method]["ns_per_op"], cur[method]["ns_per_op"]
        norm = ratios[method] / host
        flag = ""
        if threshold is not None and norm > threshold:
            flag = "  << REGRESSION"
            failures.append("%s regressed %.0f%% vs the suite (%.0f -> %.0f ns/op raw)"
                            % (method, (norm - 1) * 100, b, c))
        b_allocs = base[method].get("allocs_per_op", 0)
        c_allocs = cur[method].get("allocs_per_op", 0)
        # Allocation counts are deterministic per code path, so gate them
        # raw: ratio over threshold AND more than 8 extra allocs (absolute
        # slack so 2->3 on a tiny method is not a failure).
        if (threshold is not None and c_allocs > b_allocs * threshold
                and c_allocs - b_allocs > 8):
            flag = "  << ALLOC REGRESSION"
            failures.append("%s allocs/op grew %d -> %d (pooled hot path leaking?)"
                            % (method, b_allocs, c_allocs))
        allocs = "%d->%d" % (b_allocs, c_allocs)
        # Heap traffic is machine-independent like allocs; it is printed
        # (and recorded in the trajectory) but not gated — the alloc-count
        # gate plus TestMethodRunAllocBudget's explicit byte ceilings
        # already cover the pooled hot path.
        nbytes = "%d->%d" % (base[method].get("bytes_per_op", 0),
                             cur[method].get("bytes_per_op", 0))
        print("%-16s %14.0f %14.0f %6.2fx %9.2fx %13s %17s%s"
              % (method, b, c, ratios[method], norm, allocs, nbytes, flag))
    for method in sorted(set(cur) - set(base)):
        print("%-16s %14s %14.0f   (new; not gated — add to the baseline)"
              % (method, "-", cur[method]["ns_per_op"]))
    return failures


def check(current_json, baseline_json, threshold):
    cur = {r["method"]: r for r in json.load(open(current_json))["results"]}
    base = {r["method"]: r for r in json.load(open(baseline_json))["results"]}
    failures = []
    for method in sorted(set(base) - set(cur)):
        failures.append(
            "%s is in the baseline but not in the current suite — "
            "regenerate BENCH_baseline.json (see ci/bench_gate.py)" % method)
    failures += delta_table(cur, base, threshold)
    if failures:
        print("\nbench_gate: FAIL")
        for f in failures:
            print("  - " + f)
        sys.exit(1)
    print("\nbench_gate: ok (threshold %.2fx, host-normalized)" % threshold)


def append(current_json, baseline_json, trajectory_json, label):
    cur_doc = json.load(open(current_json))
    cur = {r["method"]: r for r in cur_doc["results"]}
    base = {r["method"]: r for r in json.load(open(baseline_json))["results"]}
    try:
        with open(trajectory_json) as f:
            traj = json.load(f)
    except FileNotFoundError:
        traj = {"suite": cur_doc.get("suite", "BenchmarkMethod"), "entries": []}
    if any(e.get("label") == label for e in traj["entries"]):
        # Idempotent per label: a re-run of the same commit (CI retry, PR
        # synchronize) must not duplicate history.
        print("bench_gate: entry %r already in %s (%d entries); not appending"
              % (label, trajectory_json, len(traj["entries"])))
    else:
        traj["entries"].append({"label": label, "results": cur_doc["results"]})
        with open(trajectory_json, "w") as f:
            json.dump(traj, f, indent=2)
            f.write("\n")
        print("bench_gate: appended entry %r to %s (%d entries)"
              % (label, trajectory_json, len(traj["entries"])))
    delta_table(cur, base)


def main():
    if len(sys.argv) >= 4 and sys.argv[1] == "parse":
        parse(sys.argv[2], sys.argv[3])
    elif len(sys.argv) >= 4 and sys.argv[1] == "check":
        threshold = float(sys.argv[4]) if len(sys.argv) > 4 else 1.25
        check(sys.argv[2], sys.argv[3], threshold)
    elif len(sys.argv) >= 5 and sys.argv[1] == "append":
        label = sys.argv[5] if len(sys.argv) > 5 else "local"
        append(sys.argv[2], sys.argv[3], sys.argv[4], label)
    else:
        sys.exit(__doc__)


if __name__ == "__main__":
    main()
