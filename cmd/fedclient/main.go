// Command fedclient joins a fedserver as one federated participant: it
// derives its local shard of the synthetic federation from the shared
// flags, then trains whenever the server pushes the global model. Local
// training settings (epochs, batch size, proximal λ) arrive with each push
// — the server's method composition decides them, not client flags.
//
// In a hierarchical deployment (fedserver -role edge/root) a client joins
// ITS EDGE's server, not the root: -addr points at the edge aggregator,
// -clients and -id live in that edge's 0..N-1 space, and -data-seed must
// match the edge server's (each edge group may shard data with its own
// data seed while every party shares -seed for the model architecture).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		id       = flag.Int("id", 0, "client id (0..clients-1)")
		clients  = flag.Int("clients", 6, "total clients in the federation")
		ds       = flag.String("dataset", "fashion", "dataset: fashion or cifar10")
		seed     = flag.Uint64("seed", 1, "shared seed (must match the server)")
		dataSeed = flag.Uint64("data-seed", 0, "federation data seed (0 = -seed); must match this client's edge server")
		latency  = flag.Int("latency", 100, "latency hint in ms (drives tiering)")
		delayMs  = flag.Int("delay", 0, "artificial per-round delay in ms (straggler emulation)")
		// 0.01 matches fl.RunConfig's LearningRate default, so a default
		// fedserver+fedclient deployment trains with the same local solver
		// as a default simulator run. The optimizer stays client-side by
		// design (clients own their solver state); keep this aligned with
		// the server's RunConfig when comparing fabrics.
		lr   = flag.Float64("lr", 0.01, "local learning rate (Adam); match the simulator's LearningRate for cross-fabric comparisons")
		prec = flag.Int("precision", 4, "polyline upload compression precision (<=0 = raw; must match the server)")

		// Adversarial / privacy knobs. A forced local attack overrides any
		// server directive; DP flags override the pushed DP stage.
		attackKind  = flag.String("attack", "", "force this client malicious: labelflip, scale, freeride (overrides server directives)")
		attackScale = flag.Float64("attack-scale", 0, "scale attack amplification factor (0 = default 10x)")
		dpClip      = flag.Float64("dp-clip", 0, "force the local DP stage: delta clip norm (overrides the server's pushed value)")
		dpNoise     = flag.Float64("dp-noise", 0, "DP Gaussian noise multiplier alongside -dp-clip")
		uplinkTopK  = flag.Float64("uplink-topk", 0, "upload top-k sparsified deltas instead of -precision: fraction of coordinates kept (server decodes without flags)")
	)
	flag.Parse()

	if *dataSeed == 0 {
		*dataSeed = *seed
	}
	fed, err := buildFederation(*ds, *clients, *dataSeed)
	if err != nil {
		log.Fatal("fedclient: ", err)
	}
	if *id < 0 || *id >= len(fed.Clients) {
		log.Fatalf("fedclient: id %d out of range [0,%d)", *id, len(fed.Clients))
	}
	akind, err := robust.ParseKind(*attackKind)
	if err != nil {
		log.Fatal("fedclient: ", err)
	}
	var wire codec.Codec = codec.Raw{}
	if *prec > 0 {
		wire = codec.NewPolyline(*prec)
	}
	net := nn.NewMLP(rng.New(*seed), fed.InDim, 16, fed.Classes)
	err = transport.RunClient(transport.ClientConfig{
		Addr:            *addr,
		ID:              uint32(*id),
		LatencyHintMs:   uint32(*latency),
		ArtificialDelay: time.Duration(*delayMs) * time.Millisecond,
		Data:            fed.Clients[*id],
		Net:             net,
		Opt:             opt.NewAdam(*lr),
		Codec:           wire,
		Seed:            *seed,
		// Classes is always filled so a server-directed label flip can
		// execute; the kind stays None unless -attack forces it.
		Attack:         robust.Attack{Kind: akind, Scale: *attackScale, Classes: fed.Classes},
		DPClip:         *dpClip,
		DPNoise:        *dpNoise,
		UplinkTopKFrac: *uplinkTopK,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal("fedclient: ", err)
	}
	log.Printf("fedclient %d: finished cleanly", *id)
}

func buildFederation(name string, clients int, seed uint64) (*dataset.Federated, error) {
	switch name {
	case "fashion":
		return dataset.FashionLike(clients, 2, dataset.ScaleSmall, seed)
	case "cifar10":
		return dataset.CIFAR10Like(clients, 2, dataset.ScaleSmall, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
