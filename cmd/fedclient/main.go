// Command fedclient joins a fedserver as one federated participant: it
// derives its local shard of the synthetic federation from the shared
// flags, then trains whenever the server pushes the global model.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "server address")
		id      = flag.Int("id", 0, "client id (0..clients-1)")
		clients = flag.Int("clients", 6, "total clients in the federation")
		ds      = flag.String("dataset", "fashion", "dataset: fashion or cifar10")
		seed    = flag.Uint64("seed", 1, "shared seed (must match the server)")
		latency = flag.Int("latency", 100, "latency hint in ms (drives tiering)")
		delayMs = flag.Int("delay", 0, "artificial per-round delay in ms (straggler emulation)")
		epochs  = flag.Int("epochs", 3, "local epochs per round")
		batch   = flag.Int("batch", 10, "local batch size")
		lambda  = flag.Float64("lambda", 0.4, "proximal coefficient (Eq. 3)")
		lr      = flag.Float64("lr", 0.005, "local learning rate (Adam)")
	)
	flag.Parse()

	fed, err := buildFederation(*ds, *clients, *seed)
	if err != nil {
		log.Fatal("fedclient: ", err)
	}
	if *id < 0 || *id >= len(fed.Clients) {
		log.Fatalf("fedclient: id %d out of range [0,%d)", *id, len(fed.Clients))
	}
	net := nn.NewMLP(rng.New(*seed), fed.InDim, 16, fed.Classes)
	err = transport.RunClient(transport.ClientConfig{
		Addr:            *addr,
		ID:              uint32(*id),
		LatencyHintMs:   uint32(*latency),
		ArtificialDelay: time.Duration(*delayMs) * time.Millisecond,
		Data:            fed.Clients[*id],
		Net:             net,
		Opt:             opt.NewAdam(*lr),
		Epochs:          *epochs,
		BatchSize:       *batch,
		Lambda:          *lambda,
		Seed:            *seed,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal("fedclient: ", err)
	}
	log.Printf("fedclient %d: finished cleanly", *id)
}

func buildFederation(name string, clients int, seed uint64) (*dataset.Federated, error) {
	switch name {
	case "fashion":
		return dataset.FashionLike(clients, 2, dataset.ScaleSmall, seed)
	case "cifar10":
		return dataset.CIFAR10Like(clients, 2, dataset.ScaleSmall, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
