// Command fedserver runs a federated aggregation server over real TCP,
// driven by the same pluggable policy engine as the simulator: any registry
// method (-method) or novel composition (-select/-pacer/-agg overrides)
// deploys unchanged. Pair it with cmd/fedclient processes (same
// -dataset/-clients/-seed flags so every party derives the same synthetic
// federation and model architecture).
//
// Examples (one server, six clients, two tiers):
//
//	fedserver -addr :7070 -method fedat -clients 6 -tiers 2 -rounds 20 &
//	for i in $(seq 0 5); do
//	  fedclient -addr 127.0.0.1:7070 -id $i -clients 6 -latency $((100 + i*200)) &
//	done
//
//	fedserver -method fedavg ...            # synchronous FedAvg over TCP
//	fedserver -method fedasync ...          # wait-free client loops over TCP
//	fedserver -method fedat -select oversel # over-selection inside FedAT's tiers
//
// Hierarchical deployment (-role): a root process folds K edge
// aggregators, each edge a full fedserver running the engine over its own
// clients and pushing its folded model up. All parties share -seed (the
// model architecture and initial weights derive from it); each edge group
// may shard data with its own -data-seed.
//
//	fedserver -role root -edges 2 -edge-fold sync -rounds 12 &
//	fedserver -role edge -edge-id 0 -root 127.0.0.1:7070 -addr :7071 -clients 3 ... &
//	fedserver -role edge -edge-id 1 -root 127.0.0.1:7070 -addr :7072 -clients 3 -data-seed 2 ... &
//	fedclient -addr 127.0.0.1:7071 -id 0 -clients 3 ... &   # leaf under edge 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		clients  = flag.Int("clients", 6, "registrations to wait for (root role: union clients across edges, for the eval mirror)")
		tiers    = flag.Int("tiers", 2, "number of latency tiers")
		rounds   = flag.Int("rounds", 20, "global update budget (root role: cloud fold budget; 0 = until edges depart)")
		perRound = flag.Int("k", 3, "clients per round (per tier round for tier pacing)")
		ds       = flag.String("dataset", "fashion", "dataset: fashion or cifar10")
		seed     = flag.Uint64("seed", 1, "shared seed (must match clients; fixes the model architecture and initial weights)")
		dataSeed = flag.Uint64("data-seed", 0, "federation data seed (0 = -seed); per-edge data shards use distinct data seeds while -seed stays shared")
		prec     = flag.Int("precision", 4, "polyline compression precision (<=0 = raw)")
		epochs   = flag.Int("epochs", 3, "local epochs per round (shipped to clients)")
		batch    = flag.Int("batch", 10, "local batch size (shipped to clients)")
		lambda   = flag.Float64("lambda", 0, "proximal coefficient for Prox methods (Eq. 3); 0 inherits the engine default, negative disables")
		retier   = flag.Int("retier-every", 0, "re-tier from measured client latencies every N global updates (0 = static hint tiers)")

		// Method composition, mirroring fedsim -compose.
		method  = flag.String("method", "fedat", "registry method to run: "+strings.Join(fl.MethodNames(), ", "))
		selName = flag.String("select", "", "override the selection policy: random, oversel, tifl, all")
		pacer   = flag.String("pacer", "", "override the pacing policy: sync, tier, client, fedbuff")
		agg     = flag.String("agg", "", "override the aggregation rule spec: avg, eq5, uniform, staleness, asofed, fedasync, asyncsgd, median, trimmed, krum; the staleness family takes params rule[:func[:alpha[:threshold]]], e.g. fedasync:poly:0.5")
		name    = flag.String("name", "", "display name for the composed method")
		bufferK = flag.Int("buffer-k", 0, "fedbuff pacer: arrivals buffered per fold (0 = clients per round)")

		// Staleness knobs, mirroring fedsim's compose mode: the weight
		// function shared by the async update rules and the adaptive-LR stage.
		staleFunc  = flag.String("stale-func", "", "staleness weight function for async aggregation: poly, exp, const, hinge (default poly; an -agg spec's func wins)")
		staleAlpha = flag.Float64("stale-alpha", 0, "staleness discount exponent/rate (unset = engine default 0.5; explicit 0 = no discount)")
		adaptiveLR = flag.Bool("adaptive-lr", false, "scale each dispatch's local learning rate by the staleness weight of its tier/client (shipped to clients in the push header)")

		// Adversarial regime + defenses (the live analogue of fedsim's
		// attack knobs): the server directs a deterministic subset of the
		// population — simnet.AttackTargets over -seed, the same subset the
		// simulator poisons — to attack during local training.
		attackKind  = flag.String("attack", "", "direct an attack regime: labelflip, scale, freeride")
		attackFrac  = flag.Float64("attack-frac", 0, "fraction of the population directed to attack")
		attackScale = flag.Float64("attack-scale", 0, "scale attack amplification factor (0 = default 10x)")
		dpClip      = flag.Float64("dp-clip", 0, "per-client DP delta clip norm shipped with every push (0 = off)")
		dpNoise     = flag.Float64("dp-noise", 0, "DP Gaussian noise multiplier (noise sigma = multiplier * clip)")

		// Hierarchical topology.
		role       = flag.String("role", "flat", "server role: flat (standalone), edge (serves clients, folds up to -root), root (cloud: folds edge pushes)")
		edges      = flag.Int("edges", 2, "root role: number of edge aggregators")
		rootAddr   = flag.String("root", "", "edge role: the root server's address")
		edgeID     = flag.Int("edge-id", 0, "edge role: this edge's id in the root's 0..edges-1 space")
		edgeFold   = flag.String("edge-fold", "sync", "edge→cloud fold policy: sync (barrier) or async (buffered, staleness-weighted)")
		edgeBuffer = flag.Int("edge-buffer", 1, "async fold: edge pushes buffered per cloud fold")
		edgeStale  = flag.Float64("edge-stale-exp", 0.5, "async fold: staleness discount exponent")
		pushEvery  = flag.Int("edge-push-every", 1, "edge role: engine folds per cloud push")
		topk       = flag.Float64("uplink-topk", 0, "edge→cloud top-k delta compression: fraction of coordinates kept per push (0 = raw, bit-lossless; must match on root and edges)")
	)
	flag.Parse()

	// An EXPLICIT "-lambda 0" has always meant "no proximal term" and must
	// keep meaning that, even though an unset flag (also 0) now inherits
	// the engine default. "-stale-alpha 0" gets the same treatment: an
	// explicit zero means "no staleness discount", not "use the default".
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "lambda" && *lambda == 0 {
			*lambda = fl.LambdaOff
		}
		if f.Name == "stale-alpha" && *staleAlpha == 0 {
			*staleAlpha = fl.StaleExpOff
		}
	})
	if *dataSeed == 0 {
		*dataSeed = *seed
	}
	akind, err := robust.ParseKind(*attackKind)
	if err != nil {
		log.Fatal("fedserver: ", err)
	}

	fed, factory, err := buildFederation(*ds, *clients, *dataSeed)
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	ref := factory(*seed)
	shapes := make([]codec.ShapeInfo, 0)
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	if *role == "root" {
		runRoot(rootParams{
			addr: *addr, edges: *edges, rounds: *rounds,
			fold: *edgeFold, buffer: *edgeBuffer, staleExp: *edgeStale, topk: *topk,
			w0: ref.WeightsCopy(), shapes: shapes,
			fed: fed, factory: factory, seed: *seed, method: *method,
		})
		return
	}

	m, err := fl.Compose(*method, *selName, *pacer, *agg, *name)
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	var wire codec.Codec = codec.Raw{}
	if *prec > 0 {
		wire = codec.NewPolyline(*prec)
	}

	var observers []fl.Observer
	switch *role {
	case "flat":
	case "edge":
		if *rootAddr == "" {
			log.Fatal("fedserver: -role edge requires -root <addr>")
		}
		up, err := transport.DialUplink(transport.UplinkConfig{
			Root: *rootAddr, EdgeID: *edgeID, NumClients: *clients,
			PushEvery: *pushEvery, TopKFrac: *topk,
			W0: ref.WeightsCopy(), Shapes: shapes,
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatal("fedserver: ", err)
		}
		defer up.Close()
		observers = append(observers, up)
		log.Printf("fedserver: edge %d folding up to root %s", *edgeID, *rootAddr)
	default:
		log.Fatalf("fedserver: unknown -role %q (have flat, edge, root)", *role)
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       *addr,
		NumClients: *clients,
		Method:     m,
		Run: fl.RunConfig{
			Rounds:          *rounds,
			ClientsPerRound: *perRound,
			NumTiers:        *tiers,
			LocalEpochs:     *epochs,
			BatchSize:       *batch,
			Lambda:          *lambda, // 0 → fl.DefaultLambda via withDefaults
			RetierEvery:     *retier,
			BufferK:         *bufferK,
			Staleness:       fl.StalenessConfig{Func: *staleFunc, Alpha: *staleAlpha},
			AdaptiveLR:      *adaptiveLR,
			DPClip:          *dpClip,
			DPNoise:         *dpNoise,
			Codec:           wire,
			Seed:            *seed,
		},
		Shapes:     shapes,
		W0:         ref.WeightsCopy(),
		Dataset:    fed.Name,
		Observers:  observers,
		Attack:     robust.Attack{Kind: akind, Scale: *attackScale},
		AttackFrac: *attackFrac,
		// The server mirrors the federation from the shared seed, so it can
		// evaluate the global model (and feed TiFL's accuracy-driven
		// selection) without extra client traffic.
		Eval: fl.NewDataEvaluator(factory, *seed, fed.Clients),
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	log.Printf("fedserver: listening on %s for %d clients, method %s (%s)", srv.Addr(), *clients, m.Name, m)
	run, final, err := srv.Run()
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	reportFinal(run, final, fed, factory, *seed)
	os.Exit(0)
}

type rootParams struct {
	addr     string
	edges    int
	rounds   int
	fold     string
	buffer   int
	staleExp float64
	topk     float64
	w0       []float64
	shapes   []codec.ShapeInfo
	fed      *dataset.Federated
	factory  fl.ModelFactory
	seed     uint64
	method   string
}

// runRoot serves the cloud tier: no engine, no clients of its own — it
// folds the K edges' pushed models and broadcasts the merged model back.
func runRoot(p rootParams) {
	ev := fl.NewDataEvaluator(p.factory, p.seed, p.fed.Clients)
	root, err := transport.NewRoot(transport.RootConfig{
		Addr:     p.addr,
		Edges:    p.edges,
		Rounds:   p.rounds,
		Fold:     p.fold,
		Buffer:   p.buffer,
		StaleExp: p.staleExp,
		TopKFrac: p.topk,
		W0:       p.w0,
		Shapes:   p.shapes,
		Eval:     func(w []float64) (fl.Result, bool) { return ev.Evaluate(w), true },
		Dataset:  p.fed.Name,
		Method:   p.method,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	log.Printf("fedserver: root listening on %s for %d edges (%s fold)", root.Addr(), p.edges, p.fold)
	run, final, err := root.Run()
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	fmt.Printf("fedserver: root done after %d cloud folds (mean staleness %.2f); best recorded accuracy %.3f; %.2f MB up, %.2f MB down\n",
		run.EdgeFolds, meanStaleness(run.EdgeStaleness, run.EdgeFolds), run.BestAcc(),
		float64(run.UpBytes)/1e6, float64(run.DownBytes)/1e6)
	_ = final
	os.Exit(0)
}

func meanStaleness(total float64, folds int) float64 {
	if folds == 0 {
		return 0
	}
	return total / float64(folds)
}

// reportFinal prints the flat/edge server's closing summary: the final
// model's quality on the pooled held-out data.
func reportFinal(run *metrics.Run, final []float64, fed *dataset.Federated, factory fl.ModelFactory, seed uint64) {
	eval := factory(seed)
	eval.SetWeights(final)
	correct, total := 0, 0
	for _, c := range fed.Clients {
		cor, _ := eval.Eval(c.TestX, c.TestY)
		correct += cor
		total += c.NumTest()
	}
	fmt.Printf("fedserver: %s done after %d global updates; best recorded accuracy %.3f; test accuracy %.3f (%d/%d); %.2f MB up, %.2f MB down\n",
		run.Method, run.GlobalRounds, run.BestAcc(),
		float64(correct)/float64(total), correct, total,
		float64(run.UpBytes)/1e6, float64(run.DownBytes)/1e6)
}

func buildFederation(name string, clients int, dataSeed uint64) (*dataset.Federated, fl.ModelFactory, error) {
	var fed *dataset.Federated
	var err error
	switch name {
	case "fashion":
		fed, err = dataset.FashionLike(clients, 2, dataset.ScaleSmall, dataSeed)
	case "cifar10":
		fed, err = dataset.CIFAR10Like(clients, 2, dataset.ScaleSmall, dataSeed)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return nil, nil, err
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	return fed, factory, nil
}
