// Command fedserver runs a federated aggregation server over real TCP,
// driven by the same pluggable policy engine as the simulator: any registry
// method (-method) or novel composition (-select/-pacer/-agg overrides)
// deploys unchanged. Pair it with cmd/fedclient processes (same
// -dataset/-clients/-seed flags so every party derives the same synthetic
// federation and model architecture).
//
// Examples (one server, six clients, two tiers):
//
//	fedserver -addr :7070 -method fedat -clients 6 -tiers 2 -rounds 20 &
//	for i in $(seq 0 5); do
//	  fedclient -addr 127.0.0.1:7070 -id $i -clients 6 -latency $((100 + i*200)) &
//	done
//
//	fedserver -method fedavg ...            # synchronous FedAvg over TCP
//	fedserver -method fedasync ...          # wait-free client loops over TCP
//	fedserver -method fedat -select oversel # over-selection inside FedAT's tiers
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		clients  = flag.Int("clients", 6, "registrations to wait for")
		tiers    = flag.Int("tiers", 2, "number of latency tiers")
		rounds   = flag.Int("rounds", 20, "global update budget")
		perRound = flag.Int("k", 3, "clients per round (per tier round for tier pacing)")
		ds       = flag.String("dataset", "fashion", "dataset: fashion or cifar10")
		seed     = flag.Uint64("seed", 1, "shared seed (must match clients)")
		prec     = flag.Int("precision", 4, "polyline compression precision (<=0 = raw)")
		epochs   = flag.Int("epochs", 3, "local epochs per round (shipped to clients)")
		batch    = flag.Int("batch", 10, "local batch size (shipped to clients)")
		lambda   = flag.Float64("lambda", 0, "proximal coefficient for Prox methods (Eq. 3); 0 inherits the engine default, negative disables")
		retier   = flag.Int("retier-every", 0, "re-tier from measured client latencies every N global updates (0 = static hint tiers)")

		// Method composition, mirroring fedsim -compose.
		method  = flag.String("method", "fedat", "registry method to run: "+strings.Join(fl.MethodNames(), ", "))
		selName = flag.String("select", "", "override the selection policy: random, oversel, tifl, all")
		pacer   = flag.String("pacer", "", "override the pacing policy: sync, tier, client")
		agg     = flag.String("agg", "", "override the aggregation rule: avg, eq5, uniform, staleness, asofed")
		name    = flag.String("name", "", "display name for the composed method")
	)
	flag.Parse()

	// An EXPLICIT "-lambda 0" has always meant "no proximal term" and must
	// keep meaning that, even though an unset flag (also 0) now inherits
	// the engine default.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "lambda" && *lambda == 0 {
			*lambda = fl.LambdaOff
		}
	})

	m, err := fl.Compose(*method, *selName, *pacer, *agg, *name)
	if err != nil {
		log.Fatal("fedserver: ", err)
	}

	fed, factory, err := buildFederation(*ds, *clients, *seed)
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	var wire codec.Codec = codec.Raw{}
	if *prec > 0 {
		wire = codec.NewPolyline(*prec)
	}
	ref := factory(*seed)
	shapes := make([]codec.ShapeInfo, 0)
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       *addr,
		NumClients: *clients,
		Method:     m,
		Run: fl.RunConfig{
			Rounds:          *rounds,
			ClientsPerRound: *perRound,
			NumTiers:        *tiers,
			LocalEpochs:     *epochs,
			BatchSize:       *batch,
			Lambda:          *lambda, // 0 → fl.DefaultLambda via withDefaults
			RetierEvery:     *retier,
			Codec:           wire,
			Seed:            *seed,
		},
		Shapes:  shapes,
		W0:      ref.WeightsCopy(),
		Dataset: fed.Name,
		// The server mirrors the federation from the shared seed, so it can
		// evaluate the global model (and feed TiFL's accuracy-driven
		// selection) without extra client traffic.
		Eval: fl.NewDataEvaluator(factory, *seed, fed.Clients),
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	log.Printf("fedserver: listening on %s for %d clients, method %s (%s)", srv.Addr(), *clients, m.Name, m)
	run, final, err := srv.Run()
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	// Report the final model's quality on the pooled held-out data.
	eval := factory(*seed)
	eval.SetWeights(final)
	correct, total := 0, 0
	for _, c := range fed.Clients {
		cor, _ := eval.Eval(c.TestX, c.TestY)
		correct += cor
		total += c.NumTest()
	}
	fmt.Printf("fedserver: %s done after %d global updates; best recorded accuracy %.3f; test accuracy %.3f (%d/%d); %.2f MB up, %.2f MB down\n",
		run.Method, run.GlobalRounds, run.BestAcc(),
		float64(correct)/float64(total), correct, total,
		float64(run.UpBytes)/1e6, float64(run.DownBytes)/1e6)
	os.Exit(0)
}

func buildFederation(name string, clients int, seed uint64) (*dataset.Federated, fl.ModelFactory, error) {
	var fed *dataset.Federated
	var err error
	switch name {
	case "fashion":
		fed, err = dataset.FashionLike(clients, 2, dataset.ScaleSmall, seed)
	case "cifar10":
		fed, err = dataset.CIFAR10Like(clients, 2, dataset.ScaleSmall, seed)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return nil, nil, err
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	return fed, factory, nil
}
