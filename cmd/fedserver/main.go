// Command fedserver runs a FedAT aggregation server over real TCP. Pair it
// with cmd/fedclient processes (same -dataset/-clients/-seed flags so every
// party derives the same synthetic federation and model architecture).
//
// Example (one server, six clients, two tiers):
//
//	fedserver -addr :7070 -clients 6 -tiers 2 -rounds 20 &
//	for i in $(seq 0 5); do
//	  fedclient -addr 127.0.0.1:7070 -id $i -clients 6 -latency $((100 + i*200)) &
//	done
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		clients  = flag.Int("clients", 6, "registrations to wait for")
		tiers    = flag.Int("tiers", 2, "number of latency tiers")
		rounds   = flag.Int("rounds", 20, "global update budget")
		perRound = flag.Int("k", 3, "clients per tier round")
		ds       = flag.String("dataset", "fashion", "dataset: fashion or cifar10")
		seed     = flag.Uint64("seed", 1, "shared seed (must match clients)")
		prec     = flag.Int("precision", 4, "polyline compression precision")
		uniform  = flag.Bool("uniform", false, "uniform aggregation instead of Eq. 5 weighting")
	)
	flag.Parse()

	fed, factory, err := buildFederation(*ds, *clients, *seed)
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	ref := factory(*seed)
	shapes := make([]codec.ShapeInfo, 0)
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:            *addr,
		NumClients:      *clients,
		NumTiers:        *tiers,
		Rounds:          *rounds,
		ClientsPerRound: *perRound,
		Weighted:        !*uniform,
		Codec:           codec.NewPolyline(*prec),
		Shapes:          shapes,
		W0:              ref.WeightsCopy(),
		Seed:            *seed,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	log.Printf("fedserver: listening on %s for %d clients", srv.Addr(), *clients)
	final, err := srv.Run()
	if err != nil {
		log.Fatal("fedserver: ", err)
	}
	// Report the final model's quality on the pooled held-out data.
	eval := factory(*seed)
	eval.SetWeights(final)
	correct, total := 0, 0
	for _, c := range fed.Clients {
		cor, _ := eval.Eval(c.TestX, c.TestY)
		correct += cor
		total += c.NumTest()
	}
	fmt.Printf("fedserver: done after %d rounds; tier counts %v; test accuracy %.3f (%d/%d)\n",
		srv.Aggregator().Rounds(), srv.Aggregator().TierCounts(), float64(correct)/float64(total), correct, total)
	os.Exit(0)
}

func buildFederation(name string, clients int, seed uint64) (*dataset.Federated, func(uint64) *nn.Network, error) {
	var fed *dataset.Federated
	var err error
	switch name {
	case "fashion":
		fed, err = dataset.FashionLike(clients, 2, dataset.ScaleSmall, seed)
	case "cifar10":
		fed, err = dataset.CIFAR10Like(clients, 2, dataset.ScaleSmall, seed)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return nil, nil, err
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	return fed, factory, nil
}
