// Command fedsim regenerates the FedAT paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	fedsim -list
//	fedsim -exp table1 -preset medium
//	fedsim -exp all -preset small -workers 8
//
// Reports print to stdout; see EXPERIMENTS.md for the paper-vs-measured
// comparison of each artifact.
//
// With -exp all the experiments themselves run concurrently: the scheduler
// in internal/experiments deduplicates the simulation cells they share, so
// each underlying (preset, dataset, method, variant) run is simulated once
// no matter how many reports consume it. Reports still print in experiment
// id order and are byte-identical to a serial -workers 1 run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (table1, table2, fig2..fig10, ablation-*, or 'all')")
		preset  = flag.String("preset", "small", "scale preset: tiny, small, medium, paper")
		list    = flag.Bool("list", false, "list experiments and exit")
		csvDir  = flag.String("csv", "", "directory to write per-run CSV series into (optional)")
		workers = flag.Int("workers", 0, "global cap on concurrently executing simulations (0 = GOMAXPROCS); with -exp all, also caps concurrent experiments")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-8s %s\n", id, experiments.Registry[id].Title)
		}
		fmt.Println("presets: tiny, small, medium, paper")
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "fedsim: -exp required (use -list to see experiments)")
		os.Exit(2)
	}
	p, err := experiments.PresetByName(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(2)
	}
	experiments.SetWorkers(*workers)

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiments.IDs()
	}

	// Independent experiments run concurrently over a bounded pool; shared
	// cells dedupe inside the scheduler. Reports stream out in id order as
	// soon as each is ready.
	type result struct {
		rep *experiments.Report
		err error
		dur time.Duration
	}
	results := make([]result, len(ids))
	done := make([]chan struct{}, len(ids))
	for i := range done {
		done[i] = make(chan struct{})
	}
	expWorkers := *workers
	if expWorkers <= 0 {
		expWorkers = parallel.Workers(len(ids))
	}
	go parallel.Dynamic(len(ids), expWorkers, func(i int) {
		defer close(done[i])
		start := time.Now()
		rep, err := experiments.RunByID(ids[i], p)
		results[i] = result{rep: rep, err: err, dur: time.Since(start)}
	})

	wallStart := time.Now()
	for i, id := range ids {
		<-done[i]
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %s failed: %v\n", id, r.err)
			os.Exit(1)
		}
		fmt.Print(r.rep.String())
		fmt.Printf("(%s completed in %s at preset %s)\n\n", id, r.dur.Round(time.Millisecond), p.Name)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, id, r.rep); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim:", err)
				os.Exit(1)
			}
		}
	}
	if len(ids) > 1 {
		fmt.Printf("(%d experiments, %d simulation cells, wall %s)\n",
			len(ids), experiments.SimulationCount(), time.Since(wallStart).Round(time.Millisecond))
	}
}

// writeCSVs dumps every kept run's evaluation series for plotting.
func writeCSVs(dir, expID string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for key, run := range rep.Runs {
		name := fmt.Sprintf("%s__%s.csv", expID, sanitize(key))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = run.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch c {
		case '/', ' ', '(', ')', '#', '%', '=':
			out[i] = '_'
		}
	}
	return string(out)
}
