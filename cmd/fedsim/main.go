// Command fedsim regenerates the FedAT paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	fedsim -list
//	fedsim -exp table1 -preset medium
//	fedsim -exp all -preset small -workers 8
//	fedsim -exp table1 -preset tiny -format json          # machine-readable
//	fedsim -exp all -preset small -format csv -out runs/  # one CSV per table/series/run
//
// The default text format prints to stdout; see EXPERIMENTS.md for the
// paper-vs-measured comparison of each artifact. -format json emits one
// JSON envelope (schema internal/report) with every report's typed
// artifacts, the kept runs expanded into accuracy/loss/bytes series, and
// the scheduler's per-cell timing and cache-hit metadata; -format csv
// writes one file per table, series and run into -out. -out also works
// with text and json to write files instead of stdout.
//
// With -exp all the experiments themselves run concurrently: the scheduler
// in internal/experiments deduplicates the simulation cells they share, so
// each underlying (preset, dataset, method, variant) run is simulated once
// no matter how many reports consume it. Reports still print in experiment
// id order and are byte-identical to a serial -workers 1 run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/parallel"
	"repro/internal/report"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (table1, table2, fig2..fig10, ablation-*, or 'all')")
		preset  = flag.String("preset", "small", "scale preset: tiny, small, medium, paper, huge (huge = the 1M-client lazy ladder; only -exp scale is designed for it)")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "output format: text, json, or csv")
		outDir  = flag.String("out", "", "directory to write output files into (required for csv; optional for text/json, which default to stdout)")
		workers = flag.Int("workers", 0, "global cap on concurrently executing simulations (0 = GOMAXPROCS); with -exp all, also caps concurrent experiments")

		// Profiling and scale knobs.
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit (after a final GC)")
		simWorkers = flag.Int("sim-workers", 0, "with -compose -topology edge:K, drive the merged virtual timeline on this many workers (edge-local events overlap; results are bit-identical at any value; <=1 = serial)")

		// Composition mode: run one method assembled from policies.
		compose = flag.String("compose", "", "run a single method composition: a registry method name used as the base spec (see -select/-pacer/-agg)")
		selName = flag.String("select", "", "override the selection policy: random, oversel, tifl, all")
		pacer   = flag.String("pacer", "", "override the pacing policy: sync, tier, client, fedbuff")
		agg     = flag.String("agg", "", "override the aggregation rule spec: avg, eq5, uniform, staleness, asofed, fedasync, asyncsgd, median, trimmed, krum; the staleness family takes params rule[:func[:alpha[:threshold]]], e.g. fedasync:poly:0.5")
		name    = flag.String("name", "", "display name for the composed method (default derived from overrides)")
		trace   = flag.Bool("trace", false, "with -compose, print the run's event stream to stderr")

		// Staleness knobs (compose mode): the weight function shared by the
		// async update rules and the adaptive-LR stage; see the 'staleness'
		// experiment.
		staleFunc  = flag.String("stale-func", "", "with -compose, staleness weight function: poly, exp, const, hinge (default poly; an -agg spec's func wins)")
		staleAlpha = flag.Float64("stale-alpha", 0, "with -compose, staleness discount exponent/rate (unset = engine default 0.5; explicit 0 = no discount)")
		adaptiveLR = flag.Bool("adaptive-lr", false, "with -compose, scale each dispatch's local learning rate by the staleness weight of its tier/client")

		// Dynamic-population knobs (compose mode): time-varying client
		// behavior plus runtime re-tiering; see the 'dynamics' experiment.
		drift  = flag.Float64("drift", 0, "with -compose, speed-drift magnitude per interval (e.g. 0.45; 0 = static speeds)")
		churn  = flag.Float64("churn", 0, "with -compose, fraction of clients cycling offline (e.g. 0.2; 0 = no churn)")
		retier = flag.Int("retier-every", 0, "with -compose, re-tier from observed latencies every N global updates (0 = static tiers)")

		// Adversarial / privacy knobs (compose mode); see the 'robustness'
		// experiment.
		attackKind  = flag.String("attack", "", "with -compose, attack regime: labelflip, scale, freeride")
		attackFrac  = flag.Float64("attack-frac", 0, "with -compose, fraction of clients attacking (e.g. 0.3)")
		attackScale = flag.Float64("attack-scale", 0, "with -compose, scale attack amplification (0 = default 10x)")
		attackTail  = flag.Bool("attack-tail", false, "with -compose, aim the attack at the slowest clients instead of a seed-drawn subset")
		dpClip      = flag.Float64("dp-clip", 0, "with -compose, per-client DP delta clip norm (0 = off)")
		dpNoise     = flag.Float64("dp-noise", 0, "with -compose, DP Gaussian noise multiplier (sigma = multiplier * clip)")
		bufferK     = flag.Int("buffer-k", 0, "with -compose -pacer fedbuff, arrivals buffered per fold (0 = clients per round)")

		// Hierarchical-topology knobs (compose mode): shard the population
		// across K edge aggregators; see the 'hierarchy' experiment.
		topology   = flag.String("topology", "flat", "with -compose, client topology: flat, or edge:K (K edge aggregators over sharded clients; edge:1 is bit-identical to flat)")
		edgeFold   = flag.String("edge-fold", "sync", "with -topology edge:K, the edge→cloud fold policy: sync (barrier) or async (buffered, staleness-weighted)")
		edgeBuffer = flag.Int("edge-buffer", 1, "with -edge-fold async, edge pushes buffered per cloud fold")
		uplinkTopK = flag.Float64("uplink-topk", 0, "with -topology edge:K, top-k delta compression on the edge→cloud uplink: fraction of coordinates kept (0 = raw, bit-lossless)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-8s %s\n", id, experiments.Registry[id].Title)
		}
		fmt.Println("presets: tiny, small, medium, paper, huge")
		fmt.Println("formats: text, json, csv")
		fmt.Println("method composition (-compose <base> [-select ...] [-pacer ...] [-agg ...]):")
		for _, mn := range fl.MethodNames() {
			m := fl.Methods[mn]
			fmt.Printf("  %-14s = %s\n", mn, m)
		}
		return
	}
	// An EXPLICIT "-stale-alpha 0" means "no staleness discount" and must
	// survive the engine's defaulting, which treats 0 as unset.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "stale-alpha" && *staleAlpha == 0 {
			*staleAlpha = fl.StaleExpOff
		}
	})
	dyn := experiments.ComposeDynamics{
		Drift: *drift, Churn: *churn, RetierEvery: *retier,
		AttackKind: *attackKind, AttackFrac: *attackFrac, AttackScale: *attackScale, AttackTail: *attackTail,
		DPClip: *dpClip, DPNoise: *dpNoise, BufferK: *bufferK,
		StaleFunc: *staleFunc, StaleAlpha: *staleAlpha, AdaptiveLR: *adaptiveLR,
	}
	topo, err := parseTopology(*topology, *edgeFold, *edgeBuffer, *uplinkTopK)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(2)
	}
	if *simWorkers > 1 && topo.Edges == 0 {
		fmt.Fprintln(os.Stderr, "fedsim: -sim-workers requires -compose with -topology edge:K (only a merged multi-edge timeline has events to overlap)")
		os.Exit(2)
	}
	topo.Workers = *simWorkers

	// The huge preset simulates a million clients lazily; an unbounded heap
	// lets the GC defer collection of per-round shard garbage far past the
	// lazy design's steady state. Respect an explicit GOMEMLIMIT, and
	// default to a soft 512MiB limit when the operator set none.
	if *preset == "huge" && os.Getenv("GOMEMLIMIT") == "" {
		debug.SetMemoryLimit(512 << 20)
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	if *compose != "" {
		code := runComposition(*compose, *selName, *pacer, *agg, *name, *preset, *trace, dyn, topo)
		stopProfiles()
		os.Exit(code)
	}
	for _, f := range []struct{ name, val string }{{"-select", *selName}, {"-pacer", *pacer}, {"-agg", *agg}} {
		if f.val != "" {
			fmt.Fprintf(os.Stderr, "fedsim: %s requires -compose\n", f.name)
			os.Exit(2)
		}
	}
	if dyn != (experiments.ComposeDynamics{}) {
		fmt.Fprintln(os.Stderr, "fedsim: -drift/-churn/-retier-every/-attack*/-dp-*/-buffer-k/-stale-*/-adaptive-lr require -compose (the 'dynamics', 'robustness' and 'staleness' experiments carry their own)")
		os.Exit(2)
	}
	if topo.Edges > 0 {
		fmt.Fprintln(os.Stderr, "fedsim: -topology requires -compose (the 'hierarchy' experiment carries its own)")
		os.Exit(2)
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "fedsim: -exp required (use -list to see experiments)")
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "fedsim: unknown -format %q (have text, json, csv)\n", *format)
		os.Exit(2)
	}
	if *format == "csv" && *outDir == "" {
		fmt.Fprintln(os.Stderr, "fedsim: -format csv requires -out <dir>")
		os.Exit(2)
	}
	p, err := experiments.PresetByName(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(2)
	}
	experiments.SetWorkers(*workers)

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiments.IDs()
	}

	// Independent experiments run concurrently over a bounded pool; shared
	// cells dedupe inside the scheduler. Results become available in id
	// order as soon as each is ready.
	type result struct {
		rep *experiments.Report
		err error
		dur time.Duration
	}
	results := make([]result, len(ids))
	done := make([]chan struct{}, len(ids))
	for i := range done {
		done[i] = make(chan struct{})
	}
	expWorkers := *workers
	if expWorkers <= 0 {
		expWorkers = parallel.Workers(len(ids))
	}
	go parallel.Dynamic(len(ids), expWorkers, func(i int) {
		defer close(done[i])
		start := time.Now()
		rep, err := experiments.RunByID(ids[i], p)
		if err == nil {
			rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		}
		results[i] = result{rep: rep, err: err, dur: time.Since(start)}
	})

	// Progress framing goes to stdout only in text mode; json/csv keep
	// stdout clean for the machine-readable payload.
	progress := os.Stdout
	if *format != "text" {
		progress = os.Stderr
	}

	wallStart := time.Now()
	reports := make([]*experiments.Report, 0, len(ids))
	for i, id := range ids {
		<-done[i]
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %s failed: %v\n", id, r.err)
			os.Exit(1)
		}
		reports = append(reports, r.rep)
		switch *format {
		case "text":
			if *outDir == "" {
				fmt.Print(r.rep.String())
			} else if err := writeTextFile(*outDir, r.rep); err != nil {
				fatal(err)
			}
		case "csv":
			files, err := report.WriteCSVDir(*outDir, r.rep)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(progress, "fedsim: %s: wrote %d CSV files to %s\n", id, len(files), *outDir)
		}
		fmt.Fprintf(progress, "(%s completed in %s at preset %s)\n\n", id, r.dur.Round(time.Millisecond), p.Name)
	}

	if *format == "json" {
		env := &report.Envelope{
			Preset:    p.Name,
			Seed:      p.Seed,
			Reports:   reports,
			Scheduler: experiments.SchedulerMeta(),
		}
		if *outDir == "" {
			if err := report.WriteJSON(os.Stdout, env); err != nil {
				fatal(err)
			}
		} else {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*outDir, "report.json"))
			if err != nil {
				fatal(err)
			}
			err = report.WriteJSON(f, env)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(progress, "fedsim: wrote %s\n", filepath.Join(*outDir, "report.json"))
		}
	}
	if len(ids) > 1 {
		fmt.Fprintf(progress, "(%d experiments, %d simulation cells, %d cell requests served from cache, wall %s)\n",
			len(ids), experiments.SimulationCount(), experiments.CacheHitCount(),
			time.Since(wallStart).Round(time.Millisecond))
	}
}

// parseTopology parses -topology (flat | edge:K) plus its companions into
// a ComposeTopology. Flat is the zero value.
func parseTopology(s, fold string, buffer int, topk float64) (experiments.ComposeTopology, error) {
	if s == "" || s == "flat" {
		return experiments.ComposeTopology{}, nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "edge:%d", &k); err != nil || k <= 0 {
		return experiments.ComposeTopology{}, fmt.Errorf("-topology %q: want flat or edge:K with K >= 1", s)
	}
	return experiments.ComposeTopology{Edges: k, Fold: fold, Buffer: buffer, TopKFrac: topk}, nil
}

// runComposition assembles a method from the base registry spec plus the
// policy overrides, runs it on the standard ablation testbed at the given
// preset, and prints a run summary. It returns the process exit code;
// composition and aggregation errors surface here rather than panicking.
func runComposition(base, sel, pacer, agg, name, preset string, trace bool, dyn experiments.ComposeDynamics, topo experiments.ComposeTopology) int {
	p, err := experiments.PresetByName(preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		return 2
	}
	m, err := fl.Compose(base, sel, pacer, agg, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		return 2
	}

	var obs []fl.Observer
	if trace && topo.Edges > 0 {
		fmt.Fprintln(os.Stderr, "fedsim: -trace is a flat-topology feature (a hierarchy has one event stream per edge)")
		return 2
	}
	if trace {
		obs = append(obs, fl.ObserverFunc(func(ev fl.Event) {
			switch e := ev.(type) {
			case fl.RoundStartEvent:
				fmt.Fprintf(os.Stderr, "t=%8.1fs  round %4d  tier %d: %d clients selected\n",
					e.Time, e.Round, e.Tier, len(e.Clients))
			case fl.ClientDoneEvent:
				if e.Dropped {
					fmt.Fprintf(os.Stderr, "t=%8.1fs  client %d dropped mid-round\n", e.Time, e.Client)
				}
			case fl.TierFoldEvent:
				fmt.Fprintf(os.Stderr, "t=%8.1fs  fold  %4d  tier %d: %d updates\n",
					e.Time, e.Round, e.Tier, e.Kept)
			case fl.EvalEvent:
				fmt.Fprintf(os.Stderr, "t=%8.1fs  eval  %4d  acc=%.3f loss=%.3f var=%.2e\n",
					e.Time, e.Round, e.Result.Acc, e.Result.Loss, e.Result.Variance)
			case fl.RetierEvent:
				fmt.Fprintf(os.Stderr, "t=%8.1fs  retier %3d  %d clients migrated\n",
					e.Time, e.Round, e.Migrations)
			}
		}))
	}

	start := time.Now()
	run, err := experiments.RunComposedTopology(p, m, dyn, topo, obs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		return 1
	}
	finalTime, perUpdate := 0.0, 0.0
	if len(run.Points) > 0 {
		finalTime = run.Points[len(run.Points)-1].Time
	}
	if run.GlobalRounds > 0 {
		perUpdate = finalTime / float64(run.GlobalRounds)
	}
	fmt.Printf("method %s (%s) on cifar10(#2) at preset %s\n", run.Method, m, p.Name)
	fmt.Printf("global updates    %d\n", run.GlobalRounds)
	fmt.Printf("best accuracy     %.3f\n", run.BestAcc())
	fmt.Printf("final accuracy    %.3f\n", run.FinalAcc())
	fmt.Printf("accuracy variance %.2e\n", run.MeanVariance())
	fmt.Printf("sec/update        %.1fs (%.1fs virtual total)\n", perUpdate, finalTime)
	fmt.Printf("communication     %.2f MB up, %.2f MB down\n",
		float64(run.UpBytes)/1e6, float64(run.DownBytes)/1e6)
	if run.Retiers > 0 {
		fmt.Printf("re-tiering        %d passes, %d client migrations\n", run.Retiers, run.TierMigrations)
	}
	if run.EdgeFolds > 0 {
		fmt.Printf("edge folds        %d cloud folds, mean staleness %.2f\n",
			run.EdgeFolds, run.EdgeStaleness/float64(run.EdgeFolds))
	}
	fmt.Fprintf(os.Stderr, "(completed in %s)\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// startProfiles switches on the requested pprof collectors and returns a
// flush function, safe to call more than once. The CPU profile streams
// until the flush; the heap profile is a single snapshot taken at flush
// time after a forced GC, so it reflects live retention rather than
// collectible garbage.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fedsim:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim:", err)
			}
			f.Close()
		}
	}, nil
}

// writeTextFile renders one report into <out>/<id>.txt.
func writeTextFile(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, rep.ID+".txt"), []byte(rep.String()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsim:", err)
	os.Exit(1)
}
