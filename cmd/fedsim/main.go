// Command fedsim regenerates the FedAT paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	fedsim -list
//	fedsim -exp table1 -preset medium
//	fedsim -exp all -preset small
//
// Reports print to stdout; see EXPERIMENTS.md for the paper-vs-measured
// comparison of each artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment id (table1, table2, fig2..fig10, ablation-*, or 'all')")
		preset = flag.String("preset", "small", "scale preset: tiny, small, medium, paper")
		list   = flag.Bool("list", false, "list experiments and exit")
		csvDir = flag.String("csv", "", "directory to write per-run CSV series into (optional)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-8s %s\n", id, experiments.Registry[id].Title)
		}
		fmt.Println("presets: tiny, small, medium, paper")
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "fedsim: -exp required (use -list to see experiments)")
		os.Exit(2)
	}
	p, err := experiments.PresetByName(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedsim:", err)
		os.Exit(2)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.RunByID(id, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s completed in %s at preset %s)\n\n", id, time.Since(start).Round(time.Millisecond), p.Name)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, id, rep); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim:", err)
				os.Exit(1)
			}
		}
	}
}

// writeCSVs dumps every kept run's evaluation series for plotting.
func writeCSVs(dir, expID string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for key, run := range rep.Runs {
		name := fmt.Sprintf("%s__%s.csv", expID, sanitize(key))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = run.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch c {
		case '/', ' ', '(', ')', '#', '%', '=':
			out[i] = '_'
		}
	}
	return string(out)
}
