// Compression tradeoff: train FedAT under different polyline precisions
// (the paper's Figure 5) and print the accuracy/bytes tradeoff, plus a
// direct look at the codec on a real weight vector.
//
//	go run ./examples/compression_tradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func main() {
	codecs := []struct {
		label string
		c     codec.Codec
	}{
		{"polyline-3", codec.NewPolyline(3)},
		{"polyline-4", codec.NewPolyline(4)},
		{"polyline-5", codec.NewPolyline(5)},
		{"no compression", codec.Raw{}},
	}

	fmt.Println("codec           best-acc  uploaded   ratio-vs-raw")
	fmt.Println("--------------  --------  ---------  ------------")
	var rawBytes int64
	results := make([]int64, len(codecs))
	accs := make([]float64, len(codecs))
	for i, entry := range codecs {
		run := trainWith(entry.c)
		results[i] = run.UpBytes
		accs[i] = run.BestAcc()
		if entry.label == "no compression" {
			rawBytes = run.UpBytes
		}
	}
	for i, entry := range codecs {
		ratio := float64(rawBytes) / float64(results[i])
		fmt.Printf("%-14s  %8.3f  %6.2f MB  %10.2fx\n",
			entry.label, accs[i], float64(results[i])/1e6, ratio)
	}

	// The codec itself, on one real trained model.
	fmt.Println("\nsingle-model payloads (trained MLP weights):")
	net := nn.NewMLP(rng.New(3), 100, 24, 10)
	w := net.WeightsCopy()
	for _, entry := range codecs {
		enc := entry.c.Encode(w)
		fmt.Printf("  %-14s %7d bytes (%.2fx vs float64, max error %.1e)\n",
			entry.label, len(enc), float64(8*len(w))/float64(len(enc)), entry.c.MaxError())
	}
}

func trainWith(c codec.Codec) *metrics.Run {
	fed, err := dataset.FashionLike(25, 2, dataset.ScaleSmall, 5)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients: 25, NumUnstable: 2, DropHorizon: 3000,
		SecPerBatch: 0.5, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 16 << 20,
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 24, fed.Classes)
	}
	env, err := fl.NewEnv(fed, cluster, factory, fl.RunConfig{
		Rounds: 300, ClientsPerRound: 5, LocalEpochs: 3, BatchSize: 10,
		Lambda: 0.4, LearningRate: 0.005, NumTiers: 5,
		Codec: c, EvalEvery: 20, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := fl.Run("fedat", env)
	if err != nil {
		log.Fatal(err)
	}
	return run
}
