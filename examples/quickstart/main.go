// Quickstart: train FedAT on a simulated 30-client federation and print the
// convergence timeline.
//
//	go run ./examples/quickstart
//
// This is the smallest end-to-end use of the public pieces: build a
// federated dataset, a virtual cluster with latency tiers, plug in a model
// factory, and run the FedAT method.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func main() {
	// 1. A federated dataset: 30 clients, 2 classes each (strong non-IID).
	fed, err := dataset.FashionLike(30, 2, dataset.ScaleSmall, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A virtual cluster: five latency tiers (0s .. 20-30s injected
	// delays), three unstable clients that drop out mid-training.
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients:  30,
		NumUnstable: 3,
		DropHorizon: 20000,
		SecPerBatch: 0.5,     // compute ~ the injected delays, like the paper's testbed
		UpBW:        1 << 20, // 1 MB/s client links
		DownBW:      1 << 20,
		ServerBW:    16 << 20, // shared server link
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The model every client trains (architecture must match across
	// clients; the seed only varies initialization).
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 24, fed.Classes)
	}

	// 4. FedAT with the paper's hyperparameters and polyline compression.
	env, err := fl.NewEnv(fed, cluster, factory, fl.RunConfig{
		Rounds:          500,
		ClientsPerRound: 5,
		LocalEpochs:     3,
		BatchSize:       10,
		Lambda:          0.4, // Eq. 3 proximal constraint
		LearningRate:    0.005,
		NumTiers:        5,
		Codec:           codec.NewPolyline(4), // §4.3 compression
		EvalEvery:       40,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// 5. Run it. FedAT is a composition of pluggable policies (random
	// selection / tier pacing / Eq. 5 folding); observers subscribe to the
	// run's event stream — here we count each tier's global updates.
	foldsPerTier := map[int]int{}
	counter := fl.ObserverFunc(func(ev fl.Event) {
		if f, ok := ev.(fl.TierFoldEvent); ok {
			foldsPerTier[f.Tier]++
		}
	})
	run, err := fl.Run("fedat", env, counter)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  time      acc    variance  uploaded")
	for _, p := range run.Points {
		fmt.Printf("%5d  %7.1fs  %.3f  %.2e  %8d B\n", p.Round, p.Time, p.Acc, p.Var, p.UpBytes)
	}
	fmt.Printf("\nbest accuracy %.3f after %d global updates; %s uploaded, %s downloaded\n",
		run.BestAcc(), run.GlobalRounds,
		fmtMB(run.UpBytes), fmtMB(run.DownBytes))
	fmt.Print("updates per tier (fast→slow):")
	for m := 0; m < 5; m++ {
		fmt.Printf(" %d", foldsPerTier[m])
	}
	fmt.Println(" — fast tiers update most; Eq. 5 reweights them down")
}

func fmtMB(b int64) string { return fmt.Sprintf("%.2f MB", float64(b)/1e6) }
