// Straggler comparison: run all six FL methods on the same straggler-heavy
// federation and print the robustness metrics of Definition 3.1 —
// convergence speed (virtual time per update and time-to-target), accuracy
// variance across clients, and final prediction accuracy.
//
//	go run ./examples/straggler_comparison
//
// This reproduces, at example scale, the story of the paper's Figure 2 and
// Table 1: asynchronous tiers tolerate stragglers that stall synchronous
// rounds, and the weighted aggregation keeps the accuracy balanced across
// clients.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func main() {
	const clients = 40
	methods := []string{"fedat", "tifl", "fedavg", "fedprox", "fedasync", "asofed"}

	fmt.Println("method    rounds   best-acc  acc-var    sec/update  up-MB")
	fmt.Println("--------  -------  --------  ---------  ----------  ------")
	for _, name := range methods {
		// Fresh environment per method: identical data, cluster and seed.
		fed, err := dataset.CIFAR10Like(clients, 2, dataset.ScaleSmall, 7)
		if err != nil {
			log.Fatal(err)
		}
		cluster, err := simnet.NewCluster(simnet.ClusterConfig{
			NumClients:  clients,
			NumUnstable: 4,
			DropHorizon: 30000,
			SecPerBatch: 0.5,
			UpBW:        1 << 20,
			DownBW:      1 << 20,
			ServerBW:    16 << 20,
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		factory := func(seed uint64) *nn.Network {
			return nn.NewMLP(rng.New(seed), fed.InDim, 24, fed.Classes)
		}
		// Every method gets the same virtual-TIME budget (the paper's
		// timeline protocol); the round caps just keep the cheap-update
		// methods from running forever.
		cfg := fl.RunConfig{
			Rounds:          300,
			ClientsPerRound: 8,
			LocalEpochs:     3,
			BatchSize:       10,
			Lambda:          0.4,
			LearningRate:    0.005,
			NumTiers:        5,
			EvalEvery:       15,
			MaxSimTime:      9000,
			Seed:            7,
		}
		switch name {
		case "fedat":
			cfg.Rounds, cfg.EvalEvery = 3600, 90
		case "fedasync", "asofed":
			cfg.Rounds, cfg.EvalEvery = 7200, 180
		}
		if name == "fedat" {
			cfg.Codec = codec.NewPolyline(4) // only FedAT compresses, as in the paper
		}
		env, err := fl.NewEnv(fed, cluster, factory, cfg)
		if err != nil {
			log.Fatal(err)
		}
		run, err := fl.Run(name, env)
		if err != nil {
			log.Fatal(err)
		}

		finalTime := 0.0
		if n := len(run.Points); n > 0 {
			finalTime = run.Points[n-1].Time
		}
		perUpdate := 0.0
		if run.GlobalRounds > 0 {
			perUpdate = finalTime / float64(run.GlobalRounds)
		}
		fmt.Printf("%-8s  %7d  %8.3f  %9.2e  %9.2fs  %6.1f\n",
			run.Method, run.GlobalRounds, run.BestAcc(), run.MeanVariance(),
			perUpdate, float64(run.UpBytes)/1e6)
	}
	fmt.Println("\nExpected shape (paper Table 1 / Figure 2): FedAT produces global updates an order of")
	fmt.Println("magnitude faster than FedAvg/FedProx, whose rounds stall on stragglers, while matching")
	fmt.Println("their accuracy; the wait-free FedAsync/ASO-Fed trail in accuracy despite their update rate.")
}
