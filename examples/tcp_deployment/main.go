// TCP deployment: run a real federated server and eight clients over
// localhost TCP in one process — the same code path as
// cmd/fedserver/cmd/fedclient. The server contains no method-specific loop:
// it hands the internal/fl policy engine a live fabric, so ANY registry
// method or composed variant deploys unchanged. To make the point, this
// example runs tier-paced FedAT and then wait-free FedAsync over the very
// same transport.
//
//	go run ./examples/tcp_deployment
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/transport"
)

const (
	numClients = 8
	rounds     = 12
	seed       = 11
)

func main() {
	fed, err := dataset.FashionLike(numClients, 2, dataset.ScaleSmall, seed)
	if err != nil {
		log.Fatal(err)
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	for _, method := range []string{"fedat", "fedasync"} {
		deploy(fed, factory, method)
	}
}

// deploy runs one registry method over loopback TCP and reports the final
// model's pooled held-out accuracy.
func deploy(fed *dataset.Federated, factory fl.ModelFactory, method string) {
	ref := factory(seed)
	var shapes []codec.ShapeInfo
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: numClients,
		Method:     fl.Methods[method],
		Run: fl.RunConfig{
			Rounds:          rounds,
			ClientsPerRound: 3,
			NumTiers:        3,
			LocalEpochs:     2,
			BatchSize:       8,
			Lambda:          0.4,
			Codec:           codec.NewPolyline(4),
			Seed:            seed,
		},
		Shapes:  shapes,
		W0:      ref.WeightsCopy(),
		Dataset: fed.Name,
		Eval:    fl.NewDataEvaluator(factory, seed, fed.Clients),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s server listening on %s\n", method, srv.Addr())

	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Latency hints spread the clients over three tiers; the
			// artificial delay makes the slow tier really slow.
			hint := uint32(50 + 300*(i%3))
			err := transport.RunClient(transport.ClientConfig{
				Addr:            srv.Addr(),
				ID:              uint32(i),
				LatencyHintMs:   hint,
				ArtificialDelay: time.Duration(hint) * time.Millisecond / 10,
				Data:            fed.Clients[i],
				Net:             factory(seed),
				Opt:             opt.NewAdam(0.01),
				Seed:            seed,
			})
			if err != nil {
				log.Printf("client %d: %v", i, err)
			}
		}(i)
	}

	run, final, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	// Evaluate the final global model on the pooled held-out data.
	eval := factory(seed)
	eval.SetWeights(final)
	correct, total := 0, 0
	for _, c := range fed.Clients {
		cor, _ := eval.Eval(c.TestX, c.TestY)
		correct += cor
		total += c.NumTest()
	}
	fmt.Printf("%s finished %d global updates over TCP (%.2f MB up)\n",
		run.Method, run.GlobalRounds, float64(run.UpBytes)/1e6)
	fmt.Printf("final model accuracy on held-out data: %.3f (%d/%d)\n\n",
		float64(correct)/float64(total), correct, total)
}
