// TCP deployment: run a real FedAT server and eight clients over localhost
// TCP in one process — the same code path as cmd/fedserver/cmd/fedclient,
// demonstrating that the aggregation core deploys outside the simulator.
//
//	go run ./examples/tcp_deployment
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	const (
		numClients = 8
		rounds     = 12
		seed       = 11
	)
	fed, err := dataset.FashionLike(numClients, 2, dataset.ScaleSmall, seed)
	if err != nil {
		log.Fatal(err)
	}
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	ref := factory(seed)
	var shapes []codec.ShapeInfo
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:            "127.0.0.1:0",
		NumClients:      numClients,
		NumTiers:        3,
		Rounds:          rounds,
		ClientsPerRound: 3,
		Weighted:        true,
		Codec:           codec.NewPolyline(4),
		Shapes:          shapes,
		W0:              ref.WeightsCopy(),
		Seed:            seed,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server listening on %s\n", srv.Addr())

	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Latency hints spread the clients over three tiers; the
			// artificial delay makes the slow tier really slow.
			hint := uint32(50 + 300*(i%3))
			err := transport.RunClient(transport.ClientConfig{
				Addr:            srv.Addr(),
				ID:              uint32(i),
				LatencyHintMs:   hint,
				ArtificialDelay: time.Duration(hint) * time.Millisecond / 10,
				Data:            fed.Clients[i],
				Net:             factory(seed),
				Opt:             opt.NewAdam(0.01),
				Epochs:          2,
				BatchSize:       8,
				Lambda:          0.4,
				Seed:            seed,
			})
			if err != nil {
				log.Printf("client %d: %v", i, err)
			}
		}(i)
	}

	final, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	// Evaluate the final global model on the pooled held-out data.
	eval := factory(seed)
	eval.SetWeights(final)
	correct, total := 0, 0
	for _, c := range fed.Clients {
		cor, _ := eval.Eval(c.TestX, c.TestY)
		correct += cor
		total += c.NumTest()
	}
	fmt.Printf("finished %d global rounds over TCP; tier update counts %v\n",
		srv.Aggregator().Rounds(), srv.Aggregator().TierCounts())
	fmt.Printf("final model accuracy on held-out data: %.3f (%d/%d)\n",
		float64(correct)/float64(total), correct, total)
}
