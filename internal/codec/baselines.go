package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Verbatim marks codecs whose Decode(Encode(w)) round-trip reproduces w
// bit-for-bit and whose payload size depends only on the vector length.
// The simulated channel uses this to skip materializing the byte payload on
// the hot path — the decoded weights are copied directly and the byte
// accounting uses PayloadBytes, so metrics and numerics are identical to
// the real round-trip.
type Verbatim interface {
	Codec
	// PayloadBytes returns len(Encode(w)) for any w with len(w) == n.
	PayloadBytes(n int) int
}

// Raw transmits float64s verbatim: the "No Compression" baseline of
// Figure 5.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// MaxError implements Codec.
func (Raw) MaxError() float64 { return 0 }

// Encode implements Codec.
func (Raw) Encode(w []float64) []byte {
	out := make([]byte, 8*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// Decode implements Codec.
func (Raw) Decode(data []byte, out []float64) error {
	if len(data) != 8*len(out) {
		return fmt.Errorf("%w: raw payload %d bytes, want %d", ErrCorrupt, len(data), 8*len(out))
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return nil
}

// PayloadBytes implements Verbatim: 8 bytes per coordinate.
func (Raw) PayloadBytes(n int) int { return 8 * n }

// Float32 halves the payload by casting to float32, a common cheap
// baseline.
type Float32 struct{}

// Name implements Codec.
func (Float32) Name() string { return "float32" }

// MaxError implements Codec: relative error of a float32 cast; for weights
// bounded by ~10 this is ~1e-6 absolute.
func (Float32) MaxError() float64 { return 1e-5 }

// Encode implements Codec.
func (Float32) Encode(w []float64) []byte {
	out := make([]byte, 4*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
	}
	return out
}

// Decode implements Codec.
func (Float32) Decode(data []byte, out []float64) error {
	if len(data) != 4*len(out) {
		return fmt.Errorf("%w: float32 payload %d bytes, want %d", ErrCorrupt, len(data), 4*len(out))
	}
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
	}
	return nil
}

// Quant8 linearly quantizes the vector into 8-bit codes against the payload
// min/max. This is the quantization-style baseline §4.3 argues degrades
// under non-IID weight divergence: its error scales with the weight RANGE,
// so a few diverged coordinates blow up the error of every coordinate —
// unlike polyline whose error is a fixed decimal precision.
type Quant8 struct{}

// Name implements Codec.
func (Quant8) Name() string { return "quant8" }

// MaxError implements Codec: input-dependent.
func (Quant8) MaxError() float64 { return math.Inf(1) }

// Encode implements Codec. Payload: min, max float64 then one code byte per
// value.
func (Quant8) Encode(w []float64) []byte {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range w {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if len(w) == 0 {
		lo, hi = 0, 0
	}
	out := make([]byte, 16+len(w))
	binary.LittleEndian.PutUint64(out, math.Float64bits(lo))
	binary.LittleEndian.PutUint64(out[8:], math.Float64bits(hi))
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for i, v := range w {
		code := math.Round((v - lo) / span * 255)
		out[16+i] = byte(code)
	}
	return out
}

// Decode implements Codec.
func (Quant8) Decode(data []byte, out []float64) error {
	if len(data) != 16+len(out) {
		return fmt.Errorf("%w: quant8 payload %d bytes, want %d", ErrCorrupt, len(data), 16+len(out))
	}
	lo := math.Float64frombits(binary.LittleEndian.Uint64(data))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for i := range out {
		out[i] = lo + float64(data[16+i])/255*span
	}
	return nil
}

// CompressionRatio reports uncompressed float64 bytes divided by encoded
// bytes for a given payload — the metric the paper quotes (up to 3.5×).
func CompressionRatio(c Codec, w []float64) float64 {
	enc := c.Encode(w)
	if len(enc) == 0 {
		return 0
	}
	return float64(8*len(w)) / float64(len(enc))
}
