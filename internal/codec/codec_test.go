package codec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randWeights(r *rng.RNG, n int, scale float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = scale * r.Norm()
	}
	return w
}

func roundTrip(t *testing.T, c Codec, w []float64) []float64 {
	t.Helper()
	enc := c.Encode(w)
	out := make([]float64, len(w))
	if err := c.Decode(enc, out); err != nil {
		t.Fatalf("%s decode failed: %v", c.Name(), err)
	}
	return out
}

func TestPolylineRoundTripErrorBound(t *testing.T) {
	r := rng.New(1)
	for _, p := range []int{3, 4, 5, 6} {
		for _, delta := range []bool{false, true} {
			c := &Polyline{Precision: p, Delta: delta}
			w := randWeights(r, 500, 0.3)
			out := roundTrip(t, c, w)
			bound := c.MaxError() + 1e-12
			for i := range w {
				if math.Abs(w[i]-out[i]) > bound {
					t.Fatalf("%s error %v exceeds bound %v", c.Name(), math.Abs(w[i]-out[i]), bound)
				}
			}
		}
	}
}

func TestPolylineRoundTripProperty(t *testing.T) {
	c := NewPolyline(4)
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				vals[i] = 0.5
			}
		}
		out := make([]float64, len(vals))
		if err := c.Decode(c.Encode(vals), out); err != nil {
			return false
		}
		for i := range vals {
			if math.Abs(vals[i]-out[i]) > c.MaxError()+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagInvolution(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagSmallMagnitudesStaySmall(t *testing.T) {
	for v := int64(-16); v <= 16; v++ {
		if zigzag(v) > 33 {
			t.Fatalf("zigzag(%d) = %d", v, zigzag(v))
		}
	}
}

func TestVarintASCIIRange(t *testing.T) {
	// The polyline wire format must stay printable ASCII (63..126).
	c := NewPolyline(5)
	enc := c.Encode(randWeights(rng.New(2), 300, 1))
	for _, b := range enc {
		if b < 63 || b > 126 {
			t.Fatalf("non-polyline byte %d in payload", b)
		}
	}
}

func TestPolylineHandlesNonFinite(t *testing.T) {
	c := NewPolyline(4)
	w := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300, 0.5}
	out := make([]float64, len(w))
	if err := c.Decode(c.Encode(w), out); err != nil {
		t.Fatalf("decode failed on clamped payload: %v", err)
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite survived the codec: %v", out)
		}
	}
	if math.Abs(out[5]-0.5) > c.MaxError() {
		t.Fatal("finite value corrupted by clamping neighbours")
	}
}

func TestPolylineCompressionRatio(t *testing.T) {
	// Realistic weights (|w| mostly < 1) at precision 4 should beat 2×
	// vs float64, in the regime the paper reports (up to 3.5×).
	r := rng.New(3)
	w := randWeights(r, 5000, 0.15)
	ratio := CompressionRatio(NewPolyline(4), w)
	if ratio < 2 {
		t.Fatalf("polyline4 ratio %v, want >= 2", ratio)
	}
	ratio3 := CompressionRatio(NewPolyline(3), w)
	if ratio3 <= ratio {
		t.Fatalf("precision 3 (%v) should compress better than 4 (%v)", ratio3, ratio)
	}
}

func TestDeltaHelpsOnSmoothData(t *testing.T) {
	// Strongly correlated neighbours → delta payload smaller.
	n := 2000
	w := make([]float64, n)
	for i := range w {
		w[i] = 5 + 0.0001*float64(i%7)
	}
	abs := len(NewPolyline(4).Encode(w))
	del := len(NewPolylineDelta(4).Encode(w))
	if del >= abs {
		t.Fatalf("delta (%d bytes) not smaller than absolute (%d) on smooth data", del, abs)
	}
}

func TestRawLossless(t *testing.T) {
	r := rng.New(4)
	w := randWeights(r, 100, 3)
	out := roundTrip(t, Raw{}, w)
	for i := range w {
		if w[i] != out[i] {
			t.Fatal("raw codec is not lossless")
		}
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	w := []float64{0.1, -2.5, 1e-3}
	out := roundTrip(t, Float32{}, w)
	for i := range w {
		if math.Abs(w[i]-out[i]) > 1e-6*math.Abs(w[i])+1e-9 {
			t.Fatalf("float32 error too large at %d: %v vs %v", i, w[i], out[i])
		}
	}
}

func TestQuant8RangeSensitivity(t *testing.T) {
	// The §4.3 argument: one diverged coordinate destroys everyone's
	// precision under range quantization but not under polyline.
	w := make([]float64, 100)
	for i := range w {
		w[i] = 0.01 * float64(i%10)
	}
	w[0] = 1000 // diverged weight
	q := roundTrip(t, Quant8{}, w)
	p := roundTrip(t, NewPolyline(4), w)
	quantErr, polyErr := 0.0, 0.0
	for i := 1; i < len(w); i++ {
		quantErr += math.Abs(w[i] - q[i])
		polyErr += math.Abs(w[i] - p[i])
	}
	if quantErr < 10*polyErr {
		t.Fatalf("expected quant8 (%v) to degrade much worse than polyline (%v)", quantErr, polyErr)
	}
}

func TestDecodeCorruptPayloads(t *testing.T) {
	c := NewPolyline(4)
	out := make([]float64, 3)
	if err := c.Decode([]byte{1, 2, 3}, out); err == nil {
		t.Fatal("low bytes accepted")
	}
	enc := c.Encode([]float64{1, 2, 3})
	if err := c.Decode(enc[:len(enc)-1], out); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if err := c.Decode(append(enc, 'a'), out); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestMarshalModelRoundTrip(t *testing.T) {
	shapes := []ShapeInfo{
		{Name: "W", Dims: []int{4, 3}},
		{Name: "b", Dims: []int{4}},
	}
	w := randWeights(rng.New(5), 16, 0.5)
	for _, c := range []Codec{Raw{}, Float32{}, Quant8{}, NewPolyline(4), NewPolylineDelta(5)} {
		msg, err := MarshalModel(c, shapes, w)
		if err != nil {
			t.Fatalf("%s marshal: %v", c.Name(), err)
		}
		gotShapes, gotW, err := UnmarshalModel(msg)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", c.Name(), err)
		}
		if len(gotShapes) != 2 || gotShapes[0].Name != "W" || gotShapes[1].Dims[0] != 4 {
			t.Fatalf("%s shapes corrupted: %+v", c.Name(), gotShapes)
		}
		if len(gotW) != 16 {
			t.Fatalf("%s weight count %d", c.Name(), len(gotW))
		}
		tol := c.MaxError()
		if math.IsInf(tol, 1) {
			tol = 1 // quant8 on this data
		}
		for i := range w {
			if math.Abs(w[i]-gotW[i]) > tol+1e-9 {
				t.Fatalf("%s weight %d error %v", c.Name(), i, math.Abs(w[i]-gotW[i]))
			}
		}
	}
}

func TestMarshalModelShapeMismatch(t *testing.T) {
	_, err := MarshalModel(Raw{}, []ShapeInfo{{Name: "W", Dims: []int{2, 2}}}, make([]float64, 3))
	if err == nil {
		t.Fatal("shape/weight mismatch accepted")
	}
}

func TestUnmarshalModelCorrupt(t *testing.T) {
	msg, err := MarshalModel(NewPolyline(4), []ShapeInfo{{Name: "W", Dims: []int{2}}}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 6, len(msg) - 1} {
		if cut >= len(msg) {
			continue
		}
		if _, _, err := UnmarshalModel(msg[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte{}, msg...)
	bad[0] = 99
	if _, _, err := UnmarshalModel(bad); err == nil {
		t.Fatal("unknown codec id accepted")
	}
}

func BenchmarkPolylineEncode(b *testing.B) {
	w := randWeights(rng.New(1), 10000, 0.2)
	c := NewPolyline(4)
	b.ReportAllocs()
	b.SetBytes(int64(8 * len(w)))
	for i := 0; i < b.N; i++ {
		c.Encode(w)
	}
}

func BenchmarkPolylineDecode(b *testing.B) {
	w := randWeights(rng.New(1), 10000, 0.2)
	c := NewPolyline(4)
	enc := c.Encode(w)
	out := make([]float64, len(w))
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		if err := c.Decode(enc, out); err != nil {
			b.Fatal(err)
		}
	}
}
