package codec

import (
	"encoding/binary"
	"fmt"
)

// ShapeInfo mirrors a layer parameter block (name + dims). The paper's §4.3
// transmits "the dimensions of the weights of each layer" with the
// compressed payload; MarshalModel reproduces that wire format so the
// receiver can unmarshal weights back into layers.
type ShapeInfo struct {
	Name string
	Dims []int
}

// Size is the number of elements in the block.
func (s ShapeInfo) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// codec wire ids
const (
	wireRaw = iota
	wireFloat32
	wireQuant8
	wirePolyline
	wirePolylineDelta
	wireTopK
)

func codecWireID(c Codec) (id byte, precision byte, err error) {
	switch v := c.(type) {
	case Raw, *Raw:
		return wireRaw, 0, nil
	case Float32, *Float32:
		return wireFloat32, 0, nil
	case Quant8, *Quant8:
		return wireQuant8, 0, nil
	case *Polyline:
		if v.Precision < 0 || v.Precision > 12 {
			return 0, 0, fmt.Errorf("codec: polyline precision %d out of range", v.Precision)
		}
		if v.Delta {
			return wirePolylineDelta, byte(v.Precision), nil
		}
		return wirePolyline, byte(v.Precision), nil
	case *TopK:
		// The precision byte carries the kept fraction in percent, so the
		// wire supports 1%..100% in whole-percent steps — the edge→cloud
		// uplink's -uplink-topk granularity.
		pct := int(v.Frac*100 + 0.5)
		if pct < 1 || pct > 100 {
			return 0, 0, fmt.Errorf("codec: top-k fraction %g not representable in whole percents", v.Frac)
		}
		return wireTopK, byte(pct), nil
	default:
		return 0, 0, fmt.Errorf("codec: unknown codec %T", c)
	}
}

func codecFromWire(id, precision byte) (Codec, error) {
	switch id {
	case wireRaw:
		return Raw{}, nil
	case wireFloat32:
		return Float32{}, nil
	case wireQuant8:
		return Quant8{}, nil
	case wirePolyline:
		return &Polyline{Precision: int(precision)}, nil
	case wirePolylineDelta:
		return &Polyline{Precision: int(precision), Delta: true}, nil
	case wireTopK:
		if precision < 1 || precision > 100 {
			return nil, fmt.Errorf("%w: top-k percent %d", ErrCorrupt, precision)
		}
		return &TopK{Frac: float64(precision) / 100}, nil
	default:
		return nil, fmt.Errorf("%w: codec id %d", ErrCorrupt, id)
	}
}

// IsTopKMessage reports whether a marshalled model message was encoded
// with the top-k codec — the receiver of an edge→cloud uplink uses it to
// tell a sparsified DELTA (to be added onto the shared reference) from an
// absolute model.
func IsTopKMessage(data []byte) bool {
	return len(data) > 0 && data[0] == wireTopK
}

// MarshalModel builds the self-describing model message:
//
//	[codecID u8][precision u8][numShapes u16]
//	  per shape: [nameLen u8][name][numDims u8][dims u32...]
//	[payloadLen u32][payload]
//
// The header is what the paper calls "marshalling": flatten weights, attach
// per-layer dimensions, compress.
func MarshalModel(c Codec, shapes []ShapeInfo, w []float64) ([]byte, error) {
	id, prec, err := codecWireID(c)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range shapes {
		total += s.Size()
	}
	if total != len(w) {
		return nil, fmt.Errorf("codec: shapes cover %d elements, weights have %d", total, len(w))
	}
	payload := c.Encode(w)
	out := make([]byte, 0, 64+len(payload))
	out = append(out, id, prec)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(shapes)))
	for _, s := range shapes {
		if len(s.Name) > 255 || len(s.Dims) > 255 {
			return nil, fmt.Errorf("codec: shape %q too large for wire format", s.Name)
		}
		out = append(out, byte(len(s.Name)))
		out = append(out, s.Name...)
		out = append(out, byte(len(s.Dims)))
		for _, d := range s.Dims {
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		}
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// UnmarshalModel parses a model message, returning the shape list and the
// reconstructed flat weight vector.
func UnmarshalModel(data []byte) ([]ShapeInfo, []float64, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	c, err := codecFromWire(data[0], data[1])
	if err != nil {
		return nil, nil, err
	}
	numShapes := int(binary.LittleEndian.Uint16(data[2:]))
	pos := 4
	shapes := make([]ShapeInfo, 0, numShapes)
	total := 0
	for i := 0; i < numShapes; i++ {
		if pos >= len(data) {
			return nil, nil, fmt.Errorf("%w: truncated shape table", ErrCorrupt)
		}
		nameLen := int(data[pos])
		pos++
		if pos+nameLen+1 > len(data) {
			return nil, nil, fmt.Errorf("%w: truncated shape name", ErrCorrupt)
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		numDims := int(data[pos])
		pos++
		if pos+4*numDims > len(data) {
			return nil, nil, fmt.Errorf("%w: truncated dims", ErrCorrupt)
		}
		dims := make([]int, numDims)
		for d := 0; d < numDims; d++ {
			dims[d] = int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		}
		s := ShapeInfo{Name: name, Dims: dims}
		shapes = append(shapes, s)
		total += s.Size()
	}
	if pos+4 > len(data) {
		return nil, nil, fmt.Errorf("%w: missing payload length", ErrCorrupt)
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if pos+payloadLen != len(data) {
		return nil, nil, fmt.Errorf("%w: payload length %d does not match remaining %d", ErrCorrupt, payloadLen, len(data)-pos)
	}
	w := make([]float64, total)
	if err := c.Decode(data[pos:pos+payloadLen], w); err != nil {
		return nil, nil, err
	}
	return shapes, w, nil
}
