// Package codec implements the model-compression schemes FedAT transmits
// weights with. The primary codec is the Encoded Polyline Algorithm (§4.3):
// each float is rounded to a configurable decimal precision, zigzag-encoded
// and emitted as base64-ish ASCII in 5-bit chunks with a continuation bit —
// Google's polyline format generalized from coordinates to weight vectors.
// An optional delta mode encodes successive differences, which shrinks
// payloads further when neighbouring weights are correlated.
//
// Baselines for the compression experiments: Raw (uncompressed float64),
// Float32 (half-width floats) and Quant8 (linear 8-bit quantization, the
// kind of scheme §4.3 argues loses too much under non-IID divergence).
package codec

import (
	"errors"
	"fmt"
	"math"
)

// Codec turns a weight vector into bytes and back. Encodings may be lossy;
// MaxError reports the worst-case absolute reconstruction error (0 for
// lossless, +Inf when input-dependent).
type Codec interface {
	Name() string
	Encode(w []float64) []byte
	// Decode reconstructs into out, which must have the original length.
	Decode(data []byte, out []float64) error
	// MaxError is the absolute error bound per coordinate.
	MaxError() float64
}

// ErrCorrupt is returned when a payload cannot be decoded.
var ErrCorrupt = errors.New("codec: corrupt payload")

// polyline chunking constants (Google Encoded Polyline Algorithm Format).
const (
	chunkBits   = 5
	chunkMask   = 0x1F
	continueBit = 0x20
	asciiOffset = 63
	// maxMagnitude guards the fixed-point conversion: values are clamped so
	// the scaled integer stays well inside int64.
	maxMagnitude = 1 << 46
)

// Polyline is the paper's compressor. Precision is the number of decimal
// places kept (the paper evaluates 3..6 in Figure 5 and defaults to 4).
// Delta switches to successive-difference encoding.
type Polyline struct {
	Precision int
	Delta     bool
}

// NewPolyline returns the codec at the given precision in absolute mode.
func NewPolyline(precision int) *Polyline { return &Polyline{Precision: precision} }

// NewPolylineDelta returns the codec in delta mode.
func NewPolylineDelta(precision int) *Polyline {
	return &Polyline{Precision: precision, Delta: true}
}

// Name implements Codec.
func (p *Polyline) Name() string {
	mode := ""
	if p.Delta {
		mode = "-delta"
	}
	return fmt.Sprintf("polyline%d%s", p.Precision, mode)
}

// MaxError implements Codec: rounding to Precision decimals is off by at
// most half a unit in the last place.
func (p *Polyline) MaxError() float64 {
	return 0.5 * math.Pow(10, -float64(p.Precision))
}

func (p *Polyline) scale() float64 { return math.Pow(10, float64(p.Precision)) }

// Encode implements Codec.
func (p *Polyline) Encode(w []float64) []byte {
	s := p.scale()
	// Typical weights in (-1,1) at precision 4 need 3-4 chars; reserve 4.
	out := make([]byte, 0, 4*len(w))
	prev := int64(0)
	for _, v := range w {
		q := quantize(v, s)
		enc := q
		if p.Delta {
			enc = q - prev
			prev = q
		}
		out = appendVarint(out, zigzag(enc))
	}
	return out
}

// Decode implements Codec.
func (p *Polyline) Decode(data []byte, out []float64) error {
	s := p.scale()
	pos := 0
	prev := int64(0)
	for i := range out {
		u, n, err := readVarint(data[pos:])
		if err != nil {
			return err
		}
		pos += n
		v := unzigzag(u)
		if p.Delta {
			v += prev
			prev = v
		}
		out[i] = float64(v) / s
	}
	if pos != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-pos)
	}
	return nil
}

// quantize rounds v*s to the nearest integer, clamping non-finite and
// out-of-range values so a diverged weight cannot corrupt a payload.
func quantize(v float64, s float64) int64 {
	x := v * s
	if math.IsNaN(x) {
		return 0
	}
	if x > maxMagnitude {
		x = maxMagnitude
	} else if x < -maxMagnitude {
		x = -maxMagnitude
	}
	return int64(math.Round(x))
}

// zigzag maps signed to unsigned so small magnitudes stay small.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendVarint emits u in little-endian 5-bit chunks, each offset by 63 and
// flagged with the continuation bit except the last — the polyline wire
// format.
func appendVarint(out []byte, u uint64) []byte {
	for u >= continueBit {
		out = append(out, (byte(u&chunkMask)|continueBit)+asciiOffset)
		u >>= chunkBits
	}
	return append(out, byte(u)+asciiOffset)
}

// readVarint decodes one value, returning it and the bytes consumed.
func readVarint(data []byte) (uint64, int, error) {
	var u uint64
	shift := uint(0)
	for i, b := range data {
		if b < asciiOffset {
			return 0, 0, fmt.Errorf("%w: byte %d below offset", ErrCorrupt, b)
		}
		c := b - asciiOffset
		u |= uint64(c&chunkMask) << shift
		if c&continueBit == 0 {
			return u, i + 1, nil
		}
		shift += chunkBits
		if shift > 63 {
			return 0, 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
	}
	return 0, 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
}
