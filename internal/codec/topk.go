package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// TopK is the magnitude-sparsification baseline from the communication-
// efficient FL literature the paper surveys (§2.2, e.g. sparse binary
// compression): only the k largest-magnitude coordinates are transmitted as
// (index, float32) pairs; the receiver fills the rest with zeros.
//
// Like Quant8 it is included as a comparison point: under non-IID FL the
// dropped coordinates are exactly the small-but-systematic updates the slow
// tiers contribute, which is why the paper prefers a precision-bounded
// codec over a sparsity-bounded one.
type TopK struct {
	// Frac is the fraction of coordinates kept, in (0, 1].
	Frac float64
}

// NewTopK returns the codec keeping the given fraction of coordinates.
func NewTopK(frac float64) *TopK {
	if frac <= 0 || frac > 1 {
		panic("codec: TopK fraction must be in (0,1]")
	}
	return &TopK{Frac: frac}
}

// Name implements Codec.
func (t *TopK) Name() string { return fmt.Sprintf("topk%.2f", t.Frac) }

// MaxError implements Codec: dropped coordinates can be arbitrarily large,
// so the bound is input-dependent.
func (t *TopK) MaxError() float64 { return math.Inf(1) }

// Encode implements Codec. Payload: count u32, then count × (index u32,
// value float32).
func (t *TopK) Encode(w []float64) []byte {
	k := int(t.Frac * float64(len(w)))
	if k < 1 && len(w) > 0 {
		k = 1
	}
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection would be faster; a full sort keeps the payload
	// deterministic (ties broken by index) which the reproducibility
	// guarantees require.
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(w[idx[a]]) > math.Abs(w[idx[b]])
	})
	keep := idx[:k]
	sort.Ints(keep)
	out := make([]byte, 4+8*k)
	binary.LittleEndian.PutUint32(out, uint32(k))
	for i, j := range keep {
		binary.LittleEndian.PutUint32(out[4+8*i:], uint32(j))
		binary.LittleEndian.PutUint32(out[8+8*i:], math.Float32bits(float32(w[j])))
	}
	return out
}

// Decode implements Codec.
func (t *TopK) Decode(data []byte, out []float64) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: topk payload too short", ErrCorrupt)
	}
	k := int(binary.LittleEndian.Uint32(data))
	if len(data) != 4+8*k {
		return fmt.Errorf("%w: topk payload %d bytes for k=%d", ErrCorrupt, len(data), k)
	}
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < k; i++ {
		j := int(binary.LittleEndian.Uint32(data[4+8*i:]))
		if j < 0 || j >= len(out) {
			return fmt.Errorf("%w: topk index %d out of range", ErrCorrupt, j)
		}
		out[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[8+8*i:])))
	}
	return nil
}
