package codec

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTopKKeepsLargestMagnitudes(t *testing.T) {
	w := []float64{0.1, -5, 0.2, 3, -0.05, 0.01, 2, -0.3}
	c := NewTopK(0.375) // keep 3 of 8
	out := make([]float64, len(w))
	if err := c.Decode(c.Encode(w), out); err != nil {
		t.Fatal(err)
	}
	// The three largest magnitudes are -5, 3, 2.
	wantKept := map[int]bool{1: true, 3: true, 6: true}
	for i, v := range out {
		if wantKept[i] {
			if math.Abs(v-w[i]) > 1e-6 {
				t.Fatalf("kept coordinate %d corrupted: %v vs %v", i, v, w[i])
			}
		} else if v != 0 {
			t.Fatalf("dropped coordinate %d nonzero: %v", i, v)
		}
	}
}

func TestTopKFullFractionIsFloat32(t *testing.T) {
	r := rng.New(1)
	w := randWeights(r, 50, 1)
	c := NewTopK(1)
	out := make([]float64, len(w))
	if err := c.Decode(c.Encode(w), out); err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(w[i]-out[i]) > 1e-6*math.Abs(w[i])+1e-9 {
			t.Fatalf("full-fraction topk lossy beyond float32 at %d", i)
		}
	}
}

func TestTopKPayloadSmallerThanRaw(t *testing.T) {
	r := rng.New(2)
	w := randWeights(r, 1000, 1)
	enc := NewTopK(0.1).Encode(w)
	if len(enc) >= 8*len(w)/2 {
		t.Fatalf("topk 10%% payload not small: %d bytes vs %d raw", len(enc), 8*len(w))
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	w := []float64{1, 1, 1, 1}
	c := NewTopK(0.5)
	a := c.Encode(w)
	b := c.Encode(w)
	if string(a) != string(b) {
		t.Fatal("topk encoding not deterministic under ties")
	}
	out := make([]float64, 4)
	if err := c.Decode(a, out); err != nil {
		t.Fatal(err)
	}
	// Stable tie-break keeps the first two indices.
	if out[0] != 1 || out[1] != 1 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("tie-break not index-stable: %v", out)
	}
}

func TestTopKCorruptPayloads(t *testing.T) {
	c := NewTopK(0.5)
	out := make([]float64, 4)
	if err := c.Decode([]byte{1, 2}, out); err == nil {
		t.Fatal("short payload accepted")
	}
	enc := c.Encode([]float64{1, 2, 3, 4})
	if err := c.Decode(enc[:len(enc)-1], out); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Corrupt an index to point out of range.
	bad := append([]byte{}, enc...)
	bad[4] = 0xFF
	bad[5] = 0xFF
	bad[6] = 0xFF
	bad[7] = 0xFF
	if err := c.Decode(bad, out); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestTopKPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction accepted")
		}
	}()
	NewTopK(0)
}
