// Package core implements FedAT's server-side aggregation state machine
// (Algorithm 2): one model per tier updated synchronously from that tier's
// clients, update counters per tier, and the cross-tier weighted average of
// Eq. 5 that produces the global model.
//
// The aggregator is deliberately independent of any clock or transport: it
// is the server state behind internal/fl's avg and eq5 update rules, and
// the method engine drives it identically on the simulated fabric and the
// live TCP fabric, so simulation results reflect the deployable system.
package core

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Aggregator is FedAT's server state. It is safe for concurrent use
// (checkpointing and status readers may race the update path), though the
// method engine serializes UpdateTier calls through its run loop — the
// paper likewise serializes aggregation through the server (Figure 1's
// aggregation box).
type Aggregator struct {
	mu sync.Mutex

	m        int
	weighted bool // Eq. 5 weighting; false = uniform (the Figure 6 ablation)

	tierW  [][]float64 // w_tier m, initialized to w0 (Algorithm 2)
	counts []int       // T_tier m
	total  int         // T = Σ counts
	global []float64   // cached weighted average
	w0     []float64

	wScratch []float64 // reused Eq. 5 weight vector for the fold path
}

// NewAggregator builds the server state for m tiers starting from the
// initial global weights w0.
func NewAggregator(m int, w0 []float64, weighted bool) (*Aggregator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: need at least one tier")
	}
	if len(w0) == 0 {
		return nil, fmt.Errorf("core: empty initial weights")
	}
	a := &Aggregator{
		m:        m,
		weighted: weighted,
		tierW:    make([][]float64, m),
		counts:   make([]int, m),
		global:   tensor.Copy(w0),
		w0:       tensor.Copy(w0),
	}
	for i := range a.tierW {
		a.tierW[i] = tensor.Copy(w0)
	}
	return a, nil
}

// M returns the tier count.
func (a *Aggregator) M() int { return a.m }

// Rounds returns t, the number of global updates so far.
func (a *Aggregator) Rounds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// TierCounts returns a copy of the per-tier update counters T_tier.
func (a *Aggregator) TierCounts() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, a.m)
	copy(out, a.counts)
	return out
}

// Global returns a copy of the current global model w_t.
func (a *Aggregator) Global() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return tensor.Copy(a.global)
}

// GlobalRef returns the live global-model buffer without copying. The
// buffer is rewritten in place by the next UpdateTier/UpdateTierRef, so the
// reference is read-only and valid only until the next fold — callers that
// retain it across folds must copy. This is the zero-alloc accessor the
// update rules use on the hot path; external readers should prefer Global.
func (a *Aggregator) GlobalRef() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.global
}

// Rebase replaces every tier model and the cached global with w — the
// state reset a hierarchical edge performs when it adopts the cloud's
// merged model, mirroring how Algorithm 2 starts every tier from one
// shared w0. Update counters are deliberately kept: Eq. 5's weighting
// measures each tier's update activity, which adopting a merged model does
// not erase. Returns the new global reference (read-only, valid until the
// next fold).
func (a *Aggregator) Rebase(w []float64) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(w) != len(a.global) {
		panic(fmt.Sprintf("core: Rebase with %d weights, state has %d", len(w), len(a.global)))
	}
	for i := range a.tierW {
		copy(a.tierW[i], w)
	}
	copy(a.global, w)
	return a.global
}

// TierModel returns a copy of tier m's current model.
func (a *Aggregator) TierModel(m int) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return tensor.Copy(a.tierW[m])
}

// TierWeights returns the Eq. 5 aggregation weights that the NEXT global
// average will use: weight of tier m is proportional to T_tier(M+1−m)
// (1-indexed in the paper; mirrored index here), with add-one smoothing —
// weight_m = (T_tier(M+1−m)+1)/(T+M).
//
// The smoothing is a deliberate, documented deviation from the literal
// Eq. 5: taken verbatim, the formula assigns weight T_tierM/T = 0 to the
// only tier that HAS updated during the early rounds (its mirror partner
// has no updates yet), collapsing the global model back to w0. Add-one
// smoothing preserves the paper's ordering property (slower tiers weigh
// more), keeps Σ weights = 1, reduces to exactly 1 for a single tier
// (FedAT = FedAvg, §4.1), and converges to the literal Eq. 5 as T grows.
// In uniform mode every tier weighs 1/M (the Figure 6 ablation).
func (a *Aggregator) TierWeights() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tierWeightsLocked()
}

func (a *Aggregator) tierWeightsLocked() []float64 {
	w := make([]float64, a.m)
	a.tierWeightsIntoLocked(w)
	return w
}

func (a *Aggregator) tierWeightsIntoLocked(w []float64) {
	if !a.weighted {
		for i := range w {
			w[i] = 1 / float64(a.m)
		}
		return
	}
	den := float64(a.total + a.m)
	for m := 0; m < a.m; m++ {
		// Paper (1-indexed): weight of tier m mirrors T_tier(M+1−m).
		// 0-indexed: counts[M−1−m], plus the smoothing pseudo-count.
		w[m] = (float64(a.counts[a.m-1-m]) + 1) / den
	}
}

// ClientUpdate is one client's contribution to a tier round.
type ClientUpdate struct {
	Weights []float64
	N       int // n_k, the client's local sample count
	// Client identifies the originating client for update rules that keep
	// per-client server state (ASO-Fed's model copies). The tier aggregator
	// itself does not read it.
	Client int
	// StartRound is the global update count when this client downloaded the
	// snapshot it trained from — the per-update staleness anchor for the
	// asynchronous update rules. Synchronous cohorts share one anchor;
	// buffered arrivals (fedbuff) each carry their own. The tier aggregator
	// itself does not read it.
	StartRound int
}

// UpdateTier performs one tier-m round (the body of Algorithm 2): the
// clients' models are n_k-weighted into w_tier m, the counters advance, and
// the global model is recomputed as the cross-tier weighted average. It
// returns a copy of the fresh global model.
func (a *Aggregator) UpdateTier(m int, updates []ClientUpdate) ([]float64, error) {
	g, err := a.updateTier(m, updates, true)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// UpdateTierRef is UpdateTier without the defensive copy: the returned
// slice is the aggregator's live global buffer, rewritten in place by the
// next fold. Same read-only-until-next-fold contract as GlobalRef. Folds
// run in the exact summation order of UpdateTier, so the numeric result is
// bit-identical.
func (a *Aggregator) UpdateTierRef(m int, updates []ClientUpdate) ([]float64, error) {
	return a.updateTier(m, updates, false)
}

func (a *Aggregator) updateTier(m int, updates []ClientUpdate, copyOut bool) ([]float64, error) {
	if m < 0 || m >= a.m {
		return nil, fmt.Errorf("core: tier %d out of range [0,%d)", m, a.m)
	}
	if len(updates) == 0 {
		return nil, fmt.Errorf("core: tier %d round with no client updates", m)
	}
	nc := 0
	for _, u := range updates {
		if len(u.Weights) != len(a.global) {
			return nil, fmt.Errorf("core: client update has %d weights, want %d", len(u.Weights), len(a.global))
		}
		if u.N <= 0 {
			return nil, fmt.Errorf("core: client update with non-positive sample count %d", u.N)
		}
		nc += u.N
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	// w_tier m = Σ n_k/N_c · w_k
	dst := a.tierW[m]
	tensor.Zero(dst)
	for _, u := range updates {
		tensor.Axpy(float64(u.N)/float64(nc), u.Weights, dst)
	}
	a.counts[m]++
	a.total++
	a.recomputeGlobalLocked()
	if copyOut {
		return tensor.Copy(a.global), nil
	}
	return a.global, nil
}

func (a *Aggregator) recomputeGlobalLocked() {
	if len(a.wScratch) != a.m {
		a.wScratch = make([]float64, a.m)
	}
	a.tierWeightsIntoLocked(a.wScratch)
	tensor.WeightedSumInto(a.global, a.wScratch, a.tierW)
}

// Reset restores the aggregator to its initial state (used between
// experiment repetitions).
func (a *Aggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.tierW {
		copy(a.tierW[i], a.w0)
	}
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.total = 0
	copy(a.global, a.w0)
}
