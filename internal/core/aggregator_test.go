package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func newAgg(t *testing.T, m int, w0 []float64, weighted bool) *Aggregator {
	t.Helper()
	a, err := NewAggregator(m, w0, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInitialGlobalIsW0(t *testing.T) {
	w0 := []float64{1, 2, 3}
	a := newAgg(t, 3, w0, true)
	g := a.Global()
	for i := range w0 {
		if g[i] != w0[i] {
			t.Fatalf("initial global %v", g)
		}
	}
	if a.Rounds() != 0 {
		t.Fatal("rounds should start at 0")
	}
}

func TestTierWeightsSumToOne(t *testing.T) {
	f := func(c0, c1, c2 uint8) bool {
		a, _ := NewAggregator(3, []float64{1}, true)
		counts := []int{int(c0 % 20), int(c1 % 20), int(c2 % 20)}
		for m, n := range counts {
			for i := 0; i < n; i++ {
				if _, err := a.UpdateTier(m, []ClientUpdate{{Weights: []float64{1}, N: 1}}); err != nil {
					return false
				}
			}
		}
		w := a.TierWeights()
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEq5MirrorsCounts(t *testing.T) {
	// Paper Eq. 5 with add-one smoothing: tier m's weight is
	// (T_tier(M+1−m)+1)/(T+M). With counts (8, 1, 1), T=10, M=3:
	// tier 0 (fastest) ← (counts[2]+1)/13 = 2/13,
	// tier 2 (slowest) ← (counts[0]+1)/13 = 9/13.
	a := newAgg(t, 3, []float64{0}, true)
	counts := []int{8, 1, 1}
	for m, n := range counts {
		for i := 0; i < n; i++ {
			a.UpdateTier(m, []ClientUpdate{{Weights: []float64{0}, N: 1}})
		}
	}
	w := a.TierWeights()
	if math.Abs(w[0]-2.0/13) > 1e-12 || math.Abs(w[1]-2.0/13) > 1e-12 || math.Abs(w[2]-9.0/13) > 1e-12 {
		t.Fatalf("Eq.5 weights wrong: %v", w)
	}
}

func TestSlowTierGetsHigherWeightThanFastTier(t *testing.T) {
	// The heuristic's whole point: the frequently-updating fast tier must
	// NOT dominate the global model.
	a := newAgg(t, 2, []float64{0}, true)
	// tier 0 updates 9 times with weights 1, tier 1 once with weights -1
	for i := 0; i < 9; i++ {
		a.UpdateTier(0, []ClientUpdate{{Weights: []float64{1}, N: 1}})
	}
	a.UpdateTier(1, []ClientUpdate{{Weights: []float64{-1}, N: 1}})
	// smoothed: tier0 ← (counts[1]+1)/12 = 2/12, tier1 ← (counts[0]+1)/12 = 10/12
	g := a.Global()
	want := 2.0/12*1 + 10.0/12*(-1)
	if math.Abs(g[0]-want) > 1e-12 {
		t.Fatalf("global %v, want %v (slow tier should dominate)", g[0], want)
	}
}

func TestEarlyUpdateDoesNotCollapseToW0(t *testing.T) {
	// The corner case the smoothing exists for: after ONLY the fast tier
	// has updated, the literal Eq. 5 would weight that tier by
	// T_tierM/T = 0 and return exactly w0. The smoothed weights must let
	// the first real update move the global model.
	a := newAgg(t, 5, []float64{0}, true)
	g, err := a.UpdateTier(0, []ClientUpdate{{Weights: []float64{6}, N: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// weights = (1,1,1,1,2)/6 with tier 0 holding the trained model 6.
	if math.Abs(g[0]-1) > 1e-12 {
		t.Fatalf("first update produced global %v, want 1", g[0])
	}
}

func TestUniformModeIgnoresCounts(t *testing.T) {
	a := newAgg(t, 2, []float64{0}, false)
	for i := 0; i < 9; i++ {
		a.UpdateTier(0, []ClientUpdate{{Weights: []float64{1}, N: 1}})
	}
	a.UpdateTier(1, []ClientUpdate{{Weights: []float64{-1}, N: 1}})
	g := a.Global()
	if math.Abs(g[0]-0) > 1e-12 {
		t.Fatalf("uniform global %v, want 0", g[0])
	}
}

func TestIntraTierSampleWeighting(t *testing.T) {
	// Within a tier, clients aggregate n_k-weighted (Algorithm 2).
	a := newAgg(t, 1, []float64{0}, true)
	g, err := a.UpdateTier(0, []ClientUpdate{
		{Weights: []float64{1}, N: 30},
		{Weights: []float64{5}, N: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// tier model = (30*1 + 10*5)/40 = 2; single tier → global = tier
	if math.Abs(g[0]-2) > 1e-12 {
		t.Fatalf("global %v, want 2", g[0])
	}
}

func TestSingleTierIsFedAvg(t *testing.T) {
	// §4.1: with one tier FedAT degenerates to FedAvg — the global model
	// is exactly the n_k-weighted client average each round.
	a := newAgg(t, 1, []float64{10, 10}, true)
	g, _ := a.UpdateTier(0, []ClientUpdate{
		{Weights: []float64{2, 4}, N: 1},
		{Weights: []float64{4, 8}, N: 1},
	})
	if g[0] != 3 || g[1] != 6 {
		t.Fatalf("single-tier global %v", g)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewAggregator(0, []float64{1}, true); err == nil {
		t.Fatal("zero tiers accepted")
	}
	if _, err := NewAggregator(2, nil, true); err == nil {
		t.Fatal("empty weights accepted")
	}
	a := newAgg(t, 2, []float64{1}, true)
	if _, err := a.UpdateTier(5, []ClientUpdate{{Weights: []float64{1}, N: 1}}); err == nil {
		t.Fatal("out-of-range tier accepted")
	}
	if _, err := a.UpdateTier(0, nil); err == nil {
		t.Fatal("empty round accepted")
	}
	if _, err := a.UpdateTier(0, []ClientUpdate{{Weights: []float64{1, 2}, N: 1}}); err == nil {
		t.Fatal("wrong weight length accepted")
	}
	if _, err := a.UpdateTier(0, []ClientUpdate{{Weights: []float64{1}, N: 0}}); err == nil {
		t.Fatal("zero sample count accepted")
	}
}

func TestReset(t *testing.T) {
	a := newAgg(t, 2, []float64{7}, true)
	a.UpdateTier(0, []ClientUpdate{{Weights: []float64{1}, N: 1}})
	a.Reset()
	if a.Rounds() != 0 || a.Global()[0] != 7 || a.TierModel(0)[0] != 7 {
		t.Fatal("Reset incomplete")
	}
}

func TestGlobalReturnsCopy(t *testing.T) {
	a := newAgg(t, 1, []float64{1}, true)
	g := a.Global()
	g[0] = 99
	if a.Global()[0] == 99 {
		t.Fatal("Global leaks internal state")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	// Transport mode hits the aggregator from one goroutine per tier.
	a := newAgg(t, 4, make([]float64, 32), true)
	var wg sync.WaitGroup
	perTier := 50
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			w := make([]float64, 32)
			for i := range w {
				w[i] = float64(m)
			}
			for i := 0; i < perTier; i++ {
				if _, err := a.UpdateTier(m, []ClientUpdate{{Weights: w, N: 1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
	if a.Rounds() != 4*perTier {
		t.Fatalf("rounds %d, want %d", a.Rounds(), 4*perTier)
	}
	counts := a.TierCounts()
	for m, c := range counts {
		if c != perTier {
			t.Fatalf("tier %d count %d", m, c)
		}
	}
	sum := 0.0
	for _, v := range a.TierWeights() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum %v", sum)
	}
}
