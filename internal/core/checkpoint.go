package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob-serializable form of the aggregator state, so a
// long-running FedAT server can checkpoint across restarts without losing
// the per-tier models and counters that Eq. 5 depends on.
type snapshot struct {
	M        int
	Weighted bool
	TierW    [][]float64
	Counts   []int
	Total    int
	Global   []float64
	W0       []float64
}

// Save writes a checkpoint of the full server state.
func (a *Aggregator) Save(w io.Writer) error {
	a.mu.Lock()
	snap := snapshot{
		M:        a.m,
		Weighted: a.weighted,
		TierW:    make([][]float64, a.m),
		Counts:   append([]int(nil), a.counts...),
		Total:    a.total,
		Global:   append([]float64(nil), a.global...),
		W0:       append([]float64(nil), a.w0...),
	}
	for i, tw := range a.tierW {
		snap.TierW[i] = append([]float64(nil), tw...)
	}
	a.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	return nil
}

// LoadAggregator restores an aggregator from a Save checkpoint.
func LoadAggregator(r io.Reader) (*Aggregator, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	if snap.M <= 0 || len(snap.TierW) != snap.M || len(snap.Counts) != snap.M {
		return nil, fmt.Errorf("core: corrupt checkpoint: %d tiers, %d models, %d counters",
			snap.M, len(snap.TierW), len(snap.Counts))
	}
	dim := len(snap.Global)
	if dim == 0 || len(snap.W0) != dim {
		return nil, fmt.Errorf("core: corrupt checkpoint: empty or inconsistent weights")
	}
	total := 0
	for i, tw := range snap.TierW {
		if len(tw) != dim {
			return nil, fmt.Errorf("core: corrupt checkpoint: tier %d has %d weights, want %d", i, len(tw), dim)
		}
		if snap.Counts[i] < 0 {
			return nil, fmt.Errorf("core: corrupt checkpoint: negative counter")
		}
		total += snap.Counts[i]
	}
	if total != snap.Total {
		return nil, fmt.Errorf("core: corrupt checkpoint: counters sum to %d, total says %d", total, snap.Total)
	}
	return &Aggregator{
		m:        snap.M,
		weighted: snap.Weighted,
		tierW:    snap.TierW,
		counts:   snap.Counts,
		total:    snap.Total,
		global:   snap.Global,
		w0:       snap.W0,
	}, nil
}
