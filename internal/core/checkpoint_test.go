package core

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	a := newAgg(t, 3, []float64{1, 2, 3}, true)
	a.UpdateTier(0, []ClientUpdate{{Weights: []float64{4, 5, 6}, N: 2}})
	a.UpdateTier(2, []ClientUpdate{{Weights: []float64{-1, 0, 1}, N: 1}})

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAggregator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rounds() != a.Rounds() || b.M() != a.M() {
		t.Fatalf("restored shape wrong: rounds=%d tiers=%d", b.Rounds(), b.M())
	}
	ga, gb := a.Global(), b.Global()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("restored global differs at %d: %v vs %v", i, ga[i], gb[i])
		}
	}
	ca, cb := a.TierCounts(), b.TierCounts()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("restored counters differ: %v vs %v", ca, cb)
		}
	}
	// The restored aggregator must keep functioning identically.
	wa, _ := a.UpdateTier(1, []ClientUpdate{{Weights: []float64{9, 9, 9}, N: 1}})
	wb, _ := b.UpdateTier(1, []ClientUpdate{{Weights: []float64{9, 9, 9}, N: 1}})
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("restored aggregator diverges from original after next update")
		}
	}
}

func TestCheckpointPreservesUniformMode(t *testing.T) {
	a := newAgg(t, 2, []float64{0}, false)
	for i := 0; i < 5; i++ {
		a.UpdateTier(0, []ClientUpdate{{Weights: []float64{2}, N: 1}})
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAggregator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := b.TierWeights()
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Fatalf("uniform mode lost across checkpoint: %v", w)
	}
}

func TestLoadCorruptCheckpoint(t *testing.T) {
	if _, err := LoadAggregator(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated valid stream.
	a := newAgg(t, 2, []float64{1}, true)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAggregator(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
