// Package dataset generates the federated datasets the FedAT evaluation
// runs on. The paper uses CIFAR-10, Fashion-MNIST, Sentiment140, FEMNIST
// and Reddit; those corpora are substituted here by synthetic generators
// that reproduce the properties the experiments actually vary:
//
//   - label structure (a fixed number of classes with learnable
//     class-conditional distributions),
//   - the non-IID partitioning knob (#classes held per client, the paper's
//     "#class" columns in Table 1),
//   - inherent heterogeneity for the LEAF datasets (power-law sample
//     counts, per-client class skew),
//   - per-client 80/20 train/test splits (§6 "Hyperparameters").
//
// Image-like data is produced from class-prototype Gaussians; text-like
// data from a token random walk with a fixed transition structure where the
// label is the successor of the last token (next-token prediction, as in
// the paper's Reddit LSTM task). Both are learnable by the corresponding
// paper architectures, which is what the convergence-shape comparisons
// require.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// ClientData holds one client's local train/test split. Rows of the
// matrices are samples.
type ClientData struct {
	TrainX, TestX *tensor.Mat
	TrainY, TestY []int
}

// NumTrain returns the local training-set size n_k.
func (c *ClientData) NumTrain() int { return len(c.TrainY) }

// NumTest returns the local held-out test size.
func (c *ClientData) NumTest() int { return len(c.TestY) }

// Federated is a complete federated dataset.
type Federated struct {
	Name    string
	Clients []*ClientData
	InDim   int // per-sample feature width (channels*h*w, or seqLen for tokens)
	Classes int
	// Image geometry when the data is image-like (zero otherwise).
	ImgC, ImgH, ImgW int
	// Token geometry when the data is sequence-like (zero otherwise).
	Vocab, SeqLen int
}

// TotalTrain returns N = Σ n_k.
func (f *Federated) TotalTrain() int {
	n := 0
	for _, c := range f.Clients {
		n += c.NumTrain()
	}
	return n
}

// Config drives the synthetic generators.
type Config struct {
	Name             string
	NumClients       int
	Classes          int
	SamplesPerClient int     // mean local dataset size (train+test)
	ClassesPerClient int     // non-IID level; 0 or >= Classes means IID
	PowerLaw         bool    // LEAF-style heterogeneous sample counts
	TrainFrac        float64 // defaults to 0.8
	Seed             uint64

	// Image mode (exclusive with token mode).
	ImgC, ImgH, ImgW int
	Signal, Noise    float64 // prototype scale and additive noise stddev

	// Token mode: labels are next tokens, so Classes must equal Vocab.
	Vocab, SeqLen int
}

func (cfg *Config) validate() error {
	if cfg.NumClients <= 0 {
		return fmt.Errorf("dataset %q: NumClients must be positive", cfg.Name)
	}
	if cfg.Classes < 2 {
		return fmt.Errorf("dataset %q: need at least 2 classes", cfg.Name)
	}
	if cfg.SamplesPerClient < 5 {
		return fmt.Errorf("dataset %q: SamplesPerClient too small", cfg.Name)
	}
	img := cfg.ImgC > 0
	tok := cfg.Vocab > 0
	if img == tok {
		return fmt.Errorf("dataset %q: exactly one of image/token mode required", cfg.Name)
	}
	if tok && cfg.Vocab != cfg.Classes {
		return fmt.Errorf("dataset %q: token mode requires Classes == Vocab", cfg.Name)
	}
	if tok && cfg.SeqLen <= 0 {
		return fmt.Errorf("dataset %q: token mode requires SeqLen > 0", cfg.Name)
	}
	return nil
}

// assignClasses gives client i its class subset. Classes rotate so every
// class is covered and clients overlap the way the shard partitioning in
// McMahan et al. produces. For token data the "classes" are walk start
// tokens, so a subset confines the client to a region of the chain.
func assignClasses(client, perClient, classes int) []int {
	out := make([]int, perClient)
	start := (client * perClient) % classes
	for j := 0; j < perClient; j++ {
		out[j] = (start + j) % classes
	}
	return out
}

// sampleGen writes one sample of a given class seed into row and returns
// the label.
type sampleGen interface {
	sample(r *rng.RNG, class int, row []float64) int
}

// Generate builds a federated dataset from cfg. It is a thin shell over
// the lazy Source — "generate every shard" — so the eager and lazy
// construction paths cannot drift apart. generateEager below keeps the
// original direct construction as the reference the equivalence test pins
// Source against.
func Generate(cfg Config) (*Federated, error) {
	src, err := NewSource(cfg)
	if err != nil {
		return nil, err
	}
	return src.Federated(), nil
}

// generateEager is the pre-lazy construction, byte-for-byte: every draw in
// its original order. It exists as the specification the lazy Source is
// tested against (TestSourceMatchesEagerGenerate).
func generateEager(cfg Config) (*Federated, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	perClient := cfg.ClassesPerClient
	if perClient <= 0 || perClient > cfg.Classes {
		perClient = cfg.Classes // IID
	}
	root := rng.New(cfg.Seed)

	fed := &Federated{
		Name:    cfg.Name,
		Classes: cfg.Classes,
		ImgC:    cfg.ImgC, ImgH: cfg.ImgH, ImgW: cfg.ImgW,
		Vocab: cfg.Vocab, SeqLen: cfg.SeqLen,
	}
	var gen sampleGen
	if cfg.ImgC > 0 {
		fed.InDim = cfg.ImgC * cfg.ImgH * cfg.ImgW
		gen = newImageGen(root.SplitLabeled(1), cfg)
	} else {
		fed.InDim = cfg.SeqLen
		gen = newTokenGen(cfg)
	}

	sizes := clientSizes(root.SplitLabeled(2), cfg)
	fed.Clients = make([]*ClientData, cfg.NumClients)
	for i := 0; i < cfg.NumClients; i++ {
		classes := assignClasses(i, perClient, cfg.Classes)
		cr := root.SplitLabeled(uint64(100 + i))
		fed.Clients[i] = genClient(cr, gen, classes, sizes[i], cfg.TrainFrac, fed.InDim)
	}
	return fed, nil
}

// clientSizes draws per-client sample counts: uniform-ish by default, a
// heavy-tailed power law when PowerLaw is set (FEMNIST/Reddit
// heterogeneity).
func clientSizes(r *rng.RNG, cfg Config) []int {
	sizes := make([]int, cfg.NumClients)
	if !cfg.PowerLaw {
		for i := range sizes {
			// ±20% jitter around the mean.
			jitter := 0.8 + 0.4*r.Float64()
			sizes[i] = int(float64(cfg.SamplesPerClient) * jitter)
			if sizes[i] < 5 {
				sizes[i] = 5
			}
		}
		return sizes
	}
	raw := make([]float64, cfg.NumClients)
	total := 0.0
	for i := range raw {
		u := r.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		raw[i] = 1 / math.Pow(u, 0.6)
		total += raw[i]
	}
	want := float64(cfg.SamplesPerClient * cfg.NumClients)
	for i := range sizes {
		sizes[i] = int(raw[i] / total * want)
		if sizes[i] < 5 {
			sizes[i] = 5
		}
	}
	return sizes
}

// genClient draws n samples for a client restricted to its class subset and
// splits them train/test. The split keeps at least one sample on each side
// so the evaluation harness always has per-client accuracies to aggregate
// (Definition 3.1 needs them for the variance metric).
func genClient(r *rng.RNG, gen sampleGen, classes []int, n int, trainFrac float64, inDim int) *ClientData {
	nTrain := int(float64(n) * trainFrac)
	if nTrain >= n {
		nTrain = n - 1
	}
	if nTrain < 1 {
		nTrain = 1
	}
	nTest := n - nTrain

	c := &ClientData{
		TrainX: tensor.NewMat(nTrain, inDim),
		TestX:  tensor.NewMat(nTest, inDim),
		TrainY: make([]int, nTrain),
		TestY:  make([]int, nTest),
	}
	for i := 0; i < n; i++ {
		cls := classes[r.Intn(len(classes))]
		if i < nTrain {
			c.TrainY[i] = gen.sample(r, cls, c.TrainX.Row(i))
		} else {
			c.TestY[i-nTrain] = gen.sample(r, cls, c.TestX.Row(i-nTrain))
		}
	}
	return c
}
