package dataset

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestGenerateBasicInvariants(t *testing.T) {
	fed, err := CIFAR10Like(20, 2, ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Clients) != 20 {
		t.Fatalf("client count %d", len(fed.Clients))
	}
	if fed.InDim != 3*10*10 || fed.Classes != 10 {
		t.Fatalf("geometry wrong: dim=%d classes=%d", fed.InDim, fed.Classes)
	}
	for i, c := range fed.Clients {
		if c.NumTrain() < 1 || c.NumTest() < 1 {
			t.Fatalf("client %d has empty split: %d/%d", i, c.NumTrain(), c.NumTest())
		}
		if c.TrainX.R != len(c.TrainY) || c.TestX.R != len(c.TestY) {
			t.Fatalf("client %d X/Y row mismatch", i)
		}
		for _, y := range c.TrainY {
			if y < 0 || y >= fed.Classes {
				t.Fatalf("client %d label out of range: %d", i, y)
			}
		}
	}
}

func TestNonIIDClassRestriction(t *testing.T) {
	fed, err := CIFAR10Like(10, 2, ScaleSmall, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range fed.Clients {
		seen := map[int]bool{}
		for _, y := range c.TrainY {
			seen[y] = true
		}
		for _, y := range c.TestY {
			seen[y] = true
		}
		if len(seen) > 2 {
			t.Fatalf("client %d holds %d classes, want <= 2", i, len(seen))
		}
	}
}

func TestIIDCoversManyClasses(t *testing.T) {
	fed, err := CIFAR10Like(4, 0, ScaleMedium, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range fed.Clients {
		for _, y := range c.TrainY {
			seen[y] = true
		}
	}
	if len(seen) < 8 {
		t.Fatalf("IID data only covers %d classes", len(seen))
	}
}

func TestAllClassesCoveredAcrossClients(t *testing.T) {
	// Even at 2 classes/client, the rotation must cover all 10 classes
	// across enough clients.
	fed, err := CIFAR10Like(10, 2, ScaleSmall, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range fed.Clients {
		for _, y := range c.TrainY {
			seen[y] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("rotation covers %d/10 classes", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	a, err := FashionLike(5, 2, ScaleSmall, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FashionLike(5, 2, ScaleSmall, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clients {
		if !tensor.Equal(a.Clients[i].TrainX, b.Clients[i].TrainX, 0) {
			t.Fatalf("client %d data differs across identical generations", i)
		}
	}
	c, err := FashionLike(5, 2, ScaleSmall, 78)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Equal(a.Clients[0].TrainX, c.Clients[0].TrainX, 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPowerLawHeterogeneity(t *testing.T) {
	fed, err := FEMNISTLike(40, ScaleMedium, 5)
	if err != nil {
		t.Fatal(err)
	}
	minN, maxN := 1<<30, 0
	for _, c := range fed.Clients {
		n := c.NumTrain() + c.NumTest()
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 2*minN {
		t.Fatalf("power-law sizes look uniform: min=%d max=%d", minN, maxN)
	}
}

func TestTokenDataInVocab(t *testing.T) {
	fed, err := RedditLike(8, ScaleSmall, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Vocab == 0 || fed.SeqLen != 10 {
		t.Fatalf("token geometry wrong: %+v", fed)
	}
	for _, c := range fed.Clients {
		for i := 0; i < c.TrainX.R; i++ {
			for _, v := range c.TrainX.Row(i) {
				id := int(v)
				if id < 0 || id >= fed.Vocab || float64(id) != v {
					t.Fatalf("non-token value %v", v)
				}
			}
		}
	}
}

func TestImageDataIsLearnable(t *testing.T) {
	// A small MLP trained on pooled client data should beat chance by a
	// wide margin — guards against generators emitting unlearnable noise.
	fed, err := FashionLike(6, 0, ScaleMedium, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range fed.Clients {
		total += c.NumTrain()
	}
	x := tensor.NewMat(total, fed.InDim)
	y := make([]int, 0, total)
	row := 0
	for _, c := range fed.Clients {
		for i := 0; i < c.TrainX.R; i++ {
			copy(x.Row(row), c.TrainX.Row(i))
			row++
		}
		y = append(y, c.TrainY...)
	}
	model := nn.NewMLP(rng.New(8), fed.InDim, 32, fed.Classes)
	for epoch := 0; epoch < 40; epoch++ {
		model.ZeroGrad()
		model.Backprop(x, y)
		tensor.Axpy(-0.5, model.Grads(), model.Weights())
	}
	correct, _ := model.Eval(x, y)
	acc := float64(correct) / float64(total)
	if acc < 0.5 {
		t.Fatalf("pooled training accuracy only %.2f — generator not learnable", acc)
	}
}

func TestTokenDataIsLearnable(t *testing.T) {
	fed, err := RedditLike(6, ScaleSmall, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range fed.Clients {
		total += c.NumTrain()
	}
	x := tensor.NewMat(total, fed.SeqLen)
	y := make([]int, 0, total)
	rowi := 0
	for _, c := range fed.Clients {
		for i := 0; i < c.TrainX.R; i++ {
			copy(x.Row(rowi), c.TrainX.Row(i))
			rowi++
		}
		y = append(y, c.TrainY...)
	}
	model := nn.NewLSTMClassifier(rng.New(10), nn.LSTMConfig{
		Vocab: fed.Vocab, Emb: 8, Hidden: 16, SeqLen: fed.SeqLen, Classes: fed.Classes,
	})
	adam := opt.NewAdam(0.02)
	for epoch := 0; epoch < 300; epoch++ {
		model.ZeroGrad()
		model.Backprop(x, y)
		adam.Step(model.Weights(), model.Grads())
	}
	correct, _ := model.Eval(x, y)
	acc := float64(correct) / float64(total)
	// Chance is 1/64; the chain's primary successor is drawn half the time.
	if acc < 0.2 {
		t.Fatalf("token training accuracy only %.3f — generator not learnable", acc)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Name: "noClients", Classes: 2, SamplesPerClient: 10, ImgC: 1, ImgH: 2, ImgW: 2},
		{Name: "oneClass", NumClients: 2, Classes: 1, SamplesPerClient: 10, ImgC: 1, ImgH: 2, ImgW: 2},
		{Name: "noMode", NumClients: 2, Classes: 2, SamplesPerClient: 10},
		{Name: "bothModes", NumClients: 2, Classes: 2, SamplesPerClient: 10, ImgC: 1, ImgH: 2, ImgW: 2, Vocab: 2, SeqLen: 3},
		{Name: "vocabMismatch", NumClients: 2, Classes: 3, SamplesPerClient: 10, Vocab: 4, SeqLen: 3},
		{Name: "tinySamples", NumClients: 2, Classes: 2, SamplesPerClient: 2, ImgC: 1, ImgH: 2, ImgW: 2},
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("config %q should have been rejected", cfg.Name)
		}
	}
}

func TestAssignClassesProperties(t *testing.T) {
	f := func(clientRaw, perRaw, classesRaw uint8) bool {
		classes := int(classesRaw%30) + 2
		per := int(perRaw)%classes + 1
		client := int(clientRaw)
		got := assignClasses(client, per, classes)
		if len(got) != per {
			return false
		}
		seen := map[int]bool{}
		for _, c := range got {
			if c < 0 || c >= classes || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleSamples(t *testing.T) {
	if ScaleSmall.samples(1, 2, 3) != 1 || ScaleMedium.samples(1, 2, 3) != 2 || ScalePaper.samples(1, 2, 3) != 3 {
		t.Fatal("Scale.samples mapping wrong")
	}
}
