package dataset

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// The FL experiments only reproduce the paper's SHAPES if the synthetic
// datasets are neither trivially saturated (everything hits 1.0) nor
// unlearnable. These tests train a centralized MLP on pooled data — an
// upper bound for any FL method — and assert the held-out accuracy lands in
// a paper-like band for each dataset.

func pooledSplits(fed *Federated) (x *tensor.Mat, y []int, tx *tensor.Mat, ty []int) {
	tr, te := 0, 0
	for _, c := range fed.Clients {
		tr += c.NumTrain()
		te += c.NumTest()
	}
	x = tensor.NewMat(tr, fed.InDim)
	tx = tensor.NewMat(te, fed.InDim)
	i, j := 0, 0
	for _, c := range fed.Clients {
		for r := 0; r < c.TrainX.R; r++ {
			copy(x.Row(i), c.TrainX.Row(r))
			i++
		}
		y = append(y, c.TrainY...)
		for r := 0; r < c.TestX.R; r++ {
			copy(tx.Row(j), c.TestX.Row(r))
			j++
		}
		ty = append(ty, c.TestY...)
	}
	return x, y, tx, ty
}

func centralizedAccuracy(t *testing.T, fed *Federated, epochs int) float64 {
	t.Helper()
	x, y, tx, ty := pooledSplits(fed)
	m := nn.NewMLP(rng.New(7), fed.InDim, 32, fed.Classes)
	a := opt.NewAdam(0.005)
	const bs = 64
	bx := tensor.NewMat(bs, fed.InDim)
	for e := 0; e < epochs; e++ {
		for lo := 0; lo < x.R; lo += bs {
			hi := lo + bs
			if hi > x.R {
				hi = x.R
			}
			cur := bx
			if hi-lo != bs {
				cur = tensor.MatFrom(hi-lo, fed.InDim, bx.Data[:(hi-lo)*fed.InDim])
			}
			for r := lo; r < hi; r++ {
				copy(cur.Row(r-lo), x.Row(r))
			}
			m.ZeroGrad()
			m.Backprop(cur, y[lo:hi])
			a.Step(m.Weights(), m.Grads())
		}
	}
	correct, _ := m.Eval(tx, ty)
	return float64(correct) / float64(len(ty))
}

func TestDifficultyBands(t *testing.T) {
	if testing.Short() {
		t.Skip("difficulty bands need full training")
	}
	cases := []struct {
		name   string
		build  func() (*Federated, error)
		lo, hi float64
	}{
		// Paper reference points: CIFAR-10 ~0.6-0.7, Fashion ~0.87,
		// Sentiment140 ~0.75, FEMNIST ~0.8. Bands are generous: the point
		// is "not saturated, not noise".
		{"cifar", func() (*Federated, error) { return CIFAR10Like(40, 0, ScaleMedium, 42) }, 0.35, 0.92},
		{"fashion", func() (*Federated, error) { return FashionLike(40, 0, ScaleMedium, 42) }, 0.60, 0.97},
		{"sent140", func() (*Federated, error) { return Sent140Like(40, 0, ScaleMedium, 42) }, 0.60, 0.92},
		{"femnist", func() (*Federated, error) { return FEMNISTLike(40, ScaleMedium, 42) }, 0.40, 0.95},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fed, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			acc := centralizedAccuracy(t, fed, 15)
			t.Logf("%s centralized accuracy: %.3f", tc.name, acc)
			if acc < tc.lo || acc > tc.hi {
				t.Fatalf("%s centralized accuracy %.3f outside band [%.2f, %.2f]", tc.name, acc, tc.lo, tc.hi)
			}
		})
	}
}
