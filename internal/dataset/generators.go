package dataset

import "repro/internal/rng"

// imageGen produces class-conditional Gaussian images: every class has a
// fixed prototype; a sample is prototype·Signal + N(0, Noise²). The
// prototypes are shared by all clients, so a model generalizes across
// clients exactly when it learns the class structure — the property the
// non-IID experiments stress.
type imageGen struct {
	protos [][]float64
	signal float64
	noise  float64
}

func newImageGen(r *rng.RNG, cfg Config) *imageGen {
	dim := cfg.ImgC * cfg.ImgH * cfg.ImgW
	signal := cfg.Signal
	if signal == 0 {
		signal = 1
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = 1
	}
	g := &imageGen{signal: signal, noise: noise, protos: make([][]float64, cfg.Classes)}
	for c := range g.protos {
		cr := r.SplitLabeled(uint64(c))
		p := make([]float64, dim)
		for i := range p {
			p[i] = cr.Norm()
		}
		g.protos[c] = p
	}
	return g
}

func (g *imageGen) sample(r *rng.RNG, class int, row []float64) int {
	p := g.protos[class]
	for i := range row {
		row[i] = g.signal*p[i] + g.noise*r.Norm()
	}
	return class
}

// tokenGen produces sequences from a random walk over a fixed, deterministic
// transition structure on the vocabulary. The label is a sampled successor
// of the final token (next-token prediction, as in the Reddit task). The
// Bayes-optimal accuracy is bounded by the transition entropy: an argmax
// predictor that fully learned the chain scores succProb, so measured
// accuracies live in the same sub-0.5 regime as the paper's Reddit numbers.
type tokenGen struct {
	vocab    int
	seqLen   int
	succProb float64 // probability of the primary successor
	altProb  float64 // probability of the secondary successor
}

func newTokenGen(cfg Config) *tokenGen {
	return &tokenGen{vocab: cfg.Vocab, seqLen: cfg.SeqLen, succProb: 0.5, altProb: 0.3}
}

// succ1 and succ2 define the chain structure: affine maps mod vocab chosen
// coprime-ish so the chain mixes over the whole vocabulary.
func (g *tokenGen) succ1(t int) int { return (t*7 + 3) % g.vocab }
func (g *tokenGen) succ2(t int) int { return (t*11 + 5) % g.vocab }

func (g *tokenGen) next(r *rng.RNG, t int) int {
	u := r.Float64()
	switch {
	case u < g.succProb:
		return g.succ1(t)
	case u < g.succProb+g.altProb:
		return g.succ2(t)
	default:
		return r.Intn(g.vocab)
	}
}

func (g *tokenGen) sample(r *rng.RNG, class int, row []float64) int {
	t := class % g.vocab // the client's class subset acts as the walk start region
	row[0] = float64(t)
	for i := 1; i < g.seqLen; i++ {
		t = g.next(r, t)
		row[i] = float64(t)
	}
	return g.next(r, t)
}

// ---------------------------------------------------------------------------
// Named dataset constructors matching the paper's five benchmarks (§6).
// Scale controls sample counts and geometry; Scale 1 keeps experiments
// laptop-sized, larger scales approach the paper's sizes.

// Scale selects a dataset size preset.
type Scale int

// Dataset size presets.
const (
	ScaleSmall  Scale = iota // CI-sized: fast tests
	ScaleMedium              // default experiment size
	ScalePaper               // closest to the paper's client/sample counts
)

func (s Scale) samples(small, medium, paper int) int {
	switch s {
	case ScaleSmall:
		return small
	case ScalePaper:
		return paper
	default:
		return medium
	}
}

// CIFAR10Like mirrors the CIFAR-10 setup: 10 classes, RGB images, 100
// clients partitioned with classesPerClient classes each (2/4/6/8 in the
// paper's Table 1; 0 = IID).
func CIFAR10Like(numClients, classesPerClient int, scale Scale, seed uint64) (*Federated, error) {
	side := 10
	if scale == ScalePaper {
		side = 32
	}
	return Generate(Config{
		Name:             "cifar10like",
		NumClients:       numClients,
		Classes:          10,
		SamplesPerClient: scale.samples(24, 60, 600),
		ClassesPerClient: classesPerClient,
		Seed:             seed,
		ImgC:             3, ImgH: side, ImgW: side,
		// Tuned so a centralized learner tops out near the paper's CIFAR
		// accuracies (~0.6-0.7) instead of saturating.
		Signal: 0.15, Noise: 1.0,
	})
}

// FashionLike mirrors Fashion-MNIST: 10 classes, grayscale, easier than
// CIFAR (the paper's accuracies are ~0.86 vs ~0.59).
func FashionLike(numClients, classesPerClient int, scale Scale, seed uint64) (*Federated, error) {
	side := 10
	if scale == ScalePaper {
		side = 28
	}
	return Generate(Config{
		Name:             "fashionlike",
		NumClients:       numClients,
		Classes:          10,
		SamplesPerClient: scale.samples(24, 60, 700),
		ClassesPerClient: classesPerClient,
		Seed:             seed,
		ImgC:             1, ImgH: side, ImgW: side,
		Signal: 0.34, Noise: 1.0, // easier than CIFAR: paper tops ~0.87
	})
}

// Sent140Like mirrors Sentiment140: binary sentiment over dense text
// features, trained with logistic regression (the paper's convex model).
// Features are class-prototype Gaussians over a bag-of-words-sized dense
// vector.
func Sent140Like(numClients, classesPerClient int, scale Scale, seed uint64) (*Federated, error) {
	return Generate(Config{
		Name:             "sent140like",
		NumClients:       numClients,
		Classes:          2,
		SamplesPerClient: scale.samples(24, 80, 400),
		ClassesPerClient: classesPerClient,
		Seed:             seed,
		ImgC:             1, ImgH: 1, ImgW: 64, // dense 64-dim features
		Signal: 0.17, Noise: 1.0, // modest separability: paper tops out ~0.75
	})
}

// FEMNISTLike mirrors FEMNIST: 62 classes, grayscale, inherent data
// heterogeneity (power-law sizes, skewed class subsets per client). The
// class count stays at 62 across scales — reducing it makes the task
// trivially saturable, which would hide the convergence differences the
// large-scale experiments measure.
func FEMNISTLike(numClients int, scale Scale, seed uint64) (*Federated, error) {
	classes := 62
	return Generate(Config{
		Name:             "femnistlike",
		NumClients:       numClients,
		Classes:          classes,
		SamplesPerClient: scale.samples(24, 50, 220),
		ClassesPerClient: classes / 3, // inherent skew: each client sees a third
		PowerLaw:         true,
		Seed:             seed,
		ImgC:             1, ImgH: 10, ImgW: 10,
		Signal: 0.55, Noise: 1.0, // 62 classes: paper tops ~0.8
	})
}

// RedditLike mirrors the Reddit next-token task: sequences over a
// vocabulary with per-client start-region skew and power-law sizes.
func RedditLike(numClients int, scale Scale, seed uint64) (*Federated, error) {
	vocab := 64
	if scale == ScalePaper {
		vocab = 625 // PaperLSTM(16) vocabulary
	}
	return Generate(Config{
		Name:             "redditlike",
		NumClients:       numClients,
		Classes:          vocab,
		SamplesPerClient: scale.samples(24, 60, 200),
		ClassesPerClient: vocab / 5, // per-client start region
		PowerLaw:         true,
		Seed:             seed,
		Vocab:            vocab,
		SeqLen:           10,
	})
}
