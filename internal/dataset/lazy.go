package dataset

import "repro/internal/rng"

// Source is the lazy form of a federated dataset: client shards are
// synthesized on demand from (seed, id) instead of being generated up
// front. The only draws that are sequential on a shared stream — the
// image prototypes (root label 1) and the per-client sample counts (root
// label 2) — are taken at construction; each shard's own samples come
// from the client's labeled stream (100+id), so Client(i) is a pure
// function of (cfg, i) and generation order cannot matter. A shard built
// lazily is byte-for-byte the shard Generate builds (Generate now
// delegates here; TestSourceMatchesEagerGenerate pins the equivalence
// against the original eager construction).
//
// The prototype table is O(Classes · InDim) and the size table O(N) ints;
// nothing else is retained, so a million-client dataset costs megabytes
// until shards are requested — and a released shard is garbage the moment
// the caller drops it.
type Source struct {
	cfg       Config // resolved: TrainFrac and ClassesPerClient normalized
	perClient int
	inDim     int
	gen       sampleGen
	root      *rng.RNG // never advanced; anchors the per-client splits
	sizes     []int
}

// NewSource validates cfg and builds the lazy dataset source.
func NewSource(cfg Config) (*Source, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.8
	}
	perClient := cfg.ClassesPerClient
	if perClient <= 0 || perClient > cfg.Classes {
		perClient = cfg.Classes // IID
	}
	s := &Source{cfg: cfg, perClient: perClient, root: rng.New(cfg.Seed)}
	if cfg.ImgC > 0 {
		s.inDim = cfg.ImgC * cfg.ImgH * cfg.ImgW
		s.gen = newImageGen(s.root.SplitLabeled(1), cfg)
	} else {
		s.inDim = cfg.SeqLen
		s.gen = newTokenGen(cfg)
	}
	s.sizes = clientSizes(s.root.SplitLabeled(2), cfg)
	return s, nil
}

// NumClients returns the population size.
func (s *Source) NumClients() int { return s.cfg.NumClients }

// Name returns the dataset name.
func (s *Source) Name() string { return s.cfg.Name }

// InDim returns the per-sample feature width.
func (s *Source) InDim() int { return s.inDim }

// Classes returns the label count.
func (s *Source) Classes() int { return s.cfg.Classes }

// NumTrain returns client i's local training-set size n_k without
// generating the shard — the same clamp-to-[1, n-1] split arithmetic
// genClient applies, over the precomputed size table.
func (s *Source) NumTrain(i int) int {
	n := s.sizes[i]
	nTrain := int(float64(n) * s.cfg.TrainFrac)
	if nTrain >= n {
		nTrain = n - 1
	}
	if nTrain < 1 {
		nTrain = 1
	}
	return nTrain
}

// Client synthesizes client i's shard. Each call generates a fresh copy —
// callers that dispatch a cohort hold the shards only for the round and
// drop them after the fold.
func (s *Source) Client(i int) *ClientData {
	classes := assignClasses(i, s.perClient, s.cfg.Classes)
	cr := s.root.SplitLabeled(uint64(100 + i))
	return genClient(cr, s.gen, classes, s.sizes[i], s.cfg.TrainFrac, s.inDim)
}

// Federated materializes every shard — the eager construction, now
// expressed as "generate every client". Generate delegates here.
func (s *Source) Federated() *Federated {
	fed := &Federated{
		Name:    s.cfg.Name,
		Classes: s.cfg.Classes,
		InDim:   s.inDim,
		ImgC:    s.cfg.ImgC, ImgH: s.cfg.ImgH, ImgW: s.cfg.ImgW,
		Vocab: s.cfg.Vocab, SeqLen: s.cfg.SeqLen,
	}
	fed.Clients = make([]*ClientData, s.cfg.NumClients)
	for i := range fed.Clients {
		fed.Clients[i] = s.Client(i)
	}
	return fed
}
