package dataset

import "testing"

// sourceConfigs spans the generator modes: image prototypes, token walks,
// power-law sizes, non-IID class subsets.
func sourceConfigs() map[string]Config {
	return map[string]Config{
		"image": {
			Name: "imglike", NumClients: 20, Classes: 10, SamplesPerClient: 24,
			ClassesPerClient: 2, Seed: 9, ImgC: 1, ImgH: 6, ImgW: 6,
			Signal: 0.3, Noise: 1.0,
		},
		"image-powerlaw": {
			Name: "femnistlike", NumClients: 15, Classes: 12, SamplesPerClient: 30,
			ClassesPerClient: 4, PowerLaw: true, Seed: 31, ImgC: 1, ImgH: 5, ImgW: 5,
		},
		"token": {
			Name: "redditlike", NumClients: 12, Classes: 16, SamplesPerClient: 20,
			ClassesPerClient: 3, PowerLaw: true, Seed: 4, Vocab: 16, SeqLen: 8,
		},
	}
}

func sameClient(t *testing.T, name string, i int, want, got *ClientData) {
	t.Helper()
	if want.NumTrain() != got.NumTrain() || want.NumTest() != got.NumTest() {
		t.Fatalf("%s client %d: split %d/%d vs %d/%d",
			name, i, want.NumTrain(), want.NumTest(), got.NumTrain(), got.NumTest())
	}
	for r := 0; r < want.NumTrain(); r++ {
		if want.TrainY[r] != got.TrainY[r] {
			t.Fatalf("%s client %d train row %d: label %d vs %d", name, i, r, want.TrainY[r], got.TrainY[r])
		}
		wr, gr := want.TrainX.Row(r), got.TrainX.Row(r)
		for c := range wr {
			if wr[c] != gr[c] {
				t.Fatalf("%s client %d train row %d col %d: %v vs %v", name, i, r, c, wr[c], gr[c])
			}
		}
	}
	for r := 0; r < want.NumTest(); r++ {
		if want.TestY[r] != got.TestY[r] {
			t.Fatalf("%s client %d test row %d: label mismatch", name, i, r)
		}
		wr, gr := want.TestX.Row(r), got.TestX.Row(r)
		for c := range wr {
			if wr[c] != gr[c] {
				t.Fatalf("%s client %d test row %d col %d: %v vs %v", name, i, r, c, wr[c], gr[c])
			}
		}
	}
}

// TestSourceMatchesEagerGenerate pins the lazy contract: a shard
// synthesized on demand — in any order — is byte-for-byte the shard the
// original eager Generate built, and the pure NumTrain arithmetic matches
// the generated split.
func TestSourceMatchesEagerGenerate(t *testing.T) {
	for name, cfg := range sourceConfigs() {
		t.Run(name, func(t *testing.T) {
			want, err := generateEager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewSource(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if src.InDim() != want.InDim || src.Classes() != want.Classes {
				t.Fatalf("geometry: (%d,%d) vs (%d,%d)", src.InDim(), src.Classes(), want.InDim, want.Classes)
			}
			// Scrambled generation order: shards are pure in (cfg, id).
			n := cfg.NumClients
			for j := 0; j < n; j++ {
				i := (j*7 + 3) % n
				if got := src.NumTrain(i); got != want.Clients[i].NumTrain() {
					t.Fatalf("client %d: NumTrain %d vs generated %d", i, got, want.Clients[i].NumTrain())
				}
				sameClient(t, name, i, want.Clients[i], src.Client(i))
			}
			// Regeneration is idempotent: a dropped-and-rebuilt shard is
			// identical to its first synthesis.
			sameClient(t, name, 0, src.Client(0), src.Client(0))
		})
	}
}

// TestGenerateDelegatesToSource guards the shell: the public Generate and
// the eager reference construct identical federations.
func TestGenerateDelegatesToSource(t *testing.T) {
	for name, cfg := range sourceConfigs() {
		t.Run(name, func(t *testing.T) {
			want, err := generateEager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Clients) != len(got.Clients) {
				t.Fatalf("client count %d vs %d", len(want.Clients), len(got.Clients))
			}
			for i := range want.Clients {
				sameClient(t, name, i, want.Clients[i], got.Clients[i])
			}
		})
	}
}
