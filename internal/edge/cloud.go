// Package edge is the hierarchical topology layer: clients fold into edge
// aggregators, edge aggregators fold into a cloud model — the two-tier
// architecture of asynchronous semi-decentralized federated edge learning,
// layered on top of FedAT's tiered asynchrony inside each edge. The package
// provides three pieces:
//
//   - Cloud: the edge→cloud fold state machine (sync barrier or buffered
//     async with staleness-weighted folding), shared verbatim by the
//     simulated hierarchy and the live TCP root server,
//   - Fabric: an fl.Fabric composing K child fabrics into one union
//     population, so any engine composition also runs over shards,
//   - Run: the simulated hierarchy runner — K unmodified engines, one per
//     edge, interleaved on one deterministically merged virtual timeline.
//
// Determinism contract: for simulated edges, same seed → bit-identical
// runs, and a single-edge topology is bit-identical to the flat run — the
// cloud with one edge is a pure pass-through (an exact copy, no rebase, no
// wire), so the edge's engine never observes the hierarchy at all.
package edge

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Fold policies.
const (
	// FoldSync folds the cloud model only when every live edge has pushed
	// since the last fold — a barrier on the FOLD, not on training: edges
	// keep training continuously (FedAT's asynchrony is preserved inside
	// each edge), the cloud merely waits for full coverage before merging.
	// A departed edge leaves the barrier, so survivors keep folding.
	FoldSync = "sync"
	// FoldAsync folds after every Buffer-th push, blending each push into
	// its edge's slot with the staleness weight α = (staleness+1)^(−exp),
	// staleness measured in cloud epochs since that edge last adopted the
	// merged model — FedAsync's mixing applied across edges.
	FoldAsync = "async"
)

// CloudConfig configures the edge→cloud fold state machine.
type CloudConfig struct {
	// Edges is K, the number of edge aggregators.
	Edges int
	// Fold is the policy: FoldSync or FoldAsync.
	Fold string
	// Buffer is FoldAsync's push budget per fold (buffered-K); default 1 —
	// fold on every push. Ignored under FoldSync.
	Buffer int
	// StaleExp is FoldAsync's staleness exponent; default 0.5.
	StaleExp float64
	// W0 is the initial global model, the implicit first cloud model and
	// the uplink codec's initial shared reference.
	W0 []float64
	// Shapes describes the model blocks for the uplink wire format.
	Shapes []codec.ShapeInfo
	// TopKFrac, when > 0, compresses each edge push with the top-k delta
	// codec: the edge transmits the sparsified difference against the
	// shared per-edge reference (last reconstructed push), never the
	// absolute model — top-k zero-fills dropped coordinates, so absolute
	// models would be destroyed. 0 transmits raw float64 (bit-lossless).
	TopKFrac float64
	// Eval, when set, evaluates the merged model after each EvalEvery-th
	// fold (cloud-level accuracy points over the union population).
	Eval func(w []float64) (fl.Result, bool)
	// EvalEvery is the fold cadence of Eval; default 1.
	EvalEvery int
	// Dataset labels the cloud-level run record.
	Dataset string
	// Method labels the cloud-level run record.
	Method string
}

func (c CloudConfig) withDefaults() CloudConfig {
	if c.Fold == "" {
		c.Fold = FoldSync
	}
	if c.Buffer <= 0 {
		c.Buffer = 1
	}
	if c.StaleExp <= 0 {
		c.StaleExp = 0.5
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	return c
}

// Cloud is the edge→cloud aggregation state: one model slot per edge (its
// latest reconstructed push), push counters, and the merged global model.
// The merge is an eq5-style update-count-weighted average across edge
// slots — weight of edge e proportional to counts[e]+1 (add-one smoothing,
// as in core.Aggregator; no mirroring, since edge ids carry no latency
// order) — computed over edges that have pushed at least once and not
// departed.
//
// All methods are safe for concurrent use: the simulated hierarchy calls
// them from the single driver goroutine, the live root from per-edge
// connection readers.
type Cloud struct {
	mu  sync.Mutex
	cfg CloudConfig

	slots   [][]float64 // latest reconstructed push per edge; nil before the first
	refs    [][]float64 // shared per-edge uplink reference for the delta codec
	counts  []int       // pushes per edge
	adopted []int       // cloud epoch each edge last adopted (0 = w0)
	pending []bool      // pushed since the last fold
	retired []bool      // edge departed (engine finished or connection lost)

	pushesSinceFold int
	epoch           int // cloud folds so far
	global          []float64

	run *metrics.Run // cloud-level accounting (folds, staleness, bytes, evals)
}

// NewCloud builds the fold state machine.
func NewCloud(cfg CloudConfig) (*Cloud, error) {
	cfg = cfg.withDefaults()
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("edge: cloud needs at least one edge, got %d", cfg.Edges)
	}
	if cfg.Fold != FoldSync && cfg.Fold != FoldAsync {
		return nil, fmt.Errorf("edge: unknown fold policy %q (have %q, %q)", cfg.Fold, FoldSync, FoldAsync)
	}
	if len(cfg.W0) == 0 {
		return nil, fmt.Errorf("edge: cloud needs the initial model")
	}
	if cfg.TopKFrac < 0 || cfg.TopKFrac > 1 {
		return nil, fmt.Errorf("edge: top-k fraction %g out of [0,1]", cfg.TopKFrac)
	}
	c := &Cloud{
		cfg:     cfg,
		slots:   make([][]float64, cfg.Edges),
		refs:    make([][]float64, cfg.Edges),
		counts:  make([]int, cfg.Edges),
		adopted: make([]int, cfg.Edges),
		pending: make([]bool, cfg.Edges),
		retired: make([]bool, cfg.Edges),
		global:  tensor.Copy(cfg.W0),
		run:     &metrics.Run{Method: cfg.Method, Dataset: cfg.Dataset},
	}
	return c, nil
}

// uplinkCodec returns the wire codec an edge push travels as.
func (c *Cloud) uplinkCodec() codec.Codec {
	if c.cfg.TopKFrac > 0 {
		return &codec.TopK{Frac: c.cfg.TopKFrac}
	}
	return codec.Raw{}
}

// EncodeUplink marshals edge e's model for the uplink exactly as the cloud
// will decode it: the top-k-sparsified delta against the shared reference
// when compression is on, the raw model otherwise. The reference is NOT
// advanced — DecodeUplink (or Push, which uses it) advances both ends.
// The live edge uplink uses this to build its push frames; the simulated
// hierarchy pushes in-process through Push and never materializes bytes
// for K = 1.
func EncodeUplink(cdc codec.Codec, shapes []codec.ShapeInfo, ref, w []float64) ([]byte, error) {
	if _, ok := cdc.(*codec.TopK); ok {
		delta := make([]float64, len(w))
		for i := range w {
			delta[i] = w[i] - ref[i]
		}
		return codec.MarshalModel(cdc, shapes, delta)
	}
	return codec.MarshalModel(cdc, shapes, w)
}

// DecodeUplink reconstructs a pushed model from its wire message and
// advances the shared reference in place: under the delta codec the
// payload is ref+delta and ref becomes the reconstruction (both ends
// compute the identical new reference); under a plain codec the payload is
// the model itself. Returns the reconstructed model (a fresh slice).
func DecodeUplink(data []byte, ref []float64) ([]float64, error) {
	_, w, err := codec.UnmarshalModel(data)
	if err != nil {
		return nil, err
	}
	if len(w) != len(ref) {
		return nil, fmt.Errorf("edge: uplink carries %d weights, want %d", len(w), len(ref))
	}
	if codec.IsTopKMessage(data) {
		for i := range w {
			w[i] += ref[i]
		}
	}
	copy(ref, w)
	return w, nil
}

// Push folds edge e's freshly trained model into the cloud state at time
// now. When the push triggers a cloud fold (barrier satisfied, or the
// async buffer filled), the returned event describes it and folded is
// true; the event is emitted into the pushing edge's stream by the caller.
//
// With a single edge the cloud is a pass-through: the merged model is an
// exact copy of the push, no bytes are accounted (there is no cloud link)
// and no compression applies — this is what makes edge:1 ≡ flat exact.
func (c *Cloud) Push(e int, w []float64, now float64) (fl.EdgeFoldEvent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e < 0 || e >= c.cfg.Edges {
		panic(fmt.Sprintf("edge: push from edge %d, have %d edges", e, c.cfg.Edges))
	}
	arrival := w
	if c.cfg.Edges > 1 {
		// Run the actual wire path, so the accounted bytes are the frame
		// payload and the lossy codec's effect is simulation-faithful.
		if c.refs[e] == nil {
			c.refs[e] = tensor.Copy(c.cfg.W0)
		}
		msg, err := EncodeUplink(c.uplinkCodec(), c.cfg.Shapes, c.refs[e], w)
		if err != nil {
			panic(fmt.Sprintf("edge: uplink encode: %v", err))
		}
		arrival, err = DecodeUplink(msg, c.refs[e])
		if err != nil {
			panic(fmt.Sprintf("edge: uplink decode: %v", err))
		}
		c.run.UpBytes += int64(len(msg))
	}
	return c.arriveLocked(e, arrival, now)
}

// PushWire folds an already-encoded uplink frame — the live root's path:
// the frame arrived over TCP, so the bytes are accounted as received and
// the decode advances the shared per-edge reference exactly as the sending
// edge advanced its own copy.
func (c *Cloud) PushWire(e int, data []byte, now float64) (fl.EdgeFoldEvent, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e < 0 || e >= c.cfg.Edges {
		return fl.EdgeFoldEvent{}, false, fmt.Errorf("edge: push from edge %d, have %d edges", e, c.cfg.Edges)
	}
	if c.refs[e] == nil {
		c.refs[e] = tensor.Copy(c.cfg.W0)
	}
	arrival, err := DecodeUplink(data, c.refs[e])
	if err != nil {
		return fl.EdgeFoldEvent{}, false, err
	}
	c.run.UpBytes += int64(len(data))
	ev, folded := c.arriveLocked(e, arrival, now)
	return ev, folded, nil
}

// arriveLocked registers a reconstructed push and folds if the policy says.
func (c *Cloud) arriveLocked(e int, arrival []float64, now float64) (fl.EdgeFoldEvent, bool) {
	staleness := float64(c.epoch - c.adopted[e])
	if c.cfg.Edges == 1 {
		// A pass-through edge never adopts (it IS the cloud), so the
		// adoption epoch can't advance; its pushes are by definition fresh.
		staleness = 0
	}
	c.insertLocked(e, arrival, staleness)
	c.counts[e]++
	c.pending[e] = true
	c.pushesSinceFold++
	if !c.foldReadyLocked() {
		return fl.EdgeFoldEvent{}, false
	}
	return c.foldLocked(e, staleness, now), true
}

// insertLocked blends the arrival into edge e's slot. FoldSync replaces the
// slot (the barrier guarantees every fold sees each edge's latest); under
// FoldAsync a stale push is discounted by α = (staleness+1)^(−exp), the
// cross-edge version of FedAsync's mixing. α = 1 (fresh push) is an exact
// copy — Lerp with t=1 is not bit-exact, and single-edge pass-through
// equality depends on the copy.
func (c *Cloud) insertLocked(e int, arrival []float64, staleness float64) {
	if c.slots[e] == nil {
		c.slots[e] = tensor.Copy(arrival)
		return
	}
	alpha := 1.0
	if c.cfg.Fold == FoldAsync {
		alpha = staleWeight(staleness, c.cfg.StaleExp)
	}
	if alpha >= 1 {
		copy(c.slots[e], arrival)
		return
	}
	tensor.Lerp(c.slots[e], arrival, alpha)
}

// foldReadyLocked evaluates the fold policy.
func (c *Cloud) foldReadyLocked() bool {
	if c.pushesSinceFold == 0 {
		return false
	}
	if c.cfg.Fold == FoldAsync {
		return c.pushesSinceFold >= c.cfg.Buffer
	}
	// Sync barrier: every live edge has contributed since the last fold.
	for e := range c.pending {
		if !c.retired[e] && !c.pending[e] {
			return false
		}
	}
	return true
}

// foldLocked merges the live slots into the global model and stamps the
// cloud record. trigger/staleness describe the push that completed the
// policy (for the event); a retirement-triggered fold passes the lowest
// still-pending edge.
func (c *Cloud) foldLocked(trigger int, staleness float64, now float64) fl.EdgeFoldEvent {
	var members []int
	for e := range c.slots {
		if c.slots[e] != nil && !c.retired[e] {
			members = append(members, e)
		}
	}
	switch len(members) {
	case 0:
		// Every contributor departed; keep the last merged model.
	case 1:
		// Exact copy: single-contributor folds (and thus the whole K=1
		// topology) must not perturb bits through a (n·w)/n round trip.
		copy(c.global, c.slots[members[0]])
	default:
		total := 0.0
		for _, e := range members {
			total += float64(c.counts[e] + 1)
		}
		tensor.Zero(c.global)
		for _, e := range members {
			tensor.Axpy(float64(c.counts[e]+1)/total, c.slots[e], c.global)
		}
	}
	c.epoch++
	c.pushesSinceFold = 0
	for e := range c.pending {
		c.pending[e] = false
	}
	ev := fl.EdgeFoldEvent{
		Edge:      trigger,
		Round:     c.epoch,
		Time:      now,
		Staleness: staleness,
		Members:   len(members),
	}
	c.run.EdgeFolds++
	c.run.EdgeStaleness += staleness
	c.run.GlobalRounds = c.epoch
	if c.cfg.Eval != nil && c.epoch%c.cfg.EvalEvery == 0 {
		if res, ok := c.cfg.Eval(c.global); ok {
			c.run.Add(metrics.Point{
				Round: c.epoch, Time: now,
				UpBytes: c.run.UpBytes, DownBytes: c.run.DownBytes,
				Acc: res.Acc, Loss: res.Loss, Var: res.Variance,
			})
		}
	}
	return ev
}

// Adopt hands edge e the merged model when the cloud has folded since e
// last adopted; ok is false when e is already current. The returned slice
// is a fresh copy (the edge's update rule copies from it on rebase, but
// the live root also marshals it). Single-edge topologies never adopt —
// the pass-through edge IS the cloud.
func (c *Cloud) Adopt(e int) (w []float64, epoch int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Edges == 1 || c.adopted[e] >= c.epoch {
		return nil, 0, false
	}
	c.adopted[e] = c.epoch
	c.run.DownBytes += int64(rawWireBytes(c.cfg.Shapes, len(c.global)))
	return tensor.Copy(c.global), c.epoch, true
}

// Retire marks edge e departed (engine finished, or its connection died):
// it leaves the sync barrier and future folds. If its departure completes
// the barrier for the survivors, the cloud folds immediately — this is the
// "keeps folding surviving edges" degradation; the fold has no event
// stream to land on, so it is recorded only in the cloud run.
func (c *Cloud) Retire(e int, now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e < 0 || e >= c.cfg.Edges || c.retired[e] {
		return
	}
	c.retired[e] = true
	c.pending[e] = false
	if c.cfg.Fold == FoldSync && c.foldReadyLocked() {
		trigger, stale := 0, 0.0
		for p := range c.pending {
			if c.pending[p] {
				trigger = p
				stale = float64(c.epoch - c.adopted[p])
				break
			}
		}
		c.foldLocked(trigger, stale, now)
	}
}

// Live reports how many edges have not retired.
func (c *Cloud) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.retired {
		if !r {
			n++
		}
	}
	return n
}

// Epoch returns the cloud fold count.
func (c *Cloud) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Global returns a copy of the current merged model.
func (c *Cloud) Global() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return tensor.Copy(c.global)
}

// Record returns the cloud-level run record (fold counts, staleness,
// uplink/downlink bytes, merged-model evaluations). The caller owns it
// after the hierarchy finishes.
func (c *Cloud) Record() *metrics.Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.run
}

// staleWeight is the async discount α = (staleness+1)^(−exp).
func staleWeight(staleness, exp float64) float64 {
	if staleness <= 0 {
		return 1
	}
	return math.Pow(staleness+1, -exp)
}

// rawWireBytes is the marshalled size of a raw-float64 model message — the
// adoption downlink's accounting (adoptions are never compressed).
func rawWireBytes(shapes []codec.ShapeInfo, n int) int {
	header := 4
	for _, s := range shapes {
		header += 1 + len(s.Name) + 1 + 4*len(s.Dims)
	}
	return header + 4 + 8*n
}
