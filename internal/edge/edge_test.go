package edge_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// buildEnv constructs a small deterministic environment. Building twice
// with the same arguments yields bit-identical populations — the property
// the flat-vs-hierarchy equivalence tests (and the hierarchy experiment)
// rest on.
func buildEnv(t testing.TB, clients int, dataSeed uint64, cfg fl.RunConfig, behavior simnet.BehaviorConfig) *fl.Env {
	t.Helper()
	fed, err := dataset.FashionLike(clients, 2, dataset.ScaleSmall, dataSeed)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients:  clients,
		SecPerBatch: 0.05,
		UpBW:        1 << 20,
		DownBW:      1 << 20,
		ServerBW:    8 << 20,
		Behavior:    behavior,
		Seed:        cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 16, fed.Classes)
	}
	env, err := fl.NewEnv(fed, cluster, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func edgeCfg() fl.RunConfig {
	return fl.RunConfig{
		Rounds:          20,
		ClientsPerRound: 4,
		LocalEpochs:     1,
		BatchSize:       8,
		Lambda:          0.4,
		LearningRate:    0.01,
		NumTiers:        3,
		EvalEvery:       4,
		Seed:            7,
	}
}

// sig condenses a run into a bit-exact signature of everything the flat
// engine produces. EdgeFolds is deliberately excluded: a 1-edge hierarchy
// records its pass-through folds while a flat run records none, and that
// counter difference is the topology's only observable trace.
func sig(r *metrics.Run) string {
	s := fmt.Sprintf("up=%d down=%d rounds=%d retiers=%d migrations=%d",
		r.UpBytes, r.DownBytes, r.GlobalRounds, r.Retiers, r.TierMigrations)
	for _, p := range r.Points {
		s += fmt.Sprintf("|%d:%016x:%016x:%016x:%016x", p.Round,
			math.Float64bits(p.Time), math.Float64bits(p.Acc),
			math.Float64bits(p.Loss), math.Float64bits(p.Var))
	}
	return s
}

func weightsBits(w []float64) string {
	s := ""
	for _, v := range w {
		s += fmt.Sprintf("%016x", math.Float64bits(v))
	}
	return s
}

// finalCapture returns an observer recording the last fold's global model.
func finalCapture(dst *[]float64) fl.Observer {
	return fl.ObserverFunc(func(ev fl.Event) {
		if tf, ok := ev.(fl.TierFoldEvent); ok {
			*dst = append((*dst)[:0], tf.Global...)
		}
	})
}

// TestEdgeOneEqualsFlat is the pass-through guarantee: a 1-edge hierarchy
// replays the flat run bit-identically — evaluation trajectory, byte
// totals, round counts AND the final model — for every registry method.
func TestEdgeOneEqualsFlat(t *testing.T) {
	for _, name := range fl.MethodNames() {
		t.Run(name, func(t *testing.T) {
			m, err := fl.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := edgeCfg()

			var flatFinal []float64
			flatEnv := buildEnv(t, 16, 11, cfg, simnet.BehaviorConfig{})
			flatRun, err := m.RunOn(flatEnv.Fabric(), cfg, finalCapture(&flatFinal))
			if err != nil {
				t.Fatal(err)
			}

			edgeEnv := buildEnv(t, 16, 11, cfg, simnet.BehaviorConfig{})
			res, err := edge.Run(m, cfg, []edge.Child{{Fabric: edgeEnv.FabricOn}}, edge.Options{})
			if err != nil {
				t.Fatal(err)
			}

			if got, want := sig(res.Cloud), sig(flatRun); got != want {
				t.Errorf("edge:1 run diverged from flat\n got %s\nwant %s", got, want)
			}
			if res.Cloud.EdgeFolds == 0 {
				t.Error("edge:1 run recorded no edge folds (pass-through should still count)")
			}
			if got, want := weightsBits(res.Final), weightsBits(flatFinal); got != want {
				t.Error("edge:1 final model bits diverged from flat")
			}
		})
	}
}

// TestEdgeTwoDeterministic runs a 2-edge hierarchy twice from identically
// rebuilt environments and requires bit-identical results — the merged
// timeline must make goroutine scheduling invisible. Covers both fold
// policies and exercises per-edge runtime re-tiering.
func TestEdgeTwoDeterministic(t *testing.T) {
	for _, fold := range []string{edge.FoldSync, edge.FoldAsync} {
		t.Run(fold, func(t *testing.T) {
			once := func() (*edge.Result, error) {
				cfg := edgeCfg()
				cfg.RetierEvery = 4
				env0 := buildEnv(t, 8, 11, cfg, simnet.BehaviorConfig{})
				cfg1 := cfg
				cfg1.Seed = cfg.Seed + 1
				env1 := buildEnv(t, 8, 12, cfg1, simnet.BehaviorConfig{})
				return edge.Run(fl.Methods["fedat"], cfg, []edge.Child{
					{Fabric: env0.FabricOn},
					{Fabric: env1.FabricOn},
				}, edge.Options{
					Fold: fold,
					Eval: func([]float64) (fl.Result, bool) { return fl.Result{}, true },
				})
			}
			a, err := once()
			if err != nil {
				t.Fatal(err)
			}
			b, err := once()
			if err != nil {
				t.Fatal(err)
			}
			if sig(a.Cloud) != sig(b.Cloud) {
				t.Errorf("cloud records diverged across same-seed runs\n a %s\n b %s", sig(a.Cloud), sig(b.Cloud))
			}
			for e := range a.Edges {
				if sig(a.Edges[e]) != sig(b.Edges[e]) {
					t.Errorf("edge %d records diverged across same-seed runs", e)
				}
			}
			if weightsBits(a.Final) != weightsBits(b.Final) {
				t.Error("final merged models diverged across same-seed runs")
			}
			if a.Cloud.EdgeFolds == 0 {
				t.Error("no cloud folds recorded")
			}
			retiers := 0
			for _, r := range a.Edges {
				retiers += r.Retiers
			}
			if retiers == 0 {
				t.Error("no per-edge retier passes ran (RetierEvery=4 with tier pacing should)")
			}
		})
	}
}

// TestChurnedEdgeRevives is the hierarchy's version of the tier-pacer
// revival: one edge's whole population churns offline; the sync barrier
// stalls cloud folds while it is gone, the tier pacer revives the edge at
// its rejoin time, and cloud folding resumes — the run completes with
// post-revival cloud activity.
func TestChurnedEdgeRevives(t *testing.T) {
	cfg := edgeCfg()
	cfg.Rounds = 16
	env0 := buildEnv(t, 8, 11, cfg, simnet.BehaviorConfig{})
	cfg1 := cfg
	cfg1.Seed = cfg.Seed + 1
	env1 := buildEnv(t, 8, 12, cfg1, simnet.BehaviorConfig{
		ChurnFrac: 1.0,
		ChurnOn:   [2]float64{10, 12},
		ChurnOff:  [2]float64{30, 40},
	})
	res, err := edge.Run(fl.Methods["fedat"], cfg, []edge.Child{
		{Fabric: env0.FabricOn},
		{Fabric: env1.FabricOn},
	}, edge.Options{
		Fold: edge.FoldSync,
		Eval: func([]float64) (fl.Result, bool) { return fl.Result{}, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Edge 1 is fully offline from ~12 until at least 40 (earliest onset +
	// shortest stay-away), so any cloud fold after 40 is post-revival.
	earliestRejoin := 10.0 + 30.0
	lastFold := 0.0
	for _, p := range res.Cloud.Points {
		if p.Time > lastFold {
			lastFold = p.Time
		}
	}
	if lastFold <= earliestRejoin {
		t.Errorf("no cloud fold after the churned edge's revival: last fold at %.1f, revival no earlier than %.1f", lastFold, earliestRejoin)
	}
	if res.Edges[1].GlobalRounds == 0 {
		t.Error("churned edge folded nothing at all")
	}
}

// TestCloudFoldPolicies unit-tests the fold state machine directly.
func TestCloudFoldPolicies(t *testing.T) {
	w0 := []float64{1, 1}
	shapes := []codec.ShapeInfo{{Name: "w", Dims: []int{2}}}

	t.Run("sync barrier waits for all live edges", func(t *testing.T) {
		c, err := edge.NewCloud(edge.CloudConfig{Edges: 3, Fold: edge.FoldSync, W0: w0, Shapes: shapes})
		if err != nil {
			t.Fatal(err)
		}
		if _, folded := c.Push(0, []float64{2, 2}, 1); folded {
			t.Fatal("folded with 1/3 edges pushed")
		}
		if _, folded := c.Push(1, []float64{4, 4}, 2); folded {
			t.Fatal("folded with 2/3 edges pushed")
		}
		ev, folded := c.Push(2, []float64{6, 6}, 3)
		if !folded {
			t.Fatal("did not fold with all edges pushed")
		}
		if ev.Members != 3 || ev.Round != 1 {
			t.Fatalf("fold event = %+v, want 3 members round 1", ev)
		}
		// counts all equal (1 push each): plain mean of 2,4,6 = 4.
		if g := c.Global(); g[0] != 4 || g[1] != 4 {
			t.Fatalf("merged model = %v, want [4 4]", g)
		}
	})

	t.Run("retire completes the barrier for survivors", func(t *testing.T) {
		c, err := edge.NewCloud(edge.CloudConfig{Edges: 3, Fold: edge.FoldSync, W0: w0, Shapes: shapes})
		if err != nil {
			t.Fatal(err)
		}
		c.Push(0, []float64{2, 2}, 1)
		c.Push(1, []float64{4, 4}, 2)
		c.Retire(2, 3) // the holdout departs: survivors' barrier is complete
		if c.Epoch() != 1 {
			t.Fatalf("epoch = %d after retirement-completed barrier, want 1", c.Epoch())
		}
		if g := c.Global(); g[0] != 3 || g[1] != 3 {
			t.Fatalf("merged model = %v, want [3 3]", g)
		}
		// The departed edge stays out of later folds.
		c.Push(0, []float64{8, 8}, 4)
		if _, folded := c.Push(1, []float64{8, 8}, 5); !folded {
			t.Fatal("survivors alone no longer fold")
		}
	})

	t.Run("async folds per buffered pushes with staleness discount", func(t *testing.T) {
		c, err := edge.NewCloud(edge.CloudConfig{Edges: 2, Fold: edge.FoldAsync, Buffer: 2, StaleExp: 0.5, W0: w0, Shapes: shapes})
		if err != nil {
			t.Fatal(err)
		}
		if _, folded := c.Push(0, []float64{2, 2}, 1); folded {
			t.Fatal("folded with 1/2 buffered pushes")
		}
		if _, folded := c.Push(0, []float64{4, 4}, 2); !folded {
			t.Fatal("did not fold at the buffer")
		}
		// Edge 0 adopts; edge 1 pushes twice without ever adopting — its
		// second push has staleness 1 and is discounted by (1+1)^-0.5.
		if _, _, ok := c.Adopt(0); !ok {
			t.Fatal("edge 0 could not adopt after a fold")
		}
		c.Push(1, []float64{10, 10}, 3)
		ev, folded := c.Push(1, []float64{20, 20}, 4)
		if !folded {
			t.Fatal("did not fold at the second buffer")
		}
		if ev.Staleness != 1 {
			t.Fatalf("staleness = %v, want 1", ev.Staleness)
		}
		alpha := math.Pow(2, -0.5)
		slot1 := 10*(1-alpha) + 20*alpha
		// counts: edge0 = 2 pushes (weight 3), edge1 = 2 pushes (weight 3).
		want := (3*4 + 3*slot1) / 6
		if g := c.Global(); math.Abs(g[0]-want) > 1e-12 {
			t.Fatalf("merged model = %v, want %v", g[0], want)
		}
	})

	t.Run("single edge is an exact pass-through", func(t *testing.T) {
		c, err := edge.NewCloud(edge.CloudConfig{Edges: 1, Fold: edge.FoldSync, W0: w0, Shapes: shapes, TopKFrac: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		push := []float64{0.1 + 0.2, math.Pi} // bit-awkward values on purpose
		if _, folded := c.Push(0, push, 1); !folded {
			t.Fatal("single edge push did not fold")
		}
		g := c.Global()
		if math.Float64bits(g[0]) != math.Float64bits(push[0]) || math.Float64bits(g[1]) != math.Float64bits(push[1]) {
			t.Fatal("single-edge fold is not bit-exact")
		}
		if _, _, ok := c.Adopt(0); ok {
			t.Fatal("single edge must never adopt (it IS the cloud)")
		}
		if r := c.Record(); r.UpBytes != 0 || r.DownBytes != 0 {
			t.Fatalf("single-edge topology accounted cloud bytes: up=%d down=%d", r.UpBytes, r.DownBytes)
		}
	})
}

// TestUplinkRoundTrip is the satellite coverage for the top-k uplink: the
// lossless path (compression disabled) reproduces the model bit-exactly
// through the wire, and the delta path keeps both ends' shared references
// in bit-exact agreement.
func TestUplinkRoundTrip(t *testing.T) {
	shapes := []codec.ShapeInfo{{Name: "w", Dims: []int{5}}}
	w := []float64{0.1, -0.2, 0.3 + 1e-9, math.Pi, -1e-12}
	w0 := []float64{1, 1, 1, 1, 1}

	t.Run("disabled is bit-lossless", func(t *testing.T) {
		ref := append([]float64(nil), w0...)
		msg, err := edge.EncodeUplink(codec.Raw{}, shapes, ref, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := edge.DecodeUplink(msg, ref)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w {
			if math.Float64bits(got[i]) != math.Float64bits(w[i]) {
				t.Fatalf("coordinate %d: %x != %x", i, got[i], w[i])
			}
		}
	})

	t.Run("topk delta keeps both references in sync", func(t *testing.T) {
		cdc := codec.NewTopK(0.4) // keeps 2 of 5 coordinates
		senderRef := append([]float64(nil), w0...)
		receiverRef := append([]float64(nil), w0...)
		for step := 0; step < 3; step++ {
			model := make([]float64, len(w))
			for i := range model {
				model[i] = w[i] * float64(step+1)
			}
			msg, err := edge.EncodeUplink(cdc, shapes, senderRef, model)
			if err != nil {
				t.Fatal(err)
			}
			if !codec.IsTopKMessage(msg) {
				t.Fatal("topk uplink message not tagged as topk on the wire")
			}
			got, err := edge.DecodeUplink(msg, receiverRef)
			if err != nil {
				t.Fatal(err)
			}
			// The sender advances its reference exactly as the receiver
			// reconstructed: dropped coordinates KEEP the reference value.
			if _, err := edge.DecodeUplink(msg, senderRef); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if math.Float64bits(senderRef[i]) != math.Float64bits(receiverRef[i]) {
					t.Fatalf("step %d: references diverged at %d", step, i)
				}
			}
		}
	})
}

// TestComposeFabricRunsMethods checks the composite fl.Fabric: any engine
// composition runs over K shards as one union population, deterministically.
func TestComposeFabricRunsMethods(t *testing.T) {
	for _, name := range []string{"fedat", "fedavg", "fedasync"} {
		t.Run(name, func(t *testing.T) {
			once := func() (*metrics.Run, []float64) {
				cfg := edgeCfg()
				env0 := buildEnv(t, 8, 11, cfg, simnet.BehaviorConfig{})
				env1 := buildEnv(t, 8, 12, cfg, simnet.BehaviorConfig{})
				clock := simnet.New()
				fab, err := edge.Compose(clock, []fl.Fabric{env0.FabricOn(clock), env1.FabricOn(clock)})
				if err != nil {
					t.Fatal(err)
				}
				if fab.NumClients() != 16 {
					t.Fatalf("union population = %d, want 16", fab.NumClients())
				}
				var final []float64
				run, err := fl.Methods[name].RunOn(fab, cfg, finalCapture(&final))
				if err != nil {
					t.Fatal(err)
				}
				return run, final
			}
			a, wa := once()
			b, wb := once()
			if a.GlobalRounds == 0 {
				t.Fatal("composite run folded nothing")
			}
			if sig(a) != sig(b) {
				t.Errorf("composite runs diverged across same-seed invocations")
			}
			if weightsBits(wa) != weightsBits(wb) {
				t.Error("composite final models diverged across same-seed invocations")
			}
		})
	}
}
