package edge

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/simnet"
	"repro/internal/tiering"
)

// Fabric implements fl.Fabric by composing K child fabrics into one union
// population: child c's clients occupy the contiguous global id range
// [offsets[c], offsets[c]+child.NumClients()). Every engine call fans out
// to the owning child (or to all children, for cohort dispatch and
// partitioning) and the results are translated back into the union id
// space, so ANY method composition from the registry runs unchanged over
// sharded clients — the "one engine over K cohorts" half of the
// hierarchical design; the per-edge-engine half is Run.
//
// All children must share one clock (the composite's own) and one model
// architecture. The fabric inherits each child's determinism: with simnet
// children it is bit-deterministic.
type Fabric struct {
	simnet.Clock
	children []fl.Fabric
	offsets  []int
	total    int
}

var _ fl.Fabric = (*Fabric)(nil)

// Compose builds the union fabric. The children must be driven by clock —
// for simulated children, construct them with Env.FabricOn(clock).
func Compose(clock simnet.Clock, children []fl.Fabric) (*Fabric, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("edge: composing zero child fabrics")
	}
	f := &Fabric{Clock: clock, children: children, offsets: make([]int, len(children))}
	w := len(children[0].InitialWeights())
	for c, ch := range children {
		f.offsets[c] = f.total
		f.total += ch.NumClients()
		if got := len(ch.InitialWeights()); got != w {
			return nil, fmt.Errorf("edge: child %d has %d weights, child 0 has %d", c, got, w)
		}
	}
	if f.total == 0 {
		return nil, fmt.Errorf("edge: composed fabric has no clients")
	}
	return f, nil
}

// locate maps a global client id to (child, local id).
func (f *Fabric) locate(id int) (int, int) {
	for c := len(f.offsets) - 1; c >= 0; c-- {
		if id >= f.offsets[c] {
			return c, id - f.offsets[c]
		}
	}
	panic(fmt.Sprintf("edge: client %d out of range [0,%d)", id, f.total))
}

func (f *Fabric) Dataset() string { return f.children[0].Dataset() }
func (f *Fabric) NumClients() int { return f.total }

func (f *Fabric) SampleCount(id int) int {
	c, l := f.locate(id)
	return f.children[c].SampleCount(l)
}

func (f *Fabric) Available(id int, now float64) bool {
	c, l := f.locate(id)
	return f.children[c].Available(l, now)
}

func (f *Fabric) NextAvailable(id int, now float64) float64 {
	c, l := f.locate(id)
	return f.children[c].NextAvailable(l, now)
}

func (f *Fabric) InitialWeights() []float64 { return f.children[0].InitialWeights() }
func (f *Fabric) Shapes() []codec.ShapeInfo { return f.children[0].Shapes() }

// Partition tiers each child independently — each edge keeps its own
// latency structure — and concatenates the per-child partitions into the
// union id space (tier m of the union is the union of every child's tier
// m).
func (f *Fabric) Partition(cfg fl.RunConfig) (*tiering.Tiers, error) {
	parts := make([]*tiering.Tiers, len(f.children))
	for c, ch := range f.children {
		t, err := ch.Partition(cfg)
		if err != nil {
			return nil, fmt.Errorf("edge: child %d: %w", c, err)
		}
		parts[c] = t
	}
	return tiering.Concat(parts, f.offsets, f.total)
}

// Repartition projects the union partition back onto each child (ids
// filtered to the child's range and re-based) and forwards it.
func (f *Fabric) Repartition(t *tiering.Tiers) {
	for c, ch := range f.children {
		lo, hi := f.offsets[c], f.offsets[c]+ch.NumClients()
		sub := &tiering.Tiers{
			Members:    make([][]int, t.M()),
			Assignment: make([]int, hi-lo),
		}
		for m, members := range t.Members {
			for _, id := range members {
				if id >= lo && id < hi {
					sub.Members[m] = append(sub.Members[m], id-lo)
					sub.Assignment[id-lo] = m
				}
			}
		}
		ch.Repartition(sub)
	}
}

// Dispatch fans the cohort out to the owning children and reassembles the
// deliveries into one result set, index-aligned with the original cohort.
// deliver fires once, when the last child has delivered; with simulated
// children every sub-delivery is synchronous, so deliver runs before
// Dispatch returns, exactly like a flat sim fabric.
func (f *Fabric) Dispatch(comm *fl.Comm, cohort []int, now float64, global []float64, lc fl.LocalConfig, deliver func([]fl.TrainResult, error)) {
	subCohort := make([][]int, len(f.children)) // local ids per child
	subSlots := make([][]int, len(f.children))  // cohort positions per child
	for pos, id := range cohort {
		c, l := f.locate(id)
		subCohort[c] = append(subCohort[c], l)
		subSlots[c] = append(subSlots[c], pos)
	}
	merged := make([]fl.TrainResult, len(cohort))
	remaining := 0
	for c := range f.children {
		if len(subCohort[c]) > 0 {
			remaining++
		}
	}
	if remaining == 0 {
		deliver(merged, nil)
		return
	}
	var firstErr error
	for c := range f.children {
		if len(subCohort[c]) == 0 {
			continue
		}
		c := c
		f.children[c].Dispatch(comm, subCohort[c], now, global, lc, func(results []fl.TrainResult, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			for i, r := range results {
				r.Client += f.offsets[c] // back to the union id space
				merged[subSlots[c][i]] = r
			}
			if remaining--; remaining == 0 {
				deliver(merged, firstErr)
			}
		})
	}
}

// Probe forwards per child; the latest child completion is the result.
func (f *Fabric) Probe(comm *fl.Comm, ids []int, now float64, w []float64, replyBytes int) (float64, error) {
	latest := now
	sub := make([][]int, len(f.children))
	for _, id := range ids {
		c, l := f.locate(id)
		sub[c] = append(sub[c], l)
	}
	for c, ch := range f.children {
		if len(sub[c]) == 0 {
			continue
		}
		done, err := ch.Probe(comm, sub[c], now, w, replyBytes)
		if err != nil {
			return 0, err
		}
		if done > latest {
			latest = done
		}
	}
	return latest, nil
}

// Evaluate merges the children's evaluations, weighting each child by its
// training-sample mass (the per-client weighting inside each child already
// uses sample counts; the cross-child weights reuse the same proxy).
// Children without a harness are skipped; ok is false when none has one.
func (f *Fabric) Evaluate(w []float64) (fl.Result, bool) {
	var acc, loss, vari, mass float64
	any := false
	for _, ch := range f.children {
		res, ok := ch.Evaluate(w)
		if !ok {
			continue
		}
		m := 0.0
		for l := 0; l < ch.NumClients(); l++ {
			m += float64(ch.SampleCount(l))
		}
		if m == 0 {
			m = float64(ch.NumClients())
		}
		acc += m * res.Acc
		loss += m * res.Loss
		vari += m * res.Variance
		mass += m
		any = true
	}
	if !any || mass == 0 {
		return fl.Result{}, false
	}
	return fl.Result{Acc: acc / mass, Loss: loss / mass, Variance: vari / mass}, true
}

// EvaluateSubset forwards each id to its owner and weights by subset size.
func (f *Fabric) EvaluateSubset(w []float64, ids []int) float64 {
	sub := make([][]int, len(f.children))
	for _, id := range ids {
		c, l := f.locate(id)
		sub[c] = append(sub[c], l)
	}
	total, n := 0.0, 0
	for c, ch := range f.children {
		if len(sub[c]) == 0 {
			continue
		}
		total += float64(len(sub[c])) * ch.EvaluateSubset(w, sub[c])
		n += len(sub[c])
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
