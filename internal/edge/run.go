package edge

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Child is one edge of a simulated hierarchy: a constructor binding the
// edge's fabric to a clock handle of the shared merged timeline (for a
// simulated edge, Env.FabricOn).
type Child struct {
	Fabric func(c simnet.Clock) fl.Fabric
}

// Options configures a hierarchical run.
type Options struct {
	// Fold is the edge→cloud policy (FoldSync default) and Buffer /
	// StaleExp its async parameters, as in CloudConfig.
	Fold     string
	Buffer   int
	StaleExp float64
	// PushEvery is how many of its own folds an edge completes per cloud
	// push; default 1 (push every fold).
	PushEvery int
	// TopKFrac enables the top-k delta uplink compressor (CloudConfig).
	TopKFrac float64
	// Eval evaluates the merged cloud model over the union population
	// (optional), every EvalEvery-th cloud fold.
	Eval      func(w []float64) (fl.Result, bool)
	EvalEvery int
	// SeedStride offsets edge e's engine seed by e*SeedStride, so edges
	// draw uncorrelated selection streams; edge 0 always keeps cfg.Seed,
	// which is what makes a 1-edge hierarchy replay the flat run exactly.
	// Default 1_000_003.
	SeedStride uint64
	// Workers sets how many edge-local events the merged timeline may
	// execute concurrently (simnet.MultiClock.DriveWorkers). <=1 keeps the
	// fully serial driver. Any value produces bit-identical results — fold
	// sites serialize at quiescent points — so Workers trades nothing but
	// CPU for wall clock.
	Workers int
}

// Result is a hierarchical run's record: the cloud-level run (edge folds,
// staleness, cloud traffic, merged-model evaluations), each edge engine's
// own run, and the final merged model. With one edge the cloud is a
// pass-through, so Cloud is that edge's run itself.
type Result struct {
	Cloud *metrics.Run
	Edges []*metrics.Run
	Final []float64
}

// Run executes one engine per edge — the UNMODIFIED method engine, so each
// edge is a full FedAT server with its own cohort dispatch, availability,
// tiering and (with cfg.RetierEvery) runtime re-tiering — over one
// deterministically merged virtual timeline, with the cloud folding pushed
// edge models per the fold policy and each edge rebasing onto the merged
// model it later adopts.
//
// Engine start is serialized (edge e's event scheduling completes before
// edge e+1 starts) and all callbacks interleave in global (time, seq)
// order, so same seed → bit-identical runs regardless of goroutine
// scheduling. With opts.Workers > 1 edge-local events of distinct edges
// overlap on worker goroutines while fold sites still execute alone at
// quiescent points — same ordering guarantees, shorter wall clock.
func Run(m fl.Method, cfg fl.RunConfig, children []Child, opts Options) (*Result, error) {
	k := len(children)
	if k == 0 {
		return nil, fmt.Errorf("edge: hierarchy with zero edges")
	}
	if opts.PushEvery <= 0 {
		opts.PushEvery = 1
	}
	if opts.SeedStride == 0 {
		opts.SeedStride = 1_000_003
	}

	mc := simnet.NewMultiClock(k)
	handles := make([]simnet.Clock, k)
	fabrics := make([]fl.Fabric, k)
	for e := range children {
		handles[e] = mc.Child(e)
		fabrics[e] = children[e].Fabric(handles[e])
		if fabrics[e] == nil {
			return nil, fmt.Errorf("edge: child %d built a nil fabric", e)
		}
	}
	cloud, err := NewCloud(CloudConfig{
		Edges:     k,
		Fold:      opts.Fold,
		Buffer:    opts.Buffer,
		StaleExp:  opts.StaleExp,
		W0:        fabrics[0].InitialWeights(),
		Shapes:    fabrics[0].Shapes(),
		TopKFrac:  opts.TopKFrac,
		Eval:      opts.Eval,
		EvalEvery: opts.EvalEvery,
		Dataset:   fabrics[0].Dataset(),
		Method:    m.Name,
	})
	if err != nil {
		return nil, err
	}
	// An edge whose engine finishes leaves the fold barrier. The hook runs
	// on the driver goroutine at a deterministic point of the merged
	// timeline, so a retirement-completed barrier folds identically on
	// every same-seed run.
	mc.OnChildDone = func(e int) { cloud.Retire(e, handles[e].Now()) }

	runs := make([]*metrics.Run, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for e := 0; e < k; e++ {
		cfgE := cfg
		cfgE.Seed = cfg.Seed + uint64(e)*opts.SeedStride
		syncer := &edgeSyncer{cloud: cloud, edge: e, pushEvery: opts.PushEvery}
		wg.Add(1)
		go func(e int, syncer *edgeSyncer) {
			defer wg.Done()
			defer mc.MarkDone(e)
			runs[e], errs[e] = m.RunOn(fabrics[e], cfgE, syncer)
		}(e, syncer)
		mc.WaitArrive(e)
	}
	mc.DriveWorkers(opts.Workers)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	res := &Result{Edges: runs, Final: cloud.Global()}
	if k == 1 {
		// Pass-through: the single edge IS the cloud; its run record is the
		// authoritative trajectory (bit-identical to the flat run).
		res.Cloud = runs[0]
	} else {
		res.Cloud = cloud.Record()
	}
	return res, nil
}

// edgeSyncer connects one edge's engine to the cloud: after every
// PushEvery-th of the edge's own folds it pushes the fresh model up
// (emitting the cloud's EdgeFoldEvent into this edge's stream when the
// push triggers a fold), and whenever the cloud has moved past the edge's
// last adoption it hands the merged model back for a rebase.
type edgeSyncer struct {
	cloud     *Cloud
	edge      int
	pushEvery int
	folds     int
}

// OnEvent implements fl.Observer (the Syncer capability rides on the
// observer list); the syncer only acts through AfterFold.
func (s *edgeSyncer) OnEvent(fl.Event) {}

// AfterFold implements fl.Syncer.
func (s *edgeSyncer) AfterFold(f fl.FoldInfo) fl.SyncDirective {
	s.folds++
	var d fl.SyncDirective
	if s.folds%s.pushEvery == 0 {
		if ev, folded := s.cloud.Push(s.edge, f.Global, f.Time); folded {
			d.Events = append(d.Events, ev)
		}
	}
	if w, _, ok := s.cloud.Adopt(s.edge); ok {
		d.Rebase = w
	}
	return d
}
