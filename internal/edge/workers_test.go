package edge_test

import (
	"testing"

	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/simnet"
)

// dynamicsBehavior is the full client-dynamics stack — speed drift,
// transient churn, late joins and a scaling attack — the harshest regime
// the parallel timeline driver has to keep deterministic.
func dynamicsBehavior() simnet.BehaviorConfig {
	return simnet.BehaviorConfig{
		DriftMag:      0.2,
		DriftInterval: 40,
		ChurnFrac:     0.25,
		ChurnOn:       [2]float64{40, 120},
		ChurnOff:      [2]float64{10, 40},
		LateJoinFrac:  0.15,
		AttackFrac:    0.2,
		AttackKind:    "scale",
		AttackScale:   -2,
	}
}

// runHierarchyAt rebuilds a 3-edge hierarchy under full client dynamics
// from scratch and runs it with the given driver worker count.
func runHierarchyAt(t *testing.T, method string, workers int) *edge.Result {
	return runHierarchyMethodAt(t, fl.Methods[method], nil, workers)
}

// runHierarchyMethodAt is runHierarchyAt for an explicit (possibly
// composed) method spec, with an optional config mutation applied before
// the environments are built.
func runHierarchyMethodAt(t *testing.T, m fl.Method, mutate func(*fl.RunConfig), workers int) *edge.Result {
	t.Helper()
	cfg := edgeCfg()
	cfg.RetierEvery = 4
	if mutate != nil {
		mutate(&cfg)
	}
	children := make([]edge.Child, 3)
	for e := range children {
		cfgE := cfg
		cfgE.Seed = cfg.Seed + uint64(e)
		env := buildEnv(t, 8, 11+uint64(e), cfgE, dynamicsBehavior())
		children[e] = edge.Child{Fabric: env.FabricOn}
	}
	res, err := edge.Run(m, cfg, children, edge.Options{
		Fold:    edge.FoldSync,
		Eval:    func([]float64) (fl.Result, bool) { return fl.Result{}, true },
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDriveWorkersBitIdentical is the sharded-clock determinism contract:
// a hierarchy under drift + churn + late joins + attacks produces
// bit-identical results at any driver worker count. Edge-local events of
// distinct edges overlap on worker goroutines, but fold sites serialize at
// quiescent points of the merged timeline, so the parallel schedule is
// observationally equal to the serial one.
func TestDriveWorkersBitIdentical(t *testing.T) {
	for _, method := range []string{"fedat", "fedasync"} {
		t.Run(method, func(t *testing.T) {
			ref := runHierarchyAt(t, method, 1)
			if ref.Cloud.EdgeFolds == 0 {
				t.Fatal("reference run recorded no cloud folds")
			}
			for _, workers := range []int{2, 8} {
				got := runHierarchyAt(t, method, workers)
				if sig(got.Cloud) != sig(ref.Cloud) {
					t.Errorf("workers=%d: cloud record diverged from serial drive", workers)
				}
				for e := range ref.Edges {
					if sig(got.Edges[e]) != sig(ref.Edges[e]) {
						t.Errorf("workers=%d: edge %d record diverged from serial drive", workers, e)
					}
				}
				if weightsBits(got.Final) != weightsBits(ref.Final) {
					t.Errorf("workers=%d: final merged model bits diverged from serial drive", workers)
				}
			}
		})
	}
}

// TestDriveWorkersBitIdenticalAsyncFamily extends the sharded-clock
// determinism contract to the parameterized async family: a buffered
// per-update-staleness fold with the adaptive-LR stage on, and the
// gradient-style asyncsgd rule, must both stay bit-identical across driver
// worker counts — the new rules read per-update anchors and per-dispatch LR
// scales, so any schedule-dependence in those paths would show up here.
func TestDriveWorkersBitIdenticalAsyncFamily(t *testing.T) {
	variants := []struct {
		name   string
		pacer  string
		agg    string
		mutate func(*fl.RunConfig)
	}{
		{"fedasync-fedbuff-adaptive", "fedbuff", "fedasync:poly:0.5", func(cfg *fl.RunConfig) {
			cfg.BufferK = 3
			cfg.AdaptiveLR = true
		}},
		{"asyncsgd", "", "asyncsgd:exp:0.3", nil},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			m, err := fl.Compose("fedasync", "", v.pacer, v.agg, v.name)
			if err != nil {
				t.Fatal(err)
			}
			ref := runHierarchyMethodAt(t, m, v.mutate, 1)
			if ref.Cloud.EdgeFolds == 0 {
				t.Fatal("reference run recorded no cloud folds")
			}
			for _, workers := range []int{2, 8} {
				got := runHierarchyMethodAt(t, m, v.mutate, workers)
				if sig(got.Cloud) != sig(ref.Cloud) {
					t.Errorf("workers=%d: cloud record diverged from serial drive", workers)
				}
				for e := range ref.Edges {
					if sig(got.Edges[e]) != sig(ref.Edges[e]) {
						t.Errorf("workers=%d: edge %d record diverged from serial drive", workers, e)
					}
				}
				if weightsBits(got.Final) != weightsBits(ref.Final) {
					t.Errorf("workers=%d: final merged model bits diverged from serial drive", workers)
				}
			}
		})
	}
}
