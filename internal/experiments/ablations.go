package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/report"
)

// Figure6 reproduces the weighted-vs-uniform aggregation comparison: FedAT
// with the Eq. 5 heuristic against a uniform-weights ablation on the three
// 2-class datasets.
func Figure6(p Preset) (*Report, error) {
	rep := &Report{ID: "fig6", Title: "Weighted vs uniform cross-tier aggregation (paper Figure 6)"}
	// Both aggregation variants across all three datasets, each cell
	// defined once and collected back via cellRun.
	weighted := make([]cell, len(figure2Specs))
	uniform := make([]cell, len(figure2Specs))
	for i, spec := range figure2Specs {
		weighted[i] = cell{p: p, d: spec, method: "fedat"}
		uniform[i] = cell{p: p, d: spec, method: "fedat", variant: "agg=uniform",
			mutate: func(cfg *fl.RunConfig) { cfg.UniformAgg = true }}
	}
	if err := scheduleCells(append(append([]cell{}, weighted...), uniform...)); err != nil {
		return nil, err
	}
	tb := report.NewTable("Best accuracy with and without the weighted aggregation heuristic",
		"dataset", "Weighted (Eq. 5)", "Uniform", "delta")
	for i, spec := range figure2Specs {
		w, err := cellRun(weighted[i])
		if err != nil {
			return nil, err
		}
		u, err := cellRun(uniform[i])
		if err != nil {
			return nil, err
		}
		rep.Keep(spec.label()+"/weighted", w)
		rep.Keep(spec.label()+"/uniform", u)
		tb.AddRow(report.Str(spec.label()), accCell(w.BestAcc()), accCell(u.BestAcc()),
			pctCell(w.BestAcc()-u.BestAcc()))
	}
	rep.AddTable(tb)
	rep.AddNote("Paper shape: weighting improves best accuracy by 1.39–4.05% across the three datasets.")
	return rep, nil
}

// figure9Participation is the client-participation sweep.
var figure9Participation = []int{2, 5, 10, 15}

// figure9Methods are the synchronous-update methods the sweep compares.
var figure9Methods = []string{"fedat", "tifl", "fedavg", "fedprox"}

// Figure9 reproduces the participation-level sensitivity study on CIFAR-10
// (2-class) and Sentiment140.
func Figure9(p Preset) (*Report, error) {
	rep := &Report{ID: "fig9", Title: "Impact of client participation level (paper Figure 9)"}
	specs := []dsSpec{
		{name: "cifar10", classesPerClient: 2},
		{name: "sent140", classesPerClient: 2},
	}
	// cellFor is the single definition of a participation cell; the batch
	// and the collection below both go through it.
	cellFor := func(spec dsSpec, k int, m string) cell {
		return cell{p: p, d: spec, method: m,
			variant: fmt.Sprintf("participation=%d", k),
			mutate:  func(cfg *fl.RunConfig) { cfg.ClientsPerRound = k }}
	}
	var cells []cell
	for _, spec := range specs {
		for _, k := range figure9Participation {
			for _, m := range figure9Methods {
				cells = append(cells, cellFor(spec, k, m))
			}
		}
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}
	for _, spec := range specs {
		header := []string{"method"}
		for _, k := range figure9Participation {
			header = append(header, fmt.Sprintf("%d clients", k))
		}
		tb := report.NewTable(spec.label()+": best accuracy vs clients per round", header...)
		rows := map[string][]report.Cell{}
		for _, m := range figure9Methods {
			rows[m] = []report.Cell{report.Str(methodLabel(m))}
		}
		for _, k := range figure9Participation {
			for _, m := range figure9Methods {
				run, err := cellRun(cellFor(spec, k, m))
				if err != nil {
					return nil, err
				}
				rep.Keep(fmt.Sprintf("%s/%s/k=%d", spec.label(), m, k), run)
				rows[m] = append(rows[m], accCell(run.BestAcc()))
			}
		}
		for _, m := range figure9Methods {
			tb.AddRow(rows[m]...)
		}
		rep.AddTable(tb)
	}
	rep.AddNote("Paper shape: fewer participants hurts every method, but FedAT degrades the least — " +
		"at 2/100 clients it stays ~14-17% above the synchronous baselines on CIFAR-10, because the " +
		"asynchronous cross-tier stream keeps more of the population contributing.")
	return rep, nil
}

// figure10Configs are the tier-size distributions (fractions of the
// population, fastest tier first).
var figure10Configs = []struct {
	label string
	frac  [5]float64
}{
	{"Uniform", [5]float64{0.2, 0.2, 0.2, 0.2, 0.2}},
	{"Slow", [5]float64{0.1, 0.1, 0.2, 0.2, 0.4}},
	{"Medium", [5]float64{0.1, 0.2, 0.4, 0.2, 0.1}},
	{"Fast", [5]float64{0.4, 0.2, 0.2, 0.1, 0.1}},
}

// Figure10 reproduces the robustness study over client distributions across
// tiers (the paper's 100/100/100/100/100 … 200/100/100/50/50 splits of 500
// clients, scaled to the preset).
func Figure10(p Preset) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "Impact of client distribution across tiers (paper Figure 10)"}
	spec := dsSpec{name: "femnist", large: true}
	fed, err := buildFed(p, spec)
	if err != nil {
		return nil, err
	}
	n := len(fed.Clients)

	tb := report.NewTable("FedAT on femnist across tier-size distributions",
		"distribution", "part sizes", "best acc", "final time")
	tl := map[string]*metrics.Run{}
	var order []string
	// The four distributions are independent simulations on disjoint Envs;
	// run them concurrently and render from the index-ordered results.
	allSizes := make([][]int, len(figure10Configs))
	runs := make([]*metrics.Run, len(figure10Configs))
	errs := make([]error, len(figure10Configs))
	parallel.Dynamic(len(figure10Configs), schedulerWorkers(len(figure10Configs)), func(i int) {
		allSizes[i] = fracSizes(n, figure10Configs[i].frac)
		runs[i], errs[i] = simulateDirect(func() (*metrics.Run, error) {
			env, err := buildEnvParts(p, spec, allSizes[i], nil)
			if err != nil {
				return nil, err
			}
			return fl.Run("fedat", env)
		})
		if errs[i] == nil {
			runs[i].Method = figure10Configs[i].label
		}
	})
	for i, cfgEntry := range figure10Configs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		run := runs[i]
		rep.Keep(cfgEntry.label, run)
		tl[cfgEntry.label] = run
		order = append(order, cfgEntry.label)
		finalTime := 0.0
		if len(run.Points) > 0 {
			finalTime = run.Points[len(run.Points)-1].Time
		}
		tb.AddRow(report.Str(cfgEntry.label), report.Str(fmt.Sprint(allSizes[i])),
			accCell(run.BestAcc()), timeCell(finalTime))
	}
	rep.AddTable(tb)
	rep.AddTable(timelineTable("Smoothed accuracy over time", tl, order, p.SmoothWindow, 6))
	timelineSeries(rep, "", tl, order, p.SmoothWindow)
	rep.AddNote("Paper shape: all four distributions converge to close accuracy; Slow/Medium " +
		"converge slightly faster than Fast (fast-heavy tiers hold less total data per round of work).")
	return rep, nil
}

// fracSizes converts fractions to integer part sizes summing to n.
func fracSizes(n int, frac [5]float64) []int {
	sizes := make([]int, 5)
	used := 0
	for i := 0; i < 4; i++ {
		sizes[i] = int(frac[i] * float64(n))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		used += sizes[i]
	}
	sizes[4] = n - used
	if sizes[4] < 1 {
		sizes[4] = 1
		// steal from the largest bucket to keep the sum right
		largest := 0
		for i := 1; i < 4; i++ {
			if sizes[i] > sizes[largest] {
				largest = i
			}
		}
		sizes[largest] -= used + 1 - n
	}
	return sizes
}
