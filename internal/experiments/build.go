package experiments

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Report is the output of one experiment: the typed artifact model of
// internal/report (tables, series, scalars, notes) plus the kept raw run
// records. Experiments build artifacts; the report package's renderers
// turn them into text, JSON or CSV.
type Report = report.Report

// dsSpec names a dataset configuration used by an experiment.
type dsSpec struct {
	name             string // "cifar10", "fashion", "sent140", "femnist", "reddit"
	classesPerClient int    // image datasets only; 0 = IID
	large            bool   // use the large-scale client count
}

func (d dsSpec) label() string {
	if d.classesPerClient > 0 {
		return fmt.Sprintf("%s(#%d)", d.name, d.classesPerClient)
	}
	return d.name + "(iid)"
}

// buildFed constructs the federated dataset for a spec.
func buildFed(p Preset, d dsSpec) (*dataset.Federated, error) {
	clients := p.Clients
	if d.large {
		clients = p.LargeClients
	}
	seed := p.Seed + uint64(d.classesPerClient)
	switch d.name {
	case "cifar10":
		return dataset.CIFAR10Like(clients, d.classesPerClient, p.DataScale, seed)
	case "fashion":
		return dataset.FashionLike(clients, d.classesPerClient, p.DataScale, seed)
	case "sent140":
		return dataset.Sent140Like(clients, d.classesPerClient, p.DataScale, seed)
	case "femnist":
		return dataset.FEMNISTLike(clients, p.DataScale, seed)
	case "reddit":
		return dataset.RedditLike(clients, p.DataScale, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", d.name)
	}
}

// modelFactory picks the paper's architecture for a dataset (§6 "Models").
func modelFactory(p Preset, fed *dataset.Federated) fl.ModelFactory {
	switch {
	case fed.Vocab > 0: // Reddit: embedding + LSTM classifier
		emb, hidden := 8, 16
		if p.UseCNN { // reuse the fidelity knob for sequence width
			emb, hidden = 16, 32
		}
		cfg := nn.LSTMConfig{
			Vocab: fed.Vocab, Emb: emb, Hidden: hidden,
			SeqLen: fed.SeqLen, Classes: fed.Classes,
			Dropout: 0.1, BatchNorm: true,
		}
		return func(seed uint64) *nn.Network { return nn.NewLSTMClassifier(rng.New(seed), cfg) }
	case fed.Name == "sent140like": // logistic regression (convex)
		return func(seed uint64) *nn.Network { return nn.NewLogistic(rng.New(seed), fed.InDim, fed.Classes) }
	case p.UseCNN:
		cfg := nn.SmallCNN(fed.ImgC, fed.ImgH, fed.ImgW, fed.Classes)
		return func(seed uint64) *nn.Network { return nn.NewCNN(rng.New(seed), cfg) }
	default:
		return func(seed uint64) *nn.Network { return nn.NewMLP(rng.New(seed), fed.InDim, 32, fed.Classes) }
	}
}

// clusterConfig is the standard virtual testbed: five delay parts (§6),
// one unstable client per ten, 1 MB/s client links and a 16 MB/s shared
// server link.
//
// SecPerBatch is calibrated so a nominal local round computes for ~15-20
// virtual seconds — the same order as the paper's testbed, where real
// TensorFlow training dominates and the 0-30s injected delays roughly
// double the slow tiers' round times (≈2-4x spread between the fastest and
// slowest tier). Making compute negligible instead would exaggerate the
// tier-frequency skew far beyond the regime Eq. 5 was designed for.
func clusterConfig(p Preset, numClients int, partSizes []int) simnet.ClusterConfig {
	return simnet.ClusterConfig{
		NumClients:  numClients,
		PartSizes:   partSizes,
		NumUnstable: numClients / 10,
		DropHorizon: 20000,
		SecPerBatch: 1.0,
		UpBW:        1 << 20,
		DownBW:      1 << 20,
		ServerBW:    16 << 20,
		Seed:        p.Seed,
	}
}

// runConfig is the shared hyperparameter block (§6). The budget is VIRTUAL
// TIME, like the paper's timeline figures: every method trains for the same
// simulated duration (sized so the synchronous baselines converge within
// it), with per-method round caps as a safety valve. Comparing at equal
// update counts instead would handicap FedAT and FedAsync, whose updates
// are individually much cheaper than a full synchronous round.
func runConfig(p Preset, d dsSpec) fl.RunConfig {
	rounds := p.Rounds
	if d.large {
		rounds = p.LargeRounds
	}
	return fl.RunConfig{
		Rounds:          rounds,
		ClientsPerRound: 10,
		LocalEpochs:     3,
		BatchSize:       10,
		// Lambda unset: inherits fl.DefaultLambda (the paper's 0.4).
		LearningRate: 0.005,
		NumTiers:     5,
		EvalEvery:    p.EvalEvery,
		// ~35s is the typical synchronous round under the calibrated
		// compute model, so this budget lets FedAvg finish its cap.
		MaxSimTime: float64(rounds) * 35,
		Seed:       p.Seed,
	}
}

// methodRoundCap scales the round cap for methods whose global updates are
// cheaper than a synchronous round. The cap is a function of the method's
// pacing policy, so novel compositions inherit the right budget: tier-paced
// loops produce several times more updates within the shared time budget,
// and the wait-free client loops more still.
func methodRoundCap(m fl.Method, base int) int {
	switch m.Pace {
	case "tier":
		return base * 12
	case "client":
		// Wait-free updates are ~20x cheaper than a synchronous round;
		// x24 covers the methods' plateau (verified against a full-budget
		// probe) at a fraction of the simulation cost.
		return base * 24
	default:
		return base
	}
}

// applyRoundBudget scales the round cap and evaluation cadence to the
// method's pacing granularity — one definition shared by scheduler cells
// and RunComposed, so -compose runs stay comparable to cached experiment
// cells. Evaluation cadence grows with the round cap, but only half as
// fast: cheap-update methods produce updates faster in TIME too, so
// halving keeps the wall-clock eval density of their timelines comparable
// to the synchronous baselines'.
func applyRoundBudget(cfg *fl.RunConfig, m fl.Method) {
	base := cfg.Rounds
	cfg.Rounds = methodRoundCap(m, base)
	mult := cfg.Rounds / base
	cfg.EvalEvery = cfg.EvalEvery * (1 + mult) / 2
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 1
	}
}

// buildEnv assembles a ready environment for (preset, dataset spec) with
// optional RunConfig mutation.
func buildEnv(p Preset, d dsSpec, mutate func(*fl.RunConfig)) (*fl.Env, error) {
	return buildEnvFull(p, d, nil, mutate, nil)
}

// buildEnvParts is buildEnv with an explicit tier-size distribution (the
// Figure 10 configurations).
func buildEnvParts(p Preset, d dsSpec, partSizes []int, mutate func(*fl.RunConfig)) (*fl.Env, error) {
	return buildEnvFull(p, d, partSizes, mutate, nil)
}

// buildEnvFull is the common body: explicit tier sizes, a RunConfig
// mutation, and a ClusterConfig mutation (the dynamics experiments switch
// on drift/churn behavior through the latter).
func buildEnvFull(p Preset, d dsSpec, partSizes []int, mutate func(*fl.RunConfig), cmutate func(*simnet.ClusterConfig)) (*fl.Env, error) {
	fed, err := buildFed(p, d)
	if err != nil {
		return nil, err
	}
	cfg := runConfig(p, d)
	if mutate != nil {
		mutate(&cfg)
	}
	ccfg := clusterConfig(p, len(fed.Clients), partSizes)
	if cmutate != nil {
		cmutate(&ccfg)
	}
	cluster, err := simnet.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	return fl.NewEnv(fed, cluster, modelFactory(p, fed), cfg)
}

// simulateCell executes one scheduler cell on a fresh environment
// (identical dataset, cluster and seed for every cell sharing a preset and
// spec). Every method shares the same time budget; round caps and
// evaluation cadence scale with the method's update granularity so
// evaluation counts stay comparable.
func simulateCell(c cell) (*metrics.Run, error) {
	acquireSlot() // the global -workers budget, shared by every batch
	defer releaseSlot()
	method, err := c.methodSpec()
	if err != nil {
		return nil, err
	}
	env, err := buildEnvFull(c.p, c.d, nil, func(cfg *fl.RunConfig) {
		if c.method == "fedat" {
			// §6: FedAT uses polyline precision 4 throughout the
			// evaluation; baselines transmit raw models. Experiment
			// variants (Figure 5) may override via mutate.
			cfg.Codec = codec.NewPolyline(4)
		}
		if c.mutate != nil {
			c.mutate(cfg)
		}
		applyRoundBudget(cfg, method)
	}, c.cmutate)
	if err != nil {
		return nil, err
	}
	simulations.Add(1)
	return method.Run(env)
}

// RunComposed runs an explicit policy composition on the standard ablation
// testbed (cifar10, 2 classes per client) at preset p — cmd/fedsim's
// -compose mode, where novel method variants are assembled from flags. The
// round cap and evaluation cadence scale with the composition's pacer
// exactly as they do for registry methods, so results are comparable to the
// cached experiment cells. Observers subscribe to the run's event stream.
func RunComposed(p Preset, m fl.Method, obs ...fl.Observer) (*metrics.Run, error) {
	return RunComposedDynamics(p, m, ComposeDynamics{}, obs...)
}

// ComposeDynamics are the optional dynamic-population knobs of fedsim's
// compose mode (-drift / -churn / -retier-every, plus the adversarial and
// privacy knobs). The zero value runs the static testbed, bit-identical to
// RunComposed before dynamics existed. Kept comparable: fedsim detects "any
// knob set" by comparing against the zero value.
type ComposeDynamics struct {
	// Drift is the speed random-walk magnitude per interval (0 = off); the
	// interval, clamp and churn windows are the dynamics experiment's.
	Drift float64
	// Churn is the fraction of clients cycling offline (0 = off).
	Churn float64
	// RetierEvery re-tiers from observed latencies every N global updates
	// (0 = static tiers).
	RetierEvery int
	// AttackKind/AttackFrac/AttackScale switch on an adversarial subpopulation
	// (internal/robust attack kinds); AttackTail aims it at the slowest
	// clients instead of a seed-drawn subset.
	AttackKind  string
	AttackFrac  float64
	AttackScale float64
	AttackTail  bool
	// DPClip/DPNoise enable the per-client DP stage (clip norm, noise
	// multiplier).
	DPClip  float64
	DPNoise float64
	// BufferK sizes the fedbuff pacer's fold buffer (0 = clients per round).
	BufferK int
	// StaleFunc/StaleAlpha configure the staleness weight function shared by
	// the async update rules and the adaptive-LR stage ("" / 0 = engine
	// defaults; an -agg spec's own parameters win over these).
	StaleFunc  string
	StaleAlpha float64
	// AdaptiveLR scales each dispatch's local learning rate by the staleness
	// weight of its tier/client.
	AdaptiveLR bool
}

// behavior assembles the simnet behavior regime these knobs describe; the
// drift interval, clamp and churn windows are the dynamics experiment's.
func (dyn ComposeDynamics) behavior() simnet.BehaviorConfig {
	return simnet.BehaviorConfig{
		DriftMag:      dyn.Drift,
		DriftInterval: dynBehavior.DriftInterval,
		DriftClamp:    dynBehavior.DriftClamp,
		ChurnFrac:     dyn.Churn,
		ChurnOn:       dynBehavior.ChurnOn,
		ChurnOff:      dynBehavior.ChurnOff,
		AttackKind:    dyn.AttackKind,
		AttackFrac:    dyn.AttackFrac,
		AttackScale:   dyn.AttackScale,
		AttackTail:    dyn.AttackTail,
	}
}

// applyRun writes the engine-side knobs into a RunConfig.
func (dyn ComposeDynamics) applyRun(cfg *fl.RunConfig) {
	cfg.RetierEvery = dyn.RetierEvery
	cfg.DPClip = dyn.DPClip
	cfg.DPNoise = dyn.DPNoise
	cfg.BufferK = dyn.BufferK
	cfg.Staleness.Func = dyn.StaleFunc
	cfg.Staleness.Alpha = dyn.StaleAlpha
	cfg.AdaptiveLR = dyn.AdaptiveLR
}

// RunComposedDynamics is RunComposed over an optionally drifting, churning
// (and possibly adversarial) population with runtime re-tiering.
func RunComposedDynamics(p Preset, m fl.Method, dyn ComposeDynamics, obs ...fl.Observer) (*metrics.Run, error) {
	return simulateDirect(func() (*metrics.Run, error) {
		env, err := buildEnvFull(p, dsSpec{name: "cifar10", classesPerClient: 2}, nil,
			func(cfg *fl.RunConfig) {
				dyn.applyRun(cfg)
				applyRoundBudget(cfg, m)
			},
			func(cc *simnet.ClusterConfig) {
				cc.Behavior = dyn.behavior()
			})
		if err != nil {
			return nil, err
		}
		return m.Run(env, obs...)
	})
}

// runMethods executes the named methods serially, bypassing the run cache
// (diagnostic probes use it for honest standalone runs). It still draws
// from the global -workers gate and counts toward SimulationCount, like
// every other simulation in the process.
func runMethods(p Preset, d dsSpec, names []string, mutate func(*fl.RunConfig)) (map[string]*metrics.Run, error) {
	out := make(map[string]*metrics.Run, len(names))
	for _, name := range names {
		run, err := simulateCell(cell{p: p, d: d, method: name, mutate: mutate})
		if err != nil {
			return nil, err
		}
		out[name] = run
	}
	return out, nil
}

// fmtAcc renders an accuracy like the paper's tables.
func fmtAcc(a float64) string { return fmt.Sprintf("%.3f", a) }

// accCell is fmtAcc as a typed cell: exact text plus the raw value.
func accCell(a float64) report.Cell { return report.Num(a, fmtAcc(a)) }

// fmtTime renders seconds.
func fmtTime(t float64) string { return fmt.Sprintf("%.1fs", t) }

// timeCell is fmtTime as a typed cell.
func timeCell(t float64) report.Cell { return report.Num(t, fmtTime(t)) }

// timelineTable renders a smoothed accuracy-vs-time series for several
// runs, sampled at a fixed number of rows — the textual form of the paper's
// timeline figures. Each sampled cell carries the accuracy as its typed
// value; the full-resolution curves ride along as series artifacts (see
// timelineSeries).
func timelineTable(caption string, runs map[string]*metrics.Run, order []string, window, rows int) *report.Table {
	tb := report.NewTable(caption, append([]string{"method"}, timelineHeader(rows)...)...)
	for _, name := range order {
		run, ok := runs[name]
		if !ok {
			continue
		}
		sm := run.Smooth(window)
		cells := []report.Cell{report.Str(run.Method)}
		for i := 0; i < rows; i++ {
			idx := i * (len(sm) - 1) / max(1, rows-1)
			if len(sm) == 0 {
				cells = append(cells, report.Str("-"))
				continue
			}
			p := sm[idx]
			cells = append(cells, report.Num(p.Acc, fmt.Sprintf("%.3f@%.0fs", p.Acc, p.Time)))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// timelineSeries attaches the full-resolution smoothed accuracy curves
// behind a timeline table to the report as data-only series artifacts, so
// machine consumers get the paper figures' actual curves rather than the
// six sampled columns.
func timelineSeries(rep *Report, prefix string, runs map[string]*metrics.Run, order []string, window int) {
	for _, name := range order {
		run, ok := runs[name]
		if !ok {
			continue
		}
		key := name
		if prefix != "" {
			key = prefix + "/" + name
		}
		rep.AddSeries(report.SmoothedAccSeries(key, run, window))
	}
}

func timelineHeader(rows int) []string {
	h := make([]string, rows)
	for i := range h {
		h[i] = fmt.Sprintf("t%d", i)
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
