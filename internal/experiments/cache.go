package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/util"
)

// Runs are deterministic given (preset, dataset spec, method, config
// variant), so experiments that share underlying runs (Figure 2, Figure 4
// and Table 2 all analyze the same training) reuse them through a shared
// cell cache instead of re-simulating.
//
// The scheduler below replaces the old lock-and-run-missing loop with a
// plan/execute model:
//
//  1. Plan: collect every cache-missing cell of the request and CLAIM it
//     under one critical section. A cell already claimed by a concurrent
//     experiment is not re-claimed — the requester just waits on it
//     (singleflight dedup), so concurrent experiments sharing cells never
//     simulate the same cell twice.
//  2. Execute: dispatch the claimed cells over a parallel.Dynamic worker
//     pool in sorted key order. Each cell builds a fresh Env (own dataset,
//     own cluster, own RNG streams) and runs its method, so cells never
//     share mutable state and the result is bit-identical to a serial run.
//  3. Fill: publish each finished run by closing the cell's done channel;
//     waiters read the result without re-entering the critical section.
//
// Reports therefore stay byte-identical to serial execution no matter how
// many workers run or how experiments interleave.

// cell is one schedulable unit of simulation: a single (preset, dataset
// spec, method, variant) run. mutate must be a deterministic function of
// variant ("" for none).
type cell struct {
	p       Preset
	d       dsSpec
	method  string
	variant string
	mutate  func(*fl.RunConfig)
	// cmutate adjusts the simulated cluster (the dynamics experiments
	// switch on drift/churn behavior). Like mutate it must be a
	// deterministic function of variant.
	cmutate func(*simnet.ClusterConfig)
	// spec overrides the registry lookup with an explicit policy
	// composition (the composition-ablation cells). When set, method must
	// be a unique label for the composition — it keys the cache.
	spec *fl.Method
}

func (c cell) key() string { return cacheKey(c.p, c.d, c.method, c.variant) }

// methodSpec resolves the cell's method: an explicit composition if one is
// attached, else the registry entry named by method.
func (c cell) methodSpec() (fl.Method, error) {
	if c.spec != nil {
		return *c.spec, nil
	}
	return fl.Lookup(c.method)
}

// cellState is the singleflight slot for one cell. done is closed exactly
// once, after run/err/simMS are set, by the goroutine that claimed the
// cell. hits counts how many later requests this slot absorbed (served
// from the cached or in-flight result instead of re-simulating); it feeds
// the JSON report's scheduler metadata.
type cellState struct {
	done  chan struct{}
	run   *metrics.Run
	err   error
	simMS float64
	hits  atomic.Int64
}

var runCache = struct {
	sync.Mutex
	m map[string]*cellState
}{m: map[string]*cellState{}}

// simulations counts every simulation executed in-process (not served
// from cache or deduped onto another experiment's in-flight run):
// scheduler cells, Figure 10's direct runs, and diagnostic runMethods
// probes. Tests use deltas of it to assert the exactly-once property.
var simulations atomic.Int64

// SimulationCount reports how many simulations have executed since the
// last ClearCache.
func SimulationCount() int64 { return simulations.Load() }

// cacheHits counts cell REQUESTS served from an existing (cached or
// in-flight) cell instead of triggering a fresh simulation. This is a
// request-level metric, not a cross-experiment dedup count: an experiment
// that prefetches its grid and then collects per spec re-requests its own
// cells, and those re-requests count too. It answers "how much re-request
// traffic did the cache absorb", and is an upper bound on sharing between
// experiments.
var cacheHits atomic.Int64

// CacheHitCount reports how many cell requests the cache absorbed since
// the last ClearCache (see cacheHits for what counts as a hit).
func CacheHitCount() int64 { return cacheHits.Load() }

// SchedulerMeta snapshots the scheduler's account of the process so far:
// total simulations, cache hits, and the per-cell record (key, simulation
// wall-clock, hit count) in key order. Cells still in flight are skipped —
// their timing is not yet known. Figure 10's direct simulations count in
// Simulations but have no cell entry (they bypass the cache by design).
func SchedulerMeta() *report.SchedulerMeta {
	meta := &report.SchedulerMeta{
		Simulations: simulations.Load(),
		CacheHits:   cacheHits.Load(),
		Cells:       []report.CellMeta{},
	}
	runCache.Lock()
	defer runCache.Unlock()
	for _, k := range util.SortedKeys(runCache.m) {
		st := runCache.m[k]
		select {
		case <-st.done:
			meta.Cells = append(meta.Cells, report.CellMeta{
				Key: k, SimMS: st.simMS, Hits: st.hits.Load(),
			})
		default: // still simulating; no timing to report yet
		}
	}
	return meta
}

// workerOverride is the scheduler's worker cap; 0 means GOMAXPROCS.
var workerOverride atomic.Int32

// SetWorkers caps how many simulations run concurrently process-wide
// (cmd/fedsim's -workers flag). n <= 0 restores the default, GOMAXPROCS;
// values beyond int32 range saturate rather than wrap.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	workerOverride.Store(int32(n))
	gate.cond.Broadcast() // the cap may have risen; wake waiting acquirers
}

// schedulerWorkers returns the dispatch width for a batch of n cells. The
// global gate below is what actually bounds concurrency across batches.
func schedulerWorkers(n int) int {
	w := slotCap()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gate bounds how many simulations execute at once PROCESS-WIDE. Batches
// from concurrent experiments (and Figure 10's direct runs) all draw from
// this one budget, so -workers is a true global cap rather than a
// per-batch one: '-exp all -workers 2' never runs more than two
// simulations at a time no matter how many experiments are in flight.
var gate = struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
}{}

func init() { gate.cond = sync.NewCond(&gate.mu) }

func slotCap() int {
	w := int(workerOverride.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

func acquireSlot() {
	gate.mu.Lock()
	for gate.active >= slotCap() {
		gate.cond.Wait()
	}
	gate.active++
	gate.mu.Unlock()
}

func releaseSlot() {
	gate.mu.Lock()
	gate.active--
	gate.mu.Unlock()
	gate.cond.Broadcast()
}

// simulateDirect runs one uncached simulation (Figure 10's per-
// distribution FedAT runs) under the same global gate and counter as
// scheduler cells, so -workers and the fedsim summary line account for
// it. run should do ALL its work inside — including building the Env,
// the memory-heavy phase the gate exists to bound.
func simulateDirect(run func() (*metrics.Run, error)) (*metrics.Run, error) {
	acquireSlot()
	defer releaseSlot()
	simulations.Add(1)
	return run()
}

// scheduleCells runs the plan/execute/fill sequence for a batch of cells
// and blocks until every one (claimed here or by a concurrent experiment)
// has a result. The first error observed is returned; failed cells are
// evicted so a later request can retry them.
func scheduleCells(cells []cell) error {
	// Plan: claim missing cells under one critical section. Deduplicate
	// within the batch too — experiments may request overlapping cells.
	// Requests absorbed by an existing slot (cached or in flight) count as
	// cache hits for the scheduler metadata.
	type claimedCell struct {
		c  cell
		st *cellState
	}
	waiters := make([]*cellState, 0, len(cells))
	owned := map[string]claimedCell{}
	runCache.Lock()
	for _, c := range cells {
		k := c.key()
		if st, ok := runCache.m[k]; ok {
			st.hits.Add(1)
			cacheHits.Add(1)
			waiters = append(waiters, st)
			continue
		}
		if _, ok := owned[k]; ok {
			continue // duplicate within this batch; first claim covers it
		}
		st := &cellState{done: make(chan struct{})}
		runCache.m[k] = st
		owned[k] = claimedCell{c: c, st: st}
		waiters = append(waiters, st)
	}
	runCache.Unlock()

	// Execute claimed cells in sorted key order so the dispatch order (and
	// with one worker, the execution order) is independent of request
	// order. Dynamic dispatch, not static chunks: cell costs vary wildly
	// (a large-scale reddit cell is orders slower than a sent140 one), so
	// chunking would let one worker serialize the expensive cells while
	// the others idle.
	keys := util.SortedKeys(owned)
	parallel.Dynamic(len(keys), schedulerWorkers(len(keys)), func(i int) {
		oc := owned[keys[i]]
		st := oc.st
		start := time.Now()
		st.run, st.err = simulateCell(oc.c)
		st.simMS = float64(time.Since(start)) / float64(time.Millisecond)
		close(st.done)
	})

	// Fill/wait: collect every requested cell, evicting this batch's own
	// failures so they can be retried. Failed cells owned by concurrent
	// batches are their owners' to evict — every owner observes its own
	// cells' errors in this loop.
	var firstErr error
	for _, st := range waiters {
		<-st.done
		if st.err != nil && firstErr == nil {
			firstErr = st.err
		}
	}
	if firstErr != nil {
		runCache.Lock()
		for k, oc := range owned {
			if oc.st.err != nil && runCache.m[k] == oc.st {
				delete(runCache.m, k)
			}
		}
		runCache.Unlock()
	}
	return firstErr
}

// cachedRunMethods schedules the named methods' cells (sharing in-flight
// and cached runs with every other experiment) and returns the run records
// keyed by method. variant must uniquely describe the mutation applied to
// the RunConfig ("" for none); mutations must be deterministic functions
// of the variant string.
func cachedRunMethods(p Preset, d dsSpec, names []string, variant string, mutate func(*fl.RunConfig)) (map[string]*metrics.Run, error) {
	cells := make([]cell, len(names))
	for i, name := range names {
		cells[i] = cell{p: p, d: d, method: name, variant: variant, mutate: mutate}
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}
	out := make(map[string]*metrics.Run, len(names))
	for i, name := range names {
		run, err := cellRun(cells[i])
		if err != nil {
			return nil, err
		}
		out[name] = run
	}
	return out, nil
}

// cellRun fetches the completed run for a cell previously passed to
// scheduleCells. Experiments that sweep variants keep each cell's
// (variant, mutate) definition in exactly one place by building the cell
// once, scheduling the batch, and collecting through this accessor.
func cellRun(c cell) (*metrics.Run, error) {
	runCache.Lock()
	st, ok := runCache.m[c.key()]
	runCache.Unlock()
	if !ok {
		return nil, fmt.Errorf("experiments: cell %s was never scheduled (or failed and was evicted)", c.key())
	}
	<-st.done
	if st.err != nil {
		return nil, st.err
	}
	return st.run, nil
}

// prefetch schedules every (spec × method) cell of an experiment in one
// batch, so work that the experiment's rendering loop would request
// serially (one cachedRunMethods call per spec) instead runs concurrently
// across the whole grid. The follow-up cachedRunMethods calls then hit the
// cache.
func prefetch(p Preset, specs []dsSpec, names []string, variant string, mutate func(*fl.RunConfig)) error {
	cells := make([]cell, 0, len(specs)*len(names))
	for _, d := range specs {
		for _, name := range names {
			cells = append(cells, cell{p: p, d: d, method: name, variant: variant, mutate: mutate})
		}
	}
	return scheduleCells(cells)
}

func cacheKey(p Preset, d dsSpec, method, variant string) string {
	return strings.Join([]string{p.Name, d.label(), fmt.Sprint(d.large), method, variant}, "|")
}

// ClearCache drops memoized runs and resets the simulation and cache-hit
// counters (tests and benchmarks use it to force fresh runs). In-flight
// cells keep running and publish to their waiters, but later requests will
// re-simulate.
func ClearCache() {
	runCache.Lock()
	runCache.m = map[string]*cellState{}
	runCache.Unlock()
	simulations.Store(0)
	cacheHits.Store(0)
}
