package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fl"
	"repro/internal/metrics"
)

// Runs are deterministic given (preset, dataset spec, method, config
// variant), so experiments that share underlying runs (Figure 2, Figure 4
// and Table 2 all analyze the same training) reuse them through this cache
// instead of re-simulating.
var runCache = struct {
	sync.Mutex
	m map[string]*metrics.Run
}{m: map[string]*metrics.Run{}}

// cachedRunMethods is runMethods with memoization. variant must uniquely
// describe the mutation applied to the RunConfig ("" for none); mutations
// must be deterministic functions of the variant string.
func cachedRunMethods(p Preset, d dsSpec, names []string, variant string, mutate func(*fl.RunConfig)) (map[string]*metrics.Run, error) {
	out := make(map[string]*metrics.Run, len(names))
	var missing []string
	runCache.Lock()
	for _, name := range names {
		if run, ok := runCache.m[cacheKey(p, d, name, variant)]; ok {
			out[name] = run
		} else {
			missing = append(missing, name)
		}
	}
	runCache.Unlock()
	if len(missing) == 0 {
		return out, nil
	}
	sort.Strings(missing)
	fresh, err := runMethods(p, d, missing, mutate)
	if err != nil {
		return nil, err
	}
	runCache.Lock()
	for name, run := range fresh {
		runCache.m[cacheKey(p, d, name, variant)] = run
		out[name] = run
	}
	runCache.Unlock()
	return out, nil
}

func cacheKey(p Preset, d dsSpec, method, variant string) string {
	return strings.Join([]string{p.Name, d.label(), fmt.Sprint(d.large), method, variant}, "|")
}

// ClearCache drops memoized runs (tests use it to force fresh runs).
func ClearCache() {
	runCache.Lock()
	runCache.m = map[string]*metrics.Run{}
	runCache.Unlock()
}
