package experiments

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/report"
)

// Figure4 reproduces "test accuracy as a function of cumulative uploaded
// bytes" for the three 2-class datasets: per accuracy milestone, the uplink
// bytes each method had consumed.
func Figure4(p Preset) (*Report, error) {
	rep := &Report{ID: "fig4", Title: "Accuracy vs cumulative uploaded bytes (paper Figure 4)"}
	if err := prefetch(p, figure2Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}
	for _, spec := range figure2Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		best := runs["fedat"].BestAcc()
		milestones := []float64{0.5 * best, 0.75 * best, 0.9 * best}
		tb := report.NewTable(spec.label(), "method",
			fmt.Sprintf("up-bytes@%.3f", milestones[0]),
			fmt.Sprintf("up-bytes@%.3f", milestones[1]),
			fmt.Sprintf("up-bytes@%.3f", milestones[2]))
		for _, m := range table1Methods {
			run := runs[m]
			rep.Keep(spec.label()+"/"+m, run)
			cells := []report.Cell{report.Str(methodLabel(m))}
			for _, target := range milestones {
				if b, ok := run.UploadBytesToAccuracy(target); ok {
					cells = append(cells, bytesCell(b))
				} else {
					cells = append(cells, report.Str("not reached"))
				}
			}
			tb.AddRow(cells...)
		}
		rep.AddTable(tb)
	}
	rep.AddNote("Paper shape: FedAT needs the fewest uploaded bytes at every accuracy level " +
		"(up to 1.28x less than the best synchronous baseline); FedAsync consumes orders of magnitude more.")
	return rep, nil
}

// Table2 reproduces "amounts of data transferred between clients and server
// to achieve the target accuracy" (up+down, in MB).
func Table2(p Preset) (*Report, error) {
	rep := &Report{ID: "table2", Title: "Data transferred to reach target accuracy (paper Table 2)"}
	if err := prefetch(p, figure2Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}
	tb := report.NewTable("Bytes (up+down) to reach 90% of FedAT's best accuracy",
		"method", "cifar10(#2)", "fashion(#2)", "sent140(#2)")
	rows := map[string][]report.Cell{}
	order := []string{"fedavg", "tifl", "fedprox", "fedasync", "fedat"}
	for _, m := range order {
		rows[m] = []report.Cell{report.Str(methodLabel(m))}
	}
	for _, spec := range figure2Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		target := 0.9 * runs["fedat"].BestAcc()
		for _, m := range order {
			run := runs[m]
			rep.Keep(spec.label()+"/"+m, run)
			if b, ok := run.BytesToAccuracy(target); ok {
				rows[m] = append(rows[m], bytesCell(b))
			} else {
				rows[m] = append(rows[m], report.Str("-")) // the paper's dash: never reached
			}
		}
	}
	for _, m := range order {
		tb.AddRow(rows[m]...)
	}
	rep.AddTable(tb)
	rep.AddNote("Paper shape: FedAT cheapest on every dataset; FedAsync costs ~9.5x FedAT on " +
		"Fashion-MNIST and misses the CIFAR-10 target entirely.")
	return rep, nil
}

// figure5Codecs is the compression sweep: polyline precisions 3–6 plus the
// uncompressed baseline.
var figure5Codecs = []struct {
	label string
	c     codec.Codec
}{
	{"Precision 3", codec.NewPolyline(3)},
	{"Precision 4", codec.NewPolyline(4)},
	{"Precision 5", codec.NewPolyline(5)},
	{"Precision 6", codec.NewPolyline(6)},
	{"No Compression", codec.Raw{}},
}

// Figure5 reproduces the accuracy/communication tradeoff of FedAT's
// compressor precision on CIFAR-10 (2-class non-IID).
func Figure5(p Preset) (*Report, error) {
	rep := &Report{ID: "fig5", Title: "Compression precision tradeoff (paper Figure 5)"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}

	// One batch across all codec variants, so the sweep runs concurrently.
	// Each cell is defined once here and collected back via cellRun.
	cells := make([]cell, len(figure5Codecs))
	for i, entry := range figure5Codecs {
		entry := entry
		cells[i] = cell{p: p, d: spec, method: "fedat",
			variant: "codec=" + entry.label,
			mutate:  func(cfg *fl.RunConfig) { cfg.Codec = entry.c }}
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}

	var rawPerUpdate float64
	runsByLabel := map[string]*metrics.Run{}
	for i, entry := range figure5Codecs {
		run, err := cellRun(cells[i])
		if err != nil {
			return nil, err
		}
		rep.Keep(entry.label, run)
		runsByLabel[entry.label] = run
		if entry.label == "No Compression" {
			rawPerUpdate = float64(run.UpBytes) / float64(maxI(run.GlobalRounds, 1))
		}
	}
	tb := report.NewTable("FedAT on cifar10(#2) across compressor precisions",
		"codec", "best acc", "total up-bytes", "compression ratio vs raw")
	for _, entry := range figure5Codecs {
		run := runsByLabel[entry.label]
		perUpdate := float64(run.UpBytes) / float64(maxI(run.GlobalRounds, 1))
		ratio := rawPerUpdate / perUpdate
		tb.AddRow(report.Str(entry.label), accCell(run.BestAcc()), bytesCell(run.UpBytes),
			report.Numf("%.2fx", ratio))
		rep.AddScalar("compression_ratio/"+entry.label, ratio, "x")
	}
	rep.AddTable(tb)
	rep.AddNote("Paper shape: precision 3 loses accuracy (too lossy); precision 4 matches " +
		"no-compression accuracy while cutting bytes (the paper reports up to 3.5x and uses precision 4 everywhere).")
	return rep, nil
}

// bytesCell renders a byte count the way Table 2 does, keeping the raw
// count as the typed value.
func bytesCell(b int64) report.Cell { return report.Num(float64(b), metrics.FormatBytes(b)) }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
