package experiments

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/report"
)

// composeVariants are the novel policy compositions the ablation compares
// against their parent methods — each is pure registry data, no new loop
// code, which is the point of the pluggable-policy API.
var composeVariants = []struct {
	label  string    // cell label (cache key) and table row
	parent string    // the registry method it derives from
	spec   fl.Method // the composition itself
	poly   bool      // transmit through polyline(4), like FedAT proper
}{
	{
		// FedAT's tiered async loop, but each tier over-selects 130% and
		// folds only the earliest arrivals — §2.1's straggler mitigation
		// grafted inside Algorithm 2.
		label:  "compose-fedat-oversel",
		parent: "fedat",
		spec:   fl.Method{Name: "FedAT+oversel", Select: "oversel", Pace: "tier", Update: "eq5", Local: fl.LocalPolicy{Prox: true}},
		poly:   true,
	},
	{
		// TiFL's credit-based adaptive tier selection feeding FedAT's
		// Eq. 5 per-tier fold instead of the flat average — the selected
		// tier's model updates, the global model is the cross-tier blend.
		label:  "compose-tifl-eq5",
		parent: "tifl",
		spec:   fl.Method{Name: "TiFL+eq5fold", Select: "tifl", Pace: "sync", Update: "eq5"},
	},
}

// AblationCompose exercises the policy-composition API end to end: two
// novel method variants, assembled purely from existing selector/pacer/
// update-rule registry entries, run against the methods they derive from on
// the standard straggler-heavy testbed.
func AblationCompose(p Preset) (*Report, error) {
	rep := &Report{ID: "ablation-compose", Title: "Novel policy compositions (pluggable method API)"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}

	cells := []cell{
		{p: p, d: spec, method: "fedat"},
		{p: p, d: spec, method: "tifl"},
	}
	for _, v := range composeVariants {
		v := v
		c := cell{p: p, d: spec, method: v.label, spec: &v.spec}
		if v.poly {
			c.mutate = func(cfg *fl.RunConfig) { cfg.Codec = codec.NewPolyline(4) }
		}
		cells = append(cells, c)
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}

	tb := report.NewTable("cifar10(#2): parent methods vs policy compositions",
		"method", "composition", "best acc", "acc variance", "sec/update", "up-MB")
	for _, c := range cells {
		run, err := cellRun(c)
		if err != nil {
			return nil, err
		}
		rep.Keep(c.method, run)
		m, err := c.methodSpec()
		if err != nil {
			return nil, err
		}
		perUpdate := 0.0
		if run.GlobalRounds > 0 && len(run.Points) > 0 {
			perUpdate = run.Points[len(run.Points)-1].Time / float64(run.GlobalRounds)
		}
		tb.AddRow(report.Str(run.Method), report.Str(m.String()), accCell(run.BestAcc()),
			report.Numf("%.2e", run.MeanVariance()), report.Numf("%.1fs", perUpdate),
			report.Num(float64(run.UpBytes)/1e6, fmt.Sprintf("%.1f", float64(run.UpBytes)/1e6)))
	}
	rep.AddTable(tb)
	rep.AddNote("Both variants are assembled from registry policies only (no new loop code). " +
		"Expected shape: over-selection inside FedAT's tiers trims each tier's straggler tail for a " +
		"slightly faster update stream at extra upload cost; TiFL's adaptive selection with the Eq. 5 " +
		"fold keeps per-tier models and weights slow tiers up, trading some of TiFL's fast-round " +
		"throughput for FedAT-style balance.")
	return rep, nil
}
