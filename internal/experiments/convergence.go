package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// figure2Specs are the three datasets whose convergence timelines Figure 2
// plots (2-class non-IID).
var figure2Specs = []dsSpec{
	{name: "cifar10", classesPerClient: 2},
	{name: "fashion", classesPerClient: 2},
	{name: "sent140", classesPerClient: 2},
}

// Figure2 reproduces the accuracy-over-time curves and the
// time-to-target-accuracy bar charts. The paper uses absolute targets
// (0.47 / 0.76 / 0.735); since absolute accuracies depend on the substrate,
// the target here is 90% of FedAT's best accuracy on each dataset, which
// probes the same region of the curve.
func Figure2(p Preset) (*Report, error) {
	rep := &Report{ID: "fig2", Title: "Convergence timelines and time-to-target accuracy (paper Figure 2)"}
	if err := prefetch(p, figure2Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}
	for _, spec := range figure2Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		for m, run := range runs {
			rep.Keep(spec.label()+"/"+m, run)
		}
		rep.AddSection(
			fmt.Sprintf("%s: smoothed test accuracy over virtual time", spec.label()),
			timelineTable(runs, table1Methods, p.SmoothWindow, 6))

		target := 0.9 * runs["fedat"].BestAcc()
		bar := metrics.NewTable("method", fmt.Sprintf("time to %.3f acc", target), "vs FedAT")
		fedatTime, _ := runs["fedat"].TimeToAccuracy(target)
		for _, m := range table1Methods {
			tt, ok := runs[m].TimeToAccuracy(target)
			if !ok {
				bar.AddRow(methodLabel(m), "not reached", "-")
				continue
			}
			rel := "-"
			if fedatTime > 0 {
				rel = fmt.Sprintf("%.2fx", tt/fedatTime)
			}
			bar.AddRow(methodLabel(m), fmtTime(tt), rel)
		}
		rep.AddSection(fmt.Sprintf("%s: time to target accuracy", spec.label()), bar)
	}
	rep.AddText("Paper shape: FedAT reaches the target several times faster than TiFL/FedAvg/FedProx " +
		"(5.3–5.8x on CIFAR-10); FedAsync fails to reach it on the image datasets.")
	return rep, nil
}

// figure3Specs sweep the non-IID level on CIFAR-10.
var figure3Specs = []dsSpec{
	{name: "cifar10", classesPerClient: 4},
	{name: "cifar10", classesPerClient: 6},
	{name: "cifar10", classesPerClient: 8},
	{name: "cifar10", classesPerClient: 0},
}

// Figure3 reproduces the convergence comparison across non-IID levels.
func Figure3(p Preset) (*Report, error) {
	rep := &Report{ID: "fig3", Title: "Convergence vs non-IID level on CIFAR-10 (paper Figure 3)"}
	if err := prefetch(p, figure3Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}
	finals := metrics.NewTable(append([]string{"method"}, specLabels(figure3Specs)...)...)
	rows := map[string][]string{}
	for _, m := range table1Methods {
		rows[m] = []string{methodLabel(m)}
	}
	for _, spec := range figure3Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		for m, run := range runs {
			rep.Keep(spec.label()+"/"+m, run)
			rows[m] = append(rows[m], fmtAcc(run.BestAcc()))
		}
		rep.AddSection(
			fmt.Sprintf("%s: smoothed accuracy over time", spec.label()),
			timelineTable(runs, table1Methods, p.SmoothWindow, 6))
	}
	for _, m := range table1Methods {
		finals.AddRow(rows[m]...)
	}
	rep.AddSection("Best accuracy per non-IID level", finals)
	rep.AddText("Paper shape: every method improves as data becomes more IID; FedAT stays on top at " +
		"every level, with the widest margin at the strongest (2-class) skew.")
	return rep, nil
}
