package experiments

import (
	"fmt"

	"repro/internal/report"
)

// figure2Specs are the three datasets whose convergence timelines Figure 2
// plots (2-class non-IID).
var figure2Specs = []dsSpec{
	{name: "cifar10", classesPerClient: 2},
	{name: "fashion", classesPerClient: 2},
	{name: "sent140", classesPerClient: 2},
}

// Figure2 reproduces the accuracy-over-time curves and the
// time-to-target-accuracy bar charts. The paper uses absolute targets
// (0.47 / 0.76 / 0.735); since absolute accuracies depend on the substrate,
// the target here is 90% of FedAT's best accuracy on each dataset, which
// probes the same region of the curve.
func Figure2(p Preset) (*Report, error) {
	rep := &Report{ID: "fig2", Title: "Convergence timelines and time-to-target accuracy (paper Figure 2)"}
	if err := prefetch(p, figure2Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}
	for _, spec := range figure2Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		for m, run := range runs {
			rep.Keep(spec.label()+"/"+m, run)
		}
		rep.AddTable(timelineTable(
			fmt.Sprintf("%s: smoothed test accuracy over virtual time", spec.label()),
			runs, table1Methods, p.SmoothWindow, 6))
		timelineSeries(rep, spec.label(), runs, table1Methods, p.SmoothWindow)

		target := 0.9 * runs["fedat"].BestAcc()
		rep.AddScalar(spec.label()+"/target_acc", target, "fraction")
		bar := report.NewTable(fmt.Sprintf("%s: time to target accuracy", spec.label()),
			"method", fmt.Sprintf("time to %.3f acc", target), "vs FedAT")
		fedatTime, _ := runs["fedat"].TimeToAccuracy(target)
		for _, m := range table1Methods {
			tt, ok := runs[m].TimeToAccuracy(target)
			if !ok {
				bar.AddRow(report.Str(methodLabel(m)), report.Str("not reached"), report.Str("-"))
				continue
			}
			rel := report.Str("-")
			if fedatTime > 0 {
				rel = report.Numf("%.2fx", tt/fedatTime)
			}
			bar.AddRow(report.Str(methodLabel(m)), timeCell(tt), rel)
		}
		rep.AddTable(bar)
	}
	rep.AddNote("Paper shape: FedAT reaches the target several times faster than TiFL/FedAvg/FedProx " +
		"(5.3–5.8x on CIFAR-10); FedAsync fails to reach it on the image datasets.")
	return rep, nil
}

// figure3Specs sweep the non-IID level on CIFAR-10.
var figure3Specs = []dsSpec{
	{name: "cifar10", classesPerClient: 4},
	{name: "cifar10", classesPerClient: 6},
	{name: "cifar10", classesPerClient: 8},
	{name: "cifar10", classesPerClient: 0},
}

// Figure3 reproduces the convergence comparison across non-IID levels.
func Figure3(p Preset) (*Report, error) {
	rep := &Report{ID: "fig3", Title: "Convergence vs non-IID level on CIFAR-10 (paper Figure 3)"}
	if err := prefetch(p, figure3Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}
	finals := report.NewTable("Best accuracy per non-IID level",
		append([]string{"method"}, specLabels(figure3Specs)...)...)
	rows := map[string][]report.Cell{}
	for _, m := range table1Methods {
		rows[m] = []report.Cell{report.Str(methodLabel(m))}
	}
	for _, spec := range figure3Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		for m, run := range runs {
			rep.Keep(spec.label()+"/"+m, run)
			rows[m] = append(rows[m], accCell(run.BestAcc()))
		}
		rep.AddTable(timelineTable(
			fmt.Sprintf("%s: smoothed accuracy over time", spec.label()),
			runs, table1Methods, p.SmoothWindow, 6))
		timelineSeries(rep, spec.label(), runs, table1Methods, p.SmoothWindow)
	}
	for _, m := range table1Methods {
		finals.AddRow(rows[m]...)
	}
	rep.AddTable(finals)
	rep.AddNote("Paper shape: every method improves as data becomes more IID; FedAT stays on top at " +
		"every level, with the widest margin at the strongest (2-class) skew.")
	return rep, nil
}
