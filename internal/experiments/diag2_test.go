package experiments

import (
	"testing"
)

// TestDiagMediumCifar is the medium-scale fidelity probe for the paper's
// headline comparison (Table 1, cifar #2): with ~50 local steps per round
// the non-IID drift is strong enough for FedAT's mechanisms to matter.
// Run with -v; skipped in -short.
func TestDiagMediumCifar(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	if testing.Verbose() == false {
		t.Skip("diagnostic: run with -v")
	}
	runs, err := runMethods(Medium, dsSpec{name: "cifar10", classesPerClient: 2},
		[]string{"fedat", "fedavg", "fedasync"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"fedat", "fedavg", "fedasync"} {
		r := runs[m]
		t.Logf("%-9s rounds=%4d best=%.3f var=%.2e final-time=%.0fs up=%.1fMB",
			m, r.GlobalRounds, r.BestAcc(), r.MeanVariance(),
			r.Points[len(r.Points)-1].Time, float64(r.UpBytes)/1e6)
	}
}
