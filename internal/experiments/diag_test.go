package experiments

import (
	"testing"

	"repro/internal/fl"
)

// TestDiagFedATDynamics is a diagnostic harness (run with -v) that prints
// FedAT's convergence against FedAvg at increasing budgets; it asserts only
// that FedAT keeps improving with budget, which guards against the global
// ensemble stalling.
func TestDiagFedATDynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := Small
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	var prev float64
	for _, rounds := range []int{120, 360, 720} {
		rounds := rounds
		env, err := buildEnv(p, spec, func(cfg *fl.RunConfig) {
			cfg.Rounds = rounds
			cfg.EvalEvery = 10
		})
		if err != nil {
			t.Fatal(err)
		}
		run, err := fl.Run("fedat", env)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("FedAT rounds=%d best=%.3f final=%.3f time=%.0fs",
			rounds, run.BestAcc(), run.FinalAcc(), run.Points[len(run.Points)-1].Time)
		if run.BestAcc()+0.02 < prev {
			t.Fatalf("FedAT got worse with more budget: %.3f after %.3f", run.BestAcc(), prev)
		}
		prev = run.BestAcc()
	}
	env, err := buildEnv(p, spec, func(cfg *fl.RunConfig) {
		cfg.Rounds = 360
		cfg.EvalEvery = 10
	})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := fl.Run("fedavg", env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FedAvg rounds=360 best=%.3f time=%.0fs", avg.BestAcc(), avg.Points[len(avg.Points)-1].Time)
}
