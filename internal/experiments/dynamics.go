package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/simnet"
)

// The dynamics experiment: the paper profiles clients once and keeps the
// tier partition static for the whole run (§4); this extension asks what
// happens when the population refuses to stay profiled. Clients' compute
// speeds random-walk and a fraction of the population churns offline and
// back, so the one-shot profile goes stale — the regime the dynamic-tiering
// follow-up literature targets. Each method runs twice on the same drifting
// cluster: once with static tiers, once re-tiering periodically from
// EWMA-smoothed observed latencies (RunConfig.RetierEvery).

// dynBehavior is the drifting, churning population every dynamics cell
// shares. The drift is strong — ×[0.55, 1.45] per 40 virtual seconds,
// clamped to [1/4, 4] — so half an hour of virtual time thoroughly scrambles
// the profiled speed ordering, and a fifth of the population blinks offline
// for stretches.
var dynBehavior = simnet.BehaviorConfig{
	DriftMag:      0.45,
	DriftInterval: 40,
	DriftClamp:    4,
	ChurnFrac:     0.2,
	ChurnOn:       [2]float64{120, 360},
	ChurnOff:      [2]float64{40, 140},
}

// dynRetierEvery is the re-tiering cadence in global updates. Tier-paced
// methods fold many times per synchronous-round-equivalent, so this keeps
// re-tiering roughly once per few tier rounds without thrashing.
const dynRetierEvery = 8

// Dynamics compares static tiers against periodic runtime re-tiering under
// speed drift and churn for FedAT, TiFL and FedAvg. Re-tiering only touches
// tier-paced loops (FedAT); the synchronous baselines ignore the knob —
// their rows double as a no-op control.
func Dynamics(p Preset) (*Report, error) {
	rep := &Report{ID: "dynamics", Title: "Dynamic clients: static tiers vs runtime re-tiering"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	methods := []string{"fedat", "tifl", "fedavg"}
	modes := []struct {
		name   string
		retier bool
	}{{"static", false}, {"retier", true}}

	cellFor := func(method string, retier bool) cell {
		variant := "dyn-static"
		if retier {
			variant = "dyn-retier"
		}
		return cell{p: p, d: spec, method: method, variant: variant,
			mutate: func(cfg *fl.RunConfig) {
				if retier {
					cfg.RetierEvery = dynRetierEvery
				}
			},
			cmutate: func(cc *simnet.ClusterConfig) { cc.Behavior = dynBehavior },
		}
	}

	var cells []cell
	for _, m := range methods {
		for _, mode := range modes {
			cells = append(cells, cellFor(m, mode.retier))
		}
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}

	tb := report.NewTable("cifar10(#2) under speed drift + churn",
		"method", "tiers", "best acc", "final acc", "sec/update", "re-tiers", "migrations")
	timeline := map[string]*metrics.Run{}
	for _, m := range methods {
		for _, mode := range modes {
			run, err := cellRun(cellFor(m, mode.retier))
			if err != nil {
				return nil, err
			}
			key := m + "/" + mode.name
			rep.Keep(key, run)
			timeline[key] = run
			perUpdate := 0.0
			if run.GlobalRounds > 0 && len(run.Points) > 0 {
				perUpdate = run.Points[len(run.Points)-1].Time / float64(run.GlobalRounds)
			}
			tb.AddRow(report.Str(run.Method), report.Str(mode.name),
				accCell(run.BestAcc()), accCell(run.FinalAcc()),
				report.Numf("%.1fs", perUpdate),
				report.Num(float64(run.Retiers), fmt.Sprint(run.Retiers)),
				report.Num(float64(run.TierMigrations), fmt.Sprint(run.TierMigrations)))
		}
	}
	rep.AddTable(tb)

	// Accuracy-over-virtual-time for the tier-paced pair — the curves the
	// static-vs-retier claim rides on — plus the synchronous control.
	order := []string{"fedat/static", "fedat/retier", "fedavg/static"}
	tl := report.NewTable("smoothed accuracy over virtual time",
		append([]string{"run"}, timelineHeader(6)...)...)
	for _, key := range order {
		run := timeline[key]
		sm := run.Smooth(p.SmoothWindow)
		cells := []report.Cell{report.Str(key)}
		for i := 0; i < 6; i++ {
			if len(sm) == 0 {
				cells = append(cells, report.Str("-"))
				continue
			}
			idx := i * (len(sm) - 1) / 5
			pt := sm[idx]
			cells = append(cells, report.Num(pt.Acc, fmt.Sprintf("%.3f@%.0fs", pt.Acc, pt.Time)))
		}
		tl.AddRow(cells...)
		rep.AddSeries(report.SmoothedAccSeries(key, run, p.SmoothWindow))
	}
	rep.AddTable(tl)

	rep.AddNote("All runs share one drifting, churning population (speed random-walk ×[0.55,1.45] per 40s " +
		"clamped to [1/4,4]; 20% of clients cycle offline). With static tiers FedAT's fast tiers inherit " +
		"drifted-slow members and their round cadence collapses toward the slowest member; periodic " +
		"re-tiering (every " + fmt.Sprint(dynRetierEvery) + " global updates, EWMA-smoothed observed " +
		"latencies, hysteresis margin) re-sorts the population so fast tiers stay fast. The synchronous " +
		"baselines ignore RetierEvery by design — their static/retier rows are identical, the no-op " +
		"control matching the paper where only tiered systems re-profile.")
	return rep, nil
}
