package experiments

import (
	"strings"
	"testing"
)

// TestDynamicsTiny pins the dynamics experiment's headline claims at the
// tiny preset. Runs are deterministic, so the comparisons are fixed for a
// given code version — if a legitimate engine change flips one, the
// experiment's note (and this test) need re-examining together.
func TestDynamicsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Dynamics(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 6 {
		t.Fatalf("dynamics kept %d runs, want 6", len(rep.Runs))
	}
	static, retier := rep.Runs["fedat/static"], rep.Runs["fedat/retier"]

	// The headline: under drift+churn, periodic re-tiering beats static
	// tiers on accuracy over the shared virtual-time budget.
	if retier.BestAcc() <= static.BestAcc() {
		t.Fatalf("re-tiering did not beat static tiers: best %.3f vs %.3f",
			retier.BestAcc(), static.BestAcc())
	}
	if retier.Retiers == 0 || retier.TierMigrations == 0 {
		t.Fatalf("retier run recorded no activity: %d passes, %d migrations",
			retier.Retiers, retier.TierMigrations)
	}
	if static.Retiers != 0 || static.TierMigrations != 0 {
		t.Fatalf("static run recorded retier activity: %d/%d", static.Retiers, static.TierMigrations)
	}

	// Synchronous baselines ignore RetierEvery: their two modes must be
	// byte-equal in every headline number (the no-op control).
	for _, m := range []string{"tifl", "fedavg"} {
		a, b := rep.Runs[m+"/static"], rep.Runs[m+"/retier"]
		if a.BestAcc() != b.BestAcc() || a.UpBytes != b.UpBytes || a.GlobalRounds != b.GlobalRounds {
			t.Fatalf("%s: RetierEvery perturbed a synchronous run", m)
		}
		if b.Retiers != 0 {
			t.Fatalf("%s: synchronous run performed %d retier passes", m, b.Retiers)
		}
	}

	s := rep.String()
	for _, want := range []string{"re-tiers", "migrations", "fedat/retier", "smoothed accuracy over virtual time"} {
		if !strings.Contains(s, want) {
			t.Fatalf("dynamics report missing %q:\n%s", want, s)
		}
	}
}
