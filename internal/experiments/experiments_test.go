package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run everything at the Tiny preset: they validate
// structure (every section renders, every run learns something, registry
// coverage) rather than paper-scale numbers.

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(Registry) < len(want) {
		t.Fatalf("registry has %d entries, want >= %d", len(Registry), len(want))
	}
}

func TestRunByIDUnknown(t *testing.T) {
	if _, err := RunByID("nope", Tiny); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("tiny")
	if err != nil || p.Name != "tiny" {
		t.Fatalf("PresetByName(tiny) = %+v, %v", p, err)
	}
	if _, err := PresetByName("bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTable1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Table1(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"FedAT", "FedAvg", "FedProx", "FedAsync", "TiFL", "cifar10(#2)", "sent140"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table1 report missing %q:\n%s", want, s)
		}
	}
	if len(rep.Runs) < 5*len(table1Specs) {
		t.Fatalf("table1 kept %d runs, want %d", len(rep.Runs), 5*len(table1Specs))
	}
	for key, run := range rep.Runs {
		if run.GlobalRounds == 0 {
			t.Fatalf("run %s completed no rounds", key)
		}
		if run.BestAcc() <= 0 {
			t.Fatalf("run %s has zero accuracy", key)
		}
	}
}

func TestFigure2And4AndTable2ShareRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	// These three analyze the same training runs; the cache must make the
	// later ones cheap and identical.
	rep2, err := Figure2(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := Figure4(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	repT2, err := Table2(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	k := "cifar10(#2)/fedat"
	if rep2.Runs[k] != rep4.Runs[k] || rep4.Runs[k] != repT2.Runs[k] {
		t.Fatal("shared runs were re-simulated instead of cached")
	}
	if !strings.Contains(rep2.String(), "time to") {
		t.Fatal("fig2 missing time-to-target section")
	}
	if !strings.Contains(repT2.String(), "MB") && !strings.Contains(repT2.String(), "-") {
		t.Fatal("table2 missing byte cells")
	}
}

func TestFigure3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure3(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "cifar10(iid)") {
		t.Fatal("fig3 missing IID column")
	}
}

func TestFigure5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure5(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"Precision 3", "Precision 4", "No Compression", "ratio"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig5 missing %q", want)
		}
	}
	// Compression must actually reduce bytes vs raw.
	raw := rep.Runs["No Compression"]
	p4 := rep.Runs["Precision 4"]
	if p4.UpBytes >= raw.UpBytes {
		t.Fatalf("precision 4 (%d B) not below raw (%d B)", p4.UpBytes, raw.UpBytes)
	}
	// Lower precision → smaller payloads.
	p3 := rep.Runs["Precision 3"]
	p6 := rep.Runs["Precision 6"]
	if float64(p3.UpBytes)/float64(p3.GlobalRounds) >= float64(p6.UpBytes)/float64(p6.GlobalRounds) {
		t.Fatal("precision 3 payloads not smaller than precision 6")
	}
}

func TestFigure6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure6(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "Uniform") {
		t.Fatal("fig6 missing uniform column")
	}
	if rep.Runs["cifar10(#2)/weighted"] == rep.Runs["cifar10(#2)/uniform"] {
		t.Fatal("weighted and uniform runs are the same object")
	}
}

func TestFigure7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure7(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "ASO-Fed") {
		t.Fatal("fig7 missing ASO-Fed")
	}
	if len(rep.Runs) != 6 {
		t.Fatalf("fig7 kept %d runs, want 6", len(rep.Runs))
	}
}

func TestFigure8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure8(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "loss") && !strings.Contains(s, "Loss") {
		t.Fatal("fig8 missing loss section")
	}
	for _, m := range figure8Methods {
		run := rep.Runs[m]
		if run == nil || len(run.Points) == 0 {
			t.Fatalf("fig8 run %s empty", m)
		}
	}
}

func TestFigure9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure9(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"2 clients", "15 clients"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig9 missing %q", want)
		}
	}
}

func TestFigure10Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := Figure10(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"Uniform", "Slow", "Medium", "Fast"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig10 missing %q", want)
		}
	}
	// All four distributions must actually train.
	for _, cfg := range figure10Configs {
		if rep.Runs[cfg.label].GlobalRounds == 0 {
			t.Fatalf("distribution %s completed no rounds", cfg.label)
		}
	}
}

func TestFracSizes(t *testing.T) {
	for _, n := range []int{10, 25, 100, 500} {
		for _, cfg := range figure10Configs {
			sizes := fracSizes(n, cfg.frac)
			total := 0
			for _, s := range sizes {
				if s < 1 {
					t.Fatalf("fracSizes(%d, %s) has empty part: %v", n, cfg.label, sizes)
				}
				total += s
			}
			if total != n {
				t.Fatalf("fracSizes(%d, %s) sums to %d: %v", n, cfg.label, total, sizes)
			}
		}
	}
}
