package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/report"
)

// The experiments in this file go beyond the paper's figures: they are
// ablations of claims the paper makes in prose (§2.1's mis-tiering
// tolerance, the over-selection strategy it critiques) and of design
// parameters it fixes without sweeping (FedAsync's staleness discount, the
// proximal coefficient λ). DESIGN.md lists them as extension work.

// AblationMisTier corrupts a growing fraction of the latency profiles
// before tiering and compares FedAT with TiFL. §2.1 claims FedAT's
// asynchronous cross-tier updates tolerate mis-tiering while TiFL's
// synchronous tier rounds suffer (a fast round stalls on a mis-placed slow
// client).
func AblationMisTier(p Preset) (*Report, error) {
	rep := &Report{ID: "ablation-mistier", Title: "Mis-tiering tolerance (extension of §2.1's claim)"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	fracs := []float64{0, 0.2, 0.4}
	// cellFor is the single definition of a mis-tiering cell, used by both
	// the batch and the collection below.
	cellFor := func(m string, f float64) cell {
		return cell{p: p, d: spec, method: m,
			variant: fmt.Sprintf("mistier=%.2f", f),
			mutate:  func(cfg *fl.RunConfig) { cfg.MisTierFrac = f }}
	}
	var cells []cell
	for _, m := range []string{"fedat", "tifl"} {
		for _, f := range fracs {
			cells = append(cells, cellFor(m, f))
		}
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}
	header := []string{"method"}
	for _, f := range fracs {
		header = append(header, fmt.Sprintf("%.0f%% mis-tiered acc", 100*f),
			fmt.Sprintf("%.0f%% sec/update", 100*f))
	}
	tb := report.NewTable("Best accuracy and seconds per global update vs mis-profiled fraction", header...)
	for _, m := range []string{"fedat", "tifl"} {
		row := []report.Cell{report.Str(methodLabel(m))}
		for _, f := range fracs {
			run, err := cellRun(cellFor(m, f))
			if err != nil {
				return nil, err
			}
			rep.Keep(fmt.Sprintf("%s/%.0f%%", m, 100*f), run)
			perUpdate := 0.0
			if run.GlobalRounds > 0 && len(run.Points) > 0 {
				perUpdate = run.Points[len(run.Points)-1].Time / float64(run.GlobalRounds)
			}
			row = append(row, accCell(run.BestAcc()), report.Numf("%.1fs", perUpdate))
		}
		tb.AddRow(row...)
	}
	rep.AddTable(tb)
	rep.AddNote("Expected shape: FedAT's accuracy and update rate degrade mildly (a mis-placed slow " +
		"client only slows its own tier's loop), while TiFL's fast-tier rounds inherit slow clients " +
		"and its accuracy-based selection is poisoned.")
	return rep, nil
}

// AblationStaleness sweeps FedAsync's polynomial staleness exponent a in
// α_t = α·(staleness+1)^(−a): a=0 ignores staleness entirely; larger a
// discounts stale updates harder.
func AblationStaleness(p Preset) (*Report, error) {
	rep := &Report{ID: "ablation-staleness", Title: "FedAsync staleness-discount sweep (design-choice ablation)"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	exps := []float64{0.01, 0.25, 0.5, 1.0}
	cellFor := func(a float64) cell {
		return cell{p: p, d: spec, method: "fedasync",
			variant: fmt.Sprintf("staleexp=%.2f", a),
			mutate:  func(cfg *fl.RunConfig) { cfg.AsyncStaleExp = a }}
	}
	cells := make([]cell, len(exps))
	for i, a := range exps {
		cells[i] = cellFor(a)
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}
	tb := report.NewTable("FedAsync on cifar10(#2)",
		"staleness exponent a", "best acc", "final acc", "acc variance")
	for _, a := range exps {
		run, err := cellRun(cellFor(a))
		if err != nil {
			return nil, err
		}
		rep.Keep(fmt.Sprintf("a=%.2f", a), run)
		tb.AddRow(report.Numf("%.2f", a), accCell(run.BestAcc()), accCell(run.FinalAcc()),
			report.Numf("%.2e", run.MeanVariance()))
	}
	rep.AddTable(tb)
	rep.AddNote("Too little discounting lets 30s-stale single-client updates whipsaw the global model; " +
		"too much freezes it. The 0.5 default is the paper-era convention.")
	return rep, nil
}

// AblationLambda sweeps the proximal coefficient λ of Eq. 3 for FedAT. The
// paper fixes λ=0.4; the sweep shows the tradeoff it balances: λ=0 lets
// non-IID clients drift, large λ blocks local learning.
func AblationLambda(p Preset) (*Report, error) {
	rep := &Report{ID: "ablation-lambda", Title: "Proximal coefficient sweep (Eq. 3 design choice)"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	lambdas := []float64{0, 0.1, 0.4, 1.0, 4.0}
	cellFor := func(l float64) cell {
		return cell{p: p, d: spec, method: "fedat",
			variant: fmt.Sprintf("lambda=%.2f", l),
			mutate: func(cfg *fl.RunConfig) {
				cfg.Lambda = l
				if l == 0 {
					// RunConfig.Lambda 0 means "inherit DefaultLambda"; the
					// sweep's λ=0 point genuinely disables the constraint.
					cfg.Lambda = fl.LambdaOff
				}
			}}
	}
	cells := make([]cell, len(lambdas))
	for i, l := range lambdas {
		cells[i] = cellFor(l)
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}
	tb := report.NewTable("FedAT on cifar10(#2) across λ", "lambda", "best acc", "acc variance")
	for _, l := range lambdas {
		run, err := cellRun(cellFor(l))
		if err != nil {
			return nil, err
		}
		rep.Keep(fmt.Sprintf("lambda=%.2f", l), run)
		tb.AddRow(report.Numf("%.2f", l), accCell(run.BestAcc()), report.Numf("%.2e", run.MeanVariance()))
	}
	rep.AddTable(tb)
	return rep, nil
}

// AblationOverSelect compares the over-selection strategy (Bonawitz et al.,
// discussed in §2.1) against FedAvg and FedAT: it buys shorter rounds by
// wasting the slowest 30% of selected clients' work.
func AblationOverSelect(p Preset) (*Report, error) {
	rep := &Report{ID: "ablation-oversel", Title: "Over-selection baseline (§2.1's discussed strategy)"}
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	methods := []string{"fedat", "fedavg", "fedavg-oversel"}
	runs, err := cachedRunMethods(p, spec, methods, "", nil)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("cifar10(#2)", "method", "best acc", "sec/update", "up-bytes/update")
	for _, m := range methods {
		run := runs[m]
		rep.Keep(m, run)
		perUpdate, bytesPer := 0.0, 0.0
		if run.GlobalRounds > 0 && len(run.Points) > 0 {
			perUpdate = run.Points[len(run.Points)-1].Time / float64(run.GlobalRounds)
			bytesPer = float64(run.UpBytes) / float64(run.GlobalRounds)
		}
		tb.AddRow(report.Str(methodLabel2(m)), accCell(run.BestAcc()),
			report.Numf("%.1fs", perUpdate), report.Num(bytesPer, fmt.Sprintf("%.0f B", bytesPer)))
	}
	rep.AddTable(tb)
	rep.AddNote("Expected shape: over-selection shortens FedAvg's rounds but uploads ~30% more per " +
		"update and systematically drops the slowest clients' contributions; FedAT gets the speed " +
		"without discarding work.")
	return rep, nil
}

func methodLabel2(name string) string {
	if name == "fedavg-oversel" {
		return "FedAvg+oversel"
	}
	return methodLabel(name)
}
