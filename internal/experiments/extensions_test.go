package experiments

import (
	"strings"
	"testing"
)

func TestAblationMisTierTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := AblationMisTier(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"FedAT", "TiFL", "0% mis-tiered", "40% mis-tiered"} {
		if !strings.Contains(s, want) {
			t.Fatalf("mistier report missing %q", want)
		}
	}
	if len(rep.Runs) != 6 {
		t.Fatalf("mistier kept %d runs, want 6", len(rep.Runs))
	}
}

func TestAblationStalenessTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := AblationStaleness(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "staleness") {
		t.Fatal("staleness report malformed")
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("staleness kept %d runs, want 4", len(rep.Runs))
	}
	// Different exponents must actually change the run.
	if rep.Runs["a=0.01"].BestAcc() == rep.Runs["a=1.00"].BestAcc() &&
		rep.Runs["a=0.01"].FinalAcc() == rep.Runs["a=1.00"].FinalAcc() {
		t.Fatal("staleness exponent has no effect")
	}
}

func TestAblationLambdaTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := AblationLambda(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 5 {
		t.Fatalf("lambda sweep kept %d runs, want 5", len(rep.Runs))
	}
	if rep.Runs["lambda=0.00"].BestAcc() == rep.Runs["lambda=4.00"].BestAcc() {
		t.Fatal("lambda has no effect between 0 and 4")
	}
}

func TestAblationOverSelectTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := AblationOverSelect(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "FedAvg+oversel") {
		t.Fatal("over-selection row missing")
	}
}

func TestTheoryValidationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	rep, err := TheoryValidation(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "Theorem 5.1") || !strings.Contains(s, "Theorem 5.2") {
		t.Fatalf("theory report missing theorem sections:\n%s", s)
	}
	if !strings.Contains(s, "DECREASING") {
		t.Fatalf("convex gap did not decrease:\n%s", s)
	}
}
