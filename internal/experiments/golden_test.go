package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files from the current renderer:
//
//	go test ./internal/experiments -run TestGoldenText -update
//
// Only do this for a deliberate output change; the goldens exist to prove
// the text renderer reproduces the pre-artifact-model reports byte for
// byte.
var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenIDs are the experiments whose tiny-preset text output is pinned:
// a table-heavy report (table1), a timeline + free-text report (fig2), a
// variant sweep (ablation-lambda), the edge-topology comparison (hierarchy
// — its flat and edge1 rows must stay bit-identical), the adversarial
// grid (robustness — pins each fold family's degradation curve and the
// tiering×attackers comparison) and the lazy-population ladder (scale —
// its deterministic columns pin the lazy substrate's short-population
// runs; the machine-dependent wall/heap figures are data-only scalars and
// never reach the text), and the async-family sweep (staleness — pins the
// weight-function × discount grid, the per-update-vs-batch anchor
// comparison and the adaptive-LR stage).
var goldenIDs = []string{"table1", "fig2", "ablation-lambda", "hierarchy", "robustness", "scale", "staleness"}

func TestGoldenText(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration; the -race -short CI pass covers the scheduler tests")
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := RunByID(id, Tiny)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s text output diverged from golden (len %d vs %d):\n--- got ---\n%s\n--- want ---\n%s",
					id, len(got), len(want), got, want)
			}
		})
	}
}
