package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/report"
)

// The hierarchy experiment: the paper's FedAT is a two-level system —
// clients fold into one server. This extension asks what the tiered design
// buys when a third level is inserted: K edge aggregators each run the full
// unmodified FedAT engine over their own client shard and fold up into a
// cloud model, either on a synchronous barrier or asynchronously with
// staleness-discounted blending (the same eq. 5 shape FedAT uses across
// tiers, lifted one level). All rows share the dynamics experiment's
// drifting, churning population, the regime where hierarchy should matter:
// an edge isolates its shard's churn from the other shards' progress.

// hierarchyRow is one topology under test. An Edges of 0 is the flat
// baseline; TopKFrac enables the sparsified delta uplink on the edge→cloud
// hop only (client→edge traffic is untouched).
type hierarchyRow struct {
	key  string
	topo ComposeTopology
}

// Hierarchy compares flat FedAT against K-edge topologies under speed
// drift + churn, on both edge→cloud fold policies. The edge:1 row runs the
// full hierarchy machinery as a pass-through and must reproduce the flat
// row bit for bit (same acc/time columns; only the edge-fold telemetry
// differs) — the table doubles as a standing correctness check.
func Hierarchy(p Preset) (*Report, error) {
	rep := &Report{ID: "hierarchy", Title: "Hierarchical edge fabric: flat vs K-edge topologies"}
	dyn := ComposeDynamics{
		Drift:       dynBehavior.DriftMag,
		Churn:       dynBehavior.ChurnFrac,
		RetierEvery: dynRetierEvery,
	}
	m, err := fl.Lookup("fedat")
	if err != nil {
		return nil, err
	}

	rows := []hierarchyRow{
		{"flat", ComposeTopology{}},
		{"edge1/sync", ComposeTopology{Edges: 1, Fold: "sync"}},
		{"edge2/sync", ComposeTopology{Edges: 2, Fold: "sync"}},
		{"edge2/async", ComposeTopology{Edges: 2, Fold: "async", Buffer: 1}},
		{"edge2/async+topk", ComposeTopology{Edges: 2, Fold: "async", Buffer: 1, TopKFrac: 0.25}},
	}

	tb := report.NewTable("fedat on cifar10(#2) under speed drift + churn",
		"topology", "best acc", "final acc", "sec/update", "edge folds", "mean staleness", "cloud MB up")
	timeline := map[string]*metrics.Run{}
	for _, row := range rows {
		run, err := RunComposedTopology(p, m, dyn, row.topo)
		if err != nil {
			return nil, err
		}
		rep.Keep(row.key, run)
		timeline[row.key] = run
		perUpdate := 0.0
		if run.GlobalRounds > 0 && len(run.Points) > 0 {
			perUpdate = run.Points[len(run.Points)-1].Time / float64(run.GlobalRounds)
		}
		staleness := 0.0
		if run.EdgeFolds > 0 {
			staleness = run.EdgeStaleness / float64(run.EdgeFolds)
		}
		// Flat has no edge→cloud hop at all; its telemetry columns are
		// structurally absent, not zero. A 1-edge pass-through folds (the
		// events are real) but moves no cloud bytes by construction.
		folds := report.Str("-")
		stale := report.Str("-")
		cloudMB := report.Str("-")
		if row.topo.Edges > 0 {
			folds = report.Num(float64(run.EdgeFolds), fmt.Sprint(run.EdgeFolds))
			stale = report.Numf("%.2f", staleness)
		}
		if row.topo.Edges > 1 {
			cloudMB = report.Numf("%.2f", float64(run.UpBytes)/1e6)
		}
		tb.AddRow(report.Str(row.key),
			accCell(run.BestAcc()), accCell(run.FinalAcc()),
			report.Numf("%.1fs", perUpdate), folds, stale, cloudMB)
	}
	rep.AddTable(tb)

	// Accuracy-over-virtual-time for the topology spread: the flat baseline,
	// the pass-through proof, and the two genuine 2-edge policies.
	order := []string{"flat", "edge1/sync", "edge2/sync", "edge2/async"}
	tl := report.NewTable("smoothed accuracy over virtual time",
		append([]string{"run"}, timelineHeader(6)...)...)
	for _, key := range order {
		run := timeline[key]
		sm := run.Smooth(p.SmoothWindow)
		cells := []report.Cell{report.Str(key)}
		for i := 0; i < 6; i++ {
			if len(sm) == 0 {
				cells = append(cells, report.Str("-"))
				continue
			}
			idx := i * (len(sm) - 1) / 5
			pt := sm[idx]
			cells = append(cells, report.Num(pt.Acc, fmt.Sprintf("%.3f@%.0fs", pt.Acc, pt.Time)))
		}
		tl.AddRow(cells...)
		rep.AddSeries(report.SmoothedAccSeries(key, run, p.SmoothWindow))
	}
	rep.AddTable(tl)

	rep.AddNote("Every topology runs the same unmodified FedAT engine; the hierarchy only changes who it " +
		"answers to. edge:1 is the flat run routed through the full edge machinery (cloud overlay, fold " +
		"events, uplink accounting) as a pure pass-through, so its accuracy columns must match flat exactly " +
		"— a divergence here is a determinism bug, not a result. With 2 edges the population is sharded " +
		"(distinct data and latency seeds per shard, stride " + fmt.Sprint(int64(edgeSeedStride)) + "); the " +
		"sync policy folds on a barrier over live edges while async folds per push with staleness discount " +
		"α=(s+1)^-0.5, trading cloud-model coherence for fold cadence under churn. The +topk row sparsifies " +
		"the edge→cloud delta to 25% of coordinates, cutting the cloud uplink while leaving client→edge " +
		"traffic untouched; accuracy drift relative to edge2/async measures the compression cost. Cloud MB " +
		"counts only the edge→cloud hop (a hierarchy's new traffic), not client→edge bytes.")
	return rep, nil
}
