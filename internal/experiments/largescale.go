package experiments

import (
	"repro/internal/report"
)

// figure7Methods include ASO-Fed, which the paper only evaluates at large
// scale (§7.4).
var figure7Methods = []string{"fedat", "tifl", "fedavg", "fedprox", "fedasync", "asofed"}

// Figure7 reproduces the large-scale FEMNIST experiment: accuracy over time
// and accuracy over uploaded bytes with the large client population. The
// single cachedRunMethods call schedules all six methods' cells over the
// parallel worker pool at once.
func Figure7(p Preset) (*Report, error) {
	rep := &Report{ID: "fig7", Title: "Large-scale FEMNIST: accuracy over time and bytes (paper Figure 7)"}
	spec := dsSpec{name: "femnist", large: true}
	runs, err := cachedRunMethods(p, spec, figure7Methods, "", nil)
	if err != nil {
		return nil, err
	}
	for m, run := range runs {
		rep.Keep(m, run)
	}
	rep.AddTable(timelineTable("Smoothed accuracy over virtual time",
		runs, figure7Methods, p.SmoothWindow, 6))
	timelineSeries(rep, "", runs, figure7Methods, p.SmoothWindow)

	tb := report.NewTable("Accuracy vs communication",
		"method", "best acc", "total up-bytes", "up-bytes to 90% of FedAT best")
	target := 0.9 * runs["fedat"].BestAcc()
	for _, m := range figure7Methods {
		run := runs[m]
		cell := report.Str("not reached")
		if b, ok := run.UploadBytesToAccuracy(target); ok {
			cell = bytesCell(b)
		}
		tb.AddRow(report.Str(methodLabel(m)), accCell(run.BestAcc()), bytesCell(run.UpBytes), cell)
	}
	rep.AddTable(tb)
	rep.AddNote("Paper shape: FedAT leads from the early stage and stays >=1.2% above FedProx/TiFL; " +
		"FedAsync and ASO-Fed trail in accuracy and spend far more bytes.")
	return rep, nil
}

// figure8Methods are the three frameworks the Reddit comparison keeps (the
// async baselines fail to converge on Reddit, §7.4).
var figure8Methods = []string{"fedat", "tifl", "fedprox"}

// Figure8 reproduces the Reddit LSTM experiment: accuracy and loss over
// time.
func Figure8(p Preset) (*Report, error) {
	rep := &Report{ID: "fig8", Title: "Reddit LSTM: accuracy and loss over time (paper Figure 8)"}
	spec := dsSpec{name: "reddit", large: true}
	runs, err := cachedRunMethods(p, spec, figure8Methods, "", nil)
	if err != nil {
		return nil, err
	}
	for m, run := range runs {
		rep.Keep(m, run)
	}
	rep.AddTable(timelineTable("Smoothed accuracy over virtual time",
		runs, figure8Methods, p.SmoothWindow, 6))
	timelineSeries(rep, "", runs, figure8Methods, p.SmoothWindow)

	loss := report.NewTable("Test loss trajectory", "method", "first loss", "final loss", "best acc")
	for _, m := range figure8Methods {
		run := runs[m]
		first := 0.0
		if len(run.Points) > 0 {
			first = run.Points[0].Loss
		}
		loss.AddRow(report.Str(methodLabel(m)), report.Numf("%.3f", first),
			report.Numf("%.3f", run.FinalLoss()), accCell(run.BestAcc()))
	}
	rep.AddTable(loss)
	rep.AddNote("Paper shape: similar learning trends for all three, with FedAT holding the best " +
		"accuracy and the lowest loss throughout.")
	return rep, nil
}
