// Package experiments regenerates every table and figure of the FedAT
// paper's evaluation (§7) on the simulated substrate. Each experiment is a
// function from a scale preset to a textual report whose rows mirror what
// the paper plots; DESIGN.md maps experiment ids to paper artifacts.
//
// Absolute numbers differ from the paper (synthetic data, scaled models, a
// virtual cluster); the reproduction target is the SHAPE of each result:
// which method wins, by roughly what factor, and where crossovers happen.
package experiments

import (
	"fmt"

	"repro/internal/dataset"
)

// Preset scales an experiment: client counts, round budgets and model size.
type Preset struct {
	Name string

	// Clients for the Chameleon-style experiments (paper: 100) and the
	// large-scale AWS-style ones (paper: 500).
	Clients      int
	LargeClients int

	// Rounds is the global update budget for the standard experiments;
	// LargeRounds for the large-scale ones.
	Rounds      int
	LargeRounds int

	// EvalEvery controls evaluation cadence (global updates per eval).
	EvalEvery int
	// SmoothWindow is the report smoothing (the paper smooths 40 rounds).
	SmoothWindow int

	// DataScale picks the synthetic dataset size.
	DataScale dataset.Scale
	// UseCNN selects the paper's CNN for the image datasets; false swaps
	// in an MLP, which keeps CI-scale runs fast without changing the FL
	// dynamics under study.
	UseCNN bool

	Seed uint64
}

// Tiny is the CI preset: everything small enough for unit tests and
// benchmarks.
var Tiny = Preset{
	Name:         "tiny",
	Clients:      15,
	LargeClients: 25,
	Rounds:       24,
	LargeRounds:  30,
	EvalEvery:    3,
	SmoothWindow: 2,
	DataScale:    dataset.ScaleSmall,
	UseCNN:       false,
	Seed:         42,
}

// Small runs in tens of seconds per experiment.
var Small = Preset{
	Name:         "small",
	Clients:      40,
	LargeClients: 80,
	Rounds:       120,
	LargeRounds:  150,
	EvalEvery:    4,
	SmoothWindow: 5,
	DataScale:    dataset.ScaleSmall,
	UseCNN:       false,
	Seed:         42,
}

// Medium is the default CLI preset: paper-scale clients and local work
// (~50 local steps per round, where non-IID client drift is material) with
// the fast MLP stand-in model so a full experiment takes minutes.
var Medium = Preset{
	Name:         "medium",
	Clients:      100,
	LargeClients: 200,
	Rounds:       300,
	LargeRounds:  200,
	EvalEvery:    5,
	SmoothWindow: 8,
	DataScale:    dataset.ScaleMedium,
	UseCNN:       false,
	Seed:         42,
}

// Paper approaches the paper's scales (100/500 clients); expect long runs.
var Paper = Preset{
	Name:         "paper",
	Clients:      100,
	LargeClients: 500,
	Rounds:       1000,
	LargeRounds:  600,
	EvalEvery:    5,
	SmoothWindow: 40,
	DataScale:    dataset.ScaleMedium,
	UseCNN:       true,
	Seed:         42,
}

// Huge exists for the scale experiment: its client count is the base of
// the 8x population ladder {c, 8c, 64c}, so 15625 tops the ladder at
// exactly one million simulated clients. Only the lazy-environment
// experiments are meant to run at this preset — an eager experiment at a
// million clients would materialize the population it is the whole point
// not to. Round budgets are bounded accordingly.
var Huge = Preset{
	Name:         "huge",
	Clients:      15625,
	LargeClients: 15625,
	Rounds:       8,
	LargeRounds:  8,
	EvalEvery:    2,
	SmoothWindow: 2,
	DataScale:    dataset.ScaleSmall,
	UseCNN:       false,
	Seed:         42,
}

// Presets indexes the scale presets by name.
var Presets = map[string]Preset{
	"tiny":   Tiny,
	"small":  Small,
	"medium": Medium,
	"paper":  Paper,
	"huge":   Huge,
}

// PresetByName resolves a preset.
func PresetByName(name string) (Preset, error) {
	p, ok := Presets[name]
	if !ok {
		return Preset{}, fmt.Errorf("experiments: unknown preset %q (have tiny, small, medium, paper, huge)", name)
	}
	return p, nil
}
