package experiments

import (
	"fmt"

	"repro/internal/util"
)

// Experiment is a runnable paper artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Preset) (*Report, error)
}

// Registry maps experiment ids to runners, one per paper table/figure.
var Registry = map[string]Experiment{
	"table1": {"table1", "Prediction performance and variance", Table1},
	"fig2":   {"fig2", "Convergence timelines + time to target", Figure2},
	"fig3":   {"fig3", "Convergence vs non-IID level", Figure3},
	"fig4":   {"fig4", "Accuracy vs uploaded bytes", Figure4},
	"table2": {"table2", "Data transferred to target accuracy", Table2},
	"fig5":   {"fig5", "Compression precision tradeoff", Figure5},
	"fig6":   {"fig6", "Weighted vs uniform aggregation", Figure6},
	"fig7":   {"fig7", "Large-scale FEMNIST", Figure7},
	"fig8":   {"fig8", "Reddit LSTM", Figure8},
	"fig9":   {"fig9", "Client participation sweep", Figure9},
	"fig10":  {"fig10", "Tier-size distributions", Figure10},

	// Extensions beyond the paper's figures (see DESIGN.md §3).
	"ablation-compose":   {"ablation-compose", "Novel policy compositions", AblationCompose},
	"dynamics":           {"dynamics", "Dynamic clients: static vs runtime re-tiering", Dynamics},
	"hierarchy":          {"hierarchy", "Hierarchical edge fabric: flat vs K-edge topologies", Hierarchy},
	"ablation-mistier":   {"ablation-mistier", "Mis-tiering tolerance", AblationMisTier},
	"robustness":         {"robustness", "Adversarial robustness: attacks, robust folds, DP", Robustness},
	"ablation-staleness": {"ablation-staleness", "FedAsync staleness sweep", AblationStaleness},
	"staleness":          {"staleness", "Staleness-aware async family: weight functions, anchors, adaptive LR", Staleness},
	"ablation-lambda":    {"ablation-lambda", "Proximal λ sweep", AblationLambda},
	"ablation-oversel":   {"ablation-oversel", "Over-selection baseline", AblationOverSelect},
	"theory":             {"theory", "Empirical §5 convergence check", TheoryValidation},
	"scale":              {"scale", "Million-client simnet: lazy population ladder", Scale},
}

// IDs returns the experiment ids in a stable order.
func IDs() []string { return util.SortedKeys(Registry) }

// RunByID executes one experiment.
func RunByID(id string, p Preset) (*Report, error) {
	exp, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return exp.Run(p)
}
