package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/report"
	"repro/internal/simnet"
)

// The robustness experiment: the paper assumes every client is honest; this
// extension asks how the three pacing families survive when a fraction of
// the population is not. A sign-flipping scaled-update adversary (classic
// model poisoning: w ← g - 4(w - g)) rides on the dynamics experiment's
// drifting, churning population, and each family folds with its native
// rule and with the three robust aggregates from internal/robust. A second
// grid pins the tiering question: when the attackers are exactly the
// SLOWEST clients (latency-correlated compromise — cheap devices are both
// slow and easiest to own), does FedAT's tier structure amplify or dilute
// them relative to a synchronous fold over the same population?

// robAttackScale is the poisoning amplification: negative flips the sign of
// the local delta, so attackers actively push the global model away from
// their honest gradient instead of merely overshooting it.
const robAttackScale = -4

// robFracs is the attack-fraction sweep. 0 is the honest control (still
// drifting and churning); 0.2 leaves robust statistics a clear majority;
// 0.4 approaches their breakdown point.
var robFracs = []float64{0, 0.2, 0.4}

// robBehavior is the dynamics population with the adversary switched on.
func robBehavior(frac float64, tail bool) simnet.BehaviorConfig {
	b := dynBehavior
	b.AttackKind = "scale"
	b.AttackScale = robAttackScale
	b.AttackFrac = frac
	b.AttackTail = tail
	return b
}

// robFamily is one pacing family of the grid: the registry base spec plus
// an optional pacer override (the async family folds through the fedbuff
// buffered pacer so its robust statistics see K-cohorts instead of
// degenerate cohorts of one).
type robFamily struct {
	key   string // row label and cache-key prefix
	base  string // registry method the composition starts from
	pacer string // pacer override ("" = the base's own)
}

var robFamilies = []robFamily{
	{key: "fedavg", base: "fedavg"},
	{key: "fedat", base: "fedat"},
	{key: "fedbuff", base: "fedasync", pacer: "fedbuff"},
}

// robAggs are the fold columns: the family's native rule, then the robust
// aggregates.
var robAggs = []string{"", "median", "trimmed", "krum"}

// robCell assembles one grid cell. The method label keys the run cache, so
// it must be unique per composition; the variant carries the attack
// configuration.
func robCell(p Preset, fam robFamily, agg string, frac float64, tail bool) (cell, error) {
	spec := dsSpec{name: "cifar10", classesPerClient: 2}
	label := fam.key
	if agg != "" {
		label += "+" + agg
	}
	variant := fmt.Sprintf("rob-f%02d", int(frac*100+0.5))
	if tail {
		variant += "-tail"
	}
	c := cell{p: p, d: spec, method: label, variant: variant,
		cmutate: func(cc *simnet.ClusterConfig) { cc.Behavior = robBehavior(frac, tail) },
	}
	if agg != "" || fam.pacer != "" {
		m, err := fl.Compose(fam.base, "", fam.pacer, agg, label)
		if err != nil {
			return cell{}, err
		}
		c.spec = &m
	}
	return c, nil
}

// robAggLabel names the fold column for a family row.
func robAggLabel(fam robFamily, agg string) string {
	if agg != "" {
		return agg
	}
	return fl.Methods[fam.base].Update + " (native)"
}

// Robustness sweeps attack fraction × aggregation rule × pacing family
// under the poisoning regime, then pins the latency-correlated-attacker
// comparison and the DP stage's honest-run cost.
func Robustness(p Preset) (*Report, error) {
	rep := &Report{ID: "robustness", Title: "Adversarial robustness: attacks, robust folds, DP"}

	// The full grid plus the tail comparison and the DP control, scheduled
	// as one batch so independent cells simulate concurrently.
	var cells []cell
	type gridKey struct {
		fam  string
		agg  string
		frac float64
	}
	grid := map[gridKey]cell{}
	for _, fam := range robFamilies {
		for _, agg := range robAggs {
			for _, frac := range robFracs {
				c, err := robCell(p, fam, agg, frac, false)
				if err != nil {
					return nil, err
				}
				grid[gridKey{fam.key, agg, frac}] = c
				cells = append(cells, c)
			}
		}
	}
	// Latency-correlated attackers: the slowest 40% are compromised.
	// FedAT's tier fold quarantines them (slow tiers fold rarely and Eq. 5
	// down-weights their infrequent updates) where a synchronous fold mixes
	// them into every round.
	tailRows := []struct {
		fam robFamily
		agg string
	}{
		{robFamilies[1], ""}, {robFamilies[1], "median"}, // fedat
		{robFamilies[0], ""}, {robFamilies[0], "median"}, // fedavg
	}
	tailCells := map[string]cell{}
	for _, tr := range tailRows {
		c, err := robCell(p, tr.fam, tr.agg, 0.4, true)
		if err != nil {
			return nil, err
		}
		tailCells[tr.fam.key+"/"+tr.agg] = c
		cells = append(cells, c)
	}
	// DP control: the clip+noise stage on an honest, static-free population
	// — what the privacy knob costs when nobody is attacking.
	dpCell := cell{p: p, d: dsSpec{name: "cifar10", classesPerClient: 2},
		method: "fedavg", variant: "rob-dp",
		mutate:  func(cfg *fl.RunConfig) { cfg.DPClip = 1.0; cfg.DPNoise = 0.1 },
		cmutate: func(cc *simnet.ClusterConfig) { cc.Behavior = robBehavior(0, false) },
	}
	cells = append(cells, dpCell)
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}

	// Main grid: one row per family × fold, best accuracy per attack
	// fraction, and the 0→40% degradation the graceful-degradation claim
	// rides on.
	header := []string{"family", "fold"}
	for _, f := range robFracs {
		header = append(header, fmt.Sprintf("best@%d%%", int(f*100+0.5)))
	}
	header = append(header, "degradation")
	tb := report.NewTable("cifar10(#2), sign-flip scale attack (x-4) under drift+churn", header...)
	for _, fam := range robFamilies {
		for _, agg := range robAggs {
			row := []report.Cell{report.Str(fam.key), report.Str(robAggLabel(fam, agg))}
			var accs []float64
			for _, frac := range robFracs {
				run, err := cellRun(grid[gridKey{fam.key, agg, frac}])
				if err != nil {
					return nil, err
				}
				rep.Keep(fmt.Sprintf("%s/%s/f%02d", fam.key, robAggLabel(fam, agg), int(frac*100+0.5)), run)
				accs = append(accs, run.BestAcc())
				row = append(row, accCell(run.BestAcc()))
			}
			deg := accs[0] - accs[len(accs)-1]
			row = append(row, report.Numf("%.3f", deg))
			tb.AddRow(row...)
		}
	}
	rep.AddTable(tb)

	// Tail grid: the tiering×attackers pin. delta > 0 means the slowest-40%
	// adversary hurts MORE than a seed-drawn 40% adversary for that fold.
	tt := report.NewTable("latency-correlated attackers: slowest 40% poisoned vs seed-drawn 40%",
		"family", "fold", "random 40%", "slowest 40%", "delta")
	for _, tr := range tailRows {
		randRun, err := cellRun(grid[gridKey{tr.fam.key, tr.agg, 0.4}])
		if err != nil {
			return nil, err
		}
		tailRun, err := cellRun(tailCells[tr.fam.key+"/"+tr.agg])
		if err != nil {
			return nil, err
		}
		rep.Keep(fmt.Sprintf("%s/%s/tail", tr.fam.key, robAggLabel(tr.fam, tr.agg)), tailRun)
		tt.AddRow(report.Str(tr.fam.key), report.Str(robAggLabel(tr.fam, tr.agg)),
			accCell(randRun.BestAcc()), accCell(tailRun.BestAcc()),
			report.Numf("%+.3f", randRun.BestAcc()-tailRun.BestAcc()))
	}
	rep.AddTable(tt)

	// DP control row.
	honest, err := cellRun(grid[gridKey{"fedavg", "", 0}])
	if err != nil {
		return nil, err
	}
	dpRun, err := cellRun(dpCell)
	if err != nil {
		return nil, err
	}
	rep.Keep("fedavg/dp", dpRun)
	dp := report.NewTable("per-client DP stage on the honest population (clip 1.0, noise 0.1)",
		"run", "best acc", "final acc")
	dp.AddRow(report.Str("fedavg"), accCell(honest.BestAcc()), accCell(honest.FinalAcc()))
	dp.AddRow(report.Str("fedavg+dp"), accCell(dpRun.BestAcc()), accCell(dpRun.FinalAcc()))
	rep.AddTable(dp)

	rep.AddNote("All cells share the dynamics experiment's drifting, churning population; attackers ship " +
		"sign-flipped 4x-amplified deltas (w <- g " + fmt.Sprint(robAttackScale) + "(w - g)), membership a " +
		"deterministic seed-drawn subset. The native weighted folds track honest accuracy best at 0% but " +
		"degrade steepest as the attack fraction rises; coordinate-median and trimmed-mean trade a lower " +
		"honest ceiling for a flatter degradation curve — clearest in the tier- and buffer-paced families; " +
		"the sync family's 40% point sits at the robust statistics' breakdown fraction (4 of 10 cohort " +
		"members poisoned), where no fold survives. Krum collapses on this non-IID population at every " +
		"fraction — electing a single client's model is itself catastrophic when each client holds two " +
		"classes — a known non-IID failure mode, reproduced here rather than hidden. The async family folds " +
		"through the fedbuff buffered pacer (K arrivals per fold) so its robust statistics see real cohorts. " +
		"The tail grid poisons the slowest clients instead: FedAT's tier pacing quarantines a " +
		"latency-correlated adversary (slow tiers fold rarely and Eq. 5 down-weights them) where the " +
		"synchronous fold mixes the same adversary into every cohort. The DP stage (clip 1.0, noise " +
		"multiplier 0.1) prices the privacy knob on the honest population.")
	return rep, nil
}
