package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// The scale experiment: how far up does the simulated substrate go? The
// paper's evaluation stops at 500 clients because that is where a real
// testbed stops being affordable; the lazy population (clients exist as
// (seed, id) until dispatched, shards die with their round, evaluation
// touches a fixed sample) makes the limit CPU, not memory. Each rung of an
// 8x ladder rebuilds the standard testbed at a larger population and runs
// the same bounded FedAT schedule; under -preset huge the top rung is one
// million simulated clients on a single core.

// scaleRounds bounds every rung's global-update budget: the experiment
// measures substrate cost against population size, not convergence, so a
// handful of rounds per rung is the whole point — the 64x rung repeats the
// SAME schedule over a 64x population.
const scaleRounds = 8

// scaleLadder is the population ladder {c, 8c, 64c} for preset client
// count c: tiny tops out at 960 (the golden pins that run), huge at
// exactly 1,000,000.
func scaleLadder(p Preset) []int {
	c := p.Clients
	return []int{c, 8 * c, 64 * c}
}

// scaleConfigs assembles one rung's lazy inputs: the fashion-like small
// geometry on the standard virtual testbed (clusterConfig's parts, drop
// rate and link speeds), scaled to n clients.
func scaleConfigs(p Preset, n int) (dataset.Config, simnet.ClusterConfig, fl.RunConfig) {
	dcfg := dataset.Config{
		Name: "scalelike", NumClients: n, Classes: 10, SamplesPerClient: 24,
		ClassesPerClient: 2, Seed: p.Seed, ImgC: 1, ImgH: 10, ImgW: 10,
		Signal: 0.34, Noise: 1.0,
	}
	ccfg := simnet.ClusterConfig{
		NumClients:  n,
		NumUnstable: n / 10,
		DropHorizon: 20000,
		SecPerBatch: 1.0,
		UpBW:        1 << 20,
		DownBW:      1 << 20,
		ServerBW:    16 << 20,
		Seed:        p.Seed,
	}
	rcfg := fl.RunConfig{
		Rounds:          scaleRounds,
		ClientsPerRound: 10,
		LocalEpochs:     1,
		BatchSize:       10,
		LearningRate:    0.01,
		NumTiers:        5,
		EvalEvery:       2,
		Seed:            p.Seed,
		// EvalSample unset: the lazy evaluator's fixed default sample. The
		// table's accuracy column measures the sample at every rung, so
		// rungs are comparable to each other (not to full-population runs).
	}
	return dcfg, ccfg, rcfg
}

// buildLazyEnv assembles the lazy environment for one rung. It
// deliberately bypasses the run cache: the experiment IS the construction
// cost, and a cached 1M-client record would measure nothing.
func buildLazyEnv(p Preset, n int) (*fl.LazyEnv, error) {
	dcfg, ccfg, rcfg := scaleConfigs(p, n)
	src, err := dataset.NewSource(dcfg)
	if err != nil {
		return nil, err
	}
	pop, err := simnet.NewPopulation(ccfg)
	if err != nil {
		return nil, err
	}
	return fl.NewLazyEnv(src, pop, scaleFactory(src), rcfg)
}

// scaleFactory is the standard MLP stand-in (modelFactory's default
// branch) over the lazy source's geometry.
func scaleFactory(src *dataset.Source) fl.ModelFactory {
	return func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), src.InDim(), 32, src.Classes())
	}
}

// heapSampler records the live-heap peak across a run's folds and
// evaluations — the points where a lazy run's footprint crests (cohort
// shards just released, eval shards in flight). GC timing makes the value
// machine-dependent, so it feeds a data-only scalar, never the table.
type heapSampler struct{ peak uint64 }

func (h *heapSampler) OnEvent(ev fl.Event) {
	switch ev.(type) {
	case fl.TierFoldEvent, fl.EvalEvent:
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > h.peak {
			h.peak = m.HeapAlloc
		}
	}
}

// Scale runs the population ladder and reports, per rung, everything
// deterministic about the run (update count, sampled accuracy, virtual
// time, uplink traffic, how much of the population was ever touched) in
// the table, with wall-clock and peak-heap measurements attached as
// data-only scalars for the machine-readable report.
func Scale(p Preset) (*Report, error) {
	rep := &Report{ID: "scale", Title: "Million-client simnet: lazy population ladder"}
	m, err := fl.Lookup("fedat")
	if err != nil {
		return nil, err
	}

	tb := report.NewTable(
		fmt.Sprintf("fedat on scalelike(#2), %d global updates per rung, sampled evaluation", scaleRounds),
		"clients", "updates", "best acc", "virtual time", "client MB up", "touched", "touched frac")
	for _, n := range scaleLadder(p) {
		le, err := buildLazyEnv(p, n)
		if err != nil {
			return nil, err
		}
		sampler := &heapSampler{}
		start := time.Now()
		run, err := func() (*metrics.Run, error) {
			return simulateDirect(func() (*metrics.Run, error) {
				return m.RunOn(le.Fabric(), le.Cfg, sampler)
			})
		}()
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		touched := le.Pop.Materialized()
		lastTime := 0.0
		if len(run.Points) > 0 {
			lastTime = run.Points[len(run.Points)-1].Time
		}
		tb.AddRow(
			report.Num(float64(n), fmt.Sprint(n)),
			report.Num(float64(run.GlobalRounds), fmt.Sprint(run.GlobalRounds)),
			accCell(run.BestAcc()),
			timeCell(lastTime),
			report.Numf("%.2f", float64(run.UpBytes)/1e6),
			report.Num(float64(touched), fmt.Sprint(touched)),
			report.Numf("%.4f", float64(touched)/float64(n)),
		)
		rep.Keep(fmt.Sprintf("n%d", n), run)
		rep.AddScalar(fmt.Sprintf("wall_ms/n%d", n), float64(wall.Milliseconds()), "ms")
		rep.AddScalar(fmt.Sprintf("peak_heap_mb/n%d", n), float64(sampler.peak)/(1<<20), "MB")
	}
	rep.AddTable(tb)

	rep.AddNote("Each rung rebuilds the standard virtual testbed (five delay parts, one unstable client per " +
		"ten, 1 MB/s client links, 16 MB/s shared server link) at 8x the previous population and runs the same " +
		fmt.Sprint(scaleRounds) + "-update FedAT schedule over a LAZY environment: a client is a (seed, id) " +
		"pair until a cohort dispatch derives its speed, delays, drop time and data shard from labeled RNG " +
		"streams — bit-identical to the eager construction (the fl equivalence tests pin this) — and the shard " +
		"is released when the round folds. Steady-state memory is O(cohort + model) rather than O(population): " +
		"'touched' counts how many of the n clients were ever materialized, so its fraction falling with n is " +
		"the laziness actually working. Accuracy is measured on the evaluator's fixed deterministic sample, " +
		"comparable across rungs. Wall-clock and peak-heap figures ride along as data-only scalars (JSON/CSV); " +
		"they are machine-dependent, so the pinned text report carries only the deterministic columns. Under " +
		"-preset huge the top rung is 1,000,000 clients; the fl memory-ceiling test asserts such a run's peak " +
		"heap stays under 256MB.")
	return rep, nil
}
