package experiments

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

// microPreset builds a minimal preset for scheduler tests. Presets that
// differ only in Name produce identical simulations — Name feeds only the
// cache key — so each test gets a disjoint cache namespace without
// touching the Tiny cells other tests share.
func microPreset(name string) Preset {
	return Preset{
		Name:         name,
		Clients:      8,
		LargeClients: 10,
		Rounds:       6,
		LargeRounds:  6,
		EvalEvery:    2,
		SmoothWindow: 2,
		DataScale:    dataset.ScaleSmall,
		Seed:         7,
	}
}

// TestSchedulerByteIdenticalAndExactlyOnce is the scheduler's core
// contract: two experiments that share simulation cells (Figure 6 and the
// theory check both need FedAT on cifar10(#2) and sent140(#2)) run
// concurrently, and (a) their reports are byte-identical to a serial
// -workers 1 run, (b) every unique cell is simulated exactly once despite
// the concurrent requests.
func TestSchedulerByteIdenticalAndExactlyOnce(t *testing.T) {
	defer SetWorkers(0)

	// Serial reference: one worker, experiments back to back.
	SetWorkers(1)
	ps := microPreset("sched-serial")
	base := SimulationCount()
	fig6Serial, err := Figure6(ps)
	if err != nil {
		t.Fatal(err)
	}
	theorySerial, err := TheoryValidation(ps)
	if err != nil {
		t.Fatal(err)
	}
	serialSims := SimulationCount() - base

	// Concurrent: both experiments at once on a fresh namespace with a
	// parallel worker pool.
	SetWorkers(8)
	pc := microPreset("sched-conc")
	base = SimulationCount()
	var (
		wg         sync.WaitGroup
		fig6Conc   *Report
		theoryConc *Report
		errA, errB error
	)
	wg.Add(2)
	go func() { defer wg.Done(); fig6Conc, errA = Figure6(pc) }()
	go func() { defer wg.Done(); theoryConc, errB = TheoryValidation(pc) }()
	wg.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
	if errB != nil {
		t.Fatal(errB)
	}
	concSims := SimulationCount() - base

	if got, want := fig6Conc.String(), fig6Serial.String(); got != want {
		t.Fatalf("fig6 report differs between concurrent and serial execution:\n--- serial ---\n%s\n--- concurrent ---\n%s", want, got)
	}
	if got, want := theoryConc.String(), theorySerial.String(); got != want {
		t.Fatalf("theory report differs between concurrent and serial execution:\n--- serial ---\n%s\n--- concurrent ---\n%s", want, got)
	}

	// Figure 6 needs 3 weighted + 3 uniform FedAT cells; the theory check's
	// two cells are a subset of the weighted three. Exactly-once dedup must
	// hold both serially (cache) and concurrently (singleflight).
	const uniqueCells = 6
	if serialSims != uniqueCells {
		t.Fatalf("serial pass simulated %d cells, want %d", serialSims, uniqueCells)
	}
	if concSims != uniqueCells {
		t.Fatalf("concurrent pass simulated %d cells, want %d (shared cells re-simulated?)", concSims, uniqueCells)
	}
}

// TestSchedulerErrorNotPoisoned checks that a failed cell is evicted so a
// later request retries instead of inheriting a stale error forever.
func TestSchedulerErrorNotPoisoned(t *testing.T) {
	p := microPreset("sched-err")
	spec := dsSpec{name: "no-such-dataset", classesPerClient: 2}
	if _, err := cachedRunMethods(p, spec, []string{"fedat"}, "", nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	// The failed cell must not satisfy the next request from the cache: the
	// retry must run (and fail) afresh rather than panic or hang.
	if _, err := cachedRunMethods(p, spec, []string{"fedat"}, "", nil); err == nil {
		t.Fatal("unknown dataset accepted on retry")
	}
	if _, err := cachedRunMethods(p, spec, []string{"no-such-method"}, "", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestSchedulerMeta checks the per-cell metadata the JSON renderer
// publishes: every simulated cell appears with its key, a hit count that
// grows as later requests are served from cache, and timing fields.
func TestSchedulerMeta(t *testing.T) {
	p := microPreset("sched-meta")
	hitsBase := CacheHitCount()
	// Figure 6 schedules its whole batch once and collects via cellRun, so
	// a fresh run records no hits. Prefetch-then-collect experiments
	// (Table 1, Figure 2) re-request their own cells and DO count hits on
	// a fresh run — the metric is request-level by design (see cacheHits).
	if _, err := Figure6(p); err != nil {
		t.Fatal(err)
	}
	if got := CacheHitCount() - hitsBase; got != 0 {
		t.Fatalf("fresh Figure6 recorded %d cache hits, want 0", got)
	}
	if _, err := Figure6(p); err != nil {
		t.Fatal(err)
	}
	// The re-run requests the same 6 cells; all must be absorbed by the
	// cache.
	if got := CacheHitCount() - hitsBase; got != 6 {
		t.Fatalf("re-run Figure6 recorded %d cache hits, want 6", got)
	}
	meta := SchedulerMeta()
	if meta.Simulations != SimulationCount() || meta.CacheHits != CacheHitCount() {
		t.Fatalf("meta counters diverge: %+v", meta)
	}
	cells := map[string]bool{}
	totalHits := int64(0)
	for i, c := range meta.Cells {
		cells[c.Key] = true
		totalHits += c.Hits
		if i > 0 && meta.Cells[i-1].Key >= c.Key {
			t.Fatalf("cells not in sorted key order: %q then %q", meta.Cells[i-1].Key, c.Key)
		}
	}
	for _, key := range []string{
		"sched-meta|cifar10(#2)|false|fedat|",
		"sched-meta|cifar10(#2)|false|fedat|agg=uniform",
	} {
		if !cells[key] {
			t.Fatalf("cell %q missing from scheduler meta (have %v)", key, cells)
		}
	}
	if totalHits < 6 {
		t.Fatalf("per-cell hits sum to %d, want >= 6", totalHits)
	}
}

// TestSchedulerWorkers covers the worker-count plumbing.
func TestSchedulerWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if w := schedulerWorkers(10); w != 3 {
		t.Fatalf("schedulerWorkers(10) with cap 3 = %d", w)
	}
	if w := schedulerWorkers(2); w != 2 {
		t.Fatalf("schedulerWorkers(2) with cap 3 = %d", w)
	}
	SetWorkers(0)
	if w := schedulerWorkers(0); w != 1 {
		t.Fatalf("schedulerWorkers(0) = %d, want 1", w)
	}
	SetWorkers(-5) // negative resets to auto
	if w := schedulerWorkers(1); w != 1 {
		t.Fatalf("schedulerWorkers(1) after negative SetWorkers = %d", w)
	}
	SetWorkers(1 << 40) // beyond int32 saturates instead of wrapping
	if w := schedulerWorkers(7); w != 7 {
		t.Fatalf("schedulerWorkers(7) after huge SetWorkers = %d", w)
	}
}
