package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/simnet"
)

// The staleness experiment: the paper's FedAsync baseline discounts stale
// updates with one fixed polynomial weight; this extension sweeps the whole
// staleness-aware async family the parameterized spec API exposes —
// fedasync's weight functions (poly, exp, hinge and the const no-discount
// control) across discount strengths, the asyncsgd gradient-style fold, the
// per-update vs oldest-member staleness anchor on the buffered pacer, and
// the staleness-adaptive local learning-rate stage — all under the dynamics
// experiment's drifting, churning population where staleness actually
// spreads. An edge-topology pair re-runs the headline composition through
// the hierarchy machinery, pinning that the family deploys unchanged.

// staleAlphas is the discount-strength sweep. 0.2 barely discounts, 0.5 is
// the engine default (the paper's FedAsync setting), 0.9 is aggressive.
var staleAlphas = []float64{0.2, 0.5, 0.9}

// staleWeightFuncs are the alpha-dependent weight functions of the sweep;
// const is alpha-independent and runs once as the no-discount control.
var staleWeightFuncs = []string{fl.StaleFuncPoly, fl.StaleFuncExp, fl.StaleFuncHinge}

// staleBufferK sizes the buffered pacer's fold cohort. Four arrivals per
// fold leave room for genuinely mixed staleness inside one buffer, which is
// what separates the per-update anchor from the oldest-member one.
const staleBufferK = 4

// staleSpec formats a parameterized aggregation spec for ParseAgg.
func staleSpec(rule, fn string, alpha float64) string {
	return fmt.Sprintf("%s:%s:%g", rule, fn, alpha)
}

// staleCell assembles one cell of the grid: the composition's base is
// always fedasync (all-selection, wait-free client pacing), with the
// aggregation spec and optionally the pacer overridden. The spec@pacer
// label keys the run cache, so identical compositions share one simulation
// across tables. Every cell runs on the dynamics population.
func staleCell(p Preset, pacer, spec, variant string, mutate func(*fl.RunConfig)) (cell, error) {
	label := spec
	if pacer != "" {
		label = spec + "@" + pacer
	}
	// The fedasync base selects "all" (every client loops wait-free); the
	// round-paced policies need a per-round cohort selector instead.
	sel := ""
	if pacer == "sync" || pacer == "tier" {
		sel = "random"
	}
	m, err := fl.Compose("fedasync", sel, pacer, spec, label)
	if err != nil {
		return cell{}, err
	}
	return cell{p: p, d: dsSpec{name: "cifar10", classesPerClient: 2},
		method: label, variant: variant, spec: &m, mutate: mutate,
		cmutate: func(cc *simnet.ClusterConfig) { cc.Behavior = dynBehavior },
	}, nil
}

// staleBufMutate configures the buffered-pacer cells (variant "stale-buf").
// A fedbuff fold consumes K wait-free arrivals, so its round budget scales
// like the client pacer's divided by K (applyRoundBudget leaves non-tier,
// non-client pacers at the base cap, which would starve the buffered runs
// to a couple dozen folds).
func staleBufMutate(cfg *fl.RunConfig) {
	cfg.BufferK = staleBufferK
	cfg.Rounds *= 24 / staleBufferK
}

// staleRow renders the shared metric columns for one run.
func staleRow(run *metrics.Run) []report.Cell {
	perUpdate := 0.0
	if run.GlobalRounds > 0 && len(run.Points) > 0 {
		perUpdate = run.Points[len(run.Points)-1].Time / float64(run.GlobalRounds)
	}
	return []report.Cell{
		accCell(run.BestAcc()), accCell(run.FinalAcc()),
		report.Num(float64(run.GlobalRounds), fmt.Sprint(run.GlobalRounds)),
		report.Numf("%.1fs", perUpdate),
	}
}

// Staleness sweeps the async method family: weight function × discount
// strength, rule × pacer, per-update vs batch staleness anchors, the
// adaptive-LR stage, and the flat-vs-edge deployment of the headline
// composition.
func Staleness(p Preset) (*Report, error) {
	rep := &Report{ID: "staleness", Title: "Staleness-aware async family: weight functions, anchors, adaptive LR"}

	// Plan the full grid as one batch so independent cells simulate
	// concurrently. gridCells is keyed by (func, alpha); the other tables
	// collect through their own cell definitions (shared labels dedupe in
	// the scheduler).
	var cells []cell
	collect := func(c cell, err error) (cell, error) {
		if err == nil {
			cells = append(cells, c)
		}
		return c, err
	}

	type gridKey struct {
		fn    string
		alpha float64
	}
	grid := map[gridKey]cell{}
	for _, fn := range staleWeightFuncs {
		for _, alpha := range staleAlphas {
			c, err := collect(staleCell(p, "", staleSpec("fedasync", fn, alpha), "stale", nil))
			if err != nil {
				return nil, err
			}
			grid[gridKey{fn, alpha}] = c
		}
	}
	constCell, err := collect(staleCell(p, "", "fedasync:const", "stale", nil))
	if err != nil {
		return nil, err
	}

	// Rule × pacer at the default poly:0.5: the fedasync fold under every
	// pacing policy, and the asyncsgd gradient-style fold under the two
	// wait-free pacers it targets.
	type pacerRow struct {
		rule  string
		pacer string // "" = the base's native client pacing
	}
	pacerRows := []pacerRow{
		{"fedasync", "sync"},
		{"fedasync", "tier"},
		{"fedasync", ""},
		{"fedasync", "fedbuff"},
		{"asyncsgd", ""},
		{"asyncsgd", "fedbuff"},
	}
	pacerCells := map[pacerRow]cell{}
	for _, pr := range pacerRows {
		variant, mutate := "stale", (func(*fl.RunConfig))(nil)
		if pr.pacer == "fedbuff" {
			variant, mutate = "stale-buf", staleBufMutate
		}
		c, err := collect(staleCell(p, pr.pacer, staleSpec(pr.rule, fl.StaleFuncPoly, 0.5), variant, mutate))
		if err != nil {
			return nil, err
		}
		pacerCells[pr] = c
	}

	// Anchor comparison: the legacy staleness rule discounts a buffered
	// cohort by its OLDEST member's anchor; fedasync weights each buffered
	// update by its own. Same pacer, same buffer, same weight function.
	batchCell, err := collect(staleCell(p, "fedbuff", staleSpec("staleness", fl.StaleFuncPoly, 0.5), "stale-buf", staleBufMutate))
	if err != nil {
		return nil, err
	}

	// Adaptive-LR stage: the same compositions with the per-dispatch LR
	// scaled by the staleness weight of the dispatched tier/client.
	alrMutate := func(cfg *fl.RunConfig) { cfg.AdaptiveLR = true }
	alrBufMutate := func(cfg *fl.RunConfig) { staleBufMutate(cfg); cfg.AdaptiveLR = true }
	alrClient, err := collect(staleCell(p, "", staleSpec("fedasync", fl.StaleFuncPoly, 0.5), "stale-alr", alrMutate))
	if err != nil {
		return nil, err
	}
	alrBuf, err := collect(staleCell(p, "fedbuff", staleSpec("fedasync", fl.StaleFuncPoly, 0.5), "stale-buf-alr", alrBufMutate))
	if err != nil {
		return nil, err
	}
	if err := scheduleCells(cells); err != nil {
		return nil, err
	}

	// Weight-function grid: final accuracy per discount strength. The const
	// control ignores alpha by construction, so it renders as one row with
	// its single run repeated — the no-discount reference each column is
	// read against.
	header := []string{"weight func"}
	for _, a := range staleAlphas {
		header = append(header, fmt.Sprintf("final@a=%g", a))
	}
	header = append(header, "best@a=0.5")
	tb := report.NewTable("fedasync (wait-free client pacing) on cifar10(#2) under drift+churn", header...)
	for _, fn := range staleWeightFuncs {
		row := []report.Cell{report.Str(fn)}
		var mid *metrics.Run
		for _, alpha := range staleAlphas {
			run, err := cellRun(grid[gridKey{fn, alpha}])
			if err != nil {
				return nil, err
			}
			rep.Keep(fmt.Sprintf("fedasync/%s/a%g", fn, alpha), run)
			row = append(row, accCell(run.FinalAcc()))
			if alpha == 0.5 {
				mid = run
			}
		}
		row = append(row, accCell(mid.BestAcc()))
		tb.AddRow(row...)
	}
	constRun, err := cellRun(constCell)
	if err != nil {
		return nil, err
	}
	rep.Keep("fedasync/const", constRun)
	constRow := []report.Cell{report.Str(fl.StaleFuncConst)}
	for range staleAlphas {
		constRow = append(constRow, accCell(constRun.FinalAcc()))
	}
	constRow = append(constRow, accCell(constRun.BestAcc()))
	tb.AddRow(constRow...)
	rep.AddTable(tb)

	// Staleness-vs-accuracy curves behind the grid: the poly sweep's
	// smoothed timelines, the figure the discount-strength claim rides on.
	tl := report.NewTable("smoothed accuracy over virtual time (poly discount sweep)",
		append([]string{"run"}, timelineHeader(6)...)...)
	for _, alpha := range staleAlphas {
		run, err := cellRun(grid[gridKey{fl.StaleFuncPoly, alpha}])
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("poly/a%g", alpha)
		sm := run.Smooth(p.SmoothWindow)
		rowCells := []report.Cell{report.Str(key)}
		for i := 0; i < 6; i++ {
			if len(sm) == 0 {
				rowCells = append(rowCells, report.Str("-"))
				continue
			}
			idx := i * (len(sm) - 1) / 5
			pt := sm[idx]
			rowCells = append(rowCells, report.Num(pt.Acc, fmt.Sprintf("%.3f@%.0fs", pt.Acc, pt.Time)))
		}
		tl.AddRow(rowCells...)
		rep.AddSeries(report.SmoothedAccSeries(key, run, p.SmoothWindow))
	}
	rep.AddTable(tl)

	// Rule × pacer table.
	pt := report.NewTable("rule x pacer at poly:0.5",
		"rule", "pacer", "best acc", "final acc", "updates", "sec/update")
	for _, pr := range pacerRows {
		run, err := cellRun(pacerCells[pr])
		if err != nil {
			return nil, err
		}
		pacer := pr.pacer
		if pacer == "" {
			pacer = "client"
		}
		rep.Keep(pr.rule+"/"+pacer, run)
		pt.AddRow(append([]report.Cell{report.Str(pr.rule), report.Str(pacer)}, staleRow(run)...)...)
	}
	rep.AddTable(pt)

	// Anchor table: per-update vs oldest-member staleness on the buffered
	// pacer. delta > 0 is the per-update anchor's final-accuracy edge.
	perUpdateRun, err := cellRun(pacerCells[pacerRow{"fedasync", "fedbuff"}])
	if err != nil {
		return nil, err
	}
	batchRun, err := cellRun(batchCell)
	if err != nil {
		return nil, err
	}
	rep.Keep("anchor/batch", batchRun)
	at := report.NewTable(fmt.Sprintf("staleness anchor granularity (fedbuff pacer, K=%d)", staleBufferK),
		"anchor", "rule", "best acc", "final acc")
	at.AddRow(report.Str("oldest member"), report.Str("staleness:poly:0.5"),
		accCell(batchRun.BestAcc()), accCell(batchRun.FinalAcc()))
	at.AddRow(report.Str("per update"), report.Str("fedasync:poly:0.5"),
		accCell(perUpdateRun.BestAcc()), accCell(perUpdateRun.FinalAcc()))
	at.AddRow(report.Str("delta"), report.Str(""),
		report.Numf("%+.3f", perUpdateRun.BestAcc()-batchRun.BestAcc()),
		report.Numf("%+.3f", perUpdateRun.FinalAcc()-batchRun.FinalAcc()))
	rep.AddTable(at)

	// Adaptive-LR table: each pacer's off row is the matching cell above.
	alrClientRun, err := cellRun(alrClient)
	if err != nil {
		return nil, err
	}
	alrBufRun, err := cellRun(alrBuf)
	if err != nil {
		return nil, err
	}
	clientOff, err := cellRun(pacerCells[pacerRow{"fedasync", ""}])
	if err != nil {
		return nil, err
	}
	rep.Keep("adaptive-lr/client", alrClientRun)
	rep.Keep("adaptive-lr/fedbuff", alrBufRun)
	lt := report.NewTable("staleness-adaptive local LR (fedasync:poly:0.5)",
		"pacer", "adaptive LR", "best acc", "final acc")
	lt.AddRow(report.Str("client"), report.Str("off"), accCell(clientOff.BestAcc()), accCell(clientOff.FinalAcc()))
	lt.AddRow(report.Str("client"), report.Str("on"), accCell(alrClientRun.BestAcc()), accCell(alrClientRun.FinalAcc()))
	lt.AddRow(report.Str("fedbuff"), report.Str("off"), accCell(perUpdateRun.BestAcc()), accCell(perUpdateRun.FinalAcc()))
	lt.AddRow(report.Str("fedbuff"), report.Str("on"), accCell(alrBufRun.BestAcc()), accCell(alrBufRun.FinalAcc()))
	rep.AddTable(lt)

	// Topology pair: the headline buffered composition re-run through the
	// hierarchy machinery (edge:1 is the pass-through control; edge:2 shards
	// the population). The staleness knobs ride through ComposeDynamics —
	// the same path fedsim's -stale-* flags take.
	dyn := ComposeDynamics{
		Drift: dynBehavior.DriftMag, Churn: dynBehavior.ChurnFrac,
		BufferK: staleBufferK, StaleFunc: fl.StaleFuncPoly, StaleAlpha: 0.5,
	}
	edgeMethod, err := fl.Compose("fedasync", "", "fedbuff", staleSpec("fedasync", fl.StaleFuncPoly, 0.5), "fedasync:poly:0.5@fedbuff")
	if err != nil {
		return nil, err
	}
	et := report.NewTable("fedasync:poly:0.5@fedbuff across topologies",
		"topology", "best acc", "final acc", "edge folds", "mean staleness")
	for _, row := range []struct {
		key  string
		topo ComposeTopology
	}{
		{"edge1/sync", ComposeTopology{Edges: 1, Fold: "sync"}},
		{"edge2/sync", ComposeTopology{Edges: 2, Fold: "sync"}},
	} {
		run, err := RunComposedTopology(p, edgeMethod, dyn, row.topo)
		if err != nil {
			return nil, err
		}
		rep.Keep("topo/"+row.key, run)
		staleness := 0.0
		if run.EdgeFolds > 0 {
			staleness = run.EdgeStaleness / float64(run.EdgeFolds)
		}
		et.AddRow(report.Str(row.key),
			accCell(run.BestAcc()), accCell(run.FinalAcc()),
			report.Num(float64(run.EdgeFolds), fmt.Sprint(run.EdgeFolds)),
			report.Numf("%.2f", staleness))
	}
	rep.AddTable(et)

	rep.AddNote("Every cell shares the dynamics experiment's drifting, churning population — the regime where " +
		"update staleness actually spreads. Specs are the parameterized form rule[:func[:alpha[:threshold]]] " +
		"resolved by fl.ParseAgg, the same strings fedsim/fedserver take via -agg. The grid sweeps fedasync's " +
		"weight function and discount strength under wait-free client pacing; const is the no-discount control " +
		"(every stale update folds at full alpha), so columns read as how much discounting buys. The rule x " +
		"pacer table shows the family is pacing-agnostic: under sync pacing staleness is 0 by construction and " +
		"fedasync degrades to a plain alpha-blend; asyncsgd folds the staleness-weighted mean DELTA instead of " +
		"lerping toward each update — over cohorts of one (client pacing) the two rules coincide analytically, " +
		"which is why their client rows match, and they separate only once the buffered pacer folds real " +
		"cohorts. The buffered cells multiply the round budget by 24/K: a fedbuff fold consumes K wait-free " +
		"arrivals, so the default synchronous cap would starve it to a couple dozen folds. The anchor table " +
		"isolates the per-update StartRound redesign: with a " + fmt.Sprint(staleBufferK) + "-deep buffer the " +
		"oldest member's anchor over-discounts the fresh majority of each cohort, and weighting each update by " +
		"its own staleness recovers that accuracy. The adaptive-LR stage scales each dispatch's local learning " +
		"rate by the same weight function (shipped to live clients in the push header); at this scale the " +
		"damping costs accuracy within the fixed time budget — wait-free lineages run tens of updates stale, so " +
		"the poly weight cuts their LR several-fold — pricing the stability knob rather than advertising it. " +
		"The topology pair re-runs the buffered " +
		"composition through the hierarchy machinery: edge:1 must reproduce the flat engine bit for bit, and " +
		"edge:2 shards the population across two edge engines folding into a cloud model.")
	return rep, nil
}
