package experiments

import (
	"fmt"

	"repro/internal/report"
)

// table1Methods are the five methods Table 1 compares (ASO-Fed only appears
// in the large-scale section).
var table1Methods = []string{"tifl", "fedavg", "fedprox", "fedasync", "fedat"}

// table1Specs mirrors the paper's columns: CIFAR-10 at four non-IID levels
// plus IID, Fashion-MNIST at 2 classes, Sentiment140.
var table1Specs = []dsSpec{
	{name: "cifar10", classesPerClient: 2},
	{name: "cifar10", classesPerClient: 4},
	{name: "cifar10", classesPerClient: 6},
	{name: "cifar10", classesPerClient: 8},
	{name: "cifar10", classesPerClient: 0},
	{name: "fashion", classesPerClient: 2},
	{name: "sent140", classesPerClient: 2},
}

// Table1 reproduces "Comparison of prediction performance and variance to
// baseline approaches": best accuracy and cross-client accuracy variance
// (normalized to FedAT) for every method × dataset configuration, plus
// FedAT's improvement over the best and worst baselines.
func Table1(p Preset) (*Report, error) {
	rep := &Report{ID: "table1", Title: "Prediction performance and accuracy variance (paper Table 1)"}
	// Schedule the whole method × dataset grid at once; the per-spec loop
	// below then collects from the cache.
	if err := prefetch(p, table1Specs, table1Methods, "", nil); err != nil {
		return nil, err
	}

	accT := report.NewTable("Best test accuracy",
		append([]string{"method"}, specLabels(table1Specs)...)...)
	varT := report.NewTable("Accuracy variance across clients, normalized to FedAT (FedAT row absolute)",
		append([]string{"method"}, specLabels(table1Specs)...)...)
	imprT := report.NewTable("FedAT improvement over best (a) and worst (b) baseline",
		"dataset", "FedAT acc", "best baseline", "impr.(a)", "worst baseline", "impr.(b)")

	accRows := map[string][]report.Cell{}
	varRows := map[string][]report.Cell{}
	for _, m := range table1Methods {
		accRows[m] = []report.Cell{report.Str(methodLabel(m))}
		varRows[m] = []report.Cell{report.Str(methodLabel(m))}
	}

	for _, spec := range table1Specs {
		runs, err := cachedRunMethods(p, spec, table1Methods, "", nil)
		if err != nil {
			return nil, err
		}
		fedatVar := runs["fedat"].MeanVariance()
		bestBase, worstBase := 0.0, 1.0
		var bestName, worstName string
		for _, m := range table1Methods {
			run := runs[m]
			rep.Keep(spec.label()+"/"+m, run)
			accRows[m] = append(accRows[m], accCell(run.BestAcc()))
			if m == "fedat" {
				varRows[m] = append(varRows[m], report.Num(fedatVar, fmt.Sprintf("%.2e (abs)", fedatVar)))
				continue
			}
			norm := run.MeanVariance() / maxF(fedatVar, 1e-12)
			varRows[m] = append(varRows[m], report.Numf("%.2f", norm))
			if run.BestAcc() > bestBase {
				bestBase, bestName = run.BestAcc(), methodLabel(m)
			}
			if run.BestAcc() < worstBase {
				worstBase, worstName = run.BestAcc(), methodLabel(m)
			}
		}
		fa := runs["fedat"].BestAcc()
		imprT.AddRow(report.Str(spec.label()), accCell(fa),
			report.Num(bestBase, fmt.Sprintf("%s %s", bestName, fmtAcc(bestBase))), pctCell(fa-bestBase),
			report.Num(worstBase, fmt.Sprintf("%s %s", worstName, fmtAcc(worstBase))), pctCell(fa-worstBase))
	}
	for _, m := range table1Methods {
		accT.AddRow(accRows[m]...)
		varT.AddRow(varRows[m]...)
	}

	rep.AddTable(accT)
	rep.AddTable(varT)
	rep.AddTable(imprT)
	rep.AddNote("Paper shape: FedAT highest accuracy everywhere; FedAsync worst on non-IID; " +
		"variance of baselines 1.2–6.8× FedAT's; accuracy rises and variance falls as the non-IID level decreases.")
	return rep, nil
}

func specLabels(specs []dsSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.label()
	}
	return out
}

func methodLabel(name string) string {
	switch name {
	case "fedat":
		return "FedAT"
	case "fedavg":
		return "FedAvg"
	case "fedprox":
		return "FedProx"
	case "fedasync":
		return "FedAsync"
	case "tifl":
		return "TiFL"
	case "asofed":
		return "ASO-Fed"
	}
	return name
}

func pct(delta float64) string { return fmt.Sprintf("%+.2f%%", 100*delta) }

// pctCell is pct as a typed cell carrying the raw (fractional) delta.
func pctCell(delta float64) report.Cell { return report.Num(delta, pct(delta)) }

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
