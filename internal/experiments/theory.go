package experiments

import (
	"fmt"
	"math"

	"repro/internal/report"
)

// TheoryValidation empirically checks the convergence claims of §5 on the
// convex objective (logistic regression / Sentiment140, the setting of
// Theorem 5.1):
//
//  1. the optimality gap f(w_t) − f* shrinks over global updates and is
//     well fit by a geometric decay (Theorem 5.1's (1−2μBησ)^T term plus a
//     compression-induced floor),
//  2. the Eq. 5 weights B stay in (0, 1] and sum to 1 (the assumption
//     B ≤ 1 used throughout the proof),
//  3. the non-convex counterpart (Theorem 5.2) predicts the average
//     gradient-norm proxy decreases, observed here through the training
//     loss trend on the CNN/MLP objective.
func TheoryValidation(p Preset) (*Report, error) {
	rep := &Report{ID: "theory", Title: "Empirical check of the §5 convergence analysis"}

	// Both theorem checks' cells in one batch (convex sent140, non-convex
	// cifar10), shared with Table 1 / Figure 2 when those already ran.
	spec := dsSpec{name: "sent140", classesPerClient: 2}
	specNC := dsSpec{name: "cifar10", classesPerClient: 2}
	if err := prefetch(p, []dsSpec{spec, specNC}, []string{"fedat"}, "", nil); err != nil {
		return nil, err
	}

	// Convex case: logistic regression (Theorem 5.1).
	runs, err := cachedRunMethods(p, spec, []string{"fedat"}, "", nil)
	if err != nil {
		return nil, err
	}
	run := runs["fedat"]
	rep.Keep("convex", run)

	// f* is unknown; the best observed loss is the plug-in estimate, and
	// the gap series uses losses before that point.
	fStar := math.Inf(1)
	for _, pt := range run.Points {
		if pt.Loss < fStar {
			fStar = pt.Loss
		}
	}
	tb := report.NewTable("Theorem 5.1 (convex): optimality gap over global updates",
		"global round t", "loss f(w_t)", "gap f(w_t)−f*")
	gapSeries := report.Series{Name: "convex/gap_vs_round", X: "round", Y: "gap"}
	gaps := make([]float64, 0, len(run.Points))
	for i := 0; i < len(run.Points); i += maxI(1, len(run.Points)/8) {
		pt := run.Points[i]
		gap := pt.Loss - fStar
		gaps = append(gaps, gap)
		gapSeries.Pts = append(gapSeries.Pts, report.XY{X: float64(pt.Round), Y: gap})
		tb.AddRow(report.Num(float64(pt.Round), fmt.Sprint(pt.Round)),
			report.Numf("%.4f", pt.Loss), report.Numf("%.4f", gap))
	}
	rep.AddTable(tb)
	rep.AddSeries(gapSeries)

	// Trend check: the second half's mean gap must sit below the first
	// half's (monotone-in-expectation decay).
	firstHalf, secondHalf := meanOf(gaps[:len(gaps)/2]), meanOf(gaps[len(gaps)/2:])
	verdict := "DECREASING (consistent with geometric decay to a compression floor)"
	if !(secondHalf < firstHalf) {
		verdict = "NOT decreasing — inconsistent with Theorem 5.1"
	}
	rep.AddScalar("convex/mean_gap_first_half", firstHalf, "loss")
	rep.AddScalar("convex/mean_gap_second_half", secondHalf, "loss")
	rep.AddNote(fmt.Sprintf("Mean gap, first half %.4f vs second half %.4f: %s",
		firstHalf, secondHalf, verdict))

	// Non-convex case (Theorem 5.2): the loss trend on the image model.
	runsNC, err := cachedRunMethods(p, specNC, []string{"fedat"}, "", nil)
	if err != nil {
		return nil, err
	}
	runNC := runsNC["fedat"]
	rep.Keep("nonconvex", runNC)
	first, last := runNC.Points[0].Loss, runNC.FinalLoss()
	rep.AddScalar("nonconvex/first_loss", first, "loss")
	rep.AddScalar("nonconvex/final_loss", last, "loss")
	rep.AddNote(fmt.Sprintf("Theorem 5.2 (non-convex) proxy: training objective fell from %.4f to %.4f "+
		"over %d updates (bounded-average-gradient claim).", first, last, runNC.GlobalRounds))
	return rep, nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
