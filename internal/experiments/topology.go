package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// ComposeTopology selects the client topology for compose mode and the
// hierarchy experiment: flat (the zero value) or a K-edge hierarchy where
// the population is sharded across K edge aggregators, each running the
// full unmodified method engine, folding up into a cloud model.
type ComposeTopology struct {
	// Edges is K; 0 means flat (no hierarchy layer at all). Edges=1 runs
	// the hierarchy machinery as a pass-through, bit-identical to flat.
	Edges int
	// Fold is the edge→cloud policy (edge.FoldSync / edge.FoldAsync);
	// Buffer its async push budget.
	Fold   string
	Buffer int
	// TopKFrac enables the top-k delta uplink compressor (0 = raw).
	TopKFrac float64
	// Workers lets edge-local events of distinct edges execute on that
	// many OS workers (simnet.MultiClock.DriveWorkers); <=1 keeps the
	// serial driver. Results are bit-identical at any value.
	Workers int
}

// edgeSeedStride separates the per-edge data and cluster seeds. Edge 0
// keeps the flat seeds unchanged — with one edge, the hierarchy's single
// shard IS the flat population, which is what makes edge:1 ≡ flat exact.
const edgeSeedStride = 1009

// runHierarchy builds K per-edge environments by sharding the preset's
// population contiguously — edge e gets its own federated dataset and its
// own cluster, seeds offset by e so shards draw distinct data and latency
// populations — and runs the simulated hierarchy on one merged timeline.
func runHierarchy(p Preset, d dsSpec, m fl.Method, dyn ComposeDynamics, topo ComposeTopology, mutate func(*fl.RunConfig)) (*edge.Result, error) {
	k := topo.Edges
	if k <= 0 {
		return nil, fmt.Errorf("experiments: hierarchy needs at least one edge")
	}
	total := p.Clients
	if d.large {
		total = p.LargeClients
	}
	if k > total {
		return nil, fmt.Errorf("experiments: %d edges over %d clients", k, total)
	}

	cfg := runConfig(p, d)
	dyn.applyRun(&cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	applyRoundBudget(&cfg, m)

	behavior := dyn.behavior()

	children := make([]edge.Child, k)
	var factory fl.ModelFactory
	var allShards []*dataset.ClientData
	for e := 0; e < k; e++ {
		n := total / k
		if e < total%k {
			n++
		}
		if cfg.NumTiers > n {
			return nil, fmt.Errorf("experiments: edge %d has %d clients for %d tiers", e, n, cfg.NumTiers)
		}
		fedE, err := buildFedSized(p, d, n, uint64(e)*edgeSeedStride)
		if err != nil {
			return nil, err
		}
		if factory == nil {
			factory = modelFactory(p, fedE)
		}
		allShards = append(allShards, fedE.Clients...)
		ccfg := clusterConfig(p, n, nil)
		ccfg.Seed = p.Seed + uint64(e)*edgeSeedStride
		ccfg.Behavior = behavior
		cluster, err := simnet.NewCluster(ccfg)
		if err != nil {
			return nil, err
		}
		env, err := fl.NewEnv(fedE, cluster, factory, cfg)
		if err != nil {
			return nil, err
		}
		children[e] = edge.Child{Fabric: env.FabricOn}
	}

	opts := edge.Options{
		Fold:     topo.Fold,
		Buffer:   topo.Buffer,
		TopKFrac: topo.TopKFrac,
		Workers:  topo.Workers,
	}
	if k > 1 {
		// The cloud evaluates its merged model over the union population.
		// A 1-edge hierarchy skips this: its record IS the edge engine's,
		// already evaluated on the engine's own cadence.
		ev := fl.NewDataEvaluator(factory, p.Seed, allShards)
		opts.Eval = func(w []float64) (fl.Result, bool) { return ev.Evaluate(w), true }
		opts.EvalEvery = cfg.EvalEvery
	}
	return edge.Run(m, cfg, children, opts)
}

// buildFedSized is buildFed with an explicit client count and a data-seed
// offset — the per-edge shard construction.
func buildFedSized(p Preset, d dsSpec, clients int, seedOffset uint64) (*dataset.Federated, error) {
	seed := p.Seed + uint64(d.classesPerClient) + seedOffset
	switch d.name {
	case "cifar10":
		return dataset.CIFAR10Like(clients, d.classesPerClient, p.DataScale, seed)
	case "fashion":
		return dataset.FashionLike(clients, d.classesPerClient, p.DataScale, seed)
	case "sent140":
		return dataset.Sent140Like(clients, d.classesPerClient, p.DataScale, seed)
	case "femnist":
		return dataset.FEMNISTLike(clients, p.DataScale, seed)
	case "reddit":
		return dataset.RedditLike(clients, p.DataScale, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", d.name)
	}
}

// RunComposedTopology is RunComposedDynamics over an optional hierarchy:
// with a flat topology it is exactly RunComposedDynamics; with edge:K it
// runs K engines over sharded populations on one merged timeline and
// returns the cloud-level run (edge folds, staleness, cloud traffic,
// merged-model evaluations). Event observers are a flat-topology feature —
// a hierarchy has K event streams, so -trace style observers are rejected.
func RunComposedTopology(p Preset, m fl.Method, dyn ComposeDynamics, topo ComposeTopology, obs ...fl.Observer) (*metrics.Run, error) {
	if topo.Edges <= 0 {
		return RunComposedDynamics(p, m, dyn, obs...)
	}
	if len(obs) > 0 {
		return nil, fmt.Errorf("experiments: event observers are not supported with an edge topology (a hierarchy has one stream per edge)")
	}
	return simulateDirect(func() (*metrics.Run, error) {
		res, err := runHierarchy(p, dsSpec{name: "cifar10", classesPerClient: 2}, m, dyn, topo, nil)
		if err != nil {
			return nil, err
		}
		return res.Cloud, nil
	})
}
