package fl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

// Steady-state allocation ceilings for the aggregation fold path and for
// whole engine rounds. The fold rules rewrite reused tier models, the Eq. 5
// scratch and per-client copies in place, so every fold shape the engine
// drives in steady state must allocate nothing; the full-run ceilings catch
// any alloc creeping back anywhere in the round loop (selection, pacing,
// training, transport, folding) before the benchmark gate notices it.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("-race instruments allocations; AllocsPerRun counts are meaningless")
	}
}

func assertFoldAllocs(t *testing.T, what string, ceiling float64, f func()) {
	t.Helper()
	f() // warm up: first folds grow scratch to shape
	f()
	if got := testing.AllocsPerRun(50, f); got > ceiling {
		t.Errorf("%s allocates %.1f times per fold in steady state, ceiling %.0f", what, got, ceiling)
	}
}

// TestFoldAllocFree pins every UpdateRule's steady-state fold at zero
// allocations, in the shapes the engine actually drives: tiered folds
// (FedAT's tier rounds, FedAvg's single tier) and single-update untiered
// folds (the wait-free async client loops).
func TestFoldAllocFree(t *testing.T) {
	skipUnderRace(t)
	const dim = 512
	w0 := fuzzVec(1, dim)
	cohort := func(n int) []core.ClientUpdate {
		us := make([]core.ClientUpdate, n)
		for i := range us {
			us[i] = core.ClientUpdate{Weights: fuzzVec(uint64(i+2), dim), N: i + 3, Client: i}
		}
		return us
	}

	t.Run("avg", func(t *testing.T) {
		agg, err := core.NewAggregator(1, w0, true)
		if err != nil {
			t.Fatal(err)
		}
		rule := &avgRule{agg: agg}
		us := cohort(5)
		assertFoldAllocs(t, "avg fold", 0, func() {
			if _, err := rule.Fold(Fold{Tier: 0, Updates: us}); err != nil {
				t.Fatal(err)
			}
		})
	})

	for _, uniform := range []bool{false, true} {
		name := "eq5"
		if uniform {
			name = "uniform"
		}
		t.Run(name, func(t *testing.T) {
			agg, err := core.NewAggregator(3, w0, !uniform)
			if err != nil {
				t.Fatal(err)
			}
			rule := &eq5Rule{agg: agg, assignment: []int{0, 1, 2, 0, 1}, forceUniform: uniform}
			us := cohort(3)
			tier := 0
			assertFoldAllocs(t, name+" tiered fold", 0, func() {
				if _, err := rule.Fold(Fold{Tier: tier % 3, Updates: us}); err != nil {
					t.Fatal(err)
				}
				tier++
			})
			one := cohort(1)
			assertFoldAllocs(t, name+" untiered single fold", 0, func() {
				if _, err := rule.Fold(Fold{Tier: -1, Updates: one}); err != nil {
					t.Fatal(err)
				}
			})
		})
	}

	t.Run("staleness", func(t *testing.T) {
		rule := &stalenessRule{global: fuzzVec(1, dim), alpha: 0.6, sc: StalenessConfig{Func: StaleFuncPoly, Alpha: 0.5}}
		us := cohort(1)
		assertFoldAllocs(t, "staleness fold", 0, func() {
			if _, err := rule.Fold(Fold{Tier: -1, Updates: us}); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("fedasync", func(t *testing.T) {
		rule := &fedasyncRule{global: fuzzVec(1, dim), alpha: 0.6, sc: StalenessConfig{Func: StaleFuncPoly, Alpha: 0.5}}
		us := cohort(4)
		assertFoldAllocs(t, "fedasync fold", 0, func() {
			if _, err := rule.Fold(Fold{Tier: -1, Updates: us}); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("asyncsgd", func(t *testing.T) {
		rule := &asyncSGDRule{global: fuzzVec(1, dim), delta: make([]float64, dim), alpha: 0.6, sc: StalenessConfig{Func: StaleFuncExp, Alpha: 0.3}}
		us := cohort(4)
		assertFoldAllocs(t, "asyncsgd fold", 0, func() {
			if _, err := rule.Fold(Fold{Tier: -1, Updates: us}); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("asofed", func(t *testing.T) {
		rule := &asoRule{copies: make([][]float64, 5), copySum: make([]float64, dim), global: make([]float64, dim)}
		for c := range rule.copies {
			rule.copies[c] = fuzzVec(1, dim)
			rule.totalN += c + 3
		}
		us := cohort(1)
		assertFoldAllocs(t, "asofed fold", 0, func() {
			if _, err := rule.Fold(Fold{Tier: -1, Updates: us}); err != nil {
				t.Fatal(err)
			}
		})
	})
}

// TestEngineRoundAllocCeiling pins the allocation budget of full engine
// runs on the simulated fabric: after the first run has grown the per-run
// pools and scratch to size, a whole R-round run must stay under a small
// per-round ceiling. The ceilings have headroom over measured steady state
// (a few allocs/round from cohort bookkeeping and eval) but sit far below
// one alloc per client per parameter-vector — the regression this test
// exists to catch.
func TestEngineRoundAllocCeiling(t *testing.T) {
	skipUnderRace(t)
	if testing.Short() {
		t.Skip("full engine runs in -short")
	}
	const rounds = 6
	for _, m := range []string{"fedavg", "fedat"} {
		t.Run(m, func(t *testing.T) {
			cfg := baseCfg()
			cfg.Rounds = rounds
			cfg.EvalEvery = 3
			env := testEnv(t, 0, cfg)
			run := func() {
				env.ResetState()
				mustRun(t, m, env)
			}
			run() // warm up pools, caches, per-client model replicas
			run()
			perRun := testing.AllocsPerRun(3, run)
			ceiling := 80.0 * rounds // measured ~33/round fedavg, ~51/round fedat
			if perRun > ceiling {
				t.Errorf("%s: %.0f allocs per %d-round run (%.1f/round), ceiling %.0f",
					m, perRun, rounds, perRun/rounds, ceiling)
			}
			t.Logf("%s: %.1f allocs/round steady state", m, perRun/rounds)
		})
	}
}
