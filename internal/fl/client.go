// Package fl assembles the substrates into runnable federated-learning
// methods. A method is a declarative composition of pluggable policies —
// a Selector (who trains), a Pacer (when rounds happen), an UpdateRule
// (how updates fold into the global model) and a LocalPolicy (how clients
// train locally) — plus an Observer event stream every run emits. The
// registry expresses the seven methods the paper compares (FedAT and the
// FedAvg, FedProx, TiFL, FedAsync, ASO-Fed and over-selection baselines)
// as such compositions, and novel variants are just different field
// values. The engine is generic over an execution Fabric: Method.Run uses
// the discrete-event simulator (one clock, one straggler model, bit-exact
// reproducibility), and Method.RunOn drives the identical policy loop over
// any other fabric — internal/transport's live TCP deployment being the
// second.
package fl

import (
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Client couples one participant's local data, model replica, optimizer and
// simulated runtime. A Client is owned by one goroutine at a time; the
// round runners enforce that.
type Client struct {
	ID      int
	Data    *dataset.ClientData
	Net     *nn.Network
	Opt     opt.Optimizer
	Runtime *simnet.ClientRuntime
	// Attack is the client's malicious behavior (zero value = honest).
	// Applied inside TrainLocal, so the simulated and live fabrics poison
	// identically.
	Attack robust.Attack

	scheduleRNG *rng.RNG // fixed pseudo-random mini-batch schedule (§6)
	dpRNG       *rng.RNG // differential-privacy noise stream (dpStreamBase)
	batchX      *tensor.Mat
	batchY      []int
	batchView   tensor.Mat // retargeted remainder-batch view over batchX
	perm        []int      // per-epoch shuffle order, reused across rounds
	wOut        []float64  // result buffer, reused across rounds
}

// Per-client stream bases off the run seed. The schedule base predates the
// DP stage; DP noise gets its own disjoint base so enabling the clip stage
// cannot perturb the batch schedule (and a DP-off run draws nothing).
const (
	scheduleStreamBase = 500_000
	dpStreamBase       = 600_000
)

// NewLocalClient builds a Client without a simulated runtime, for callers
// that live on real clocks (the TCP transport) or drive training directly
// (tests, examples).
func NewLocalClient(id int, data *dataset.ClientData, net *nn.Network, o opt.Optimizer, seed uint64) *Client {
	return &Client{
		ID:          id,
		Data:        data,
		Net:         net,
		Opt:         o,
		scheduleRNG: rng.New(seed).SplitLabeled(uint64(scheduleStreamBase + id)),
		dpRNG:       rng.New(seed).SplitLabeled(uint64(dpStreamBase + id)),
	}
}

// LocalConfig drives one round of local training.
type LocalConfig struct {
	Epochs    int
	BatchSize int
	// Lambda is the proximal coefficient of Eq. 3; 0 disables the
	// constraint (plain FedAvg-style local SGD).
	Lambda float64
	// Round selects the client's fixed pseudo-random mini-batch schedule:
	// the same (client, round) pair always yields the same batches, the
	// fairness device of §6 applied across all compared methods.
	Round uint64
	// DPClip > 0 enables the per-client differential-privacy stage: the
	// local delta is clipped to this L2 norm and perturbed with Gaussian
	// noise of per-coordinate stddev DPNoise·DPClip, drawn from the
	// client's dedicated DP stream labeled by Round. 0 disables the stage
	// (and draws nothing).
	DPClip  float64
	DPNoise float64
	// LRScale multiplies the optimizer's learning rate for this round —
	// the staleness-adaptive LR stage (RunConfig.AdaptiveLR). 0 means the
	// stage is off, and a scale of exactly 1 is skipped too, so stage-off
	// (and zero-staleness) rounds are bit-identical to builds without the
	// field.
	LRScale float64
}

// Steps returns the number of mini-batch steps a round performs on n
// samples — also the unit of simulated compute time.
func (lc LocalConfig) Steps(n int) int {
	if n == 0 {
		return 0
	}
	perEpoch := (n + lc.BatchSize - 1) / lc.BatchSize
	return perEpoch * lc.Epochs
}

// TrainLocal runs the paper's local update: starting from globalW, perform
// Epochs passes of mini-batch training minimizing
// h_k(w) = F_k(w) + λ/2·‖w−globalW‖² (Eq. 3), and return the resulting
// weights plus the number of batch steps executed.
//
// The returned slice is a per-client buffer reused by this client's next
// TrainLocal call: callers must encode, copy or fold it before the client
// trains again. The round runners satisfy this by construction — a client's
// upload is transmitted before its next round starts.
func (c *Client) TrainLocal(globalW []float64, lc LocalConfig) ([]float64, int) {
	n := c.Data.NumTrain()
	if n == 0 {
		c.wOut = tensor.EnsureVec(c.wOut, len(globalW))
		copy(c.wOut, globalW)
		return c.wOut, 0
	}
	c.Net.SetWeights(globalW)
	c.Opt.Reset()
	if lc.LRScale > 0 && lc.LRScale != 1 {
		defer scaleLR(c.Opt, lc.LRScale)()
	}

	bs := lc.BatchSize
	if bs > n {
		bs = n
	}
	if c.batchX == nil || c.batchX.R != bs || c.batchX.C != c.Data.TrainX.C {
		c.batchX = tensor.NewMat(bs, c.Data.TrainX.C)
		c.batchY = make([]int, bs)
	}
	if cap(c.perm) >= n {
		c.perm = c.perm[:n]
	} else {
		c.perm = make([]int, n)
	}

	sched := c.scheduleRNG.SplitLabeledValue(lc.Round)
	steps := 0
	for e := 0; e < lc.Epochs; e++ {
		sched.PermInto(c.perm)
		order := c.perm
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			m := hi - lo
			bx := c.batchX
			by := c.batchY
			if m != bs {
				bx = c.batchView.View(m, c.Data.TrainX.C, c.batchX.Data[:m*c.Data.TrainX.C])
				by = c.batchY[:m]
			}
			for i := 0; i < m; i++ {
				src := order[lo+i]
				copy(bx.Row(i), c.Data.TrainX.Row(src))
				by[i] = c.Attack.FlipLabel(c.Data.TrainY[src])
			}
			c.Net.ZeroGrad()
			c.Net.Backprop(bx, by)
			opt.AddProximal(c.Net.Grads(), c.Net.Weights(), globalW, lc.Lambda)
			c.Opt.Step(c.Net.Weights(), c.Net.Grads())
			steps++
		}
	}
	c.wOut = tensor.EnsureVec(c.wOut, len(globalW))
	copy(c.wOut, c.Net.Weights())
	c.Attack.ApplyDelta(c.wOut, globalW)
	if lc.DPClip > 0 && c.dpRNG != nil {
		g := c.dpRNG.SplitLabeledValue(lc.Round)
		robust.Sanitize(c.wOut, globalW, lc.DPClip, lc.DPNoise, &g)
	}
	return c.wOut, steps
}

// scaleLR multiplies the optimizer's learning rate for the duration of one
// local round and returns the restore function. Both solvers export their
// rate, so the scale composes with per-coordinate state (Adam's moments
// are rate-independent); unknown optimizer types train unscaled — the
// engine's LR scale is an optimization hint, not a correctness contract.
func scaleLR(o opt.Optimizer, s float64) func() {
	switch v := o.(type) {
	case *opt.SGD:
		old := v.LR
		v.LR *= s
		return func() { v.LR = old }
	case *opt.Adam:
		old := v.LR
		v.LR *= s
		return func() { v.LR = old }
	}
	return func() {}
}

// EvalLocal evaluates weights w on the client's held-out split and returns
// (correct, total, loss·total) so callers can aggregate.
func (c *Client) EvalLocal(w []float64) (correct, total int, lossSum float64) {
	total = c.Data.NumTest()
	if total == 0 {
		return 0, 0, 0
	}
	c.Net.SetWeights(w)
	correct, loss := c.Net.Eval(c.Data.TestX, c.Data.TestY)
	return correct, total, loss * float64(total)
}
