package fl

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestNovelCompositionsRun assembles method variants that exist nowhere in
// the registry purely from policy keys and checks they train end to end —
// the point of the composable API.
func TestNovelCompositionsRun(t *testing.T) {
	variants := []Method{
		// Over-selection inside FedAT's tiered async loop.
		{Name: "FedAT+oversel", Select: "oversel", Pace: "tier", Update: "eq5", Local: LocalPolicy{Prox: true}},
		// TiFL's credit selection feeding the Eq. 5 cross-tier fold.
		{Name: "TiFL+eq5fold", Select: "tifl", Pace: "sync", Update: "eq5"},
		// Wait-free client loops folding into per-tier models.
		{Name: "Async+eq5", Select: "all", Pace: "client", Update: "eq5"},
		// Untiered sync selection routed into per-tier models by each
		// client's profiled tier (regression: tier -1 must not collapse
		// into tier 0, which freezes the Eq. 5 blend near w0).
		{Name: "FedAvg+eq5", Select: "random", Pace: "sync", Update: "eq5"},
		// FedAvg with the uniform-weight ablation rule.
		{Name: "FedAvg+uniform", Select: "random", Pace: "sync", Update: "uniform"},
	}
	for _, m := range variants {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			cfg := baseCfg()
			cfg.Rounds = 20
			run, err := m.Run(testEnv(t, 0, cfg))
			if err != nil {
				t.Fatal(err)
			}
			if run.GlobalRounds == 0 {
				t.Fatal("no global rounds completed")
			}
			if len(run.Points) == 0 {
				t.Fatal("no evaluations recorded")
			}
			if run.Method != m.Name {
				t.Fatalf("run labelled %q, want %q", run.Method, m.Name)
			}
			if best := run.BestAcc(); best < 0.15 {
				t.Fatalf("composition failed to learn: %.3f", best)
			}
		})
	}
}

// TestCompositionsDeterministic re-runs a novel composition on identical
// environments and requires bit-identical metrics — compositions inherit
// the repository-wide reproducibility guarantee.
func TestCompositionsDeterministic(t *testing.T) {
	m := Method{Name: "FedAT+oversel", Select: "oversel", Pace: "tier", Update: "eq5", Local: LocalPolicy{Prox: true}}
	run := func() *metrics.Run {
		cfg := baseCfg()
		cfg.Rounds = 12
		r, err := m.Run(testEnv(t, 2, cfg))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.UpBytes != b.UpBytes || len(a.Points) != len(b.Points) {
		t.Fatalf("composition not deterministic: up=%d/%d points=%d/%d",
			a.UpBytes, b.UpBytes, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d diverged: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// TestCompositionValidation checks that malformed compositions surface as
// errors, not panics.
func TestCompositionValidation(t *testing.T) {
	cases := []struct {
		m    Method
		want string
	}{
		{Method{Name: "X", Select: "bogus", Pace: "sync", Update: "avg"}, "unknown selector"},
		{Method{Name: "X", Select: "random", Pace: "bogus", Update: "avg"}, "unknown pacer"},
		{Method{Name: "X", Select: "random", Pace: "sync", Update: "bogus"}, "unknown update rule"},
		{Method{Name: "X", Select: "all", Pace: "sync", Update: "avg"}, "needs a round selector"},
		{Method{Name: "X", Select: "all", Pace: "tier", Update: "avg"}, "needs a tier selector"},
		{Method{Name: "X", Select: "oversel", Pace: "client", Update: "staleness"}, "no cohort selection"},
		{Method{Select: "random", Pace: "sync", Update: "avg"}, "no name"},
	}
	cfg := baseCfg()
	env := testEnv(t, 0, cfg)
	for _, c := range cases {
		_, err := c.m.Run(env)
		if err == nil {
			t.Errorf("%s/%s/%s: invalid composition accepted", c.m.Select, c.m.Pace, c.m.Update)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not mention %q", err, c.want)
		}
	}
}

// TestTieringErrorPropagates forces the latency partition to fail (more
// tiers than clients) and requires the error to come back through Run —
// this used to be a panic inside FedAT and TiFL.
func TestTieringErrorPropagates(t *testing.T) {
	for _, name := range []string{"fedat", "tifl"} {
		cfg := baseCfg()
		cfg.NumTiers = 50 // testEnv has 20 clients
		env := testEnv(t, 0, cfg)
		if _, err := Run(name, env); err == nil {
			t.Errorf("%s: impossible tiering accepted", name)
		}
	}
}

// TestObserverEventStream subscribes an observer and cross-checks the
// event stream against the recorded run: every fold advances the round
// count, every Eval event is exactly one recorded point.
func TestObserverEventStream(t *testing.T) {
	var starts, folds, dones, drops int
	var evals []EvalEvent
	obs := ObserverFunc(func(ev Event) {
		switch e := ev.(type) {
		case RoundStartEvent:
			starts++
			if len(e.Clients) == 0 {
				t.Error("round started with no clients")
			}
		case ClientDoneEvent:
			dones++
			if e.Dropped {
				drops++
			}
		case TierFoldEvent:
			folds++
			if e.Kept <= 0 {
				t.Errorf("fold with %d updates", e.Kept)
			}
		case EvalEvent:
			evals = append(evals, e)
		}
	})
	cfg := baseCfg()
	cfg.Rounds = 15
	run := mustRun(t, "fedat", testEnv(t, 0, cfg), obs)

	if folds != run.GlobalRounds {
		t.Errorf("%d fold events, run records %d global rounds", folds, run.GlobalRounds)
	}
	if starts < folds {
		t.Errorf("%d round starts < %d folds", starts, folds)
	}
	if dones < folds {
		t.Errorf("%d client-done events < %d folds", dones, folds)
	}
	if len(evals) != len(run.Points) {
		t.Fatalf("%d eval events, run records %d points", len(evals), len(run.Points))
	}
	for i, e := range evals {
		p := run.Points[i]
		if e.Round != p.Round || e.Time != p.Time || e.Result.Acc != p.Acc ||
			e.UpBytes != p.UpBytes || e.DownBytes != p.DownBytes {
			t.Fatalf("eval event %d disagrees with recorded point: %+v vs %+v", i, e, p)
		}
	}
}
