package fl

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
)

// TestAllMethodsDeterministic runs every registered method twice on
// identical environments and requires bit-identical metrics — the
// repository-wide reproducibility guarantee (parallel client training, RNG
// splitting and event ordering must all be order-independent).
func TestAllMethodsDeterministic(t *testing.T) {
	for _, name := range MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() *[2]int64 {
				cfg := baseCfg()
				cfg.Rounds = 12
				env := testEnv(t, 2, cfg)
				r := mustRun(t, name, env)
				sig := [2]int64{r.UpBytes, int64(r.GlobalRounds)}
				for _, p := range r.Points {
					sig[0] += int64(p.Acc * 1e12)
					sig[1] += int64(p.Var * 1e12)
				}
				return &sig
			}
			a, b := run(), run()
			if *a != *b {
				t.Fatalf("%s not deterministic: %v vs %v", name, *a, *b)
			}
		})
	}
}

// TestEnvReuseDeterministic pins the reuse contract the benchmarks lean
// on: after ResetState, a second run on the SAME Env is bit-identical to a
// run on a freshly built one — no optimizer state, link reservation or
// delay-stream position survives a run.
func TestEnvReuseDeterministic(t *testing.T) {
	for _, name := range []string{"fedavg", "fedprox", "fedat", "fedasync", "asofed"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sig := func(r *metrics.Run) [2]int64 {
				s := [2]int64{r.UpBytes, int64(r.GlobalRounds)}
				for _, p := range r.Points {
					s[0] += int64(p.Acc * 1e12)
					s[1] += int64(p.Var * 1e12)
				}
				return s
			}
			cfg := baseCfg()
			cfg.Rounds = 10
			fresh := sig(mustRun(t, name, testEnv(t, 2, cfg)))
			env := testEnv(t, 2, cfg)
			first := sig(mustRun(t, name, env))
			env.ResetState()
			second := sig(mustRun(t, name, env))
			if first != fresh {
				t.Fatalf("%s: first run on reusable env differs from fresh env: %v vs %v", name, first, fresh)
			}
			if second != fresh {
				t.Fatalf("%s: run after ResetState differs from fresh env: %v vs %v", name, second, fresh)
			}
		})
	}
}

// TestMethodsIsolatedFromEachOther ensures one method's run does not leak
// state into another's when sharing the same seed (fresh environments are
// rebuilt, RNG streams are method-labelled).
func TestMethodsIsolatedFromEachOther(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 8
	// Run FedAvg alone.
	alone := mustRun(t, "fedavg", testEnv(t, 0, cfg))
	// Run FedAT first, then FedAvg.
	mustRun(t, "fedat", testEnv(t, 0, cfg))
	after := mustRun(t, "fedavg", testEnv(t, 0, cfg))
	if alone.UpBytes != after.UpBytes || alone.BestAcc() != after.BestAcc() {
		t.Fatalf("FedAvg results depend on a preceding FedAT run: %v/%v vs %v/%v",
			alone.UpBytes, alone.BestAcc(), after.UpBytes, after.BestAcc())
	}
}

// TestSeedChangesResults guards against accidentally ignoring the seed.
func TestSeedChangesResults(t *testing.T) {
	mk := func(seed uint64) float64 {
		cfg := baseCfg()
		cfg.Rounds = 10
		cfg.Seed = seed
		env := testEnv(t, 2, cfg)
		return mustRun(t, "fedat", env).BestAcc()
	}
	a, b := mk(1), mk(2)
	if a == b {
		// Accuracies could collide; check the byte counters too before
		// declaring failure.
		cfg := baseCfg()
		cfg.Rounds = 10
		cfg.Seed = 1
		r1 := mustRun(t, "fedat", testEnv(t, 2, cfg))
		cfg.Seed = 2
		r2 := mustRun(t, "fedat", testEnv(t, 2, cfg))
		if r1.UpBytes == r2.UpBytes && fmt.Sprint(r1.Points) == fmt.Sprint(r2.Points) {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

// TestDropoutsReduceParticipants injects universal dropout and checks the
// system degrades gracefully rather than deadlocking: runs end, and rounds
// that lose every client yield no update instead of a hang.
func TestDropoutsReduceParticipants(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 20
	env := testEnv(t, 0, cfg)
	// Force ALL clients to drop very early.
	for _, c := range env.Clients {
		c.Runtime.DropAt = 3.0
	}
	run := mustRun(t, "fedavg", env)
	if run.GlobalRounds > 3 {
		t.Fatalf("rounds kept completing after universal dropout: %d", run.GlobalRounds)
	}
	env2 := testEnv(t, 0, cfg)
	for _, c := range env2.Clients {
		c.Runtime.DropAt = 3.0
	}
	run2 := mustRun(t, "fedat", env2)
	if run2.GlobalRounds > 10 {
		t.Fatalf("FedAT kept updating after universal dropout: %d", run2.GlobalRounds)
	}
}
