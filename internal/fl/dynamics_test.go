package fl

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// dynamicEnv is testEnv over a drifting, churning, late-joining population.
func dynamicEnv(t *testing.T, cfg RunConfig) *Env {
	t.Helper()
	fed, err := dataset.FashionLike(20, 2, dataset.ScaleSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients:  20,
		NumUnstable: 2,
		DropHorizon: 2000,
		SecPerBatch: 0.05,
		UpBW:        1 << 20,
		DownBW:      1 << 20,
		ServerBW:    8 << 20,
		Behavior: simnet.BehaviorConfig{
			DriftMag:        0.5,
			DriftInterval:   10,
			ChurnFrac:       0.25,
			ChurnOn:         [2]float64{30, 80},
			ChurnOff:        [2]float64{10, 40},
			LateJoinFrac:    0.1,
			LateJoinHorizon: 60,
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 16, fed.Classes)
	}
	env, err := NewEnv(fed, cluster, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// runSig condenses a run into a comparable signature: byte totals, rounds,
// retier stats and the bit pattern of every evaluation point.
func runSig(r *metrics.Run) string {
	s := fmt.Sprintf("up=%d down=%d rounds=%d retiers=%d migrations=%d",
		r.UpBytes, r.DownBytes, r.GlobalRounds, r.Retiers, r.TierMigrations)
	for _, p := range r.Points {
		s += fmt.Sprintf("|%d:%x:%x:%x", p.Round, p.Time, p.Acc, p.Var)
	}
	return s
}

// TestDynamicsDeterministic: with drift, churn, late joins AND runtime
// re-tiering all enabled, two identical seeded runs are bit-identical — the
// repository-wide reproducibility guarantee extends to the dynamic regime.
func TestDynamicsDeterministic(t *testing.T) {
	for _, name := range []string{"fedat", "fedasync"} {
		t.Run(name, func(t *testing.T) {
			run := func() string {
				cfg := baseCfg()
				cfg.Rounds = 30
				cfg.RetierEvery = 3
				return runSig(mustRun(t, name, dynamicEnv(t, cfg)))
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("%s not deterministic under dynamics:\n%s\nvs\n%s", name, a, b)
			}
		})
	}
}

// TestRetierNoOpForSyncPacing: RetierEvery must not perturb synchronously
// paced methods — the paper's baselines do not re-profile, so their runs
// with and without the knob are bit-identical even on a dynamic population.
func TestRetierNoOpForSyncPacing(t *testing.T) {
	for _, name := range []string{"fedavg", "tifl"} {
		t.Run(name, func(t *testing.T) {
			run := func(retier int) string {
				cfg := baseCfg()
				cfg.Rounds = 10
				cfg.RetierEvery = retier
				return runSig(mustRun(t, name, dynamicEnv(t, cfg)))
			}
			with, without := run(2), run(0)
			if with != without {
				t.Fatalf("%s run changed when RetierEvery was set:\n%s\nvs\n%s", name, with, without)
			}
		})
	}
}

// TestRetierFiresAndMigrates: FedAT on a strongly drifting population with
// periodic re-tiering performs retier passes and actually migrates clients;
// the event stream carries consistent partitions.
func TestRetierFiresAndMigrates(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 60
	cfg.RetierEvery = 3
	var events int
	run := mustRun(t, "fedat", dynamicEnv(t, cfg), ObserverFunc(func(ev Event) {
		e, ok := ev.(RetierEvent)
		if !ok {
			return
		}
		events++
		if e.Tiers == nil || e.Tiers.M() != cfg.NumTiers {
			t.Fatalf("retier event carries a bad partition: %+v", e.Tiers)
		}
		for tier, members := range e.Tiers.Members {
			if len(members) == 0 {
				t.Fatalf("retier pass emptied tier %d", tier)
			}
			for _, id := range members {
				if e.Tiers.Assignment[id] != tier {
					t.Fatalf("member/assignment mismatch for client %d", id)
				}
			}
		}
	}))
	if run.Retiers == 0 || run.Retiers != events {
		t.Fatalf("retier passes: run records %d, observer saw %d, want > 0 and equal", run.Retiers, events)
	}
	if run.TierMigrations == 0 {
		t.Fatal("strong drift never migrated a single client")
	}
}

// TestStaticRunsUntouchedByDynamicsCode: a static environment (no behavior
// config) with RetierEvery unset must produce runs with zero retier
// bookkeeping — the default path carries no trace of the dynamics
// subsystem. (Bit-exactness of the default path is pinned separately by
// TestMethodRunEquivalence against golden_runs.json.)
func TestStaticRunsUntouchedByDynamicsCode(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 8
	run := mustRun(t, "fedat", testEnv(t, 2, cfg))
	if run.Retiers != 0 || run.TierMigrations != 0 {
		t.Fatalf("static run recorded retier activity: %d/%d", run.Retiers, run.TierMigrations)
	}
}

// TestLambdaDefaulting: RunConfig.Lambda 0 inherits DefaultLambda, LambdaOff
// survives repeated defaulting (configs pass through withDefaults twice) and
// disables the proximal term at the point of use.
func TestLambdaDefaulting(t *testing.T) {
	if got := (RunConfig{}).withDefaults().Lambda; got != DefaultLambda {
		t.Fatalf("unset Lambda defaulted to %v, want %v", got, DefaultLambda)
	}
	twice := (RunConfig{Lambda: LambdaOff}).withDefaults().withDefaults()
	if twice.Lambda >= 0 {
		t.Fatalf("LambdaOff did not survive double defaulting: %v", twice.Lambda)
	}
	rs := &runState{cfg: twice, method: Method{Local: LocalPolicy{Prox: true}}}
	if lc := rs.localConfig(0, lrSyncLoop); lc.Lambda != 0 {
		t.Fatalf("LambdaOff produced local λ=%v, want 0", lc.Lambda)
	}
	rs.cfg = (RunConfig{}).withDefaults()
	if lc := rs.localConfig(0, lrSyncLoop); lc.Lambda != DefaultLambda {
		t.Fatalf("default local λ=%v, want %v", lc.Lambda, DefaultLambda)
	}
}

// TestRetierRevivesDeadTier: when every member of a tier drops permanently,
// that tier's loop exits — but a later retier pass that promotes a live
// client into the tier must restart it, or the client silently leaves the
// training. The fast tier's members all drop at t=30; a genuinely fast
// client profiled into the slow tier is promoted by observation and must
// keep tier 0 folding afterwards.
func TestRetierRevivesDeadTier(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 60
	cfg.NumTiers = 2
	cfg.RetierEvery = 2
	cfg.RetierAlpha = 0.5
	env := testEnv(t, 0, cfg)
	tiers := mustTiers(t, env)
	// Tier 0 dies at t=5 — during its FIRST round, well before the slow
	// tier's first fold (~t=30) produces the observation that promotes the
	// fast client. The promotion therefore lands in an already-dead tier,
	// which only the post-retier loop re-kick can revive.
	const dropAt = 5.0

	// The engine profiles at run start, so both step changes are applied
	// from the event stream — after profiling, like a real population going
	// off script. Stage 1 (first event): every fast-tier member will drop
	// for good at t=5, killing tier 0 during its first round. Stage 2
	// (first event past t=10, when tier 0 is already dead): one slow-tier
	// client becomes genuinely fast, so its next observed rounds clear the
	// promotion margin into the dead tier — which only the post-retier
	// loop re-kick can revive.
	dropsSet, fastSet := false, false
	lastTier0Fold := 0.0
	run := mustRun(t, "fedat", env, ObserverFunc(func(ev Event) {
		if !dropsSet {
			dropsSet = true
			for _, id := range tiers.Members[0] {
				env.Clients[id].Runtime.DropAt = dropAt
			}
		}
		if e, ok := ev.(ClientDoneEvent); ok && !fastSet && e.Time >= 10 {
			fastSet = true
			fast := env.Clients[tiers.Members[1][0]].Runtime
			fast.SecPerBatch = 0.001
			fast.DelayLo, fast.DelayHi = 0, 0
		}
		if e, ok := ev.(TierFoldEvent); ok && e.Tier == 0 && e.Time > lastTier0Fold {
			lastTier0Fold = e.Time
		}
	}))
	if run.TierMigrations == 0 {
		t.Fatal("no client ever migrated into the dead tier")
	}
	// Pre-drop tier-0 folds land by ~t=8 (the in-flight first round); a
	// revived tier folds from ~t=30 on. 15 separates the regimes robustly.
	if lastTier0Fold <= 15 {
		t.Fatalf("tier 0 never folded again after its members dropped at t=%.0f (last fold t=%.1f)",
			dropAt, lastTier0Fold)
	}
}
