package fl

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// RunConfig holds the hyperparameters shared by every method (§6) plus the
// method-specific knobs.
type RunConfig struct {
	Rounds          int // global update budget T
	ClientsPerRound int // |S| (10 in the paper)
	LocalEpochs     int // E (3 in the paper)
	BatchSize       int // 10 in the paper
	// Lambda is the proximal coefficient of Eq. 3. 0 inherits DefaultLambda
	// (the paper's 0.4); pass LambdaOff (any negative value) to explicitly
	// disable the proximal term for Prox methods. CLIs and experiments
	// inherit the default from here rather than re-declaring 0.4.
	Lambda       float64
	LearningRate float64
	UseSGD       bool // default is Adam, the paper's local solver

	NumTiers int // M (5 in the paper)

	// Codec compresses FedAT's uplink and downlink (§4.3); nil means
	// codec.Raw. Baselines always use Raw, matching the paper where only
	// FedAT compresses.
	Codec codec.Codec

	// UniformAgg disables Eq. 5 in favour of uniform tier weights — the
	// Figure 6 ablation.
	UniformAgg bool

	// AsyncAlpha is the async family's server blend weight α (FedAsync's
	// mixing rate; asyncsgd's server step size).
	AsyncAlpha float64
	// AsyncStaleExp is the deprecated flat alias for Staleness.Alpha: when
	// the typed config leaves Alpha unset (0), this still feeds the decay
	// parameter, so pre-redesign configs keep working. 0 inherits the 0.5
	// default; StaleExpOff pins it to exactly 0. Prefer Staleness.
	AsyncStaleExp float64
	// Staleness parameterizes the async family's staleness discount g(s):
	// the weight function, its decay parameter, and hinge's flat region.
	// The zero value inherits poly with AsyncStaleExp's default.
	Staleness StalenessConfig
	// AdaptiveLR scales each dispatch's local learning rate by the weight
	// function at the dispatch loop's last observed staleness, so chronic
	// stragglers take smaller local steps instead of only being discounted
	// at the fold. Off by default — an off run draws nothing, ships a zero
	// LRScale, and stays bit-identical to builds without the stage.
	AdaptiveLR bool

	// TiFL adaptive selection parameters.
	TiFLCredits  int
	TiFLInterval int

	// MisTierFrac corrupts this fraction of the profiled latencies before
	// tiering (clients land in arbitrary tiers) — the mis-profiling
	// scenario §2.1 argues FedAT tolerates but TiFL does not. 0 disables.
	MisTierFrac float64

	// EvalEvery evaluates the global model every this many global updates
	// (1 = every update).
	EvalEvery int
	// EvalSample caps how many clients the lazy environment's evaluator
	// measures per evaluation (0 = DefaultEvalSample, capped by the
	// population). A huge population cannot afford a full-population test
	// pass every eval; a fixed deterministic sample keeps evaluation O(1)
	// in N. The eager Env always evaluates the full population and ignores
	// this field, so existing runs are unaffected.
	EvalSample int
	// MaxSimTime stops a run after this much virtual time (0 = no limit).
	MaxSimTime float64

	// RetierEvery re-runs the tiering module every this many global updates
	// from EWMA-smoothed observed client response latencies (0 = static
	// tiers, the paper's one-shot §4 profiling). Re-tiering happens where a
	// tier partition is actually consumed: tier-paced loops, and
	// client-paced loops whose update rule routes by tier (eq5).
	// Synchronous pacing ignores the knob — the paper's baselines do not
	// re-profile — and a client-paced run over an untiered rule (FedAsync's
	// staleness, ASO-Fed) has no partition to re-tier, so the knob is
	// likewise inert there.
	RetierEvery int
	// RetierAlpha is the EWMA weight of each new latency observation
	// (default 0.3).
	RetierAlpha float64
	// RetierMargin is the relative hysteresis band a smoothed latency must
	// clear beyond a tier boundary before the client migrates
	// (default 0.15).
	RetierMargin float64

	// DPClip > 0 enables the per-client differential-privacy stage on
	// every local update: clip the delta to this L2 norm, then add
	// Gaussian noise with per-coordinate stddev DPNoise·DPClip from each
	// client's dedicated labeled stream. Off by default — a DP-off run
	// draws nothing and stays byte-identical to builds without the stage.
	DPClip  float64
	DPNoise float64

	// TrimBeta is the per-side trim fraction of the "trimmed" robust
	// update rule (default 0.2).
	TrimBeta float64
	// KrumF is the byzantine count the "krum" rule tolerates; 0 picks the
	// standard (cohort-3)/2 adaptively per fold.
	KrumF int

	// BufferK is the "fedbuff" pacer's buffer size: the global model folds
	// once every K client arrivals (default ClientsPerRound).
	BufferK int

	Seed uint64
}

// DefaultLambda is the paper's proximal coefficient (§6): the single place
// the 0.4 default lives — withDefaults applies it, and the CLIs inherit it.
const DefaultLambda = 0.4

// LambdaOff explicitly disables the Eq. 3 proximal term for Prox methods
// (RunConfig.Lambda 0 means "use DefaultLambda", so disabling needs a
// sentinel).
const LambdaOff = -1.0

func (c RunConfig) withDefaults() RunConfig {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.ClientsPerRound <= 0 {
		c.ClientsPerRound = 10
	}
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 10
	}
	if c.Lambda == 0 {
		// LambdaOff stays negative here so withDefaults is idempotent
		// (configs pass through it twice: NewEnv and RunOn); localConfig
		// clamps it to 0 at the point of use.
		c.Lambda = DefaultLambda
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.NumTiers <= 0 {
		c.NumTiers = 5
	}
	if c.Codec == nil {
		c.Codec = codec.Raw{}
	}
	if c.AsyncAlpha <= 0 {
		c.AsyncAlpha = 0.6
	}
	if c.AsyncStaleExp == 0 {
		// StaleExpOff (negative) passes through so withDefaults stays
		// idempotent (configs traverse it twice: NewEnv and RunOn);
		// StalenessConfig.Weight clamps it to exactly 0 at the point of
		// use — the LambdaOff pattern. An explicit 0 therefore survives
		// instead of being silently re-defaulted to 0.5.
		c.AsyncStaleExp = 0.5
	}
	if c.Staleness.Func == "" {
		c.Staleness.Func = StaleFuncPoly
	}
	if c.Staleness.Alpha == 0 {
		// The deprecated flat alias feeds the typed config.
		c.Staleness.Alpha = c.AsyncStaleExp
	}
	if c.TiFLCredits <= 0 {
		c.TiFLCredits = 20
	}
	if c.TiFLInterval <= 0 {
		c.TiFLInterval = 10
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.RetierAlpha <= 0 || c.RetierAlpha > 1 {
		c.RetierAlpha = 0.3
	}
	if c.RetierMargin <= 0 {
		c.RetierMargin = 0.15
	}
	if c.TrimBeta <= 0 {
		c.TrimBeta = 0.2
	}
	if c.BufferK <= 0 {
		c.BufferK = c.ClientsPerRound
	}
	return c
}

// ModelFactory builds one model replica. Every call must produce the same
// architecture (identical flat-vector layout); the seed only varies the
// initialization.
type ModelFactory func(seed uint64) *nn.Network

// Env is everything a method needs to run: the population, the virtual
// cluster, per-client state and the shared evaluation harness.
type Env struct {
	Fed     *dataset.Federated
	Cluster *simnet.Cluster
	Clients []*Client
	Eval    *Evaluator
	Cfg     RunConfig

	factory ModelFactory
	w0      []float64
	shapes  []codec.ShapeInfo
	group   []*Client // cohort-resolution scratch, reused across rounds
}

// NewEnv wires a federated dataset to a simulated cluster and constructs
// per-client model replicas. The cluster must have exactly one runtime per
// dataset client.
func NewEnv(fed *dataset.Federated, cluster *simnet.Cluster, factory ModelFactory, cfg RunConfig) (*Env, error) {
	if len(cluster.Clients) != len(fed.Clients) {
		return nil, fmt.Errorf("fl: cluster has %d clients, dataset has %d", len(cluster.Clients), len(fed.Clients))
	}
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)

	ref := factory(cfg.Seed)
	shapes := make([]codec.ShapeInfo, 0, len(ref.ParamShapes()))
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	env := &Env{
		Fed:     fed,
		Cluster: cluster,
		Cfg:     cfg,
		factory: factory,
		w0:      ref.WeightsCopy(),
		shapes:  shapes,
	}
	env.Clients = make([]*Client, len(fed.Clients))
	for i := range fed.Clients {
		var o opt.Optimizer
		if cfg.UseSGD {
			o = opt.NewSGD(cfg.LearningRate)
		} else {
			o = opt.NewAdam(cfg.LearningRate)
		}
		attack := cluster.Clients[i].Attack
		attack.Classes = fed.Classes // simnet can't know the label space
		env.Clients[i] = &Client{
			ID:          i,
			Data:        fed.Clients[i],
			Net:         factory(cfg.Seed), // same init everywhere; server state rules
			Opt:         o,
			Runtime:     cluster.Clients[i],
			Attack:      attack,
			scheduleRNG: root.SplitLabeled(uint64(scheduleStreamBase + i)),
			dpRNG:       root.SplitLabeled(uint64(dpStreamBase + i)),
		}
	}
	env.Eval = NewEvaluator(factory, cfg.Seed, env.Clients)
	return env, nil
}

// InitialWeights returns a copy of w0.
func (e *Env) InitialWeights() []float64 {
	out := make([]float64, len(e.w0))
	copy(out, e.w0)
	return out
}

// Shapes returns the model's parameter-block shapes (for the codec).
func (e *Env) Shapes() []codec.ShapeInfo { return e.shapes }

// LocalConfig derives the per-round local training settings with the given
// proximal coefficient.
func (e *Env) LocalConfig(lambda float64, round uint64) LocalConfig {
	return LocalConfig{
		Epochs:    e.Cfg.LocalEpochs,
		BatchSize: e.Cfg.BatchSize,
		Lambda:    lambda,
		Round:     round,
		DPClip:    e.Cfg.DPClip,
		DPNoise:   e.Cfg.DPNoise,
	}
}

// ResetState restores per-client and cluster link state so one Env can run
// several methods back-to-back under identical conditions.
func (e *Env) ResetState() {
	e.Cluster.Reset()
	for _, c := range e.Clients {
		c.Opt.Reset()
	}
}

// ---------------------------------------------------------------------------
// Communication accounting

// Comm applies a codec to every model exchange and tallies the bytes, which
// is both the lossy channel (§4.3) and the measurement for Table 2 /
// Figure 4.
type Comm struct {
	codec       codec.Codec
	headerBytes int
	Up, Down    int64

	// verb is non-nil when the codec round-trips bit-exactly with a
	// length-determined payload size (codec.Verbatim): pooled transmits then
	// skip materializing the byte payload — numerics and byte accounting are
	// provably identical to the real Encode/Decode.
	verb codec.Verbatim
	// pool recycles receiver-side weight buffers across rounds and cohorts
	// (see tensor.Pool for the ownership contract). Sized lazily from the
	// first transmitted vector.
	pool *tensor.Pool
}

// NewComm builds the channel for one run.
func NewComm(c codec.Codec, shapes []codec.ShapeInfo) *Comm {
	// Header cost mirrors MarshalModel's wire format: codec id, precision,
	// shape table, payload length.
	hdr := 2 + 2 + 4
	for _, s := range shapes {
		hdr += 1 + len(s.Name) + 1 + 4*len(s.Dims)
	}
	verb, _ := c.(codec.Verbatim)
	return &Comm{codec: c, headerBytes: hdr, verb: verb}
}

// Transmit passes w through the lossy channel in the given direction,
// returning the weights the receiver reconstructs and the marshalled
// message size in bytes. Byte counters accumulate the size. A codec that
// fails to decode its own payload reports an error (propagated out through
// Method.Run) rather than panicking.
func (cm *Comm) Transmit(w []float64, uplink bool) ([]float64, int, error) {
	payload := cm.codec.Encode(w)
	size := cm.headerBytes + len(payload)
	if uplink {
		cm.Up += int64(size)
	} else {
		cm.Down += int64(size)
	}
	out := make([]float64, len(w))
	if err := cm.codec.Decode(payload, out); err != nil {
		return nil, 0, fmt.Errorf("fl: codec %s failed to decode its own payload: %w", cm.codec.Name(), err)
	}
	return out, size, nil
}

// TransmitPooled is Transmit with the receiver buffer drawn from the run's
// weight pool instead of freshly allocated. The returned slice is owned by
// the caller until it hands it back with Release; in steady state no
// allocation happens. Verbatim codecs (Raw) additionally skip the
// encode/decode round-trip — the reconstruction is a straight copy and the
// byte accounting uses the codec's exact payload size, so both the numerics
// and the Up/Down totals are bit-identical to Transmit's.
func (cm *Comm) TransmitPooled(w []float64, uplink bool) ([]float64, int, error) {
	if cm.pool == nil || cm.pool.Size() != len(w) {
		cm.pool = tensor.NewPool(len(w))
	}
	out := cm.pool.Get()
	var size int
	if cm.verb != nil {
		size = cm.headerBytes + cm.verb.PayloadBytes(len(w))
		copy(out, w)
	} else {
		payload := cm.codec.Encode(w)
		size = cm.headerBytes + len(payload)
		if err := cm.codec.Decode(payload, out); err != nil {
			cm.pool.Put(out)
			return nil, 0, fmt.Errorf("fl: codec %s failed to decode its own payload: %w", cm.codec.Name(), err)
		}
	}
	if uplink {
		cm.Up += int64(size)
	} else {
		cm.Down += int64(size)
	}
	return out, size, nil
}

// Release returns a buffer obtained from TransmitPooled to the pool. It
// tolerates foreign buffers of the right length (the live fabric's results
// are transport-allocated; recycling them is harmless) and ignores
// everything else.
func (cm *Comm) Release(w []float64) {
	if cm.pool == nil || len(w) == 0 {
		return
	}
	cm.pool.Put(w)
}

// MessageBytes returns the marshalled size of w without transmitting.
func (cm *Comm) MessageBytes(w []float64) int {
	if cm.verb != nil {
		return cm.headerBytes + cm.verb.PayloadBytes(len(w))
	}
	return cm.headerBytes + len(cm.codec.Encode(w))
}

// CountControl adds small control-plane traffic (e.g. TiFL's accuracy
// collection) to the byte totals.
func (cm *Comm) CountControl(bytes int64, uplink bool) {
	if uplink {
		cm.Up += bytes
	} else {
		cm.Down += bytes
	}
}

// ---------------------------------------------------------------------------
// Evaluation harness

// Evaluator measures a weight vector against every client's held-out data,
// producing the three robustness metrics of Definition 3.1: prediction
// accuracy (sample-weighted mean), cross-client accuracy variance, and —
// through the caller's time series — convergence speed. Evaluation costs no
// virtual time and no simulated communication; the paper likewise excludes
// test-set evaluation from its measurements.
type Evaluator struct {
	clients []*Client
	nets    []*nn.Network

	// Per-client scratch reused across Evaluate calls. Evaluate is not safe
	// for concurrent use (the run loops serialize evaluation).
	accs    []float64
	correct []int
	totals  []int
	losses  []float64
}

// NewEvaluator builds the harness with one model replica per parallel
// worker. The worker count follows GOMAXPROCS capped by the client count:
// per-client results are written to disjoint indices and summed in id
// order afterwards, so the count affects only wall time, never the result.
func NewEvaluator(factory ModelFactory, seed uint64, clients []*Client) *Evaluator {
	workers := runtime.GOMAXPROCS(0)
	if len(clients) < workers {
		workers = len(clients)
	}
	if workers < 1 {
		workers = 1
	}
	e := &Evaluator{clients: clients}
	for i := 0; i < workers; i++ {
		e.nets = append(e.nets, factory(seed))
	}
	return e
}

// NewDataEvaluator builds an Evaluator directly over dataset shards, for
// callers without simulated clients — the live transport's server-side
// evaluation of a mirrored federation.
func NewDataEvaluator(factory ModelFactory, seed uint64, shards []*dataset.ClientData) *Evaluator {
	clients := make([]*Client, len(shards))
	for i, d := range shards {
		clients[i] = &Client{ID: i, Data: d}
	}
	return NewEvaluator(factory, seed, clients)
}

// Result is one evaluation of a global model.
type Result struct {
	Acc      float64 // sample-weighted mean accuracy
	Loss     float64 // sample-weighted mean loss
	Variance float64 // population variance of per-client accuracies
}

// Evaluate runs the model on every client's test split.
func (e *Evaluator) Evaluate(w []float64) Result {
	if len(e.accs) != len(e.clients) {
		e.accs = make([]float64, len(e.clients))
		e.correct = make([]int, len(e.clients))
		e.totals = make([]int, len(e.clients))
		e.losses = make([]float64, len(e.clients))
	}
	accs, correct, totals, losses := e.accs, e.correct, e.totals, e.losses
	for i := range accs {
		accs[i], correct[i], totals[i], losses[i] = 0, 0, 0, 0
	}

	var wg sync.WaitGroup
	nw := len(e.nets)
	wg.Add(nw)
	for wk := 0; wk < nw; wk++ {
		go func(wk int) {
			defer wg.Done()
			net := e.nets[wk]
			net.SetWeights(w)
			for i := wk; i < len(e.clients); i += nw {
				c := e.clients[i]
				if c.Data.NumTest() == 0 {
					continue
				}
				cor, loss := net.Eval(c.Data.TestX, c.Data.TestY)
				correct[i] = cor
				totals[i] = c.Data.NumTest()
				losses[i] = loss * float64(totals[i])
				accs[i] = float64(cor) / float64(totals[i])
			}
		}(wk)
	}
	wg.Wait()

	totCorrect, totSamples := 0, 0
	totLoss := 0.0
	for i := range e.clients {
		totCorrect += correct[i]
		totSamples += totals[i]
		totLoss += losses[i]
	}
	if totSamples == 0 {
		return Result{}
	}
	return Result{
		Acc:      float64(totCorrect) / float64(totSamples),
		Loss:     totLoss / float64(totSamples),
		Variance: metrics.Variance(accs),
	}
}

// EvaluateSubset measures the model on a subset of clients (TiFL's per-tier
// accuracy collection). It returns the subset's sample-weighted accuracy.
func (e *Evaluator) EvaluateSubset(w []float64, ids []int) float64 {
	net := e.nets[0]
	net.SetWeights(w)
	correct, total := 0, 0
	for _, id := range ids {
		c := e.clients[id]
		if c.Data.NumTest() == 0 {
			continue
		}
		cor, _ := net.Eval(c.Data.TestX, c.Data.TestY)
		correct += cor
		total += c.Data.NumTest()
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
