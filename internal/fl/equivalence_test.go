package fl

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// runRecord and runRegistryMethod isolate the invocation surface: the golden
// data stays fixed across API changes, only this shim tracks the registry.
type runRecord = metrics.Run

func toRecord(r *metrics.Run) runRecord { return *r }

func runRegistryMethod(name string, env *Env) (*metrics.Run, error) {
	return Run(name, env)
}

var updateGolden = flag.Bool("update", false, "rewrite golden run data")

// goldenPoint pins one evaluation point bit-exactly: floats are stored as
// IEEE-754 bit patterns in hex so JSON round-tripping cannot lose precision.
type goldenPoint struct {
	Round     int    `json:"round"`
	Time      string `json:"time_bits"`
	UpBytes   int64  `json:"up_bytes"`
	DownBytes int64  `json:"down_bytes"`
	Acc       string `json:"acc_bits"`
	Loss      string `json:"loss_bits"`
	Var       string `json:"var_bits"`
}

// goldenRun pins one method's full metrics.Run.
type goldenRun struct {
	Method       string        `json:"method"`
	Dataset      string        `json:"dataset"`
	GlobalRounds int           `json:"global_rounds"`
	UpBytes      int64         `json:"up_bytes"`
	DownBytes    int64         `json:"down_bytes"`
	Points       []goldenPoint `json:"points"`
}

func bits(f float64) string { return fmt.Sprintf("%016x", math.Float64bits(f)) }

func goldenFromRun(name string, r runRecord) goldenRun {
	g := goldenRun{
		Method:       r.Method,
		Dataset:      r.Dataset,
		GlobalRounds: r.GlobalRounds,
		UpBytes:      r.UpBytes,
		DownBytes:    r.DownBytes,
	}
	for _, p := range r.Points {
		g.Points = append(g.Points, goldenPoint{
			Round: p.Round, Time: bits(p.Time),
			UpBytes: p.UpBytes, DownBytes: p.DownBytes,
			Acc: bits(p.Acc), Loss: bits(p.Loss), Var: bits(p.Var),
		})
	}
	_ = name
	return g
}

// goldenCfg is the pinned tiny configuration: small enough to run every
// method in seconds, large enough to exercise tier profiling, the TiFL
// accuracy refresh (interval 10 < rounds), FedProx's variable epochs,
// over-selection trimming and the async staleness discount.
func goldenCfg() RunConfig {
	return RunConfig{
		Rounds:          12,
		ClientsPerRound: 5,
		LocalEpochs:     2,
		BatchSize:       8,
		Lambda:          0.4,
		LearningRate:    0.01,
		NumTiers:        5,
		EvalEvery:       2,
		Seed:            3,
	}
}

// TestMethodRunEquivalence locks every registry method to the exact
// metrics.Run the pre-decomposition monolithic runners produced (generated
// with -update at the commit before the policy/event refactor). Any change
// to selection order, RNG stream labelling, link reservation order or
// aggregation math shows up here as a bit-level diff.
func TestMethodRunEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "golden_runs.json")

	got := map[string]goldenRun{}
	for _, name := range MethodNames() {
		env := testEnv(t, 2, goldenCfg())
		run, err := runRegistryMethod(name, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = goldenFromRun(name, toRecord(run))
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden data (regenerate with -update): %v", err)
	}
	want := map[string]goldenRun{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden data has %d methods, registry has %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("method %s missing from registry", name)
			continue
		}
		if g.Method != w.Method || g.Dataset != w.Dataset {
			t.Errorf("%s: identity changed: got %s/%s want %s/%s",
				name, g.Method, g.Dataset, w.Method, w.Dataset)
		}
		if g.GlobalRounds != w.GlobalRounds || g.UpBytes != w.UpBytes || g.DownBytes != w.DownBytes {
			t.Errorf("%s: totals changed: got rounds=%d up=%d down=%d want rounds=%d up=%d down=%d",
				name, g.GlobalRounds, g.UpBytes, g.DownBytes, w.GlobalRounds, w.UpBytes, w.DownBytes)
		}
		if len(g.Points) != len(w.Points) {
			t.Errorf("%s: %d eval points, want %d", name, len(g.Points), len(w.Points))
			continue
		}
		for i := range w.Points {
			if g.Points[i] != w.Points[i] {
				t.Errorf("%s: point %d diverged:\n got %+v\nwant %+v", name, i, g.Points[i], w.Points[i])
				break
			}
		}
	}
}
