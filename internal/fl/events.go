package fl

import (
	"repro/internal/metrics"
	"repro/internal/tiering"
)

// The run event stream. Every method emits the same four event kinds as it
// executes, no matter how its policies are composed; observers subscribe to
// the stream instead of being wired into each method's loop. The built-in
// recorder (the thing that produces metrics.Run) is itself just the first
// subscriber — callers can attach more via Method.Run's variadic observers
// to trace folds, collect per-client statistics or stream progress without
// touching the engine.
//
// Events are observations only: emitting them never draws randomness,
// reserves link capacity or advances the virtual clock, so attaching an
// observer cannot perturb a run. Slices carried by events (RoundStart's
// Clients) are shared with the engine and must not be mutated or retained.

// Event is one occurrence in a training run. The concrete types below are
// the full set; observers type-switch on them.
type Event interface{ event() }

// RoundStartEvent fires when a cohort has been selected and is about to
// train. Tier is the training tier (-1 when the selecting policy is
// untiered — population-wide sampling or the wait-free client loops).
type RoundStartEvent struct {
	Tier    int
	Round   int     // global update count when the round started
	Time    float64 // virtual seconds
	Clients []int   // selected client ids (shared; read-only)
}

// ClientDoneEvent fires when one client's local round has been resolved:
// either its update arrived at the server or it dropped mid-round.
type ClientDoneEvent struct {
	Client  int
	Tier    int
	Time    float64 // server arrival (or the time the loss was discovered)
	Dropped bool
}

// TierFoldEvent fires after the update rule folded a batch of client
// updates into the global state — one global update.
type TierFoldEvent struct {
	Tier  int
	Round int     // global update count after the fold
	Time  float64 // virtual seconds
	Kept  int     // client updates that counted
	// Global is the global model right after this fold (shared with the
	// engine; read-only, and some update rules reuse the buffer on the
	// next fold — observers that retain it must copy). The live transport
	// server uses it to report the final trained model.
	Global []float64
}

// EvalEvent fires when the engine evaluated the global model at the
// configured cadence.
type EvalEvent struct {
	Round     int
	Time      float64
	Result    Result
	UpBytes   int64 // cumulative communication at evaluation time
	DownBytes int64
}

// EdgeFoldEvent fires when a hierarchical topology folded edge models into
// the cloud model. In a simulated hierarchy it is emitted into the
// triggering edge's event stream right after the TierFoldEvent whose push
// caused the cloud fold; on the live fabric each edge emits it when the
// root's merged model arrives. The cloud-level recorder tallies these into
// metrics.Run.EdgeFolds.
type EdgeFoldEvent struct {
	Edge  int     // edge id whose push triggered (or delivered) the fold
	Round int     // cloud fold count after this fold
	Time  float64 // the observing run's clock (virtual or wall seconds)
	// Staleness is how many cloud folds the triggering edge lagged behind:
	// cloud epochs elapsed since that edge last adopted the merged model.
	Staleness float64
	// Members is the number of edge models the fold averaged over.
	Members int
}

// RetierEvent fires when the engine re-partitioned the tiers at runtime
// (RunConfig.RetierEvery) from EWMA-smoothed observed latencies. It fires
// every retier pass, even when hysteresis held every client in place
// (Migrations 0).
type RetierEvent struct {
	Round      int
	Time       float64
	Migrations int // clients whose tier changed in this pass
	// Tiers is the partition in effect after the pass (shared with the
	// engine; read-only).
	Tiers *tiering.Tiers
}

func (RoundStartEvent) event() {}
func (ClientDoneEvent) event() {}
func (TierFoldEvent) event()   {}
func (EvalEvent) event()       {}
func (RetierEvent) event()     {}
func (EdgeFoldEvent) event()   {}

// Observer receives the run event stream in engine-execution order (which
// for the simulator-paced methods is virtual-time order of the fold and
// eval events).
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// recorder is the built-in observer that turns Eval events into the
// metrics.Run record every method returns, and tallies retier activity.
type recorder struct {
	run *metrics.Run
}

func newRecorder(method, dataset string) *recorder {
	return &recorder{run: &metrics.Run{Method: method, Dataset: dataset}}
}

// OnEvent implements Observer.
func (rec *recorder) OnEvent(ev Event) {
	switch e := ev.(type) {
	case EvalEvent:
		rec.run.Add(metrics.Point{
			Round:     e.Round,
			Time:      e.Time,
			UpBytes:   e.UpBytes,
			DownBytes: e.DownBytes,
			Acc:       e.Result.Acc,
			Loss:      e.Result.Loss,
			Var:       e.Result.Variance,
		})
	case RetierEvent:
		rec.run.Retiers++
		rec.run.TierMigrations += e.Migrations
	case EdgeFoldEvent:
		rec.run.EdgeFolds++
		rec.run.EdgeStaleness += e.Staleness
	}
}

// finish stamps the run totals once the pacer returns.
func (rec *recorder) finish(comm *Comm, rounds int) *metrics.Run {
	rec.run.UpBytes = comm.Up
	rec.run.DownBytes = comm.Down
	rec.run.GlobalRounds = rounds
	return rec.run
}
