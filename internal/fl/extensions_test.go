package fl

import (
	"testing"
)

func TestOverSelectionCompletesAndLearns(t *testing.T) {
	cfg := baseCfg()
	env := testEnv(t, 0, cfg)
	run := mustRun(t, "fedavg-oversel", env)
	if run.GlobalRounds == 0 {
		t.Fatal("no rounds completed")
	}
	if run.BestAcc() < 0.18 {
		t.Fatalf("over-selection failed to learn: %.3f", run.BestAcc())
	}
}

func TestOverSelectionShortensRounds(t *testing.T) {
	// Dropping the slowest 30% of selected clients means the round barrier
	// is an earlier order statistic: per-update time must not exceed plain
	// FedAvg's.
	cfg := baseCfg()
	cfg.Rounds = 30
	envA := testEnv(t, 0, cfg)
	plain := mustRun(t, "fedavg", envA)
	envB := testEnv(t, 0, cfg)
	over := mustRun(t, "fedavg-oversel", envB)
	pa := plain.Points[len(plain.Points)-1].Time / float64(plain.GlobalRounds)
	po := over.Points[len(over.Points)-1].Time / float64(over.GlobalRounds)
	if po > pa*1.02 {
		t.Fatalf("over-selection per-update time %.2fs not below FedAvg's %.2fs", po, pa)
	}
	// ...but it uploads more per update (the discarded 30% still trained).
	ba := float64(plain.UpBytes) / float64(plain.GlobalRounds)
	bo := float64(over.UpBytes) / float64(over.GlobalRounds)
	if bo <= ba {
		t.Fatalf("over-selection upload/update %.0fB not above FedAvg's %.0fB", bo, ba)
	}
}

func TestMisTieringScramblesTiers(t *testing.T) {
	cfg := baseCfg()
	env := testEnv(t, 0, cfg)
	clean := mustTiers(t, env)

	cfgBad := baseCfg()
	cfgBad.MisTierFrac = 0.5
	envBad := testEnv(t, 0, cfgBad)
	dirty := mustTiers(t, envBad)

	moved := 0
	for id := range clean.Assignment {
		if clean.Assignment[id] != dirty.Assignment[id] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("MisTierFrac=0.5 changed no tier assignments")
	}
	// Partition invariants still hold under corruption.
	seen := make([]bool, len(dirty.Assignment))
	for _, members := range dirty.Members {
		for _, id := range members {
			if seen[id] {
				t.Fatal("client in two tiers after mis-tiering")
			}
			seen[id] = true
		}
	}
}

func TestFedATRunsUnderMisTiering(t *testing.T) {
	cfg := baseCfg()
	cfg.MisTierFrac = 0.4
	cfg.Rounds = 30
	env := testEnv(t, 0, cfg)
	run := mustRun(t, "fedat", env)
	if run.GlobalRounds == 0 {
		t.Fatal("mis-tiered FedAT made no progress")
	}
	if run.BestAcc() < 0.15 {
		t.Fatalf("mis-tiered FedAT failed to learn: %.3f", run.BestAcc())
	}
}

func TestMisTieringDeterministic(t *testing.T) {
	cfg := baseCfg()
	cfg.MisTierFrac = 0.3
	a := mustTiers(t, testEnv(t, 0, cfg))
	b := mustTiers(t, testEnv(t, 0, cfg))
	for id := range a.Assignment {
		if a.Assignment[id] != b.Assignment[id] {
			t.Fatal("mis-tiering not deterministic for a fixed seed")
		}
	}
}
