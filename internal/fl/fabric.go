package fl

import (
	"repro/internal/codec"
	"repro/internal/simnet"
	"repro/internal/tiering"
)

// TrainResult is one client's resolved local round as the server observes
// it: the weights the server reconstructs after the uplink, the client's
// sample count, and the arrival stamp on the fabric's clock. Dropped marks
// a client that went offline (or disconnected) before its update landed;
// Arrive then holds the time the loss was discovered.
type TrainResult struct {
	Client  int
	Weights []float64
	N       int // n_k, the client's local sample count
	Steps   int // batch steps executed (simulated fabrics use it for compute time)
	Arrive  float64
	Dropped bool
}

// Fabric is the execution substrate a method runs on — the small surface a
// Pacer actually touches: dispatch local work to a cohort, observe the
// arrivals, account communication through Comm, and advance the clock. The
// engine (Method.RunOn) drives exactly one fabric per run and owns all
// policy decisions; the fabric owns execution and time.
//
// Two implementations exist: the simulated fabric below (virtual clock,
// lossy-channel modeling, per-round injected delays) and the live TCP
// fabric in internal/transport (wall clock, real connections). Every policy
// composition in the registry runs unchanged on both.
//
// Threading contract: the engine calls fabric methods only from the clock
// goroutine (the caller of Run and the callbacks it executes). The fabric
// must deliver Dispatch results back on that same goroutine.
type Fabric interface {
	simnet.Clock

	// Dataset names the training data, for run records.
	Dataset() string
	// NumClients is the population size; clients are identified 0..N-1.
	NumClients() int
	// SampleCount returns client id's local training-set size n_k.
	SampleCount(id int) int
	// Available reports whether client id can take work at time now.
	Available(id int, now float64) bool
	// NextAvailable returns the earliest time >= now at which client id can
	// take work again, +Inf if it never will. Transient churn and late
	// joins produce finite waits on the simulated fabric; the live fabric
	// has no rejoin schedule — a disconnected client is gone.
	NextAvailable(id int, now float64) float64

	// InitialWeights returns a fresh copy of the initial global model w0.
	InitialWeights() []float64
	// Shapes describes the model's parameter blocks (for the codec).
	Shapes() []codec.ShapeInfo

	// Partition groups the population into cfg.NumTiers latency tiers —
	// profiled response times on the simulated fabric, registration
	// latency hints on the live one.
	Partition(cfg RunConfig) (*tiering.Tiers, error)

	// Repartition informs the fabric that the engine re-tiered the
	// population at runtime (RunConfig.RetierEvery) from observed
	// latencies. Fabrics may use it for diagnostics or scheduling; it must
	// not advance the clock, draw randomness or touch engine state.
	Repartition(t *tiering.Tiers)

	// Dispatch starts one cohort round at time now from the global
	// snapshot: ship the model to each client, train locally with lc, and
	// hand the per-client outcomes (index-aligned with cohort) to deliver.
	// The fabric decides when deliver runs: the simulated fabric computes
	// outcomes immediately and calls deliver before Dispatch returns; the
	// live fabric trains over TCP and calls deliver from the run loop when
	// the last response resolves. Model bytes are tallied on comm.
	Dispatch(comm *Comm, cohort []int, now float64, global []float64, lc LocalConfig, deliver func([]TrainResult, error))

	// Probe accounts a control round-trip to each listed client — w
	// pushed down, a replyBytes-sized answer up (TiFL's accuracy
	// collection) — and returns the time the last reply lands. The
	// simulated fabric reserves link capacity; the live fabric only
	// tallies the bytes and returns now.
	Probe(comm *Comm, ids []int, now float64, w []float64, replyBytes int) (float64, error)

	// Evaluate measures the global model against the population's held-out
	// data; ok is false when the fabric has no evaluation harness (a live
	// server without mirrored data), in which case the engine skips the
	// Eval event.
	Evaluate(w []float64) (res Result, ok bool)
	// EvaluateSubset measures w on a subset of clients (TiFL's per-tier
	// accuracy collection); fabrics without a harness report 0.
	EvaluateSubset(w []float64, ids []int) float64
}

// SyncFabric is the optional fabric capability mirroring
// simnet.SyncScheduler: AtSync schedules a fold-site callback — one that
// may touch cross-engine state (the hierarchical cloud) — which a parallel
// timeline driver executes alone at a quiescent point. The engine prefers
// it over At at every fold site and falls back to At when the fabric (or
// its clock) has no such distinction.
type SyncFabric interface {
	AtSync(t float64, fn func())
}

// ---------------------------------------------------------------------------
// Simulated fabric

// simFabric runs methods on the discrete-event simulator: trainGroup
// computes each round's outcome synchronously (virtual link reservations,
// injected delays, the lossy codec channel) and a simnet clock is the
// timeline. It is the reference fabric: the bit-pinned golden runs define
// its behavior.
type simFabric struct {
	simnet.Clock
	env *Env
}

// Fabric returns a fresh simulated fabric over the environment. Each call
// makes a new one (the clock starts at zero), so one Env can back many
// runs.
func (e *Env) Fabric() Fabric { return e.FabricOn(simnet.New()) }

// FabricOn returns a simulated fabric over the environment driven by an
// externally owned clock — a child handle of a simnet.MultiClock when the
// environment is one edge of a hierarchical topology, so K edge fabrics
// share one deterministically merged timeline. The caller owns the clock's
// lifecycle; everything else (training arithmetic, link reservations,
// availability) stays per-environment.
func (e *Env) FabricOn(c simnet.Clock) Fabric { return &simFabric{Clock: c, env: e} }

func (f *simFabric) Dataset() string { return f.env.Fed.Name }
func (f *simFabric) NumClients() int { return len(f.env.Clients) }
func (f *simFabric) SampleCount(id int) int {
	return f.env.Clients[id].Data.NumTrain()
}
func (f *simFabric) Available(id int, now float64) bool {
	return f.env.Clients[id].Runtime.Available(now)
}
func (f *simFabric) NextAvailable(id int, now float64) float64 {
	return f.env.Clients[id].Runtime.NextOnline(now)
}
func (f *simFabric) InitialWeights() []float64 { return f.env.InitialWeights() }
func (f *simFabric) Shapes() []codec.ShapeInfo { return f.env.Shapes() }

// Partition profiles the simulated latencies. The environment's own config
// drives profiling (nominal round length, MisTierFrac corruption), so the
// cfg parameter is redundant here; it exists for fabrics with no Env.
func (f *simFabric) Partition(RunConfig) (*tiering.Tiers, error) {
	return ProfileTiers(f.env)
}

// Repartition is a no-op on the simulator: the engine owns the partition,
// and the simulated cluster has no per-tier execution state to update.
func (f *simFabric) Repartition(*tiering.Tiers) {}

// SyncDriven reports whether the fabric's clock actually distinguishes
// synchronization events — a MultiClock child, whose timeline a parallel
// driver may interleave with siblings. The engine uses it to decide
// whether pacer continuations must be deferred out of fold callbacks
// (they must, so training stays overlappable) or may run inline (the flat
// fast path, where deferral would only add event-heap traffic).
func (f *simFabric) SyncDriven() bool {
	_, ok := f.Clock.(simnet.SyncScheduler)
	return ok
}

// AtSync forwards fold-site scheduling to the clock's synchronization
// capability when it has one (a MultiClock child), and degrades to At
// otherwise (flat Sim) — where the flag would be meaningless anyway.
func (f *simFabric) AtSync(t float64, fn func()) {
	if s, ok := f.Clock.(simnet.SyncScheduler); ok {
		s.AtSync(t, fn)
		return
	}
	f.Clock.At(t, fn)
}

func (f *simFabric) Dispatch(comm *Comm, cohort []int, now float64, global []float64, lc LocalConfig, deliver func([]TrainResult, error)) {
	deliver(f.env.trainGroup(cohort, now, global, comm, lc))
}

func (f *simFabric) Probe(comm *Comm, ids []int, now float64, w []float64, replyBytes int) (float64, error) {
	latest := now
	for _, id := range ids {
		c := f.env.Clients[id]
		probed, bytes, err := comm.TransmitPooled(w, false)
		if err != nil {
			return 0, err
		}
		comm.Release(probed) // probes only need the byte accounting

		done := f.env.Cluster.DownloadArrival(now, c.Runtime, bytes)
		comm.CountControl(int64(replyBytes), true)
		done = f.env.Cluster.UploadArrival(done, c.Runtime, replyBytes)
		if done > latest {
			latest = done
		}
	}
	return latest, nil
}

func (f *simFabric) Evaluate(w []float64) (Result, bool) {
	return f.env.Eval.Evaluate(w), true
}
func (f *simFabric) EvaluateSubset(w []float64, ids []int) float64 {
	return f.env.Eval.EvaluateSubset(w, ids)
}
