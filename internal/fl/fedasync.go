package fl

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// FedAsync runs Xie et al.'s fully asynchronous baseline: every client
// trains continuously; whenever any client's update arrives the server
// mixes it into the global model with a staleness-discounted weight
// α_t = α·(staleness+1)^(−a) and immediately returns the fresh model to
// that client. With the whole population talking to the server at once,
// the shared server links become the communication bottleneck the paper
// demonstrates.
func FedAsync(env *Env) *metrics.Run {
	return runAsync(env, "FedAsync", false)
}

// ASOFed runs Chen et al.'s asynchronous online baseline: like FedAsync the
// clients are wait-free, but the server keeps a per-client model copy and
// the global model is the n_k-weighted average over ALL copies; clients
// train with the local constraint (λ>0).
func ASOFed(env *Env) *metrics.Run {
	return runAsync(env, "ASO-Fed", true)
}

func runAsync(env *Env, name string, aso bool) *metrics.Run {
	cfg := env.Cfg
	comm := NewComm(cfg.Codec, env.Shapes())
	rec := newRecorder(env, comm, name)

	sim := simnet.New()
	global := env.InitialWeights()
	version := 0
	done := false
	lambda := 0.0
	if aso {
		lambda = cfg.Lambda
	}

	// ASO-Fed server state: per-client copies and their running weighted
	// sum, so each arrival is O(params) instead of O(clients·params).
	var copies [][]float64
	var copySum []float64
	totalN := 0
	if aso {
		copies = make([][]float64, len(env.Clients))
		copySum = make([]float64, len(global))
		for i, c := range env.Clients {
			copies[i] = env.InitialWeights()
			n := c.Data.NumTrain()
			totalN += n
			tensor.Axpy(float64(n), copies[i], copySum)
		}
		for i := range global {
			global[i] = copySum[i] / float64(totalN)
		}
	}

	_ = rng.New(cfg.Seed) // selection-free: every client participates

	var startClient func(c *Client)
	startClient = func(c *Client) {
		if done {
			return
		}
		now := sim.Now()
		if !c.Runtime.Available(now) {
			return
		}
		startVersion := version
		wRecv, downBytes := comm.Transmit(global, false)
		downDone := env.Cluster.DownloadArrival(now, c.Runtime, downBytes)
		lc := env.LocalConfig(lambda, uint64(startVersion))
		w, steps := c.TrainLocal(wRecv, lc)
		computeDone := downDone + c.Runtime.ComputeTime(steps) + c.Runtime.RoundDelay()
		if !c.Runtime.Available(computeDone) {
			return // dropped mid-round; the update is lost
		}
		wUp, upBytes := comm.Transmit(w, true)
		arrive := env.Cluster.UploadArrival(computeDone, c.Runtime, upBytes)
		sim.At(arrive, func() {
			if done {
				return
			}
			if aso {
				n := float64(c.Data.NumTrain())
				old := copies[c.ID]
				for i := range copySum {
					copySum[i] += n * (wUp[i] - old[i])
				}
				copies[c.ID] = wUp
				for i := range global {
					global[i] = copySum[i] / float64(totalN)
				}
			} else {
				staleness := float64(version - startVersion)
				alpha := cfg.AsyncAlpha * math.Pow(staleness+1, -cfg.AsyncStaleExp)
				tensor.Lerp(global, wUp, alpha)
			}
			version++
			rec.maybeEval(version, sim.Now(), global)
			if version >= cfg.Rounds || (cfg.MaxSimTime > 0 && sim.Now() >= cfg.MaxSimTime) {
				done = true
				sim.Stop()
				return
			}
			startClient(c)
		})
	}
	for _, c := range env.Clients {
		startClient(c)
	}
	sim.Run()
	return rec.finish(version)
}
