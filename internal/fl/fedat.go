package fl

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// FedAT runs the paper's method (Algorithm 2): clients are partitioned into
// M latency tiers; every tier runs its own synchronous round loop
// concurrently, each starting from the latest global snapshot; on a tier's
// round completion the server folds the tier model and recomputes the
// global model with the Eq. 5 cross-tier weighted average (or uniformly
// when cfg.UniformAgg is set — the Figure 6 ablation). Both the uplink and
// the downlink pass through cfg.Codec, the paper's polyline compression.
func FedAT(env *Env) *metrics.Run {
	cfg := env.Cfg
	comm := NewComm(cfg.Codec, env.Shapes())
	rec := newRecorder(env, comm, "FedAT")

	tiers := ProfileTiers(env)
	agg, err := core.NewAggregator(tiers.M(), env.InitialWeights(), !cfg.UniformAgg)
	if err != nil {
		panic("fl: " + err.Error())
	}
	root := rng.New(cfg.Seed).SplitLabeled(hashName("FedAT"))
	tierRNG := make([]*rng.RNG, tiers.M())
	for m := range tierRNG {
		tierRNG[m] = root.SplitLabeled(uint64(m))
	}

	sim := simnet.New()
	done := false
	finish := func() {
		done = true
		sim.Stop()
	}

	var tierRound func(m int)
	tierRound = func(m int) {
		if done {
			return
		}
		now := sim.Now()
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			finish()
			return
		}
		sel := selectAvailable(tierRNG[m], tiers.Members[m], env.Clients, now, cfg.ClientsPerRound)
		if len(sel) == 0 {
			return // the whole tier is offline; it leaves the training
		}
		// Each tier trains from the freshest global model at ITS round
		// start — the asynchronous, cross-tier part of the design.
		results := env.trainGroup(sel, now, agg.Global(), comm, env.LocalConfig(cfg.Lambda, uint64(agg.Rounds())))
		comp := completionTime(results)
		surv := survivors(results)
		sim.At(comp, func() {
			if done {
				return
			}
			if len(surv) > 0 {
				g, err := agg.UpdateTier(m, toUpdates(surv))
				if err != nil {
					panic("fl: " + err.Error())
				}
				t := agg.Rounds()
				rec.maybeEval(t, sim.Now(), g)
				if t >= cfg.Rounds {
					finish()
					return
				}
			}
			tierRound(m)
		})
	}
	for m := 0; m < tiers.M(); m++ {
		tierRound(m)
	}
	sim.Run()
	return rec.finish(agg.Rounds())
}
