package fl

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// FedAvg runs the synchronous baseline (McMahan et al., Algorithm 1): each
// round samples ClientsPerRound clients from the whole population, trains
// them locally with λ=0, and replaces the global model with the
// n_k-weighted average. The server waits for the slowest selected client —
// the straggler effect the paper sets out to fix.
func FedAvg(env *Env) *metrics.Run {
	return runSync(env, "FedAvg", 0, false)
}

// FedProx runs Li et al.'s heterogeneity-aware baseline: local objectives
// carry the proximal term (λ>0) and clients perform variable numbers of
// local epochs (its device-heterogeneity mechanism).
func FedProx(env *Env) *metrics.Run {
	return runSync(env, "FedProx", env.Cfg.Lambda, true)
}

// runSync is the shared synchronous loop. A single-tier FedAT aggregator is
// exactly FedAvg's weighted average (§4.1: "with λ=0 and one tier, FedAT
// becomes FedAvg"), so the same core drives the baselines.
func runSync(env *Env, name string, lambda float64, variableEpochs bool) *metrics.Run {
	cfg := env.Cfg
	comm := NewComm(cfg.Codec, env.Shapes())
	rec := newRecorder(env, comm, name)

	agg, err := core.NewAggregator(1, env.InitialWeights(), true)
	if err != nil {
		panic("fl: " + err.Error())
	}
	root := rng.New(cfg.Seed).SplitLabeled(hashName(name))
	selRNG := root.SplitLabeled(1)
	epochRNG := root.SplitLabeled(2)

	all := make([]int, len(env.Clients))
	for i := range all {
		all[i] = i
	}

	now := 0.0
	rounds := 0
	// Attempt budget guards against a fully-dropped population.
	for attempt := 0; rounds < cfg.Rounds && attempt < 2*cfg.Rounds+10; attempt++ {
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			break
		}
		sel := selectAvailable(selRNG, all, env.Clients, now, cfg.ClientsPerRound)
		if len(sel) == 0 {
			break // everyone is offline; training cannot continue
		}
		lc := env.LocalConfig(lambda, uint64(rounds))
		if variableEpochs {
			// FedProx: distinct local epoch counts per round, E..1.
			lc.Epochs = 1 + epochRNG.Intn(cfg.LocalEpochs)
		}
		results := env.trainGroup(sel, now, agg.Global(), comm, lc)
		now = completionTime(results)
		surv := survivors(results)
		if len(surv) == 0 {
			continue // every selected client dropped; no update this round
		}
		g, err := agg.UpdateTier(0, toUpdates(surv))
		if err != nil {
			panic("fl: " + err.Error())
		}
		rounds++
		rec.maybeEval(rounds, now, g)
	}
	return rec.finish(rounds)
}

// hashName gives each method an independent RNG stream label.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}
