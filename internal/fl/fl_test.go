package fl

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// testEnv builds a small but non-trivial environment: 20 clients over the
// Fashion-MNIST stand-in with the paper's five delay tiers.
func testEnv(t *testing.T, classesPerClient int, cfg RunConfig) *Env {
	t.Helper()
	fed, err := dataset.FashionLike(20, classesPerClient, dataset.ScaleSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients:  20,
		NumUnstable: 2,
		DropHorizon: 2000,
		SecPerBatch: 0.05,
		UpBW:        1 << 20,
		DownBW:      1 << 20,
		ServerBW:    8 << 20,
		Seed:        cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 16, fed.Classes)
	}
	env, err := NewEnv(fed, cluster, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func baseCfg() RunConfig {
	return RunConfig{
		Rounds:          40,
		ClientsPerRound: 5,
		LocalEpochs:     2,
		BatchSize:       8,
		Lambda:          0.4,
		LearningRate:    0.01,
		NumTiers:        5,
		EvalEvery:       4,
		Seed:            3,
	}
}

func TestAllMethodsLearn(t *testing.T) {
	for _, name := range MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := baseCfg()
			env := testEnv(t, 0, cfg) // IID: every method should learn
			run := mustRun(t, name, env)
			if run.GlobalRounds == 0 {
				t.Fatal("no global rounds completed")
			}
			if len(run.Points) == 0 {
				t.Fatal("no evaluations recorded")
			}
			if best := run.BestAcc(); best < 0.18 {
				t.Fatalf("%s best accuracy %.3f, want > chance (0.1) by margin", name, best)
			}
			if run.UpBytes <= 0 || run.DownBytes <= 0 {
				t.Fatalf("%s has no communication: up=%d down=%d", name, run.UpBytes, run.DownBytes)
			}
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() ([]float64, int64) {
		cfg := baseCfg()
		cfg.Rounds = 15
		env := testEnv(t, 2, cfg)
		r := mustRun(t, "fedat", env)
		accs := make([]float64, len(r.Points))
		for i, p := range r.Points {
			accs[i] = p.Acc
		}
		return accs, r.UpBytes
	}
	a1, b1 := run()
	a2, b2 := run()
	if b1 != b2 {
		t.Fatalf("byte totals differ: %d vs %d", b1, b2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("eval counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("accuracy series diverges at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestFedATCompressionReducesBytes(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 30
	envRaw := testEnv(t, 2, cfg)
	rawRun := mustRun(t, "fedat", envRaw)

	cfg2 := cfg
	cfg2.Codec = codec.NewPolyline(4)
	envPoly := testEnv(t, 2, cfg2)
	polyRun := mustRun(t, "fedat", envPoly)

	if polyRun.UpBytes >= rawRun.UpBytes {
		t.Fatalf("polyline upload %d not below raw %d", polyRun.UpBytes, rawRun.UpBytes)
	}
	// The paper reports up to 3.5× compression; at minimum expect 1.5×.
	ratio := float64(rawRun.UpBytes) / float64(polyRun.UpBytes)
	if ratio < 1.5 {
		t.Fatalf("compression ratio only %.2f", ratio)
	}
	// The paper's claim is that precision 4 preserves accuracy: the
	// compressed run must track the uncompressed one, not diverge.
	if diff := math.Abs(polyRun.BestAcc() - rawRun.BestAcc()); diff > 0.15 {
		t.Fatalf("compression changed accuracy too much: poly=%.3f raw=%.3f",
			polyRun.BestAcc(), rawRun.BestAcc())
	}
}

func TestFedATUpdatesFasterThanFedAvg(t *testing.T) {
	// With heavy stragglers, each FedAvg round is gated by the slowest
	// selected client (often a 20–30s-delay tier-5 member), while FedAT's
	// update stream is dominated by the fast tiers. For an equal global
	// update budget FedAT's virtual clock must advance far less — the
	// mechanism behind the paper's Figure 2 speedups.
	cfg := baseCfg()
	cfg.Rounds = 60
	cfg.EvalEvery = 2
	envA := testEnv(t, 0, cfg)
	fedat := mustRun(t, "fedat", envA)
	envB := testEnv(t, 0, cfg)
	fedavg := mustRun(t, "fedavg", envB)

	if fedat.GlobalRounds < cfg.Rounds || fedavg.GlobalRounds < cfg.Rounds/2 {
		t.Fatalf("runs too short: fedat=%d fedavg=%d", fedat.GlobalRounds, fedavg.GlobalRounds)
	}
	ta := fedat.Points[len(fedat.Points)-1].Time
	tb := fedavg.Points[len(fedavg.Points)-1].Time
	perRoundA := ta / float64(fedat.GlobalRounds)
	perRoundB := tb / float64(fedavg.GlobalRounds)
	if perRoundA*2 > perRoundB {
		t.Fatalf("FedAT %.2fs/update not well below FedAvg %.2fs/update", perRoundA, perRoundB)
	}
	// Early FedAT accuracy is structurally modest: the Eq. 5 weights give
	// the fast tier (which does most early updates) little mass, so short
	// runs sit well below the converged level. Above-chance is the check.
	if fedat.BestAcc() < 0.17 {
		t.Fatalf("FedAT failed to learn: %.3f", fedat.BestAcc())
	}
}

func TestWeightedVsUniformAggregationDiffer(t *testing.T) {
	cfg := baseCfg()
	cfg.Rounds = 12
	envW := testEnv(t, 2, cfg)
	w := mustRun(t, "fedat", envW)

	cfgU := cfg
	cfgU.UniformAgg = true
	envU := testEnv(t, 2, cfgU)
	u := mustRun(t, "fedat", envU)

	if len(w.Points) == 0 || len(u.Points) == 0 {
		t.Fatal("missing evaluations")
	}
	same := true
	for i := range w.Points {
		if i >= len(u.Points) || w.Points[i].Acc != u.Points[i].Acc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("uniform aggregation produced identical accuracy series — flag has no effect")
	}
}

func TestTrainLocalFixedSchedule(t *testing.T) {
	cfg := baseCfg()
	env := testEnv(t, 0, cfg)
	c := env.Clients[0]
	w0 := env.InitialWeights()
	lc := env.LocalConfig(0.4, 7)
	// TrainLocal reuses its result buffer across calls; copy to compare.
	w1t, s1 := c.TrainLocal(w0, lc)
	w1 := tensor.Copy(w1t)
	w2t, s2 := c.TrainLocal(w0, lc)
	w2 := tensor.Copy(w2t)
	if s1 != s2 {
		t.Fatalf("step counts differ: %d vs %d", s1, s2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("same (client, round, weights) produced different results")
		}
	}
	w3, _ := c.TrainLocal(w0, env.LocalConfig(0.4, 8))
	diff := false
	for i := range w1 {
		if w1[i] != w3[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different rounds produced identical mini-batch schedules")
	}
}

func TestTrainLocalProximalPullsTowardAnchor(t *testing.T) {
	cfg := baseCfg()
	env := testEnv(t, 0, cfg)
	c := env.Clients[1]
	w0 := env.InitialWeights()
	lc := env.LocalConfig(0, 1)
	lc.Epochs = 4
	freeT, _ := c.TrainLocal(w0, lc)
	free := tensor.Copy(freeT) // TrainLocal reuses its result buffer
	lcProx := lc
	lcProx.Lambda = 50 // extreme constraint keeps w near the anchor
	prox, _ := c.TrainLocal(w0, lcProx)
	dFree, dProx := 0.0, 0.0
	for i := range w0 {
		dFree += (free[i] - w0[i]) * (free[i] - w0[i])
		dProx += (prox[i] - w0[i]) * (prox[i] - w0[i])
	}
	if dProx >= dFree {
		t.Fatalf("proximal run moved further (%.4f) than free run (%.4f)", dProx, dFree)
	}
}

func TestLocalConfigSteps(t *testing.T) {
	lc := LocalConfig{Epochs: 3, BatchSize: 10}
	if got := lc.Steps(25); got != 9 {
		t.Fatalf("Steps(25) = %d, want 9", got)
	}
	if got := lc.Steps(0); got != 0 {
		t.Fatalf("Steps(0) = %d", got)
	}
	if got := lc.Steps(10); got != 3 {
		t.Fatalf("Steps(10) = %d, want 3", got)
	}
}

func TestSelectAvailableExcludesDropped(t *testing.T) {
	cfg := baseCfg()
	env := testEnv(t, 0, cfg)
	// Force one client offline.
	env.Clients[3].Runtime.DropAt = 0
	fab := env.Fabric()
	ids := []int{3}
	if got := selectAvailable(rng.New(1), ids, fab, 1, 5); got != nil {
		t.Fatalf("dropped client selected: %v", got)
	}
	ids = []int{2, 3, 4}
	got := selectAvailable(rng.New(1), ids, fab, 1, 5)
	if len(got) != 2 {
		t.Fatalf("selection %v, want the two online clients", got)
	}
	for _, id := range got {
		if id == 3 {
			t.Fatal("dropped client selected")
		}
	}
}

func TestCommAccounting(t *testing.T) {
	shapes := []codec.ShapeInfo{{Name: "W", Dims: []int{4}}}
	cm := NewComm(codec.Raw{}, shapes)
	w := []float64{1, 2, 3, 4}
	got, n, err := cm.Transmit(w, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != cm.MessageBytes(w) {
		t.Fatalf("Transmit size %d != MessageBytes %d", n, cm.MessageBytes(w))
	}
	if cm.Up != int64(n) || cm.Down != 0 {
		t.Fatalf("uplink accounting wrong: up=%d down=%d", cm.Up, cm.Down)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatal("raw transmit corrupted weights")
		}
	}
	if _, _, err := cm.Transmit(w, false); err != nil {
		t.Fatal(err)
	}
	if cm.Down != int64(n) {
		t.Fatalf("downlink accounting wrong: %d", cm.Down)
	}
	cm.CountControl(10, true)
	if cm.Up != int64(n)+10 {
		t.Fatal("control accounting wrong")
	}
}

func TestEvaluatorWeightsAndVariance(t *testing.T) {
	cfg := baseCfg()
	env := testEnv(t, 2, cfg)
	res := env.Eval.Evaluate(env.InitialWeights())
	if res.Acc < 0 || res.Acc > 1 {
		t.Fatalf("accuracy out of range: %v", res.Acc)
	}
	if res.Variance < 0 {
		t.Fatalf("negative variance: %v", res.Variance)
	}
	if math.IsNaN(res.Loss) {
		t.Fatal("NaN loss")
	}
	// Subset evaluation should match full evaluation when given all ids.
	all := make([]int, len(env.Clients))
	for i := range all {
		all[i] = i
	}
	sub := env.Eval.EvaluateSubset(env.InitialWeights(), all)
	if math.Abs(sub-res.Acc) > 1e-12 {
		t.Fatalf("subset accuracy %v != full %v", sub, res.Acc)
	}
}

func TestEnvValidatesClientCount(t *testing.T) {
	fed, err := dataset.FashionLike(4, 0, dataset.ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{NumClients: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 8, fed.Classes)
	}
	if _, err := NewEnv(fed, cluster, factory, RunConfig{}); err == nil {
		t.Fatal("client-count mismatch accepted")
	}
}
