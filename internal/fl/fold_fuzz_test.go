package fl

import (
	"math"
	"testing"

	"repro/internal/core"
)

// fuzzVec derives a deterministic pseudo-random vector from seed (same LCG
// as the tensor kernel fuzzers).
func fuzzVec(seed uint64, n int) []float64 {
	v := make([]float64, n)
	s := seed
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
	}
	return v
}

// naiveAgg mirrors core.Aggregator with freshly-written textbook loops: no
// Axpy, no WeightedSumInto, no reused scratch — but the exact same FP
// summation order, which is the contract the in-place fold path must keep.
type naiveAgg struct {
	weighted bool
	tierW    [][]float64
	counts   []int
	total    int
	global   []float64
}

func newNaiveAgg(m int, w0 []float64, weighted bool) *naiveAgg {
	a := &naiveAgg{weighted: weighted, tierW: make([][]float64, m), counts: make([]int, m), global: append([]float64(nil), w0...)}
	for i := range a.tierW {
		a.tierW[i] = append([]float64(nil), w0...)
	}
	return a
}

func (a *naiveAgg) fold(m int, updates []core.ClientUpdate) []float64 {
	nc := 0
	for _, u := range updates {
		nc += u.N
	}
	tier := a.tierW[m]
	for i := range tier {
		tier[i] = 0
	}
	for _, u := range updates {
		c := float64(u.N) / float64(nc)
		for i := range tier {
			tier[i] += c * u.Weights[i]
		}
	}
	a.counts[m]++
	a.total++
	mm := len(a.tierW)
	w := make([]float64, mm)
	if a.weighted {
		den := float64(a.total + mm)
		for t := 0; t < mm; t++ {
			w[t] = (float64(a.counts[mm-1-t]) + 1) / den
		}
	} else {
		for t := range w {
			w[t] = 1 / float64(mm)
		}
	}
	for i := range a.global {
		s := 0.0
		for t := 0; t < mm; t++ {
			s += w[t] * a.tierW[t][i]
		}
		a.global[i] = s
	}
	return a.global
}

// FuzzFoldInPlace drives every UpdateRule's in-place fold (pooled buffers,
// reused tier models, reused Eq. 5 scratch) against a naive
// fresh-allocation reference with identical summation order, across
// fuzzer-chosen dimensions, tier counts, cohort sizes, staleness anchors
// and aliasing (an update whose weight slice IS the rule's live global
// buffer). Results must agree bit for bit, fold after fold.
func FuzzFoldInPlace(f *testing.F) {
	f.Add(uint64(1), 8, uint8(0), 1, 2, false)
	f.Add(uint64(2), 33, uint8(1), 3, 3, true)
	f.Add(uint64(3), 5, uint8(2), 2, 2, false)
	f.Add(uint64(4), 17, uint8(3), 4, 3, true)
	f.Add(uint64(5), 12, uint8(4), 3, 2, false)
	f.Fuzz(func(t *testing.T, seed uint64, dim int, which uint8, m, folds int, alias bool) {
		if dim < 1 || dim > 256 || m < 1 || m > 5 || folds < 1 || folds > 4 {
			t.Skip()
		}
		w0 := fuzzVec(seed, dim)
		numClients := 2 * m
		assignment := make([]int, numClients)
		for c := range assignment {
			assignment[c] = c % m
		}

		mkUpdates := func(fold, count int, implGlobal, naiveGlobal []float64) (impl, naive []core.ClientUpdate) {
			for k := 0; k < count; k++ {
				us := seed ^ uint64(fold*31+k+1)*0x9e3779b97f4a7c15
				wv := fuzzVec(us, dim)
				n := int(us%7) + 1
				client := int(us % uint64(numClients))
				iu := core.ClientUpdate{Weights: wv, N: n, Client: client}
				nu := core.ClientUpdate{Weights: append([]float64(nil), wv...), N: n, Client: client}
				if alias && k == 0 && fold > 0 {
					// The aliasing case: this update's weights ARE the live
					// global buffer the rule is about to rewrite. The naive
					// side aliases its own global the same way.
					iu.Weights = implGlobal
					nu.Weights = naiveGlobal
				}
				impl = append(impl, iu)
				naive = append(naive, nu)
			}
			return impl, naive
		}

		check := func(fold int, got, want []float64) {
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("rule %d fold %d: global[%d] = %x, naive = %x",
						which, fold, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}

		switch which % 5 {
		case 0: // avg — FedAvg's single-tier n_k-weighted mean
			agg, err := core.NewAggregator(1, w0, true)
			if err != nil {
				t.Fatal(err)
			}
			rule := &avgRule{agg: agg}
			ref := newNaiveAgg(1, w0, true)
			for fd := 0; fd < folds; fd++ {
				iu, nu := mkUpdates(fd, int(seed%3)+1, rule.Global(), ref.global)
				got, err := rule.Fold(Fold{Tier: 0, Updates: iu})
				if err != nil {
					t.Fatal(err)
				}
				check(fd, got, ref.fold(0, nu))
			}

		case 1, 2: // eq5 / uniform — FedAT's cross-tier fold, both weightings
			weighted := which%5 == 1
			agg, err := core.NewAggregator(m, w0, weighted)
			if err != nil {
				t.Fatal(err)
			}
			rule := &eq5Rule{agg: agg, assignment: assignment, forceUniform: !weighted}
			ref := newNaiveAgg(m, w0, weighted)
			for fd := 0; fd < folds; fd++ {
				iu, nu := mkUpdates(fd, int(seed%3)+1, rule.Global(), ref.global)
				tier := fd % m
				if fd%2 == 1 {
					// Untiered fold (tier -1): the rule routes each update
					// by its client's assignment, folding tier groups in
					// first-seen order. Mirror that routing naively.
					got, err := rule.Fold(Fold{Tier: -1, Updates: iu})
					if err != nil {
						t.Fatal(err)
					}
					var want []float64
					var order []int
					byTier := map[int][]core.ClientUpdate{}
					for _, u := range nu {
						tt := assignment[u.Client]
						if _, ok := byTier[tt]; !ok {
							order = append(order, tt)
						}
						byTier[tt] = append(byTier[tt], u)
					}
					for _, tt := range order {
						want = ref.fold(tt, byTier[tt])
					}
					check(fd, got, want)
					continue
				}
				got, err := rule.Fold(Fold{Tier: tier, Updates: iu})
				if err != nil {
					t.Fatal(err)
				}
				check(fd, got, ref.fold(tier, nu))
			}

		case 3: // staleness — FedAsync's α_t-blended in-place Lerp
			rule := &stalenessRule{global: append([]float64(nil), w0...), alpha: 0.6, sc: StalenessConfig{Func: StaleFuncPoly, Alpha: 0.5}}
			refG := append([]float64(nil), w0...)
			version := 0
			for fd := 0; fd < folds; fd++ {
				iu, nu := mkUpdates(fd, int(seed%3)+1, rule.global, refG)
				start := fd / 2 // a stale anchor: version - start >= 0
				for i := range iu {
					iu[i].StartRound = start
				}
				got, err := rule.Fold(Fold{Tier: -1, Updates: iu})
				if err != nil {
					t.Fatal(err)
				}
				for _, u := range nu {
					staleness := float64(version - start)
					alpha := 0.6 * math.Pow(staleness+1, -0.5)
					u1 := 1 - alpha
					for i := range refG {
						refG[i] = u1*refG[i] + alpha*u.Weights[i]
					}
				}
				version++
				check(fd, got, refG)
			}

		case 4: // asofed — per-client copies + running n_k-weighted sum
			rule := &asoRule{copies: make([][]float64, numClients), copySum: make([]float64, dim), global: make([]float64, dim)}
			refCopies := make([][]float64, numClients)
			refSum := make([]float64, dim)
			refG := make([]float64, dim)
			totalN := 0
			for c := 0; c < numClients; c++ {
				rule.copies[c] = append([]float64(nil), w0...)
				refCopies[c] = append([]float64(nil), w0...)
				n := c + 1
				totalN += n
				for i := range refSum {
					refSum[i] += float64(n) * w0[i]
					rule.copySum[i] += float64(n) * w0[i]
				}
			}
			rule.totalN = totalN
			for i := range refG {
				refG[i] = refSum[i] / float64(totalN)
				rule.global[i] = refG[i]
			}
			for fd := 0; fd < folds; fd++ {
				iu, nu := mkUpdates(fd, int(seed%3)+1, rule.global, refG)
				got, err := rule.Fold(Fold{Tier: -1, Updates: iu})
				if err != nil {
					t.Fatal(err)
				}
				for _, u := range nu {
					n := float64(u.N)
					old := refCopies[u.Client]
					for i := range refSum {
						refSum[i] += n * (u.Weights[i] - old[i])
					}
					copy(old, u.Weights)
				}
				for i := range refG {
					refG[i] = refSum[i] / float64(totalN)
				}
				check(fd, got, refG)
			}
		}
	})
}
