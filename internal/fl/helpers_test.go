package fl

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/tiering"
)

// mustRun executes a registry method, failing the test on any composition
// or aggregation error.
func mustRun(t testing.TB, name string, env *Env, obs ...Observer) *metrics.Run {
	t.Helper()
	run, err := Run(name, env, obs...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return run
}

// mustTiers profiles the environment's latency tiers.
func mustTiers(t testing.TB, env *Env) *tiering.Tiers {
	t.Helper()
	tiers, err := ProfileTiers(env)
	if err != nil {
		t.Fatal(err)
	}
	return tiers
}
