package fl

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/tiering"
)

// DefaultEvalSample is the lazy evaluator's sample size when
// RunConfig.EvalSample is unset. Populations at or below it are evaluated
// in full — which is why a small lazy run is bit-identical to the eager Env
// (TestLazyEnvMatchesEagerRun pins that).
const DefaultEvalSample = 256

// evalSampleName labels the RNG stream that draws the evaluation sample,
// hashed the same way method streams are so it collides with nothing.
const evalSampleName = "evalsample"

// LazyEnv is the O(cohort + model) counterpart of Env: a client exists as
// (seed, id) until the engine dispatches it. Its simulated runtime is
// materialized on first touch (simnet.Population), its dataset shard is
// synthesized at dispatch and released after the fold (dataset.Source), and
// its model replica, optimizer and RNG streams live in a small pool of
// workers bound to the cohort for exactly one round. Steady-state memory is
// the cohort plus a few model replicas, independent of the population size —
// the property the 1M-client preset depends on (a ceiling test asserts it).
//
// Everything the engine observes is bit-identical to the eager Env except
// evaluation, which measures a fixed deterministic sample of EvalSample
// clients instead of all N; at populations within the sample size the two
// environments produce byte-identical runs.
//
// Like Env, a LazyEnv is single-run-at-a-time: the worker pool and the
// population's materialization cache are not safe for concurrent runs.
type LazyEnv struct {
	Src *dataset.Source
	Pop *simnet.Population
	Cfg RunConfig

	// links is a Cluster shell carrying only the shared server links — the
	// only cluster state runCohort touches besides per-client runtimes.
	links   *simnet.Cluster
	factory ModelFactory
	w0      []float64
	shapes  []codec.ShapeInfo
	root    *rng.RNG // never advanced; anchors per-client stream derivation

	workers []*lazyWorker
	group   []*Client // cohort-resolution scratch, reused across rounds
	eval    *lazyEvaluator
}

// lazyWorker is one pooled client slot: the durable training machinery
// (model replica, optimizer, batch scratch inside Client) plus value-stored
// RNG streams the bind step retargets per client. Storing the streams by
// value keeps acquisition allocation-free.
type lazyWorker struct {
	c     Client
	sched rng.RNG
	dp    rng.RNG
}

// NewLazyEnv wires a lazy dataset source to a lazy population. The two must
// agree on the population size.
func NewLazyEnv(src *dataset.Source, pop *simnet.Population, factory ModelFactory, cfg RunConfig) (*LazyEnv, error) {
	if src.NumClients() != pop.NumClients() {
		return nil, fmt.Errorf("fl: population has %d clients, dataset has %d", pop.NumClients(), src.NumClients())
	}
	cfg = cfg.withDefaults()

	ref := factory(cfg.Seed)
	shapes := make([]codec.ShapeInfo, 0, len(ref.ParamShapes()))
	for _, s := range ref.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	le := &LazyEnv{
		Src:     src,
		Pop:     pop,
		Cfg:     cfg,
		links:   pop.Links(),
		factory: factory,
		w0:      ref.WeightsCopy(),
		shapes:  shapes,
		root:    rng.New(cfg.Seed),
	}
	le.eval = newLazyEvaluator(src, factory, cfg)
	return le, nil
}

// InitialWeights returns a copy of w0.
func (le *LazyEnv) InitialWeights() []float64 {
	out := make([]float64, len(le.w0))
	copy(out, le.w0)
	return out
}

// Shapes returns the model's parameter-block shapes (for the codec).
func (le *LazyEnv) Shapes() []codec.ShapeInfo { return le.shapes }

// ResetState restores link and per-client stream state so one LazyEnv can
// run several methods back-to-back under identical conditions — the lazy
// mirror of Env.ResetState. (Optimizer state needs no reset: TrainLocal
// resets it at every round entry.)
func (le *LazyEnv) ResetState() {
	le.links.Reset()
	le.Pop.Reset()
}

// newWorker builds one pooled client slot.
func (le *LazyEnv) newWorker() *lazyWorker {
	var o opt.Optimizer
	if le.Cfg.UseSGD {
		o = opt.NewSGD(le.Cfg.LearningRate)
	} else {
		o = opt.NewAdam(le.Cfg.LearningRate)
	}
	w := &lazyWorker{}
	w.c.Net = le.factory(le.Cfg.Seed) // same init everywhere; server state rules
	w.c.Opt = o
	w.c.scheduleRNG = &w.sched
	w.c.dpRNG = &w.dp
	return w
}

// bind points a pooled worker at client id: synthesize the shard,
// materialize the runtime, and rederive the labeled RNG streams — exactly
// the state NewEnv builds per client up front. Stream derivation is pure in
// (seed, id), so a rebound worker is indistinguishable from a permanent
// client (the lazy-vs-eager run test pins this end to end).
func (le *LazyEnv) bind(w *lazyWorker, id int) *Client {
	w.c.ID = id
	w.c.Data = le.Src.Client(id)
	w.c.Runtime = le.Pop.Materialize(id)
	a := le.Pop.AttackOf(id)
	a.Classes = le.Src.Classes() // simnet can't know the label space
	w.c.Attack = a
	w.sched = le.root.SplitLabeledValue(uint64(scheduleStreamBase + id))
	w.dp = le.root.SplitLabeledValue(uint64(dpStreamBase + id))
	return &w.c
}

// trainCohort is the lazy Dispatch body: bind a worker per cohort member,
// run the shared round logic, release the shards. The simulated fabric
// delivers synchronously, so one cohort is in flight at a time and the pool
// never grows past the largest cohort. Surviving results carry pooled comm
// buffers and dropped results are never read after delivery, so workers are
// reusable the moment this returns.
func (le *LazyEnv) trainCohort(sel []int, start float64, global []float64, comm *Comm, lc LocalConfig) ([]TrainResult, error) {
	for len(le.workers) < len(sel) {
		le.workers = append(le.workers, le.newWorker())
	}
	if cap(le.group) < len(sel) {
		le.group = make([]*Client, len(sel))
	}
	group := le.group[:len(sel)]
	for i, id := range sel {
		group[i] = le.bind(le.workers[i], id)
	}
	results, err := runCohort(group, le.links, start, global, comm, lc)
	for _, w := range le.workers[:len(sel)] {
		w.c.Data = nil // the shard dies with the round
	}
	return results, err
}

// profileTiers is ProfileTiers' lazy twin: identical latency arithmetic and
// mis-profiling corruption, answered from the population's pure queries and
// the source's split arithmetic instead of materialized clients.
func (le *LazyEnv) profileTiers() (*tiering.Tiers, error) {
	lc := LocalConfig{Epochs: le.Cfg.LocalEpochs, BatchSize: le.Cfg.BatchSize}
	lat := make([]float64, le.Src.NumClients())
	lo, hi := 1e300, 0.0
	for i := range lat {
		lat[i] = le.Pop.ExpectedLatency(i, lc.Steps(le.Src.NumTrain(i)))
		if lat[i] < lo {
			lo = lat[i]
		}
		if lat[i] > hi {
			hi = lat[i]
		}
	}
	if f := le.Cfg.MisTierFrac; f > 0 {
		r := rng.New(le.Cfg.Seed).SplitLabeled(hashName("mistier"))
		n := int(f * float64(len(lat)))
		for _, i := range r.Choose(len(lat), n) {
			lat[i] = r.Uniform(lo, hi) // profile scrambled within range
		}
	}
	return tiering.Partition(lat, le.Cfg.NumTiers)
}

// Fabric returns a fresh simulated fabric over the lazy environment.
func (le *LazyEnv) Fabric() Fabric { return le.FabricOn(simnet.New()) }

// FabricOn returns a simulated fabric over the lazy environment driven by
// an externally owned clock — the lazy mirror of Env.FabricOn.
func (le *LazyEnv) FabricOn(c simnet.Clock) Fabric { return &lazyFabric{Clock: c, env: le} }

// lazyFabric drives methods over the lazy environment: identical engine
// surface to simFabric, with dispatch binding pooled workers and every
// pure query answered without materializing clients.
type lazyFabric struct {
	simnet.Clock
	env *LazyEnv
}

func (f *lazyFabric) Dataset() string { return f.env.Src.Name() }
func (f *lazyFabric) NumClients() int { return f.env.Src.NumClients() }
func (f *lazyFabric) SampleCount(id int) int {
	return f.env.Src.NumTrain(id)
}
func (f *lazyFabric) Available(id int, now float64) bool {
	return f.env.Pop.Available(id, now)
}
func (f *lazyFabric) NextAvailable(id int, now float64) float64 {
	return f.env.Pop.NextOnline(id, now)
}
func (f *lazyFabric) InitialWeights() []float64 { return f.env.InitialWeights() }
func (f *lazyFabric) Shapes() []codec.ShapeInfo { return f.env.shapes }

func (f *lazyFabric) Partition(RunConfig) (*tiering.Tiers, error) {
	return f.env.profileTiers()
}

func (f *lazyFabric) Repartition(*tiering.Tiers) {}

// SyncDriven mirrors simFabric.SyncDriven: true only under a clock that
// distinguishes synchronization events (a MultiClock child).
func (f *lazyFabric) SyncDriven() bool {
	_, ok := f.Clock.(simnet.SyncScheduler)
	return ok
}

// AtSync mirrors simFabric.AtSync: fold sites reach the clock's
// synchronization capability when present, At otherwise.
func (f *lazyFabric) AtSync(t float64, fn func()) {
	if s, ok := f.Clock.(simnet.SyncScheduler); ok {
		s.AtSync(t, fn)
		return
	}
	f.Clock.At(t, fn)
}

func (f *lazyFabric) Dispatch(comm *Comm, cohort []int, now float64, global []float64, lc LocalConfig, deliver func([]TrainResult, error)) {
	deliver(f.env.trainCohort(cohort, now, global, comm, lc))
}

func (f *lazyFabric) Probe(comm *Comm, ids []int, now float64, w []float64, replyBytes int) (float64, error) {
	latest := now
	for _, id := range ids {
		rt := f.env.Pop.Materialize(id)
		probed, bytes, err := comm.TransmitPooled(w, false)
		if err != nil {
			return 0, err
		}
		comm.Release(probed) // probes only need the byte accounting

		done := f.env.links.DownloadArrival(now, rt, bytes)
		comm.CountControl(int64(replyBytes), true)
		done = f.env.links.UploadArrival(done, rt, replyBytes)
		if done > latest {
			latest = done
		}
	}
	return latest, nil
}

func (f *lazyFabric) Evaluate(w []float64) (Result, bool) {
	return f.env.eval.Evaluate(w), true
}
func (f *lazyFabric) EvaluateSubset(w []float64, ids []int) float64 {
	return f.env.eval.EvaluateSubset(w, ids)
}

// ---------------------------------------------------------------------------
// Sampled evaluation

// lazyEvaluator is the Evaluator over a lazy source: shards are synthesized
// per evaluation and dropped immediately, so an eval pass costs O(1) memory
// in the population size. It measures a fixed deterministic client sample
// (RunConfig.EvalSample, default DefaultEvalSample); when the sample covers
// the whole population the ids run 0..N-1 and the result is bit-identical
// to the eager Evaluator's.
type lazyEvaluator struct {
	src  *dataset.Source
	ids  []int
	nets []*nn.Network

	// Per-sampled-client scratch reused across Evaluate calls. Evaluate is
	// not safe for concurrent use (the run loops serialize evaluation).
	accs    []float64
	correct []int
	totals  []int
	losses  []float64
}

// evalSampleIDs picks the evaluation sample: the full population in id
// order when it fits, otherwise EvalSample ids drawn once from a dedicated
// labeled stream and sorted — fixed for the whole run so the accuracy
// series measures one consistent panel.
func evalSampleIDs(n int, cfg RunConfig) []int {
	k := cfg.EvalSample
	if k <= 0 {
		k = DefaultEvalSample
	}
	if k >= n {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	r := rng.New(cfg.Seed).SplitLabeled(hashName(evalSampleName))
	// Choose retains an O(N) permutation; copy the prefix so the sample is
	// all that survives.
	ids := append([]int(nil), r.Choose(n, k)...)
	sort.Ints(ids)
	return ids
}

func newLazyEvaluator(src *dataset.Source, factory ModelFactory, cfg RunConfig) *lazyEvaluator {
	ids := evalSampleIDs(src.NumClients(), cfg)
	workers := runtime.GOMAXPROCS(0)
	if len(ids) < workers {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	e := &lazyEvaluator{src: src, ids: ids}
	for i := 0; i < workers; i++ {
		e.nets = append(e.nets, factory(cfg.Seed))
	}
	return e
}

// Evaluate runs the model on every sampled client's test split — the eager
// Evaluator's strided-parallel structure, with each worker synthesizing the
// shard it is about to measure and dropping it right after.
func (e *lazyEvaluator) Evaluate(w []float64) Result {
	if len(e.accs) != len(e.ids) {
		e.accs = make([]float64, len(e.ids))
		e.correct = make([]int, len(e.ids))
		e.totals = make([]int, len(e.ids))
		e.losses = make([]float64, len(e.ids))
	}
	accs, correct, totals, losses := e.accs, e.correct, e.totals, e.losses
	for i := range accs {
		accs[i], correct[i], totals[i], losses[i] = 0, 0, 0, 0
	}

	var wg sync.WaitGroup
	nw := len(e.nets)
	wg.Add(nw)
	for wk := 0; wk < nw; wk++ {
		go func(wk int) {
			defer wg.Done()
			net := e.nets[wk]
			net.SetWeights(w)
			for i := wk; i < len(e.ids); i += nw {
				d := e.src.Client(e.ids[i])
				if d.NumTest() == 0 {
					continue
				}
				cor, loss := net.Eval(d.TestX, d.TestY)
				correct[i] = cor
				totals[i] = d.NumTest()
				losses[i] = loss * float64(totals[i])
				accs[i] = float64(cor) / float64(totals[i])
			}
		}(wk)
	}
	wg.Wait()

	totCorrect, totSamples := 0, 0
	totLoss := 0.0
	for i := range e.ids {
		totCorrect += correct[i]
		totSamples += totals[i]
		totLoss += losses[i]
	}
	if totSamples == 0 {
		return Result{}
	}
	return Result{
		Acc:      float64(totCorrect) / float64(totSamples),
		Loss:     totLoss / float64(totSamples),
		Variance: metrics.Variance(accs),
	}
}

// EvaluateSubset measures the model on an explicit client subset (TiFL's
// per-tier accuracy collection), synthesizing each shard on demand.
func (e *lazyEvaluator) EvaluateSubset(w []float64, ids []int) float64 {
	net := e.nets[0]
	net.SetWeights(w)
	correct, total := 0, 0
	for _, id := range ids {
		d := e.src.Client(id)
		if d.NumTest() == 0 {
			continue
		}
		cor, _ := net.Eval(d.TestX, d.TestY)
		correct += cor
		total += d.NumTest()
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
