package fl

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// lazyTestConfigs builds the paired eager/lazy inputs for one small but
// adversarial population: image shards, drift + churn + late joins, a
// scaling attack and the DP stage, so every lazily derived stream (speed,
// delay, drift, churn, schedule, DP noise, attack membership) is exercised.
func lazyTestConfigs(seed uint64) (dataset.Config, simnet.ClusterConfig, RunConfig) {
	dcfg := dataset.Config{
		Name: "lazylike", NumClients: 20, Classes: 10, SamplesPerClient: 24,
		ClassesPerClient: 2, Seed: seed, ImgC: 1, ImgH: 6, ImgW: 6,
		Signal: 0.3, Noise: 1.0,
	}
	ccfg := simnet.ClusterConfig{
		NumClients: 20, NumUnstable: 3, DropHorizon: 600,
		SecPerBatch: 0.05, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 8 << 20,
		Seed: seed,
		Behavior: simnet.BehaviorConfig{
			DriftMag: 0.2, DriftInterval: 40,
			ChurnFrac: 0.25, LateJoinFrac: 0.15,
			AttackFrac: 0.2, AttackKind: "scale", AttackScale: -2,
		},
	}
	rcfg := RunConfig{
		Rounds: 8, ClientsPerRound: 4, LocalEpochs: 1, BatchSize: 6,
		LearningRate: 0.02, NumTiers: 3, EvalEvery: 2,
		DPClip: 0.5, DPNoise: 0.01,
		Seed: seed,
	}
	return dcfg, ccfg, rcfg
}

func lazyTestFactory(inDim, classes int) ModelFactory {
	return func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), inDim, 8, classes)
	}
}

// buildLazy constructs the lazy environment for the paired configs.
func buildLazy(t testing.TB, dcfg dataset.Config, ccfg simnet.ClusterConfig, rcfg RunConfig) *LazyEnv {
	t.Helper()
	src, err := dataset.NewSource(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := simnet.NewPopulation(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	le, err := NewLazyEnv(src, pop, lazyTestFactory(src.InDim(), src.Classes()), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return le
}

// TestLazyEnvMatchesEagerRun is the tentpole equivalence: a full method run
// over the lazy environment — pooled workers, on-demand shards, runtimes
// materialized at dispatch, sampled evaluation covering the whole (small)
// population — produces a run record bit-identical to the eager Env's.
// The methods span all three pacers plus TiFL's probe/subset-eval path.
func TestLazyEnvMatchesEagerRun(t *testing.T) {
	for _, name := range []string{"fedat", "fedavg", "tifl", "fedasync"} {
		name := name
		t.Run(name, func(t *testing.T) {
			dcfg, ccfg, rcfg := lazyTestConfigs(17)
			fed, err := dataset.Generate(dcfg)
			if err != nil {
				t.Fatal(err)
			}
			cluster, err := simnet.NewCluster(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			env, err := NewEnv(fed, cluster, lazyTestFactory(fed.InDim, fed.Classes), rcfg)
			if err != nil {
				t.Fatal(err)
			}
			want := mustRun(t, name, env)

			le := buildLazy(t, dcfg, ccfg, rcfg)
			m, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.RunOn(le.Fabric(), le.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("lazy run diverged from eager run:\neager: %+v\nlazy:  %+v", want, got)
			}
		})
	}
}

// TestLazyEnvResetReuse pins the lazy reuse contract: after ResetState a
// second run on the SAME LazyEnv is bit-identical to the first — no worker
// binding, materialized runtime, delay-stream position or link reservation
// survives a run.
func TestLazyEnvResetReuse(t *testing.T) {
	dcfg, ccfg, rcfg := lazyTestConfigs(29)
	le := buildLazy(t, dcfg, ccfg, rcfg)
	m, err := Lookup("fedat")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *metrics.Run {
		r, err := m.RunOn(le.Fabric(), le.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	first := run()
	le.ResetState()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("run after ResetState diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// heapWatcher samples the live heap at every fold and evaluation — the
// points where a lazy run's footprint peaks (cohort shards just released,
// eval shards in flight).
type heapWatcher struct{ peak uint64 }

func (h *heapWatcher) OnEvent(ev Event) {
	switch ev.(type) {
	case TierFoldEvent, EvalEvent:
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > h.peak {
			h.peak = m.HeapAlloc
		}
	}
}

// TestLazyEnvMemoryCeiling is the scale guarantee: a one-million-client
// FedAT run completes with the heap bounded by a fixed ceiling independent
// of N — clients exist as (seed, id) until dispatched, shards die with
// their round, and evaluation touches a fixed sample. 256MB is ~40x what
// the run actually holds live; an accidental O(N) materialization (eager
// clients are ~10KB each) blows through it immediately.
func TestLazyEnvMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-client run; skipped in -short")
	}
	const n = 1_000_000
	dcfg := dataset.Config{
		Name: "hugelike", NumClients: n, Classes: 10, SamplesPerClient: 24,
		ClassesPerClient: 2, Seed: 1, ImgC: 1, ImgH: 6, ImgW: 6,
		Signal: 0.3, Noise: 1.0,
	}
	ccfg := simnet.ClusterConfig{
		NumClients: n, NumUnstable: 1000, DropHorizon: 20000,
		SecPerBatch: 0.05, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 16 << 20,
		Seed: 1,
	}
	rcfg := RunConfig{
		Rounds: 3, ClientsPerRound: 10, LocalEpochs: 1, BatchSize: 10,
		LearningRate: 0.02, NumTiers: 5, EvalEvery: 1, EvalSample: 64,
		Seed: 1,
	}
	le := buildLazy(t, dcfg, ccfg, rcfg)
	m, err := Lookup("fedat")
	if err != nil {
		t.Fatal(err)
	}
	watch := &heapWatcher{}
	run, err := m.RunOn(le.Fabric(), le.Cfg, watch)
	if err != nil {
		t.Fatal(err)
	}
	if run.GlobalRounds < rcfg.Rounds {
		t.Fatalf("1M-client run completed only %d/%d global rounds", run.GlobalRounds, rcfg.Rounds)
	}
	const ceiling = 256 << 20
	if watch.peak > ceiling {
		t.Fatalf("peak heap %dMB exceeds the %dMB ceiling — the lazy path is materializing O(N) state",
			watch.peak>>20, ceiling>>20)
	}
	if got := le.Pop.Materialized(); got >= n/100 {
		t.Fatalf("run materialized %d of %d runtimes; the population should stay lazy", got, n)
	}
}
