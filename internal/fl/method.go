package fl

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/tiering"
	"repro/internal/util"
)

// Method is a federated-learning method expressed as a declarative
// composition of policies: who trains (Select), how the loop is paced
// (Pace), how arrived updates fold into the global state (Update), and how
// clients train locally (Local). The registry below expresses every method
// the paper compares this way, and novel variants — over-selection inside
// FedAT's tiers, TiFL's credit selection feeding the Eq. 5 fold — are just
// different field values, no new loop code.
type Method struct {
	Name   string // display name, also the method's RNG stream label
	Select string // key into Selectors
	Pace   string // key into Pacers
	Update string // aggregation spec resolved by ParseAgg, e.g. "eq5" or "fedasync:poly:0.5"
	Local  LocalPolicy
}

// LocalPolicy configures the clients' local objective for a method.
type LocalPolicy struct {
	// Prox trains with the Eq. 3 proximal constraint (λ = cfg.Lambda);
	// false trains plain local SGD (λ = 0).
	Prox bool
	// VariableEpochs draws each round's local epoch count uniformly from
	// 1..cfg.LocalEpochs (FedProx's device-heterogeneity mechanism).
	VariableEpochs bool
}

// String renders the composition, e.g. "random/sync/avg".
func (m Method) String() string {
	return fmt.Sprintf("%s/%s/%s", m.Select, m.Pace, m.Update)
}

// Methods is the registry of every method the paper compares, plus the
// over-selection strategy §2.1 discusses, each as a declarative policy
// composition.
var Methods = map[string]Method{
	"fedat":          {Name: "FedAT", Select: "random", Pace: "tier", Update: "eq5", Local: LocalPolicy{Prox: true}},
	"fedavg":         {Name: "FedAvg", Select: "random", Pace: "sync", Update: "avg"},
	"fedprox":        {Name: "FedProx", Select: "random", Pace: "sync", Update: "avg", Local: LocalPolicy{Prox: true, VariableEpochs: true}},
	"tifl":           {Name: "TiFL", Select: "tifl", Pace: "sync", Update: "avg"},
	"fedasync":       {Name: "FedAsync", Select: "all", Pace: "client", Update: "staleness"},
	"asofed":         {Name: "ASO-Fed", Select: "all", Pace: "client", Update: "asofed", Local: LocalPolicy{Prox: true}},
	"fedavg-oversel": {Name: "FedAvg+oversel", Select: "oversel", Pace: "sync", Update: "avg"},
}

// MethodNames returns the registry keys in deterministic order.
func MethodNames() []string { return util.SortedKeys(Methods) }

// Lookup resolves a method spec by its registry name.
func Lookup(name string) (Method, error) {
	m, ok := Methods[name]
	if !ok {
		return Method{}, fmt.Errorf("fl: unknown method %q (have %v)", name, MethodNames())
	}
	return m, nil
}

// Compose resolves a base registry method and applies policy overrides
// (empty strings keep the base's policy), deriving a display name like
// "FedAT[select=oversel]" unless an explicit name is given. It is the
// single implementation behind fedsim's -compose flags and fedserver's
// -select/-pacer/-agg flags, so the two CLIs' composition surfaces cannot
// drift.
func Compose(base, sel, pace, update, name string) (Method, error) {
	m, err := Lookup(base)
	if err != nil {
		return Method{}, err
	}
	var overrides []string
	if sel != "" {
		m.Select = sel
		overrides = append(overrides, "select="+sel)
	}
	if pace != "" {
		m.Pace = pace
		overrides = append(overrides, "pacer="+pace)
	}
	if update != "" {
		m.Update = update
		overrides = append(overrides, "agg="+update)
	}
	if name != "" {
		m.Name = name
	} else if len(overrides) > 0 {
		m.Name = fmt.Sprintf("%s[%s]", m.Name, strings.Join(overrides, ","))
	}
	return m, nil
}

// Run looks up a registry method and runs it — the common path for callers
// that address methods by name.
func Run(name string, env *Env, obs ...Observer) (*metrics.Run, error) {
	m, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return m.Run(env, obs...)
}

// Run executes the method on the simulated environment and returns the run
// record — shorthand for RunOn over a fresh simulated fabric.
func (m Method) Run(env *Env, obs ...Observer) (*metrics.Run, error) {
	return m.RunOn(env.Fabric(), env.Cfg, obs...)
}

// RunOn executes the method on an execution fabric — the simulator or the
// live TCP transport — and returns the run record. Extra observers
// subscribe to the run event stream alongside the built-in recorder.
// Composition errors (unknown policy keys, a pacer/selector mismatch),
// aggregation errors and channel errors surface here instead of panicking.
func (m Method) RunOn(fab Fabric, cfg RunConfig, obs ...Observer) (*metrics.Run, error) {
	if m.Name == "" {
		return nil, fmt.Errorf("fl: method has no name")
	}
	selFac, ok := Selectors[m.Select]
	if !ok {
		return nil, fmt.Errorf("fl: method %s: unknown selector %q (have %v)", m.Name, m.Select, util.SortedKeys(Selectors))
	}
	pacer, ok := Pacers[m.Pace]
	if !ok {
		return nil, fmt.Errorf("fl: method %s: unknown pacer %q (have %v)", m.Name, m.Pace, util.SortedKeys(Pacers))
	}
	rule, err := ParseAgg(m.Update)
	if err != nil {
		return nil, fmt.Errorf("fl: method %s: %w", m.Name, err)
	}

	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed).SplitLabeled(hashName(m.Name))
	rec := newRecorder(m.Name, fab.Dataset())
	rs := &runState{
		fab:      fab,
		cfg:      cfg,
		method:   m,
		comm:     NewComm(cfg.Codec, fab.Shapes()),
		root:     root,
		epochRNG: root.SplitLabeled(epochLabel(m, cfg)),
		sel:      selFac(),
		rule:     rule,
		obs:      append([]Observer{rec}, obs...),
	}
	if sd, ok := fab.(interface{ SyncDriven() bool }); ok {
		rs.deferResume = sd.SyncDriven()
	}
	for _, o := range obs {
		if s, ok := o.(Syncer); ok {
			rs.syncers = append(rs.syncers, s)
		}
	}
	if cfg.RetierEvery > 0 {
		rs.lat = tiering.NewTracker(fab.NumClients(), cfg.RetierAlpha)
	}
	// The update rule initializes before the selector: selectors that adapt
	// to the global state (TiFL's accuracy-driven credits) may read it from
	// their first Pick on.
	if err := rs.rule.Init(rs); err != nil {
		return nil, fmt.Errorf("fl: method %s: %w", m.Name, err)
	}
	if err := rs.sel.Init(rs); err != nil {
		return nil, fmt.Errorf("fl: method %s: %w", m.Name, err)
	}
	if err := pacer.Run(rs); err != nil {
		return nil, fmt.Errorf("fl: method %s: %w", m.Name, err)
	}
	return rec.finish(rs.comm, rs.rule.Rounds()), nil
}

// runState is the per-run engine state shared by the policies: the fabric,
// the run configuration, the communication accounting, the composed policy
// instances and the event/eval plumbing. Policies receive it in every hook.
type runState struct {
	fab      Fabric
	cfg      RunConfig
	method   Method
	comm     *Comm
	root     *rng.RNG // method-labelled RNG root; policies split their streams off it
	epochRNG *rng.RNG // FedProx's variable-epoch stream (label 2)
	sel      Selector
	rule     UpdateRule
	obs      []Observer
	syncers  []Syncer // observers that intervene after folds (edge uplinks)

	tiers      *tiering.Tiers // memoized latency partition
	nextEvalAt int

	// Runtime re-tiering state (RetierEvery > 0): the EWMA latency tracker
	// fed by observed round latencies, and the global update count at the
	// last retier pass.
	lat        *tiering.Tracker
	lastRetier int

	// Adaptive-LR state (cfg.AdaptiveLR): each dispatch loop's last
	// observed fold staleness, keyed by the loop — client id for the
	// wait-free pacers, tier for tier pacing, lrSyncLoop for sync pacing
	// (which never observes: a sync cohort's model is never stale, so its
	// scale stays g(0) = 1). The next dispatch of the same loop trains with
	// LR scaled by the weight function at that staleness.
	lrStale map[int]int

	// deferResume is set when the fabric's clock distinguishes
	// synchronization events (a MultiClock child): pacer continuations are
	// then deferred out of fold callbacks into their own owner-local events
	// (see resume). Plain clocks keep the inline fast path.
	deferResume bool
}

// Tiers returns the fabric's latency partition, computing it on first use —
// tier-paced methods, tier-aware selectors and the Eq. 5 fold all share one
// partition per run, exactly as FedAT reuses TiFL's tiering (§2.1).
func (rs *runState) Tiers() (*tiering.Tiers, error) {
	if rs.tiers == nil {
		t, err := rs.fab.Partition(rs.cfg)
		if err != nil {
			return nil, err
		}
		rs.tiers = t
	}
	return rs.tiers, nil
}

// lrSyncLoop keys the sync pacer's single dispatch loop in lrStale.
const lrSyncLoop = 0

// localConfig derives the round's local-training settings from the method's
// LocalPolicy. loop identifies the dispatch loop for the adaptive-LR stage
// (client id, tier, or lrSyncLoop).
func (rs *runState) localConfig(round uint64, loop int) LocalConfig {
	lambda := 0.0
	if rs.method.Local.Prox {
		if lambda = rs.cfg.Lambda; lambda < 0 {
			lambda = 0 // LambdaOff: proximal term explicitly disabled
		}
	}
	lc := LocalConfig{
		Epochs:    rs.cfg.LocalEpochs,
		BatchSize: rs.cfg.BatchSize,
		Lambda:    lambda,
		Round:     round,
		DPClip:    rs.cfg.DPClip,
		DPNoise:   rs.cfg.DPNoise,
	}
	if rs.cfg.AdaptiveLR {
		lc.LRScale = rs.cfg.Staleness.Weight(float64(rs.lrStale[loop]))
	}
	if rs.method.Local.VariableEpochs {
		lc.Epochs = 1 + rs.epochRNG.Intn(rs.cfg.LocalEpochs)
	}
	return lc
}

// observeStale records a dispatch loop's realized fold staleness — the
// global updates that accumulated between the loop's dispatch (startRound)
// and its fold — for the adaptive-LR stage. Pacers call it at their fold
// sites, before the fold advances the version; sync pacing never does (its
// staleness is 0 by construction).
func (rs *runState) observeStale(loop, startRound int) {
	if !rs.cfg.AdaptiveLR {
		return
	}
	if rs.lrStale == nil {
		rs.lrStale = make(map[int]int)
	}
	s := rs.rule.Rounds() - startRound
	if s < 0 {
		s = 0
	}
	rs.lrStale[loop] = s
}

// atSync schedules a fold-site callback: an event that folds into the
// global model and may reach cross-engine state (the hierarchical cloud via
// postFold). Fabrics that distinguish synchronization events (SyncFabric —
// a MultiClock child under a parallel driver) run it alone at a quiescent
// point of the merged timeline; everywhere else this is exactly At.
func (rs *runState) atSync(t float64, fn func()) {
	if s, ok := rs.fab.(SyncFabric); ok {
		s.AtSync(t, fn)
		return
	}
	rs.fab.At(t, fn)
}

// resume runs a pacer continuation — selecting and dispatching the next
// round. Under a synchronization-driven clock (a MultiClock child that may
// be driven in parallel) the continuation is deferred into its own event at
// the current time: keeping dispatch out of the fold-site callbacks means
// local training runs as an ordinary owner-local event, which is what a
// parallel timeline driver is allowed to overlap across engines, and the
// deferred event fires immediately after the fold at the same timestamp so
// results are unchanged. On every other fabric the continuation runs
// inline — the fold callback IS an ordinary event there, and deferral
// would only add per-fold event-heap traffic on the hot path.
func (rs *runState) resume(fn func()) {
	if rs.deferResume {
		rs.fab.At(rs.fab.Now(), fn)
		return
	}
	fn()
}

// emit broadcasts one event to every observer.
func (rs *runState) emit(ev Event) {
	for _, o := range rs.obs {
		o.OnEvent(ev)
	}
}

// emitClientDones reports each trained client's resolution and, when
// runtime re-tiering is on, folds each surviving client's observed response
// latency (dispatch to server arrival) into the EWMA tracker.
func (rs *runState) emitClientDones(tier int, start float64, results []TrainResult) {
	for i := range results {
		r := &results[i]
		rs.emit(ClientDoneEvent{Client: r.Client, Tier: tier, Time: r.Arrive, Dropped: r.Dropped})
		if rs.lat != nil && !r.Dropped {
			rs.lat.Observe(r.Client, r.Arrive-start)
		}
	}
}

// releaseResults hands the pooled uplink buffers of delivered results back
// to the run's weight pool, after the fold that consumed them. Dropped
// results are skipped: their upload never happened, so they still carry the
// client's own training buffer, which must never enter the pool. Pacers
// call this with the FULL delivery (not just the kept subset) so buffers
// discarded by a selector — over-selection's late arrivals — recycle too.
func (rs *runState) releaseResults(results []TrainResult) {
	for i := range results {
		if !results[i].Dropped {
			rs.comm.Release(results[i].Weights)
			results[i].Weights = nil
		}
	}
}

// postFold finishes one engine fold: it emits the TierFoldEvent every
// observer sees, then gives each attached Syncer its chance to push the
// fresh model toward the cloud and hand back a merged model to adopt. It
// returns the global model training continues from — g itself on the flat
// fast path (no syncers: byte-identical to the pre-hierarchy engine), or
// the rebased rule state after an adoption. All three pacers call it at
// their fold sites, so hierarchical sync policy lives in exactly one place.
func (rs *runState) postFold(tier, round int, now float64, kept int, g []float64) ([]float64, error) {
	rs.emit(TierFoldEvent{Tier: tier, Round: round, Time: now, Kept: kept, Global: g})
	for _, s := range rs.syncers {
		d := s.AfterFold(FoldInfo{Tier: tier, Round: round, Time: now, Global: g})
		for _, ev := range d.Events {
			rs.emit(ev)
		}
		if d.Rebase != nil {
			rb, ok := rs.rule.(Rebaser)
			if !ok {
				return nil, fmt.Errorf("update rule %q cannot adopt a hierarchical rebase", rs.method.Update)
			}
			g = rb.Rebase(d.Rebase)
		}
	}
	return g, nil
}

// maybeRetier runs a re-tiering pass when RetierEvery global updates have
// accumulated since the last one: the current partition is recomputed from
// the tracker's smoothed observed latencies with hysteresis, the update
// rule and the fabric are informed, and a RetierEvent fires. It reports
// whether a pass ran. Pacers whose loops depend on tier membership call it
// after each fold; synchronous pacing never does — the paper's baselines
// do not re-profile. A run with no tier partition at all (client pacing
// over an untiered update rule) has nothing to re-tier and never passes.
func (rs *runState) maybeRetier(now float64) (bool, error) {
	if rs.lat == nil || rs.tiers == nil {
		return false, nil
	}
	t := rs.rule.Rounds()
	if t < rs.lastRetier+rs.cfg.RetierEvery {
		return false, nil
	}
	rs.lastRetier = t
	next, moved, err := tiering.Retier(rs.lat.Estimates(), rs.tiers, tiering.RetierOpts{Margin: rs.cfg.RetierMargin})
	if err != nil {
		return false, err
	}
	rs.tiers = next
	if ta, ok := rs.rule.(TierAware); ok {
		ta.Repartition(next)
	}
	rs.fab.Repartition(next)
	rs.emit(RetierEvent{Round: t, Time: now, Migrations: moved, Tiers: next})
	return true, nil
}

// maybeEval evaluates the global model at the configured cadence and emits
// the Eval event the recorder (and any other observer) consumes. Fabrics
// without an evaluation harness skip the event.
func (rs *runState) maybeEval(round int, now float64, w []float64) {
	if round < rs.nextEvalAt {
		return
	}
	rs.nextEvalAt = round + rs.cfg.EvalEvery
	res, ok := rs.fab.Evaluate(w)
	if !ok {
		return
	}
	rs.emit(EvalEvent{
		Round: round, Time: now, Result: res,
		UpBytes: rs.comm.Up, DownBytes: rs.comm.Down,
	})
}

// epochLabel picks the RNG stream label for the variable-epochs draw: the
// first label the method's selection policies do not already claim off the
// same root, so a composition's epoch counts are never correlated with its
// selection draws. The historical label assignments are fixed by the
// bit-pinned golden runs — FedProx (random/sync) must keep label 2 — which
// is why this walks forward from 2 instead of hashing a fresh namespace.
func epochLabel(m Method, cfg RunConfig) uint64 {
	claimed := map[uint64]bool{}
	switch m.Select {
	case "random", "oversel":
		claimed[1] = true // selRNG
	case "tifl":
		claimed[1], claimed[2] = true, true // tierRNG, selRNG
	}
	if m.Pace == "tier" {
		// Per-tier streams are labelled by tier index.
		for l := 0; l < cfg.NumTiers; l++ {
			claimed[uint64(l)] = true
		}
	}
	l := uint64(2)
	for claimed[l] {
		l++
	}
	return l
}

// hashName gives each method an independent RNG stream label (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}
