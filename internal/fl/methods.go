package fl

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Runner is a federated-learning method: it consumes an environment and
// produces the run record.
type Runner func(*Env) *metrics.Run

// Methods is the registry of every method the paper compares, plus the
// over-selection strategy §2.1 discusses as a straggler mitigation.
var Methods = map[string]Runner{
	"fedat":          FedAT,
	"fedavg":         FedAvg,
	"fedprox":        FedProx,
	"tifl":           TiFL,
	"fedasync":       FedAsync,
	"asofed":         ASOFed,
	"fedavg-oversel": FedAvgOverSel,
}

// MethodNames returns the registry keys in deterministic order.
func MethodNames() []string {
	names := make([]string, 0, len(Methods))
	for n := range Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a method by its registry name.
func Lookup(name string) (Runner, error) {
	r, ok := Methods[name]
	if !ok {
		return nil, fmt.Errorf("fl: unknown method %q (have %v)", name, MethodNames())
	}
	return r, nil
}
