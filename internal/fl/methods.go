package fl

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/util"
)

// Runner is a federated-learning method: it consumes an environment and
// produces the run record.
type Runner func(*Env) *metrics.Run

// Methods is the registry of every method the paper compares, plus the
// over-selection strategy §2.1 discusses as a straggler mitigation.
var Methods = map[string]Runner{
	"fedat":          FedAT,
	"fedavg":         FedAvg,
	"fedprox":        FedProx,
	"tifl":           TiFL,
	"fedasync":       FedAsync,
	"asofed":         ASOFed,
	"fedavg-oversel": FedAvgOverSel,
}

// MethodNames returns the registry keys in deterministic order.
func MethodNames() []string { return util.SortedKeys(Methods) }

// Lookup resolves a method by its registry name.
func Lookup(name string) (Runner, error) {
	r, ok := Methods[name]
	if !ok {
		return nil, fmt.Errorf("fl: unknown method %q (have %v)", name, MethodNames())
	}
	return r, nil
}
