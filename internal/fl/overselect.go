package fl

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// FedAvgOverSel implements the over-selection strategy of Bonawitz et al.
// that §2.1 discusses: each round the server selects 130% of the target
// client count and aggregates the first ~77% (= target/1.3 of the selected)
// updates to arrive, neglecting the slowest 30%. The round ends when the
// last counted update lands, so stragglers stop gating rounds — at the cost
// of extra communication (the discarded updates were still trained and
// uploaded) and of systematically dropping the slowest clients' data, the
// failure mode the paper points out.
func FedAvgOverSel(env *Env) *metrics.Run {
	const overFactor = 1.3
	cfg := env.Cfg
	comm := NewComm(cfg.Codec, env.Shapes())
	rec := newRecorder(env, comm, "FedAvg+oversel")

	agg, err := core.NewAggregator(1, env.InitialWeights(), true)
	if err != nil {
		panic("fl: " + err.Error())
	}
	root := rng.New(cfg.Seed).SplitLabeled(hashName("FedAvg+oversel"))
	selRNG := root.SplitLabeled(1)

	all := make([]int, len(env.Clients))
	for i := range all {
		all[i] = i
	}

	now := 0.0
	rounds := 0
	for attempt := 0; rounds < cfg.Rounds && attempt < 2*cfg.Rounds+10; attempt++ {
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			break
		}
		over := int(float64(cfg.ClientsPerRound)*overFactor + 0.5)
		sel := selectAvailable(selRNG, all, env.Clients, now, over)
		if len(sel) == 0 {
			break
		}
		results := env.trainGroup(sel, now, agg.Global(), comm, env.LocalConfig(0, uint64(rounds)))
		surv := survivors(results)
		if len(surv) == 0 {
			now = completionTime(results)
			continue
		}
		// Keep the earliest arrivals up to the target count; the rest are
		// received later but ignored (their bytes were already counted).
		keep := cfg.ClientsPerRound
		if keep > len(surv) {
			keep = len(surv)
		}
		sortByArrival(surv)
		kept := surv[:keep]
		now = completionTime(kept)
		g, err := agg.UpdateTier(0, toUpdates(kept))
		if err != nil {
			panic("fl: " + err.Error())
		}
		rounds++
		rec.maybeEval(rounds, now, g)
	}
	return rec.finish(rounds)
}

// sortByArrival orders results by server arrival time (stable insertion
// sort: the slices are ~13 elements).
func sortByArrival(rs []trainResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].arrive < rs[j-1].arrive; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
