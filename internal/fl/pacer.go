package fl

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// earliestRejoin reports the soonest time any of the listed clients comes
// (back) online after now — +Inf when none ever will. Static populations
// only ever produce +Inf here (departures are permanent), so the rejoin
// paths below never schedule anything on the pre-dynamics timeline.
func earliestRejoin(rs *runState, ids []int, now float64) float64 {
	earliest := math.Inf(1)
	for _, id := range ids {
		if t := rs.fab.NextAvailable(id, now); t < earliest {
			earliest = t
		}
	}
	return earliest
}

// Pacer is the loop-structure policy of a method: it decides when cohorts
// train and when the update rule folds. The three pacers below are the
// paper's three temporal regimes — lock-step synchronous rounds (FedAvg,
// FedProx, TiFL, over-selection), concurrent per-tier round loops (FedAT),
// and wait-free per-client loops (FedAsync, ASO-Fed).
//
// Pacers are written once against the Fabric interface in continuation
// style: work is started with Dispatch, folds are sequenced with atSync,
// and the fabric's clock decides what "concurrent" means. On the simulated
// fabric Dispatch delivers synchronously and scheduling queues on the
// virtual event loop — exactly the discrete-event structure the golden
// runs pin. On the live fabric Dispatch trains real clients over TCP while
// other cohorts proceed, and deliveries serialize on the wall-clock run
// loop. Fold callbacks touch shared state (the update rule, the
// hierarchical cloud), so they go through rs.atSync; the continuation that
// starts the NEXT round is split out through rs.resume so that dispatch
// and local training stay in plain owner-local events a parallel timeline
// driver may overlap across edges.
type Pacer interface {
	Run(rs *runState) error
}

// Pacers is the registry of pacing policies.
var Pacers = map[string]Pacer{
	"sync":    syncPacer{},
	"tier":    tierPacer{},
	"client":  clientPacer{},
	"fedbuff": bufferPacer{},
}

// ---------------------------------------------------------------------------
// sync: one global round at a time; the server waits for the round's
// completion time before starting the next — the straggler effect the paper
// sets out to fix.

type syncPacer struct{}

func (syncPacer) Run(rs *runState) error {
	sel, ok := rs.sel.(RoundSelector)
	if !ok {
		return fmt.Errorf("sync pacing needs a round selector, %q is not one", rs.method.Select)
	}
	cfg := rs.cfg
	var runErr error
	fail := func(err error) {
		runErr = err
		rs.fab.Stop()
	}
	// Attempt budget guards against a fully-dropped population.
	attempt := 0
	var step func(now float64)
	step = func(now float64) {
		for {
			if rs.rule.Rounds() >= cfg.Rounds || attempt >= 2*cfg.Rounds+10 {
				return
			}
			if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
				return
			}
			attempt++
			cohort, tier, selNow, outcome, err := sel.Pick(rs, now)
			if err != nil {
				fail(err)
				return
			}
			now = selNow
			if outcome == SelectStop {
				return
			}
			if outcome == SelectSkip {
				continue
			}
			round := rs.rule.Rounds()
			rs.emit(RoundStartEvent{Tier: tier, Round: round, Time: now, Clients: cohort})
			start := now
			rs.fab.Dispatch(rs.comm, cohort, now, rs.rule.Global(), rs.localConfig(uint64(round), lrSyncLoop), func(results []TrainResult, err error) {
				if err != nil {
					fail(err)
					return
				}
				rs.emitClientDones(tier, start, results)
				kept, comp := sel.Harvest(rs, results)
				rs.atSync(comp, func() {
					if len(kept) == 0 {
						rs.releaseResults(results)
						// Every counted client dropped; no update this round.
						rs.resume(func() { step(comp) })
						return
					}
					g, err := rs.rule.Fold(Fold{Tier: tier, Updates: toUpdates(kept, round)})
					if err != nil {
						fail(err)
						return
					}
					rs.releaseResults(results)
					t := rs.rule.Rounds()
					g, err = rs.postFold(tier, t, comp, len(kept), g)
					if err != nil {
						fail(err)
						return
					}
					rs.maybeEval(t, comp, g)
					rs.resume(func() { step(comp) })
				})
			})
			return // the round is in flight; resume from its completion
		}
	}
	step(0)
	rs.fab.Run()
	return runErr
}

// ---------------------------------------------------------------------------
// tier: FedAT's Algorithm 2 — every tier runs its own synchronous round
// loop concurrently, each round training from the freshest global model at
// ITS start; folds land at each tier's own completion time.

type tierPacer struct{}

func (tierPacer) Run(rs *runState) error {
	tsel, ok := rs.sel.(TierSelector)
	if !ok {
		return fmt.Errorf("tier pacing needs a tier selector, %q is not one", rs.method.Select)
	}
	tiers, err := rs.Tiers()
	if err != nil {
		return err
	}
	cfg := rs.cfg
	done := false
	var runErr error
	finish := func() {
		done = true
		rs.fab.Stop()
	}
	fail := func(err error) {
		runErr = err
		finish()
	}

	// active[m] tracks whether tier m's loop is running (a round in flight
	// or a rejoin resume scheduled). A loop exits only when the tier has
	// nobody coming back; a runtime retier pass can later hand that tier
	// live members, so exited loops are re-kicked after each pass.
	active := make([]bool, tiers.M())
	var tierRound func(m int)
	tierRound = func(m int) {
		if done {
			return
		}
		active[m] = true
		now := rs.fab.Now()
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			finish()
			return
		}
		cohort := tsel.PickTier(rs, m, now)
		if len(cohort) == 0 {
			// The whole tier is offline. Statically that means everyone
			// dropped for good and the tier leaves the training; under
			// transient churn members rejoin, so resume the tier's loop at
			// the earliest comeback.
			if rejoin := earliestRejoin(rs, rs.tiers.Members[m], now); rejoin > now && !math.IsInf(rejoin, 1) {
				rs.fab.At(rejoin, func() { tierRound(m) })
				return
			}
			active[m] = false
			return
		}
		round := rs.rule.Rounds()
		rs.emit(RoundStartEvent{Tier: m, Round: round, Time: now, Clients: cohort})
		rs.fab.Dispatch(rs.comm, cohort, now, rs.rule.Global(), rs.localConfig(uint64(round), m), func(results []TrainResult, err error) {
			if done {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			rs.emitClientDones(m, now, results)
			kept, comp := tsel.Harvest(rs, results)
			rs.atSync(comp, func() {
				if done {
					return
				}
				if len(kept) > 0 {
					rs.observeStale(m, round)
					g, err := rs.rule.Fold(Fold{Tier: m, Updates: toUpdates(kept, round)})
					if err != nil {
						fail(err)
						return
					}
					rs.releaseResults(results)
					t := rs.rule.Rounds()
					g, err = rs.postFold(m, t, rs.fab.Now(), len(kept), g)
					if err != nil {
						fail(err)
						return
					}
					rs.maybeEval(t, rs.fab.Now(), g)
					if t >= cfg.Rounds {
						finish()
						return
					}
					retiered, err := rs.maybeRetier(rs.fab.Now())
					if err != nil {
						fail(err)
						return
					}
					if retiered {
						// The pass may have migrated live clients into a
						// tier whose loop exited (all previous members
						// gone); restart those loops so no one silently
						// leaves the training. Mark them active before the
						// deferred kick runs so a fold landing in between
						// cannot re-kick the same tier twice.
						for m2 := range active {
							if !active[m2] {
								active[m2] = true
								rs.resume(func() { tierRound(m2) })
							}
						}
					}
				} else {
					rs.releaseResults(results)
				}
				rs.resume(func() { tierRound(m) })
			})
		})
	}
	for m := 0; m < tiers.M(); m++ {
		tierRound(m)
	}
	rs.fab.Run()
	return runErr
}

// ---------------------------------------------------------------------------
// client: the wait-free regime — every client trains continuously; each
// arrival folds immediately and the fresh model returns to that client
// alone. With the whole population talking to the server at once, the
// shared server links become the bottleneck the paper demonstrates.

type clientPacer struct{}

func (clientPacer) Run(rs *runState) error {
	if _, ok := rs.sel.(FreeSelector); !ok {
		return fmt.Errorf("client pacing performs no cohort selection, so selector %q would be ignored; use \"all\"", rs.method.Select)
	}
	cfg := rs.cfg
	done := false
	var runErr error
	fail := func(err error) {
		runErr = err
		done = true
		rs.fab.Stop()
	}

	// retryAt resumes a client's loop when transient churn or a late join
	// will bring it back online (a no-op for permanent departures, whose
	// rejoin time is +Inf — the static population's only case).
	var startClient func(id int)
	retryAt := func(id int, now float64) {
		if rejoin := rs.fab.NextAvailable(id, now); rejoin > now && !math.IsInf(rejoin, 1) {
			rs.fab.At(rejoin, func() { startClient(id) })
		}
	}
	startClient = func(id int) {
		if done {
			return
		}
		now := rs.fab.Now()
		if !rs.fab.Available(id, now) {
			retryAt(id, now)
			return
		}
		startRound := rs.rule.Rounds()
		rs.fab.Dispatch(rs.comm, []int{id}, now, rs.rule.Global(), rs.localConfig(uint64(startRound), id), func(results []TrainResult, err error) {
			if done {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			r := results[0]
			if rs.lat != nil && !r.Dropped {
				rs.lat.Observe(r.Client, r.Arrive-now)
			}
			if r.Dropped {
				rs.emit(ClientDoneEvent{Client: r.Client, Tier: -1, Time: r.Arrive, Dropped: true})
				// The update is lost; a churned client still comes back.
				if rejoin := rs.fab.NextAvailable(id, r.Arrive); !math.IsInf(rejoin, 1) {
					rs.fab.At(rejoin, func() { startClient(id) })
				}
				return
			}
			rs.atSync(r.Arrive, func() {
				if done {
					return
				}
				rs.emit(ClientDoneEvent{Client: r.Client, Tier: -1, Time: r.Arrive})
				rs.observeStale(id, startRound)
				update := core.ClientUpdate{Weights: r.Weights, N: r.N, Client: r.Client, StartRound: startRound}
				g, err := rs.rule.Fold(Fold{Tier: -1, Updates: []core.ClientUpdate{update}})
				if err != nil {
					fail(err)
					return
				}
				rs.comm.Release(r.Weights)
				t := rs.rule.Rounds()
				g, err = rs.postFold(-1, t, rs.fab.Now(), 1, g)
				if err != nil {
					fail(err)
					return
				}
				rs.maybeEval(t, rs.fab.Now(), g)
				if t >= cfg.Rounds || (cfg.MaxSimTime > 0 && rs.fab.Now() >= cfg.MaxSimTime) {
					done = true
					rs.fab.Stop()
					return
				}
				if _, err := rs.maybeRetier(rs.fab.Now()); err != nil {
					fail(err)
					return
				}
				rs.resume(func() { startClient(id) })
			})
		})
	}
	for id := 0; id < rs.fab.NumClients(); id++ {
		startClient(id)
	}
	rs.fab.Run()
	return runErr
}

// ---------------------------------------------------------------------------
// fedbuff: buffered asynchrony (FedBuff) — clients train wait-free exactly
// as under client pacing, but the server folds only once every K arrivals,
// handing the update rule a real cohort. That turns a wait-free loop into
// something robust statistics can work with (a median over one update is
// that update; over K it is a defense), at the cost of each arrival waiting
// up to K-1 peers before it reaches the global model.

type bufferPacer struct{}

func (bufferPacer) Run(rs *runState) error {
	if _, ok := rs.sel.(FreeSelector); !ok {
		return fmt.Errorf("fedbuff pacing performs no cohort selection, so selector %q would be ignored; use \"all\"", rs.method.Select)
	}
	cfg := rs.cfg
	k := cfg.BufferK
	if n := rs.fab.NumClients(); k > n {
		// Never demand more distinct arrivals than the population can
		// deliver concurrently.
		k = n
	}
	done := false
	var runErr error
	fail := func(err error) {
		runErr = err
		done = true
		rs.fab.Stop()
	}

	// The arrival buffer. Buffered weights are pooled transmit buffers the
	// engine recycles only after the fold that consumes them; each arrival
	// carries its own start round, so per-update rules discount buffer
	// members individually (batch-anchored rules recover the oldest via
	// Fold.StartRound).
	buf := make([]core.ClientUpdate, 0, k)

	var startClient func(id int)
	retryAt := func(id int, now float64) {
		if rejoin := rs.fab.NextAvailable(id, now); rejoin > now && !math.IsInf(rejoin, 1) {
			rs.fab.At(rejoin, func() { startClient(id) })
		}
	}
	startClient = func(id int) {
		if done {
			return
		}
		now := rs.fab.Now()
		if !rs.fab.Available(id, now) {
			retryAt(id, now)
			return
		}
		startRound := rs.rule.Rounds()
		rs.fab.Dispatch(rs.comm, []int{id}, now, rs.rule.Global(), rs.localConfig(uint64(startRound), id), func(results []TrainResult, err error) {
			if done {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			r := results[0]
			if rs.lat != nil && !r.Dropped {
				rs.lat.Observe(r.Client, r.Arrive-now)
			}
			if r.Dropped {
				rs.emit(ClientDoneEvent{Client: r.Client, Tier: -1, Time: r.Arrive, Dropped: true})
				if rejoin := rs.fab.NextAvailable(id, r.Arrive); !math.IsInf(rejoin, 1) {
					rs.fab.At(rejoin, func() { startClient(id) })
				}
				return
			}
			rs.atSync(r.Arrive, func() {
				if done {
					return
				}
				rs.emit(ClientDoneEvent{Client: r.Client, Tier: -1, Time: r.Arrive})
				buf = append(buf, core.ClientUpdate{Weights: r.Weights, N: r.N, Client: r.Client, StartRound: startRound})
				if len(buf) >= k {
					for _, u := range buf {
						rs.observeStale(u.Client, u.StartRound)
					}
					g, err := rs.rule.Fold(Fold{Tier: -1, Updates: buf})
					if err != nil {
						fail(err)
						return
					}
					for _, u := range buf {
						rs.comm.Release(u.Weights)
					}
					folded := len(buf)
					buf = buf[:0]
					t := rs.rule.Rounds()
					g, err = rs.postFold(-1, t, rs.fab.Now(), folded, g)
					if err != nil {
						fail(err)
						return
					}
					rs.maybeEval(t, rs.fab.Now(), g)
					if t >= cfg.Rounds || (cfg.MaxSimTime > 0 && rs.fab.Now() >= cfg.MaxSimTime) {
						done = true
						rs.fab.Stop()
						return
					}
					if _, err := rs.maybeRetier(rs.fab.Now()); err != nil {
						fail(err)
						return
					}
				}
				rs.resume(func() { startClient(id) })
			})
		})
	}
	for id := 0; id < rs.fab.NumClients(); id++ {
		startClient(id)
	}
	rs.fab.Run()
	return runErr
}
