package fl

import (
	"fmt"

	"repro/internal/core"
)

// Pacer is the loop-structure policy of a method: it decides when cohorts
// train and when the update rule folds. The three pacers below are the
// paper's three temporal regimes — lock-step synchronous rounds (FedAvg,
// FedProx, TiFL, over-selection), concurrent per-tier round loops (FedAT),
// and wait-free per-client loops (FedAsync, ASO-Fed).
//
// Pacers are written once against the Fabric interface in continuation
// style: work is started with Dispatch, folds are sequenced with At, and
// the fabric's clock decides what "concurrent" means. On the simulated
// fabric Dispatch delivers synchronously and At queues on the virtual
// event loop — exactly the discrete-event structure the golden runs pin.
// On the live fabric Dispatch trains real clients over TCP while other
// cohorts proceed, and deliveries serialize on the wall-clock run loop.
type Pacer interface {
	Run(rs *runState) error
}

// Pacers is the registry of pacing policies.
var Pacers = map[string]Pacer{
	"sync":   syncPacer{},
	"tier":   tierPacer{},
	"client": clientPacer{},
}

// ---------------------------------------------------------------------------
// sync: one global round at a time; the server waits for the round's
// completion time before starting the next — the straggler effect the paper
// sets out to fix.

type syncPacer struct{}

func (syncPacer) Run(rs *runState) error {
	sel, ok := rs.sel.(RoundSelector)
	if !ok {
		return fmt.Errorf("sync pacing needs a round selector, %q is not one", rs.method.Select)
	}
	cfg := rs.cfg
	var runErr error
	fail := func(err error) {
		runErr = err
		rs.fab.Stop()
	}
	// Attempt budget guards against a fully-dropped population.
	attempt := 0
	var step func(now float64)
	step = func(now float64) {
		for {
			if rs.rule.Rounds() >= cfg.Rounds || attempt >= 2*cfg.Rounds+10 {
				return
			}
			if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
				return
			}
			attempt++
			cohort, tier, selNow, outcome, err := sel.Pick(rs, now)
			if err != nil {
				fail(err)
				return
			}
			now = selNow
			if outcome == SelectStop {
				return
			}
			if outcome == SelectSkip {
				continue
			}
			round := rs.rule.Rounds()
			rs.emit(RoundStartEvent{Tier: tier, Round: round, Time: now, Clients: cohort})
			rs.fab.Dispatch(rs.comm, cohort, now, rs.rule.Global(), rs.localConfig(uint64(round)), func(results []TrainResult, err error) {
				if err != nil {
					fail(err)
					return
				}
				rs.emitClientDones(tier, results)
				kept, comp := sel.Harvest(rs, results)
				rs.fab.At(comp, func() {
					if len(kept) == 0 {
						step(comp) // every counted client dropped; no update this round
						return
					}
					g, err := rs.rule.Fold(Fold{Tier: tier, Updates: toUpdates(kept), StartRound: round})
					if err != nil {
						fail(err)
						return
					}
					t := rs.rule.Rounds()
					rs.emit(TierFoldEvent{Tier: tier, Round: t, Time: comp, Kept: len(kept), Global: g})
					rs.maybeEval(t, comp, g)
					step(comp)
				})
			})
			return // the round is in flight; resume from its completion
		}
	}
	step(0)
	rs.fab.Run()
	return runErr
}

// ---------------------------------------------------------------------------
// tier: FedAT's Algorithm 2 — every tier runs its own synchronous round
// loop concurrently, each round training from the freshest global model at
// ITS start; folds land at each tier's own completion time.

type tierPacer struct{}

func (tierPacer) Run(rs *runState) error {
	tsel, ok := rs.sel.(TierSelector)
	if !ok {
		return fmt.Errorf("tier pacing needs a tier selector, %q is not one", rs.method.Select)
	}
	tiers, err := rs.Tiers()
	if err != nil {
		return err
	}
	cfg := rs.cfg
	done := false
	var runErr error
	finish := func() {
		done = true
		rs.fab.Stop()
	}
	fail := func(err error) {
		runErr = err
		finish()
	}

	var tierRound func(m int)
	tierRound = func(m int) {
		if done {
			return
		}
		now := rs.fab.Now()
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			finish()
			return
		}
		cohort := tsel.PickTier(rs, m, now)
		if len(cohort) == 0 {
			return // the whole tier is offline; it leaves the training
		}
		round := rs.rule.Rounds()
		rs.emit(RoundStartEvent{Tier: m, Round: round, Time: now, Clients: cohort})
		rs.fab.Dispatch(rs.comm, cohort, now, rs.rule.Global(), rs.localConfig(uint64(round)), func(results []TrainResult, err error) {
			if done {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			rs.emitClientDones(m, results)
			kept, comp := tsel.Harvest(rs, results)
			rs.fab.At(comp, func() {
				if done {
					return
				}
				if len(kept) > 0 {
					g, err := rs.rule.Fold(Fold{Tier: m, Updates: toUpdates(kept), StartRound: round})
					if err != nil {
						fail(err)
						return
					}
					t := rs.rule.Rounds()
					rs.emit(TierFoldEvent{Tier: m, Round: t, Time: rs.fab.Now(), Kept: len(kept), Global: g})
					rs.maybeEval(t, rs.fab.Now(), g)
					if t >= cfg.Rounds {
						finish()
						return
					}
				}
				tierRound(m)
			})
		})
	}
	for m := 0; m < tiers.M(); m++ {
		tierRound(m)
	}
	rs.fab.Run()
	return runErr
}

// ---------------------------------------------------------------------------
// client: the wait-free regime — every client trains continuously; each
// arrival folds immediately and the fresh model returns to that client
// alone. With the whole population talking to the server at once, the
// shared server links become the bottleneck the paper demonstrates.

type clientPacer struct{}

func (clientPacer) Run(rs *runState) error {
	if _, ok := rs.sel.(FreeSelector); !ok {
		return fmt.Errorf("client pacing performs no cohort selection, so selector %q would be ignored; use \"all\"", rs.method.Select)
	}
	cfg := rs.cfg
	done := false
	var runErr error
	fail := func(err error) {
		runErr = err
		done = true
		rs.fab.Stop()
	}

	var startClient func(id int)
	startClient = func(id int) {
		if done {
			return
		}
		now := rs.fab.Now()
		if !rs.fab.Available(id, now) {
			return
		}
		startRound := rs.rule.Rounds()
		rs.fab.Dispatch(rs.comm, []int{id}, now, rs.rule.Global(), rs.localConfig(uint64(startRound)), func(results []TrainResult, err error) {
			if done {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			r := results[0]
			if r.Dropped {
				rs.emit(ClientDoneEvent{Client: r.Client, Tier: -1, Time: r.Arrive, Dropped: true})
				return // dropped mid-round; the update is lost
			}
			rs.fab.At(r.Arrive, func() {
				if done {
					return
				}
				rs.emit(ClientDoneEvent{Client: r.Client, Tier: -1, Time: r.Arrive})
				update := core.ClientUpdate{Weights: r.Weights, N: r.N, Client: r.Client}
				g, err := rs.rule.Fold(Fold{Tier: -1, Updates: []core.ClientUpdate{update}, StartRound: startRound})
				if err != nil {
					fail(err)
					return
				}
				t := rs.rule.Rounds()
				rs.emit(TierFoldEvent{Tier: -1, Round: t, Time: rs.fab.Now(), Kept: 1, Global: g})
				rs.maybeEval(t, rs.fab.Now(), g)
				if t >= cfg.Rounds || (cfg.MaxSimTime > 0 && rs.fab.Now() >= cfg.MaxSimTime) {
					done = true
					rs.fab.Stop()
					return
				}
				startClient(id)
			})
		})
	}
	for id := 0; id < rs.fab.NumClients(); id++ {
		startClient(id)
	}
	rs.fab.Run()
	return runErr
}
