package fl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simnet"
)

// Pacer is the loop-structure policy of a method: it decides when cohorts
// train and when the update rule folds. The three pacers below are the
// paper's three temporal regimes — lock-step synchronous rounds (FedAvg,
// FedProx, TiFL, over-selection), concurrent per-tier round loops on the
// discrete-event simulator (FedAT), and wait-free per-client loops
// (FedAsync, ASO-Fed).
type Pacer interface {
	Run(rs *runState) error
}

// Pacers is the registry of pacing policies.
var Pacers = map[string]Pacer{
	"sync":   syncPacer{},
	"tier":   tierPacer{},
	"client": clientPacer{},
}

// ---------------------------------------------------------------------------
// sync: one global round at a time; the server waits for the round's
// completion time before starting the next — the straggler effect the paper
// sets out to fix.

type syncPacer struct{}

func (syncPacer) Run(rs *runState) error {
	sel, ok := rs.sel.(RoundSelector)
	if !ok {
		return fmt.Errorf("sync pacing needs a round selector, %q is not one", rs.method.Select)
	}
	cfg := rs.env.Cfg
	now := 0.0
	// Attempt budget guards against a fully-dropped population.
	for attempt := 0; rs.rule.Rounds() < cfg.Rounds && attempt < 2*cfg.Rounds+10; attempt++ {
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			break
		}
		cohort, tier, selNow, outcome := sel.Pick(rs, now)
		now = selNow
		if outcome == SelectStop {
			break
		}
		if outcome == SelectSkip {
			continue
		}
		round := rs.rule.Rounds()
		rs.emit(RoundStartEvent{Tier: tier, Round: round, Time: now, Clients: cohort})
		results := rs.env.trainGroup(cohort, now, rs.rule.Global(), rs.comm, rs.localConfig(uint64(round)))
		rs.emitClientDones(tier, results)
		kept, comp := sel.Harvest(rs, results)
		now = comp
		if len(kept) == 0 {
			continue // every counted client dropped; no update this round
		}
		g, err := rs.rule.Fold(Fold{Tier: tier, Updates: toUpdates(kept), StartRound: round})
		if err != nil {
			return err
		}
		t := rs.rule.Rounds()
		rs.emit(TierFoldEvent{Tier: tier, Round: t, Time: now, Kept: len(kept)})
		rs.maybeEval(t, now, g)
	}
	return nil
}

// ---------------------------------------------------------------------------
// tier: FedAT's Algorithm 2 — every tier runs its own synchronous round
// loop concurrently on the event simulator, each round training from the
// freshest global model at ITS start; folds land at each tier's own
// completion time.

type tierPacer struct{}

func (tierPacer) Run(rs *runState) error {
	tsel, ok := rs.sel.(TierSelector)
	if !ok {
		return fmt.Errorf("tier pacing needs a tier selector, %q is not one", rs.method.Select)
	}
	tiers, err := rs.Tiers()
	if err != nil {
		return err
	}
	cfg := rs.env.Cfg
	sim := simnet.New()
	done := false
	var runErr error
	finish := func() {
		done = true
		sim.Stop()
	}

	var tierRound func(m int)
	tierRound = func(m int) {
		if done {
			return
		}
		now := sim.Now()
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			finish()
			return
		}
		cohort := tsel.PickTier(rs, m, now)
		if len(cohort) == 0 {
			return // the whole tier is offline; it leaves the training
		}
		round := rs.rule.Rounds()
		rs.emit(RoundStartEvent{Tier: m, Round: round, Time: now, Clients: cohort})
		results := rs.env.trainGroup(cohort, now, rs.rule.Global(), rs.comm, rs.localConfig(uint64(round)))
		rs.emitClientDones(m, results)
		kept, comp := tsel.Harvest(rs, results)
		sim.At(comp, func() {
			if done {
				return
			}
			if len(kept) > 0 {
				g, err := rs.rule.Fold(Fold{Tier: m, Updates: toUpdates(kept), StartRound: round})
				if err != nil {
					runErr = err
					finish()
					return
				}
				t := rs.rule.Rounds()
				rs.emit(TierFoldEvent{Tier: m, Round: t, Time: sim.Now(), Kept: len(kept)})
				rs.maybeEval(t, sim.Now(), g)
				if t >= cfg.Rounds {
					finish()
					return
				}
			}
			tierRound(m)
		})
	}
	for m := 0; m < tiers.M(); m++ {
		tierRound(m)
	}
	sim.Run()
	return runErr
}

// ---------------------------------------------------------------------------
// client: the wait-free regime — every client trains continuously; each
// arrival folds immediately and the fresh model returns to that client
// alone. With the whole population talking to the server at once, the
// shared server links become the bottleneck the paper demonstrates.

type clientPacer struct{}

func (clientPacer) Run(rs *runState) error {
	if _, ok := rs.sel.(FreeSelector); !ok {
		return fmt.Errorf("client pacing performs no cohort selection, so selector %q would be ignored; use \"all\"", rs.method.Select)
	}
	cfg := rs.env.Cfg
	sim := simnet.New()
	done := false
	var runErr error

	var startClient func(c *Client)
	startClient = func(c *Client) {
		if done {
			return
		}
		now := sim.Now()
		if !c.Runtime.Available(now) {
			return
		}
		startRound := rs.rule.Rounds()
		wRecv, downBytes := rs.comm.Transmit(rs.rule.Global(), false)
		downDone := rs.env.Cluster.DownloadArrival(now, c.Runtime, downBytes)
		w, steps := c.TrainLocal(wRecv, rs.localConfig(uint64(startRound)))
		computeDone := downDone + c.Runtime.ComputeTime(steps) + c.Runtime.RoundDelay()
		if !c.Runtime.Available(computeDone) {
			rs.emit(ClientDoneEvent{Client: c.ID, Tier: -1, Time: computeDone, Dropped: true})
			return // dropped mid-round; the update is lost
		}
		wUp, upBytes := rs.comm.Transmit(w, true)
		arrive := rs.env.Cluster.UploadArrival(computeDone, c.Runtime, upBytes)
		sim.At(arrive, func() {
			if done {
				return
			}
			rs.emit(ClientDoneEvent{Client: c.ID, Tier: -1, Time: arrive})
			update := core.ClientUpdate{Weights: wUp, N: c.Data.NumTrain(), Client: c.ID}
			g, err := rs.rule.Fold(Fold{Tier: -1, Updates: []core.ClientUpdate{update}, StartRound: startRound})
			if err != nil {
				runErr = err
				done = true
				sim.Stop()
				return
			}
			t := rs.rule.Rounds()
			rs.emit(TierFoldEvent{Tier: -1, Round: t, Time: sim.Now(), Kept: 1})
			rs.maybeEval(t, sim.Now(), g)
			if t >= cfg.Rounds || (cfg.MaxSimTime > 0 && sim.Now() >= cfg.MaxSimTime) {
				done = true
				sim.Stop()
				return
			}
			startClient(c)
		})
	}
	for _, c := range rs.env.Clients {
		startClient(c)
	}
	sim.Run()
	return runErr
}
