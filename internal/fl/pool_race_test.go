package fl

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestSharedPoolConcurrentTierFolds hammers one shared weight pool from
// concurrent tier folds — the exact shape of the live fabric, where
// transport goroutines check update buffers out of the run's pool, the
// aggregator folds them, and the engine releases them after the fold. Run
// under -race (the CI -short race pass includes this package) it is the
// data-race certificate for pool + aggregator; poisoning is on, so if any
// fold path retained a released buffer the NaNs would surface in the
// global model, which the test asserts stays finite.
func TestSharedPoolConcurrentTierFolds(t *testing.T) {
	const (
		dim     = 256
		tiers   = 4
		workers = 8
		folds   = 120
	)
	w0 := fuzzVec(9, dim)
	agg, err := core.NewAggregator(tiers, w0, true)
	if err != nil {
		t.Fatal(err)
	}
	pool := tensor.NewPool(dim)
	pool.SetPoison(true)

	var mu sync.Mutex
	var folded int
	parallel.ForWorkers(folds, workers, func(i int) {
		// Client training, pool-backed: check out a buffer, overwrite it
		// fully with this client's model (Get contents are unspecified),
		// fold it, release it.
		buf := pool.Get()
		src := fuzzVec(uint64(i)+100, dim)
		copy(buf, src)
		if _, err := agg.UpdateTier(i%tiers, []core.ClientUpdate{{Weights: buf, N: i%5 + 1, Client: i % 20}}); err != nil {
			t.Error(err)
		}
		pool.Put(buf)
		mu.Lock()
		folded++
		mu.Unlock()
	})
	if folded != folds {
		t.Fatalf("folded %d of %d", folded, folds)
	}
	if agg.Rounds() != folds {
		t.Fatalf("aggregator counted %d folds, want %d", agg.Rounds(), folds)
	}
	for i, v := range agg.Global() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("global[%d] = %v after pooled folds — a fold retained a released buffer", i, v)
		}
	}
}
