package fl

import (
	"repro/internal/rng"
	"repro/internal/tiering"
)

// ProfileTiers runs the tiering module over the clients' profiled response
// latencies (compute for a nominal round plus mean injected delay) — shared
// by TiFL and FedAT, which reuses TiFL's tiering approach (§2.1). When
// MisTierFrac > 0 that fraction of the profiles is replaced with random
// values, modelling the mis-profiling §2.1 describes ("a portion of clients
// are incorrectly profiled and assigned to a wrong tier").
func ProfileTiers(env *Env) (*tiering.Tiers, error) {
	lc := env.LocalConfig(0, 0)
	lat := make([]float64, len(env.Clients))
	lo, hi := 1e300, 0.0
	for i, c := range env.Clients {
		lat[i] = c.Runtime.ExpectedLatency(lc.Steps(c.Data.NumTrain()))
		if lat[i] < lo {
			lo = lat[i]
		}
		if lat[i] > hi {
			hi = lat[i]
		}
	}
	if f := env.Cfg.MisTierFrac; f > 0 {
		r := rng.New(env.Cfg.Seed).SplitLabeled(hashName("mistier"))
		n := int(f * float64(len(lat)))
		for _, i := range r.Choose(len(lat), n) {
			lat[i] = r.Uniform(lo, hi) // profile scrambled within range
		}
	}
	return tiering.Partition(lat, env.Cfg.NumTiers)
}
