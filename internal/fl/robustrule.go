package fl

import (
	"fmt"

	"repro/internal/robust"
)

// robustRule adapts the internal/robust aggregation kernels to the
// UpdateRule contract: each fold replaces the global model with the robust
// aggregate of the arrived cohort — coordinate-median, β-trimmed mean, or
// the Krum(f) winner. The rules are deliberately tier-agnostic: robustness
// comes from comparing a cohort's updates against each other, so whatever
// the pacer delivers folds as one cohort. A cohort of one degrades to that
// update (there is nothing to compare against) — wait-free client pacing
// wants the "fedbuff" pacer, which buffers K arrivals per fold exactly so
// the robust statistics see a real cohort.
//
// The kernels write into the rule's own global buffer and reuse a scratch,
// so folding retains nothing from the update buffers the engine recycles
// and allocates nothing in steady state (the PR 6 budgets).
type robustRule struct {
	kind    string // "median", "trimmed" or "krum"
	global  []float64
	version int
	beta    float64 // trimmed: per-side trim fraction
	f       int     // krum: tolerated byzantine count (-1 = adaptive)
	scratch robust.FoldScratch
	vecs    [][]float64 // cohort view, reused across folds
}

func (r *robustRule) Init(rs *runState) error {
	r.global = rs.fab.InitialWeights()
	r.beta = rs.cfg.TrimBeta
	r.f = rs.cfg.KrumF
	if r.f <= 0 {
		r.f = -1 // adaptive (cohort-3)/2 per fold
	}
	return nil
}

func (r *robustRule) Global() []float64 { return r.global }
func (r *robustRule) Rounds() int       { return r.version }

// Rebase implements Rebaser: the next cohort aggregates against the merged
// model like any other snapshot.
func (r *robustRule) Rebase(w []float64) []float64 {
	copy(r.global, w)
	return r.global
}

func (r *robustRule) Fold(f Fold) ([]float64, error) {
	if len(f.Updates) == 0 {
		return nil, fmt.Errorf("%s fold with no client updates", r.kind)
	}
	r.vecs = r.vecs[:0]
	for _, u := range f.Updates {
		r.vecs = append(r.vecs, u.Weights)
	}
	var err error
	switch r.kind {
	case "median":
		err = r.scratch.Median(r.global, r.vecs)
	case "trimmed":
		err = r.scratch.TrimmedMean(r.global, r.vecs, r.beta)
	case "krum":
		_, err = r.scratch.Krum(r.global, r.vecs, r.f)
	default:
		err = fmt.Errorf("unknown robust rule %q", r.kind)
	}
	if err != nil {
		return nil, err
	}
	r.version++
	return r.global, nil
}

func init() {
	UpdateRules["median"] = zeroArg("median", func() UpdateRule { return &robustRule{kind: "median"} })
	UpdateRules["trimmed"] = zeroArg("trimmed", func() UpdateRule { return &robustRule{kind: "trimmed"} })
	UpdateRules["krum"] = zeroArg("krum", func() UpdateRule { return &robustRule{kind: "krum"} })
}
