package fl

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// TestRobustRulesFoldHandComputed drives the registered robust rules over a
// tiny cohort with known aggregates: an honest pair at 1 and 3 plus one
// large outlier. Median kills the outlier, trimmed-mean with β=0.4 trims it
// (and the smallest), Krum picks an honest member verbatim.
func TestRobustRulesFoldHandComputed(t *testing.T) {
	cohort := []core.ClientUpdate{
		{Weights: []float64{1, 1}, N: 5, Client: 0},
		{Weights: []float64{3, 3}, N: 5, Client: 1},
		{Weights: []float64{100, -100}, N: 5, Client: 2},
	}
	fold := func(kind string, beta float64, f int) []float64 {
		t.Helper()
		rule := &robustRule{kind: kind, global: make([]float64, 2), beta: beta, f: f}
		g, err := rule.Fold(Fold{Tier: -1, Updates: cohort})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rule.Rounds() != 1 {
			t.Fatalf("%s: version %d after one fold", kind, rule.Rounds())
		}
		return g
	}
	if g := fold("median", 0, -1); g[0] != 3 || g[1] != 1 {
		t.Fatalf("median = %v, want [3 1]", g)
	}
	// β=0.4, k=3 trims one per side: the middle value survives alone.
	if g := fold("trimmed", 0.4, -1); g[0] != 3 || g[1] != 1 {
		t.Fatalf("trimmed = %v, want [3 1]", g)
	}
	// Krum f=1, m=k-f-2 clamps to 1: honest neighbors are 2√2 apart, the
	// outlier ~137 away — client 0 wins the tie.
	if g := fold("krum", 0, 1); g[0] != 1 || g[1] != 1 {
		t.Fatalf("krum = %v, want [1 1]", g)
	}
}

// TestRobustFoldAllocFree extends the PR 6 zero-alloc pin to the robust
// rules: steady-state folds of every robust kind allocate nothing, in both
// the tiered-cohort and single-update shapes the pacers drive.
func TestRobustFoldAllocFree(t *testing.T) {
	skipUnderRace(t)
	const dim = 512
	cohort := func(n int) []core.ClientUpdate {
		us := make([]core.ClientUpdate, n)
		for i := range us {
			us[i] = core.ClientUpdate{Weights: fuzzVec(uint64(i+2), dim), N: i + 3, Client: i}
		}
		return us
	}
	for _, kind := range []string{"median", "trimmed", "krum"} {
		t.Run(kind, func(t *testing.T) {
			rule := &robustRule{kind: kind, global: fuzzVec(1, dim), beta: 0.2, f: -1}
			us := cohort(5)
			assertFoldAllocs(t, kind+" cohort fold", 0, func() {
				if _, err := rule.Fold(Fold{Tier: 0, Updates: us}); err != nil {
					t.Fatal(err)
				}
			})
			one := cohort(1)
			assertFoldAllocs(t, kind+" single fold", 0, func() {
				if _, err := rule.Fold(Fold{Tier: -1, Updates: one}); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}

// attackEnv is testEnv over a population with an attack regime switched on.
func attackEnv(t *testing.T, cfg RunConfig, b simnet.BehaviorConfig) *Env {
	t.Helper()
	fed, err := dataset.FashionLike(20, 2, dataset.ScaleSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients:  20,
		NumUnstable: 2,
		DropHorizon: 2000,
		SecPerBatch: 0.05,
		UpBW:        1 << 20,
		DownBW:      1 << 20,
		ServerBW:    8 << 20,
		Behavior:    b,
		Seed:        cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), fed.InDim, 16, fed.Classes)
	}
	env, err := NewEnv(fed, cluster, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestAttackDeterministicAcrossWorkers: with every attack kind active, two
// same-seed runs are bit-identical even when GOMAXPROCS (which sizes the
// evaluator's and trainer's worker pools) differs between them.
func TestAttackDeterministicAcrossWorkers(t *testing.T) {
	for _, kind := range []string{"labelflip", "scale", "freeride"} {
		t.Run(kind, func(t *testing.T) {
			sig := func() string {
				cfg := baseCfg()
				cfg.Rounds = 10
				b := simnet.BehaviorConfig{AttackKind: kind, AttackFrac: 0.3}
				return runSig(mustRun(t, "fedat", attackEnv(t, cfg, b)))
			}
			a := sig()
			prev := runtime.GOMAXPROCS(1)
			b := sig()
			runtime.GOMAXPROCS(prev)
			if a != b {
				t.Fatalf("%s attack not deterministic across worker counts:\n%s\nvs\n%s", kind, a, b)
			}
		})
	}
}

// TestRobustMethodsDeterministicUnderAttack: composed robust-fold methods
// over an attacked, churning population reproduce bit-for-bit.
func TestRobustMethodsDeterministicUnderAttack(t *testing.T) {
	for _, agg := range []string{"median", "trimmed", "krum"} {
		t.Run(agg, func(t *testing.T) {
			m, err := Compose("fedavg", "", "", agg, "fedavg+"+agg)
			if err != nil {
				t.Fatal(err)
			}
			sig := func() string {
				cfg := baseCfg()
				cfg.Rounds = 10
				b := simnet.BehaviorConfig{
					AttackKind: "scale", AttackFrac: 0.3,
					ChurnFrac: 0.2, ChurnOn: [2]float64{30, 80}, ChurnOff: [2]float64{10, 40},
				}
				run, err := m.Run(attackEnv(t, cfg, b))
				if err != nil {
					t.Fatal(err)
				}
				return runSig(run)
			}
			if a, b := sig(), sig(); a != b {
				t.Fatalf("%s not deterministic under attack:\n%s\nvs\n%s", agg, a, b)
			}
		})
	}
}

// TestAttacksOffBitIdentical: an attack regime with frac 0 (or a DP stage
// with clip 0) must be byte-identical to a run that predates the subsystem
// — the zero-config guarantee the committed goldens rely on.
func TestAttacksOffBitIdentical(t *testing.T) {
	base := func(cfg RunConfig) string {
		return runSig(mustRun(t, "fedat", testEnv(t, 2, cfg)))
	}
	cfg := baseCfg()
	cfg.Rounds = 8
	want := base(cfg)

	t.Run("attack-frac-zero", func(t *testing.T) {
		b := simnet.BehaviorConfig{AttackKind: "scale", AttackFrac: 0}
		if b.Enabled() {
			t.Fatal("frac 0 must not enable the behavior model")
		}
		got := runSig(mustRun(t, "fedat", attackEnv(t, cfg, b)))
		if got != want {
			t.Fatalf("attack frac 0 perturbed the run:\n%s\nvs\n%s", got, want)
		}
	})
	t.Run("dp-clip-zero", func(t *testing.T) {
		cfg2 := cfg
		cfg2.DPNoise = 1.5 // noise multiplier without a clip norm: stage off
		got := base(cfg2)
		if got != want {
			t.Fatalf("DPClip=0 run perturbed by DPNoise alone:\n%s\nvs\n%s", got, want)
		}
	})
}

// TestDPStage: the clip+noise stage is deterministic and actually changes
// the trained trajectory.
func TestDPStage(t *testing.T) {
	run := func(clip, noise float64) string {
		cfg := baseCfg()
		cfg.Rounds = 8
		cfg.DPClip = clip
		cfg.DPNoise = noise
		return runSig(mustRun(t, "fedavg", testEnv(t, 2, cfg)))
	}
	off := run(0, 0)
	a, b := run(2, 0.1), run(2, 0.1)
	if a != b {
		t.Fatalf("DP run not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == off {
		t.Fatal("DP stage enabled but the run is unchanged")
	}
}

// TestFedBuffPacer: the buffered pacer folds exactly every K arrivals,
// reproduces bit-for-bit, and still learns.
func TestFedBuffPacer(t *testing.T) {
	m, err := Compose("fedasync", "", "fedbuff", "", "fedbuff")
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	sig := func() (string, int, int) {
		cfg := baseCfg()
		cfg.Rounds = 12
		cfg.BufferK = k
		env := testEnv(t, 0, cfg)
		arrivals, folds := 0, 0
		run, err := m.Run(env, ObserverFunc(func(ev Event) {
			switch e := ev.(type) {
			case ClientDoneEvent:
				if !e.Dropped {
					arrivals++
				}
			case TierFoldEvent:
				folds++
				if e.Kept != k {
					t.Fatalf("fold %d kept %d updates, want %d", folds, e.Kept, k)
				}
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		return runSig(run), arrivals, folds
	}
	a, arrivals, folds := sig()
	b, _, _ := sig()
	if a != b {
		t.Fatalf("fedbuff not deterministic:\n%s\nvs\n%s", a, b)
	}
	if folds != 12 {
		t.Fatalf("%d folds, want the full 12-round budget", folds)
	}
	if arrivals < folds*k {
		t.Fatalf("%d arrivals cannot have fed %d folds of %d", arrivals, folds, k)
	}
	// A buffered selector mismatch is rejected like the client pacer's.
	if _, err := Compose("fedavg", "", "fedbuff", "", "bad"); err != nil {
		t.Fatal(err)
	} else {
		bad, _ := Compose("fedavg", "", "fedbuff", "", "bad")
		cfg := baseCfg()
		cfg.Rounds = 2
		if _, err := bad.Run(testEnv(t, 0, cfg)); err == nil {
			t.Fatal("fedbuff with a round selector should fail composition")
		}
	}
}

// TestRobustRuleRebase: robust rules adopt an external global (the
// hierarchical fold path) without losing their version counters.
func TestRobustRuleRebase(t *testing.T) {
	rule := &robustRule{kind: "median", global: []float64{1, 2}}
	if _, err := rule.Fold(Fold{Updates: []core.ClientUpdate{{Weights: []float64{5, 6}, N: 1}}}); err != nil {
		t.Fatal(err)
	}
	var reb Rebaser = rule
	g := reb.Rebase([]float64{9, 9})
	if g[0] != 9 || g[1] != 9 || rule.Rounds() != 1 {
		t.Fatalf("rebase got %v (version %d)", g, rule.Rounds())
	}
}
