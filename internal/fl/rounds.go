package fl

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// selectAvailable samples up to k distinct clients from ids that are still
// online on the fabric at time now.
func selectAvailable(r *rng.RNG, ids []int, fab Fabric, now float64, k int) []int {
	avail := make([]int, 0, len(ids))
	for _, id := range ids {
		if fab.Available(id, now) {
			avail = append(avail, id)
		}
	}
	if len(avail) == 0 {
		return nil
	}
	if k > len(avail) {
		k = len(avail)
	}
	picked := r.Choose(len(avail), k)
	out := make([]int, k)
	for i, p := range picked {
		out[i] = avail[p]
	}
	return out
}

// trainGroup runs one synchronous round over the selected clients, starting
// at virtual time start from the global snapshot:
//
//	download (client link + shared server downlink) → local training
//	(batch steps × per-batch time + the injected tier delay) → upload
//	(client link + shared server uplink).
//
// Local training executes in parallel across clients; all timing, RNG and
// link reservations happen sequentially in selection order, so results are
// deterministic. Clients that drop mid-round lose their update (§6's
// unstable clients). Weights in the results are what the server
// reconstructs after the (possibly lossy) uplink. This is the simulated
// fabric's Dispatch body.
func (e *Env) trainGroup(sel []int, start float64, global []float64, comm *Comm, lc LocalConfig) ([]TrainResult, error) {
	if cap(e.group) < len(sel) {
		e.group = make([]*Client, len(sel))
	}
	group := e.group[:len(sel)]
	for i, id := range sel {
		group[i] = e.Clients[id]
	}
	return runCohort(group, e.Cluster, start, global, comm, lc)
}

// runCohort is trainGroup's body over resolved clients: the eager Env hands
// it permanent per-client state, the lazy environment hands it pooled
// workers bound to the cohort for exactly this round. cl provides the link
// model — only its server links are touched, so a Links-only shell works.
func runCohort(group []*Client, cl *simnet.Cluster, start float64, global []float64, comm *Comm, lc LocalConfig) ([]TrainResult, error) {
	// Downlink: every client receives its own copy of the snapshot. The
	// copies are pooled — they only need to live until local training ends
	// (TrainLocal reads the snapshot as its proximal anchor throughout), so
	// they go back to the pool before this function returns.
	received := make([][]float64, len(group))
	downDone := make([]float64, len(group))
	for i, c := range group {
		w, bytes, err := comm.TransmitPooled(global, false)
		if err != nil {
			return nil, err
		}
		received[i] = w
		downDone[i] = cl.DownloadArrival(start, c.Runtime, bytes)
	}

	// Per-client local training is the eligible parallel section: client i
	// only touches its own model replica, optimizer and RNG stream (the
	// determinism contract documented in internal/parallel), and writes its
	// result at index i. Dynamic dispatch, because non-IID clients have
	// wildly different local data sizes — static chunks would serialize
	// the expensive clients on one worker. Selection, timing and link
	// reservations stay sequential around it.
	results := make([]TrainResult, len(group))
	parallel.Dynamic(len(group), parallel.Workers(len(group)), func(i int) {
		c := group[i]
		w, steps := c.TrainLocal(received[i], lc)
		results[i] = TrainResult{Client: c.ID, Weights: w, N: c.Data.NumTrain(), Steps: steps}
	})
	// All training is done; the downlink snapshots are dead.
	for i := range received {
		comm.Release(received[i])
		received[i] = nil
	}

	// Sequential post-pass: delays, drops and uplink in selection order.
	// Compute time is evaluated at the round's download-arrival instant, so
	// speed drift (simnet.BehaviorConfig) takes effect; without drift
	// ComputeTimeAt is exactly the static arithmetic.
	for i := range results {
		r := &results[i]
		c := group[i]
		computeDone := downDone[i] + c.Runtime.ComputeTimeAt(r.Steps, downDone[i]) + c.Runtime.RoundDelay()
		// A round is lost if the client is offline at ANY point of it —
		// a churn window wholly inside the round disrupts training even
		// though the client is back by the end. Without churn this is
		// exactly the historical endpoint check.
		if c.Runtime.OfflineWithin(start, computeDone) {
			r.Dropped = true
			r.Arrive = computeDone
			continue
		}
		// The uplink replaces the client-owned training buffer with a pooled
		// server-side reconstruction; the engine releases it after the fold.
		// Dropped results above keep the client's buffer (no upload
		// happened), which is why releases must skip them.
		w, bytes, err := comm.TransmitPooled(r.Weights, true)
		if err != nil {
			return nil, err
		}
		r.Weights = w
		r.Arrive = cl.UploadArrival(computeDone, c.Runtime, bytes)
	}
	return results, nil
}

// survivors filters out dropped results.
func survivors(results []TrainResult) []TrainResult {
	out := results[:0:0]
	for _, r := range results {
		if !r.Dropped {
			out = append(out, r)
		}
	}
	return out
}

// completionTime is when the slowest upload lands — the length of a
// synchronous round ("the server has to wait for the slowest clients").
// Dropped clients bound it too: the server discovers the loss no earlier
// than the time the update would have been due.
func completionTime(results []TrainResult) float64 {
	t := 0.0
	for _, r := range results {
		if r.Arrive > t {
			t = r.Arrive
		}
	}
	return t
}

// toUpdates converts surviving results into aggregator updates, stamping
// the cohort's shared staleness anchor (the global update count at
// dispatch) on each.
func toUpdates(results []TrainResult, startRound int) []core.ClientUpdate {
	ups := make([]core.ClientUpdate, 0, len(results))
	for _, r := range results {
		ups = append(ups, core.ClientUpdate{Weights: r.Weights, N: r.N, Client: r.Client, StartRound: startRound})
	}
	return ups
}
