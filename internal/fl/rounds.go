package fl

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// trainResult is one client's completed local round, stamped with its
// simulated arrival time at the server.
type trainResult struct {
	client  *Client
	weights []float64 // as reconstructed by the server after the uplink
	n       int       // n_k
	steps   int       // batch steps executed (compute-time unit)
	arrive  float64   // virtual time the upload lands at the server
	dropped bool      // client went offline before finishing
}

// selectAvailable samples up to k distinct clients from ids that are still
// online at time now.
func selectAvailable(r *rng.RNG, ids []int, clients []*Client, now float64, k int) []int {
	avail := make([]int, 0, len(ids))
	for _, id := range ids {
		if clients[id].Runtime.Available(now) {
			avail = append(avail, id)
		}
	}
	if len(avail) == 0 {
		return nil
	}
	if k > len(avail) {
		k = len(avail)
	}
	picked := r.Choose(len(avail), k)
	out := make([]int, k)
	for i, p := range picked {
		out[i] = avail[p]
	}
	return out
}

// trainGroup runs one synchronous round over the selected clients, starting
// at virtual time start from the global snapshot:
//
//	download (client link + shared server downlink) → local training
//	(batch steps × per-batch time + the injected tier delay) → upload
//	(client link + shared server uplink).
//
// Local training executes in parallel across clients; all timing, RNG and
// link reservations happen sequentially in selection order, so results are
// deterministic. Clients that drop mid-round lose their update (§6's
// unstable clients). Weights in the results are what the server
// reconstructs after the (possibly lossy) uplink.
func (e *Env) trainGroup(sel []int, start float64, global []float64, comm *Comm, lc LocalConfig) []trainResult {
	// Downlink: every client receives its own copy of the snapshot.
	received := make([][]float64, len(sel))
	downDone := make([]float64, len(sel))
	for i, id := range sel {
		w, bytes := comm.Transmit(global, false)
		received[i] = w
		downDone[i] = e.Cluster.DownloadArrival(start, e.Clients[id].Runtime, bytes)
	}

	// Per-client local training is the eligible parallel section: client i
	// only touches its own model replica, optimizer and RNG stream (the
	// determinism contract documented in internal/parallel), and writes its
	// result at index i. Dynamic dispatch, because non-IID clients have
	// wildly different local data sizes — static chunks would serialize
	// the expensive clients on one worker. Selection, timing and link
	// reservations stay sequential around it.
	results := make([]trainResult, len(sel))
	parallel.Dynamic(len(sel), parallel.Workers(len(sel)), func(i int) {
		c := e.Clients[sel[i]]
		w, steps := c.TrainLocal(received[i], lc)
		results[i] = trainResult{client: c, weights: w, n: c.Data.NumTrain(), steps: steps}
	})

	// Sequential post-pass: delays, drops and uplink in selection order.
	for i := range results {
		r := &results[i]
		computeDone := downDone[i] + r.client.Runtime.ComputeTime(r.steps) + r.client.Runtime.RoundDelay()
		if !r.client.Runtime.Available(computeDone) {
			r.dropped = true
			r.arrive = computeDone
			continue
		}
		w, bytes := comm.Transmit(r.weights, true)
		r.weights = w
		r.arrive = e.Cluster.UploadArrival(computeDone, r.client.Runtime, bytes)
	}
	return results
}

// survivors filters out dropped results.
func survivors(results []trainResult) []trainResult {
	out := results[:0:0]
	for _, r := range results {
		if !r.dropped {
			out = append(out, r)
		}
	}
	return out
}

// completionTime is when the slowest upload lands — the length of a
// synchronous round ("the server has to wait for the slowest clients").
// Dropped clients bound it too: the server discovers the loss no earlier
// than the time the update would have been due.
func completionTime(results []trainResult) float64 {
	t := 0.0
	for _, r := range results {
		if r.arrive > t {
			t = r.arrive
		}
	}
	return t
}

// toUpdates converts surviving results into aggregator updates.
func toUpdates(results []trainResult) []core.ClientUpdate {
	ups := make([]core.ClientUpdate, 0, len(results))
	for _, r := range results {
		ups = append(ups, core.ClientUpdate{Weights: r.weights, N: r.n, Client: r.client.ID})
	}
	return ups
}
