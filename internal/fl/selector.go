package fl

import (
	"repro/internal/rng"
	"repro/internal/tiering"
)

// Selector is the client-selection policy of a method. Every selector
// implements Init; the pacing-specific capabilities are the two optional
// interfaces below, and a pacer validates at run start that its selector
// provides the capability it needs.
type Selector interface {
	// Init prepares per-run state: selectors split their RNG streams off
	// rs.root here so their randomness is independent of every other
	// policy's.
	Init(rs *runState) error
}

// RoundSelector drives synchronous pacing: it picks one cohort per round
// and decides which of the round's results count.
type RoundSelector interface {
	Selector
	// Pick selects the next round's cohort at time now. It may advance
	// the clock past selection bookkeeping (TiFL's accuracy refresh costs
	// real communication) and reports the training tier the cohort
	// belongs to (-1 when the selector is untiered; tier-aware update
	// rules then route each update by its client's profiled tier).
	Pick(rs *runState, now float64) (sel []int, tier int, newNow float64, outcome SelectOutcome, err error)
	// Harvest filters the round's results down to the updates that count
	// and returns the round's completion time — over-selection keeps only
	// the earliest arrivals, so the straggler tail stops gating the clock.
	Harvest(rs *runState, results []TrainResult) (kept []TrainResult, now float64)
}

// TierSelector drives tier pacing: each tier's loop asks for a cohort
// within that tier.
type TierSelector interface {
	Selector
	// PickTier samples a cohort from tier m at time now (nil when the
	// tier has no available clients).
	PickTier(rs *runState, m int, now float64) []int
	// Harvest plays the same role as RoundSelector.Harvest for one tier's
	// round.
	Harvest(rs *runState, results []TrainResult) (kept []TrainResult, now float64)
}

// SelectOutcome is a RoundSelector's verdict for one pacing attempt.
type SelectOutcome int

const (
	// SelectOK: a cohort was picked; train it.
	SelectOK SelectOutcome = iota
	// SelectSkip: nothing selectable this attempt (e.g. the picked tier is
	// offline) but other attempts may succeed; consume an attempt and
	// retry.
	SelectSkip
	// SelectStop: the population is exhausted; end the run.
	SelectStop
)

// Selectors is the registry of selection policies.
var Selectors = map[string]func() Selector{
	"random":  func() Selector { return &randomSelector{} },
	"oversel": func() Selector { return &overselSelector{} },
	"tifl":    func() Selector { return &tiflSelector{} },
	"all":     func() Selector { return allSelector{} },
}

// ---------------------------------------------------------------------------
// random: sample ClientsPerRound uniformly from the available population
// (FedAvg's selection); within a tier, sample from the tier's members with
// that tier's own stream (FedAT's per-tier rounds).

type randomSelector struct {
	all     []int
	selRNG  *rng.RNG
	root    *rng.RNG
	tierRNG []*rng.RNG
}

func (s *randomSelector) Init(rs *runState) error {
	s.all = allClientIDs(rs.fab)
	s.root = rs.root
	s.selRNG = rs.root.SplitLabeled(1)
	return nil
}

func (s *randomSelector) Pick(rs *runState, now float64) ([]int, int, float64, SelectOutcome, error) {
	sel := selectAvailable(s.selRNG, s.all, rs.fab, now, rs.cfg.ClientsPerRound)
	if len(sel) == 0 {
		return nil, -1, now, SelectStop, nil // everyone is offline; training cannot continue
	}
	return sel, -1, now, SelectOK, nil
}

func (s *randomSelector) PickTier(rs *runState, m int, now float64) []int {
	return selectAvailable(s.tierStream(m), rs.tiers.Members[m], rs.fab, now, rs.cfg.ClientsPerRound)
}

// tierStream lazily derives tier m's RNG stream, labelled by tier index —
// the label scheme FedAT has always used.
func (s *randomSelector) tierStream(m int) *rng.RNG {
	for len(s.tierRNG) <= m {
		s.tierRNG = append(s.tierRNG, s.root.SplitLabeled(uint64(len(s.tierRNG))))
	}
	return s.tierRNG[m]
}

func (s *randomSelector) Harvest(rs *runState, results []TrainResult) ([]TrainResult, float64) {
	return survivors(results), completionTime(results)
}

// ---------------------------------------------------------------------------
// oversel: Bonawitz et al.'s over-selection — select 130% of the target
// cohort, count only the earliest ~77% of surviving arrivals, so stragglers
// stop gating rounds at the cost of discarded work.

const overFactor = 1.3

type overselSelector struct {
	randomSelector // reuses the population/tier sampling streams
}

func (s *overselSelector) overCount(rs *runState) int {
	return int(float64(rs.cfg.ClientsPerRound)*overFactor + 0.5)
}

func (s *overselSelector) Pick(rs *runState, now float64) ([]int, int, float64, SelectOutcome, error) {
	sel := selectAvailable(s.selRNG, s.all, rs.fab, now, s.overCount(rs))
	if len(sel) == 0 {
		return nil, -1, now, SelectStop, nil
	}
	return sel, -1, now, SelectOK, nil
}

func (s *overselSelector) PickTier(rs *runState, m int, now float64) []int {
	return selectAvailable(s.tierStream(m), rs.tiers.Members[m], rs.fab, now, s.overCount(rs))
}

func (s *overselSelector) Harvest(rs *runState, results []TrainResult) ([]TrainResult, float64) {
	surv := survivors(results)
	if len(surv) == 0 {
		return nil, completionTime(results)
	}
	// Keep the earliest arrivals up to the target count; the rest are
	// received later but ignored (their bytes were already counted).
	keep := rs.cfg.ClientsPerRound
	if keep > len(surv) {
		keep = len(surv)
	}
	sortByArrival(surv)
	kept := surv[:keep]
	return kept, completionTime(kept)
}

// sortByArrival orders results by server arrival time (stable insertion
// sort: the slices are ~13 elements).
func sortByArrival(rs []TrainResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Arrive < rs[j-1].Arrive; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// ---------------------------------------------------------------------------
// tifl: Chai et al.'s adaptive credit-based tier selection — pick ONE tier
// per round (probability inversely proportional to its test accuracy,
// bounded by credits), sample clients within it, and periodically pay for
// an accuracy refresh with real communication.

type tiflSelector struct {
	sel     *tiering.TiFLSelector
	tierRNG *rng.RNG
	selRNG  *rng.RNG
}

func (s *tiflSelector) Init(rs *runState) error {
	tiers, err := rs.Tiers()
	if err != nil {
		return err
	}
	cfg := rs.cfg
	s.sel = tiering.NewTiFLSelector(tiers.M(), cfg.TiFLCredits, cfg.TiFLInterval)
	s.tierRNG = rs.root.SplitLabeled(1)
	s.selRNG = rs.root.SplitLabeled(2)
	return nil
}

func (s *tiflSelector) Pick(rs *runState, now float64) ([]int, int, float64, SelectOutcome, error) {
	if s.sel.NeedsAccuracyRefresh() {
		var err error
		now, err = tiflAccuracyRefresh(rs, s.sel, rs.rule.Global(), now)
		if err != nil {
			return nil, 0, now, SelectStop, err
		}
	}
	tier := s.sel.Select(s.tierRNG)
	sel := selectAvailable(s.selRNG, rs.tiers.Members[tier], rs.fab, now, rs.cfg.ClientsPerRound)
	if len(sel) == 0 {
		return nil, 0, now, SelectSkip, nil // tier fully offline; the selector will pick others
	}
	return sel, tier, now, SelectOK, nil
}

func (s *tiflSelector) Harvest(rs *runState, results []TrainResult) ([]TrainResult, float64) {
	return survivors(results), completionTime(results)
}

// tiflAccuracyRefresh models TiFL's adaptive-selection bookkeeping: the
// current model goes out to every available client, each evaluates locally
// and reports its test accuracy (a small control message). The fabric
// accounts the cost — on the simulator the transfers serialize on the
// server downlink and advance the clock; the live fabric tallies the bytes.
func tiflAccuracyRefresh(rs *runState, selector *tiering.TiFLSelector, global []float64, now float64) (float64, error) {
	const accMsgBytes = 32
	latest := now
	accs := make([]float64, rs.tiers.M())
	for m, members := range rs.tiers.Members {
		online := members[:0:0]
		for _, id := range members {
			if rs.fab.Available(id, now) {
				online = append(online, id)
			}
		}
		done, err := rs.fab.Probe(rs.comm, online, now, global, accMsgBytes)
		if err != nil {
			return 0, err
		}
		if done > latest {
			latest = done
		}
		accs[m] = rs.fab.EvaluateSubset(global, online)
	}
	selector.UpdateAccuracies(accs)
	return latest, nil
}

// ---------------------------------------------------------------------------
// all: no selection at all — the wait-free client loops train the whole
// population continuously.

// FreeSelector marks selectors compatible with wait-free client pacing,
// which performs no cohort selection at all. The client pacer rejects any
// other selector rather than silently ignoring it.
type FreeSelector interface {
	Selector
	freeRunning()
}

type allSelector struct{}

func (allSelector) Init(*runState) error { return nil }
func (allSelector) freeRunning()         {}

// allClientIDs lists every client id on the fabric.
func allClientIDs(fab Fabric) []int {
	all := make([]int, fab.NumClients())
	for i := range all {
		all[i] = i
	}
	return all
}
