package fl

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/tensor"
	"repro/internal/util"
)

// The staleness weight-function names accepted by StalenessConfig.Func,
// ParseAgg specs and the CLIs' -stale-func flag.
const (
	StaleFuncPoly  = "poly"  // (s+1)^(−a), Xie et al.'s polynomial discount
	StaleFuncExp   = "exp"   // e^(−a·s)
	StaleFuncConst = "const" // 1 — no discount
	StaleFuncHinge = "hinge" // 1 up to Threshold, then 1/(a·(s−Threshold)+1)
)

// StaleFuncs lists the weight-function names in display order.
var StaleFuncs = []string{StaleFuncPoly, StaleFuncExp, StaleFuncConst, StaleFuncHinge}

// StaleExpOff explicitly pins the staleness decay to 0 — constant
// weighting through the polynomial form. StalenessConfig.Alpha 0 (and the
// deprecated RunConfig.AsyncStaleExp 0) means "use the default", so an
// explicit zero needs a sentinel, mirroring LambdaOff.
const StaleExpOff = -1.0

// StalenessConfig parameterizes the async family's staleness discount
// g(s): how much an update that trained against a snapshot s global
// updates old still counts.
type StalenessConfig struct {
	// Func names the weight function (StaleFuncPoly & co). "" means poly.
	Func string
	// Alpha is the decay parameter a. 0 inherits the run-level default
	// (the deprecated AsyncStaleExp alias, then 0.5); StaleExpOff (any
	// negative value) pins it to exactly 0.
	Alpha float64
	// Threshold is hinge's flat region: staleness up to it is not
	// discounted at all.
	Threshold int
}

// Weight evaluates the weight function at staleness s ≥ 0. A negative
// Alpha (StaleExpOff) evaluates as exactly 0.
func (sc StalenessConfig) Weight(s float64) float64 {
	a := sc.Alpha
	if a < 0 {
		a = 0
	}
	switch sc.Func {
	case StaleFuncExp:
		return math.Exp(-a * s)
	case StaleFuncConst:
		return 1
	case StaleFuncHinge:
		if s <= float64(sc.Threshold) {
			return 1
		}
		return 1 / (a*(s-float64(sc.Threshold)) + 1)
	default: // "" and StaleFuncPoly
		return math.Pow(s+1, -a)
	}
}

func validStaleFunc(name string) bool {
	for _, f := range StaleFuncs {
		if name == f {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Aggregation specs

// ParseAgg resolves an aggregation spec to a fresh UpdateRule — the single
// parse path behind fedsim's -agg, fedserver's -agg and the experiments'
// cell specs. A spec is a registry rule name optionally followed by
// colon-separated staleness parameters:
//
//	rule[:func[:alpha[:threshold]]]
//
// e.g. "avg", "staleness:poly", "fedasync:exp:0.3", "asyncsgd:hinge:0.5:4".
// Empty parameter fields (and omitted ones) inherit RunConfig.Staleness at
// Init time; rules outside the async family reject parameters.
func ParseAgg(spec string) (UpdateRule, error) {
	fields := strings.Split(spec, ":")
	fac, ok := UpdateRules[fields[0]]
	if !ok {
		return nil, fmt.Errorf("unknown update rule %q (have %v)", fields[0], util.SortedKeys(UpdateRules))
	}
	rule, err := fac(fields[1:])
	if err != nil {
		return nil, fmt.Errorf("agg spec %q: %w", spec, err)
	}
	return rule, nil
}

// zeroArg adapts a parameterless rule constructor to the registry's
// parameterized shape, rejecting any spec arguments.
func zeroArg(name string, fn func() UpdateRule) func([]string) (UpdateRule, error) {
	return func(args []string) (UpdateRule, error) {
		if len(args) > 0 {
			return nil, fmt.Errorf("rule %q takes no parameters", name)
		}
		return fn(), nil
	}
}

// stalenessSpec is a partial StalenessConfig parsed from an agg spec's
// arguments. Only explicitly given fields override the run-level
// RunConfig.Staleness at Init (an explicit alpha of 0 overrides: the spec
// says exactly what it means, no sentinel needed).
type stalenessSpec struct {
	fn        string
	alpha     float64
	threshold int
	hasAlpha  bool
	hasThresh bool
}

func parseStalenessSpec(args []string) (stalenessSpec, error) {
	var s stalenessSpec
	if len(args) > 3 {
		return s, fmt.Errorf("want at most func:alpha:threshold, got %d parameters", len(args))
	}
	if len(args) > 0 && args[0] != "" {
		if !validStaleFunc(args[0]) {
			return s, fmt.Errorf("unknown weight function %q (have %v)", args[0], StaleFuncs)
		}
		s.fn = args[0]
	}
	if len(args) > 1 && args[1] != "" {
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return s, fmt.Errorf("bad staleness alpha %q", args[1])
		}
		s.alpha, s.hasAlpha = v, true
	}
	if len(args) > 2 && args[2] != "" {
		n, err := strconv.Atoi(args[2])
		if err != nil || n < 0 {
			return s, fmt.Errorf("bad staleness threshold %q", args[2])
		}
		s.threshold, s.hasThresh = n, true
	}
	return s, nil
}

// resolve overlays the spec's explicit fields on the run-level config.
func (s stalenessSpec) resolve(cfg StalenessConfig) StalenessConfig {
	if s.fn != "" {
		cfg.Func = s.fn
	}
	if s.hasAlpha {
		cfg.Alpha = s.alpha
	}
	if s.hasThresh {
		cfg.Threshold = s.threshold
	}
	if cfg.Func == "" {
		cfg.Func = StaleFuncPoly
	}
	return cfg
}

// ---------------------------------------------------------------------------
// fedasync: the per-update staleness fold — each arriving update blends
// into the global model with its OWN weight α·g(t − τ_k), τ_k the global
// update count when client k downloaded its snapshot
// (core.ClientUpdate.StartRound). The legacy "staleness" rule anchors a
// whole fold at its oldest member; with single-update folds (client
// pacing) the two are identical, but under fedbuff buffering (K > 1) this
// rule discounts each buffered update individually instead of dragging
// fresh members down to the batch's most stale one.

type fedasyncRule struct {
	global  []float64
	version int
	alpha   float64
	sc      StalenessConfig
	spec    stalenessSpec
}

func (r *fedasyncRule) Init(rs *runState) error {
	r.global = rs.fab.InitialWeights()
	r.alpha = rs.cfg.AsyncAlpha
	r.sc = r.spec.resolve(rs.cfg.Staleness)
	return nil
}

func (r *fedasyncRule) Global() []float64 { return r.global }
func (r *fedasyncRule) Rounds() int       { return r.version }

// Rebase implements Rebaser: the blend target becomes the merged model;
// staleness anchors (version) persist.
func (r *fedasyncRule) Rebase(w []float64) []float64 {
	copy(r.global, w)
	return r.global
}

func (r *fedasyncRule) Fold(f Fold) ([]float64, error) {
	if len(f.Updates) == 0 {
		return nil, fmt.Errorf("fedasync fold with no client updates")
	}
	for _, u := range f.Updates {
		if len(u.Weights) != len(r.global) {
			return nil, fmt.Errorf("fedasync fold: update has %d weights, want %d", len(u.Weights), len(r.global))
		}
		s := float64(r.version - u.StartRound)
		if s < 0 {
			s = 0
		}
		tensor.Lerp(r.global, u.Weights, r.alpha*r.sc.Weight(s))
	}
	r.version++
	return r.global, nil
}

// ---------------------------------------------------------------------------
// asyncsgd: FedBuff's gradient-style buffered server step — each update
// contributes its staleness-weighted model delta and the buffer's mean
// delta is applied as one server step of size α:
//
//	w ← w + α/K · Σ_k g(t − τ_k)·(w_k − w)
//
// Unlike fedasync's sequential blends, one fold is one server step, so the
// buffer's members all measure their delta against the same pre-fold model.

type asyncSGDRule struct {
	global  []float64
	delta   []float64 // fold scratch, reused — the fold stays alloc-free
	version int
	alpha   float64
	sc      StalenessConfig
	spec    stalenessSpec
}

func (r *asyncSGDRule) Init(rs *runState) error {
	r.global = rs.fab.InitialWeights()
	r.delta = make([]float64, len(r.global))
	r.alpha = rs.cfg.AsyncAlpha
	r.sc = r.spec.resolve(rs.cfg.Staleness)
	return nil
}

func (r *asyncSGDRule) Global() []float64 { return r.global }
func (r *asyncSGDRule) Rounds() int       { return r.version }

// Rebase implements Rebaser: the step base becomes the merged model.
func (r *asyncSGDRule) Rebase(w []float64) []float64 {
	copy(r.global, w)
	return r.global
}

func (r *asyncSGDRule) Fold(f Fold) ([]float64, error) {
	if len(f.Updates) == 0 {
		return nil, fmt.Errorf("asyncsgd fold with no client updates")
	}
	tensor.Zero(r.delta)
	for _, u := range f.Updates {
		if len(u.Weights) != len(r.global) {
			return nil, fmt.Errorf("asyncsgd fold: update has %d weights, want %d", len(u.Weights), len(r.global))
		}
		s := float64(r.version - u.StartRound)
		if s < 0 {
			s = 0
		}
		g := r.sc.Weight(s)
		for i, w := range u.Weights {
			r.delta[i] += g * (w - r.global[i])
		}
	}
	tensor.Axpy(r.alpha/float64(len(f.Updates)), r.delta, r.global)
	r.version++
	return r.global, nil
}
