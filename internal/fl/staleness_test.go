package fl

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestStalenessWeightFunctions pins each weight function against
// hand-computed values — these are the numbers the async rules and the
// adaptive-LR stage multiply by, so a drift here silently reweights every
// staleness run.
func TestStalenessWeightFunctions(t *testing.T) {
	cases := []struct {
		name string
		sc   StalenessConfig
		s    float64
		want float64
	}{
		{"poly fresh", StalenessConfig{Func: StaleFuncPoly, Alpha: 0.5}, 0, 1},
		{"poly a=0.5 s=3", StalenessConfig{Func: StaleFuncPoly, Alpha: 0.5}, 3, 0.5}, // 4^-0.5
		{"poly a=1 s=4", StalenessConfig{Func: StaleFuncPoly, Alpha: 1}, 4, 0.2},
		{"empty func is poly", StalenessConfig{Alpha: 1}, 4, 0.2},
		{"exp fresh", StalenessConfig{Func: StaleFuncExp, Alpha: 0.5}, 0, 1},
		{"exp a=0.5 s=2", StalenessConfig{Func: StaleFuncExp, Alpha: 0.5}, 2, math.Exp(-1)},
		{"const ignores staleness", StalenessConfig{Func: StaleFuncConst, Alpha: 9}, 100, 1},
		{"hinge flat region", StalenessConfig{Func: StaleFuncHinge, Alpha: 0.5, Threshold: 4}, 4, 1},
		{"hinge past threshold", StalenessConfig{Func: StaleFuncHinge, Alpha: 0.5, Threshold: 4}, 6, 0.5}, // 1/(0.5·2+1)
		{"StaleExpOff poly", StalenessConfig{Func: StaleFuncPoly, Alpha: StaleExpOff}, 50, 1},
		{"StaleExpOff exp", StalenessConfig{Func: StaleFuncExp, Alpha: StaleExpOff}, 50, 1},
		{"StaleExpOff hinge", StalenessConfig{Func: StaleFuncHinge, Alpha: StaleExpOff, Threshold: 2}, 50, 1},
	}
	for _, c := range cases {
		if got := c.sc.Weight(c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Weight(%v) = %v, want %v", c.name, c.s, got, c.want)
		}
	}
}

// TestParseAggSpecs: the single parse path accepts every registry rule bare,
// accepts parameterized async-family specs (with empty fields inheriting),
// and rejects malformed specs with an error naming the problem.
func TestParseAggSpecs(t *testing.T) {
	valid := []string{
		"avg", "eq5", "uniform", "asofed",
		"staleness", "fedasync", "asyncsgd",
		"staleness:poly", "fedasync:exp:0.3", "asyncsgd:hinge:0.5:4",
		"fedasync::0.25",  // empty func field inherits, alpha explicit
		"fedasync:poly:0", // explicit zero alpha is a statement, not a default
	}
	for _, spec := range valid {
		if _, err := ParseAgg(spec); err != nil {
			t.Errorf("ParseAgg(%q) rejected a valid spec: %v", spec, err)
		}
	}
	invalid := []string{
		"nope",                // unknown rule
		"avg:poly",            // parameterless rule with parameters
		"fedasync:bogus",      // unknown weight function
		"fedasync:poly:-1",    // negative alpha (use fedasync:poly:0 for none)
		"fedasync:poly:x",     // non-numeric alpha
		"fedasync:poly:1:-2",  // negative threshold
		"fedasync:poly:1:2:3", // too many parameters
	}
	for _, spec := range invalid {
		if _, err := ParseAgg(spec); err == nil {
			t.Errorf("ParseAgg(%q) accepted a malformed spec", spec)
		}
	}
}

// TestParseAggThreeSurfaces: the same spec string round-trips through every
// composition surface — direct ParseAgg (fedsim/fedserver -agg), Compose's
// update override (experiment cells), and the Update field of every
// registry method. One parse path, no per-binary drift.
func TestParseAggThreeSurfaces(t *testing.T) {
	const spec = "fedasync:exp:0.3"
	if _, err := ParseAgg(spec); err != nil {
		t.Fatalf("direct ParseAgg(%q): %v", spec, err)
	}
	m, err := Compose("fedasync", "", "fedbuff", spec, "")
	if err != nil {
		t.Fatalf("Compose with agg override: %v", err)
	}
	if m.Update != spec {
		t.Fatalf("Compose stored Update %q, want %q", m.Update, spec)
	}
	if _, err := ParseAgg(m.Update); err != nil {
		t.Fatalf("ParseAgg of composed Update %q: %v", m.Update, err)
	}
	for name, reg := range Methods {
		if _, err := ParseAgg(reg.Update); err != nil {
			t.Errorf("registry method %q carries unparseable Update %q: %v", name, reg.Update, err)
		}
	}
}

// TestStalenessSpecResolve: only explicitly given spec fields override the
// run-level config, and an explicit alpha of 0 overrides (the spec says
// exactly what it means — no sentinel at the spec layer).
func TestStalenessSpecResolve(t *testing.T) {
	base := StalenessConfig{Func: StaleFuncExp, Alpha: 0.7, Threshold: 3}

	s, err := parseStalenessSpec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.resolve(base); got != base {
		t.Fatalf("empty spec rewrote the run config: %+v", got)
	}

	s, err = parseStalenessSpec([]string{"hinge", "0", "5"})
	if err != nil {
		t.Fatal(err)
	}
	got := s.resolve(base)
	want := StalenessConfig{Func: StaleFuncHinge, Alpha: 0, Threshold: 5}
	if got != want {
		t.Fatalf("full spec resolved to %+v, want %+v", got, want)
	}

	s, err = parseStalenessSpec([]string{"", "0.25"})
	if err != nil {
		t.Fatal(err)
	}
	got = s.resolve(base)
	if got.Func != StaleFuncExp || got.Alpha != 0.25 || got.Threshold != 3 {
		t.Fatalf("partial spec resolved to %+v, want exp/0.25/3", got)
	}

	if got := (stalenessSpec{}).resolve(StalenessConfig{}); got.Func != StaleFuncPoly {
		t.Fatalf("unset func resolved to %q, want poly", got.Func)
	}
}

// TestStaleExpDefaulting mirrors TestLambdaDefaulting for the staleness
// decay: unset inherits 0.5 through to Staleness.Alpha, an explicit value
// flows through the deprecated flat alias, and StaleExpOff survives the
// double defaulting (NewEnv then RunOn) instead of being silently reset —
// the bug this sentinel exists to fix.
func TestStaleExpDefaulting(t *testing.T) {
	def := (RunConfig{}).withDefaults()
	if def.AsyncStaleExp != 0.5 || def.Staleness.Alpha != 0.5 {
		t.Fatalf("unset staleness decay defaulted to %v/%v, want 0.5/0.5",
			def.AsyncStaleExp, def.Staleness.Alpha)
	}
	if def.Staleness.Func != StaleFuncPoly {
		t.Fatalf("unset staleness func defaulted to %q, want poly", def.Staleness.Func)
	}

	alias := (RunConfig{AsyncStaleExp: 0.25}).withDefaults()
	if alias.Staleness.Alpha != 0.25 {
		t.Fatalf("deprecated alias did not feed Staleness.Alpha: %v", alias.Staleness.Alpha)
	}

	twice := (RunConfig{AsyncStaleExp: StaleExpOff}).withDefaults().withDefaults()
	if twice.AsyncStaleExp >= 0 || twice.Staleness.Alpha >= 0 {
		t.Fatalf("StaleExpOff did not survive double defaulting: %v/%v",
			twice.AsyncStaleExp, twice.Staleness.Alpha)
	}
	if got := twice.Staleness.Weight(37); got != 1 {
		t.Fatalf("StaleExpOff weight = %v, want 1 at any staleness", got)
	}
}

// staleUpdate builds a two-weight client update with its own staleness
// anchor.
func staleUpdate(a, b float64, start int) core.ClientUpdate {
	return core.ClientUpdate{Weights: []float64{a, b}, N: 1, StartRound: start}
}

// TestFedasyncMixedStalenessFold: a buffered fold with per-update anchors
// must blend each member with its OWN weight — verified bit-exactly against
// a hand-rolled sequential lerp — and must differ from the legacy batch rule
// on the same input, which drags every member down to the oldest anchor.
func TestFedasyncMixedStalenessFold(t *testing.T) {
	const alpha = 0.6
	sc := StalenessConfig{Func: StaleFuncPoly, Alpha: 0.5}
	updates := []core.ClientUpdate{
		staleUpdate(1, -2, 0),  // stale: trained against the version-0 snapshot
		staleUpdate(-3, 4, 7),  // stale by one
		staleUpdate(5, 0.5, 8), // fresh
	}

	r := &fedasyncRule{global: []float64{0.25, -0.75}, version: 8, alpha: alpha, sc: sc}
	got, err := r.Fold(Fold{Tier: -1, Updates: updates})
	if err != nil {
		t.Fatal(err)
	}

	want := []float64{0.25, -0.75}
	for _, u := range updates {
		tw := alpha * sc.Weight(float64(8-u.StartRound))
		for i := range want {
			want[i] = (1-tw)*want[i] + tw*u.Weights[i]
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("per-update fold[%d] = %v, want %v (bit-exact)", i, got[i], want[i])
		}
	}
	if r.Rounds() != 9 {
		t.Fatalf("fold advanced version to %d, want 9", r.Rounds())
	}

	legacy := &stalenessRule{global: []float64{0.25, -0.75}, version: 8, alpha: alpha, sc: sc}
	lgot, err := legacy.Fold(Fold{Tier: -1, Updates: updates})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range got {
		if got[i] != lgot[i] {
			same = false
		}
	}
	if same {
		t.Fatal("per-update fold matched the batch-anchored rule on mixed staleness — anchors are not per-update")
	}

	// Single-update folds (client pacing) are where the two rules coincide.
	one := []core.ClientUpdate{staleUpdate(1, -2, 5)}
	ra := &fedasyncRule{global: []float64{0, 0}, version: 9, alpha: alpha, sc: sc}
	rb := &stalenessRule{global: []float64{0, 0}, version: 9, alpha: alpha, sc: sc}
	ga, _ := ra.Fold(Fold{Tier: -1, Updates: one})
	gb, _ := rb.Fold(Fold{Tier: -1, Updates: one})
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("cohort-of-one fold diverged from legacy rule at [%d]: %v vs %v", i, ga[i], gb[i])
		}
	}
}

// TestAsyncSGDFold: one fold is one server step — every buffered member
// measures its delta against the same pre-fold model, weighted by its own
// staleness, and the mean delta is applied with step size α.
func TestAsyncSGDFold(t *testing.T) {
	const alpha = 0.6
	sc := StalenessConfig{Func: StaleFuncExp, Alpha: 0.3}
	global := []float64{0.25, -0.75}
	updates := []core.ClientUpdate{
		staleUpdate(1, -2, 2),
		staleUpdate(-3, 4, 5),
	}

	r := &asyncSGDRule{global: append([]float64(nil), global...), delta: make([]float64, 2), version: 5, alpha: alpha, sc: sc}
	got, err := r.Fold(Fold{Tier: -1, Updates: updates})
	if err != nil {
		t.Fatal(err)
	}

	delta := make([]float64, 2)
	for _, u := range updates {
		g := sc.Weight(float64(5 - u.StartRound))
		for i := range delta {
			delta[i] += g * (u.Weights[i] - global[i])
		}
	}
	for i := range global {
		want := global[i] + alpha/2*delta[i]
		if got[i] != want {
			t.Fatalf("asyncsgd fold[%d] = %v, want %v (bit-exact)", i, got[i], want)
		}
	}
	if r.Rounds() != 6 {
		t.Fatalf("fold advanced version to %d, want 6", r.Rounds())
	}
}

// TestFoldStartRound: the batch accessor reports the oldest member's anchor
// (the legacy rule's whole-fold staleness) and 0 on an empty fold.
func TestFoldStartRound(t *testing.T) {
	f := Fold{Updates: []core.ClientUpdate{
		staleUpdate(0, 0, 6), staleUpdate(0, 0, 2), staleUpdate(0, 0, 4),
	}}
	if got := f.StartRound(); got != 2 {
		t.Fatalf("StartRound() = %d, want oldest member 2", got)
	}
	if got := (Fold{}).StartRound(); got != 0 {
		t.Fatalf("empty fold StartRound() = %d, want 0", got)
	}
}
