package fl

// The hierarchical synchronization hook. A flat run's engine owns its
// global model outright; in an edge topology each edge's engine
// additionally pushes its model up to a cloud folder and occasionally
// adopts the merged result. Syncer is that seam: an observer that, right
// after each of the engine's own folds, may hand back events to emit (the
// cloud's EdgeFoldEvent) and a merged model to rebase onto. Runs with no
// Syncer attached take a byte-identical fast path, which is what keeps the
// bit-pinned flat goldens valid.

// FoldInfo describes one completed engine fold, as handed to Syncers.
type FoldInfo struct {
	Tier  int
	Round int     // global update count after the fold
	Time  float64 // the run's clock
	// Global is the fold's resulting model. Shared with the engine:
	// read-only, valid only until the next fold — a Syncer that retains it
	// must copy (the edge uplink encodes it immediately).
	Global []float64
}

// SyncDirective is a Syncer's response to a fold.
type SyncDirective struct {
	// Rebase, when non-nil, is a model the update rule must adopt as its
	// new server-side state before training continues (the cloud's merged
	// model). The rule must implement Rebaser; the engine fails the run
	// otherwise. The slice is owned by the caller after the rebase copies
	// from it.
	Rebase []float64
	// Events are emitted into the run's event stream, after the fold's
	// TierFoldEvent and before any rebase — EdgeFoldEvents describing cloud
	// activity this fold triggered or delivered.
	Events []Event
}

// Syncer is an observer capability: observers that also implement Syncer
// intervene after every engine fold. AfterFold runs on the engine's clock
// goroutine (same discipline as any fabric callback) and must not advance
// the clock or draw from the run's RNG streams.
type Syncer interface {
	Observer
	AfterFold(f FoldInfo) SyncDirective
}
