package fl

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/tiering"
)

// TiFL runs the tier-based synchronous baseline (Chai et al., HPDC'20):
// clients are profiled into latency tiers; each round the adaptive selector
// picks ONE tier (probability inversely proportional to its test accuracy,
// bounded by per-tier credits) and samples clients within it. Aggregation
// is FedAvg's weighted average. Because a round only waits for clients of
// one tier, fast-tier rounds are short — but the periodic accuracy refresh
// downloads the model to every client, the communication overhead §2.1
// calls out.
func TiFL(env *Env) *metrics.Run {
	cfg := env.Cfg
	comm := NewComm(cfg.Codec, env.Shapes())
	rec := newRecorder(env, comm, "TiFL")

	tiers := ProfileTiers(env)
	agg, err := core.NewAggregator(1, env.InitialWeights(), true)
	if err != nil {
		panic("fl: " + err.Error())
	}
	selector := tiering.NewTiFLSelector(tiers.M(), cfg.TiFLCredits, cfg.TiFLInterval)
	root := rng.New(cfg.Seed).SplitLabeled(hashName("TiFL"))
	tierRNG := root.SplitLabeled(1)
	selRNG := root.SplitLabeled(2)

	now := 0.0
	rounds := 0
	for attempt := 0; rounds < cfg.Rounds && attempt < 2*cfg.Rounds+10; attempt++ {
		if cfg.MaxSimTime > 0 && now >= cfg.MaxSimTime {
			break
		}
		if selector.NeedsAccuracyRefresh() {
			now = tiflAccuracyRefresh(env, comm, agg.Global(), tiers, selector, now)
		}
		tier := selector.Select(tierRNG)
		sel := selectAvailable(selRNG, tiers.Members[tier], env.Clients, now, cfg.ClientsPerRound)
		if len(sel) == 0 {
			continue // tier fully offline; the selector will pick others
		}
		results := env.trainGroup(sel, now, agg.Global(), comm, env.LocalConfig(0, uint64(rounds)))
		now = completionTime(results)
		surv := survivors(results)
		if len(surv) == 0 {
			continue
		}
		g, err := agg.UpdateTier(0, toUpdates(surv))
		if err != nil {
			panic("fl: " + err.Error())
		}
		rounds++
		rec.maybeEval(rounds, now, g)
	}
	return rec.finish(rounds)
}

// tiflAccuracyRefresh models TiFL's adaptive-selection bookkeeping: the
// current model is downloaded to every available client, each evaluates
// locally and uploads its test accuracy (a small control message). The
// refresh costs real communication (model bytes × clients) and real time
// (the transfers serialize on the server downlink).
func tiflAccuracyRefresh(env *Env, comm *Comm, global []float64, tiers *tiering.Tiers, selector *tiering.TiFLSelector, now float64) float64 {
	const accMsgBytes = 32
	latest := now
	accs := make([]float64, tiers.M())
	for m, members := range tiers.Members {
		online := members[:0:0]
		for _, id := range members {
			c := env.Clients[id]
			if !c.Runtime.Available(now) {
				continue
			}
			online = append(online, id)
			_, bytes := comm.Transmit(global, false)
			done := env.Cluster.DownloadArrival(now, c.Runtime, bytes)
			comm.CountControl(accMsgBytes, true)
			done = env.Cluster.UploadArrival(done, c.Runtime, accMsgBytes)
			if done > latest {
				latest = done
			}
		}
		accs[m] = env.Eval.EvaluateSubset(global, online)
	}
	selector.UpdateAccuracies(accs)
	return latest
}

// ProfileTiers runs the tiering module over the clients' profiled response
// latencies (compute for a nominal round plus mean injected delay) — shared
// by TiFL and FedAT, which reuses TiFL's tiering approach (§2.1). When
// MisTierFrac > 0 that fraction of the profiles is replaced with random
// values, modelling the mis-profiling §2.1 describes ("a portion of clients
// are incorrectly profiled and assigned to a wrong tier").
func ProfileTiers(env *Env) *tiering.Tiers {
	lc := env.LocalConfig(0, 0)
	lat := make([]float64, len(env.Clients))
	lo, hi := 1e300, 0.0
	for i, c := range env.Clients {
		lat[i] = c.Runtime.ExpectedLatency(lc.Steps(c.Data.NumTrain()))
		if lat[i] < lo {
			lo = lat[i]
		}
		if lat[i] > hi {
			hi = lat[i]
		}
	}
	if f := env.Cfg.MisTierFrac; f > 0 {
		r := rng.New(env.Cfg.Seed).SplitLabeled(hashName("mistier"))
		n := int(f * float64(len(lat)))
		for _, i := range r.Choose(len(lat), n) {
			lat[i] = r.Uniform(lo, hi) // profile scrambled within range
		}
	}
	tiers, err := tiering.Partition(lat, env.Cfg.NumTiers)
	if err != nil {
		panic("fl: " + err.Error())
	}
	return tiers
}
