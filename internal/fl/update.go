package fl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/tiering"
)

// Fold is one batch of client updates arriving at the server: the tier they
// trained in, with each update carrying its own staleness anchor
// (core.ClientUpdate.StartRound).
type Fold struct {
	Tier    int
	Updates []core.ClientUpdate
}

// StartRound returns the fold's batch-level staleness anchor: the oldest
// member's StartRound. This is exactly the pre-redesign batch field, which
// stamped a whole fold at its most stale member — the legacy staleness
// rule keeps that semantics through this accessor so its pinned runs stay
// byte-identical, while the per-update rules (fedasync, asyncsgd) read
// each update's own anchor instead.
func (f Fold) StartRound() int {
	if len(f.Updates) == 0 {
		return 0
	}
	start := f.Updates[0].StartRound
	for _, u := range f.Updates[1:] {
		if u.StartRound < start {
			start = u.StartRound
		}
	}
	return start
}

// UpdateRule is the aggregation policy of a method: it owns the server-side
// model state, hands out download snapshots, and folds arrived updates into
// a new global model.
type UpdateRule interface {
	// Init allocates the per-run server state.
	Init(rs *runState) error
	// Global returns the current global model for download. The slice may
	// alias internal state: callers must encode or copy it immediately and
	// never mutate it.
	Global() []float64
	// Rounds returns t, the number of global updates folded so far.
	Rounds() int
	// Fold incorporates one batch of client updates and returns the fresh
	// global model (aliasing rules as for Global).
	Fold(f Fold) ([]float64, error)
}

// TierAware marks update rules that track the tier partition and must be
// told when the engine re-tiers at runtime (RunConfig.RetierEvery). The
// Eq. 5 fold routes untiered arrivals by the client's current tier, so a
// stale assignment would keep feeding a migrated client's updates to its
// old tier's model.
type TierAware interface {
	Repartition(t *tiering.Tiers)
}

// Rebaser marks update rules that can adopt an externally merged global
// model: in a hierarchical topology the cloud folds the edges' models and
// each edge's rule rebases its server-side state onto the merged result
// before training continues. Rebase replaces the rule's model state with w
// (activity counters persist — they measure this edge's update history,
// which a merge does not erase) and returns the rule's new global
// reference, with Global's aliasing rules. ASO-Fed's rule is deliberately
// not a Rebaser: its global is a derived running average of per-client
// copies, so overwriting it without rewriting every copy would be silently
// undone by the next arrival — the engine reports an error instead.
type Rebaser interface {
	Rebase(w []float64) []float64
}

// UpdateRules is the registry of aggregation policies. Each constructor
// receives the parameters of its spec — the colon-separated fields after
// the rule name in ParseAgg's input — and may reject them; parameterless
// rules register through zeroArg. Callers resolve specs with ParseAgg
// rather than indexing the map directly.
var UpdateRules = map[string]func(args []string) (UpdateRule, error){
	"avg":       zeroArg("avg", func() UpdateRule { return &avgRule{} }),
	"eq5":       zeroArg("eq5", func() UpdateRule { return &eq5Rule{} }),
	"uniform":   zeroArg("uniform", func() UpdateRule { return &eq5Rule{forceUniform: true} }),
	"staleness": stalenessArgs(func(s stalenessSpec) UpdateRule { return &stalenessRule{spec: s} }),
	"fedasync":  stalenessArgs(func(s stalenessSpec) UpdateRule { return &fedasyncRule{spec: s} }),
	"asyncsgd":  stalenessArgs(func(s stalenessSpec) UpdateRule { return &asyncSGDRule{spec: s} }),
	"asofed":    zeroArg("asofed", func() UpdateRule { return &asoRule{} }),
}

// stalenessArgs adapts an async-family constructor: the spec's parameters
// parse as func:alpha:threshold and override RunConfig.Staleness at Init.
func stalenessArgs(fn func(stalenessSpec) UpdateRule) func([]string) (UpdateRule, error) {
	return func(args []string) (UpdateRule, error) {
		s, err := parseStalenessSpec(args)
		if err != nil {
			return nil, err
		}
		return fn(s), nil
	}
}

// ---------------------------------------------------------------------------
// avg: FedAvg's n_k-weighted mean. A single-tier FedAT aggregator is exactly
// that average (§4.1: "with λ=0 and one tier, FedAT becomes FedAvg"), so the
// same core drives the synchronous baselines; whatever tier the selector
// reports, updates fold into the one tier.

type avgRule struct {
	agg *core.Aggregator
}

func (r *avgRule) Init(rs *runState) error {
	agg, err := core.NewAggregator(1, rs.fab.InitialWeights(), true)
	if err != nil {
		return err
	}
	r.agg = agg
	return nil
}

func (r *avgRule) Global() []float64 { return r.agg.GlobalRef() }
func (r *avgRule) Rounds() int       { return r.agg.Rounds() }

func (r *avgRule) Fold(f Fold) ([]float64, error) {
	return r.agg.UpdateTierRef(0, f.Updates)
}

// Rebase implements Rebaser via the aggregator's state replacement.
func (r *avgRule) Rebase(w []float64) []float64 { return r.agg.Rebase(w) }

// ---------------------------------------------------------------------------
// eq5: FedAT's cross-tier fold — one model per tier, global model the Eq. 5
// update-count-weighted average (uniform weights under cfg.UniformAgg or the
// "uniform" registry key, the Figure 6 ablation). Tier count comes from the
// profiled latency partition.

type eq5Rule struct {
	agg          *core.Aggregator
	assignment   []int // client id → tier, for folds that don't name a tier
	forceUniform bool
}

func (r *eq5Rule) Init(rs *runState) error {
	tiers, err := rs.Tiers()
	if err != nil {
		return err
	}
	weighted := !rs.cfg.UniformAgg && !r.forceUniform
	agg, err := core.NewAggregator(tiers.M(), rs.fab.InitialWeights(), weighted)
	if err != nil {
		return err
	}
	r.agg = agg
	r.assignment = tiers.Assignment
	return nil
}

func (r *eq5Rule) Global() []float64 { return r.agg.GlobalRef() }
func (r *eq5Rule) Rounds() int       { return r.agg.Rounds() }

// Repartition implements TierAware: after a runtime retier, untiered folds
// route by the NEW assignment. Per-tier model state persists — a migrated
// client simply starts contributing to its new tier's model.
func (r *eq5Rule) Repartition(t *tiering.Tiers) { r.assignment = t.Assignment }

// Rebase implements Rebaser: every tier model restarts from the merged
// cloud model, exactly as Algorithm 2 initializes every tier from w0.
func (r *eq5Rule) Rebase(w []float64) []float64 { return r.agg.Rebase(w) }

func (r *eq5Rule) Fold(f Fold) ([]float64, error) {
	if f.Tier >= 0 {
		return r.agg.UpdateTierRef(f.Tier, f.Updates)
	}
	// Untiered fold (tier -1: the wait-free client loops, or a sync
	// selector with no tier concept): route each update into its client's
	// profiled tier, so the Eq. 5 weighting still sees a per-tier update
	// stream. Groups fold in first-seen order — deterministic, since the
	// update order is.
	if len(f.Updates) == 1 {
		// The wait-free loops fold one arrival at a time; skip the grouping
		// machinery entirely.
		u := f.Updates[0]
		if u.Client < 0 || u.Client >= len(r.assignment) {
			return nil, fmt.Errorf("eq5 fold: client %d out of range [0,%d)", u.Client, len(r.assignment))
		}
		return r.agg.UpdateTierRef(r.assignment[u.Client], f.Updates)
	}
	var g []float64
	var order []int
	byTier := map[int][]core.ClientUpdate{}
	for _, u := range f.Updates {
		if u.Client < 0 || u.Client >= len(r.assignment) {
			return nil, fmt.Errorf("eq5 fold: client %d out of range [0,%d)", u.Client, len(r.assignment))
		}
		t := r.assignment[u.Client]
		if _, ok := byTier[t]; !ok {
			order = append(order, t)
		}
		byTier[t] = append(byTier[t], u)
	}
	for _, t := range order {
		var err error
		if g, err = r.agg.UpdateTierRef(t, byTier[t]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ---------------------------------------------------------------------------
// staleness: Xie et al.'s FedAsync mixing — each arriving update is blended
// into the global model with weight α_t = α·g(staleness), staleness
// measured in global updates since the fold's OLDEST member downloaded its
// snapshot (the batch anchor; fedasync in staleness.go is the per-update
// variant). g is the configured weight function, polynomial
// (staleness+1)^(−a) by default.

type stalenessRule struct {
	global  []float64
	version int
	alpha   float64
	sc      StalenessConfig
	spec    stalenessSpec
}

func (r *stalenessRule) Init(rs *runState) error {
	r.global = rs.fab.InitialWeights()
	r.alpha = rs.cfg.AsyncAlpha
	r.sc = r.spec.resolve(rs.cfg.Staleness)
	return nil
}

func (r *stalenessRule) Global() []float64 { return r.global }
func (r *stalenessRule) Rounds() int       { return r.version }

// Rebase implements Rebaser: the blend target simply becomes the merged
// model; staleness anchors (version) persist.
func (r *stalenessRule) Rebase(w []float64) []float64 {
	copy(r.global, w)
	return r.global
}

func (r *stalenessRule) Fold(f Fold) ([]float64, error) {
	if len(f.Updates) == 0 {
		return nil, fmt.Errorf("staleness fold with no client updates")
	}
	start := f.StartRound()
	for _, u := range f.Updates {
		if len(u.Weights) != len(r.global) {
			return nil, fmt.Errorf("staleness fold: update has %d weights, want %d", len(u.Weights), len(r.global))
		}
		staleness := float64(r.version - start)
		alpha := r.alpha * r.sc.Weight(staleness)
		tensor.Lerp(r.global, u.Weights, alpha)
	}
	r.version++
	return r.global, nil
}

// ---------------------------------------------------------------------------
// asofed: Chen et al.'s ASO-Fed server — a per-client model copy and a
// running n_k-weighted sum, so each arrival updates the global average in
// O(params) instead of O(clients·params).

type asoRule struct {
	copies  [][]float64
	copySum []float64
	global  []float64
	totalN  int
	version int
}

func (r *asoRule) Init(rs *runState) error {
	numClients := rs.fab.NumClients()
	r.global = rs.fab.InitialWeights()
	r.copies = make([][]float64, numClients)
	r.copySum = make([]float64, len(r.global))
	for i := 0; i < numClients; i++ {
		r.copies[i] = rs.fab.InitialWeights()
		n := rs.fab.SampleCount(i)
		r.totalN += n
		tensor.Axpy(float64(n), r.copies[i], r.copySum)
	}
	if r.totalN <= 0 {
		return fmt.Errorf("asofed: population reports no training samples")
	}
	for i := range r.global {
		r.global[i] = r.copySum[i] / float64(r.totalN)
	}
	return nil
}

func (r *asoRule) Global() []float64 { return r.global }
func (r *asoRule) Rounds() int       { return r.version }

func (r *asoRule) Fold(f Fold) ([]float64, error) {
	if len(f.Updates) == 0 {
		return nil, fmt.Errorf("asofed fold with no client updates")
	}
	for _, u := range f.Updates {
		if u.Client < 0 || u.Client >= len(r.copies) {
			return nil, fmt.Errorf("asofed fold: client %d out of range [0,%d)", u.Client, len(r.copies))
		}
		if len(u.Weights) != len(r.global) {
			return nil, fmt.Errorf("asofed fold: update has %d weights, want %d", len(u.Weights), len(r.global))
		}
		n := float64(u.N)
		old := r.copies[u.Client]
		for i := range r.copySum {
			r.copySum[i] += n * (u.Weights[i] - old[i])
		}
		// Copy into the per-client buffer instead of retaining u.Weights:
		// the engine returns update buffers to the run's pool after the
		// fold, so holding the slice would alias recycled memory.
		copy(old, u.Weights)
	}
	for i := range r.global {
		r.global[i] = r.copySum[i] / float64(r.totalN)
	}
	r.version++
	return r.global, nil
}
