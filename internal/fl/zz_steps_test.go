package fl

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func TestCountBenchSteps(t *testing.T) {
	fed, _ := dataset.FashionLike(15, 2, dataset.ScaleSmall, 7)
	cluster, _ := simnet.NewCluster(simnet.ClusterConfig{
		NumClients: 15, NumUnstable: 1, DropHorizon: 3000,
		SecPerBatch: 0.5, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 16 << 20,
		Seed: 7,
	})
	factory := func(s uint64) *nn.Network {
		return nn.NewMLP(rng.New(s), fed.InDim, 16, fed.Classes)
	}
	env, err := NewEnv(fed, cluster, factory, RunConfig{
		Rounds: 20, ClientsPerRound: 5, LocalEpochs: 2, BatchSize: 8,
		Lambda: 0.4, LearningRate: 0.005, NumTiers: 5,
		Codec: codec.Raw{}, EvalEvery: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	nTrain, nTest := 0, 0
	for _, c := range env.Clients {
		nTrain += c.Data.NumTrain()
		nTest += c.Data.NumTest()
	}
	fmt.Printf("InDim=%d Classes=%d params=%d totalTrain=%d totalTest=%d perClient=%d\n",
		fed.InDim, fed.Classes, len(env.InitialWeights()), nTrain, nTest, env.Clients[0].Data.NumTrain())
	r, err := Run("fedavg", env)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}
