package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the run's evaluation points as CSV (one row per point),
// the format the plotting scripts and spreadsheet users consume. Columns:
// round, time_s, up_bytes, down_bytes, acc, loss, var.
func (r *Run) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "time_s", "up_bytes", "down_bytes", "acc", "loss", "var"}); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for _, p := range r.Points {
		row := []string{
			fmt.Sprint(p.Round),
			fmt.Sprintf("%.3f", p.Time),
			fmt.Sprint(p.UpBytes),
			fmt.Sprint(p.DownBytes),
			fmt.Sprintf("%.6f", p.Acc),
			fmt.Sprintf("%.6f", p.Loss),
			fmt.Sprintf("%.8f", p.Var),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: flush csv: %w", err)
	}
	return nil
}
