package metrics

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(r.Points)+1 {
		t.Fatalf("csv has %d rows, want %d", len(records), len(r.Points)+1)
	}
	if strings.Join(records[0], ",") != "round,time_s,up_bytes,down_bytes,acc,loss,var" {
		t.Fatalf("csv header wrong: %v", records[0])
	}
	if records[1][0] != "0" || records[1][4] != "0.100000" {
		t.Fatalf("first data row wrong: %v", records[1])
	}
	for _, rec := range records[1:] {
		if len(rec) != 7 {
			t.Fatalf("row has %d cells: %v", len(rec), rec)
		}
	}
}

func TestWriteCSVEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Run{}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 {
		t.Fatalf("empty run csv has %d lines, want header only", lines)
	}
}
