// Package metrics collects and post-processes the measurements the paper
// reports: test-accuracy timelines (smoothed over 40-round windows),
// per-client accuracy variance (Definition 3.1), time-to-target-accuracy
// (Figure 2's bar charts), and cumulative communication bytes (Table 2,
// Figure 4).
package metrics

import (
	"fmt"
	"math"
)

// Point is one evaluation of the global model during a run.
type Point struct {
	Round     int     // global update count t
	Time      float64 // virtual seconds
	UpBytes   int64   // cumulative client→server bytes
	DownBytes int64   // cumulative server→client bytes
	Acc       float64 // sample-weighted mean test accuracy over clients
	Loss      float64 // mean test loss
	Var       float64 // cross-client accuracy variance
}

// Run is the full record of one training run.
type Run struct {
	Method  string
	Dataset string
	Points  []Point

	UpBytes, DownBytes int64 // totals at the end of the run
	GlobalRounds       int

	// Retiers counts runtime re-tiering passes (RetierEvery runs) and
	// TierMigrations the total client tier changes they caused; both stay 0
	// for static-tier runs.
	Retiers        int
	TierMigrations int

	// EdgeFolds counts hierarchical edge→cloud folds observed on this run's
	// event stream and EdgeStaleness the summed staleness (in cloud epochs)
	// of the pushes that triggered them; both stay 0 for flat topologies.
	EdgeFolds     int
	EdgeStaleness float64
}

// Add appends an evaluation point.
func (r *Run) Add(p Point) { r.Points = append(r.Points, p) }

// BestAcc returns the best accuracy any evaluation reached — the paper's
// "best test accuracy after each training process converges".
func (r *Run) BestAcc() float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.Acc > best {
			best = p.Acc
		}
	}
	return best
}

// FinalAcc returns the last evaluation's accuracy (0 when empty).
func (r *Run) FinalAcc() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].Acc
}

// FinalLoss returns the last evaluation's loss.
func (r *Run) FinalLoss() float64 {
	if len(r.Points) == 0 {
		return math.NaN()
	}
	return r.Points[len(r.Points)-1].Loss
}

// MeanVariance averages the cross-client accuracy variance over the run's
// second half (after warm-up), the quantity Table 1 normalizes.
func (r *Run) MeanVariance() float64 {
	if len(r.Points) == 0 {
		return math.NaN()
	}
	start := len(r.Points) / 2
	sum, n := 0.0, 0
	for _, p := range r.Points[start:] {
		sum += p.Var
		n++
	}
	return sum / float64(n)
}

// TimeToAccuracy returns the first virtual time at which the smoothed
// accuracy reached target, and whether it ever did (Figure 2's bars; the
// paper notes FedAsync never reaches some targets).
func (r *Run) TimeToAccuracy(target float64) (float64, bool) {
	for _, p := range r.Points {
		if p.Acc >= target {
			return p.Time, true
		}
	}
	return 0, false
}

// BytesToAccuracy returns the cumulative up+down bytes when the accuracy
// first reached target (Table 2).
func (r *Run) BytesToAccuracy(target float64) (int64, bool) {
	for _, p := range r.Points {
		if p.Acc >= target {
			return p.UpBytes + p.DownBytes, true
		}
	}
	return 0, false
}

// UploadBytesToAccuracy returns the cumulative uplink bytes at the target
// (Figure 4's x-axis).
func (r *Run) UploadBytesToAccuracy(target float64) (int64, bool) {
	for _, p := range r.Points {
		if p.Acc >= target {
			return p.UpBytes, true
		}
	}
	return 0, false
}

// Smooth returns a copy of the points with accuracy and loss averaged over
// non-overlapping windows of the given number of evaluations — the paper
// smooths "every 40 global rounds".
func (r *Run) Smooth(window int) []Point {
	if window <= 1 || len(r.Points) == 0 {
		out := make([]Point, len(r.Points))
		copy(out, r.Points)
		return out
	}
	var out []Point
	for i := 0; i < len(r.Points); i += window {
		j := i + window
		if j > len(r.Points) {
			j = len(r.Points)
		}
		w := r.Points[i:j]
		avg := w[len(w)-1] // keep cumulative fields from the window end
		acc, loss, v := 0.0, 0.0, 0.0
		for _, p := range w {
			acc += p.Acc
			loss += p.Loss
			v += p.Var
		}
		avg.Acc = acc / float64(len(w))
		avg.Loss = loss / float64(len(w))
		avg.Var = v / float64(len(w))
		out = append(out, avg)
	}
	return out
}

// Variance returns the population variance of vals.
func Variance(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	s := 0.0
	for _, v := range vals {
		d := v - mean
		s += d * d
	}
	return s / float64(len(vals))
}

// FormatBytes renders a byte count in MB with two decimals, the unit
// Table 2 uses.
func FormatBytes(b int64) string {
	return fmt.Sprintf("%.2f MB", float64(b)/1e6)
}
