package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleRun() *Run {
	r := &Run{Method: "m", Dataset: "d"}
	accs := []float64{0.1, 0.2, 0.35, 0.5, 0.48, 0.6}
	for i, a := range accs {
		r.Add(Point{
			Round: i, Time: float64(i) * 10,
			UpBytes: int64(i) * 100, DownBytes: int64(i) * 50,
			Acc: a, Loss: 1 - a, Var: 0.01 * float64(i+1),
		})
	}
	return r
}

func TestBestAndFinal(t *testing.T) {
	r := sampleRun()
	if r.BestAcc() != 0.6 {
		t.Fatalf("BestAcc %v", r.BestAcc())
	}
	if r.FinalAcc() != 0.6 {
		t.Fatalf("FinalAcc %v", r.FinalAcc())
	}
	if math.Abs(r.FinalLoss()-0.4) > 1e-12 {
		t.Fatalf("FinalLoss %v", r.FinalLoss())
	}
}

func TestEmptyRun(t *testing.T) {
	r := &Run{}
	if r.BestAcc() != 0 || r.FinalAcc() != 0 {
		t.Fatal("empty run accuracies should be 0")
	}
	if !math.IsNaN(r.FinalLoss()) || !math.IsNaN(r.MeanVariance()) {
		t.Fatal("empty run loss/variance should be NaN")
	}
	if _, ok := r.TimeToAccuracy(0.1); ok {
		t.Fatal("empty run reached a target")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	r := sampleRun()
	tt, ok := r.TimeToAccuracy(0.5)
	if !ok || tt != 30 {
		t.Fatalf("TimeToAccuracy(0.5) = %v,%v", tt, ok)
	}
	if _, ok := r.TimeToAccuracy(0.9); ok {
		t.Fatal("unreached target reported as reached")
	}
}

func TestBytesToAccuracy(t *testing.T) {
	r := sampleRun()
	b, ok := r.BytesToAccuracy(0.5)
	if !ok || b != 450 {
		t.Fatalf("BytesToAccuracy = %v,%v want 450", b, ok)
	}
	ub, ok := r.UploadBytesToAccuracy(0.5)
	if !ok || ub != 300 {
		t.Fatalf("UploadBytesToAccuracy = %v,%v want 300", ub, ok)
	}
}

func TestMeanVarianceUsesSecondHalf(t *testing.T) {
	r := sampleRun()
	// second half points: vars 0.04, 0.05, 0.06 → mean 0.05
	if math.Abs(r.MeanVariance()-0.05) > 1e-12 {
		t.Fatalf("MeanVariance %v", r.MeanVariance())
	}
}

func TestSmoothWindows(t *testing.T) {
	r := sampleRun()
	sm := r.Smooth(2)
	if len(sm) != 3 {
		t.Fatalf("Smooth(2) gave %d points", len(sm))
	}
	if math.Abs(sm[0].Acc-0.15) > 1e-12 {
		t.Fatalf("smoothed acc %v", sm[0].Acc)
	}
	// cumulative fields come from the window end
	if sm[0].UpBytes != 100 {
		t.Fatalf("smoothed bytes %v", sm[0].UpBytes)
	}
	if len(r.Smooth(1)) != len(r.Points) {
		t.Fatal("Smooth(1) should be identity-length")
	}
}

func TestSmoothPreservesMean(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := &Run{}
		sum := 0.0
		for i, v := range raw {
			a := float64(v) / 255
			sum += a
			r.Add(Point{Round: i, Acc: a})
		}
		w := int(wRaw%5) + 1
		sm := r.Smooth(w)
		smSum := 0.0
		for i, p := range sm {
			lo := i * w
			hi := lo + w
			if hi > len(raw) {
				hi = len(raw)
			}
			smSum += p.Acc * float64(hi-lo)
		}
		return math.Abs(smSum-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVariance(t *testing.T) {
	if Variance(nil) != 0 {
		t.Fatal("empty variance")
	}
	if v := Variance([]float64{2, 2, 2}); v != 0 {
		t.Fatalf("constant variance %v", v)
	}
	if v := Variance([]float64{1, 3}); v != 1 {
		t.Fatalf("variance of {1,3} = %v, want 1", v)
	}
}

func TestFormatBytes(t *testing.T) {
	if got := FormatBytes(1675820000); got != "1675.82 MB" {
		t.Fatalf("FormatBytes: %q", got)
	}
}
