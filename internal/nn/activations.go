package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	out, dx *tensor.Mat
	mask    []bool
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// ParamShapes implements Layer.
func (l *ReLU) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (l *ReLU) Bind(w, g []float64) { checkBind(l, w, g) }

// Init implements Layer.
func (l *ReLU) Init(*rng.RNG) {}

// OutDim implements Layer.
func (l *ReLU) OutDim(in int) int { return in }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	n := len(x.Data)
	if l.out == nil || len(l.out.Data) != n {
		l.out = tensor.NewMat(x.R, x.C)
		l.mask = make([]bool, n)
	}
	l.out.R, l.out.C = x.R, x.C
	for i, v := range x.Data {
		if v > 0 {
			l.out.Data[i] = v
			l.mask[i] = true
		} else {
			l.out.Data[i] = 0
			l.mask[i] = false
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *ReLU) Backward(dout *tensor.Mat) *tensor.Mat {
	if l.dx == nil || len(l.dx.Data) != len(dout.Data) {
		l.dx = tensor.NewMat(dout.R, dout.C)
	}
	l.dx.R, l.dx.C = dout.R, dout.C
	for i, v := range dout.Data {
		if l.mask[i] {
			l.dx.Data[i] = v
		} else {
			l.dx.Data[i] = 0
		}
	}
	return l.dx
}

// Tanh applies tanh element-wise.
type Tanh struct {
	out, dx *tensor.Mat
}

// NewTanh constructs a Tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// ParamShapes implements Layer.
func (l *Tanh) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (l *Tanh) Bind(w, g []float64) { checkBind(l, w, g) }

// Init implements Layer.
func (l *Tanh) Init(*rng.RNG) {}

// OutDim implements Layer.
func (l *Tanh) OutDim(in int) int { return in }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if l.out == nil || len(l.out.Data) != len(x.Data) {
		l.out = tensor.NewMat(x.R, x.C)
	}
	l.out.R, l.out.C = x.R, x.C
	for i, v := range x.Data {
		l.out.Data[i] = math.Tanh(v)
	}
	return l.out
}

// Backward implements Layer.
func (l *Tanh) Backward(dout *tensor.Mat) *tensor.Mat {
	if l.dx == nil || len(l.dx.Data) != len(dout.Data) {
		l.dx = tensor.NewMat(dout.R, dout.C)
	}
	l.dx.R, l.dx.C = dout.R, dout.C
	for i, v := range dout.Data {
		y := l.out.Data[i]
		l.dx.Data[i] = v * (1 - y*y)
	}
	return l.dx
}

// Dropout randomly zeroes activations during training with probability Rate
// and rescales survivors by 1/(1-Rate) (inverted dropout), matching the
// dropout used inside the paper's Reddit LSTM model.
type Dropout struct {
	Rate float64

	r       *rng.RNG
	out, dx *tensor.Mat
	mask    []float64
}

// NewDropout constructs a Dropout layer; rate must be in [0, 1).
func NewDropout(rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: Dropout rate must be in [0,1)")
	}
	return &Dropout{Rate: rate}
}

// ParamShapes implements Layer.
func (l *Dropout) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (l *Dropout) Bind(w, g []float64) { checkBind(l, w, g) }

// Init implements Layer; it seeds the layer's private mask stream.
func (l *Dropout) Init(r *rng.RNG) { l.r = r.Split() }

// OutDim implements Layer.
func (l *Dropout) OutDim(in int) int { return in }

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if !train || l.Rate == 0 {
		return x
	}
	n := len(x.Data)
	if l.out == nil || len(l.out.Data) != n {
		l.out = tensor.NewMat(x.R, x.C)
		l.mask = make([]float64, n)
	}
	l.out.R, l.out.C = x.R, x.C
	keep := 1 - l.Rate
	inv := 1 / keep
	for i, v := range x.Data {
		if l.r.Float64() < keep {
			l.mask[i] = inv
			l.out.Data[i] = v * inv
		} else {
			l.mask[i] = 0
			l.out.Data[i] = 0
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *Dropout) Backward(dout *tensor.Mat) *tensor.Mat {
	if l.mask == nil { // eval-mode forward: identity
		return dout
	}
	if l.dx == nil || len(l.dx.Data) != len(dout.Data) {
		l.dx = tensor.NewMat(dout.R, dout.C)
	}
	l.dx.R, l.dx.C = dout.R, dout.C
	for i, v := range dout.Data {
		l.dx.Data[i] = v * l.mask[i]
	}
	return l.dx
}
