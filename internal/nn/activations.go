package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	out, dx *tensor.Mat
	// mask holds all-ones where the forward input was positive and zero
	// elsewhere, so both passes gate values with a single AND instead of a
	// data-dependent branch (activation signs are effectively random, so
	// the branch mispredicts half the time). ANDing bits is bit-exact:
	// kept values pass through untouched and masked ones become +0 — the
	// same literal 0 the branchy form stored.
	mask []uint64
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// ParamShapes implements Layer.
func (l *ReLU) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (l *ReLU) Bind(w, g []float64) { checkBind(l, w, g) }

// Init implements Layer.
func (l *ReLU) Init(*rng.RNG) {}

// OutDim implements Layer.
func (l *ReLU) OutDim(in int) int { return in }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	n := len(x.Data)
	l.out = tensor.EnsureMat(l.out, x.R, x.C)
	if cap(l.mask) >= n {
		l.mask = l.mask[:n]
	} else {
		l.mask = make([]uint64, n)
	}
	mask := l.mask
	out := l.out.Data[:n]
	for i, v := range x.Data {
		m := uint64(0)
		if v > 0 {
			m = ^uint64(0)
		}
		mask[i] = m
		out[i] = math.Float64frombits(math.Float64bits(v) & m)
	}
	return l.out
}

// Backward implements Layer.
func (l *ReLU) Backward(dout *tensor.Mat) *tensor.Mat {
	l.dx = tensor.EnsureMat(l.dx, dout.R, dout.C)
	mask := l.mask[:len(dout.Data)]
	dx := l.dx.Data[:len(dout.Data)]
	for i, v := range dout.Data {
		dx[i] = math.Float64frombits(math.Float64bits(v) & mask[i])
	}
	return l.dx
}

// Tanh applies tanh element-wise.
type Tanh struct {
	out, dx *tensor.Mat
}

// NewTanh constructs a Tanh activation.
func NewTanh() *Tanh { return &Tanh{} }

// ParamShapes implements Layer.
func (l *Tanh) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (l *Tanh) Bind(w, g []float64) { checkBind(l, w, g) }

// Init implements Layer.
func (l *Tanh) Init(*rng.RNG) {}

// OutDim implements Layer.
func (l *Tanh) OutDim(in int) int { return in }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	l.out = tensor.EnsureMat(l.out, x.R, x.C)
	for i, v := range x.Data {
		l.out.Data[i] = math.Tanh(v)
	}
	return l.out
}

// Backward implements Layer.
func (l *Tanh) Backward(dout *tensor.Mat) *tensor.Mat {
	l.dx = tensor.EnsureMat(l.dx, dout.R, dout.C)
	for i, v := range dout.Data {
		y := l.out.Data[i]
		l.dx.Data[i] = v * (1 - y*y)
	}
	return l.dx
}

// Dropout randomly zeroes activations during training with probability Rate
// and rescales survivors by 1/(1-Rate) (inverted dropout), matching the
// dropout used inside the paper's Reddit LSTM model.
type Dropout struct {
	Rate float64

	r       *rng.RNG
	out, dx *tensor.Mat
	mask    []float64
}

// NewDropout constructs a Dropout layer; rate must be in [0, 1).
func NewDropout(rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: Dropout rate must be in [0,1)")
	}
	return &Dropout{Rate: rate}
}

// ParamShapes implements Layer.
func (l *Dropout) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (l *Dropout) Bind(w, g []float64) { checkBind(l, w, g) }

// Init implements Layer; it seeds the layer's private mask stream.
func (l *Dropout) Init(r *rng.RNG) { l.r = r.Split() }

// OutDim implements Layer.
func (l *Dropout) OutDim(in int) int { return in }

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if !train || l.Rate == 0 {
		return x
	}
	n := len(x.Data)
	l.out = tensor.EnsureMat(l.out, x.R, x.C)
	if cap(l.mask) >= n {
		l.mask = l.mask[:n]
	} else {
		l.mask = make([]float64, n)
	}
	keep := 1 - l.Rate
	inv := 1 / keep
	for i, v := range x.Data {
		if l.r.Float64() < keep {
			l.mask[i] = inv
			l.out.Data[i] = v * inv
		} else {
			l.mask[i] = 0
			l.out.Data[i] = 0
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *Dropout) Backward(dout *tensor.Mat) *tensor.Mat {
	if l.mask == nil { // eval-mode forward: identity
		return dout
	}
	l.dx = tensor.EnsureMat(l.dx, dout.R, dout.C)
	for i, v := range dout.Data {
		l.dx.Data[i] = v * l.mask[i]
	}
	return l.dx
}
