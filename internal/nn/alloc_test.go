package nn

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// The steady-state allocation ceilings for the training hot path. The
// forward and backward passes reuse every activation, gradient and im2col
// buffer once shapes have stabilized, so after one warm-up step the ceiling
// is zero — any alloc that creeps back into the inner loop fails here
// before it can show up as a benchmark regression.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("-race instruments allocations; AllocsPerRun counts are meaningless")
	}
}

func randBatch(seed uint64, n, dim, classes int) (*tensor.Mat, []int) {
	r := rng.New(seed)
	x := tensor.NewMat(n, dim)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	return x, labels
}

func assertAllocFree(t *testing.T, what string, ceiling float64, f func()) {
	t.Helper()
	f() // warm up: first call grows activation/scratch buffers to shape
	f()
	if got := testing.AllocsPerRun(20, f); got > ceiling {
		t.Errorf("%s allocates %.1f times per run in steady state, ceiling %.0f", what, got, ceiling)
	}
}

// TestDenseHotPathAllocFree pins forward and forward+backward of the MLP
// (Dense + ReLU + softmax-CE) at zero steady-state allocations.
func TestDenseHotPathAllocFree(t *testing.T) {
	skipUnderRace(t)
	net := NewMLP(rng.New(7), 20, 16, 5)
	x, labels := randBatch(1, 8, 20, 5)
	assertAllocFree(t, "Dense forward", 0, func() { net.Forward(x, true) })
	assertAllocFree(t, "Dense forward+backward", 0, func() {
		net.ZeroGrad()
		net.Backprop(x, labels)
	})
}

// TestConvHotPathAllocFree pins the convolutional stack (Conv2D + pool +
// Dense head), including the per-sample im2col scratch, at zero
// steady-state allocations.
func TestConvHotPathAllocFree(t *testing.T) {
	skipUnderRace(t)
	net := NewCNN(rng.New(7), SmallCNN(1, 12, 12, 4))
	x, labels := randBatch(2, 4, 12*12, 4)
	assertAllocFree(t, "Conv forward", 0, func() { net.Forward(x, true) })
	assertAllocFree(t, "Conv forward+backward", 0, func() {
		net.ZeroGrad()
		net.Backprop(x, labels)
	})
}
