package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// BatchNorm normalizes each feature over the batch dimension with learned
// scale and shift, keeping running statistics for evaluation mode. The
// paper's Reddit model places one after the LSTM layer.
type BatchNorm struct {
	Dim      int
	Eps      float64
	Momentum float64 // running-stat update rate

	w, g []float64 // gamma (Dim), beta (Dim), runMean (Dim), runVar (Dim)

	// caches
	xhat, dx  *tensor.Mat
	mean, inv []float64
	usedBatch bool // whether the last forward normalized with batch stats
}

// NewBatchNorm constructs a batch-norm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	if dim <= 0 {
		panic("nn: BatchNorm dim must be positive")
	}
	return &BatchNorm{Dim: dim, Eps: 1e-5, Momentum: 0.1}
}

// ParamShapes implements Layer. The running statistics ride along in the
// parameter vector so that federated aggregation averages them the same way
// TensorFlow's FL setups transmit BN statistics with the weights.
func (b *BatchNorm) ParamShapes() []Shape {
	return []Shape{
		{Name: "gamma", Dims: []int{b.Dim}},
		{Name: "beta", Dims: []int{b.Dim}},
		{Name: "runMean", Dims: []int{b.Dim}},
		{Name: "runVar", Dims: []int{b.Dim}},
	}
}

// Bind implements Layer.
func (b *BatchNorm) Bind(w, g []float64) {
	checkBind(b, w, g)
	b.w, b.g = w, g
}

// Init implements Layer.
func (b *BatchNorm) Init(*rng.RNG) {
	d := b.Dim
	tensor.Fill(b.w[:d], 1)      // gamma
	tensor.Zero(b.w[d : 2*d])    // beta
	tensor.Zero(b.w[2*d : 3*d])  // running mean
	tensor.Fill(b.w[3*d:4*d], 1) // running var
	tensor.Zero(b.g[2*d : 4*d])  // stats carry no gradient
}

// OutDim implements Layer.
func (b *BatchNorm) OutDim(in int) int { return in }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != b.Dim {
		panic("nn: BatchNorm input width mismatch")
	}
	d := b.Dim
	n := x.R
	gamma, beta := b.w[:d], b.w[d:2*d]
	runMean, runVar := b.w[2*d:3*d], b.w[3*d:4*d]
	if b.xhat == nil || b.xhat.R != n {
		b.xhat = tensor.NewMat(n, d)
		b.dx = tensor.NewMat(n, d)
		b.mean = make([]float64, d)
		b.inv = make([]float64, d)
	}
	b.usedBatch = train && n > 1
	if b.usedBatch {
		x.ColSumsInto(b.mean)
		tensor.Scale(1/float64(n), b.mean)
		for j := 0; j < d; j++ {
			v := 0.0
			for i := 0; i < n; i++ {
				diff := x.At(i, j) - b.mean[j]
				v += diff * diff
			}
			v /= float64(n)
			b.inv[j] = 1 / math.Sqrt(v+b.Eps)
			runMean[j] = (1-b.Momentum)*runMean[j] + b.Momentum*b.mean[j]
			runVar[j] = (1-b.Momentum)*runVar[j] + b.Momentum*v
		}
	} else {
		copy(b.mean, runMean)
		for j := 0; j < d; j++ {
			b.inv[j] = 1 / math.Sqrt(runVar[j]+b.Eps)
		}
	}
	for i := 0; i < n; i++ {
		xr := x.Row(i)
		xh := b.xhat.Row(i)
		for j := 0; j < d; j++ {
			xh[j] = (xr[j] - b.mean[j]) * b.inv[j]
		}
	}
	out := b.dx // reuse buffer shape; write normalized*gamma+beta into fresh view
	for i := 0; i < n; i++ {
		xh := b.xhat.Row(i)
		or := out.Row(i)
		for j := 0; j < d; j++ {
			or[j] = gamma[j]*xh[j] + beta[j]
		}
	}
	// out currently aliases b.dx; swap so Backward can use dx freely.
	res := tensor.NewMat(n, d)
	copy(res.Data, out.Data)
	return res
}

// Backward implements Layer (batch-statistics gradient).
func (b *BatchNorm) Backward(dout *tensor.Mat) *tensor.Mat {
	d := b.Dim
	n := dout.R
	gamma := b.w[:d]
	gGamma, gBeta := b.g[:d], b.g[d:2*d]
	if !b.usedBatch {
		// Running statistics were constants in the forward pass, so the
		// input gradient is a plain per-feature scaling.
		for j := 0; j < d; j++ {
			for i := 0; i < n; i++ {
				dy := dout.At(i, j)
				gGamma[j] += dy * b.xhat.At(i, j)
				gBeta[j] += dy
				b.dx.Set(i, j, dy*gamma[j]*b.inv[j])
			}
		}
		return b.dx
	}
	for j := 0; j < d; j++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for i := 0; i < n; i++ {
			dy := dout.At(i, j)
			sumDy += dy
			sumDyXhat += dy * b.xhat.At(i, j)
		}
		gGamma[j] += sumDyXhat
		gBeta[j] += sumDy
		scale := gamma[j] * b.inv[j] / float64(n)
		for i := 0; i < n; i++ {
			dy := dout.At(i, j)
			b.dx.Set(i, j, scale*(float64(n)*dy-sumDy-b.xhat.At(i, j)*sumDyXhat))
		}
	}
	return b.dx
}
