package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over channel-major (CHW) images flattened one
// per batch row. The convolution is computed per sample via im2col followed
// by a single matrix multiply, the standard lowering.
type Conv2D struct {
	InC, H, W        int // input geometry
	OutC, K          int // filters and (square) kernel size
	Stride, Pad      int
	outH, outW, cols int

	w, g []float64 // W (OutC × InC*K*K) then b (OutC)

	// wMat/gwMat are view headers onto w/g, set once in Bind; outView and
	// doutView are retargeted per sample with Mat.View, so neither forward
	// nor backward wraps a new header per sample per step.
	wMat, gwMat       tensor.Mat
	outView, doutView tensor.Mat

	// caches (owned by a single goroutine)
	colCache []*tensor.Mat // im2col output per sample
	x        *tensor.Mat
	out, dx  *tensor.Mat
	scratchW *tensor.Mat
	scratchC *tensor.Mat

	skipInputGrad bool // set when this is a network's first layer
}

// SkipInputGrad implements inputGradSkipper: when this layer heads a
// network, its dx (the gradient w.r.t. the data batch) is never consumed,
// so Backward skips the Wᵀ·dout matmul and col2im scatter and returns nil.
func (c *Conv2D) SkipInputGrad() { c.skipInputGrad = true }

// NewConv2D constructs a convolution layer for inC×h×w inputs with outC
// k×k filters.
func NewConv2D(inC, h, w, outC, k, stride, pad int) *Conv2D {
	if inC <= 0 || h <= 0 || w <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic("nn: Conv2D invalid geometry")
	}
	c := &Conv2D{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad}
	c.outH = tensor.ConvOutSize(h, k, stride, pad)
	c.outW = tensor.ConvOutSize(w, k, stride, pad)
	if c.outH <= 0 || c.outW <= 0 {
		panic("nn: Conv2D output collapses to zero size")
	}
	c.cols = inC * k * k
	return c
}

// OutShape returns the output geometry (channels, height, width).
func (c *Conv2D) OutShape() (int, int, int) { return c.OutC, c.outH, c.outW }

// ParamShapes implements Layer.
func (c *Conv2D) ParamShapes() []Shape {
	return []Shape{
		{Name: "W", Dims: []int{c.OutC, c.InC, c.K, c.K}},
		{Name: "b", Dims: []int{c.OutC}},
	}
}

// Bind implements Layer.
func (c *Conv2D) Bind(w, g []float64) {
	checkBind(c, w, g)
	c.w, c.g = w, g
	c.wMat.View(c.OutC, c.cols, w[:c.OutC*c.cols])
	c.gwMat.View(c.OutC, c.cols, g[:c.OutC*c.cols])
}

// Init implements Layer.
func (c *Conv2D) Init(r *rng.RNG) {
	fanIn := c.cols
	fanOut := c.OutC * c.K * c.K
	initUniform(r, c.w[:c.OutC*c.cols], glorot(fanIn, fanOut))
	tensor.Zero(c.w[c.OutC*c.cols:])
}

// OutDim implements Layer.
func (c *Conv2D) OutDim(int) int { return c.OutC * c.outH * c.outW }

func (c *Conv2D) weight() *tensor.Mat { return &c.wMat }
func (c *Conv2D) bias() []float64     { return c.w[c.OutC*c.cols:] }
func (c *Conv2D) gradW() *tensor.Mat  { return &c.gwMat }
func (c *Conv2D) gradB() []float64    { return c.g[c.OutC*c.cols:] }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != c.InC*c.H*c.W {
		panic("nn: Conv2D input width mismatch")
	}
	b := x.R
	p := c.outH * c.outW
	c.out = tensor.EnsureMat(c.out, b, c.OutC*p)
	if len(c.colCache) < b {
		c.colCache = make([]*tensor.Mat, b)
	}
	w := c.weight()
	bias := c.bias()
	for s := 0; s < b; s++ {
		if c.colCache[s] == nil {
			c.colCache[s] = tensor.NewMat(c.cols, p)
		}
		cols := c.colCache[s]
		tensor.Im2Col(x.Row(s), c.InC, c.H, c.W, c.K, c.K, c.Stride, c.Pad, cols)
		outView := c.outView.View(c.OutC, p, c.out.Row(s))
		tensor.MulInto(outView, w, cols)
		for oc := 0; oc < c.OutC; oc++ {
			row := outView.Row(oc)
			bv := bias[oc]
			for i := range row {
				row[i] += bv
			}
		}
	}
	if train {
		c.x = x
	}
	return c.out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Mat) *tensor.Mat {
	if c.x == nil {
		panic("nn: Conv2D Backward before training Forward")
	}
	b := dout.R
	p := c.outH * c.outW
	if !c.skipInputGrad {
		c.dx = tensor.EnsureMat(c.dx, b, c.InC*c.H*c.W)
	}
	if c.scratchW == nil {
		c.scratchW = tensor.NewMat(c.OutC, c.cols)
		c.scratchC = tensor.NewMat(c.cols, p)
	}
	gw := c.gradW()
	gb := c.gradB()
	w := c.weight()
	for s := 0; s < b; s++ {
		doutView := c.doutView.View(c.OutC, p, dout.Row(s))
		// dW += dout·colsᵀ
		tensor.MulTransBInto(c.scratchW, doutView, c.colCache[s])
		tensor.AddTo(gw.Data, c.scratchW.Data)
		// db += row sums of dout
		for oc := 0; oc < c.OutC; oc++ {
			gb[oc] += tensor.Sum(doutView.Row(oc))
		}
		if c.skipInputGrad {
			continue
		}
		// dcols = Wᵀ·dout, then scatter back to image space
		tensor.MulTransAInto(c.scratchC, w, doutView)
		dst := c.dx.Row(s)
		tensor.Zero(dst)
		tensor.Col2Im(c.scratchC, c.InC, c.H, c.W, c.K, c.K, c.Stride, c.Pad, dst)
	}
	if c.skipInputGrad {
		return nil
	}
	return c.dx
}

// MaxPool2D is a non-overlapping (or strided) max pooling layer over CHW
// images flattened one per batch row.
type MaxPool2D struct {
	InC, H, W  int
	K, Stride  int
	outH, outW int

	out, dx *tensor.Mat
	argmax  []int32 // flat index into the input row for each output element
}

// NewMaxPool2D constructs a max-pool layer with k×k windows.
func NewMaxPool2D(inC, h, w, k, stride int) *MaxPool2D {
	if inC <= 0 || h <= 0 || w <= 0 || k <= 0 || stride <= 0 {
		panic("nn: MaxPool2D invalid geometry")
	}
	m := &MaxPool2D{InC: inC, H: h, W: w, K: k, Stride: stride}
	m.outH = tensor.ConvOutSize(h, k, stride, 0)
	m.outW = tensor.ConvOutSize(w, k, stride, 0)
	if m.outH <= 0 || m.outW <= 0 {
		panic("nn: MaxPool2D output collapses to zero size")
	}
	return m
}

// OutShape returns the output geometry (channels, height, width).
func (m *MaxPool2D) OutShape() (int, int, int) { return m.InC, m.outH, m.outW }

// ParamShapes implements Layer.
func (m *MaxPool2D) ParamShapes() []Shape { return nil }

// Bind implements Layer.
func (m *MaxPool2D) Bind(w, g []float64) { checkBind(m, w, g) }

// Init implements Layer.
func (m *MaxPool2D) Init(*rng.RNG) {}

// OutDim implements Layer.
func (m *MaxPool2D) OutDim(int) int { return m.InC * m.outH * m.outW }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != m.InC*m.H*m.W {
		panic("nn: MaxPool2D input width mismatch")
	}
	b := x.R
	p := m.outH * m.outW
	// Both out and argmax are fully overwritten below, so capacity reuse is
	// safe across batch-shape changes.
	m.out = tensor.EnsureMat(m.out, b, m.InC*p)
	if cap(m.argmax) >= b*m.InC*p {
		m.argmax = m.argmax[:b*m.InC*p]
	} else {
		m.argmax = make([]int32, b*m.InC*p)
	}
	for s := 0; s < b; s++ {
		in := x.Row(s)
		out := m.out.Row(s)
		amBase := s * m.InC * p
		for c := 0; c < m.InC; c++ {
			chn := in[c*m.H*m.W:]
			o := c * p
			for oy := 0; oy < m.outH; oy++ {
				for ox := 0; ox < m.outW; ox++ {
					best := -1
					bestV := 0.0
					for ky := 0; ky < m.K; ky++ {
						iy := oy*m.Stride + ky
						if iy >= m.H {
							break
						}
						for kx := 0; kx < m.K; kx++ {
							ix := ox*m.Stride + kx
							if ix >= m.W {
								break
							}
							idx := iy*m.W + ix
							if best == -1 || chn[idx] > bestV {
								best = idx
								bestV = chn[idx]
							}
						}
					}
					out[o] = bestV
					m.argmax[amBase+o] = int32(c*m.H*m.W + best)
					o++
				}
			}
		}
	}
	return m.out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Mat) *tensor.Mat {
	b := dout.R
	m.dx = tensor.EnsureMat(m.dx, b, m.InC*m.H*m.W)
	tensor.Zero(m.dx.Data)
	p := m.InC * m.outH * m.outW
	for s := 0; s < b; s++ {
		dst := m.dx.Row(s)
		src := dout.Row(s)
		amBase := s * p
		for i, v := range src {
			dst[m.argmax[amBase+i]] += v
		}
	}
	return m.dx
}
