package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b with W stored Out×In.
type Dense struct {
	In, Out int

	w, g []float64 // bound storage: W (Out*In) then b (Out)

	// wMat/gwMat are view headers onto w/g, set once in Bind so the hot
	// loops never re-wrap the slices (MatFrom per batch step was the single
	// largest allocation-count source in the training profile).
	wMat, gwMat tensor.Mat

	// caches
	x       *tensor.Mat // input of last training forward
	out     *tensor.Mat
	dx      *tensor.Mat
	scratch *tensor.Mat // Out×In gradient scratch for accumulation

	skipInputGrad bool // set when this is a network's first layer
}

// SkipInputGrad implements inputGradSkipper: when this layer heads a
// network, its dx (the gradient w.r.t. the data batch) is never consumed,
// so Backward skips the dout·W matmul and returns nil.
func (d *Dense) SkipInputGrad() { d.skipInputGrad = true }

// NewDense constructs a Dense layer with the given fan-in and fan-out.
func NewDense(in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic("nn: Dense dimensions must be positive")
	}
	return &Dense{In: in, Out: out}
}

// ParamShapes implements Layer.
func (d *Dense) ParamShapes() []Shape {
	return []Shape{{Name: "W", Dims: []int{d.Out, d.In}}, {Name: "b", Dims: []int{d.Out}}}
}

// Bind implements Layer.
func (d *Dense) Bind(w, g []float64) {
	checkBind(d, w, g)
	d.w, d.g = w, g
	d.wMat.View(d.Out, d.In, w[:d.Out*d.In])
	d.gwMat.View(d.Out, d.In, g[:d.Out*d.In])
}

// Init implements Layer (Glorot uniform weights, zero bias).
func (d *Dense) Init(r *rng.RNG) {
	initUniform(r, d.w[:d.Out*d.In], glorot(d.In, d.Out))
	tensor.Zero(d.w[d.Out*d.In:])
}

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.Out }

func (d *Dense) weight() *tensor.Mat { return &d.wMat }
func (d *Dense) bias() []float64     { return d.w[d.Out*d.In:] }
func (d *Dense) gradW() *tensor.Mat  { return &d.gwMat }
func (d *Dense) gradB() []float64    { return d.g[d.Out*d.In:] }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != d.In {
		panic("nn: Dense input width mismatch")
	}
	// Capacity-based reuse: MulTransBInto writes every element, so dirty
	// storage from a differently-shaped batch is fine.
	d.out = tensor.EnsureMat(d.out, x.R, d.Out)
	tensor.MulTransBInto(d.out, x, d.weight())
	d.out.AddRowVec(d.bias())
	if train {
		d.x = x
	}
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Mat) *tensor.Mat {
	if d.x == nil {
		panic("nn: Dense Backward before training Forward")
	}
	// dW += doutᵀ·x
	d.scratch = tensor.EnsureMat(d.scratch, d.Out, d.In)
	tensor.MulTransAInto(d.scratch, dout, d.x)
	tensor.AddTo(d.gradW().Data, d.scratch.Data)
	// db += column sums of dout
	gb := d.gradB()
	for i := 0; i < dout.R; i++ {
		tensor.AddTo(gb, dout.Row(i))
	}
	if d.skipInputGrad {
		return nil
	}
	// dx = dout·W
	d.dx = tensor.EnsureMat(d.dx, dout.R, d.In)
	tensor.MulInto(d.dx, dout, d.weight())
	return d.dx
}
