package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b with W stored Out×In.
type Dense struct {
	In, Out int

	w, g []float64 // bound storage: W (Out*In) then b (Out)

	// caches
	x       *tensor.Mat // input of last training forward
	out     *tensor.Mat
	dx      *tensor.Mat
	scratch *tensor.Mat // Out×In gradient scratch for accumulation
}

// NewDense constructs a Dense layer with the given fan-in and fan-out.
func NewDense(in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic("nn: Dense dimensions must be positive")
	}
	return &Dense{In: in, Out: out}
}

// ParamShapes implements Layer.
func (d *Dense) ParamShapes() []Shape {
	return []Shape{{Name: "W", Dims: []int{d.Out, d.In}}, {Name: "b", Dims: []int{d.Out}}}
}

// Bind implements Layer.
func (d *Dense) Bind(w, g []float64) {
	checkBind(d, w, g)
	d.w, d.g = w, g
}

// Init implements Layer (Glorot uniform weights, zero bias).
func (d *Dense) Init(r *rng.RNG) {
	initUniform(r, d.w[:d.Out*d.In], glorot(d.In, d.Out))
	tensor.Zero(d.w[d.Out*d.In:])
}

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.Out }

func (d *Dense) weight() *tensor.Mat { return tensor.MatFrom(d.Out, d.In, d.w[:d.Out*d.In]) }
func (d *Dense) bias() []float64     { return d.w[d.Out*d.In:] }
func (d *Dense) gradW() *tensor.Mat  { return tensor.MatFrom(d.Out, d.In, d.g[:d.Out*d.In]) }
func (d *Dense) gradB() []float64    { return d.g[d.Out*d.In:] }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != d.In {
		panic("nn: Dense input width mismatch")
	}
	if d.out == nil || d.out.R != x.R {
		d.out = tensor.NewMat(x.R, d.Out)
	}
	tensor.MulTransBInto(d.out, x, d.weight())
	d.out.AddRowVec(d.bias())
	if train {
		d.x = x
	}
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Mat) *tensor.Mat {
	if d.x == nil {
		panic("nn: Dense Backward before training Forward")
	}
	// dW += doutᵀ·x
	if d.scratch == nil {
		d.scratch = tensor.NewMat(d.Out, d.In)
	}
	tensor.MulTransAInto(d.scratch, dout, d.x)
	tensor.AddTo(d.gradW().Data, d.scratch.Data)
	// db += column sums of dout
	gb := d.gradB()
	for i := 0; i < dout.R; i++ {
		tensor.AddTo(gb, dout.Row(i))
	}
	// dx = dout·W
	if d.dx == nil || d.dx.R != dout.R {
		d.dx = tensor.NewMat(dout.R, d.In)
	}
	tensor.MulInto(d.dx, dout, d.weight())
	return d.dx
}
