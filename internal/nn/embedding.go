package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Embedding maps integer token ids (carried as float64s for interface
// uniformity) to dense vectors. Input rows are sequences of SeqLen ids;
// output rows are the SeqLen embedding vectors concatenated.
type Embedding struct {
	Vocab, Dim, SeqLen int

	w, g []float64 // Vocab×Dim table

	ids     []int32 // cached token ids of last training forward
	out, dx *tensor.Mat
}

// NewEmbedding constructs an embedding table for sequences of seqLen tokens
// drawn from a vocab of the given size.
func NewEmbedding(vocab, dim, seqLen int) *Embedding {
	if vocab <= 0 || dim <= 0 || seqLen <= 0 {
		panic("nn: Embedding invalid dimensions")
	}
	return &Embedding{Vocab: vocab, Dim: dim, SeqLen: seqLen}
}

// ParamShapes implements Layer.
func (e *Embedding) ParamShapes() []Shape {
	return []Shape{{Name: "E", Dims: []int{e.Vocab, e.Dim}}}
}

// Bind implements Layer.
func (e *Embedding) Bind(w, g []float64) {
	checkBind(e, w, g)
	e.w, e.g = w, g
}

// Init implements Layer.
func (e *Embedding) Init(r *rng.RNG) {
	initUniform(r, e.w, 0.05)
}

// OutDim implements Layer.
func (e *Embedding) OutDim(int) int { return e.SeqLen * e.Dim }

// Forward implements Layer. Out-of-range ids are clamped into the vocab so a
// corrupted sample cannot crash a training run.
func (e *Embedding) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != e.SeqLen {
		panic("nn: Embedding input width mismatch")
	}
	b := x.R
	if e.out == nil || e.out.R != b {
		e.out = tensor.NewMat(b, e.SeqLen*e.Dim)
		e.ids = make([]int32, b*e.SeqLen)
	}
	for s := 0; s < b; s++ {
		in := x.Row(s)
		out := e.out.Row(s)
		for t := 0; t < e.SeqLen; t++ {
			id := int(in[t])
			if id < 0 {
				id = 0
			}
			if id >= e.Vocab {
				id = e.Vocab - 1
			}
			e.ids[s*e.SeqLen+t] = int32(id)
			copy(out[t*e.Dim:(t+1)*e.Dim], e.w[id*e.Dim:(id+1)*e.Dim])
		}
	}
	return e.out
}

// Backward implements Layer. The returned input gradient is zero (token ids
// are not differentiable); the embedding table gradient is scattered.
func (e *Embedding) Backward(dout *tensor.Mat) *tensor.Mat {
	b := dout.R
	for s := 0; s < b; s++ {
		src := dout.Row(s)
		for t := 0; t < e.SeqLen; t++ {
			id := int(e.ids[s*e.SeqLen+t])
			tensor.AddTo(e.g[id*e.Dim:(id+1)*e.Dim], src[t*e.Dim:(t+1)*e.Dim])
		}
	}
	if e.dx == nil || e.dx.R != b {
		e.dx = tensor.NewMat(b, e.SeqLen)
	}
	tensor.Zero(e.dx.Data)
	return e.dx
}
