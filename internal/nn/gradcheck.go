package nn

import (
	"math"

	"repro/internal/tensor"
)

// GradCheck verifies a network's analytic gradients against central finite
// differences on the given batch. It returns the worst relative error over
// all parameters. Networks with stochastic layers (Dropout) or
// batch-statistic updates (BatchNorm running stats) must be checked with
// those effects held fixed; see CheckableForward in the tests.
//
// The relative error uses the standard symmetric normalization
// |a−n| / max(1e-8, |a|+|n|).
func GradCheck(n *Network, x *tensor.Mat, labels []int, eps float64) float64 {
	n.ZeroGrad()
	n.Backprop(x, labels)
	analytic := tensor.Copy(n.Grads())

	w := n.Weights()
	worst := 0.0
	for i := range w {
		orig := w[i]
		w[i] = orig + eps
		lp := n.lossOnly(x, labels)
		w[i] = orig - eps
		lm := n.lossOnly(x, labels)
		w[i] = orig
		numeric := (lp - lm) / (2 * eps)
		den := math.Abs(analytic[i]) + math.Abs(numeric)
		if den < 1e-8 {
			den = 1e-8
		}
		rel := math.Abs(analytic[i]-numeric) / den
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// lossOnly evaluates the training-mode loss without touching gradients.
func (n *Network) lossOnly(x *tensor.Mat, labels []int) float64 {
	logits := n.Forward(x, true)
	d := tensor.NewMat(logits.R, logits.C)
	return n.loss.Compute(logits, labels, d)
}
