package nn

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// gradCheckNet verifies the full analytic backward pass of a network
// against central differences. tol is loose-ish because float64 central
// differences on deep nets accumulate roundoff.
func gradCheckNet(t *testing.T, n *Network, in, batch, classes int, tol float64) {
	t.Helper()
	r := rng.New(99)
	x := tensor.NewMat(batch, in)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	if worst := GradCheck(n, x, labels, 1e-5); worst > tol {
		t.Fatalf("gradient check failed: worst relative error %.3e > %.1e", worst, tol)
	}
}

func TestGradCheckDense(t *testing.T) {
	n := NewNetwork(rng.New(1), NewSoftmaxCE(), NewDense(5, 4))
	gradCheckNet(t, n, 5, 3, 4, 1e-5)
}

func TestGradCheckMLP(t *testing.T) {
	n := NewMLP(rng.New(2), 6, 8, 4)
	gradCheckNet(t, n, 6, 4, 4, 1e-5)
}

func TestGradCheckTanh(t *testing.T) {
	n := NewNetwork(rng.New(3), NewSoftmaxCE(), NewDense(4, 5), NewTanh(), NewDense(5, 3))
	gradCheckNet(t, n, 4, 3, 3, 1e-5)
}

func TestGradCheckMSE(t *testing.T) {
	n := NewNetwork(rng.New(4), NewMSE(), NewDense(4, 3))
	gradCheckNet(t, n, 4, 3, 3, 1e-5)
}

func TestGradCheckConv(t *testing.T) {
	conv := NewConv2D(2, 5, 5, 3, 3, 1, 1)
	c, h, w := conv.OutShape()
	n := NewNetwork(rng.New(5), NewSoftmaxCE(), conv, NewReLU(), NewDense(c*h*w, 3))
	gradCheckNet(t, n, 2*5*5, 2, 3, 1e-4)
}

func TestGradCheckConvStride2NoPad(t *testing.T) {
	conv := NewConv2D(1, 6, 6, 2, 2, 2, 0)
	c, h, w := conv.OutShape()
	n := NewNetwork(rng.New(6), NewSoftmaxCE(), conv, NewDense(c*h*w, 2))
	gradCheckNet(t, n, 36, 2, 2, 1e-4)
}

func TestGradCheckMaxPool(t *testing.T) {
	pool := NewMaxPool2D(2, 4, 4, 2, 2)
	c, h, w := pool.OutShape()
	n := NewNetwork(rng.New(7), NewSoftmaxCE(), pool, NewDense(c*h*w, 3))
	gradCheckNet(t, n, 2*4*4, 2, 3, 1e-4)
}

func TestGradCheckCNN(t *testing.T) {
	n := NewCNN(rng.New(8), CNNConfig{InC: 1, H: 6, W: 6, ConvC: []int{2, 3}, Kernel: 3, Hidden: 5, Classes: 3, PoolEvery: 1})
	gradCheckNet(t, n, 36, 2, 3, 5e-4)
}

func TestGradCheckLSTM(t *testing.T) {
	lstm := NewLSTM(3, 4, 3)
	n := NewNetwork(rng.New(9), NewSoftmaxCE(), lstm, NewDense(4, 3))
	gradCheckNet(t, n, 3*3, 2, 3, 1e-4)
}

func TestGradCheckEmbeddingLSTM(t *testing.T) {
	// Token inputs must be valid ids, so build x by hand.
	vocab, emb, hidden, seqLen, classes := 7, 3, 4, 4, 3
	n := NewLSTMClassifier(rng.New(10), LSTMConfig{
		Vocab: vocab, Emb: emb, Hidden: hidden, SeqLen: seqLen, Classes: classes,
		Dropout: 0, BatchNorm: false,
	})
	r := rng.New(11)
	batch := 3
	x := tensor.NewMat(batch, seqLen)
	for i := range x.Data {
		x.Data[i] = float64(r.Intn(vocab))
	}
	labels := []int{0, 2, 1}
	// The deep embedding→LSTM chain produces some gradients near the
	// float64 finite-difference noise floor; a larger step and tolerance
	// keep the check meaningful without flagging roundoff.
	if worst := GradCheck(n, x, labels, 1e-4); worst > 1e-3 {
		t.Fatalf("embedding+LSTM gradient check failed: %.3e", worst)
	}
}

func TestGradCheckBatchNorm(t *testing.T) {
	// BatchNorm updates running stats on every training forward, but in
	// train mode the loss depends only on batch statistics, so finite
	// differences remain valid.
	n := NewNetwork(rng.New(12), NewSoftmaxCE(), NewDense(4, 6), NewBatchNorm(6), NewDense(6, 3))
	gradCheckNet(t, n, 4, 5, 3, 1e-4)
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.5)
	d.Bind(nil, nil)
	d.Init(rng.New(13))
	x := tensor.NewMat(4, 8)
	for i := range x.Data {
		x.Data[i] = 1
	}
	out := d.Forward(x, true)
	dout := tensor.NewMat(4, 8)
	for i := range dout.Data {
		dout.Data[i] = 1
	}
	dx := d.Backward(dout)
	// Where the forward output is zero the gradient must be zero; where it
	// passed (scaled by 1/keep) the gradient must carry the same scale.
	for i := range out.Data {
		if out.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaks through dropped unit")
		}
		if out.Data[i] != 0 && dx.Data[i] != out.Data[i] {
			t.Fatal("gradient scale mismatch on kept unit")
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.9)
	d.Bind(nil, nil)
	d.Init(rng.New(14))
	x := tensor.NewMat(2, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := d.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout is not identity")
		}
	}
}
