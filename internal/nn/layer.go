// Package nn is the neural-network substrate: layers with analytic
// backpropagation, a Network container with a single flat parameter vector,
// and builders for the model architectures used in the FedAT paper (CNN for
// the image datasets, logistic regression for Sentiment140, and an
// embedding+LSTM classifier for Reddit).
//
// Design notes:
//
//   - All parameters of a network live in ONE flat []float64 (and all
//     gradients in a parallel flat slice). Layers are bound to subslices.
//     This makes the FL plumbing trivial: model exchange, weighted
//     aggregation, the proximal term ‖w−w_global‖², and the polyline codec
//     all operate on flat vectors, exactly the "marshalling" the paper
//     describes in §4.3.
//   - Layers carry their forward caches, so a layer instance is owned by a
//     single goroutine (one federated client). Parallelism across clients
//     happens one level up.
//   - Gradients ACCUMULATE across Backprop calls until ZeroGrad, which is
//     what mini-batch averaging and gradient checking both want.
package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Shape describes one named parameter block of a layer, used by the codec to
// transmit layer dimensions alongside compressed weights (§4.3 step 2).
type Shape struct {
	Name string
	Dims []int
}

// Size returns the number of elements in the block.
func (s Shape) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Layer is a differentiable network stage.
//
// The lifecycle is: construct → Bind(w, g) → Init(rng) → Forward/Backward.
// Forward with train=true must cache whatever Backward needs; Backward
// receives dL/d(output) and returns dL/d(input) while accumulating parameter
// gradients into the bound gradient subslice.
type Layer interface {
	// ParamShapes lists the layer's parameter blocks in binding order.
	// Parameter-free layers return nil.
	ParamShapes() []Shape
	// Bind hands the layer its weight and gradient subslices. len(w) ==
	// len(g) == total size of ParamShapes.
	Bind(w, g []float64)
	// Init writes initial weights into the bound slice.
	Init(r *rng.RNG)
	// Forward computes the layer output for a batch (rows are samples).
	Forward(x *tensor.Mat, train bool) *tensor.Mat
	// Backward consumes dL/doutput and returns dL/dinput.
	Backward(dout *tensor.Mat) *tensor.Mat
	// OutDim reports the per-sample output width for input width in.
	OutDim(in int) int
}

func paramSize(l Layer) int {
	n := 0
	for _, s := range l.ParamShapes() {
		n += s.Size()
	}
	return n
}

// glorot returns a Glorot/Xavier uniform limit for a fanIn×fanOut block.
func glorot(fanIn, fanOut int) float64 {
	return math.Sqrt(6 / float64(fanIn+fanOut))
}

// initUniform fills w from U(-a, a).
func initUniform(r *rng.RNG, w []float64, a float64) {
	for i := range w {
		w[i] = r.Uniform(-a, a)
	}
}

func checkBind(l Layer, w, g []float64) {
	want := paramSize(l)
	if len(w) != want || len(g) != want {
		panic(fmt.Sprintf("nn: Bind got %d/%d floats, want %d", len(w), len(g), want))
	}
}
