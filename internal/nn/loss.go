package nn

import (
	"math"

	"repro/internal/tensor"
)

// Loss turns final-layer outputs and integer labels into a scalar loss and
// the gradient with respect to the outputs. Implementations must average
// over the batch so learning rates are batch-size independent.
type Loss interface {
	// Compute returns the mean loss over the batch and writes dL/dlogits
	// into dlogits (same shape as logits).
	Compute(logits *tensor.Mat, labels []int, dlogits *tensor.Mat) float64
}

// SoftmaxCE is the softmax cross-entropy loss used by every classification
// model in the paper.
type SoftmaxCE struct {
	probs []float64
}

// NewSoftmaxCE constructs the loss.
func NewSoftmaxCE() *SoftmaxCE { return &SoftmaxCE{} }

// Compute implements Loss.
func (l *SoftmaxCE) Compute(logits *tensor.Mat, labels []int, dlogits *tensor.Mat) float64 {
	if len(labels) != logits.R {
		panic("nn: SoftmaxCE label count mismatch")
	}
	if dlogits.R != logits.R || dlogits.C != logits.C {
		panic("nn: SoftmaxCE dlogits shape mismatch")
	}
	if len(l.probs) != logits.C {
		l.probs = make([]float64, logits.C)
	}
	n := logits.R
	invN := 1 / float64(n)
	total := 0.0
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= logits.C {
			panic("nn: SoftmaxCE label out of range")
		}
		tensor.Softmax(logits.Row(i), l.probs)
		p := l.probs[y]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
		drow := dlogits.Row(i)
		for j, pj := range l.probs {
			drow[j] = pj * invN
		}
		drow[y] -= invN
	}
	return total * invN
}

// MSE is mean squared error against one-hot targets; included for the
// convex-objective experiments and for testing optimizers on quadratic
// bowls.
type MSE struct{}

// NewMSE constructs the loss.
func NewMSE() *MSE { return &MSE{} }

// Compute implements Loss.
func (l *MSE) Compute(logits *tensor.Mat, labels []int, dlogits *tensor.Mat) float64 {
	if len(labels) != logits.R {
		panic("nn: MSE label count mismatch")
	}
	n := logits.R
	invN := 1 / float64(n)
	total := 0.0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		drow := dlogits.Row(i)
		for j, v := range row {
			target := 0.0
			if j == labels[i] {
				target = 1
			}
			diff := v - target
			total += diff * diff * invN
			drow[j] = 2 * diff * invN
		}
	}
	return total
}
