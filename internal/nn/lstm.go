package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// LSTM processes a sequence and emits the final hidden state, matching the
// "LSTM layer" of the paper's Reddit model. Input rows are SeqLen steps of
// In features concatenated (the layout Embedding produces); output rows are
// the Hidden-dimensional state after the last step.
//
// Gate layout in the 4H dimension is [i | f | g | o].
type LSTM struct {
	In, Hidden, SeqLen int

	w, g []float64 // Wx (4H×In), Wh (4H×H), b (4H)

	// per-step caches, each SeqLen long, batch-major matrices
	xs            *tensor.Mat
	gates         []*tensor.Mat // pre-activation storage reused as post-activation
	cs, hs        []*tensor.Mat // cell and hidden states (index t+1 holds step t output)
	dx            *tensor.Mat
	scratch4H     *tensor.Mat
	scratchWx     *tensor.Mat
	scratchWh     *tensor.Mat
	dh, dc, dhNew *tensor.Mat
}

// NewLSTM constructs an LSTM over seqLen steps of in features with the given
// hidden size.
func NewLSTM(in, hidden, seqLen int) *LSTM {
	if in <= 0 || hidden <= 0 || seqLen <= 0 {
		panic("nn: LSTM invalid dimensions")
	}
	return &LSTM{In: in, Hidden: hidden, SeqLen: seqLen}
}

// ParamShapes implements Layer.
func (l *LSTM) ParamShapes() []Shape {
	return []Shape{
		{Name: "Wx", Dims: []int{4 * l.Hidden, l.In}},
		{Name: "Wh", Dims: []int{4 * l.Hidden, l.Hidden}},
		{Name: "b", Dims: []int{4 * l.Hidden}},
	}
}

// Bind implements Layer.
func (l *LSTM) Bind(w, g []float64) {
	checkBind(l, w, g)
	l.w, l.g = w, g
}

// Init implements Layer. Forget-gate biases start at 1, the standard trick
// that keeps gradients flowing early in training.
func (l *LSTM) Init(r *rng.RNG) {
	h := l.Hidden
	nx := 4 * h * l.In
	nh := 4 * h * h
	initUniform(r, l.w[:nx], glorot(l.In, h))
	initUniform(r, l.w[nx:nx+nh], glorot(h, h))
	b := l.w[nx+nh:]
	tensor.Zero(b)
	for i := h; i < 2*h; i++ {
		b[i] = 1
	}
}

// OutDim implements Layer.
func (l *LSTM) OutDim(int) int { return l.Hidden }

func (l *LSTM) wx() *tensor.Mat {
	return tensor.MatFrom(4*l.Hidden, l.In, l.w[:4*l.Hidden*l.In])
}
func (l *LSTM) wh() *tensor.Mat {
	nx := 4 * l.Hidden * l.In
	return tensor.MatFrom(4*l.Hidden, l.Hidden, l.w[nx:nx+4*l.Hidden*l.Hidden])
}
func (l *LSTM) bias() []float64 {
	return l.w[4*l.Hidden*(l.In+l.Hidden):]
}
func (l *LSTM) gwx() *tensor.Mat {
	return tensor.MatFrom(4*l.Hidden, l.In, l.g[:4*l.Hidden*l.In])
}
func (l *LSTM) gwh() *tensor.Mat {
	nx := 4 * l.Hidden * l.In
	return tensor.MatFrom(4*l.Hidden, l.Hidden, l.g[nx:nx+4*l.Hidden*l.Hidden])
}
func (l *LSTM) gbias() []float64 {
	return l.g[4*l.Hidden*(l.In+l.Hidden):]
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func (l *LSTM) ensureCaches(b int) {
	if l.gates != nil && l.gates[0].R == b {
		return
	}
	h := l.Hidden
	l.gates = make([]*tensor.Mat, l.SeqLen)
	l.cs = make([]*tensor.Mat, l.SeqLen+1)
	l.hs = make([]*tensor.Mat, l.SeqLen+1)
	for t := 0; t < l.SeqLen; t++ {
		l.gates[t] = tensor.NewMat(b, 4*h)
	}
	for t := 0; t <= l.SeqLen; t++ {
		l.cs[t] = tensor.NewMat(b, h)
		l.hs[t] = tensor.NewMat(b, h)
	}
	l.scratch4H = tensor.NewMat(b, 4*h)
	l.scratchWx = tensor.NewMat(4*h, l.In)
	l.scratchWh = tensor.NewMat(4*h, h)
	l.dh = tensor.NewMat(b, h)
	l.dc = tensor.NewMat(b, h)
	l.dhNew = tensor.NewMat(b, h)
	l.dx = tensor.NewMat(b, l.SeqLen*l.In)
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.C != l.SeqLen*l.In {
		panic("nn: LSTM input width mismatch")
	}
	b := x.R
	l.ensureCaches(b)
	l.xs = x
	h := l.Hidden
	wx, wh, bias := l.wx(), l.wh(), l.bias()
	tensor.Zero(l.cs[0].Data)
	tensor.Zero(l.hs[0].Data)
	for t := 0; t < l.SeqLen; t++ {
		xt := l.stepInput(x, t)
		gates := l.gates[t]
		// gates = xt·Wxᵀ + h_{t-1}·Whᵀ + b
		tensor.MulTransBInto(gates, xt, wx)
		tensor.MulTransBInto(l.scratch4H, l.hs[t], wh)
		tensor.AddTo(gates.Data, l.scratch4H.Data)
		gates.AddRowVec(bias)
		cPrev := l.cs[t]
		cNew := l.cs[t+1]
		hNew := l.hs[t+1]
		for s := 0; s < b; s++ {
			gr := gates.Row(s)
			cp := cPrev.Row(s)
			cn := cNew.Row(s)
			hn := hNew.Row(s)
			for j := 0; j < h; j++ {
				i := sigmoid(gr[j])
				f := sigmoid(gr[h+j])
				g := math.Tanh(gr[2*h+j])
				o := sigmoid(gr[3*h+j])
				// store post-activation values for backward
				gr[j], gr[h+j], gr[2*h+j], gr[3*h+j] = i, f, g, o
				cn[j] = f*cp[j] + i*g
				hn[j] = o * math.Tanh(cn[j])
			}
		}
	}
	return l.hs[l.SeqLen]
}

// stepInput returns the batch view of step t: rows are x[s][t*In:(t+1)*In].
// The rows are strided in the original matrix, so we copy into a scratch
// matrix sized B×In.
func (l *LSTM) stepInput(x *tensor.Mat, t int) *tensor.Mat {
	b := x.R
	out := tensor.NewMat(b, l.In)
	for s := 0; s < b; s++ {
		copy(out.Row(s), x.Row(s)[t*l.In:(t+1)*l.In])
	}
	return out
}

// Backward implements Layer (full backpropagation through time).
func (l *LSTM) Backward(dout *tensor.Mat) *tensor.Mat {
	if l.xs == nil {
		panic("nn: LSTM Backward before training Forward")
	}
	b := dout.R
	h := l.Hidden
	wx, wh := l.wx(), l.wh()
	gwx, gwh, gb := l.gwx(), l.gwh(), l.gbias()

	copy(l.dh.Data, dout.Data)
	tensor.Zero(l.dc.Data)
	tensor.Zero(l.dx.Data)
	dgates := tensor.NewMat(b, 4*h)
	dxt := tensor.NewMat(b, l.In)
	for t := l.SeqLen - 1; t >= 0; t-- {
		gates := l.gates[t]
		cPrev := l.cs[t]
		cNew := l.cs[t+1]
		for s := 0; s < b; s++ {
			gr := gates.Row(s)
			dg := dgates.Row(s)
			dhRow := l.dh.Row(s)
			dcRow := l.dc.Row(s)
			cp := cPrev.Row(s)
			cn := cNew.Row(s)
			for j := 0; j < h; j++ {
				i, f, g, o := gr[j], gr[h+j], gr[2*h+j], gr[3*h+j]
				tc := math.Tanh(cn[j])
				dc := dcRow[j] + dhRow[j]*o*(1-tc*tc)
				do := dhRow[j] * tc
				di := dc * g
				dgg := dc * i
				df := dc * cp[j]
				// pre-activation gradients
				dg[j] = di * i * (1 - i)
				dg[h+j] = df * f * (1 - f)
				dg[2*h+j] = dgg * (1 - g*g)
				dg[3*h+j] = do * o * (1 - o)
				dcRow[j] = dc * f // flows to previous step
			}
		}
		// parameter grads: dWx += dgatesᵀ·x_t ; dWh += dgatesᵀ·h_{t-1}
		xt := l.stepInput(l.xs, t)
		tensor.MulTransAInto(l.scratchWx, dgates, xt)
		tensor.AddTo(gwx.Data, l.scratchWx.Data)
		tensor.MulTransAInto(l.scratchWh, dgates, l.hs[t])
		tensor.AddTo(gwh.Data, l.scratchWh.Data)
		for s := 0; s < b; s++ {
			tensor.AddTo(gb, dgates.Row(s))
		}
		// input grad for this step: dx_t = dgates·Wx
		tensor.MulInto(dxt, dgates, wx)
		for s := 0; s < b; s++ {
			copy(l.dx.Row(s)[t*l.In:(t+1)*l.In], dxt.Row(s))
		}
		// hidden grad for previous step: dh_{t-1} = dgates·Wh
		tensor.MulInto(l.dhNew, dgates, wh)
		l.dh, l.dhNew = l.dhNew, l.dh
	}
	return l.dx
}
