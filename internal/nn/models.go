package nn

import "repro/internal/rng"

// This file holds builders for the architectures the paper trains (§6,
// "Models"), parameterized so experiments can run them at reduced width.

// CNNConfig describes the convolutional classifier used for CIFAR-10,
// Fashion-MNIST and FEMNIST. The paper's network is three conv layers
// (32/64/64 filters) followed by dense 64 and a classifier head; the
// defaults here keep that shape at reduced channel counts so a full
// federated experiment runs in seconds.
type CNNConfig struct {
	InC, H, W int   // input geometry
	ConvC     []int // channels per conv layer
	Kernel    int
	Hidden    int
	Classes   int
	PoolEvery int // insert a 2×2 max-pool after every PoolEvery convs (0 = none)
}

// PaperCNN returns the paper-shaped config for the given input geometry.
func PaperCNN(inC, h, w, classes int) CNNConfig {
	return CNNConfig{InC: inC, H: h, W: w, ConvC: []int{32, 64, 64}, Kernel: 3, Hidden: 64, Classes: classes, PoolEvery: 1}
}

// SmallCNN returns a reduced config that preserves the three-conv shape.
func SmallCNN(inC, h, w, classes int) CNNConfig {
	return CNNConfig{InC: inC, H: h, W: w, ConvC: []int{8, 16, 16}, Kernel: 3, Hidden: 32, Classes: classes, PoolEvery: 1}
}

// NewCNN builds the convolutional classifier.
func NewCNN(r *rng.RNG, cfg CNNConfig) *Network {
	var layers []Layer
	c, h, w := cfg.InC, cfg.H, cfg.W
	for i, outC := range cfg.ConvC {
		conv := NewConv2D(c, h, w, outC, cfg.Kernel, 1, cfg.Kernel/2)
		layers = append(layers, conv, NewReLU())
		c, h, w = conv.OutShape()
		if cfg.PoolEvery > 0 && (i+1)%cfg.PoolEvery == 0 && h >= 2 && w >= 2 {
			pool := NewMaxPool2D(c, h, w, 2, 2)
			layers = append(layers, pool)
			c, h, w = pool.OutShape()
		}
	}
	layers = append(layers,
		NewDense(c*h*w, cfg.Hidden),
		NewReLU(),
		NewDense(cfg.Hidden, cfg.Classes),
	)
	return NewNetwork(r, NewSoftmaxCE(), layers...)
}

// NewMLP builds a plain multilayer perceptron with ReLU between layers;
// dims is input, hidden..., classes. Used as the fast stand-in model when
// an experiment's point is the FL dynamics rather than the architecture.
func NewMLP(r *rng.RNG, dims ...int) *Network {
	if len(dims) < 2 {
		panic("nn: NewMLP needs at least input and output dims")
	}
	var layers []Layer
	for i := 0; i < len(dims)-1; i++ {
		layers = append(layers, NewDense(dims[i], dims[i+1]))
		if i < len(dims)-2 {
			layers = append(layers, NewReLU())
		}
	}
	return NewNetwork(r, NewSoftmaxCE(), layers...)
}

// NewLogistic builds the multinomial logistic-regression model the paper
// uses for Sentiment140 (its convex objective).
func NewLogistic(r *rng.RNG, in, classes int) *Network {
	return NewNetwork(r, NewSoftmaxCE(), NewDense(in, classes))
}

// LSTMConfig describes the Reddit next-token-style classifier: embedding →
// LSTM → dropout → batch-norm → dense, mirroring the paper's Reddit model
// (embedding 10000→128, LSTM with dropout 0.1, batch norm, dense 10000) at
// configurable scale.
type LSTMConfig struct {
	Vocab, Emb, Hidden, SeqLen, Classes int
	Dropout                             float64
	BatchNorm                           bool
}

// PaperLSTM returns the paper-shaped Reddit config at the given scale
// divisor (1 = paper scale).
func PaperLSTM(scaleDiv int) LSTMConfig {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return LSTMConfig{
		Vocab:     10000 / scaleDiv,
		Emb:       128 / scaleDiv,
		Hidden:    128 / scaleDiv,
		SeqLen:    10,
		Classes:   10000 / scaleDiv,
		Dropout:   0.1,
		BatchNorm: true,
	}
}

// NewLSTMClassifier builds the sequence classifier.
func NewLSTMClassifier(r *rng.RNG, cfg LSTMConfig) *Network {
	layers := []Layer{
		NewEmbedding(cfg.Vocab, cfg.Emb, cfg.SeqLen),
		NewLSTM(cfg.Emb, cfg.Hidden, cfg.SeqLen),
	}
	if cfg.Dropout > 0 {
		layers = append(layers, NewDropout(cfg.Dropout))
	}
	if cfg.BatchNorm {
		layers = append(layers, NewBatchNorm(cfg.Hidden))
	}
	layers = append(layers, NewDense(cfg.Hidden, cfg.Classes))
	return NewNetwork(r, NewSoftmaxCE(), layers...)
}
