package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Network is a sequential stack of layers whose parameters live in a single
// flat vector. That vector is the unit of exchange in the FL system: the
// codec compresses it, the server aggregates it, and the proximal term
// penalizes distance from it.
type Network struct {
	layers  []Layer
	loss    Loss
	weights []float64
	grads   []float64
	shapes  []Shape // concatenated layer shapes, for the codec

	dlogits *tensor.Mat
}

// inputGradSkipper is implemented by layers that can skip computing the
// gradient with respect to their input. NewNetwork marks the stack's first
// layer: its input is the data batch, so nothing consumes that gradient
// and the (often largest) dx matmul of every backward pass can be dropped.
// A marked layer's Backward returns nil.
type inputGradSkipper interface{ SkipInputGrad() }

// NewNetwork builds a network from layers, allocates the flat parameter
// store, binds every layer and initializes weights from r. loss may be nil
// for feature extractors; Backprop then panics.
func NewNetwork(r *rng.RNG, loss Loss, layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: NewNetwork needs at least one layer")
	}
	total := 0
	for _, l := range layers {
		total += paramSize(l)
	}
	n := &Network{
		layers:  layers,
		loss:    loss,
		weights: make([]float64, total),
		grads:   make([]float64, total),
	}
	off := 0
	for _, l := range layers {
		sz := paramSize(l)
		l.Bind(n.weights[off:off+sz], n.grads[off:off+sz])
		l.Init(r)
		off += sz
		n.shapes = append(n.shapes, l.ParamShapes()...)
	}
	if s, ok := layers[0].(inputGradSkipper); ok {
		s.SkipInputGrad()
	}
	return n
}

// NumParams returns the total parameter count.
func (n *Network) NumParams() int { return len(n.weights) }

// Weights returns the live flat parameter vector (not a copy). Mutating it
// mutates the model.
func (n *Network) Weights() []float64 { return n.weights }

// Grads returns the live flat gradient vector (not a copy).
func (n *Network) Grads() []float64 { return n.grads }

// ParamShapes returns the parameter block shapes in vector order, which the
// codec transmits so the receiver can unmarshal (§4.3).
func (n *Network) ParamShapes() []Shape { return n.shapes }

// SetWeights copies v into the parameter vector.
func (n *Network) SetWeights(v []float64) {
	if len(v) != len(n.weights) {
		panic(fmt.Sprintf("nn: SetWeights got %d floats, want %d", len(v), len(n.weights)))
	}
	copy(n.weights, v)
}

// WeightsCopy returns a copy of the parameter vector.
func (n *Network) WeightsCopy() []float64 { return tensor.Copy(n.weights) }

// ZeroGrad clears the gradient vector.
func (n *Network) ZeroGrad() { tensor.Zero(n.grads) }

// Forward runs the stack on a batch.
func (n *Network) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h, train)
	}
	return h
}

// Backprop runs forward in training mode, computes the loss against labels,
// and backpropagates, accumulating gradients. It returns the mean loss.
// Call ZeroGrad first unless gradient accumulation is intended.
func (n *Network) Backprop(x *tensor.Mat, labels []int) float64 {
	if n.loss == nil {
		panic("nn: Backprop on a network without a loss")
	}
	logits := n.Forward(x, true)
	n.dlogits = tensor.EnsureMat(n.dlogits, logits.R, logits.C)
	lv := n.loss.Compute(logits, labels, n.dlogits)
	d := n.dlogits
	for i := len(n.layers) - 1; i >= 0; i-- {
		d = n.layers[i].Backward(d)
	}
	return lv
}

// Eval runs the network in inference mode and returns the number of correct
// argmax predictions and the mean loss over the batch.
func (n *Network) Eval(x *tensor.Mat, labels []int) (correct int, loss float64) {
	logits := n.Forward(x, false)
	n.dlogits = tensor.EnsureMat(n.dlogits, logits.R, logits.C)
	if n.loss != nil {
		loss = n.loss.Compute(logits, labels, n.dlogits)
	}
	for i := 0; i < logits.R; i++ {
		if tensor.ArgMax(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	return correct, loss
}

// Predict returns the argmax class for each row of x.
func (n *Network) Predict(x *tensor.Mat) []int {
	logits := n.Forward(x, false)
	out := make([]int, logits.R)
	for i := range out {
		out[i] = tensor.ArgMax(logits.Row(i))
	}
	return out
}
