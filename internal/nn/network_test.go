package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// makeBlobs builds a linearly separable 2-class problem.
func makeBlobs(r *rng.RNG, n, dim int) (*tensor.Mat, []int) {
	x := tensor.NewMat(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		y[i] = cls
		center := -1.5
		if cls == 1 {
			center = 1.5
		}
		for j := 0; j < dim; j++ {
			x.Set(i, j, center+0.5*r.Norm())
		}
	}
	return x, y
}

func TestNetworkLearnsBlobs(t *testing.T) {
	r := rng.New(21)
	n := NewMLP(r, 4, 8, 2)
	x, y := makeBlobs(r, 64, 4)
	lr := 0.5
	var first, last float64
	for epoch := 0; epoch < 60; epoch++ {
		n.ZeroGrad()
		loss := n.Backprop(x, y)
		if epoch == 0 {
			first = loss
		}
		last = loss
		tensor.Axpy(-lr, n.Grads(), n.Weights())
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	correct, _ := n.Eval(x, y)
	if correct < 60 {
		t.Fatalf("blob accuracy too low: %d/64", correct)
	}
}

func TestLogisticLearns(t *testing.T) {
	r := rng.New(22)
	n := NewLogistic(r, 6, 2)
	x, y := makeBlobs(r, 80, 6)
	for epoch := 0; epoch < 80; epoch++ {
		n.ZeroGrad()
		n.Backprop(x, y)
		tensor.Axpy(-0.5, n.Grads(), n.Weights())
	}
	correct, _ := n.Eval(x, y)
	if correct < 75 {
		t.Fatalf("logistic accuracy too low: %d/80", correct)
	}
}

func TestSetWeightsRoundTrip(t *testing.T) {
	r := rng.New(23)
	a := NewMLP(r, 3, 5, 2)
	b := NewMLP(rng.New(24), 3, 5, 2)
	b.SetWeights(a.Weights())
	x := tensor.NewMat(4, 3)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	if !tensor.Equal(ya, yb, 0) {
		t.Fatal("identical weights gave different outputs")
	}
}

func TestSetWeightsLengthPanics(t *testing.T) {
	n := NewMLP(rng.New(25), 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetWeights with wrong length did not panic")
		}
	}()
	n.SetWeights(make([]float64, 5))
}

func TestZeroGrad(t *testing.T) {
	r := rng.New(26)
	n := NewMLP(r, 3, 4, 2)
	x, y := makeBlobs(r, 8, 3)
	n.Backprop(x, y)
	nonzero := false
	for _, g := range n.Grads() {
		if g != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("Backprop produced all-zero gradients")
	}
	n.ZeroGrad()
	for _, g := range n.Grads() {
		if g != 0 {
			t.Fatal("ZeroGrad left residue")
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	// Two Backprop calls without ZeroGrad must sum gradients.
	r := rng.New(27)
	n := NewMLP(r, 3, 2)
	x, y := makeBlobs(r, 6, 3)
	n.ZeroGrad()
	n.Backprop(x, y)
	once := tensor.Copy(n.Grads())
	n.Backprop(x, y)
	for i, g := range n.Grads() {
		if math.Abs(g-2*once[i]) > 1e-9 {
			t.Fatalf("gradient accumulation broken at %d: %v vs %v", i, g, 2*once[i])
		}
	}
}

func TestParamShapesCoverVector(t *testing.T) {
	n := NewCNN(rng.New(28), CNNConfig{InC: 1, H: 8, W: 8, ConvC: []int{2, 3}, Kernel: 3, Hidden: 6, Classes: 4, PoolEvery: 1})
	total := 0
	for _, s := range n.ParamShapes() {
		total += s.Size()
	}
	if total != n.NumParams() {
		t.Fatalf("shapes cover %d params, vector has %d", total, n.NumParams())
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewMLP(rng.New(31), 4, 6, 2)
	b := NewMLP(rng.New(31), 4, 6, 2)
	for i := range a.Weights() {
		if a.Weights()[i] != b.Weights()[i] {
			t.Fatal("same seed produced different initial weights")
		}
	}
}

func TestPredictShape(t *testing.T) {
	n := NewMLP(rng.New(32), 3, 4)
	x := tensor.NewMat(5, 3)
	p := n.Predict(x)
	if len(p) != 5 {
		t.Fatalf("Predict returned %d results for 5 rows", len(p))
	}
	for _, c := range p {
		if c < 0 || c >= 4 {
			t.Fatalf("predicted class out of range: %d", c)
		}
	}
}

func TestLSTMClassifierLearnsTokenPattern(t *testing.T) {
	// Class 0 sequences use tokens {0..3}, class 1 uses {4..7}: trivially
	// separable, the model should fit it quickly.
	cfg := LSTMConfig{Vocab: 8, Emb: 4, Hidden: 6, SeqLen: 5, Classes: 2}
	n := NewLSTMClassifier(rng.New(33), cfg)
	r := rng.New(34)
	batch := 32
	x := tensor.NewMat(batch, cfg.SeqLen)
	y := make([]int, batch)
	for i := 0; i < batch; i++ {
		cls := i % 2
		y[i] = cls
		for tt := 0; tt < cfg.SeqLen; tt++ {
			x.Set(i, tt, float64(4*cls+r.Intn(4)))
		}
	}
	for epoch := 0; epoch < 150; epoch++ {
		n.ZeroGrad()
		n.Backprop(x, y)
		tensor.Axpy(-0.3, n.Grads(), n.Weights())
	}
	correct, _ := n.Eval(x, y)
	if correct < 30 {
		t.Fatalf("LSTM classifier accuracy too low: %d/32", correct)
	}
}

func TestPaperModelBuilders(t *testing.T) {
	if n := NewCNN(rng.New(35), SmallCNN(3, 16, 16, 10)); n.NumParams() == 0 {
		t.Fatal("SmallCNN has no parameters")
	}
	cfg := PaperLSTM(16)
	if cfg.Vocab != 625 || cfg.Hidden != 8 {
		t.Fatalf("PaperLSTM(16) unexpected scale: %+v", cfg)
	}
	if n := NewLSTMClassifier(rng.New(36), cfg); n.NumParams() == 0 {
		t.Fatal("LSTM classifier has no parameters")
	}
}

func BenchmarkMLPBackprop(b *testing.B) {
	r := rng.New(1)
	n := NewMLP(r, 64, 64, 10)
	x := tensor.NewMat(10, 64)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	y := make([]int, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ZeroGrad()
		n.Backprop(x, y)
	}
}

func BenchmarkCNNBackprop(b *testing.B) {
	r := rng.New(1)
	n := NewCNN(r, SmallCNN(1, 12, 12, 10))
	x := tensor.NewMat(10, 144)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	y := make([]int, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ZeroGrad()
		n.Backprop(x, y)
	}
}
