package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the gob form of a trained model: the flat weight vector
// plus the parameter-shape table, which acts as an architecture
// fingerprint so a checkpoint cannot be loaded into a different network.
type checkpoint struct {
	Shapes  []Shape
	Weights []float64
}

// Save writes the network's weights (not its architecture — that is code)
// with a shape fingerprint.
func (n *Network) Save(w io.Writer) error {
	cp := checkpoint{Shapes: n.shapes, Weights: n.weights}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load restores weights saved by Save into this network. The checkpoint's
// shape table must match the network's exactly.
func (n *Network) Load(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	if len(cp.Shapes) != len(n.shapes) {
		return fmt.Errorf("nn: load: checkpoint has %d parameter blocks, network has %d",
			len(cp.Shapes), len(n.shapes))
	}
	for i, s := range cp.Shapes {
		if !sameShape(s, n.shapes[i]) {
			return fmt.Errorf("nn: load: block %d is %v %v, network expects %v %v",
				i, s.Name, s.Dims, n.shapes[i].Name, n.shapes[i].Dims)
		}
	}
	if len(cp.Weights) != len(n.weights) {
		return fmt.Errorf("nn: load: checkpoint has %d weights, network has %d",
			len(cp.Weights), len(n.weights))
	}
	copy(n.weights, cp.Weights)
	return nil
}

func sameShape(a, b Shape) bool {
	if a.Name != b.Name || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	return true
}
