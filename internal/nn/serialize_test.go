package nn

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	a := NewMLP(rng.New(1), 6, 8, 3)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewMLP(rng.New(2), 6, 8, 3) // different init
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMat(3, 6)
	r := rng.New(3)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	if !tensor.Equal(a.Forward(x, false), b.Forward(x, false), 0) {
		t.Fatal("loaded network differs from saved one")
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	a := NewMLP(rng.New(1), 6, 8, 3)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cases := []*Network{
		NewMLP(rng.New(1), 6, 9, 3), // different hidden width
		NewMLP(rng.New(1), 6, 3),    // different depth
		NewLogistic(rng.New(1), 6, 3),
	}
	for i, n := range cases {
		if err := n.Load(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatalf("case %d: mismatched architecture accepted", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	n := NewMLP(rng.New(1), 4, 2)
	if err := n.Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadCNNAndLSTM(t *testing.T) {
	builders := []func(seed uint64) *Network{
		func(s uint64) *Network {
			return NewCNN(rng.New(s), CNNConfig{InC: 1, H: 6, W: 6, ConvC: []int{2}, Kernel: 3, Hidden: 4, Classes: 3, PoolEvery: 1})
		},
		func(s uint64) *Network {
			return NewLSTMClassifier(rng.New(s), LSTMConfig{Vocab: 6, Emb: 3, Hidden: 4, SeqLen: 3, Classes: 6, BatchNorm: true})
		},
	}
	for i, build := range builders {
		a := build(1)
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			t.Fatalf("case %d save: %v", i, err)
		}
		b := build(9)
		if err := b.Load(&buf); err != nil {
			t.Fatalf("case %d load: %v", i, err)
		}
		for j := range a.Weights() {
			if a.Weights()[j] != b.Weights()[j] {
				t.Fatalf("case %d weights differ after load", i)
			}
		}
	}
}
