package opt

import "math"

// This file holds the training utilities FL deployments commonly layer on
// top of the base optimizers: global-norm gradient clipping, decoupled
// weight decay, and learning-rate schedules. They are exercised by the
// ablation benches; the paper's main configuration uses plain Adam.

// ClipNorm scales g in place so its global L2 norm is at most maxNorm, and
// returns the pre-clip norm. maxNorm <= 0 disables clipping.
func ClipNorm(g []float64, maxNorm float64) float64 {
	s := 0.0
	for _, v := range g {
		s += v * v
	}
	norm := math.Sqrt(s)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for i := range g {
		g[i] *= scale
	}
	return norm
}

// AddWeightDecay adds decoupled L2 decay to the gradient: g += wd·w.
func AddWeightDecay(g, w []float64, wd float64) {
	if wd == 0 {
		return
	}
	if len(g) != len(w) {
		panic("opt: AddWeightDecay length mismatch")
	}
	for i := range g {
		g[i] += wd * w[i]
	}
}

// Schedule maps a step index to a learning rate.
type Schedule interface {
	LR(step int) float64
}

// ConstLR is a fixed learning rate.
type ConstLR float64

// LR implements Schedule.
func (c ConstLR) LR(int) float64 { return float64(c) }

// CosineLR anneals from Base to Floor over Steps steps, then stays at
// Floor.
type CosineLR struct {
	Base, Floor float64
	Steps       int
}

// LR implements Schedule.
func (c CosineLR) LR(step int) float64 {
	if c.Steps <= 0 || step >= c.Steps {
		return c.Floor
	}
	frac := float64(step) / float64(c.Steps)
	return c.Floor + (c.Base-c.Floor)*0.5*(1+math.Cos(math.Pi*frac))
}

// StepLR multiplies Base by Gamma every Every steps.
type StepLR struct {
	Base, Gamma float64
	Every       int
}

// LR implements Schedule.
func (s StepLR) LR(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(step/s.Every))
}

// lrSettable is satisfied by optimizers whose learning rate can be swapped
// per step.
type lrSettable interface {
	Optimizer
	setLR(lr float64)
}

func (s *SGD) setLR(lr float64)  { s.LR = lr }
func (a *Adam) setLR(lr float64) { a.LR = lr }

// Scheduled wraps an optimizer with a learning-rate schedule.
type Scheduled struct {
	base  lrSettable
	sched Schedule
	step  int
}

// WithSchedule attaches a schedule to an SGD or Adam optimizer. It panics
// for optimizers without a settable learning rate.
func WithSchedule(o Optimizer, s Schedule) *Scheduled {
	ls, ok := o.(lrSettable)
	if !ok {
		panic("opt: optimizer does not support schedules")
	}
	return &Scheduled{base: ls, sched: s}
}

// Step implements Optimizer.
func (s *Scheduled) Step(w, g []float64) {
	s.base.setLR(s.sched.LR(s.step))
	s.step++
	s.base.Step(w, g)
}

// Reset implements Optimizer (also rewinds the schedule).
func (s *Scheduled) Reset() {
	s.step = 0
	s.base.Reset()
}
