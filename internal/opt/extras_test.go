package opt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClipNormScalesDown(t *testing.T) {
	g := []float64{3, 4} // norm 5
	pre := ClipNorm(g, 1)
	if pre != 5 {
		t.Fatalf("pre-clip norm %v, want 5", pre)
	}
	if math.Abs(math.Hypot(g[0], g[1])-1) > 1e-12 {
		t.Fatalf("clipped norm %v, want 1", math.Hypot(g[0], g[1]))
	}
	// Direction preserved.
	if math.Abs(g[0]/g[1]-0.75) > 1e-12 {
		t.Fatalf("clipping changed direction: %v", g)
	}
}

func TestClipNormNoopCases(t *testing.T) {
	g := []float64{0.3, 0.4}
	ClipNorm(g, 1) // norm 0.5 <= 1
	if g[0] != 0.3 || g[1] != 0.4 {
		t.Fatal("under-norm gradient modified")
	}
	ClipNorm(g, 0) // disabled
	if g[0] != 0.3 {
		t.Fatal("disabled clipping modified gradient")
	}
	z := []float64{0, 0}
	ClipNorm(z, 1) // zero gradient must not NaN
	if z[0] != 0 || math.IsNaN(z[0]) {
		t.Fatal("zero gradient mishandled")
	}
}

func TestClipNormBoundProperty(t *testing.T) {
	f := func(raw [6]float64, maxRaw float64) bool {
		g := make([]float64, 6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 1
			}
			g[i] = v
		}
		maxNorm := math.Abs(maxRaw)
		if !(maxNorm > 1e-6 && maxNorm < 1e6) {
			maxNorm = 2
		}
		ClipNorm(g, maxNorm)
		s := 0.0
		for _, v := range g {
			s += v * v
		}
		return math.Sqrt(s) <= maxNorm*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddWeightDecay(t *testing.T) {
	g := []float64{1, 1}
	AddWeightDecay(g, []float64{2, -4}, 0.5)
	if g[0] != 2 || g[1] != -1 {
		t.Fatalf("weight decay wrong: %v", g)
	}
	AddWeightDecay(g, []float64{9, 9}, 0)
	if g[0] != 2 {
		t.Fatal("zero decay modified gradient")
	}
}

func TestCosineLR(t *testing.T) {
	c := CosineLR{Base: 1, Floor: 0.1, Steps: 100}
	if c.LR(0) != 1 {
		t.Fatalf("cosine start %v", c.LR(0))
	}
	mid := c.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("cosine midpoint %v, want 0.55", mid)
	}
	if c.LR(100) != 0.1 || c.LR(1000) != 0.1 {
		t.Fatal("cosine floor wrong")
	}
	for s := 1; s <= 100; s++ {
		if c.LR(s) > c.LR(s-1)+1e-12 {
			t.Fatalf("cosine not monotone at %d", s)
		}
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{Base: 1, Gamma: 0.1, Every: 10}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Fatal("step schedule decayed early")
	}
	if math.Abs(s.LR(10)-0.1) > 1e-12 || math.Abs(s.LR(25)-0.01) > 1e-12 {
		t.Fatalf("step schedule wrong: %v %v", s.LR(10), s.LR(25))
	}
}

func TestScheduledOptimizer(t *testing.T) {
	sgd := NewSGD(999) // schedule must override this
	sched := WithSchedule(sgd, StepLR{Base: 0.5, Gamma: 0.5, Every: 1})
	w := []float64{0}
	sched.Step(w, []float64{1}) // lr 0.5
	if w[0] != -0.5 {
		t.Fatalf("first scheduled step: %v", w[0])
	}
	sched.Step(w, []float64{1}) // lr 0.25
	if math.Abs(w[0]-(-0.75)) > 1e-12 {
		t.Fatalf("second scheduled step: %v", w[0])
	}
	sched.Reset()
	w[0] = 0
	sched.Step(w, []float64{1})
	if w[0] != -0.5 {
		t.Fatal("Reset did not rewind the schedule")
	}
}

func TestScheduledConvergesOnQuadratic(t *testing.T) {
	sched := WithSchedule(NewAdam(0), CosineLR{Base: 0.2, Floor: 0.01, Steps: 300})
	runToConvergence(t, sched, 400)
}
