// Package opt implements the local solvers used by federated clients: SGD
// with optional momentum and Adam (the paper's local solver, §6
// "Hyperparameters"), plus the proximal-term helper that implements the
// constrained local objective of Eq. 3,
//
//	h_k(w) = F_k(w) + λ/2·‖w − w_global‖².
//
// Optimizers operate on the flat weight/gradient vectors exposed by
// nn.Network, which keeps them oblivious to layer structure.
package opt

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates a flat weight vector in place from a flat gradient
// vector. Implementations keep per-coordinate state sized on first use and
// reset it with Reset.
type Optimizer interface {
	// Step applies one update. len(w) must equal len(g) and stay constant
	// across calls between Resets.
	Step(w, g []float64)
	// Reset clears accumulated state (momentum, moment estimates).
	Reset()
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel []float64
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewSGDMomentum returns SGD with classical momentum.
func NewSGDMomentum(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(w, g []float64) {
	if len(w) != len(g) {
		panic("opt: SGD weight/gradient length mismatch")
	}
	if s.Momentum == 0 {
		tensor.Axpy(-s.LR, g, w)
		return
	}
	if len(s.vel) != len(w) {
		s.vel = make([]float64, len(w))
	}
	for i, gv := range g {
		s.vel[i] = s.Momentum*s.vel[i] - s.LR*gv
		w[i] += s.vel[i]
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.vel = nil }

// Adam implements Kingma & Ba's optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v []float64
}

// NewAdam returns Adam with the standard defaults (β1=0.9, β2=0.999,
// ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(w, g []float64) {
	if len(w) != len(g) {
		panic("opt: Adam weight/gradient length mismatch")
	}
	if len(a.m) != len(w) {
		a.m = make([]float64, len(w))
		a.v = make([]float64, len(w))
		a.t = 0
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, gv := range g {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*gv
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*gv*gv
		mh := a.m[i] / c1
		vh := a.v[i] / c2
		w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// AddProximal adds the gradient of the proximal term λ/2·‖w−anchor‖² to g,
// i.e. g += λ·(w − anchor). This is how clients realize the local constraint
// of Eq. 3; λ=0 is a no-op (FedAvg behaviour).
func AddProximal(g, w, anchor []float64, lambda float64) {
	if lambda == 0 {
		return
	}
	if len(g) != len(w) || len(w) != len(anchor) {
		panic("opt: AddProximal length mismatch")
	}
	for i := range g {
		g[i] += lambda * (w[i] - anchor[i])
	}
}

// ProximalLoss returns λ/2·‖w−anchor‖², the penalty value itself, for
// logging the full surrogate objective h_k.
func ProximalLoss(w, anchor []float64, lambda float64) float64 {
	if lambda == 0 {
		return 0
	}
	return lambda / 2 * tensor.SqDist(w, anchor)
}
