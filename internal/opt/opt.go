// Package opt implements the local solvers used by federated clients: SGD
// with optional momentum and Adam (the paper's local solver, §6
// "Hyperparameters"), plus the proximal-term helper that implements the
// constrained local objective of Eq. 3,
//
//	h_k(w) = F_k(w) + λ/2·‖w − w_global‖².
//
// Optimizers operate on the flat weight/gradient vectors exposed by
// nn.Network, which keeps them oblivious to layer structure.
package opt

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates a flat weight vector in place from a flat gradient
// vector. Implementations keep per-coordinate state sized on first use and
// reset it with Reset.
type Optimizer interface {
	// Step applies one update. len(w) must equal len(g) and stay constant
	// across calls between Resets.
	Step(w, g []float64)
	// Reset clears accumulated state (momentum, moment estimates).
	Reset()
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel []float64
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewSGDMomentum returns SGD with classical momentum.
func NewSGDMomentum(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(w, g []float64) {
	if len(w) != len(g) {
		panic("opt: SGD weight/gradient length mismatch")
	}
	if s.Momentum == 0 {
		tensor.Axpy(-s.LR, g, w)
		return
	}
	if len(s.vel) != len(w) {
		s.vel = tensor.EnsureVec(s.vel, len(w))
		tensor.Zero(s.vel)
	}
	for i, gv := range g {
		s.vel[i] = s.Momentum*s.vel[i] - s.LR*gv
		w[i] += s.vel[i]
	}
}

// Reset implements Optimizer. State is zeroed in place, not freed: a client
// reused across rounds keeps its buffers, which removes two model-sized
// allocations per local training run.
func (s *SGD) Reset() { tensor.Zero(s.vel) }

// Adam implements Kingma & Ba's optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v []float64
}

// NewAdam returns Adam with the standard defaults (β1=0.9, β2=0.999,
// ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(w, g []float64) {
	if len(w) != len(g) {
		panic("opt: Adam weight/gradient length mismatch")
	}
	if len(a.m) != len(w) {
		a.m = tensor.EnsureVec(a.m, len(w))
		a.v = tensor.EnsureVec(a.v, len(w))
		tensor.Zero(a.m)
		tensor.Zero(a.v)
		a.t = 0
	}
	a.t++
	c := adamConsts{
		b1: a.Beta1, b2: a.Beta2,
		u1: 1 - a.Beta1, u2: 1 - a.Beta2,
		c1: 1 - math.Pow(a.Beta1, float64(a.t)),
		c2: 1 - math.Pow(a.Beta2, float64(a.t)),
		lr: a.LR, eps: a.Eps,
	}
	adamStep(w[:len(g)], g, a.m[:len(g)], a.v[:len(g)], &c)
}

// adamStepGo is the scalar reference update: one Adam step with bias
// correction over every coordinate. The amd64 build runs the SSE2 kernel
// in step_amd64.s instead — two lanes of exactly these operations in
// exactly this order, bit-identical per element — and the equivalence is
// pinned by TestAdamStepAsmMatchesGo and FuzzAdamStep.
func adamStepGo(w, g, m, v []float64, c *adamConsts) {
	// Local reslices pin every slice to len(g) for the compiler, so the
	// loop body carries no bounds checks.
	w = w[:len(g)]
	m = m[:len(g)]
	v = v[:len(g)]
	for i, gv := range g {
		mi := c.b1*m[i] + c.u1*gv
		vi := c.b2*v[i] + c.u2*gv*gv
		m[i] = mi
		v[i] = vi
		mh := mi / c.c1
		vh := vi / c.c2
		w[i] -= c.lr * mh / (math.Sqrt(vh) + c.eps)
	}
}

// Reset implements Optimizer. Moment estimates are zeroed in place, keeping
// their storage; the numeric state after Reset is identical to a fresh
// optimizer's.
func (a *Adam) Reset() {
	tensor.Zero(a.m)
	tensor.Zero(a.v)
	a.t = 0
}

// AddProximal adds the gradient of the proximal term λ/2·‖w−anchor‖² to g,
// i.e. g += λ·(w − anchor). This is how clients realize the local constraint
// of Eq. 3; λ=0 is a no-op (FedAvg behaviour).
func AddProximal(g, w, anchor []float64, lambda float64) {
	if lambda == 0 {
		return
	}
	if len(g) != len(w) || len(w) != len(anchor) {
		panic("opt: AddProximal length mismatch")
	}
	for i := range g {
		g[i] += lambda * (w[i] - anchor[i])
	}
}

// ProximalLoss returns λ/2·‖w−anchor‖², the penalty value itself, for
// logging the full surrogate objective h_k.
func ProximalLoss(w, anchor []float64, lambda float64) float64 {
	if lambda == 0 {
		return 0
	}
	return lambda / 2 * tensor.SqDist(w, anchor)
}
