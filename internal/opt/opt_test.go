package opt

import (
	"math"
	"testing"
	"testing/quick"
)

// quadGrad returns the gradient of f(w) = Σ (w_i - target_i)².
func quadGrad(w, target []float64) []float64 {
	g := make([]float64, len(w))
	for i := range w {
		g[i] = 2 * (w[i] - target[i])
	}
	return g
}

func runToConvergence(t *testing.T, o Optimizer, steps int) []float64 {
	t.Helper()
	w := []float64{5, -3, 0.5}
	target := []float64{1, 2, -1}
	for i := 0; i < steps; i++ {
		o.Step(w, quadGrad(w, target))
	}
	for i := range w {
		if math.Abs(w[i]-target[i]) > 0.05 {
			t.Fatalf("optimizer did not converge: w=%v target=%v", w, target)
		}
	}
	return w
}

func TestSGDConverges(t *testing.T)         { runToConvergence(t, NewSGD(0.1), 200) }
func TestSGDMomentumConverges(t *testing.T) { runToConvergence(t, NewSGDMomentum(0.05, 0.9), 300) }
func TestAdamConverges(t *testing.T)        { runToConvergence(t, NewAdam(0.1), 400) }

func TestSGDStepDirection(t *testing.T) {
	w := []float64{1}
	NewSGD(0.5).Step(w, []float64{2})
	if w[0] != 0 {
		t.Fatalf("SGD step wrong: %v", w[0])
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction the first Adam step has magnitude ≈ LR
	// regardless of gradient scale.
	for _, scale := range []float64{1e-4, 1, 1e4} {
		a := NewAdam(0.01)
		w := []float64{0}
		a.Step(w, []float64{scale})
		if math.Abs(math.Abs(w[0])-0.01) > 1e-3 {
			t.Fatalf("first Adam step %v for gradient %v, want ~0.01", w[0], scale)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	// Reset keeps the state buffers (zero-alloc across rounds) but the
	// numeric state must be bit-identical to a fresh optimizer's.
	a := NewAdam(0.1)
	w := []float64{1, 1}
	a.Step(w, []float64{1, 1})
	a.Reset()
	if a.t != 0 {
		t.Fatal("Adam Reset incomplete")
	}
	for i := range a.m {
		if a.m[i] != 0 || a.v[i] != 0 {
			t.Fatal("Adam Reset left nonzero moment state")
		}
	}
	wReset := []float64{1, 1}
	a.Step(wReset, []float64{1, 1})
	wFresh := []float64{1, 1}
	NewAdam(0.1).Step(wFresh, []float64{1, 1})
	if wReset[0] != wFresh[0] || wReset[1] != wFresh[1] {
		t.Fatalf("Adam after Reset diverges from fresh: %v vs %v", wReset, wFresh)
	}

	s := NewSGDMomentum(0.1, 0.9)
	s.Step(w, []float64{1, 1})
	s.Reset()
	for i := range s.vel {
		if s.vel[i] != 0 {
			t.Fatal("SGD Reset left nonzero velocity")
		}
	}
}

func TestAddProximalGradient(t *testing.T) {
	g := []float64{0, 0}
	w := []float64{3, 1}
	anchor := []float64{1, 1}
	AddProximal(g, w, anchor, 0.4)
	if math.Abs(g[0]-0.8) > 1e-12 || g[1] != 0 {
		t.Fatalf("proximal gradient wrong: %v", g)
	}
}

func TestAddProximalZeroLambdaNoop(t *testing.T) {
	g := []float64{1, 2}
	AddProximal(g, []float64{9, 9}, []float64{0, 0}, 0)
	if g[0] != 1 || g[1] != 2 {
		t.Fatal("λ=0 modified gradients")
	}
}

func TestProximalLossMatchesGradient(t *testing.T) {
	// Property: the analytic proximal gradient matches finite differences
	// of ProximalLoss.
	f := func(wv, av float64) bool {
		if math.IsNaN(wv) || math.IsInf(wv, 0) || math.Abs(wv) > 1e6 {
			wv = 1
		}
		if math.IsNaN(av) || math.IsInf(av, 0) || math.Abs(av) > 1e6 {
			av = 0
		}
		lambda := 0.4
		w := []float64{wv}
		anchor := []float64{av}
		g := []float64{0}
		AddProximal(g, w, anchor, lambda)
		eps := 1e-6 * (1 + math.Abs(wv))
		lp := ProximalLoss([]float64{wv + eps}, anchor, lambda)
		lm := ProximalLoss([]float64{wv - eps}, anchor, lambda)
		numeric := (lp - lm) / (2 * eps)
		return math.Abs(numeric-g[0]) <= 1e-4*(1+math.Abs(g[0]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProximalPullsTowardAnchor(t *testing.T) {
	// Minimizing only the proximal term should drive w to the anchor.
	w := []float64{10, -10}
	anchor := []float64{2, 3}
	s := NewSGD(0.5)
	g := make([]float64, 2)
	for i := 0; i < 100; i++ {
		g[0], g[1] = 0, 0
		AddProximal(g, w, anchor, 1.0)
		s.Step(w, g)
	}
	if math.Abs(w[0]-2) > 1e-6 || math.Abs(w[1]-3) > 1e-6 {
		t.Fatalf("proximal descent did not reach anchor: %v", w)
	}
}

func TestStepLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewSGD(0.1).Step([]float64{1}, []float64{1, 2})
}
