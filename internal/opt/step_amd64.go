//go:build amd64

package opt

// adamConsts carries the per-step scalars into the assembly kernel. Field
// order is load-bearing: step_amd64.s reads them by byte offset.
type adamConsts struct {
	b1, b2, u1, u2, c1, c2, lr, eps float64
}

// adamStepAsm is the SSE2 two-wide Adam update in step_amd64.s. It applies
// exactly the per-element operation sequence of adamStepGo; packed IEEE
// ops are correctly rounded per lane, so results are bit-identical
// (TestAdamStepAsmMatchesGo pins this).
//
//go:noescape
func adamStepAsm(w, grad, m, v *float64, n int, c *adamConsts)

func adamStep(w, g, m, v []float64, c *adamConsts) {
	if len(w) == 0 {
		return
	}
	adamStepAsm(&w[0], &g[0], &m[0], &v[0], len(w), c)
}
