// SSE2 two-wide Adam inner loop. Bit-exactness contract: every lane applies
// the same IEEE-754 operations in the same order as the scalar Go loop in
// adamStepGo — MULPD/ADDPD/DIVPD/SQRTPD are correctly rounded per lane, and
// elements are independent, so the packed update is bit-identical to the
// scalar one. No FMA is used anywhere (fused rounding would diverge).

//go:build amd64

#include "textflag.h"

// func adamStepAsm(w, grad, m, v *float64, n int, c *adamConsts)
TEXT ·adamStepAsm(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ c+40(FP), DX

	// Broadcast the eight per-step constants into both lanes of X8..X15.
	MOVSD    0(DX), X8  // b1
	UNPCKLPD X8, X8
	MOVSD    8(DX), X9  // b2
	UNPCKLPD X9, X9
	MOVSD    16(DX), X10 // u1
	UNPCKLPD X10, X10
	MOVSD    24(DX), X11 // u2
	UNPCKLPD X11, X11
	MOVSD    32(DX), X12 // c1
	UNPCKLPD X12, X12
	MOVSD    40(DX), X13 // c2
	UNPCKLPD X13, X13
	MOVSD    48(DX), X14 // lr
	UNPCKLPD X14, X14
	MOVSD    56(DX), X15 // eps
	UNPCKLPD X15, X15

pair:
	CMPQ CX, $2
	JLT  tail

	MOVUPD (SI), X0 // g
	MOVUPD (R8), X1 // m
	MOVUPD (R9), X2 // v

	// m' = b1*m + u1*g
	MULPD  X8, X1  // b1*m
	MOVAPD X0, X3
	MULPD  X10, X3 // u1*g
	ADDPD  X3, X1  // m'
	MOVUPD X1, (R8)

	// v' = b2*v + (u2*g)*g   (left-associated, as the Go source writes it)
	MULPD  X9, X2  // b2*v
	MOVAPD X0, X4
	MULPD  X11, X4 // u2*g
	MULPD  X0, X4  // (u2*g)*g
	ADDPD  X4, X2  // v'
	MOVUPD X2, (R9)

	// w -= lr*(m'/c1) / (sqrt(v'/c2) + eps)
	DIVPD  X12, X1 // mh = m'/c1
	DIVPD  X13, X2 // vh = v'/c2
	SQRTPD X2, X2
	ADDPD  X15, X2 // sqrt(vh) + eps
	MULPD  X14, X1 // lr*mh
	DIVPD  X2, X1
	MOVUPD (DI), X5
	SUBPD  X1, X5
	MOVUPD X5, (DI)

	ADDQ $16, SI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, DI
	SUBQ $2, CX
	JMP  pair

tail:
	CMPQ CX, $1
	JLT  done

	MOVSD (SI), X0
	MOVSD (R8), X1
	MOVSD (R9), X2

	MULSD  X8, X1
	MOVAPD X0, X3
	MULSD  X10, X3
	ADDSD  X3, X1
	MOVSD  X1, (R8)

	MULSD  X9, X2
	MOVAPD X0, X4
	MULSD  X11, X4
	MULSD  X0, X4
	ADDSD  X4, X2
	MOVSD  X2, (R9)

	DIVSD  X12, X1
	DIVSD  X13, X2
	SQRTSD X2, X2
	ADDSD  X15, X2
	MULSD  X14, X1
	DIVSD  X2, X1
	MOVSD  (DI), X5
	SUBSD  X1, X5
	MOVSD  X5, (DI)

done:
	RET
