//go:build !amd64

package opt

// adamConsts carries the per-step scalars shared with the amd64 kernel.
type adamConsts struct {
	b1, b2, u1, u2, c1, c2, lr, eps float64
}

func adamStep(w, g, m, v []float64, c *adamConsts) {
	adamStepGo(w, g, m, v, c)
}
