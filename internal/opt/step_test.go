package opt

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randAdamState(seed uint64, n int) (w, g, m, v []float64) {
	r := rng.New(seed)
	w = make([]float64, n)
	g = make([]float64, n)
	m = make([]float64, n)
	v = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = r.Norm()
		g[i] = r.Norm()
		m[i] = r.Norm() * 0.1
		v[i] = math.Abs(r.Norm()) * 0.01
	}
	return
}

// TestAdamStepAsmMatchesGo pins the platform kernel to the scalar
// reference bit for bit across lengths (both lanes of the pair loop plus
// the odd-element tail) and across step counts (changing bias correction).
func TestAdamStepAsmMatchesGo(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 101, 1786} {
		for step := 1; step <= 3; step++ {
			c := adamConsts{
				b1: 0.9, b2: 0.999,
				u1: 0.1, u2: 0.001,
				c1: 1 - math.Pow(0.9, float64(step)),
				c2: 1 - math.Pow(0.999, float64(step)),
				lr: 0.005, eps: 1e-8,
			}
			w1, g1, m1, v1 := randAdamState(uint64(n*10+step), n)
			w2 := append([]float64(nil), w1...)
			g2 := append([]float64(nil), g1...)
			m2 := append([]float64(nil), m1...)
			v2 := append([]float64(nil), v1...)

			adamStep(w1, g1, m1, v1, &c)
			adamStepGo(w2, g2, m2, v2, &c)

			for i := 0; i < n; i++ {
				if math.Float64bits(w1[i]) != math.Float64bits(w2[i]) ||
					math.Float64bits(m1[i]) != math.Float64bits(m2[i]) ||
					math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
					t.Fatalf("n=%d step=%d i=%d: kernel diverges from scalar reference: w %v vs %v, m %v vs %v, v %v vs %v",
						n, step, i, w1[i], w2[i], m1[i], m2[i], v1[i], v2[i])
				}
			}
		}
	}
}

// FuzzAdamStep drives the platform kernel against the scalar reference
// with fuzzer-chosen values, including non-finite ones: the two must agree
// bit for bit everywhere, NaNs included.
func FuzzAdamStep(f *testing.F) {
	f.Add(uint64(1), 5, 0.5, 1e-3)
	f.Add(uint64(42), 17, -2.0, 0.0)
	f.Add(uint64(7), 2, math.Inf(1), 1e9)
	f.Fuzz(func(t *testing.T, seed uint64, n int, scale, inject float64) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		c := adamConsts{
			b1: 0.9, b2: 0.999, u1: 0.1, u2: 0.001,
			c1: 1 - 0.9, c2: 1 - 0.999, lr: 0.005, eps: 1e-8,
		}
		w1, g1, m1, v1 := randAdamState(seed, n)
		for i := range g1 {
			g1[i] *= scale
		}
		if n > 0 {
			g1[seedIndex(seed, n)] = inject
		}
		w2 := append([]float64(nil), w1...)
		g2 := append([]float64(nil), g1...)
		m2 := append([]float64(nil), m1...)
		v2 := append([]float64(nil), v1...)

		adamStep(w1, g1, m1, v1, &c)
		adamStepGo(w2, g2, m2, v2, &c)

		for i := 0; i < n; i++ {
			if math.Float64bits(w1[i]) != math.Float64bits(w2[i]) ||
				math.Float64bits(m1[i]) != math.Float64bits(m2[i]) ||
				math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
				t.Fatalf("i=%d: kernel diverges from scalar reference (w %x vs %x)",
					i, math.Float64bits(w1[i]), math.Float64bits(w2[i]))
			}
		}
	})
}

func seedIndex(seed uint64, n int) int { return int(seed % uint64(n)) }

func BenchmarkAdamStep(b *testing.B) {
	w, g, m, v := randAdamState(3, 1786)
	c := adamConsts{b1: 0.9, b2: 0.999, u1: 0.1, u2: 0.001, c1: 0.1, c2: 0.001, lr: 0.005, eps: 1e-8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adamStep(w, g, m, v, &c)
	}
}

func BenchmarkAdamStepGo(b *testing.B) {
	w, g, m, v := randAdamState(3, 1786)
	c := adamConsts{b1: 0.9, b2: 0.999, u1: 0.1, u2: 0.001, c1: 0.1, c2: 0.001, lr: 0.005, eps: 1e-8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adamStepGo(w, g, m, v, &c)
	}
}
