// Package parallel provides the small set of fork-join helpers used by the
// tensor kernels, the client trainers, the evaluation harness and the
// experiment scheduler.
//
// All helpers are deterministic with respect to the result: workers write to
// disjoint index ranges, so the outcome never depends on scheduling. That
// property is what lets the experiment harness train many federated clients
// concurrently while staying bit-reproducible. Callers uphold their half of
// the contract by giving each index its own state — in this repo every
// federated client owns a private model replica, optimizer and labeled RNG
// stream (see fl.Client), and every experiment scheduler cell builds a
// fresh Env — so body(i) and body(j) never race and results are identical
// to a serial loop. DESIGN.md §2 documents the full determinism contract.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps worker counts; GOMAXPROCS already reflects the machine,
// the cap only guards against pathological explicit requests.
const maxWorkers = 1024

// Workers returns the effective worker count for a job of size n: at most
// GOMAXPROCS, at most n, and at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// For runs body(i) for every i in [0, n), splitting the range over workers.
// body must only touch state owned by index i. Small n short-circuits to a
// serial loop to avoid goroutine overhead.
func For(n int, body func(i int)) {
	ForWorkers(n, Workers(n), body)
}

// ForWorkers is For with an explicit worker count (used by benchmarks and
// by callers that know the per-item cost is tiny).
func ForWorkers(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	// Contiguous chunks rather than striding: better cache behaviour for
	// the dense kernels that dominate this repo's CPU time.
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Dynamic runs body(i) for every i in [0, n) over workers goroutines with
// dynamic (atomic next-index) dispatch. ForWorkers' contiguous chunking is
// a cache optimization for tiny dense-kernel bodies; when per-item cost
// varies wildly — the experiment scheduler's heterogeneous simulation
// cells, whole experiments — static chunks let one unlucky worker
// serialize the expensive items while the rest idle. Dynamic keeps every
// worker busy until the batch drains. The determinism contract is the same
// as For's: body must only touch state owned by index i.
func Dynamic(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked runs body(lo, hi) over contiguous chunks covering [0, n).
// Useful when the body wants to amortize per-call setup across a range.
func ForChunked(n int, body func(lo, hi int)) {
	workers := Workers(n)
	if n <= 0 {
		return
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			wg.Done()
			continue
		}
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce applies body(i) for i in [0, n) and combines the per-worker
// partial results with combine. body returns a partial value that combine
// folds; combine must be associative and commutative. The zero value of T
// must be the identity for combine.
func MapReduce[T any](n int, body func(i int) T, combine func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	workers := Workers(n)
	if workers <= 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = combine(acc, body(i))
		}
		return acc
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := zero
			for i := lo; i < hi; i++ {
				acc = combine(acc, body(i))
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}
