package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForWorkersSerialEqualsParallel(t *testing.T) {
	n := 513
	serial := make([]int, n)
	ForWorkers(n, 1, func(i int) { serial[i] = i * i })
	par := make([]int, n)
	ForWorkers(n, 8, func(i int) { par[i] = i * i })
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestDynamicCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 3, 8, 2000} {
			seen := make([]int32, n)
			Dynamic(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForChunkedCoverage(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw % 2048)
		seen := make([]int32, n)
		ForChunked(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceSum(t *testing.T) {
	n := 10000
	got := MapReduce(n, func(i int) int64 { return int64(i) }, func(a, b int64) int64 { return a + b })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("MapReduce sum = %d, want %d", got, want)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, func(i int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("MapReduce over empty range = %d, want 0", got)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(big) = %d", w)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(64, func(int) {})
	}
}
