package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/util"
)

// WriteCSV emits the table as CSV: the header row then one row per data
// row, using each cell's exact text rendering.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("report: write table csv header: %w", err)
	}
	for _, row := range t.Rows {
		rec := make([]string, len(row))
		for i, c := range row {
			rec[i] = c.Text
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: write table csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the series as two-column CSV. Values use the shortest
// round-trip float formatting, so parsing the file back yields the exact
// points.
func (s Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{s.X, s.Y}); err != nil {
		return fmt.Errorf("report: write series csv header: %w", err)
	}
	for _, p := range s.Pts {
		rec := []string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: write series csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseSeriesCSV reads back a series written by Series.WriteCSV.
func ParseSeriesCSV(r io.Reader) (Series, error) {
	recs, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return Series{}, fmt.Errorf("report: parse series csv: %w", err)
	}
	if len(recs) == 0 || len(recs[0]) != 2 {
		return Series{}, fmt.Errorf("report: series csv missing x,y header")
	}
	s := Series{X: recs[0][0], Y: recs[0][1]}
	for _, rec := range recs[1:] {
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return Series{}, fmt.Errorf("report: series csv x %q: %w", rec[0], err)
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return Series{}, fmt.Errorf("report: series csv y %q: %w", rec[1], err)
		}
		s.Pts = append(s.Pts, XY{X: x, Y: y})
	}
	return s, nil
}

// WriteRunCSV emits a run's evaluation points as CSV (one row per point),
// the format the plotting scripts and spreadsheet users consume. Columns:
// round, time_s, up_bytes, down_bytes, acc, loss, var.
func WriteRunCSV(w io.Writer, r *metrics.Run) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "time_s", "up_bytes", "down_bytes", "acc", "loss", "var"}); err != nil {
		return fmt.Errorf("report: write run csv header: %w", err)
	}
	for _, p := range r.Points {
		row := []string{
			fmt.Sprint(p.Round),
			fmt.Sprintf("%.3f", p.Time),
			fmt.Sprint(p.UpBytes),
			fmt.Sprint(p.DownBytes),
			fmt.Sprintf("%.6f", p.Acc),
			fmt.Sprintf("%.6f", p.Loss),
			fmt.Sprintf("%.8f", p.Var),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write run csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flush run csv: %w", err)
	}
	return nil
}

// WriteCSVDir writes the report's machine-readable pieces into dir — one
// file per table artifact, one per series artifact, and one full
// evaluation dump per kept run (via WriteRunCSV) — and returns the
// file names written, in order.
func WriteCSVDir(dir string, r *Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	emit := func(name string, write func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}
	nTables, nSeries := 0, 0
	for _, a := range r.Artifacts {
		switch art := a.(type) {
		case *Table:
			nTables++
			name := fmt.Sprintf("%s__table%02d_%s.csv", r.ID, nTables, Slug(art.Caption))
			if err := emit(name, art.WriteCSV); err != nil {
				return written, err
			}
		case Series:
			nSeries++
			name := fmt.Sprintf("%s__series%02d_%s.csv", r.ID, nSeries, Slug(art.Name))
			if err := emit(name, art.WriteCSV); err != nil {
				return written, err
			}
		}
	}
	for _, key := range util.SortedKeys(r.Runs) {
		run := r.Runs[key]
		name := fmt.Sprintf("%s__run_%s.csv", r.ID, Slug(key))
		if err := emit(name, func(w io.Writer) error { return WriteRunCSV(w, run) }); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Slug maps an artifact caption or run key to a filesystem-safe token:
// alphanumerics, '.', '-' and '_' pass through, everything else becomes
// '_'. Long slugs are truncated so paths stay manageable.
func Slug(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	const maxLen = 80
	if len(out) > maxLen {
		out = out[:maxLen]
	}
	return string(out)
}
