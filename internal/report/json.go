package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/util"
)

// SchemaVersion identifies the JSON layout; bump on breaking changes so
// downstream consumers (BENCH trajectories, regression gates, plotting)
// can detect schema rot instead of misparsing.
const SchemaVersion = 1

// Envelope is the root JSON document: one or more reports plus the run
// metadata shared by all of them.
type Envelope struct {
	SchemaVersion int            `json:"schema_version"`
	Generator     string         `json:"generator"`
	Preset        string         `json:"preset"`
	Seed          uint64         `json:"seed"`
	Reports       []*Report      `json:"reports"`
	Scheduler     *SchedulerMeta `json:"scheduler,omitempty"`
}

// SchedulerMeta is the experiment scheduler's account of the run: how many
// simulations executed, how many cell requests the cache absorbed, and the
// per-cell record. Hit counts are request-level: an experiment that
// prefetches its whole grid and then collects per spec re-requests its own
// cells, so cache_hits bounds cross-experiment sharing from above rather
// than measuring it exactly.
type SchedulerMeta struct {
	Simulations int64      `json:"simulations"`
	CacheHits   int64      `json:"cache_hits"`
	Cells       []CellMeta `json:"cells"`
}

// CellMeta describes one scheduler cell: its cache key, the wall-clock its
// one simulation took, and how many later requests (including the owning
// experiment's own re-requests) were served from the result.
type CellMeta struct {
	Key   string  `json:"key"`
	SimMS float64 `json:"sim_ms"`
	Hits  int64   `json:"hits"`
}

// WriteJSON writes the envelope as indented JSON. Output is deterministic
// up to the timing fields (wall_ms, sim_ms): every map is serialized
// through a sorted-key traversal, so two runs of the same experiments
// differ only in those fields — strip them before byte-diffing documents.
func WriteJSON(w io.Writer, env *Envelope) error {
	env.SchemaVersion = SchemaVersion
	if env.Generator == "" {
		env.Generator = "fedsim"
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("report: encode json: %w", err)
	}
	return nil
}

// jsonReport is the serialized form of a Report.
type jsonReport struct {
	ID        string         `json:"id"`
	Title     string         `json:"title"`
	WallMS    float64        `json:"wall_ms"`
	Artifacts []jsonArtifact `json:"artifacts"`
	Runs      []jsonRun      `json:"runs"`
}

// jsonArtifact is the tagged-union serialization of one artifact; only the
// fields of the artifact's kind are populated.
type jsonArtifact struct {
	Kind    string       `json:"kind"`
	Caption string       `json:"caption,omitempty"`
	Header  []string     `json:"header,omitempty"`
	Rows    [][]jsonCell `json:"rows,omitempty"`
	Name    string       `json:"name,omitempty"`
	X       string       `json:"x,omitempty"`
	Y       string       `json:"y,omitempty"`
	Points  [][2]float64 `json:"points,omitempty"`
	Value   *float64     `json:"value,omitempty"`
	Unit    string       `json:"unit,omitempty"`
	Text    string       `json:"text,omitempty"`
}

type jsonCell struct {
	Text  string   `json:"text"`
	Value *float64 `json:"value,omitempty"`
}

// jsonRun is the serialized form of one kept run record: headline numbers
// plus the standard derived series.
type jsonRun struct {
	Key          string  `json:"key"`
	Method       string  `json:"method"`
	Dataset      string  `json:"dataset"`
	GlobalRounds int     `json:"global_rounds"`
	UpBytes      int64   `json:"up_bytes"`
	DownBytes    int64   `json:"down_bytes"`
	BestAcc      float64 `json:"best_acc"`
	FinalAcc     float64 `json:"final_acc"`
	// Runtime re-tiering activity (0/absent for static-tier runs).
	Retiers        int `json:"retiers,omitempty"`
	TierMigrations int `json:"tier_migrations,omitempty"`
	// Hierarchical edge→cloud fold activity (0/absent for flat runs).
	EdgeFolds     int      `json:"edge_folds,omitempty"`
	EdgeStaleness float64  `json:"edge_staleness,omitempty"`
	Series        []Series `json:"series"`
}

// MarshalJSON serializes the report with artifacts as a tagged union and
// kept runs (sorted by key) expanded into their standard series.
func (r *Report) MarshalJSON() ([]byte, error) {
	jr := jsonReport{
		ID:        r.ID,
		Title:     r.Title,
		WallMS:    r.WallMS,
		Artifacts: make([]jsonArtifact, 0, len(r.Artifacts)),
		Runs:      make([]jsonRun, 0, len(r.Runs)),
	}
	for _, a := range r.Artifacts {
		jr.Artifacts = append(jr.Artifacts, a.json().(jsonArtifact))
	}
	for _, key := range util.SortedKeys(r.Runs) {
		jr.Runs = append(jr.Runs, runJSON(key, r.Runs[key]))
	}
	return json.Marshal(jr)
}

func runJSON(key string, run *metrics.Run) jsonRun {
	return jsonRun{
		Key:            key,
		Method:         run.Method,
		Dataset:        run.Dataset,
		GlobalRounds:   run.GlobalRounds,
		UpBytes:        run.UpBytes,
		DownBytes:      run.DownBytes,
		BestAcc:        run.BestAcc(),
		FinalAcc:       run.FinalAcc(),
		Retiers:        run.Retiers,
		TierMigrations: run.TierMigrations,
		EdgeFolds:      run.EdgeFolds,
		EdgeStaleness:  run.EdgeStaleness,
		Series:         SeriesFromRun(key, run),
	}
}

// MarshalJSON serializes a series with points as [x, y] pairs, through the
// same conversion artifact-level series use.
func (s Series) MarshalJSON() ([]byte, error) { return json.Marshal(s.json()) }

func (t *Table) json() any {
	rows := make([][]jsonCell, len(t.Rows))
	for i, row := range t.Rows {
		rows[i] = make([]jsonCell, len(row))
		for j, c := range row {
			rows[i][j] = jsonCell{Text: c.Text, Value: c.Value}
		}
	}
	return jsonArtifact{Kind: "table", Caption: t.Caption, Header: t.Header, Rows: rows}
}

func (s Series) json() any {
	pts := make([][2]float64, len(s.Pts))
	for i, p := range s.Pts {
		pts[i] = [2]float64{p.X, p.Y}
	}
	return jsonArtifact{Kind: "series", Name: s.Name, X: s.X, Y: s.Y, Points: pts}
}

func (s Scalar) json() any {
	v := s.Value
	return jsonArtifact{Kind: "scalar", Name: s.Name, Value: &v, Unit: s.Unit}
}

func (n Note) json() any { return jsonArtifact{Kind: "note", Text: n.Text} }
