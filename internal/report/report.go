// Package report is the typed artifact model behind every experiment
// output. Experiments used to render themselves straight into []string
// sections, which made the terminal the only consumer the system could
// serve; they now emit structured artifacts — Table, Series, Scalar, Note
// — and pluggable renderers turn one Report into any consumer's format:
//
//   - Text reproduces the human-readable report (byte-identical to the
//     pre-artifact-model output, pinned by golden tests in
//     internal/experiments/testdata),
//   - JSON emits a stable machine-readable schema with run metadata
//     (preset, seed, wall-clock, scheduler cell timings/hits),
//   - CSV writes one file per table and series for plotting and diffing.
//
// Artifacts own their spacing: each one's text form is a self-contained
// block (ending in exactly one blank line) or empty, so renderers never
// patch newlines after the fact and rendering is idempotent.
package report

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Report is the structured output of one experiment.
type Report struct {
	ID    string
	Title string
	// Artifacts are rendered in order.
	Artifacts []Artifact
	// Runs keeps the raw run records for programmatic consumers (plots,
	// JSON/CSV series emission, assertions in tests).
	Runs map[string]*metrics.Run
	// WallMS is the experiment's wall-clock in milliseconds, stamped by
	// the caller that timed it (cmd/fedsim); 0 when untimed.
	WallMS float64
}

// New creates an empty report.
func New(id, title string) *Report { return &Report{ID: id, Title: title} }

// Artifact is one typed element of a report. Its text form is either a
// self-contained block ending in exactly one blank line, or "" for
// data-only artifacts (Series, Scalar) that exist for the machine-readable
// renderers.
type Artifact interface {
	text() string
	json() any
}

// Add appends any artifact.
func (r *Report) Add(a Artifact) { r.Artifacts = append(r.Artifacts, a) }

// AddTable appends a table artifact.
func (r *Report) AddTable(t *Table) { r.Add(t) }

// AddNote appends a free-form human-readable note.
func (r *Report) AddNote(text string) { r.Add(Note{Text: text}) }

// AddScalar appends a named machine-readable value (data-only: scalars
// appear in JSON, not in the text report).
func (r *Report) AddScalar(name string, value float64, unit string) {
	r.Add(Scalar{Name: name, Value: value, Unit: unit})
}

// AddSeries appends an x/y series (data-only: series feed the JSON and CSV
// renderers, the text report keeps its sampled timeline tables).
func (r *Report) AddSeries(s Series) { r.Add(s) }

// Keep stores a run record under a key.
func (r *Report) Keep(key string, run *metrics.Run) {
	if r.Runs == nil {
		r.Runs = map[string]*metrics.Run{}
	}
	r.Runs[key] = run
}

// Cell is one typed table cell: the exact text rendering plus, when the
// cell is numeric at heart, the unformatted value for machine consumers.
type Cell struct {
	Text  string
	Value *float64
}

// Str builds a text-only cell.
func Str(s string) Cell { return Cell{Text: s} }

// Num builds a cell whose text rendering is backed by a numeric value.
func Num(v float64, text string) Cell { return Cell{Text: text, Value: &v} }

// Numf is Num with the text produced by a fmt verb applied to v.
func Numf(format string, v float64) Cell { return Num(v, fmt.Sprintf(format, v)) }

// Table is a captioned grid of typed cells.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]Cell
}

// NewTable creates a table with a caption and column headers.
func NewTable(caption string, header ...string) *Table {
	return &Table{Caption: caption, Header: header}
}

// AddRow appends a row; short rows are padded to the header width and long
// rows truncated to it.
func (t *Table) AddRow(cells ...Cell) {
	row := make([]Cell, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Series is a machine-readable x/y curve, e.g. an accuracy-vs-time or
// accuracy-vs-bytes timeline. Data-only: the text renderer skips it.
type Series struct {
	Name string // e.g. "cifar10(#2)/fedat/acc_vs_time"
	X, Y string // axis labels, e.g. "time_s", "acc"
	Pts  []XY
}

// XY is one series point.
type XY struct {
	X, Y float64
}

// Scalar is a single named machine-readable value. Data-only: the text
// renderer skips it.
type Scalar struct {
	Name  string
	Value float64
	Unit  string
}

// Note is a free-form human-readable block.
type Note struct {
	Text string
}

// text renders the table as a self-contained block: "## caption", a blank
// line, the fixed-width grid, and a trailing blank line.
func (t *Table) text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	writeRow := func(texts func(i int) string) {
		for i := range t.Header {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], texts(i))
		}
		b.WriteByte('\n')
	}
	writeRow(func(i int) string { return t.Header[i] })
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		row := row
		writeRow(func(i int) string { return row[i].Text })
	}
	b.WriteByte('\n')
	return b.String()
}

// text renders the note followed by one blank line; trailing newlines in
// the note itself are normalized away so the artifact owns its spacing.
func (n Note) text() string { return strings.TrimRight(n.Text, "\n") + "\n\n" }

func (s Series) text() string { return "" }
func (s Scalar) text() string { return "" }
