package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func sampleRun() *metrics.Run {
	r := &metrics.Run{Method: "fedat", Dataset: "cifar10like"}
	accs := []float64{0.1, 0.2, 0.35, 0.5, 0.48, 0.6}
	for i, a := range accs {
		r.Add(metrics.Point{
			Round: i, Time: float64(i) * 10.5,
			UpBytes: int64(i) * 100, DownBytes: int64(i) * 50,
			Acc: a, Loss: 1 - a, Var: 0.01 * float64(i+1),
		})
	}
	r.UpBytes, r.DownBytes, r.GlobalRounds = 500, 250, 6
	return r
}

// sampleReport exercises every artifact kind.
func sampleReport() *Report {
	rep := New("demo", "Artifact model demo")
	tb := NewTable("Best accuracy", "method", "acc", "note")
	tb.AddRow(Str("FedAT"), Numf("%.3f", 0.591), Str("winner"))
	tb.AddRow(Str("FedAvg"), Numf("%.3f", 0.547)) // short row: padded
	rep.AddTable(tb)
	rep.AddSeries(Series{Name: "fedat/acc_vs_time", X: "time_s", Y: "acc",
		Pts: []XY{{0, 0.1}, {10.5, 0.2}, {21, 0.35}}})
	rep.AddScalar("target_acc", 0.532, "fraction")
	rep.AddNote("Paper shape: FedAT wins.")
	rep.Keep("cifar10(#2)/fedat", sampleRun())
	return rep
}

func TestTextGrid(t *testing.T) {
	tb := NewTable("Best accuracy", "method", "acc")
	tb.AddRow(Str("FedAT"), Numf("%.3f", 0.591))
	tb.AddRow(Str("FedAvg"), Numf("%.3f", 0.547))
	rep := New("demo", "Grid")
	rep.AddTable(tb)
	want := "# demo — Grid\n\n" +
		"## Best accuracy\n\n" +
		"method  acc  \n" +
		"------  -----\n" +
		"FedAT   0.591\n" +
		"FedAvg  0.547\n\n"
	if got := Text(rep); got != want {
		t.Fatalf("text grid mismatch:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

func TestDataOnlyArtifactsInvisibleInText(t *testing.T) {
	rep := New("demo", "Data only")
	base := Text(rep)
	rep.AddSeries(Series{Name: "s", X: "x", Y: "y", Pts: []XY{{1, 2}}})
	rep.AddScalar("v", 1.5, "")
	if got := Text(rep); got != base {
		t.Fatalf("series/scalar artifacts leaked into text output:\n%q", got)
	}
}

func TestNoteOwnsSpacing(t *testing.T) {
	rep := New("demo", "Spacing")
	rep.AddNote("no trailing newline")
	rep.AddNote("trailing newline\n")
	s := Text(rep)
	if strings.Contains(s, "\n\n\n") {
		t.Fatalf("note spacing not normalized:\n%q", s)
	}
	if !strings.HasSuffix(s, "trailing newline\n\n") {
		t.Fatalf("note missing its blank line:\n%q", s)
	}
}

// TestRendererIdempotence renders every format twice and demands identical
// bytes: renderers must not mutate the report.
func TestRendererIdempotence(t *testing.T) {
	rep := sampleReport()
	if a, b := Text(rep), Text(rep); a != b {
		t.Fatal("text renderer not idempotent")
	}
	render := func() []byte {
		var buf bytes.Buffer
		env := &Envelope{Preset: "tiny", Seed: 42, Reports: []*Report{rep}}
		if err := WriteJSON(&buf, env); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("json renderer not idempotent")
	}
}

func TestJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	rep := sampleReport()
	rep.WallMS = 12.5
	env := &Envelope{
		Preset: "tiny", Seed: 42,
		Reports: []*Report{rep},
		Scheduler: &SchedulerMeta{
			Simulations: 3, CacheHits: 2,
			Cells: []CellMeta{{Key: "tiny|cifar10(#2)|false|fedat|", SimMS: 100, Hits: 2}},
		},
	}
	if err := WriteJSON(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid json:\n%s", buf.String())
	}
	var doc struct {
		SchemaVersion int    `json:"schema_version"`
		Preset        string `json:"preset"`
		Seed          uint64 `json:"seed"`
		Reports       []struct {
			ID        string           `json:"id"`
			WallMS    float64          `json:"wall_ms"`
			Artifacts []map[string]any `json:"artifacts"`
			Runs      []struct {
				Key    string `json:"key"`
				Series []struct {
					Name   string       `json:"name"`
					Points [][2]float64 `json:"points"`
				} `json:"series"`
			} `json:"runs"`
		} `json:"reports"`
		Scheduler struct {
			Simulations int64 `json:"simulations"`
			Cells       []struct {
				Key string `json:"key"`
			} `json:"cells"`
		} `json:"scheduler"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != SchemaVersion || doc.Preset != "tiny" || doc.Seed != 42 {
		t.Fatalf("envelope metadata wrong: %+v", doc)
	}
	r := doc.Reports[0]
	if r.ID != "demo" || r.WallMS != 12.5 {
		t.Fatalf("report metadata wrong: %+v", r)
	}
	kinds := map[string]int{}
	for _, a := range r.Artifacts {
		kinds[a["kind"].(string)]++
	}
	if kinds["table"] != 1 || kinds["series"] != 1 || kinds["scalar"] != 1 || kinds["note"] != 1 {
		t.Fatalf("artifact kinds wrong: %v", kinds)
	}
	if len(r.Runs) != 1 || r.Runs[0].Key != "cifar10(#2)/fedat" {
		t.Fatalf("runs wrong: %+v", r.Runs)
	}
	// Every kept run expands into the three standard series.
	if len(r.Runs[0].Series) != 3 || len(r.Runs[0].Series[0].Points) != 6 {
		t.Fatalf("derived series wrong: %+v", r.Runs[0].Series)
	}
	if doc.Scheduler.Simulations != 3 || len(doc.Scheduler.Cells) != 1 {
		t.Fatalf("scheduler meta wrong: %+v", doc.Scheduler)
	}
}

// TestTableCellValues checks typed cells carry their numeric value into
// JSON while keeping the exact text.
func TestTableCellValues(t *testing.T) {
	tb := NewTable("c", "method", "acc")
	tb.AddRow(Str("FedAT"), Num(0.5912, "0.591"))
	raw, err := json.Marshal(tb.json())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"text":"0.591"`, `"value":0.5912`, `"text":"FedAT"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("table json missing %s:\n%s", want, s)
		}
	}
	if strings.Contains(s, `"FedAT","value"`) {
		t.Fatalf("text-only cell grew a value:\n%s", s)
	}
}

// TestWriteRunCSV pins the per-run evaluation dump format (migrated from
// the deleted internal/metrics CSV writer, byte-for-byte).
func TestWriteRunCSV(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := WriteRunCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(r.Points)+1 {
		t.Fatalf("run csv has %d rows, want %d", len(lines), len(r.Points)+1)
	}
	if lines[0] != "round,time_s,up_bytes,down_bytes,acc,loss,var" {
		t.Fatalf("run csv header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0.000,0,0,0.100000,") {
		t.Fatalf("first data row wrong: %q", lines[1])
	}
	for i, ln := range lines[1:] {
		if cells := strings.Count(ln, ",") + 1; cells != 7 {
			t.Fatalf("row %d has %d cells: %q", i, cells, ln)
		}
	}

	var empty bytes.Buffer
	if err := WriteRunCSV(&empty, &metrics.Run{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(empty.String(), "\n"); got != 1 {
		t.Fatalf("empty run csv has %d lines, want header only", got)
	}
}

// TestSeriesCSVRoundTrip is the metrics→series→csv→points loop: a run's
// derived series survive CSV emission exactly.
func TestSeriesCSVRoundTrip(t *testing.T) {
	run := sampleRun()
	for _, s := range SeriesFromRun("cifar10(#2)/fedat", run) {
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseSeriesCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.X != s.X || back.Y != s.Y {
			t.Fatalf("axis labels lost: %+v vs %+v", back, s)
		}
		if !reflect.DeepEqual(back.Pts, s.Pts) {
			t.Fatalf("series %s points changed across CSV round-trip:\n%v\n%v", s.Name, back.Pts, s.Pts)
		}
	}
}

func TestSeriesFromRunShapes(t *testing.T) {
	run := sampleRun()
	ss := SeriesFromRun("k", run)
	if len(ss) != 3 {
		t.Fatalf("got %d series, want 3", len(ss))
	}
	if ss[0].Name != "k/acc_vs_time" || ss[0].X != "time_s" || ss[0].Y != "acc" {
		t.Fatalf("acc series misnamed: %+v", ss[0])
	}
	if got := ss[2].Pts[3]; got.X != 300 || got.Y != 0.5 {
		t.Fatalf("bytes series point wrong: %+v", got)
	}
	sm := SmoothedAccSeries("k", run, 2)
	if len(sm.Pts) != 3 {
		t.Fatalf("smoothed series has %d points, want 3", len(sm.Pts))
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := t.TempDir()
	files, err := WriteCSVDir(dir, sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	// 1 table + 1 series artifact + 1 kept run.
	if len(files) != 3 {
		t.Fatalf("wrote %d files, want 3: %v", len(files), files)
	}
	for _, name := range files {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(bytes.TrimSpace(b)) == 0 {
			t.Fatalf("file %s empty", name)
		}
	}
	if files[0] != "demo__table01_Best_accuracy.csv" {
		t.Fatalf("table file name %q", files[0])
	}
}

func TestSlug(t *testing.T) {
	if got := Slug("cifar10(#2)/fedat acc=1"); got != "cifar10__2__fedat_acc_1" {
		t.Fatalf("Slug = %q", got)
	}
	long := strings.Repeat("x", 200)
	if len(Slug(long)) != 80 {
		t.Fatalf("Slug did not truncate: %d", len(Slug(long)))
	}
}
