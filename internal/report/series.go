package report

import "repro/internal/metrics"

// SeriesFromRun converts a run record into the standard machine-readable
// timelines the paper's figures are built from: accuracy vs virtual time,
// loss vs virtual time, and accuracy vs cumulative uploaded bytes. Every
// experiment's JSON/CSV output derives its curves through this one
// conversion instead of re-deriving them per experiment.
func SeriesFromRun(name string, run *metrics.Run) []Series {
	acc := Series{Name: name + "/acc_vs_time", X: "time_s", Y: "acc"}
	loss := Series{Name: name + "/loss_vs_time", X: "time_s", Y: "loss"}
	bytes := Series{Name: name + "/acc_vs_up_bytes", X: "up_bytes", Y: "acc"}
	for _, p := range run.Points {
		acc.Pts = append(acc.Pts, XY{X: p.Time, Y: p.Acc})
		loss.Pts = append(loss.Pts, XY{X: p.Time, Y: p.Loss})
		bytes.Pts = append(bytes.Pts, XY{X: float64(p.UpBytes), Y: p.Acc})
	}
	return []Series{acc, loss, bytes}
}

// SmoothedAccSeries converts a run's smoothed accuracy timeline (the curve
// the paper's convergence figures plot) into a series.
func SmoothedAccSeries(name string, run *metrics.Run, window int) Series {
	s := Series{Name: name + "/smoothed_acc_vs_time", X: "time_s", Y: "acc"}
	for _, p := range run.Smooth(window) {
		s.Pts = append(s.Pts, XY{X: p.Time, Y: p.Acc})
	}
	return s
}
