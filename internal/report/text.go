package report

import (
	"fmt"
	"strings"
)

// Text renders the human-readable report. Each artifact contributes its
// own self-contained block (data-only artifacts contribute nothing), so
// rendering is a pure concatenation — no newline patch-ups — and calling
// it repeatedly yields identical bytes.
func Text(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n\n", r.ID, r.Title)
	for _, a := range r.Artifacts {
		b.WriteString(a.text())
	}
	return b.String()
}

// String makes a Report print as its text rendering.
func (r *Report) String() string { return Text(r) }
