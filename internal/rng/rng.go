// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// client, every tier and every injected delay must draw from its own stream
// so that changing the parallel execution order (or adding a method to a
// comparison) never perturbs another entity's randomness. The stdlib
// math/rand shares one stream per Source and is awkward to split, so we
// implement SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
// Generators") which is trivially splittable by seeding a child from the
// parent's output.
package rng

import "math"

// goldenGamma is the SplitMix64 increment (odd, 2^64/phi).
const goldenGamma = 0x9E3779B97F4A7C15

// RNG is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
	seed0 uint64 // construction-time seed, anchors SplitLabeled
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed, seed0: seed}
}

// Split derives an independent child stream from r. The child's sequence
// does not overlap r's continuation for any practical horizon, and calling
// Split repeatedly yields distinct children.
func (r *RNG) Split() *RNG {
	s := mix(r.Uint64())
	return &RNG{state: s, seed0: s}
}

// SplitLabeled derives a child stream keyed by label. The child depends only
// on the construction-time seed of r and on label, so the same (seed, label)
// pair always yields the same stream no matter how many draws or splits
// happened on r in between.
func (r *RNG) SplitLabeled(label uint64) *RNG {
	s := mix(r.seed0 + goldenGamma*(label+1))
	return &RNG{state: s, seed0: s}
}

// SplitLabeledValue is SplitLabeled returning the child by value, for hot
// paths that derive a short-lived stream every round without a heap
// allocation. The draw sequence is identical to SplitLabeled's.
func (r *RNG) SplitLabeledValue(label uint64) RNG {
	s := mix(r.seed0 + goldenGamma*(label+1))
	return RNG{state: s, seed0: s}
}

// Uint64 advances the generator and returns 64 uniform bits.
func (r *RNG) Uint64() uint64 {
	r.state += goldenGamma
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for an unbiased bounded draw.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mulHiLo(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mulHiLo(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask32+aLo*bHi)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box–Muller, polar-free variant).
func (r *RNG) Norm() float64 {
	// Marsaglia polar method would branch unpredictably; the plain
	// Box–Muller transform is deterministic in the number of draws, which
	// keeps parallel client streams aligned across code changes.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormScaled returns mean + stddev*Norm().
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)) —
// the allocation-free counterpart of Perm, drawing the identical sequence.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Choose returns k distinct values sampled uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose requires 0 <= k <= n")
	}
	p := r.Perm(n)
	return p[:k]
}

// ChooseWeighted returns one index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Non-positive weights are treated
// as zero. If every weight is zero it falls back to a uniform draw.
func (r *RNG) ChooseWeighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}
