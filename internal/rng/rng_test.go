package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draws")
	}
}

func TestSplitLabeledStable(t *testing.T) {
	// The labeled split must not depend on how many draws the parent made.
	p1 := New(9)
	p2 := New(9)
	p2.Uint64()
	p2.Uint64()
	if p1.SplitLabeled(5).Uint64() != p2.SplitLabeled(5).Uint64() {
		t.Fatal("SplitLabeled depends on parent draw position")
	}
	if p1.SplitLabeled(5).Uint64() == p1.SplitLabeled(6).Uint64() {
		t.Fatal("different labels produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) bucket %d grossly non-uniform: %d/70000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChooseDistinct(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		c := New(seed).Choose(n, k)
		if len(c) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range c {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChooseWeighted(t *testing.T) {
	r := New(17)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.ChooseWeighted(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight buckets selected: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weighted ratio off (want ~3): %v", ratio)
	}
}

func TestChooseWeightedAllZero(t *testing.T) {
	r := New(19)
	w := []float64{0, 0, 0}
	for i := 0; i < 100; i++ {
		v := r.ChooseWeighted(w)
		if v < 0 || v >= 3 {
			t.Fatalf("all-zero fallback out of range: %d", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(6, 10)
		if v < 6 || v >= 10 {
			t.Fatalf("Uniform(6,10) out of range: %v", v)
		}
	}
}

func TestExpPositiveMean(t *testing.T) {
	r := New(29)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}
