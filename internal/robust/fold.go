package robust

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// FoldScratch carries the reusable buffers the robust aggregation kernels
// need. The zero value is ready; buffers grow to the largest cohort seen
// and are then reused, so steady-state folds allocate nothing.
type FoldScratch struct {
	col    []float64 // per-coordinate gather column, len = cohort size
	dists  []float64 // Krum pairwise squared distances, cohort² entries
	scores []float64 // Krum per-candidate scores
}

var errEmptyCohort = errors.New("robust: fold over empty cohort")

func (s *FoldScratch) cohort(dst []float64, vecs [][]float64) (int, error) {
	k := len(vecs)
	if k == 0 {
		return 0, errEmptyCohort
	}
	for i, v := range vecs {
		if len(v) != len(dst) {
			return 0, fmt.Errorf("robust: update %d has %d weights, want %d", i, len(v), len(dst))
		}
	}
	s.col = growFloats(s.col, k)
	return k, nil
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// insertionSort keeps the per-coordinate sort allocation-free; cohorts are
// small (tens of updates), so O(k²) beats sort.Float64s' interface cost.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Median writes the coordinate-wise median of vecs into dst (the even-
// cohort median averages the two middle values). dst must not alias vecs.
func (s *FoldScratch) Median(dst []float64, vecs [][]float64) error {
	k, err := s.cohort(dst, vecs)
	if err != nil {
		return err
	}
	for j := range dst {
		for i, v := range vecs {
			s.col[i] = v[j]
		}
		insertionSort(s.col)
		if k%2 == 1 {
			dst[j] = s.col[k/2]
		} else {
			dst[j] = (s.col[k/2-1] + s.col[k/2]) / 2
		}
	}
	return nil
}

// TrimmedMean writes the coordinate-wise β-trimmed mean of vecs into dst:
// per coordinate the floor(β·k) smallest and largest values are discarded
// and the rest averaged. β is clamped so at least one value survives; β=0
// degrades to the plain coordinate mean. dst must not alias vecs.
func (s *FoldScratch) TrimmedMean(dst []float64, vecs [][]float64, beta float64) error {
	k, err := s.cohort(dst, vecs)
	if err != nil {
		return err
	}
	if beta < 0 {
		beta = 0
	}
	t := int(beta * float64(k))
	if 2*t >= k {
		t = (k - 1) / 2
	}
	for j := range dst {
		for i, v := range vecs {
			s.col[i] = v[j]
		}
		insertionSort(s.col)
		sum := 0.0
		for i := t; i < k-t; i++ {
			sum += s.col[i]
		}
		dst[j] = sum / float64(k-2*t)
	}
	return nil
}

// Krum copies the Krum(f) winner of vecs into dst and returns its index:
// each candidate is scored by the sum of its k-f-2 smallest squared
// distances to the other candidates (clamped to at least one neighbor for
// tiny cohorts) and the lowest score wins, ties to the lowest index. f is
// the number of byzantine updates the fold should tolerate; f<0 picks the
// standard (k-3)/2. dst must not alias vecs.
func (s *FoldScratch) Krum(dst []float64, vecs [][]float64, f int) (int, error) {
	k, err := s.cohort(dst, vecs)
	if err != nil {
		return 0, err
	}
	if k == 1 {
		copy(dst, vecs[0])
		return 0, nil
	}
	if f < 0 {
		f = (k - 3) / 2
		if f < 0 {
			f = 0
		}
	}
	m := k - f - 2 // closest neighbors counted per candidate
	if m < 1 {
		m = 1
	}
	if m > k-1 {
		m = k - 1
	}
	s.dists = growFloats(s.dists, k*k)
	s.scores = growFloats(s.scores, k)
	for i := 0; i < k; i++ {
		s.dists[i*k+i] = 0
		for j := i + 1; j < k; j++ {
			d := tensor.SqDist(vecs[i], vecs[j])
			s.dists[i*k+j] = d
			s.dists[j*k+i] = d
		}
	}
	for i := 0; i < k; i++ {
		// The m smallest of candidate i's k-1 neighbor distances, via the
		// same allocation-free insertion sort over the reused column.
		row := s.col[:0]
		for j := 0; j < k; j++ {
			if j != i {
				row = append(row, s.dists[i*k+j])
			}
		}
		insertionSort(row)
		sum := 0.0
		for _, d := range row[:m] {
			sum += d
		}
		s.scores[i] = sum
	}
	best := 0
	for i := 1; i < k; i++ {
		if s.scores[i] < s.scores[best] {
			best = i
		}
	}
	copy(dst, vecs[best])
	return best, nil
}
