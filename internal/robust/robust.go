// Package robust is the adversarial-robustness substrate: client-side
// attack transforms (label flipping, scaled-update model poisoning,
// free-riding), server-side robust aggregation kernels (coordinate-wise
// median, trimmed mean, Krum) and the per-client clip+Gaussian-noise
// differential-privacy stage. The fl engine wires these pieces into both
// execution fabrics: simulated clients apply attacks selected by
// simnet.BehaviorConfig, live transport clients apply the same transforms
// from flags or server directives, and the robust fl.UpdateRules fold with
// the kernels below.
//
// Everything here is deterministic and allocation-disciplined: attack and
// DP transforms work in place on caller buffers, DP noise draws from a
// caller-provided labeled RNG stream, and the fold kernels reuse a caller-
// owned scratch so steady-state folds allocate nothing (the PR 6 alloc
// budgets the fl tests pin).
package robust

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Kind enumerates the malicious client behaviors.
type Kind uint8

const (
	// None is the zero value: an honest client.
	None Kind = iota
	// LabelFlip trains on flipped labels y -> (classes-1)-y, the classic
	// data-poisoning baseline.
	LabelFlip
	// ScaleUpdate returns global + Scale*(w-global): the model-poisoning
	// attack that multiplies the local delta by a factor.
	ScaleUpdate
	// FreeRide returns the stale global unchanged (a zero delta): the
	// client takes the model and contributes nothing.
	FreeRide
)

// String returns the flag-level name of the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case LabelFlip:
		return "labelflip"
	case ScaleUpdate:
		return "scale"
	case FreeRide:
		return "freeride"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a flag-level attack name ("" and "none" mean honest).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "none":
		return None, nil
	case "labelflip":
		return LabelFlip, nil
	case "scale":
		return ScaleUpdate, nil
	case "freeride":
		return FreeRide, nil
	}
	return None, fmt.Errorf("robust: unknown attack %q (have labelflip, scale, freeride)", s)
}

// DefaultScale is the delta multiplier ScaleUpdate uses when none is
// configured — large enough to visibly poison a mean but trivially clipped
// by the robust folds.
const DefaultScale = 10.0

// Attack is one client's malicious behavior. The zero value is honest.
type Attack struct {
	Kind Kind
	// Scale is ScaleUpdate's delta multiplier (DefaultScale when 0).
	Scale float64
	// Classes is the label-space size LabelFlip mirrors within.
	Classes int
}

// Active reports whether the client behaves maliciously.
func (a Attack) Active() bool { return a.Kind != None }

// FlipLabel returns the poisoned label for y under LabelFlip (y itself for
// every other kind, so callers can apply it unconditionally).
func (a Attack) FlipLabel(y int) int {
	if a.Kind != LabelFlip || a.Classes < 2 {
		return y
	}
	return a.Classes - 1 - y
}

// ApplyDelta rewrites the trained weights w in place according to the
// attack, with global the snapshot the client trained from: ScaleUpdate
// multiplies the local delta, FreeRide zeroes it. LabelFlip (and None)
// leave w alone — the poison already happened during training.
func (a Attack) ApplyDelta(w, global []float64) {
	switch a.Kind {
	case ScaleUpdate:
		s := a.Scale
		if s == 0 {
			s = DefaultScale
		}
		for i := range w {
			w[i] = global[i] + s*(w[i]-global[i])
		}
	case FreeRide:
		copy(w, global)
	}
}

// Sanitize is the per-client DP stage: the local delta w-global is clipped
// to L2 norm clip and perturbed with Gaussian noise of standard deviation
// noiseMult*clip per coordinate, in place on w. The noise draws come from
// g — callers pass a stream labeled by (client, round) so the perturbation
// is a pure function of (seed, client, round) on every fabric. clip <= 0
// disables the stage entirely (no clip, no draws).
func Sanitize(w, global []float64, clip, noiseMult float64, g *rng.RNG) {
	if clip <= 0 || len(w) != len(global) {
		return
	}
	norm := 0.0
	for i := range w {
		d := w[i] - global[i]
		norm += d * d
	}
	norm = math.Sqrt(norm)
	factor := 1.0
	if norm > clip {
		factor = clip / norm
	}
	sigma := noiseMult * clip
	for i := range w {
		d := (w[i] - global[i]) * factor
		if sigma > 0 {
			d += sigma * g.Norm()
		}
		w[i] = global[i] + d
	}
}
