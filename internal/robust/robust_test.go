package robust

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMedianHandComputed(t *testing.T) {
	var s FoldScratch
	dst := make([]float64, 2)
	// Odd cohort: per-coordinate middles of {1,3,2} and {5,1,9}.
	if err := s.Median(dst, [][]float64{{1, 5}, {3, 1}, {2, 9}}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 || dst[1] != 5 {
		t.Fatalf("odd median = %v, want [2 5]", dst)
	}
	// Even cohort averages the two middles: sorted {1,2,4,10} -> 3.
	dst1 := make([]float64, 1)
	if err := s.Median(dst1, [][]float64{{1}, {10}, {4}, {2}}); err != nil {
		t.Fatal(err)
	}
	if dst1[0] != 3 {
		t.Fatalf("even median = %v, want 3", dst1[0])
	}
}

func TestTrimmedMeanHandComputed(t *testing.T) {
	var s FoldScratch
	dst := make([]float64, 1)
	vecs := [][]float64{{1}, {10}, {4}, {2}}
	// β=0.25, k=4 trims one from each side: mean(2,4) = 3.
	if err := s.TrimmedMean(dst, vecs, 0.25); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 {
		t.Fatalf("trimmed(0.25) = %v, want 3", dst[0])
	}
	// β=0 is the plain mean: 17/4.
	if err := s.TrimmedMean(dst, vecs, 0); err != nil {
		t.Fatal(err)
	}
	if !almost(dst[0], 17.0/4) {
		t.Fatalf("trimmed(0) = %v, want 4.25", dst[0])
	}
	// Over-aggressive β is clamped so at least one value survives; k=2
	// keeps both middles (t clamps to 0): mean(1,10) = 5.5.
	if err := s.TrimmedMean(dst, [][]float64{{1}, {10}}, 0.9); err != nil {
		t.Fatal(err)
	}
	if !almost(dst[0], 5.5) {
		t.Fatalf("clamped trimmed = %v, want 5.5", dst[0])
	}
}

func TestKrumHandComputed(t *testing.T) {
	var s FoldScratch
	// Three near-identical honest vectors and one far outlier. With f=1,
	// m=k-f-2=1: each honest score is its nearest honest distance (0.01),
	// the outlier's is ~198 — the tie breaks to the lowest index.
	vecs := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}}
	dst := make([]float64, 2)
	idx, err := s.Krum(dst, vecs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("krum(f=1) picked %d %v, want 0 [0 0]", idx, dst)
	}
	// Adaptive f<0 -> f=(k-3)/2=0, m=2: scores a=0.02 b=0.03 c=0.03
	// d=396.02, same winner.
	idx, err = s.Krum(dst, vecs, -1)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("krum(adaptive) picked %d, want 0", idx)
	}
	// Single update degrades to a copy.
	idx, err = s.Krum(dst, [][]float64{{7, 8}}, 0)
	if err != nil || idx != 0 || dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("krum(single) = %d %v (%v)", idx, dst, err)
	}
}

func TestFoldErrors(t *testing.T) {
	var s FoldScratch
	dst := make([]float64, 2)
	if err := s.Median(dst, nil); err == nil {
		t.Fatal("median of empty cohort should error")
	}
	if err := s.TrimmedMean(dst, [][]float64{{1}}, 0.1); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := s.Krum(dst, [][]float64{{1, 2}, {3}}, 0); err == nil {
		t.Fatal("ragged cohort should error")
	}
}

func TestFoldAllocFree(t *testing.T) {
	var s FoldScratch
	vecs := make([][]float64, 8)
	for i := range vecs {
		vecs[i] = make([]float64, 64)
		for j := range vecs[i] {
			vecs[i][j] = float64(i*64 + j)
		}
	}
	dst := make([]float64, 64)
	warm := func() {
		if err := s.Median(dst, vecs); err != nil {
			t.Fatal(err)
		}
		if err := s.TrimmedMean(dst, vecs, 0.2); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Krum(dst, vecs, 1); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	if n := testing.AllocsPerRun(50, warm); n != 0 {
		t.Fatalf("robust fold kernels allocate %.1f/op in steady state, want 0", n)
	}
}

func TestAttackTransforms(t *testing.T) {
	flip := Attack{Kind: LabelFlip, Classes: 10}
	if got := flip.FlipLabel(3); got != 6 {
		t.Fatalf("flip(3) = %d, want 6", got)
	}
	if got := (Attack{Kind: ScaleUpdate, Classes: 10}).FlipLabel(3); got != 3 {
		t.Fatalf("non-flip attacks must leave labels alone, got %d", got)
	}

	global := []float64{1, 2}
	w := []float64{1.5, 1.0}
	Attack{Kind: ScaleUpdate, Scale: 10}.ApplyDelta(w, global)
	if w[0] != 6 || w[1] != -8 {
		t.Fatalf("scale delta = %v, want [6 -8]", w)
	}
	w = []float64{1.5, 1.0}
	Attack{Kind: ScaleUpdate}.ApplyDelta(w, global) // DefaultScale
	if w[0] != 6 || w[1] != -8 {
		t.Fatalf("default scale delta = %v, want [6 -8]", w)
	}
	Attack{Kind: FreeRide}.ApplyDelta(w, global)
	if w[0] != 1 || w[1] != 2 {
		t.Fatalf("freeride = %v, want the global back", w)
	}
	w = []float64{9, 9}
	Attack{Kind: None}.ApplyDelta(w, global)
	if w[0] != 9 || w[1] != 9 {
		t.Fatalf("honest ApplyDelta must be a no-op, got %v", w)
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"": None, "none": None, "labelflip": LabelFlip,
		"scale": ScaleUpdate, "freeride": FreeRide,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
		if got.String() != s && s != "" {
			t.Fatalf("round trip %q -> %q", s, got.String())
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestSanitizeClip(t *testing.T) {
	global := []float64{0, 0}
	w := []float64{3, 4} // delta norm 5
	g := rng.New(1)
	Sanitize(w, global, 1, 0, g)
	if !almost(w[0], 0.6) || !almost(w[1], 0.8) {
		t.Fatalf("clipped = %v, want [0.6 0.8]", w)
	}
	// Deltas inside the clip norm pass through untouched when noise is off.
	w = []float64{0.3, 0.4}
	Sanitize(w, global, 1, 0, g)
	if !almost(w[0], 0.3) || !almost(w[1], 0.4) {
		t.Fatalf("small delta = %v, want [0.3 0.4]", w)
	}
	// clip<=0 disables the stage (and draws nothing).
	w = []float64{30, 40}
	Sanitize(w, global, 0, 1, g)
	if w[0] != 30 || w[1] != 40 {
		t.Fatalf("disabled stage must not touch w, got %v", w)
	}
}

func TestSanitizeNoiseDeterministic(t *testing.T) {
	global := []float64{0, 0, 0, 0}
	base := []float64{1, 2, 3, 4}
	w1 := append([]float64(nil), base...)
	w2 := append([]float64(nil), base...)
	Sanitize(w1, global, 2, 0.5, rng.New(7))
	Sanitize(w2, global, 2, 0.5, rng.New(7))
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("same-seed noise differs at %d: %v vs %v", i, w1, w2)
		}
	}
	w3 := append([]float64(nil), base...)
	Sanitize(w3, global, 2, 0.5, rng.New(8))
	same := true
	for i := range w1 {
		if w1[i] != w3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should perturb differently")
	}
	// Noise actually perturbs relative to the clipped-only delta.
	w4 := append([]float64(nil), base...)
	Sanitize(w4, global, 2, 0, rng.New(7))
	diff := false
	for i := range w1 {
		if w1[i] != w4[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("noise multiplier 0.5 should change the sanitized delta")
	}
}
