package simnet

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/robust"
)

// Time-varying client behavior. The static population NewCluster builds —
// fixed per-client speeds, permanent DropAt departures — matches the paper's
// §6 testbed, where clients are profiled once and stay in character. Real
// populations drift, churn and get mis-profiled; BehaviorConfig switches on
// three dynamic regimes, all driven off the virtual clock so runs remain
// bit-for-bit deterministic:
//
//   - speed drift: each client's compute multiplier takes a multiplicative
//     random-walk step every DriftInterval virtual seconds (step-change
//     behavior is the same walk with a large magnitude and long interval);
//   - transient churn: a fraction of clients cycle through offline windows
//     and come back — generalizing the permanent DropAt departure;
//   - late join: a fraction of clients are offline until a start time.
//
// The zero value disables everything, and a disabled population is
// bit-identical to one built before this model existed: no extra RNG draws
// happen, and the static code paths execute the exact same arithmetic.
type BehaviorConfig struct {
	// DriftMag > 0 enables speed drift: every DriftInterval seconds each
	// client's compute-time multiplier is multiplied by an independent
	// uniform draw from [1-DriftMag, 1+DriftMag], clamped to
	// [1/DriftClamp, DriftClamp].
	DriftMag float64
	// DriftInterval is the walk's step length in virtual seconds
	// (default 60).
	DriftInterval float64
	// DriftClamp bounds the cumulative multiplier (default 4).
	DriftClamp float64

	// ChurnFrac of clients (rounded) cycle offline/online: online for a
	// uniform draw from ChurnOn seconds, then offline for a uniform draw
	// from ChurnOff seconds, repeating forever. 0 disables churn.
	ChurnFrac float64
	// ChurnOn bounds the online-window length (default [200, 600)).
	ChurnOn [2]float64
	// ChurnOff bounds the offline-window length (default [50, 200)).
	ChurnOff [2]float64

	// LateJoinFrac of clients (rounded) join late, at a uniform time in
	// (0, LateJoinHorizon]. 0 disables late joins.
	LateJoinFrac float64
	// LateJoinHorizon bounds join times (default 500).
	LateJoinHorizon float64

	// AttackFrac of clients (rounded) behave maliciously according to
	// AttackKind ("labelflip", "scale" or "freeride" — see internal/robust).
	// The attacker set is drawn from its own population stream, so churn
	// and late-join membership are untouched at any attack fraction.
	// Either AttackFrac=0 or AttackKind=""/"none" disables the regime.
	AttackFrac float64
	AttackKind string
	// AttackScale is the delta multiplier for the "scale" attack
	// (robust.DefaultScale when 0).
	AttackScale float64
	// AttackTail makes the attacker population latency-correlated instead
	// of uniform: attackers are the AttackFrac·n clients with the largest
	// Part (slowest delay groups), ties broken by id. No randomness is
	// drawn — the set is a pure function of the static population. This is
	// the knob behind the tiering×attackers question: under FedAT the tail
	// parts concentrate into the slow tiers.
	AttackTail bool
}

// Enabled reports whether any dynamic regime is switched on.
func (b BehaviorConfig) Enabled() bool {
	return b.DriftMag > 0 || b.ChurnFrac > 0 || b.LateJoinFrac > 0 || b.attackOn()
}

func (b BehaviorConfig) attackOn() bool {
	return b.AttackFrac > 0 && b.AttackKind != "" && b.AttackKind != "none"
}

func (b BehaviorConfig) withDefaults() BehaviorConfig {
	if b.DriftInterval <= 0 {
		b.DriftInterval = 60
	}
	if b.DriftClamp <= 1 {
		b.DriftClamp = 4
	}
	if b.ChurnOn == [2]float64{} {
		b.ChurnOn = [2]float64{200, 600}
	}
	if b.ChurnOff == [2]float64{} {
		b.ChurnOff = [2]float64{50, 200}
	}
	if b.LateJoinHorizon <= 0 {
		b.LateJoinHorizon = 500
	}
	return b
}

// RNG stream labels for the behavior model. The population stream is split
// off the cluster root with label 3 (labels 1 and 2 are taken by the
// part-assignment permutation and the unstable-client draw); per-client
// streams are split off each client's root, whose label 7 is the delay
// stream. SplitLabeled children depend only on (seed, label), so behavior
// streams cannot perturb the static population's randomness.
// The attacker population draws from its own root label (4) rather than
// sharing behaviorPopLabel, so the attacker set is a pure function of
// (seed, n, AttackFrac) — turning attacks on or off cannot move churn or
// late-join membership, and vice versa.
const (
	behaviorPopLabel    = 3
	attackPopLabel      = 4
	clientDriftLabel    = 8
	clientChurnLabel    = 9
	clientLateJoinLabel = 10
)

// ---------------------------------------------------------------------------
// Speed drift

// driftTrack is one client's multiplicative random-walk compute multiplier.
// Factors are generated sequentially from a dedicated stream as the queried
// horizon extends, so MultAt is a pure function of (seed, t) regardless of
// query order.
type driftTrack struct {
	r             *rng.RNG
	interval, mag float64
	lo, hi        float64
	factors       []float64 // factors[k] = multiplier during step k
}

func newDriftTrack(r *rng.RNG, cfg BehaviorConfig) *driftTrack {
	return &driftTrack{
		r:        r,
		interval: cfg.DriftInterval,
		mag:      cfg.DriftMag,
		lo:       1 / cfg.DriftClamp,
		hi:       cfg.DriftClamp,
		factors:  []float64{1}, // nominal speed until the first step
	}
}

// MultAt returns the compute multiplier in effect at virtual time t.
func (d *driftTrack) MultAt(t float64) float64 {
	k := 0
	if t > 0 {
		k = int(t / d.interval)
	}
	for len(d.factors) <= k {
		f := d.factors[len(d.factors)-1] * d.r.Uniform(1-d.mag, 1+d.mag)
		if f < d.lo {
			f = d.lo
		}
		if f > d.hi {
			f = d.hi
		}
		d.factors = append(d.factors, f)
	}
	return d.factors[k]
}

// ---------------------------------------------------------------------------
// Transient churn

// churnTrack is one client's offline-window schedule: alternating online and
// offline spans generated lazily from a dedicated stream. Like driftTrack,
// window k depends only on the stream's first k draws, so availability is a
// pure function of (seed, t).
type churnTrack struct {
	r       *rng.RNG
	on, off [2]float64
	horizon float64      // schedule generated up to this time
	offline [][2]float64 // offline spans [start, end)
}

func newChurnTrack(r *rng.RNG, cfg BehaviorConfig) *churnTrack {
	return &churnTrack{r: r, on: cfg.ChurnOn, off: cfg.ChurnOff}
}

// extend generates windows until the schedule covers time t.
func (c *churnTrack) extend(t float64) {
	for c.horizon <= t {
		start := c.horizon + c.r.Uniform(c.on[0], c.on[1])
		end := start + c.r.Uniform(c.off[0], c.off[1])
		c.offline = append(c.offline, [2]float64{start, end})
		c.horizon = end
	}
}

// OfflineAt reports whether the client is inside an offline window at t.
func (c *churnTrack) OfflineAt(t float64) bool {
	c.extend(t)
	for i := len(c.offline) - 1; i >= 0; i-- {
		w := c.offline[i]
		if t >= w[0] && t < w[1] {
			return true
		}
		if w[1] <= t {
			return false // spans are generated in increasing order
		}
	}
	return false
}

// OverlapsOffline reports whether any offline window intersects the span
// (start, end].
func (c *churnTrack) OverlapsOffline(start, end float64) bool {
	c.extend(end)
	for _, w := range c.offline {
		if w[0] > end {
			return false // windows are generated in increasing order
		}
		if w[1] > start {
			return true
		}
	}
	return false
}

// NextOnline returns the earliest time >= t the client is back online.
func (c *churnTrack) NextOnline(t float64) float64 {
	c.extend(t)
	for _, w := range c.offline {
		if t >= w[0] && t < w[1] {
			return w[1]
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Wiring into the cluster

// applyBehavior decorates the built population with dynamic behavior. It
// draws from streams labeled disjointly from everything NewCluster used, so
// the static population (parts, speeds, delays, drop times) is unchanged.
func applyBehavior(cl *Cluster, cfg ClusterConfig) error {
	b := cfg.Behavior.withDefaults()
	root := rng.New(cfg.Seed)
	pop := root.SplitLabeled(behaviorPopLabel)
	n := len(cl.Clients)

	if b.DriftMag > 0 {
		for _, c := range cl.Clients {
			cr := root.SplitLabeled(uint64(1000 + c.ID))
			c.drift = newDriftTrack(cr.SplitLabeled(clientDriftLabel), b)
		}
	}
	if b.ChurnFrac > 0 {
		for _, id := range pop.Choose(n, fracCount(b.ChurnFrac, n)) {
			cr := root.SplitLabeled(uint64(1000 + id))
			cl.Clients[id].churn = newChurnTrack(cr.SplitLabeled(clientChurnLabel), b)
		}
	}
	if b.LateJoinFrac > 0 {
		for _, id := range pop.Choose(n, fracCount(b.LateJoinFrac, n)) {
			cr := root.SplitLabeled(uint64(1000 + id))
			cl.Clients[id].JoinAt = cr.SplitLabeled(clientLateJoinLabel).Uniform(0, b.LateJoinHorizon)
		}
	}
	if b.attackOn() {
		kind, err := robust.ParseKind(b.AttackKind)
		if err != nil {
			return err
		}
		var ids []int
		if b.AttackTail {
			ids = tailClients(cl.Clients, fracCount(b.AttackFrac, n))
		} else {
			ids = AttackTargets(cfg.Seed, n, b.AttackFrac)
		}
		for _, id := range ids {
			cl.Clients[id].Attack = robust.Attack{Kind: kind, Scale: b.AttackScale}
		}
	}
	return nil
}

// AttackTargets returns the uniform attacker set for a population of n
// clients under the given seed — the exact ids applyBehavior marks. It is
// exported so the live transport fabric can select the same deterministic
// attacker population from (seed, clients, frac) without a Cluster.
func AttackTargets(seed uint64, n int, frac float64) []int {
	if frac <= 0 || n <= 0 {
		return nil
	}
	return rng.New(seed).SplitLabeled(attackPopLabel).Choose(n, fracCount(frac, n))
}

// tailClients picks the k slowest clients — largest Part wins, ties to the
// lower id — giving the deterministic latency-correlated attacker set.
func tailClients(clients []*ClientRuntime, k int) []int {
	ids := make([]int, len(clients))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		pa, pb := clients[ids[a]].Part, clients[ids[b]].Part
		if pa != pb {
			return pa > pb
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// fracCount rounds frac·n to a count clamped to [0, n] — fractions above 1
// (a fedsim -churn typo, say) mean "everyone", not a Choose panic.
func fracCount(frac float64, n int) int {
	k := int(frac*float64(n) + 0.5)
	if k > n {
		k = n
	}
	return k
}
