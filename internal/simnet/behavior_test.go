package simnet

import (
	"math"
	"testing"

	"repro/internal/robust"
)

func behaviorCluster(t *testing.T, b BehaviorConfig) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		NumClients: 20, SecPerBatch: 0.1, Seed: 11, Behavior: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestBehaviorDisabledIsStatic: the zero BehaviorConfig must leave the
// population bit-identical to the static model — same availability, same
// compute arithmetic at any time.
func TestBehaviorDisabledIsStatic(t *testing.T) {
	cl := behaviorCluster(t, BehaviorConfig{})
	for _, c := range cl.Clients {
		if c.drift != nil || c.churn != nil || c.JoinAt != 0 {
			t.Fatalf("client %d has dynamic state without behavior config", c.ID)
		}
		for _, at := range []float64{0, 17.3, 5000} {
			if got, want := c.ComputeTimeAt(12, at), c.ComputeTime(12); got != want {
				t.Fatalf("client %d: ComputeTimeAt(12, %v)=%v, want %v", c.ID, at, got, want)
			}
			if c.Available(at) != (at < c.DropAt) {
				t.Fatalf("client %d: availability diverged from the static rule at %v", c.ID, at)
			}
			want := at
			if at >= c.DropAt {
				want = Inf
			}
			if got := c.NextOnline(at); got != want {
				t.Fatalf("client %d: NextOnline(%v)=%v, want %v", c.ID, at, got, want)
			}
		}
	}
}

// TestDriftDeterministicAndClamped: the drift walk is identical across two
// same-seed clusters, pure under out-of-order queries, and clamped.
func TestDriftDeterministicAndClamped(t *testing.T) {
	b := BehaviorConfig{DriftMag: 0.5, DriftInterval: 10, DriftClamp: 3}
	a := behaviorCluster(t, b)
	c := behaviorCluster(t, b)
	changed := false
	for id := range a.Clients {
		ra, rc := a.Clients[id], c.Clients[id]
		// Query rc far ahead first: lookups must stay pure under any order.
		_ = rc.SpeedMultiplier(990)
		for _, at := range []float64{0, 25, 990, 130} {
			ma, mc := ra.SpeedMultiplier(at), rc.SpeedMultiplier(at)
			if ma != mc {
				t.Fatalf("client %d: drift multiplier diverged at t=%v: %v vs %v", id, at, ma, mc)
			}
			if ma < 1/3.0-1e-12 || ma > 3+1e-12 {
				t.Fatalf("client %d: multiplier %v escaped the clamp", id, ma)
			}
			if at > 0 && ma != 1 {
				changed = true
			}
		}
		if m := ra.SpeedMultiplier(0); m != 1 {
			t.Fatalf("client %d: nominal speed at t=0 is %v, want 1", id, m)
		}
	}
	if !changed {
		t.Fatal("no client's speed ever drifted")
	}
}

// TestChurnWindows: churned clients go offline and come back; NextOnline
// lands on an available instant; non-churned clients are unaffected.
func TestChurnWindows(t *testing.T) {
	b := BehaviorConfig{ChurnFrac: 0.5, ChurnOn: [2]float64{50, 100}, ChurnOff: [2]float64{20, 40}}
	cl := behaviorCluster(t, b)
	churned, sawOffline, sawRejoin := 0, false, false
	for _, c := range cl.Clients {
		if c.churn == nil {
			continue
		}
		churned++
		for at := 0.0; at < 2000; at += 7 {
			if c.Available(at) {
				continue
			}
			sawOffline = true
			back := c.NextOnline(at)
			if math.IsInf(back, 1) {
				continue // permanent drop can coincide with a window
			}
			if back <= at {
				t.Fatalf("client %d: NextOnline(%v)=%v did not advance", c.ID, at, back)
			}
			if !c.Available(back) {
				t.Fatalf("client %d: not available at its own NextOnline time %v", c.ID, back)
			}
			sawRejoin = true
		}
	}
	if churned != 10 {
		t.Fatalf("churn assigned to %d clients, want 10 of 20", churned)
	}
	if !sawOffline || !sawRejoin {
		t.Fatalf("churn produced no observable window (offline=%v rejoin=%v)", sawOffline, sawRejoin)
	}
}

// TestLateJoin: late joiners are offline before JoinAt and join by the
// horizon; NextOnline from 0 is the join time.
func TestLateJoin(t *testing.T) {
	b := BehaviorConfig{LateJoinFrac: 0.25, LateJoinHorizon: 300}
	cl := behaviorCluster(t, b)
	late := 0
	for _, c := range cl.Clients {
		if c.JoinAt == 0 {
			continue
		}
		late++
		if c.JoinAt < 0 || c.JoinAt > 300 {
			t.Fatalf("client %d: JoinAt %v outside (0, 300]", c.ID, c.JoinAt)
		}
		if c.Available(c.JoinAt / 2) {
			t.Fatalf("client %d available before joining", c.ID)
		}
		if got := c.NextOnline(0); got != c.JoinAt {
			t.Fatalf("client %d: NextOnline(0)=%v, want JoinAt %v", c.ID, got, c.JoinAt)
		}
	}
	if late != 5 {
		t.Fatalf("%d late joiners, want 5 of 20", late)
	}
}

// TestOfflineWithin: a churn window wholly inside a span disrupts it even
// though both endpoints are online; spans clear of windows are undisturbed;
// without churn the check reduces to the endpoint rule.
func TestOfflineWithin(t *testing.T) {
	b := BehaviorConfig{ChurnFrac: 1, ChurnOn: [2]float64{50, 100}, ChurnOff: [2]float64{10, 20}}
	cl := behaviorCluster(t, b)
	checked := false
	for _, c := range cl.Clients {
		if c.churn == nil || len(c.churn.offline) == 0 {
			c.Available(500) // force window generation
		}
		if len(c.churn.offline) == 0 {
			continue
		}
		w := c.churn.offline[0]
		if w[1]+1 >= c.DropAt {
			continue // window truncated by a permanent drop; skip
		}
		checked = true
		// Span strictly containing the window: disrupted.
		if !c.OfflineWithin(w[0]-1, w[1]+1) {
			t.Fatalf("client %d: window [%v,%v) inside span not detected", c.ID, w[0], w[1])
		}
		// Span entirely before the first window: clean.
		if c.OfflineWithin(0, w[0]-1) {
			t.Fatalf("client %d: clean span flagged as disrupted", c.ID)
		}
	}
	if !checked {
		t.Fatal("no churn window available to test")
	}

	// No churn: OfflineWithin is exactly the endpoint check.
	static := behaviorCluster(t, BehaviorConfig{})
	for _, c := range static.Clients {
		for _, end := range []float64{10, 5000} {
			if got, want := c.OfflineWithin(0, end), !c.Available(end); got != want {
				t.Fatalf("client %d: static OfflineWithin(0,%v)=%v, want %v", c.ID, end, got, want)
			}
		}
	}
}

// TestFracClamped: behavior fractions above 1 (a CLI typo) mean "everyone",
// not a Choose panic.
func TestFracClamped(t *testing.T) {
	cl := behaviorCluster(t, BehaviorConfig{ChurnFrac: 1.5, LateJoinFrac: 2})
	churned, late := 0, 0
	for _, c := range cl.Clients {
		if c.churn != nil {
			churned++
		}
		if c.JoinAt > 0 {
			late++
		}
	}
	if churned != len(cl.Clients) || late != len(cl.Clients) {
		t.Fatalf("fractions above 1 covered %d/%d churned, %d/%d late; want all",
			churned, len(cl.Clients), late, len(cl.Clients))
	}
}

// TestAttackSelection: the attacker set is deterministic, sized by
// fracCount, independent of the other regimes, and latency-correlated
// under AttackTail.
func TestAttackSelection(t *testing.T) {
	b := BehaviorConfig{AttackKind: "scale", AttackFrac: 0.3, AttackScale: 5}
	a := behaviorCluster(t, b)
	c := behaviorCluster(t, b)
	var attackers []int
	for i := range a.Clients {
		if a.Clients[i].Attack.Active() != c.Clients[i].Attack.Active() {
			t.Fatalf("attacker set differs between same-seed clusters at %d", i)
		}
		if a.Clients[i].Attack.Active() {
			attackers = append(attackers, i)
			if a.Clients[i].Attack.Kind != robust.ScaleUpdate || a.Clients[i].Attack.Scale != 5 {
				t.Fatalf("client %d attack = %+v", i, a.Clients[i].Attack)
			}
		}
	}
	if len(attackers) != 6 { // fracCount(0.3, 20)
		t.Fatalf("%d attackers, want 6 (got %v)", len(attackers), attackers)
	}
	// AttackTargets mirrors the in-cluster selection for the live fabric.
	want := AttackTargets(11, 20, 0.3)
	if len(want) != len(attackers) {
		t.Fatalf("AttackTargets = %v, cluster picked %v", want, attackers)
	}
	picked := map[int]bool{}
	for _, id := range want {
		picked[id] = true
	}
	for _, id := range attackers {
		if !picked[id] {
			t.Fatalf("cluster attacker %d not in AttackTargets %v", id, want)
		}
	}
}

// TestAttackIndependentOfChurn: switching attacks on must not move churn
// membership (separate population labels), and AttackFrac=0 or kind "none"
// leaves everyone honest.
func TestAttackIndependentOfChurn(t *testing.T) {
	churnOnly := behaviorCluster(t, BehaviorConfig{ChurnFrac: 0.25})
	both := behaviorCluster(t, BehaviorConfig{ChurnFrac: 0.25, AttackKind: "labelflip", AttackFrac: 0.4})
	for i := range churnOnly.Clients {
		if (churnOnly.Clients[i].churn == nil) != (both.Clients[i].churn == nil) {
			t.Fatalf("churn membership moved when attacks switched on (client %d)", i)
		}
	}
	for _, b := range []BehaviorConfig{
		{ChurnFrac: 0.25, AttackKind: "labelflip"},
		{ChurnFrac: 0.25, AttackFrac: 0.4},
		{ChurnFrac: 0.25, AttackKind: "none", AttackFrac: 0.4},
	} {
		cl := behaviorCluster(t, b)
		for i := range cl.Clients {
			if cl.Clients[i].Attack.Active() {
				t.Fatalf("client %d attacks under %+v", i, b)
			}
		}
	}
}

// TestAttackTailPicksSlowest: AttackTail marks exactly the highest-Part
// clients, ties to lower ids, with no randomness.
func TestAttackTailPicksSlowest(t *testing.T) {
	cl := behaviorCluster(t, BehaviorConfig{AttackKind: "freeride", AttackFrac: 0.2, AttackTail: true})
	minAttackerPart := math.MaxInt
	maxHonestPart := -1
	count := 0
	for _, c := range cl.Clients {
		if c.Attack.Active() {
			count++
			if c.Part < minAttackerPart {
				minAttackerPart = c.Part
			}
		} else if c.Part > maxHonestPart {
			maxHonestPart = c.Part
		}
	}
	if count != 4 { // fracCount(0.2, 20)
		t.Fatalf("%d tail attackers, want 4", count)
	}
	if minAttackerPart < maxHonestPart {
		t.Fatalf("tail selection not latency-correlated: attacker part %d < honest part %d",
			minAttackerPart, maxHonestPart)
	}
}

// TestAttackUnknownKind: a bad kind surfaces as a NewCluster error.
func TestAttackUnknownKind(t *testing.T) {
	_, err := NewCluster(ClusterConfig{
		NumClients: 5, Seed: 1,
		Behavior: BehaviorConfig{AttackKind: "bogus", AttackFrac: 0.5},
	})
	if err == nil {
		t.Fatal("unknown attack kind should fail cluster construction")
	}
}
