package simnet

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/robust"
)

// ClientRuntime models one client's performance characteristics.
type ClientRuntime struct {
	ID int
	// Part is the ground-truth speed group the delay range came from
	// (0 = fastest). The tiering module profiles latencies and should
	// approximately recover these parts.
	Part int
	// DelayLo/DelayHi bound the per-round injected delay (seconds),
	// reproducing the paper's 0s, 0–5s, 6–10s, 11–15s, 20–30s groups.
	DelayLo, DelayHi float64
	// SecPerBatch is this client's compute time per mini-batch step.
	SecPerBatch float64
	// UpBW/DownBW are the client-side link speeds in bytes/second
	// (<=0 = infinite).
	UpBW, DownBW float64
	// DropAt is the virtual time at which the client permanently leaves
	// (+Inf for stable clients).
	DropAt float64
	// JoinAt is when the client first comes online (0 = from the start;
	// the late-join regime of BehaviorConfig).
	JoinAt float64
	// Attack is the client's malicious behavior (zero value = honest; the
	// attack regime of BehaviorConfig). The federation layer reads it when
	// building trainers — the simnet clock model itself never does:
	// attackers are indistinguishable from honest clients in time.
	Attack robust.Attack

	delayRNG  *rng.RNG
	delayRNG0 rng.RNG     // construction-time snapshot, restored by Reset
	drift     *driftTrack // nil = fixed compute speed
	churn     *churnTrack // nil = no transient offline windows
}

// Reset rewinds the runtime's consumable randomness (the per-round delay
// stream) to its construction-time state, so a fresh run over the same
// cluster draws the same delays. Drift and churn schedules need no reset:
// both are pure functions of (seed, t) regardless of query order.
func (c *ClientRuntime) Reset() {
	if c.delayRNG != nil {
		*c.delayRNG = c.delayRNG0
	}
}

// RoundDelay draws this round's injected delay.
func (c *ClientRuntime) RoundDelay() float64 {
	if c.DelayHi <= c.DelayLo {
		return c.DelayLo
	}
	return c.delayRNG.Uniform(c.DelayLo, c.DelayHi)
}

// ComputeTime returns the compute portion of a round that runs the given
// number of mini-batch steps, at the client's nominal (profiling-time)
// speed.
func (c *ClientRuntime) ComputeTime(batchSteps int) float64 {
	return float64(batchSteps) * c.SecPerBatch
}

// ComputeTimeAt returns the compute portion of a round starting at virtual
// time t, honoring speed drift. Without drift it is exactly ComputeTime.
func (c *ClientRuntime) ComputeTimeAt(batchSteps int, t float64) float64 {
	if c.drift == nil {
		return c.ComputeTime(batchSteps)
	}
	return float64(batchSteps) * c.SecPerBatch * c.drift.MultAt(t)
}

// SpeedMultiplier reports the drift multiplier in effect at time t (1 for
// clients without drift) — diagnostics and tests.
func (c *ClientRuntime) SpeedMultiplier(t float64) float64 {
	if c.drift == nil {
		return 1
	}
	return c.drift.MultAt(t)
}

// Available reports whether the client is online at time t: it has joined,
// has not permanently dropped, and is not inside a churn window.
func (c *ClientRuntime) Available(t float64) bool {
	if t >= c.DropAt || t < c.JoinAt {
		return false
	}
	return c.churn == nil || !c.churn.OfflineAt(t)
}

// OfflineWithin reports whether the client is offline at any instant in
// (start, end] — the round-disruption test: a client that blinked through
// a churn window mid-round loses that round's update even if it is back by
// the end. Without churn this reduces to the endpoint check (DropAt and
// JoinAt are monotone, and start is an instant the caller already knows the
// client was online).
func (c *ClientRuntime) OfflineWithin(start, end float64) bool {
	if !c.Available(end) {
		return true
	}
	return c.churn != nil && c.churn.OverlapsOffline(start, end)
}

// NextOnline returns the earliest time >= t at which the client is online
// (+Inf if it never is again). For the static population this is t while
// the client lives and +Inf after its permanent drop — churn windows and
// late joins are the only sources of finite waits.
func (c *ClientRuntime) NextOnline(t float64) float64 {
	if t < c.JoinAt {
		t = c.JoinAt
	}
	if c.churn != nil {
		t = c.churn.NextOnline(t)
	}
	if t >= c.DropAt {
		return Inf
	}
	return t
}

// ExpectedLatency is the profiling estimate the tiering module uses: the
// compute time for a nominal round plus the mean injected delay.
func (c *ClientRuntime) ExpectedLatency(batchSteps int) float64 {
	return c.ComputeTime(batchSteps) + (c.DelayLo+c.DelayHi)/2
}

// DefaultDelayRanges are the paper's five injected-delay groups (§6).
var DefaultDelayRanges = [][2]float64{{0, 0}, {0, 5}, {6, 10}, {11, 15}, {20, 30}}

// ClusterConfig configures the simulated client population.
type ClusterConfig struct {
	NumClients int
	// DelayRanges lists the per-part injected delay bounds; defaults to
	// DefaultDelayRanges.
	DelayRanges [][2]float64
	// PartSizes optionally fixes how many clients land in each part (the
	// Figure 10 Uniform/Slow/Medium/Fast distributions). Defaults to an
	// even split. Must sum to NumClients when set.
	PartSizes []int
	// NumUnstable clients drop out permanently at a uniform random time in
	// (0, DropHorizon] — the paper uses 10.
	NumUnstable int
	DropHorizon float64
	// SecPerBatch is the base compute time per mini-batch; each client gets
	// a persistent ±30% speed factor on top.
	SecPerBatch float64
	// UpBW/DownBW are client link speeds, ServerBW the shared server link
	// speed (bytes/second; <= 0 = infinite).
	UpBW, DownBW, ServerBW float64
	// Behavior switches on time-varying client dynamics (speed drift,
	// transient churn, late joins). The zero value keeps the population
	// static and bit-identical to the pre-dynamics model.
	Behavior BehaviorConfig
	Seed     uint64
}

// Cluster is the simulated population plus the server's shared links.
type Cluster struct {
	Clients    []*ClientRuntime
	ServerUp   *Link // client→server direction
	ServerDown *Link // server→client direction
}

// NewCluster builds the population: clients are randomly divided into the
// delay parts (even split unless PartSizes is set), receive persistent
// compute-speed factors, and NumUnstable of them get finite drop times.
//
// It is now a thin shell over the lazy Population — "materialize every
// client" — so the eager and lazy construction paths cannot drift apart.
// newClusterEager below keeps the original direct construction as the
// reference the equivalence test pins Population against.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	p, err := NewPopulation(cfg)
	if err != nil {
		return nil, err
	}
	return p.Cluster(), nil
}

// newClusterEager is the pre-lazy construction, byte-for-byte: every draw
// in its original order. It exists as the specification the lazy
// Population is tested against (TestPopulationMatchesEagerCluster) — if
// the two ever disagree, the lazy derivation broke the RNG contract.
func newClusterEager(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("simnet: NumClients must be positive")
	}
	ranges := cfg.DelayRanges
	if len(ranges) == 0 {
		ranges = DefaultDelayRanges
	}
	parts := cfg.PartSizes
	if len(parts) == 0 {
		parts = evenSplit(cfg.NumClients, len(ranges))
	}
	if len(parts) != len(ranges) {
		return nil, fmt.Errorf("simnet: %d part sizes for %d delay ranges", len(parts), len(ranges))
	}
	total := 0
	for _, p := range parts {
		total += p
	}
	if total != cfg.NumClients {
		return nil, fmt.Errorf("simnet: part sizes sum to %d, want %d", total, cfg.NumClients)
	}
	if cfg.NumUnstable > cfg.NumClients {
		return nil, fmt.Errorf("simnet: more unstable clients than clients")
	}
	secPerBatch := cfg.SecPerBatch
	if secPerBatch <= 0 {
		secPerBatch = 0.05
	}
	dropHorizon := cfg.DropHorizon
	if dropHorizon <= 0 {
		dropHorizon = 1000
	}

	root := rng.New(cfg.Seed)
	order := root.SplitLabeled(1).Perm(cfg.NumClients)

	cl := &Cluster{
		Clients:    make([]*ClientRuntime, cfg.NumClients),
		ServerUp:   &Link{Bandwidth: cfg.ServerBW},
		ServerDown: &Link{Bandwidth: cfg.ServerBW},
	}
	idx := 0
	for part, size := range parts {
		for j := 0; j < size; j++ {
			id := order[idx]
			idx++
			cr := root.SplitLabeled(uint64(1000 + id))
			speed := 0.7 + 0.6*cr.Float64() // persistent ±30% factor
			dr := cr.SplitLabeled(7)
			cl.Clients[id] = &ClientRuntime{
				ID:          id,
				Part:        part,
				DelayLo:     ranges[part][0],
				DelayHi:     ranges[part][1],
				SecPerBatch: secPerBatch * speed,
				UpBW:        cfg.UpBW,
				DownBW:      cfg.DownBW,
				DropAt:      Inf,
				delayRNG:    dr,
				delayRNG0:   *dr,
			}
		}
	}
	// Unstable clients: uniform choice, uniform drop times.
	ur := root.SplitLabeled(2)
	for _, id := range ur.Choose(cfg.NumClients, cfg.NumUnstable) {
		cl.Clients[id].DropAt = ur.Uniform(0, dropHorizon)
	}
	if cfg.Behavior.Enabled() {
		if err := applyBehavior(cl, cfg); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

func evenSplit(n, parts int) []int {
	out := make([]int, parts)
	base := n / parts
	rem := n % parts
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Reset clears the cluster's mutable simulation state — server link
// reservations and every client's delay stream — so consecutive runs over
// one cluster see identical conditions from time zero.
func (c *Cluster) Reset() {
	c.ServerUp.Reset()
	c.ServerDown.Reset()
	for _, cr := range c.Clients {
		cr.Reset()
	}
}

// UploadArrival models a client→server transfer started at now: the client
// pushes at its own link speed while the server link serializes concurrent
// transfers; the payload lands when both are done.
func (c *Cluster) UploadArrival(now float64, client *ClientRuntime, bytes int) float64 {
	clientDone := now
	if client.UpBW > 0 {
		clientDone = now + float64(bytes)/client.UpBW
	}
	serverDone := c.ServerUp.Transfer(now, bytes)
	if clientDone > serverDone {
		return clientDone
	}
	return serverDone
}

// DownloadArrival models a server→client transfer started at now.
func (c *Cluster) DownloadArrival(now float64, client *ClientRuntime, bytes int) float64 {
	clientDone := now
	if client.DownBW > 0 {
		clientDone = now + float64(bytes)/client.DownBW
	}
	serverDone := c.ServerDown.Transfer(now, bytes)
	if clientDone > serverDone {
		return clientDone
	}
	return serverDone
}
