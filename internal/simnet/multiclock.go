package simnet

import (
	"container/heap"
	"fmt"
	"sync"
)

// MultiClock merges K child virtual timelines into one deterministic event
// loop. Each child handle implements Clock, so an unmodified engine
// (fl.Method.RunOn) can run per child on its own goroutine while all
// callbacks — across every child — execute serially on the driver's
// goroutine in one global (time, seq) order. This is the determinism
// backbone of the hierarchical edge topology: K edge engines interleave on
// one merged timeline, so the same seed produces bit-identical runs no
// matter how the host schedules the child goroutines.
//
// The protocol has three phases:
//
//  1. Serial start: the composer starts child goroutine i, then blocks in
//     WaitArrive(i) until that child either parks inside its Clock.Run
//     (after scheduling its initial events) or gives up before reaching
//     Run (MarkDone). Starting children one at a time makes the heap's
//     seq assignment — the FIFO tie-break among equal timestamps —
//     deterministic.
//  2. Drive: with every child parked, the composer's goroutine pops and
//     executes events in (time, seq) order. All scheduling from inside
//     callbacks happens on this one goroutine, preserving the Clock
//     contract ("fn runs inside Run, never concurrently with another
//     callback") for every child at once.
//  3. Release: a child is released from its parked Run when it stops (its
//     remaining events are discarded, like Sim.Stop) or its own queue
//     drains. Release happens at a deterministic point of the Drive loop,
//     and the optional OnChildDone hook fires there — still on the driver
//     goroutine — so cross-child bookkeeping (the edge→cloud fold barrier
//     shrinking when an edge finishes) is deterministic too.
type MultiClock struct {
	mu   sync.Mutex
	cond *sync.Cond

	now    float64
	seq    int64
	events multiHeap

	arrived  []bool // child called Run and is parked (or was released)
	released []bool // child's Run has been allowed to return
	stopped  []bool // child called Stop; its queued events are discarded
	done     []bool // child goroutine finished without parking (or after release)
	pending  []int  // queued events per child

	// childNow is each child's own virtual time: the timestamp of its last
	// executed event (advanced to the merged clock on release). Under the
	// serial Drive it always equals the merged clock at the instants the
	// child can observe it, so reporting it from Now() is invisible there;
	// under DriveWorkers it is what lets children run ahead of or behind
	// the merged frontier without observing each other's progress.
	childNow []float64

	// Parallel-drive state (DriveWorkers): which children currently have an
	// event executing on a worker goroutine, and how many are in flight.
	running      []bool
	runningCount int

	// OnChildDone, when set before Drive, is called from the Drive loop —
	// on the driver goroutine, at a deterministic point — each time a child
	// is released. It must not schedule events on the released child.
	OnChildDone func(child int)
}

// NewMultiClock returns a merged timeline for k children, all at time 0.
func NewMultiClock(k int) *MultiClock {
	if k <= 0 {
		panic(fmt.Sprintf("simnet: MultiClock needs at least one child, got %d", k))
	}
	m := &MultiClock{
		arrived:  make([]bool, k),
		released: make([]bool, k),
		stopped:  make([]bool, k),
		done:     make([]bool, k),
		pending:  make([]int, k),
		childNow: make([]float64, k),
		running:  make([]bool, k),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Children reports k.
func (m *MultiClock) Children() int { return len(m.arrived) }

// Child returns child i's Clock handle. All handles share one timeline:
// Now is the merged clock, At schedules on the shared heap, Run parks until
// the driver releases the child, Stop discards the child's queued events.
func (m *MultiClock) Child(i int) Clock {
	if i < 0 || i >= len(m.arrived) {
		panic(fmt.Sprintf("simnet: MultiClock child %d out of range [0,%d)", i, len(m.arrived)))
	}
	return &childClock{m: m, i: i}
}

// multiEvent tags each scheduled callback with its owning child so Stop can
// discard one child's events without disturbing the others. sync marks a
// synchronization point (AtSync): an event that may touch cross-child state
// — engine folds, cloud pushes — and therefore executes alone, at a
// quiescent point, under DriveWorkers. The serial Drive ignores the flag
// (every event already runs alone there).
type multiEvent struct {
	at    float64
	seq   int64
	owner int
	sync  bool
	fn    func()
}

type multiHeap []multiEvent

func (h multiHeap) Len() int { return len(h) }
func (h multiHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h multiHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *multiHeap) Push(x any)   { *h = append(*h, x.(multiEvent)) }
func (h *multiHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type childClock struct {
	m *MultiClock
	i int
}

// Now returns the child's own virtual time. At every instant a child can
// observe under the serial Drive — inside its own callbacks, and in the
// release hook — this equals the merged clock, so the serial semantics are
// unchanged; under DriveWorkers it decouples children so a child running
// behind the merged frontier never sees another child's future.
func (c *childClock) Now() float64 {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	return c.m.childNow[c.i]
}

func (c *childClock) At(t float64, fn func()) {
	c.schedule(t, fn, false)
}

// AtSync schedules fn as a synchronization event (SyncScheduler): a
// callback that may touch cross-child state. Under the serial Drive it is
// exactly At; DriveWorkers runs it alone at a quiescent point.
func (c *childClock) AtSync(t float64, fn func()) {
	c.schedule(t, fn, true)
}

func (c *childClock) schedule(t float64, fn func(), sync bool) {
	m := c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	// The past-check is against the child's OWN time: a child lagging the
	// merged frontier must be able to schedule between its time and the
	// frontier (under the serial Drive the two coincide whenever a child
	// schedules, so this is the historical check there).
	if t < m.childNow[c.i] {
		panic("simnet: scheduling event in the past")
	}
	m.seq++
	m.pending[c.i]++
	heap.Push(&m.events, multiEvent{at: t, seq: m.seq, owner: c.i, sync: sync, fn: fn})
}

// Run parks the child until the driver releases it: when the child stops,
// or when its own queue drains with no way to refill (no cross-child
// scheduling exists). The serial-start protocol relies on this parking —
// WaitArrive returns once the child is here.
func (c *childClock) Run() {
	m := c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.arrived[c.i] = true
	m.cond.Broadcast()
	for !m.released[c.i] {
		m.cond.Wait()
	}
}

// Stop discards the child's queued events; its parked Run returns at the
// driver's next release check (mirroring Sim.Stop's semantics).
func (c *childClock) Stop() {
	m := c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped[c.i] = true
	m.cond.Broadcast()
}

// WaitArrive blocks until child i parks inside Run or is marked done
// (its goroutine gave up before reaching Run). The composer calls it after
// starting each child goroutine, before starting the next.
func (m *MultiClock) WaitArrive(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.arrived[i] && !m.done[i] {
		m.cond.Wait()
	}
}

// MarkDone records that child i's goroutine has finished. A child that
// errors out before ever calling Run must call this (a deferred MarkDone
// covers both cases), or WaitArrive and Drive would wait forever.
func (m *MultiClock) MarkDone(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[i] = true
	m.stopped[i] = true
	m.cond.Broadcast()
}

// releaseLocked marks child i released and fires OnChildDone. Caller holds
// mu; the hook runs unlocked so it may call back into child handles (other
// children's At from a fold, never the released child's).
func (m *MultiClock) releaseLocked(i int) {
	m.released[i] = true
	// A released child observes the merged clock from here on (the
	// OnChildDone hook stamps retirements with handle.Now()), exactly as it
	// did when Now was the merged clock.
	if m.now > m.childNow[i] {
		m.childNow[i] = m.now
	}
	m.cond.Broadcast()
	if hook := m.OnChildDone; hook != nil {
		m.mu.Unlock()
		hook(i)
		m.mu.Lock()
	}
}

// Drive executes the merged timeline: events pop in (time, seq) order and
// run on the caller's goroutine. It returns when every child has been
// released. Call only after WaitArrive has returned for every child.
func (m *MultiClock) Drive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		// Release every parked child that can no longer make progress:
		// stopped, or out of queued events. Releasing before popping keeps
		// the hook's ordering deterministic relative to event execution.
		for i := range m.arrived {
			if m.arrived[i] && !m.released[i] && (m.stopped[i] || m.pending[i] == 0) {
				m.releaseLocked(i)
			}
		}
		// Discard events owned by stopped children (Sim.Stop semantics).
		for len(m.events) > 0 && m.stopped[m.events[0].owner] {
			e := heap.Pop(&m.events).(multiEvent)
			m.pending[e.owner]--
		}
		if len(m.events) == 0 {
			break
		}
		e := heap.Pop(&m.events).(multiEvent)
		m.pending[e.owner]--
		m.advanceLocked(e)
		m.mu.Unlock()
		e.fn()
		m.mu.Lock()
	}
	for i := range m.arrived {
		if !m.released[i] {
			m.releaseLocked(i)
		}
	}
}

// advanceLocked moves the merged clock and the owning child's clock to the
// event being executed. The merged clock is monotone (events pop in heap
// order; under DriveWorkers a child's late-scheduled event can sort before
// the frontier, which only its own clock follows).
func (m *MultiClock) advanceLocked(e multiEvent) {
	if e.at > m.now {
		m.now = e.at
	}
	if e.at > m.childNow[e.owner] {
		m.childNow[e.owner] = e.at
	}
}

// DriveWorkers executes the merged timeline with up to workers events in
// flight at once; workers <= 1 is exactly Drive. The parallel schedule
// produces bit-identical results to the serial one for engines that mark
// every cross-child interaction as a synchronization event (AtSync — the
// fl pacers' fold sites):
//
//   - Per-child order: a child's events still execute in (time, seq) order
//     — at most one of a child's events is in flight (running[owner]), and
//     the driver always dispatches the global heap minimum, so a child's
//     own sequence is the same sequence Drive executes.
//   - Sync events run alone: a sync event executes only at quiescence
//     (nothing in flight). Every event sorting before it has then executed,
//     and no event sorting before it can be created afterwards (children
//     schedule at or after their own current time), so the cross-child
//     state a sync event observes is a deterministic function of the seed.
//   - Releases are deterministic: a child becomes releasable only when its
//     queue drains or it stops, both of which can only happen at serially
//     executed events (a child's LAST queued event also waits for
//     quiescence below), and the release scan runs exactly at those points
//     — so OnChildDone ordering matches the serial drive's.
//
// Non-sync events of distinct children run concurrently; they must touch
// only owner-local state, which is the engine's threading contract (each
// edge engine owns its environment; only folds reach the shared cloud).
func (m *MultiClock) DriveWorkers(workers int) {
	if workers <= 1 {
		m.Drive()
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.runningCount == 0 {
			// Quiescent bookkeeping, exactly the serial Drive's: release
			// children that cannot progress, drop stopped children's events.
			for i := range m.arrived {
				if m.arrived[i] && !m.released[i] && (m.stopped[i] || m.pending[i] == 0) {
					m.releaseLocked(i)
				}
			}
			for len(m.events) > 0 && m.stopped[m.events[0].owner] {
				e := heap.Pop(&m.events).(multiEvent)
				m.pending[e.owner]--
			}
			if len(m.events) == 0 {
				break
			}
		}
		if len(m.events) == 0 {
			// In-flight events may still schedule; wait for a completion.
			m.cond.Wait()
			continue
		}
		e := m.events[0]
		if m.stopped[e.owner] {
			heap.Pop(&m.events)
			m.pending[e.owner]--
			continue
		}
		if e.sync || m.pending[e.owner] == 1 {
			// Synchronization points and a child's last queued event run
			// alone on this goroutine, after everything in flight lands.
			if m.runningCount > 0 {
				m.cond.Wait()
				continue
			}
			heap.Pop(&m.events)
			m.pending[e.owner]--
			m.advanceLocked(e)
			m.mu.Unlock()
			e.fn()
			m.mu.Lock()
			continue
		}
		if m.running[e.owner] || m.runningCount >= workers {
			m.cond.Wait()
			continue
		}
		heap.Pop(&m.events)
		m.pending[e.owner]--
		m.advanceLocked(e)
		m.running[e.owner] = true
		m.runningCount++
		go func(e multiEvent) {
			e.fn()
			m.mu.Lock()
			m.running[e.owner] = false
			m.runningCount--
			m.cond.Broadcast()
			m.mu.Unlock()
		}(e)
	}
	for i := range m.arrived {
		if !m.released[i] {
			m.releaseLocked(i)
		}
	}
}
