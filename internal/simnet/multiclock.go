package simnet

import (
	"container/heap"
	"fmt"
	"sync"
)

// MultiClock merges K child virtual timelines into one deterministic event
// loop. Each child handle implements Clock, so an unmodified engine
// (fl.Method.RunOn) can run per child on its own goroutine while all
// callbacks — across every child — execute serially on the driver's
// goroutine in one global (time, seq) order. This is the determinism
// backbone of the hierarchical edge topology: K edge engines interleave on
// one merged timeline, so the same seed produces bit-identical runs no
// matter how the host schedules the child goroutines.
//
// The protocol has three phases:
//
//  1. Serial start: the composer starts child goroutine i, then blocks in
//     WaitArrive(i) until that child either parks inside its Clock.Run
//     (after scheduling its initial events) or gives up before reaching
//     Run (MarkDone). Starting children one at a time makes the heap's
//     seq assignment — the FIFO tie-break among equal timestamps —
//     deterministic.
//  2. Drive: with every child parked, the composer's goroutine pops and
//     executes events in (time, seq) order. All scheduling from inside
//     callbacks happens on this one goroutine, preserving the Clock
//     contract ("fn runs inside Run, never concurrently with another
//     callback") for every child at once.
//  3. Release: a child is released from its parked Run when it stops (its
//     remaining events are discarded, like Sim.Stop) or its own queue
//     drains. Release happens at a deterministic point of the Drive loop,
//     and the optional OnChildDone hook fires there — still on the driver
//     goroutine — so cross-child bookkeeping (the edge→cloud fold barrier
//     shrinking when an edge finishes) is deterministic too.
type MultiClock struct {
	mu   sync.Mutex
	cond *sync.Cond

	now    float64
	seq    int64
	events multiHeap

	arrived  []bool // child called Run and is parked (or was released)
	released []bool // child's Run has been allowed to return
	stopped  []bool // child called Stop; its queued events are discarded
	done     []bool // child goroutine finished without parking (or after release)
	pending  []int  // queued events per child

	// OnChildDone, when set before Drive, is called from the Drive loop —
	// on the driver goroutine, at a deterministic point — each time a child
	// is released. It must not schedule events on the released child.
	OnChildDone func(child int)
}

// NewMultiClock returns a merged timeline for k children, all at time 0.
func NewMultiClock(k int) *MultiClock {
	if k <= 0 {
		panic(fmt.Sprintf("simnet: MultiClock needs at least one child, got %d", k))
	}
	m := &MultiClock{
		arrived:  make([]bool, k),
		released: make([]bool, k),
		stopped:  make([]bool, k),
		done:     make([]bool, k),
		pending:  make([]int, k),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Children reports k.
func (m *MultiClock) Children() int { return len(m.arrived) }

// Child returns child i's Clock handle. All handles share one timeline:
// Now is the merged clock, At schedules on the shared heap, Run parks until
// the driver releases the child, Stop discards the child's queued events.
func (m *MultiClock) Child(i int) Clock {
	if i < 0 || i >= len(m.arrived) {
		panic(fmt.Sprintf("simnet: MultiClock child %d out of range [0,%d)", i, len(m.arrived)))
	}
	return &childClock{m: m, i: i}
}

// multiEvent tags each scheduled callback with its owning child so Stop can
// discard one child's events without disturbing the others.
type multiEvent struct {
	at    float64
	seq   int64
	owner int
	fn    func()
}

type multiHeap []multiEvent

func (h multiHeap) Len() int { return len(h) }
func (h multiHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h multiHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *multiHeap) Push(x any)   { *h = append(*h, x.(multiEvent)) }
func (h *multiHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type childClock struct {
	m *MultiClock
	i int
}

func (c *childClock) Now() float64 {
	c.m.mu.Lock()
	defer c.m.mu.Unlock()
	return c.m.now
}

func (c *childClock) At(t float64, fn func()) {
	m := c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t < m.now {
		panic("simnet: scheduling event in the past")
	}
	m.seq++
	m.pending[c.i]++
	heap.Push(&m.events, multiEvent{at: t, seq: m.seq, owner: c.i, fn: fn})
}

// Run parks the child until the driver releases it: when the child stops,
// or when its own queue drains with no way to refill (no cross-child
// scheduling exists). The serial-start protocol relies on this parking —
// WaitArrive returns once the child is here.
func (c *childClock) Run() {
	m := c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.arrived[c.i] = true
	m.cond.Broadcast()
	for !m.released[c.i] {
		m.cond.Wait()
	}
}

// Stop discards the child's queued events; its parked Run returns at the
// driver's next release check (mirroring Sim.Stop's semantics).
func (c *childClock) Stop() {
	m := c.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped[c.i] = true
	m.cond.Broadcast()
}

// WaitArrive blocks until child i parks inside Run or is marked done
// (its goroutine gave up before reaching Run). The composer calls it after
// starting each child goroutine, before starting the next.
func (m *MultiClock) WaitArrive(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.arrived[i] && !m.done[i] {
		m.cond.Wait()
	}
}

// MarkDone records that child i's goroutine has finished. A child that
// errors out before ever calling Run must call this (a deferred MarkDone
// covers both cases), or WaitArrive and Drive would wait forever.
func (m *MultiClock) MarkDone(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[i] = true
	m.stopped[i] = true
	m.cond.Broadcast()
}

// releaseLocked marks child i released and fires OnChildDone. Caller holds
// mu; the hook runs unlocked so it may call back into child handles (other
// children's At from a fold, never the released child's).
func (m *MultiClock) releaseLocked(i int) {
	m.released[i] = true
	m.cond.Broadcast()
	if hook := m.OnChildDone; hook != nil {
		m.mu.Unlock()
		hook(i)
		m.mu.Lock()
	}
}

// Drive executes the merged timeline: events pop in (time, seq) order and
// run on the caller's goroutine. It returns when every child has been
// released. Call only after WaitArrive has returned for every child.
func (m *MultiClock) Drive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		// Release every parked child that can no longer make progress:
		// stopped, or out of queued events. Releasing before popping keeps
		// the hook's ordering deterministic relative to event execution.
		for i := range m.arrived {
			if m.arrived[i] && !m.released[i] && (m.stopped[i] || m.pending[i] == 0) {
				m.releaseLocked(i)
			}
		}
		// Discard events owned by stopped children (Sim.Stop semantics).
		for len(m.events) > 0 && m.stopped[m.events[0].owner] {
			e := heap.Pop(&m.events).(multiEvent)
			m.pending[e.owner]--
		}
		if len(m.events) == 0 {
			break
		}
		e := heap.Pop(&m.events).(multiEvent)
		m.pending[e.owner]--
		m.now = e.at
		m.mu.Unlock()
		e.fn()
		m.mu.Lock()
	}
	for i := range m.arrived {
		if !m.released[i] {
			m.releaseLocked(i)
		}
	}
}
