package simnet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// runChildren starts each child's body on its own goroutine with the
// serial-start protocol, drives the merged timeline and waits for every
// child to finish.
func runChildren(m *MultiClock, bodies []func(c Clock)) {
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body func(Clock)) {
			defer wg.Done()
			defer m.MarkDone(i)
			body(m.Child(i))
		}(i, body)
		m.WaitArrive(i)
	}
	m.Drive()
	wg.Wait()
}

// TestMultiClockMergesTimelines checks that events from different children
// interleave in global (time, seq) order, that Now is the shared clock, and
// that the trace is deterministic across repeated runs.
func TestMultiClockMergesTimelines(t *testing.T) {
	trace := func() []string {
		var log []string
		m := NewMultiClock(2)
		body := func(id int) func(c Clock) {
			return func(c Clock) {
				var tick func(n int)
				clock := c
				tick = func(n int) {
					if n >= 4 {
						return
					}
					log = append(log, fmt.Sprintf("c%d@%g", id, clock.Now()))
					clock.At(clock.Now()+float64(1+id), func() { tick(n + 1) })
				}
				clock.At(float64(id), func() { tick(0) })
				clock.Run()
			}
		}
		runChildren(m, []func(c Clock){body(0), body(1)})
		return log
	}
	got := trace()
	want := []string{
		"c0@0", "c1@1", "c0@1", "c0@2", "c1@3", "c0@3", "c1@5", "c1@7",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged trace = %v, want %v", got, want)
	}
	for rep := 0; rep < 5; rep++ {
		if again := trace(); !reflect.DeepEqual(again, got) {
			t.Fatalf("rep %d: trace %v != first %v", rep, again, got)
		}
	}
}

// TestMultiClockFIFOAmongTies pins the tie-break: equal timestamps fire in
// scheduling order, and the serial-start protocol makes that order the
// child-start order.
func TestMultiClockFIFOAmongTies(t *testing.T) {
	var log []string
	m := NewMultiClock(3)
	body := func(id int) func(c Clock) {
		return func(c Clock) {
			c.At(1, func() { log = append(log, fmt.Sprintf("c%d", id)) })
			c.Run()
		}
	}
	runChildren(m, []func(c Clock){body(0), body(1), body(2)})
	if want := []string{"c0", "c1", "c2"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("tie order = %v, want %v", log, want)
	}
}

// TestMultiClockStopDiscardsOneChild checks Sim.Stop semantics per child:
// a stopped child's queued events vanish, the others keep running.
func TestMultiClockStopDiscardsOneChild(t *testing.T) {
	var log []string
	m := NewMultiClock(2)
	quitter := func(c Clock) {
		c.At(1, func() {
			log = append(log, "quit@1")
			c.Stop()
		})
		c.At(2, func() { log = append(log, "quitter@2 (must not fire)") })
		c.Run()
	}
	stayer := func(c Clock) {
		c.At(3, func() { log = append(log, "stayer@3") })
		c.Run()
	}
	runChildren(m, []func(c Clock){quitter, stayer})
	if want := []string{"quit@1", "stayer@3"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

// TestMultiClockOnChildDone checks the release hook fires once per child on
// the driver goroutine, in deterministic order: first the child whose queue
// drains earliest, then the rest.
func TestMultiClockOnChildDone(t *testing.T) {
	var order []int
	m := NewMultiClock(2)
	m.OnChildDone = func(i int) { order = append(order, i) }
	short := func(c Clock) {
		c.At(1, func() {})
		c.Run()
	}
	long := func(c Clock) {
		c.At(5, func() {})
		c.Run()
	}
	runChildren(m, []func(c Clock){long, short})
	if want := []int{1, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("release order = %v, want %v", order, want)
	}
}

// TestMultiClockDeadChildBeforeRun checks that a child goroutine erroring
// out before reaching Run (MarkDone without arrival) neither blocks
// WaitArrive nor stalls Drive.
func TestMultiClockDeadChildBeforeRun(t *testing.T) {
	fired := false
	m := NewMultiClock(2)
	dead := func(c Clock) { /* returns without calling Run */ }
	live := func(c Clock) {
		c.At(1, func() { fired = true })
		c.Run()
	}
	runChildren(m, []func(c Clock){dead, live})
	if !fired {
		t.Fatal("live child's event did not fire")
	}
}

// TestMultiClockPastSchedulingPanics mirrors Sim.At's causality guard.
func TestMultiClockPastSchedulingPanics(t *testing.T) {
	m := NewMultiClock(2)
	panicked := make(chan bool, 1)
	scheduler := func(c Clock) {
		c.At(5, func() {
			func() {
				defer func() { panicked <- recover() != nil }()
				c.At(1, func() {}) // the merged clock is already at 5
			}()
		})
		c.Run()
	}
	idle := func(c Clock) { c.Run() }
	runChildren(m, []func(c Clock){scheduler, idle})
	if !<-panicked {
		t.Fatal("scheduling in the past did not panic")
	}
}
