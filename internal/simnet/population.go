package simnet

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/robust"
)

// Population is the lazy form of the client population: a client exists as
// (seed, id) until someone asks for it. Every per-client attribute — part,
// speed, delay stream, drop time, drift/churn schedule, attack role — is
// derived on demand from the same labeled RNG streams NewCluster draws
// eagerly, so a materialized client is bit-identical to its eager twin (the
// equivalence is pinned by TestPopulationMatchesEagerCluster).
//
// What has to be precomputed is exactly the set of draws that are
// sequential on a shared stream and therefore cannot be derived per id:
//
//   - the part-assignment permutation (root label 1),
//   - the unstable-client choice and its interleaved drop times (label 2),
//   - the churn and late-join membership choices (population label 3),
//   - the attacker set (label 4, or the part-ranked tail).
//
// These are small index tables — O(N) ids and O(dynamic fraction · N)
// map entries, a few bytes per client — while everything heavy (the delay
// stream, drift/churn tracks, the ClientRuntime itself) stays un-built
// until a dispatch touches the client. Steady-state live state is
// O(touched clients), which under cohort sampling is O(cohort · rounds),
// not O(N).
//
// Population is not safe for concurrent use: like the rest of the
// simulator it lives on the single clock goroutine.
type Population struct {
	n                      int
	ranges                 [][2]float64
	secPerBatch            float64
	dropHorizon            float64
	upBW, downBW, serverBW float64
	seed                   uint64

	behavior   BehaviorConfig // withDefaults applied when behaviorOn
	behaviorOn bool
	attackKind robust.Kind

	root *rng.RNG // never advanced; anchors the pure labeled splits

	part     []int32          // id → delay part
	dropAt   map[int]float64  // finite permanent-drop times
	churnSet map[int]struct{} // churn membership (population draw)
	joinAt   map[int]float64  // late joiners' start times
	attacked map[int]struct{} // attacker membership

	churnTracks map[int]*churnTrack    // lazily built, shared with runtimes
	runtimes    map[int]*ClientRuntime // touched-client cache
}

// NewPopulation validates the configuration and builds the lazy population:
// the shared-stream index tables are drawn now, everything per-client is
// deferred to Materialize. Validation and error text match NewCluster's.
func NewPopulation(cfg ClusterConfig) (*Population, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("simnet: NumClients must be positive")
	}
	ranges := cfg.DelayRanges
	if len(ranges) == 0 {
		ranges = DefaultDelayRanges
	}
	parts := cfg.PartSizes
	if len(parts) == 0 {
		parts = evenSplit(cfg.NumClients, len(ranges))
	}
	if len(parts) != len(ranges) {
		return nil, fmt.Errorf("simnet: %d part sizes for %d delay ranges", len(parts), len(ranges))
	}
	total := 0
	for _, p := range parts {
		total += p
	}
	if total != cfg.NumClients {
		return nil, fmt.Errorf("simnet: part sizes sum to %d, want %d", total, cfg.NumClients)
	}
	if cfg.NumUnstable > cfg.NumClients {
		return nil, fmt.Errorf("simnet: more unstable clients than clients")
	}
	secPerBatch := cfg.SecPerBatch
	if secPerBatch <= 0 {
		secPerBatch = 0.05
	}
	dropHorizon := cfg.DropHorizon
	if dropHorizon <= 0 {
		dropHorizon = 1000
	}

	p := &Population{
		n:           cfg.NumClients,
		ranges:      ranges,
		secPerBatch: secPerBatch,
		dropHorizon: dropHorizon,
		upBW:        cfg.UpBW,
		downBW:      cfg.DownBW,
		serverBW:    cfg.ServerBW,
		seed:        cfg.Seed,
		root:        rng.New(cfg.Seed),
		part:        make([]int32, cfg.NumClients),
		dropAt:      map[int]float64{},
		churnTracks: map[int]*churnTrack{},
		runtimes:    map[int]*ClientRuntime{},
	}

	// Part assignment: the same permutation walk NewCluster does, stored
	// as an id-indexed table instead of N runtimes.
	order := p.root.SplitLabeled(1).Perm(p.n)
	idx := 0
	for part, size := range parts {
		for j := 0; j < size; j++ {
			p.part[order[idx]] = int32(part)
			idx++
		}
	}

	// Unstable clients: the choice and the drop times interleave on one
	// stream, so both are drawn here, in the eager order.
	ur := p.root.SplitLabeled(2)
	for _, id := range ur.Choose(p.n, cfg.NumUnstable) {
		p.dropAt[id] = ur.Uniform(0, dropHorizon)
	}

	if cfg.Behavior.Enabled() {
		b := cfg.Behavior.withDefaults()
		p.behavior = b
		p.behaviorOn = true
		// The population stream is sequential: churn membership first,
		// then late-join membership, exactly as applyBehavior draws them.
		pop := p.root.SplitLabeled(behaviorPopLabel)
		if b.ChurnFrac > 0 {
			p.churnSet = map[int]struct{}{}
			for _, id := range pop.Choose(p.n, fracCount(b.ChurnFrac, p.n)) {
				p.churnSet[id] = struct{}{}
			}
		}
		if b.LateJoinFrac > 0 {
			p.joinAt = map[int]float64{}
			for _, id := range pop.Choose(p.n, fracCount(b.LateJoinFrac, p.n)) {
				cr := p.root.SplitLabeled(uint64(1000 + id))
				p.joinAt[id] = cr.SplitLabeled(clientLateJoinLabel).Uniform(0, b.LateJoinHorizon)
			}
		}
		if b.attackOn() {
			kind, err := robust.ParseKind(b.AttackKind)
			if err != nil {
				return nil, err
			}
			p.attackKind = kind
			var ids []int
			if b.AttackTail {
				ids = tailParts(p.part, fracCount(b.AttackFrac, p.n))
			} else {
				ids = AttackTargets(cfg.Seed, p.n, b.AttackFrac)
			}
			p.attacked = map[int]struct{}{}
			for _, id := range ids {
				p.attacked[id] = struct{}{}
			}
		}
	}
	return p, nil
}

// NumClients returns the population size.
func (p *Population) NumClients() int { return p.n }

// Part returns the delay part of client id without materializing it.
func (p *Population) Part(id int) int { return int(p.part[id]) }

// Speed returns the client's persistent compute-speed factor — the first
// draw of its labeled stream, derived without allocation.
func (p *Population) Speed(id int) float64 {
	cr := p.root.SplitLabeledValue(uint64(1000 + id))
	return 0.7 + 0.6*cr.Float64()
}

// SecPerBatch returns the client's per-mini-batch compute time.
func (p *Population) SecPerBatch(id int) float64 { return p.secPerBatch * p.Speed(id) }

// DropTime returns the client's permanent departure time (+Inf if stable).
func (p *Population) DropTime(id int) float64 {
	if t, ok := p.dropAt[id]; ok {
		return t
	}
	return Inf
}

// JoinTime returns when the client first comes online (0 unless late-joining).
func (p *Population) JoinTime(id int) float64 { return p.joinAt[id] }

// AttackOf returns the client's malicious role (zero value = honest).
func (p *Population) AttackOf(id int) robust.Attack {
	if _, ok := p.attacked[id]; ok {
		return robust.Attack{Kind: p.attackKind, Scale: p.behavior.AttackScale}
	}
	return robust.Attack{}
}

// churnFor returns the client's churn schedule, building and caching it on
// first use. Tracks are shared with materialized runtimes: the schedule is
// a pure function of (seed, queried horizon), so sharing cannot skew it.
func (p *Population) churnFor(id int) *churnTrack {
	if t, ok := p.churnTracks[id]; ok {
		return t
	}
	cr := p.root.SplitLabeled(uint64(1000 + id))
	t := newChurnTrack(cr.SplitLabeled(clientChurnLabel), p.behavior)
	p.churnTracks[id] = t
	return t
}

// Available reports whether client id is online at time t — the lazy twin
// of ClientRuntime.Available, answered from the index tables plus the
// client's (cached) churn schedule, without building a runtime.
func (p *Population) Available(id int, t float64) bool {
	if t >= p.DropTime(id) || t < p.JoinTime(id) {
		return false
	}
	if p.churnSet != nil {
		if _, ok := p.churnSet[id]; ok {
			return !p.churnFor(id).OfflineAt(t)
		}
	}
	return true
}

// NextOnline returns the earliest time >= t at which client id is online
// (+Inf if never again) — the lazy twin of ClientRuntime.NextOnline.
func (p *Population) NextOnline(id int, t float64) float64 {
	if j := p.JoinTime(id); t < j {
		t = j
	}
	if p.churnSet != nil {
		if _, ok := p.churnSet[id]; ok {
			t = p.churnFor(id).NextOnline(t)
		}
	}
	if t >= p.DropTime(id) {
		return Inf
	}
	return t
}

// ExpectedLatency is the profiling estimate for client id — nominal
// compute plus mean injected delay — derived without materializing it.
func (p *Population) ExpectedLatency(id int, batchSteps int) float64 {
	rg := p.ranges[p.part[id]]
	return float64(batchSteps)*p.SecPerBatch(id) + (rg[0]+rg[1])/2
}

// Materialize builds (or returns the cached) full ClientRuntime for id,
// bit-identical to the one NewCluster would have built eagerly. Touched
// runtimes are cached for the population's lifetime: the per-round delay
// stream is consumable state, so a client that trains twice must keep
// drawing from where it left off.
func (p *Population) Materialize(id int) *ClientRuntime {
	if c, ok := p.runtimes[id]; ok {
		return c
	}
	cr := p.root.SplitLabeled(uint64(1000 + id))
	speed := 0.7 + 0.6*cr.Float64() // persistent ±30% factor
	dr := cr.SplitLabeled(7)
	rg := p.ranges[p.part[id]]
	c := &ClientRuntime{
		ID:          id,
		Part:        int(p.part[id]),
		DelayLo:     rg[0],
		DelayHi:     rg[1],
		SecPerBatch: p.secPerBatch * speed,
		UpBW:        p.upBW,
		DownBW:      p.downBW,
		DropAt:      p.DropTime(id),
		JoinAt:      p.JoinTime(id),
		Attack:      p.AttackOf(id),
		delayRNG:    dr,
		delayRNG0:   *dr,
	}
	if p.behaviorOn && p.behavior.DriftMag > 0 {
		c.drift = newDriftTrack(cr.SplitLabeled(clientDriftLabel), p.behavior)
	}
	if p.churnSet != nil {
		if _, ok := p.churnSet[id]; ok {
			c.churn = p.churnFor(id)
		}
	}
	p.runtimes[id] = c
	return c
}

// Materialized reports how many runtimes have been built — the number the
// memory-ceiling assertions watch.
func (p *Population) Materialized() int { return len(p.runtimes) }

// Reset rewinds the consumable randomness of every touched runtime, so a
// fresh run over the same population draws the same delays. Untouched
// clients have no consumable state yet.
func (p *Population) Reset() {
	for _, c := range p.runtimes {
		c.Reset()
	}
}

// Links returns a Cluster shell carrying only the server's shared links —
// the piece of Cluster the transfer-arrival model needs. Its Clients slice
// is empty: lazy environments resolve runtimes through the population.
func (p *Population) Links() *Cluster {
	return &Cluster{
		ServerUp:   &Link{Bandwidth: p.serverBW},
		ServerDown: &Link{Bandwidth: p.serverBW},
	}
}

// Cluster materializes the entire population — the eager construction,
// now expressed as "touch every client". NewCluster delegates here.
func (p *Population) Cluster() *Cluster {
	cl := &Cluster{
		Clients:    make([]*ClientRuntime, p.n),
		ServerUp:   &Link{Bandwidth: p.serverBW},
		ServerDown: &Link{Bandwidth: p.serverBW},
	}
	for id := range cl.Clients {
		cl.Clients[id] = p.Materialize(id)
	}
	return cl
}

// tailParts picks the k slowest clients from the part table — largest part
// wins, ties to the lower id — the same ranking tailClients applies to
// materialized runtimes.
func tailParts(part []int32, k int) []int {
	ids := make([]int, len(part))
	for i := range ids {
		ids[i] = i
	}
	// Stable two-key sort without materializing runtimes: part descending
	// with index ascending as the tie-break, which is exactly what the
	// stable sort over ids in tailClients produces.
	sort.SliceStable(ids, func(a, b int) bool {
		pa, pb := part[ids[a]], part[ids[b]]
		if pa != pb {
			return pa > pb
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
