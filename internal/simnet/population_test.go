package simnet

import (
	"math"
	"testing"
)

// populationConfigs spans the regimes the lazy derivation must reproduce:
// the static paper population, explicit part sizes, and every dynamic
// regime at once (drift + churn + late join + attack, uniform and tail).
func populationConfigs() map[string]ClusterConfig {
	return map[string]ClusterConfig{
		"static": {
			NumClients: 40, NumUnstable: 6, DropHorizon: 900,
			SecPerBatch: 0.08, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 8 << 20,
			Seed: 11,
		},
		"partsizes": {
			NumClients: 30, PartSizes: []int{10, 8, 6, 4, 2},
			NumUnstable: 3, SecPerBatch: 0.05, Seed: 7,
		},
		"dynamic": {
			NumClients: 36, NumUnstable: 4, DropHorizon: 1500,
			SecPerBatch: 0.06, UpBW: 1 << 20, DownBW: 1 << 20, ServerBW: 8 << 20,
			Seed: 23,
			Behavior: BehaviorConfig{
				DriftMag: 0.2, DriftInterval: 40,
				ChurnFrac: 0.3, LateJoinFrac: 0.2,
				AttackFrac: 0.25, AttackKind: "scale", AttackScale: -3,
			},
		},
		"tail-attack": {
			NumClients: 25, NumUnstable: 2, SecPerBatch: 0.05, Seed: 5,
			Behavior: BehaviorConfig{
				AttackFrac: 0.3, AttackKind: "labelflip", AttackTail: true,
			},
		},
	}
}

// TestPopulationMatchesEagerCluster pins the lazy contract: a client
// materialized on demand from (seed, id) is byte-for-byte the client the
// original eager NewCluster built — same part, speed, drop/join times,
// same delay stream state, same drift multipliers and churn windows, same
// attack role.
func TestPopulationMatchesEagerCluster(t *testing.T) {
	for name, cfg := range populationConfigs() {
		t.Run(name, func(t *testing.T) {
			eager, err := newClusterEager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pop, err := NewPopulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Touch lazy clients in a scrambled order: derivation must not
			// depend on materialization order.
			n := cfg.NumClients
			for j := 0; j < n; j++ {
				id := (j*17 + 5) % n
				e, l := eager.Clients[id], pop.Materialize(id)
				if e.ID != l.ID || e.Part != l.Part {
					t.Fatalf("client %d: part %d vs %d", id, e.Part, l.Part)
				}
				if e.DelayLo != l.DelayLo || e.DelayHi != l.DelayHi {
					t.Fatalf("client %d: delay range (%v,%v) vs (%v,%v)", id, e.DelayLo, e.DelayHi, l.DelayLo, l.DelayHi)
				}
				if e.SecPerBatch != l.SecPerBatch {
					t.Fatalf("client %d: SecPerBatch %v vs %v", id, e.SecPerBatch, l.SecPerBatch)
				}
				if e.UpBW != l.UpBW || e.DownBW != l.DownBW {
					t.Fatalf("client %d: link speeds differ", id)
				}
				if e.DropAt != l.DropAt && !(math.IsInf(e.DropAt, 1) && math.IsInf(l.DropAt, 1)) {
					t.Fatalf("client %d: DropAt %v vs %v", id, e.DropAt, l.DropAt)
				}
				if e.JoinAt != l.JoinAt {
					t.Fatalf("client %d: JoinAt %v vs %v", id, e.JoinAt, l.JoinAt)
				}
				if e.Attack != l.Attack {
					t.Fatalf("client %d: attack %+v vs %+v", id, e.Attack, l.Attack)
				}
				// Consumable delay stream: identical draw sequences.
				for k := 0; k < 5; k++ {
					if ed, ld := e.RoundDelay(), l.RoundDelay(); ed != ld {
						t.Fatalf("client %d draw %d: delay %v vs %v", id, k, ed, ld)
					}
				}
				// Drift multipliers are pure in (seed, t); probe a few times.
				for _, at := range []float64{0, 35, 90, 400} {
					if em, lm := e.SpeedMultiplier(at), l.SpeedMultiplier(at); em != lm {
						t.Fatalf("client %d: drift at t=%v %v vs %v", id, at, em, lm)
					}
				}
				// Churn windows: probe availability across the horizon.
				for at := 0.0; at < 2000; at += 93 {
					if ea, la := e.Available(at), l.Available(at); ea != la {
						t.Fatalf("client %d: available(%v) %v vs %v", id, at, ea, la)
					}
					if en, ln := e.NextOnline(at), l.NextOnline(at); en != ln {
						t.Fatalf("client %d: NextOnline(%v) %v vs %v", id, at, en, ln)
					}
				}
			}
		})
	}
}

// TestPopulationPureQueries pins the no-materialization query surface
// against the materialized runtime: Available/NextOnline/ExpectedLatency/
// Part/Speed answered from the index tables must agree with the full
// ClientRuntime, and answering them must not build runtimes.
func TestPopulationPureQueries(t *testing.T) {
	for name, cfg := range populationConfigs() {
		t.Run(name, func(t *testing.T) {
			queried, err := NewPopulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			materialized, err := NewPopulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for id := 0; id < cfg.NumClients; id++ {
				rt := materialized.Materialize(id)
				if got := queried.Part(id); got != rt.Part {
					t.Fatalf("client %d: Part %d vs runtime %d", id, got, rt.Part)
				}
				if got := queried.SecPerBatch(id); got != rt.SecPerBatch {
					t.Fatalf("client %d: SecPerBatch %v vs runtime %v", id, got, rt.SecPerBatch)
				}
				for _, steps := range []int{1, 9} {
					if got, want := queried.ExpectedLatency(id, steps), rt.ExpectedLatency(steps); got != want {
						t.Fatalf("client %d: ExpectedLatency(%d) %v vs %v", id, steps, got, want)
					}
				}
				for at := 0.0; at < 1200; at += 111 {
					if got, want := queried.Available(id, at), rt.Available(at); got != want {
						t.Fatalf("client %d: Available(%v) %v vs %v", id, at, got, want)
					}
					if got, want := queried.NextOnline(id, at), rt.NextOnline(at); got != want {
						t.Fatalf("client %d: NextOnline(%v) %v vs %v", id, at, got, want)
					}
				}
			}
			if got := queried.Materialized(); got != 0 {
				t.Fatalf("pure queries materialized %d runtimes; want 0", got)
			}
		})
	}
}

// TestPopulationResetRewindsTouchedStreams mirrors Cluster.Reset for the
// lazy path: after Reset, a touched client's delay stream replays.
func TestPopulationResetRewindsTouchedStreams(t *testing.T) {
	cfg := populationConfigs()["static"]
	pop, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := pop.Materialize(3)
	first := []float64{c.RoundDelay(), c.RoundDelay(), c.RoundDelay()}
	pop.Reset()
	for i, want := range first {
		if got := c.RoundDelay(); got != want {
			t.Fatalf("draw %d after Reset: %v, want %v", i, got, want)
		}
	}
}
