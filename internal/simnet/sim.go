// Package simnet is the discrete-event cluster simulator the experiments
// run on. The paper evaluates on real clusters but simulates heterogeneity
// by injecting random per-round delays into client computations (§6
// "Simulating Different Performance Tiers"); this package injects the same
// delays into a virtual clock instead of a wall clock, so time-to-accuracy
// experiments are deterministic and run in seconds.
//
// The simulator provides three building blocks:
//
//   - Sim: an event loop with a virtual clock (events fire in time order,
//     FIFO among ties),
//   - Link: a serialized bandwidth resource modelling the server's shared
//     uplink/downlink — the thing asynchronous FL methods bottleneck on,
//   - Cluster: the client population with per-part delay ranges, per-client
//     compute speeds and the paper's 10 "unstable" clients that drop out
//     permanently at a random time.
package simnet

import (
	"container/heap"
	"math"
)

// Clock is the timeline half of an execution fabric: the surface the
// engine's pacers use to observe time and sequence callbacks. Sim implements
// it with a virtual clock (the simulated fabric); the live TCP transport
// implements it with a wall clock behind a serialized run loop. Both promise
// the same discipline: every callback runs on the single goroutine inside
// Run, so engine state never needs locking.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
	// At schedules fn at absolute time t. fn runs inside Run, never
	// concurrently with another callback.
	At(t float64, fn func())
	// Run executes callbacks until the timeline drains or Stop is called.
	Run()
	// Stop halts the loop; callbacks not yet executed are discarded.
	Stop()
}

// SyncScheduler is the optional clock capability behind parallel timeline
// driving: AtSync schedules a callback that may touch state shared across
// timelines (an engine fold, a cloud push), which a parallel driver
// (MultiClock.DriveWorkers) executes alone at a quiescent point. Clocks
// without the capability — Sim, the live transport — treat every event that
// way already, so callers fall back to At.
type SyncScheduler interface {
	AtSync(t float64, fn func())
}

var _ Clock = (*Sim)(nil)
var _ SyncScheduler = (*childClock)(nil)

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64 // tie-break: FIFO among equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop. The zero value is ready to use at time 0.
type Sim struct {
	now     float64
	events  eventHeap
	seq     int64
	stopped bool
}

// New returns a simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t. Scheduling in the past panics — it
// would silently reorder causality.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic("simnet: scheduling event in the past")
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) {
	if d < 0 {
		panic("simnet: negative delay")
	}
	s.At(s.now+d, fn)
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// Step fires the next event; it reports false when the queue is empty or
// the simulation has been stopped.
func (s *Sim) Step() bool {
	if s.stopped || len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run fires events until the queue drains or Stop is called.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (s *Sim) RunUntil(t float64) {
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Stop halts the loop; queued events are discarded by the next Run.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Sim) Stopped() bool { return s.stopped }

// Link is a serialized bandwidth resource (bytes/second). Concurrent
// transfers queue for capacity — this is what turns "all clients talk to
// the server at once" into the communication bottleneck the paper
// attributes to asynchronous FL.
//
// Reservations may arrive in any order of start time (the event-driven
// runners reserve a whole round's transfers when the round is scheduled, so
// a slow tier reserves far-future slots before a fast tier reserves earlier
// ones). Each transfer therefore gets the earliest free GAP at or after its
// start time, kept in a sorted, merged busy-interval list — a plain
// "free-at" cursor would let a far-future reservation block every earlier
// one.
type Link struct {
	Bandwidth float64 // bytes/second; <= 0 means infinite
	busy      []interval
}

type interval struct{ start, end float64 }

// Transfer reserves capacity for a payload starting no earlier than start
// and returns the completion time.
func (l *Link) Transfer(start float64, bytes int) float64 {
	if l.Bandwidth <= 0 {
		return start
	}
	d := float64(bytes) / l.Bandwidth
	if d <= 0 {
		return start
	}
	at := start
	idx := len(l.busy)
	for i, iv := range l.busy {
		if iv.end <= at {
			continue // interval entirely before our start
		}
		gapStart := at
		if iv.start > gapStart {
			// Gap before this interval: does the transfer fit?
			if iv.start-gapStart >= d {
				idx = i
				break
			}
		}
		// Overlaps or gap too small: push past this interval.
		if iv.end > at {
			at = iv.end
		}
		idx = i + 1
	}
	l.insert(idx, interval{start: at, end: at + d})
	return at + d
}

// insert places iv at position idx and merges adjacent touching intervals
// so the busy list stays small.
func (l *Link) insert(idx int, iv interval) {
	l.busy = append(l.busy, interval{})
	copy(l.busy[idx+1:], l.busy[idx:])
	l.busy[idx] = iv
	// Merge backwards and forwards while neighbours touch.
	const eps = 1e-9
	i := idx
	if i > 0 && l.busy[i-1].end+eps >= l.busy[i].start {
		l.busy[i-1].end = maxFloat(l.busy[i-1].end, l.busy[i].end)
		l.busy = append(l.busy[:i], l.busy[i+1:]...)
		i--
	}
	for i+1 < len(l.busy) && l.busy[i].end+eps >= l.busy[i+1].start {
		l.busy[i].end = maxFloat(l.busy[i].end, l.busy[i+1].end)
		l.busy = append(l.busy[:i+1], l.busy[i+2:]...)
	}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Busy reports the time the last reservation ends (0 when idle).
func (l *Link) Busy() float64 {
	if len(l.busy) == 0 {
		return 0
	}
	return l.busy[len(l.busy)-1].end
}

// Reservations reports the current busy-interval count (for tests).
func (l *Link) Reservations() int { return len(l.busy) }

// Reset clears all reservations (used between experiment repetitions).
func (l *Link) Reset() { l.busy = nil }

// Inf is the canonical "never" timestamp for drop times.
var Inf = math.Inf(1)
