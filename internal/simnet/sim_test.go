package simnet

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var fired []float64
		for _, r := range raw {
			tt := float64(r) / 10
			s.At(tt, func() { fired = append(fired, tt) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOAmongTies(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken out of FIFO order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var at1, at2 float64
	s.At(3, func() { at1 = s.Now() })
	s.After(7, func() { at2 = s.Now() })
	s.Run()
	if at1 != 3 || at2 != 7 {
		t.Fatalf("clock wrong: %v %v", at1, at2)
	}
	if s.Now() != 7 {
		t.Fatalf("final clock %v", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	hits := 0
	s.At(1, func() {
		s.After(1, func() {
			hits++
			if s.Now() != 2 {
				t.Errorf("nested event at %v", s.Now())
			}
		})
	})
	s.Run()
	if hits != 1 {
		t.Fatal("nested event did not fire")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := []float64{}
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v after RunUntil(3)", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d", s.Pending())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.At(float64(i), func() {
			count++
			if i == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt: %d events fired", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	l := &Link{Bandwidth: 100}
	a := l.Transfer(0, 100) // 1s
	b := l.Transfer(0, 100) // queued behind a
	c := l.Transfer(5, 100) // link free by then
	if a != 1 || b != 2 || c != 6 {
		t.Fatalf("transfers finished at %v %v %v, want 1 2 6", a, b, c)
	}
}

func TestInfiniteLinkIsInstant(t *testing.T) {
	l := &Link{}
	if got := l.Transfer(3, 1<<30); got != 3 {
		t.Fatalf("infinite link took time: %v", got)
	}
}

func TestLinkOutOfOrderReservations(t *testing.T) {
	// A far-future reservation must NOT delay transfers that start
	// earlier: tier 4 reserving its 230s upload at scheduling time was
	// starving tier 0's 5-second rounds before Link used gap allocation.
	l := &Link{Bandwidth: 100}
	late := l.Transfer(230, 100) // [230, 231]
	early := l.Transfer(5, 100)  // should land [5, 6], not queue at 231
	if late != 231 {
		t.Fatalf("late transfer finished at %v, want 231", late)
	}
	if early != 6 {
		t.Fatalf("early transfer finished at %v, want 6 (starved by future reservation)", early)
	}
}

func TestLinkGapTooSmallSkipped(t *testing.T) {
	l := &Link{Bandwidth: 1}
	l.Transfer(0, 10)  // [0,10]
	l.Transfer(12, 10) // [12,22]
	// A 5-second transfer starting at 8: gap [10,12) is too small, so it
	// must run after 22.
	if got := l.Transfer(8, 5); got != 27 {
		t.Fatalf("transfer finished at %v, want 27", got)
	}
	// A 2-second transfer starting at 9 fits exactly in [10,12).
	if got := l.Transfer(9, 2); got != 12 {
		t.Fatalf("gap-fit transfer finished at %v, want 12", got)
	}
}

func TestLinkIntervalsMerge(t *testing.T) {
	l := &Link{Bandwidth: 1}
	for i := 0; i < 100; i++ {
		l.Transfer(0, 1) // all back-to-back from 0
	}
	if l.Reservations() != 1 {
		t.Fatalf("adjacent reservations did not merge: %d intervals", l.Reservations())
	}
	if l.Busy() != 100 {
		t.Fatalf("Busy = %v, want 100", l.Busy())
	}
}

func TestLinkQueueMonotone(t *testing.T) {
	// Property: completion times are non-decreasing when requests arrive in
	// time order.
	f := func(raw []uint8) bool {
		l := &Link{Bandwidth: 10}
		now, last := 0.0, 0.0
		for _, r := range raw {
			now += float64(r%5) / 10
			fin := l.Transfer(now, int(r)+1)
			if fin < last || fin < now {
				return false
			}
			last = fin
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPartSizesAndRanges(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{NumClients: 50, NumUnstable: 5, DropHorizon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 5)
	unstable := 0
	for _, c := range cl.Clients {
		counts[c.Part]++
		want := DefaultDelayRanges[c.Part]
		if c.DelayLo != want[0] || c.DelayHi != want[1] {
			t.Fatalf("client %d delay range %v-%v for part %d", c.ID, c.DelayLo, c.DelayHi, c.Part)
		}
		if !math.IsInf(c.DropAt, 1) {
			unstable++
			if c.DropAt <= 0 || c.DropAt > 100 {
				t.Fatalf("drop time %v out of horizon", c.DropAt)
			}
		}
	}
	for p, n := range counts {
		if n != 10 {
			t.Fatalf("part %d has %d clients, want 10", p, n)
		}
	}
	if unstable != 5 {
		t.Fatalf("%d unstable clients, want 5", unstable)
	}
}

func TestClusterCustomPartSizes(t *testing.T) {
	sizes := []int{20, 10, 10, 5, 5}
	cl, err := NewCluster(ClusterConfig{NumClients: 50, PartSizes: sizes, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 5)
	for _, c := range cl.Clients {
		counts[c.Part]++
	}
	for p := range sizes {
		if counts[p] != sizes[p] {
			t.Fatalf("part %d has %d clients, want %d", p, counts[p], sizes[p])
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{NumClients: 0}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := NewCluster(ClusterConfig{NumClients: 10, PartSizes: []int{3, 3}}); err == nil {
		t.Fatal("mismatched part sizes accepted")
	}
	if _, err := NewCluster(ClusterConfig{NumClients: 10, PartSizes: []int{2, 2, 2, 2, 3}}); err == nil {
		t.Fatal("part sizes summing wrong accepted")
	}
	if _, err := NewCluster(ClusterConfig{NumClients: 3, NumUnstable: 5}); err == nil {
		t.Fatal("too many unstable clients accepted")
	}
}

func TestClusterDeterminism(t *testing.T) {
	a, _ := NewCluster(ClusterConfig{NumClients: 30, NumUnstable: 3, Seed: 7})
	b, _ := NewCluster(ClusterConfig{NumClients: 30, NumUnstable: 3, Seed: 7})
	for i := range a.Clients {
		ca, cb := a.Clients[i], b.Clients[i]
		if ca.Part != cb.Part || ca.SecPerBatch != cb.SecPerBatch || ca.DropAt != cb.DropAt {
			t.Fatalf("cluster not deterministic at client %d", i)
		}
		if ca.RoundDelay() != cb.RoundDelay() {
			t.Fatalf("delay streams diverge at client %d", i)
		}
	}
}

func TestRoundDelayWithinRange(t *testing.T) {
	cl, _ := NewCluster(ClusterConfig{NumClients: 25, Seed: 3})
	for _, c := range cl.Clients {
		for i := 0; i < 50; i++ {
			d := c.RoundDelay()
			if d < c.DelayLo || (c.DelayHi > c.DelayLo && d >= c.DelayHi) {
				t.Fatalf("client %d delay %v outside [%v,%v)", c.ID, d, c.DelayLo, c.DelayHi)
			}
		}
	}
}

func TestFasterPartsHaveLowerExpectedLatency(t *testing.T) {
	cl, _ := NewCluster(ClusterConfig{NumClients: 50, Seed: 4})
	meanByPart := make([]float64, 5)
	countByPart := make([]int, 5)
	for _, c := range cl.Clients {
		meanByPart[c.Part] += c.ExpectedLatency(18)
		countByPart[c.Part]++
	}
	for p := range meanByPart {
		meanByPart[p] /= float64(countByPart[p])
	}
	for p := 1; p < 5; p++ {
		if meanByPart[p] <= meanByPart[p-1] {
			t.Fatalf("part %d latency %v not above part %d latency %v",
				p, meanByPart[p], p-1, meanByPart[p-1])
		}
	}
}

func TestUploadArrivalBottleneck(t *testing.T) {
	cl, _ := NewCluster(ClusterConfig{NumClients: 5, UpBW: 1000, ServerBW: 1000, Seed: 5})
	// Five simultaneous 1000-byte uploads: each client takes 1s locally, the
	// server link serializes 5s of traffic → the last arrival is ~5s.
	var last float64
	for _, c := range cl.Clients {
		if got := cl.UploadArrival(0, c, 1000); got > last {
			last = got
		}
	}
	if last < 4.9 {
		t.Fatalf("server link did not serialize: last arrival %v", last)
	}
}

func TestDropsAreHonored(t *testing.T) {
	r := rng.New(1)
	_ = r
	cl, _ := NewCluster(ClusterConfig{NumClients: 10, NumUnstable: 10, DropHorizon: 50, Seed: 6})
	for _, c := range cl.Clients {
		if c.Available(c.DropAt + 1) {
			t.Fatal("client available after drop")
		}
		if !c.Available(0) && c.DropAt > 0 {
			t.Fatal("client unavailable before drop")
		}
	}
}
