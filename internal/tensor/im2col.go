package tensor

// Im2Col lowers a CHW image into a matrix of receptive-field columns so a
// convolution becomes one matrix multiply (the standard im2col transform).
//
// Input img has channels*h*w elements, laid out channel-major (CHW).
// Output is a (channels*kh*kw) × (outH*outW) matrix written into dst, where
// outH = (h+2*pad-kh)/stride + 1 and likewise for outW. Out-of-bounds
// (padding) positions contribute zeros.
func Im2Col(img []float64, channels, h, w, kh, kw, stride, pad int, dst *Mat) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if dst.R != channels*kh*kw || dst.C != outH*outW {
		panic("tensor: Im2Col dst shape mismatch")
	}
	if len(img) != channels*h*w {
		panic("tensor: Im2Col img length mismatch")
	}
	row := 0
	for c := 0; c < channels; c++ {
		chn := img[c*h*w : (c+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				out := dst.Row(row)
				row++
				col := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							out[col] = 0
							col++
						}
						continue
					}
					base := iy * w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							out[col] = 0
						} else {
							out[col] = chn[base+ix]
						}
						col++
					}
				}
			}
		}
	}
}

// Col2Im scatters gradient columns back into image space; it is the adjoint
// of Im2Col and accumulates (+=) into img, which the caller should zero
// first. Shapes mirror Im2Col.
func Col2Im(cols *Mat, channels, h, w, kh, kw, stride, pad int, img []float64) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if cols.R != channels*kh*kw || cols.C != outH*outW {
		panic("tensor: Col2Im cols shape mismatch")
	}
	if len(img) != channels*h*w {
		panic("tensor: Col2Im img length mismatch")
	}
	row := 0
	for c := 0; c < channels; c++ {
		chn := img[c*h*w : (c+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				in := cols.Row(row)
				row++
				col := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						col += outW
						continue
					}
					base := iy * w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							chn[base+ix] += in[col]
						}
						col++
					}
				}
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution/pool with the
// given input size, kernel, stride and padding.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
