package tensor

import (
	"math"
	"testing"
)

// im2colNaive is the obviously-correct reference: a freshly allocated output
// matrix filled by directly indexing the padded input, one (row, col) cell
// at a time. The production Im2Col must bit-match it even when writing into
// a dirty, reused scratch matrix.
func im2colNaive(img []float64, channels, h, w, kh, kw, stride, pad int) *Mat {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	dst := NewMat(channels*kh*kw, outH*outW)
	for c := 0; c < channels; c++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (c*kh+ky)*kw + kx
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						iy := oy*stride + ky - pad
						ix := ox*stride + kx - pad
						v := 0.0
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = img[(c*h+iy)*w+ix]
						}
						dst.Row(row)[oy*outW+ox] = v
					}
				}
			}
		}
	}
	return dst
}

// col2imNaive is the adjoint reference: scatter-accumulate each column cell
// back to its source pixel, skipping padding.
func col2imNaive(cols *Mat, channels, h, w, kh, kw, stride, pad int) []float64 {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	img := make([]float64, channels*h*w)
	for c := 0; c < channels; c++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := (c*kh+ky)*kw + kx
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						iy := oy*stride + ky - pad
						ix := ox*stride + kx - pad
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							img[(c*h+iy)*w+ix] += cols.Row(row)[oy*outW+ox]
						}
					}
				}
			}
		}
	}
	return img
}

// FuzzIm2colScratch drives Im2Col into a DIRTY reused scratch matrix (the
// conv layer's per-sample colCache) across fuzzer-chosen geometries and
// checks it bit-matches the naive fresh-allocation reference — i.e. the
// in-place path fully overwrites the scratch, padding zeros included, and
// never leaks a stale value from the previous sample. Col2Im is checked as
// the adjoint on the same geometry.
func FuzzIm2colScratch(f *testing.F) {
	f.Add(uint64(1), 1, 5, 5, 3, 3, 1, 1, math.NaN())
	f.Add(uint64(2), 3, 8, 6, 2, 4, 2, 0, 1e300)
	f.Add(uint64(3), 2, 4, 4, 4, 4, 3, 2, -0.0)
	f.Fuzz(func(t *testing.T, seed uint64, channels, h, w, kh, kw, stride, pad int, dirt float64) {
		if channels < 1 || channels > 4 || h < 1 || h > 12 || w < 1 || w > 12 {
			t.Skip()
		}
		if kh < 1 || kh > h+2*pad || kw < 1 || kw > w+2*pad {
			t.Skip()
		}
		if stride < 1 || stride > 4 || pad < 0 || pad > 3 {
			t.Skip()
		}
		img := fillVec(seed, channels*h*w)
		want := im2colNaive(img, channels, h, w, kh, kw, stride, pad)

		// The scratch arrives dirty: pre-fill with the fuzzer's dirt value
		// (NaN, huge, -0, ...) to catch any cell Im2Col fails to overwrite.
		got := NewMat(want.R, want.C)
		Fill(got.Data, dirt)
		Im2Col(img, channels, h, w, kh, kw, stride, pad, got)
		for i := range want.Data {
			if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("Im2Col[%d] = %x, naive = %x (geom c=%d h=%d w=%d k=%dx%d s=%d p=%d)",
					i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]),
					channels, h, w, kh, kw, stride, pad)
			}
		}
		// Second use of the same scratch, different image: reuse must be
		// invisible.
		img2 := fillVec(seed^0x9e3779b97f4a7c15, channels*h*w)
		want2 := im2colNaive(img2, channels, h, w, kh, kw, stride, pad)
		Im2Col(img2, channels, h, w, kh, kw, stride, pad, got)
		for i := range want2.Data {
			if math.Float64bits(want2.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("reused-scratch Im2Col[%d] = %x, naive = %x",
					i, math.Float64bits(got.Data[i]), math.Float64bits(want2.Data[i]))
			}
		}

		// Adjoint: Col2Im accumulates into a caller-zeroed image; both paths
		// add the same terms in the same row-major column order, so they
		// must agree bitwise too.
		wantImg := col2imNaive(want2, channels, h, w, kh, kw, stride, pad)
		gotImg := make([]float64, channels*h*w)
		Col2Im(got, channels, h, w, kh, kw, stride, pad, gotImg)
		for i := range wantImg {
			if math.Float64bits(wantImg[i]) != math.Float64bits(gotImg[i]) {
				t.Fatalf("Col2Im[%d] = %x, naive = %x", i,
					math.Float64bits(gotImg[i]), math.Float64bits(wantImg[i]))
			}
		}
	})
}
