package tensor

import (
	"testing"

	"repro/internal/rng"
)

func TestIm2ColKnownValues(t *testing.T) {
	// 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding → 4 columns.
	img := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	dst := NewMat(4, 4)
	Im2Col(img, 1, 3, 3, 2, 2, 1, 0, dst)
	// Column order is (oy, ox) row-major; row order is (ky, kx).
	want := [][]float64{
		{1, 2, 4, 5}, // kernel position (0,0)
		{2, 3, 5, 6}, // (0,1)
		{4, 5, 7, 8}, // (1,0)
		{5, 6, 8, 9}, // (1,1)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if dst.At(r, c) != want[r][c] {
				t.Fatalf("Im2Col[%d][%d] = %v, want %v", r, c, dst.At(r, c), want[r][c])
			}
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := []float64{1, 2, 3, 4} // 2x2
	outH := ConvOutSize(2, 3, 1, 1)
	dst := NewMat(9, outH*outH)
	Im2Col(img, 1, 2, 2, 3, 3, 1, 1, dst)
	// Center kernel tap row (ky=1,kx=1) should reproduce the image.
	center := dst.Row(4)
	for i, v := range img {
		if center[i] != v {
			t.Fatalf("center tap mismatch: %v", center)
		}
	}
	// Top-left tap at output (0,0) looks at (-1,-1): must be zero.
	if dst.At(0, 0) != 0 {
		t.Fatal("padding position not zero")
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// Adjoint identity: <Im2Col(x), y> == <x, Col2Im(y)> for all x, y.
	// This is exactly the property backprop relies on.
	r := rng.New(6)
	channels, h, w, kh, kw, stride, pad := 2, 5, 4, 3, 2, 1, 1
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	rows, cols := channels*kh*kw, outH*outW

	x := make([]float64, channels*h*w)
	for i := range x {
		x[i] = r.Norm()
	}
	y := NewMat(rows, cols)
	for i := range y.Data {
		y.Data[i] = r.Norm()
	}

	ax := NewMat(rows, cols)
	Im2Col(x, channels, h, w, kh, kw, stride, pad, ax)
	lhs := Dot(ax.Data, y.Data)

	aty := make([]float64, channels*h*w)
	Col2Im(y, channels, h, w, kh, kw, stride, pad, aty)
	rhs := Dot(x, aty)

	if !almostEq(lhs, rhs, 1e-9) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(32, 3, 1, 1) != 32 {
		t.Fatal("same-padding conv size wrong")
	}
	if ConvOutSize(32, 2, 2, 0) != 16 {
		t.Fatal("stride-2 pool size wrong")
	}
}

func TestIm2ColShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Im2Col did not panic on bad dst shape")
		}
	}()
	Im2Col(make([]float64, 9), 1, 3, 3, 2, 2, 1, 0, NewMat(3, 3))
}

func BenchmarkIm2Col(b *testing.B) {
	img := make([]float64, 3*32*32)
	outH := ConvOutSize(32, 3, 1, 1)
	dst := NewMat(3*3*3, outH*outH)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2Col(img, 3, 32, 32, 3, 3, 1, 1, dst)
	}
}
