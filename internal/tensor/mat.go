package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// Mat is a dense, row-major matrix. Data is length R*C; element (i,j) lives
// at Data[i*C+j]. The zero value is an empty matrix.
type Mat struct {
	R, C int
	Data []float64
}

// NewMat allocates an R×C zero matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic("tensor: NewMat with negative dimension")
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// MatFrom wraps an existing slice as an R×C matrix without copying.
func MatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: MatFrom %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// View repoints m at an existing slice as an r×c matrix without copying —
// the zero-alloc counterpart of MatFrom for long-lived view headers that
// are retargeted every call (layer weight views, per-sample row views).
func (m *Mat) View(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: View %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	m.R, m.C, m.Data = r, c, data
	return m
}

// EnsureMat returns an r×c matrix, reusing m's storage (and header) when
// its capacity suffices and allocating otherwise. Element contents are
// unspecified: callers must fully overwrite before reading. Shrinking and
// regrowing within capacity never allocates, which is what keeps layers
// alloc-free when batch shapes alternate (full batch / remainder batch /
// evaluation batches).
func EnsureMat(m *Mat, r, c int) *Mat {
	if m == nil || cap(m.Data) < r*c {
		return NewMat(r, c)
	}
	m.R, m.C, m.Data = r, c, m.Data[:r*c]
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i (no copy).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{R: m.R, C: m.C, Data: Copy(m.Data)}
}

// T returns a newly allocated transpose of m.
func (m *Mat) T() *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.C+i] = v
		}
	}
	return t
}

// parallelRowThreshold: below this many result elements the goroutine
// fan-out costs more than it saves.
const parallelRowThreshold = 16 * 1024

// mulIntoRow computes one output row of dst = a·b: out_i = Σ_k a_ik · b_k.
// k-outer loop: stream through b row-by-row, which keeps the inner loop a
// contiguous axpy (same summation order as the historical nested loop).
func mulIntoRow(dst, a, b *Mat, i int) {
	out := dst.Row(i)
	Zero(out)
	arow := a.Row(i)
	for k, av := range arow {
		if av == 0 {
			continue
		}
		Axpy(av, b.Data[k*b.C:(k+1)*b.C], out)
	}
}

// MulInto computes dst = a·b. Shapes must satisfy a.C == b.R,
// dst.R == a.R, dst.C == b.C. dst must not alias a or b.
func MulInto(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MulInto shape mismatch (%dx%d)·(%dx%d)→(%dx%d)",
			a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	if dst.R*dst.C >= parallelRowThreshold && dst.R > 1 {
		parallel.For(a.R, func(i int) { mulIntoRow(dst, a, b, i) })
		return
	}
	// Serial path: a named row kernel instead of a shared closure, so small
	// multiplies (every batch step of the training hot path) allocate
	// nothing — a func literal that also escapes into parallel.For would be
	// heap-allocated on every call.
	for i := 0; i < a.R; i++ {
		mulIntoRow(dst, a, b, i)
	}
}

// Mul returns a·b in a fresh matrix.
func Mul(a, b *Mat) *Mat {
	dst := NewMat(a.R, b.C)
	MulInto(dst, a, b)
	return dst
}

// MulTransAInto computes dst = aᵀ·b without materializing aᵀ.
// Shapes: a is K×M, b is K×N, dst is M×N.
func MulTransAInto(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MulTransAInto shape mismatch (%dx%d)ᵀ·(%dx%d)→(%dx%d)",
			a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	Zero(dst.Data)
	// Parallelizing over k would race on dst; parallelize over dst rows
	// instead when it is worth it, otherwise run serial.
	if dst.R >= 4 && dst.R*dst.C >= parallelRowThreshold {
		parallel.For(dst.R, func(i int) {
			out := dst.Row(i)
			for k := 0; k < a.R; k++ {
				av := a.At(k, i)
				if av == 0 {
					continue
				}
				Axpy(av, b.Row(k), out)
			}
		})
		return
	}
	// Serial path kept closure-free for the per-batch-step callers.
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(av, brow, dst.Data[i*dst.C:(i+1)*dst.C])
		}
	}
}

// MulTransBInto computes dst = a·bᵀ without materializing bᵀ.
// Shapes: a is M×K, b is N×K, dst is M×N.
func MulTransBInto(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("tensor: MulTransBInto shape mismatch (%dx%d)·(%dx%d)ᵀ→(%dx%d)",
			a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	if dst.R*dst.C >= parallelRowThreshold && dst.R > 1 {
		parallel.For(a.R, func(i int) { mulTransBRow(dst, a, b, i) })
		return
	}
	// Serial path kept closure-free for the per-batch-step callers.
	for i := 0; i < a.R; i++ {
		mulTransBRow(dst, a, b, i)
	}
}

// mulTransBRow computes row i of dst = a·bᵀ: out_j = ⟨a_i, b_j⟩.
//
// Four output columns are produced per pass with four independent
// accumulators — one per dot product, each fed in plain index order, so
// every out_j sees exactly the summation sequence of a naive Dot. The
// interleave exists for instruction-level parallelism: a single dot's adds
// form one dependency chain, four chains keep the FP adder busy.
func mulTransBRow(dst, a, b *Mat, i int) {
	arow := a.Row(i)
	out := dst.Row(i)
	n := len(arow)
	j := 0
	for ; j+4 <= b.R; j += 4 {
		b0 := b.Row(j)[:n]
		b1 := b.Row(j + 1)[:n]
		b2 := b.Row(j + 2)[:n]
		b3 := b.Row(j + 3)[:n]
		var s0, s1, s2, s3 float64
		for k, av := range arow {
			s0 += av * b0[k]
			s1 += av * b1[k]
			s2 += av * b2[k]
			s3 += av * b3[k]
		}
		out[j] = s0
		out[j+1] = s1
		out[j+2] = s2
		out[j+3] = s3
	}
	for ; j < b.R; j++ {
		out[j] = Dot(arow, b.Row(j))
	}
}

// AddRowVec adds the length-C vector v to every row of m, in place.
func (m *Mat) AddRowVec(v []float64) {
	if len(v) != m.C {
		panic("tensor: AddRowVec length mismatch")
	}
	for i := 0; i < m.R; i++ {
		AddTo(m.Row(i), v)
	}
}

// ColSumsInto writes the per-column sums of m into out (length C).
func (m *Mat) ColSumsInto(out []float64) {
	if len(out) != m.C {
		panic("tensor: ColSumsInto length mismatch")
	}
	Zero(out)
	for i := 0; i < m.R; i++ {
		AddTo(out, m.Row(i))
	}
}

// Equal reports whether a and b have identical shape and elements within tol.
func Equal(a, b *Mat, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
