package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// Mat is a dense, row-major matrix. Data is length R*C; element (i,j) lives
// at Data[i*C+j]. The zero value is an empty matrix.
type Mat struct {
	R, C int
	Data []float64
}

// NewMat allocates an R×C zero matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic("tensor: NewMat with negative dimension")
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// MatFrom wraps an existing slice as an R×C matrix without copying.
func MatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: MatFrom %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i (no copy).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{R: m.R, C: m.C, Data: Copy(m.Data)}
}

// T returns a newly allocated transpose of m.
func (m *Mat) T() *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.C+i] = v
		}
	}
	return t
}

// parallelRowThreshold: below this many result elements the goroutine
// fan-out costs more than it saves.
const parallelRowThreshold = 16 * 1024

// MulInto computes dst = a·b. Shapes must satisfy a.C == b.R,
// dst.R == a.R, dst.C == b.C. dst must not alias a or b.
func MulInto(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MulInto shape mismatch (%dx%d)·(%dx%d)→(%dx%d)",
			a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	body := func(i int) {
		out := dst.Row(i)
		Zero(out)
		arow := a.Row(i)
		// k-outer loop: stream through b row-by-row, which keeps the inner
		// loop a contiguous axpy and lets the compiler vectorize it.
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.C : (k+1)*b.C]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
	if dst.R*dst.C >= parallelRowThreshold && dst.R > 1 {
		parallel.For(a.R, body)
		return
	}
	for i := 0; i < a.R; i++ {
		body(i)
	}
}

// Mul returns a·b in a fresh matrix.
func Mul(a, b *Mat) *Mat {
	dst := NewMat(a.R, b.C)
	MulInto(dst, a, b)
	return dst
}

// MulTransAInto computes dst = aᵀ·b without materializing aᵀ.
// Shapes: a is K×M, b is K×N, dst is M×N.
func MulTransAInto(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MulTransAInto shape mismatch (%dx%d)ᵀ·(%dx%d)→(%dx%d)",
			a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	accumulate := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				out := dst.Data[i*dst.C : (i+1)*dst.C]
				for j, bv := range brow {
					out[j] += av * bv
				}
			}
		}
	}
	// Parallelizing over k would race on dst; parallelize over dst rows
	// instead when it is worth it, otherwise run serial.
	if dst.R >= 4 && dst.R*dst.C >= parallelRowThreshold {
		parallel.For(dst.R, func(i int) {
			out := dst.Row(i)
			for k := 0; k < a.R; k++ {
				av := a.At(k, i)
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					out[j] += av * bv
				}
			}
		})
		return
	}
	accumulate(0, a.R)
}

// MulTransBInto computes dst = a·bᵀ without materializing bᵀ.
// Shapes: a is M×K, b is N×K, dst is M×N.
func MulTransBInto(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("tensor: MulTransBInto shape mismatch (%dx%d)·(%dx%d)ᵀ→(%dx%d)",
			a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	body := func(i int) {
		arow := a.Row(i)
		out := dst.Row(i)
		for j := 0; j < b.R; j++ {
			out[j] = Dot(arow, b.Row(j))
		}
	}
	if dst.R*dst.C >= parallelRowThreshold && dst.R > 1 {
		parallel.For(a.R, body)
		return
	}
	for i := 0; i < a.R; i++ {
		body(i)
	}
}

// AddRowVec adds the length-C vector v to every row of m, in place.
func (m *Mat) AddRowVec(v []float64) {
	if len(v) != m.C {
		panic("tensor: AddRowVec length mismatch")
	}
	for i := 0; i < m.R; i++ {
		AddTo(m.Row(i), v)
	}
}

// ColSumsInto writes the per-column sums of m into out (length C).
func (m *Mat) ColSumsInto(out []float64) {
	if len(out) != m.C {
		panic("tensor: ColSumsInto length mismatch")
	}
	Zero(out)
	for i := 0; i < m.R; i++ {
		AddTo(out, m.Row(i))
	}
}

// Equal reports whether a and b have identical shape and elements within tol.
func Equal(a, b *Mat, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
