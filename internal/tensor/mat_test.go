package tensor

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randMat(r *rng.RNG, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	return m
}

// naiveMul is the reference triple loop the optimized kernels are checked
// against.
func naiveMul(a, b *Mat) *Mat {
	dst := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			s := 0.0
			for k := 0; k < a.C; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func TestMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 1, 9}, {33, 17, 29}} {
		a := randMat(r, dims[0], dims[1])
		b := randMat(r, dims[1], dims[2])
		got := Mul(a, b)
		want := naiveMul(a, b)
		if !Equal(got, want, 1e-10) {
			t.Fatalf("Mul mismatch for dims %v", dims)
		}
	}
}

func TestMulParallelPathMatchesNaive(t *testing.T) {
	r := rng.New(2)
	// Large enough to cross parallelRowThreshold.
	a := randMat(r, 200, 120)
	b := randMat(r, 120, 150)
	if !Equal(Mul(a, b), naiveMul(a, b), 1e-9) {
		t.Fatal("parallel Mul path diverges from naive")
	}
}

func TestMulIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + int(seed%8)
		a := randMat(r, n, n)
		id := NewMat(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		return Equal(Mul(a, id), a, 1e-12) && Equal(Mul(id, a), a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransA(t *testing.T) {
	r := rng.New(3)
	a := randMat(r, 13, 7) // K×M
	b := randMat(r, 13, 5) // K×N
	dst := NewMat(7, 5)
	MulTransAInto(dst, a, b)
	want := naiveMul(a.T(), b)
	if !Equal(dst, want, 1e-10) {
		t.Fatal("MulTransAInto mismatch")
	}
}

func TestMulTransAParallelPath(t *testing.T) {
	r := rng.New(4)
	a := randMat(r, 64, 180)
	b := randMat(r, 64, 150)
	dst := NewMat(180, 150)
	MulTransAInto(dst, a, b)
	if !Equal(dst, naiveMul(a.T(), b), 1e-9) {
		t.Fatal("parallel MulTransAInto mismatch")
	}
}

func TestMulTransB(t *testing.T) {
	r := rng.New(5)
	a := randMat(r, 6, 11) // M×K
	b := randMat(r, 9, 11) // N×K
	dst := NewMat(6, 9)
	MulTransBInto(dst, a, b)
	want := naiveMul(a, b.T())
	if !Equal(dst, want, 1e-10) {
		t.Fatal("MulTransBInto mismatch")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := randMat(r, 1+int(seed%6), 1+int((seed>>8)%7))
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatFrom did not panic on length mismatch")
		}
	}()
	MatFrom(2, 3, make([]float64, 5))
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulInto did not panic on shape mismatch")
		}
	}()
	MulInto(NewMat(2, 2), NewMat(2, 3), NewMat(4, 2))
}

func TestAddRowVecAndColSums(t *testing.T) {
	m := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	m.AddRowVec([]float64{10, 20, 30})
	if m.At(0, 0) != 11 || m.At(1, 2) != 36 {
		t.Fatalf("AddRowVec: %v", m.Data)
	}
	sums := make([]float64, 3)
	m.ColSumsInto(sums)
	if sums[0] != 25 || sums[1] != 47 || sums[2] != 69 {
		t.Fatalf("ColSumsInto: %v", sums)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := MatFrom(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row is not a view")
	}
}

func BenchmarkMul64(b *testing.B)  { benchMul(b, 64) }
func BenchmarkMul256(b *testing.B) { benchMul(b, 256) }

func benchMul(b *testing.B, n int) {
	r := rng.New(1)
	a := randMat(r, n, n)
	c := randMat(r, n, n)
	dst := NewMat(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, a, c)
	}
}
