package tensor

import (
	"fmt"
	"math"
	"sync"
)

// Pool is a free-list of equally-sized []float64 buffers — the per-run
// weight pool behind the zero-alloc training hot path. One run allocates a
// handful of model-sized vectors on its first round and then recycles them
// across every subsequent round, cohort and tier fold.
//
// Ownership contract (see DESIGN.md §"Buffer ownership & aliasing rules"):
// Get transfers exclusive ownership to the caller; Put transfers it back.
// Buffers come back DIRTY — callers must fully overwrite a gotten buffer
// before reading it, and must not touch a buffer after putting it. Put of a
// buffer that is already in the pool panics (double-release), which turns
// the classic silent pool corruption into an immediate, attributable
// failure. Pool is safe for concurrent use; the free list is bounded so a
// producer that puts without ever getting (the live fabric's
// transport-allocated results) cannot grow it without bound.
type Pool struct {
	mu   sync.Mutex
	size int
	free [][]float64
	// inPool tracks the base pointer of every buffer currently in the free
	// list, strictly to detect double-Put. Entries exist only while the
	// buffer is free, so a dropped or gotten buffer can never produce a
	// stale match against recycled memory.
	inPool map[*float64]struct{}

	poison bool
}

// poolCap bounds the free list. Steady-state runs check out at most a
// cohort's worth of buffers at a time, so this is generous; it only guards
// against one-way producers.
const poolCap = 64

// NewPool builds a pool of length-size buffers. The pool starts empty; Get
// allocates until Puts start recycling.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic("tensor: NewPool size must be positive")
	}
	return &Pool{size: size, inPool: make(map[*float64]struct{})}
}

// Size returns the buffer length this pool serves.
func (p *Pool) Size() int { return p.size }

// Get returns a length-Size buffer with unspecified contents. The caller
// owns it until Put.
func (p *Pool) Get() []float64 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		buf := p.free[n-1]
		p.free = p.free[:n-1]
		delete(p.inPool, &buf[0])
		p.mu.Unlock()
		return buf
	}
	p.mu.Unlock()
	return make([]float64, p.size)
}

// Put returns a buffer to the pool. Buffers of the wrong length are
// rejected (dropped) rather than corrupting the free list; putting a buffer
// that is already free panics. Put accepts buffers the pool did not create
// — a right-sized foreign buffer simply joins the free list.
func (p *Pool) Put(buf []float64) {
	if len(buf) != p.size {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.inPool[&buf[0]]; dup {
		panic(fmt.Sprintf("tensor: Pool.Put of a buffer already in the pool (len %d) — double release", len(buf)))
	}
	if len(p.free) >= poolCap {
		return
	}
	if p.poison {
		for i := range buf {
			buf[i] = math.NaN()
		}
	}
	p.free = append(p.free, buf)
	p.inPool[&buf[0]] = struct{}{}
}

// SetPoison toggles debug poisoning: when on, Put fills the buffer with
// NaNs, so any use-after-put immediately propagates NaN through whatever
// consumed the stale alias instead of silently reading recycled weights.
// Tests enable it; production paths leave it off (Get contents are
// unspecified either way).
func (p *Pool) SetPoison(on bool) {
	p.mu.Lock()
	p.poison = on
	p.mu.Unlock()
}

// FreeLen reports how many buffers are currently in the free list (for
// tests asserting recycling actually happens).
func (p *Pool) FreeLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
