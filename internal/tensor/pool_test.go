package tensor

import (
	"math"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// TestPoolRecycles pins the basic contract: Get after Put returns the same
// storage instead of allocating, and FreeLen tracks the free list.
func TestPoolRecycles(t *testing.T) {
	p := NewPool(16)
	if p.Size() != 16 {
		t.Fatalf("Size() = %d, want 16", p.Size())
	}
	buf := p.Get()
	if len(buf) != 16 {
		t.Fatalf("Get returned len %d, want 16", len(buf))
	}
	p.Put(buf)
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d after one Put, want 1", p.FreeLen())
	}
	again := p.Get()
	if &again[0] != &buf[0] {
		t.Fatal("Get did not recycle the freed buffer")
	}
	if p.FreeLen() != 0 {
		t.Fatalf("FreeLen = %d after re-Get, want 0", p.FreeLen())
	}
}

// TestPoolDoubleReleasePanics pins the misuse contract: putting a buffer
// that is already in the free list is a double release and must panic
// immediately rather than hand the same storage to two owners later.
func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool(8)
	buf := p.Get()
	p.Put(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put of the same buffer did not panic")
		}
	}()
	p.Put(buf)
}

// TestPoolPoisonCatchesUseAfterPut pins the debug mode: with poisoning on,
// a stale alias held across Put reads NaN, so any computation consuming it
// loudly propagates NaN instead of silently reading recycled weights.
func TestPoolPoisonCatchesUseAfterPut(t *testing.T) {
	p := NewPool(4)
	p.SetPoison(true)
	buf := p.Get()
	Fill(buf, 1.5)
	stale := buf // the bug under test: retaining an alias across Put
	p.Put(buf)
	for i, v := range stale {
		if !math.IsNaN(v) {
			t.Fatalf("use-after-put read stale[%d] = %v, want NaN poison", i, v)
		}
	}
	// And the poison must not leak into the value contract: Get hands the
	// buffer back as dirty-but-owned; overwriting it fully works as usual.
	got := p.Get()
	Fill(got, 2.0)
	if got[0] != 2.0 {
		t.Fatal("pooled buffer unusable after poison round-trip")
	}
}

// TestPoolRejectsWrongSizeAndBounds pins the two defensive edges: a
// wrong-length Put is dropped (not pooled, no panic), and the free list
// never grows past poolCap even against a put-only producer.
func TestPoolRejectsWrongSizeAndBounds(t *testing.T) {
	p := NewPool(8)
	p.Put(make([]float64, 7))
	if p.FreeLen() != 0 {
		t.Fatalf("wrong-size Put was pooled; FreeLen = %d", p.FreeLen())
	}
	for i := 0; i < poolCap+10; i++ {
		p.Put(make([]float64, 8))
	}
	if p.FreeLen() != poolCap {
		t.Fatalf("FreeLen = %d after put-only flood, want cap %d", p.FreeLen(), poolCap)
	}
}

// TestPoolConcurrentHammer hammers one shared pool from many goroutines in
// the same shape as the hot path: parallel.For client training checks
// buffers out, fills them, and releases them, while a separate put-only
// producer (the live fabric's transport results) floods foreign buffers in.
// Run under -race this is the pool's data-race certificate; under a plain
// build it still checks exclusive ownership — no two concurrent holders
// ever see each other's writes.
func TestPoolConcurrentHammer(t *testing.T) {
	const (
		size    = 64
		workers = 8
		rounds  = 200
	)
	p := NewPool(size)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the one-way producer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.Put(make([]float64, size))
		}
	}()
	var mu sync.Mutex
	var errs []string
	parallel.ForWorkers(workers*rounds, workers, func(i int) {
		buf := p.Get()
		tag := float64(i + 1)
		Fill(buf, tag)
		// Ownership is exclusive between Get and Put: nobody else may have
		// scribbled on the buffer while we held it.
		for j, v := range buf {
			if v != tag {
				mu.Lock()
				errs = append(errs, "worker saw foreign write")
				mu.Unlock()
				_ = j
				break
			}
		}
		p.Put(buf)
	})
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("pool ownership violated %d times: %s", len(errs), errs[0])
	}
	if p.FreeLen() > poolCap {
		t.Fatalf("free list overgrew: %d > %d", p.FreeLen(), poolCap)
	}
}
