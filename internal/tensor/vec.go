// Package tensor implements the dense numeric kernels the neural-network
// substrate is built on: vector primitives, a 2-D matrix type with blocked,
// parallel multiplication, and the im2col transform used by convolution.
//
// Everything operates on float64. The federated-learning experiments spend
// almost all of their CPU time in these kernels, so the hot paths avoid
// bounds checks where the compiler can prove ranges and split large
// operations across GOMAXPROCS workers via internal/parallel.
package tensor

import "math"

// The element-wise kernels below are unrolled 4-wide with the length
// equality hoisted into a reslice, which lets the compiler drop the
// per-element bounds checks. The unrolling never reorders floating-point
// operations: each statement handles exactly one element, in the same
// order as the plain loop it replaced, so results are bit-identical for
// every input — including aliased or overlapping x/y (the golden runs pin
// this).

// Axpy computes y += a*x element-wise. x and y must have equal length.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	if len(x) == 0 {
		return
	}
	axpyKernel(a, x, y)
}

// axpyGo is the scalar reference for Axpy. On amd64 the hot path runs the
// SSE2 kernel in vec_amd64.s instead; equivalence — including for aliased
// inputs, where the packed kernel steps aside — is pinned by
// TestAxpyAsmMatchesGo and FuzzAXPY.
func axpyGo(a float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// Dot returns the inner product of x and y. The unroll keeps a single
// accumulator with strictly sequential adds — the exact summation order of
// the naive loop.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	y = y[:len(x)]
	s := 0.0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Scale multiplies every element of x by a, in place.
func Scale(a float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= a
		x[i+1] *= a
		x[i+2] *= a
		x[i+3] *= a
	}
	for ; i < len(x); i++ {
		x[i] *= a
	}
}

// AddTo computes dst[i] += src[i].
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: AddTo length mismatch")
	}
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] += src[i]
	}
}

// SubTo computes dst[i] -= src[i].
func SubTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: SubTo length mismatch")
	}
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] -= src[i]
		dst[i+1] -= src[i+1]
		dst[i+2] -= src[i+2]
		dst[i+3] -= src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] -= src[i]
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	clear(x)
}

// EnsureVec returns a slice of length n, reusing buf's storage when its
// capacity suffices (no alloc) and allocating otherwise. Contents are
// unspecified: callers must fully overwrite before reading. This is the
// capacity-based reuse primitive behind the steady-state zero-alloc hot
// path — buffers grown once keep serving smaller and equal sizes forever.
func EnsureVec(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// Copy returns a fresh copy of x.
func Copy(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: SqDist length mismatch")
	}
	s := 0.0
	for i, xv := range x {
		d := xv - y[i]
		s += d * d
	}
	return s
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x and its index. It panics on empty x.
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("tensor: Max of empty slice")
	}
	best, arg := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return best, arg
}

// ArgMax returns the index of the maximum element of x.
func ArgMax(x []float64) int {
	_, i := Max(x)
	return i
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates dst = (1-t)*dst + t*src, in place on dst.
func Lerp(dst, src []float64, t float64) {
	if len(dst) != len(src) {
		panic("tensor: Lerp length mismatch")
	}
	src = src[:len(dst)]
	u := 1 - t
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = u*dst[i] + t*src[i]
		dst[i+1] = u*dst[i+1] + t*src[i+1]
		dst[i+2] = u*dst[i+2] + t*src[i+2]
		dst[i+3] = u*dst[i+3] + t*src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = u*dst[i] + t*src[i]
	}
}

// WeightedSumInto writes dst = Σ_i weights[i]*vecs[i]. All vectors must have
// the same length as dst. It panics when vecs is empty or lengths mismatch.
func WeightedSumInto(dst []float64, weights []float64, vecs [][]float64) {
	if len(weights) != len(vecs) {
		panic("tensor: WeightedSumInto weights/vecs mismatch")
	}
	if len(vecs) == 0 {
		panic("tensor: WeightedSumInto with no vectors")
	}
	Zero(dst)
	for i, v := range vecs {
		if len(v) != len(dst) {
			panic("tensor: WeightedSumInto vector length mismatch")
		}
		Axpy(weights[i], v, dst)
	}
}

// Softmax writes the softmax of logits into out (out may alias logits).
func Softmax(logits, out []float64) {
	if len(logits) != len(out) {
		panic("tensor: Softmax length mismatch")
	}
	m, _ := Max(logits)
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - m)
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}
