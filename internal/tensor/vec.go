// Package tensor implements the dense numeric kernels the neural-network
// substrate is built on: vector primitives, a 2-D matrix type with blocked,
// parallel multiplication, and the im2col transform used by convolution.
//
// Everything operates on float64. The federated-learning experiments spend
// almost all of their CPU time in these kernels, so the hot paths avoid
// bounds checks where the compiler can prove ranges and split large
// operations across GOMAXPROCS workers via internal/parallel.
package tensor

import "math"

// Axpy computes y += a*x element-wise. x and y must have equal length.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// Scale multiplies every element of x by a, in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// AddTo computes dst[i] += src[i].
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: AddTo length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// SubTo computes dst[i] -= src[i].
func SubTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: SubTo length mismatch")
	}
	for i, v := range src {
		dst[i] -= v
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Copy returns a fresh copy of x.
func Copy(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: SqDist length mismatch")
	}
	s := 0.0
	for i, xv := range x {
		d := xv - y[i]
		s += d * d
	}
	return s
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x and its index. It panics on empty x.
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("tensor: Max of empty slice")
	}
	best, arg := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return best, arg
}

// ArgMax returns the index of the maximum element of x.
func ArgMax(x []float64) int {
	_, i := Max(x)
	return i
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates dst = (1-t)*dst + t*src, in place on dst.
func Lerp(dst, src []float64, t float64) {
	if len(dst) != len(src) {
		panic("tensor: Lerp length mismatch")
	}
	for i := range dst {
		dst[i] = (1-t)*dst[i] + t*src[i]
	}
}

// WeightedSumInto writes dst = Σ_i weights[i]*vecs[i]. All vectors must have
// the same length as dst. It panics when vecs is empty or lengths mismatch.
func WeightedSumInto(dst []float64, weights []float64, vecs [][]float64) {
	if len(weights) != len(vecs) {
		panic("tensor: WeightedSumInto weights/vecs mismatch")
	}
	if len(vecs) == 0 {
		panic("tensor: WeightedSumInto with no vectors")
	}
	Zero(dst)
	for i, v := range vecs {
		if len(v) != len(dst) {
			panic("tensor: WeightedSumInto vector length mismatch")
		}
		Axpy(weights[i], v, dst)
	}
}

// Softmax writes the softmax of logits into out (out may alias logits).
func Softmax(logits, out []float64) {
	if len(logits) != len(out) {
		panic("tensor: Softmax length mismatch")
	}
	m, _ := Max(logits)
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - m)
		out[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}
