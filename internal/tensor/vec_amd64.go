//go:build amd64

package tensor

import "unsafe"

// axpyAsm is the SSE2 two-wide y += a*x in vec_amd64.s. Each lane performs
// the scalar loop's exact mul-then-add on its own element, so results are
// bit-identical to axpyGo for disjoint (or perfectly identical) x and y.
//
//go:noescape
func axpyAsm(a float64, x, y *float64, n int)

// axpyKernel dispatches to the packed kernel unless x and y PARTIALLY
// overlap. The scalar loop writes y[i] before reading x[i+1], so with a
// skewed overlap later reads see earlier writes; the packed kernel loads
// a pair before storing and would diverge. Perfect aliasing (same base) is
// safe — each element still only depends on itself.
func axpyKernel(a float64, x, y []float64) {
	xs := uintptr(unsafe.Pointer(&x[0]))
	ys := uintptr(unsafe.Pointer(&y[0]))
	if xs != ys {
		span := uintptr(len(x)) * 8
		if xs < ys+span && ys < xs+span {
			axpyGo(a, x, y)
			return
		}
	}
	axpyAsm(a, &x[0], &y[0], len(x))
}
