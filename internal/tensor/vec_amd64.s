// SSE2 two-wide AXPY. Bit-exactness contract: each lane performs exactly
// the scalar loop's operations — one MULPD lane is one a*x[i], one ADDPD
// lane is one y[i] += · — and IEEE packed ops are correctly rounded per
// lane, so for disjoint x/y the result is bit-identical to the scalar
// loop. No FMA (fused rounding would diverge). The Go wrapper routes
// partially-overlapping inputs to the scalar path.

//go:build amd64

#include "textflag.h"

// func axpyAsm(a float64, x, y *float64, n int)
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	MOVSD    a+0(FP), X0
	UNPCKLPD X0, X0
	MOVQ     x+8(FP), SI
	MOVQ     y+16(FP), DI
	MOVQ     n+24(FP), CX

quad:
	CMPQ CX, $4
	JLT  pair

	MOVUPD (SI), X1
	MOVUPD 16(SI), X3
	MULPD  X0, X1
	MULPD  X0, X3
	MOVUPD (DI), X2
	MOVUPD 16(DI), X4
	ADDPD  X1, X2
	ADDPD  X3, X4
	MOVUPD X2, (DI)
	MOVUPD X4, 16(DI)

	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  quad

pair:
	CMPQ CX, $2
	JLT  tail

	MOVUPD (SI), X1
	MULPD  X0, X1
	MOVUPD (DI), X2
	ADDPD  X1, X2
	MOVUPD X2, (DI)

	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $2, CX

tail:
	CMPQ CX, $1
	JLT  done

	MOVSD (SI), X1
	MULSD X0, X1
	MOVSD (DI), X2
	ADDSD X1, X2
	MOVSD X2, (DI)

done:
	RET
