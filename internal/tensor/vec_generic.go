//go:build !amd64

package tensor

func axpyKernel(a float64, x, y []float64) { axpyGo(a, x, y) }
