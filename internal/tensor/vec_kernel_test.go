package tensor

import (
	"math"
	"testing"
)

func fillVec(seed uint64, n int) []float64 {
	v := make([]float64, n)
	s := seed
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(int64(s>>11))/float64(1<<52) - 0.5
	}
	return v
}

// axpyNaive is the plain textbook loop every faster path must bit-match.
func axpyNaive(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// TestAxpyAsmMatchesGo pins the platform kernel to the naive reference bit
// for bit across lengths (hitting the 4-wide, 2-wide and scalar-tail
// paths) and for the aliasing cases the kernel contract covers: identical
// slices and skewed overlaps in both directions.
func TestAxpyAsmMatchesGo(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 64, 100, 101, 1786} {
		x := fillVec(uint64(n)+1, n)
		want := fillVec(uint64(n)+2, n)
		got := append([]float64(nil), want...)
		axpyNaive(0.73, x, want)
		Axpy(0.73, x, got)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("n=%d i=%d: Axpy diverges from naive loop: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
	// Perfect aliasing: y IS x.
	x := fillVec(9, 33)
	want := append([]float64(nil), x...)
	axpyNaive(-1.25, want, want)
	Axpy(-1.25, x, x)
	for i := range x {
		if math.Float64bits(want[i]) != math.Float64bits(x[i]) {
			t.Fatalf("self-aliased i=%d: %v vs %v", i, x[i], want[i])
		}
	}
	// Skewed overlap both ways: the scalar loop's write-then-read order is
	// the contract; the packed kernel must step aside and match it.
	for _, d := range []int{1, 2, 3} {
		base := fillVec(uint64(d)+40, 40+d)
		ref := append([]float64(nil), base...)
		axpyNaive(0.5, ref[:40], ref[d:40+d])
		Axpy(0.5, base[:40], base[d:40+d])
		for i := range base {
			if math.Float64bits(ref[i]) != math.Float64bits(base[i]) {
				t.Fatalf("overlap +%d i=%d: %v vs %v", d, i, base[i], ref[i])
			}
		}
		base2 := fillVec(uint64(d)+80, 40+d)
		ref2 := append([]float64(nil), base2...)
		axpyNaive(0.5, ref2[d:40+d], ref2[:40])
		Axpy(0.5, base2[d:40+d], base2[:40])
		for i := range base2 {
			if math.Float64bits(ref2[i]) != math.Float64bits(base2[i]) {
				t.Fatalf("overlap -%d i=%d: %v vs %v", d, i, base2[i], ref2[i])
			}
		}
	}
}

// FuzzAXPY drives Axpy against the naive loop with fuzzer-chosen scale,
// length, overlap skew and injected special values (Inf/NaN included): the
// two must agree bit for bit, NaN payloads and signed zeros included.
func FuzzAXPY(f *testing.F) {
	f.Add(uint64(1), 10, 0.5, 0, 0.0)
	f.Add(uint64(2), 100, -1.0, 1, math.Inf(1))
	f.Add(uint64(3), 7, 0.0, -2, math.NaN())
	f.Fuzz(func(t *testing.T, seed uint64, n int, a float64, skew int, inject float64) {
		if n < 1 || n > 2048 {
			t.Skip()
		}
		if skew < -4 || skew > 4 {
			t.Skip()
		}
		off := skew
		if off < 0 {
			off = -off
		}
		base := fillVec(seed, n+off)
		base[seed%uint64(n)] = inject
		ref := append([]float64(nil), base...)

		var xb, yb, xr, yr []float64
		switch {
		case skew > 0:
			xb, yb = base[:n], base[off:n+off]
			xr, yr = ref[:n], ref[off:n+off]
		case skew < 0:
			xb, yb = base[off:n+off], base[:n]
			xr, yr = ref[off:n+off], ref[:n]
		default:
			xb, yb = base[:n], base[:n]
			xr, yr = ref[:n], ref[:n]
		}
		axpyNaive(a, xr, yr)
		Axpy(a, xb, yb)
		for i := range base {
			if math.Float64bits(ref[i]) != math.Float64bits(base[i]) {
				t.Fatalf("seed=%d n=%d a=%v skew=%d i=%d: %x vs %x",
					seed, n, a, skew, i, math.Float64bits(base[i]), math.Float64bits(ref[i]))
			}
		}
	})
}

func BenchmarkAxpy(b *testing.B) {
	x := fillVec(1, 100)
	y := fillVec(2, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x, y)
	}
}

func BenchmarkAxpyGo(b *testing.B) {
	x := fillVec(1, 100)
	y := fillVec(2, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		axpyGo(0.5, x, y)
	}
}
