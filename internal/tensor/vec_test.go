package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy: got %v, want %v", y, want)
		}
	}
}

func TestAxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Axpy length mismatch did not panic")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestScaleFillZeroCopy(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Fatalf("Scale: %v", x)
	}
	Fill(x, 7)
	if x[0] != 7 || x[1] != 7 {
		t.Fatalf("Fill: %v", x)
	}
	c := Copy(x)
	Zero(x)
	if x[0] != 0 || c[0] != 7 {
		t.Fatalf("Zero/Copy aliasing: x=%v c=%v", x, c)
	}
}

func TestNorm2SqDist(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := SqDist([]float64{1, 1}, []float64{4, 5}); got != 25 {
		t.Fatalf("SqDist = %v", got)
	}
}

func TestMaxArgMax(t *testing.T) {
	v, i := Max([]float64{1, 9, 3, 9})
	if v != 9 || i != 1 {
		t.Fatalf("Max = (%v,%d)", v, i)
	}
	if ArgMax([]float64{-5, -1, -9}) != 1 {
		t.Fatal("ArgMax wrong")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}

func TestLerp(t *testing.T) {
	dst := []float64{0, 10}
	Lerp(dst, []float64{10, 0}, 0.25)
	if !almostEq(dst[0], 2.5, 1e-12) || !almostEq(dst[1], 7.5, 1e-12) {
		t.Fatalf("Lerp: %v", dst)
	}
}

func TestWeightedSumInto(t *testing.T) {
	dst := make([]float64, 2)
	WeightedSumInto(dst, []float64{0.25, 0.75}, [][]float64{{4, 0}, {0, 4}})
	if !almostEq(dst[0], 1, 1e-12) || !almostEq(dst[1], 3, 1e-12) {
		t.Fatalf("WeightedSumInto: %v", dst)
	}
}

func TestWeightedSumWeightsSumToOnePreservesConstant(t *testing.T) {
	// Property: if all input vectors are the constant vector k and weights
	// sum to 1, the output is the constant vector k (aggregation identity
	// relied on by the FL weighted-average code).
	f := func(seedVals [4]float64) bool {
		w := make([]float64, 4)
		total := 0.0
		for i, v := range seedVals {
			v = math.Abs(v)
			if !(v < 1e6) { // sanitize Inf/NaN/huge quick inputs
				v = 1
			}
			w[i] = v + 0.1
			total += w[i]
		}
		for i := range w {
			w[i] /= total
		}
		vecs := make([][]float64, 4)
		for i := range vecs {
			vecs[i] = []float64{3.5, -2, 0.125}
		}
		dst := make([]float64, 3)
		WeightedSumInto(dst, w, vecs)
		return almostEq(dst[0], 3.5, 1e-9) && almostEq(dst[1], -2, 1e-9) && almostEq(dst[2], 0.125, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1, 2, 3}, out)
	sum := Sum(out)
	if !almostEq(sum, 1, 1e-12) {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	out := make([]float64, 2)
	Softmax([]float64{1000, 1001}, out)
	if math.IsNaN(out[0]) || math.IsNaN(out[1]) {
		t.Fatalf("softmax overflowed: %v", out)
	}
	if !almostEq(Sum(out), 1, 1e-12) {
		t.Fatalf("softmax sums to %v", Sum(out))
	}
}
