//go:build !race

// Package testutil holds tiny helpers shared by test files across packages.
// Its only current export reports whether the race detector is compiled in,
// so allocation-regression tests can skip themselves: -race instruments
// every allocation and makes testing.AllocsPerRun counts meaningless.
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
