// Runtime re-tiering. The paper profiles client latencies once and the
// partition is static for the run (§4); under drifting or churning
// populations the profile goes stale — the regime dynamic-tiering follow-up
// work targets. Retier recomputes the partition from latencies OBSERVED
// during training, with two stabilizers:
//
//   - observations are EWMA-smoothed (Tracker), so one slow round does not
//     look like a slow client;
//   - migration needs to clear a hysteresis margin: a client moves tiers
//     only when its smoothed latency crosses the adjacent tier boundary by
//     a relative margin, so clients sitting near a boundary do not
//     oscillate with noise.
package tiering

import (
	"fmt"
	"math"
	"sort"
)

// Tracker maintains EWMA-smoothed response-latency estimates per client.
// Observe folds one measured latency into the client's estimate with weight
// alpha; Estimates reports the current smoothed values (NaN for clients
// never observed — Retier keeps those in place).
type Tracker struct {
	alpha float64
	est   []float64
	seen  []bool
	n     int
}

// NewTracker builds a tracker for n clients with smoothing weight alpha in
// (0, 1]; alpha 1 means "latest observation wins".
func NewTracker(n int, alpha float64) *Tracker {
	if n <= 0 || alpha <= 0 || alpha > 1 {
		panic("tiering: invalid tracker configuration")
	}
	return &Tracker{alpha: alpha, est: make([]float64, n), seen: make([]bool, n)}
}

// Observe folds one measured response latency for client id.
func (tr *Tracker) Observe(id int, latency float64) {
	if id < 0 || id >= len(tr.est) {
		return
	}
	if !tr.seen[id] {
		tr.est[id] = latency
		tr.seen[id] = true
		tr.n++
		return
	}
	tr.est[id] += tr.alpha * (latency - tr.est[id])
}

// Observed reports how many distinct clients have at least one observation.
func (tr *Tracker) Observed() int { return tr.n }

// Estimates returns a copy of the smoothed latencies, NaN where no
// observation has arrived yet.
func (tr *Tracker) Estimates() []float64 {
	out := make([]float64, len(tr.est))
	for i, e := range tr.est {
		if tr.seen[i] {
			out[i] = e
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// RetierOpts tunes the re-tiering stabilizers.
type RetierOpts struct {
	// Margin is the relative hysteresis band around tier boundaries: a
	// client migrates only when its smoothed latency is beyond the adjacent
	// boundary by this fraction (default 0.15).
	Margin float64
}

// Retier re-partitions clients from smoothed observed latencies, anchored to
// the previous partition. smoothed[i] is client i's current latency estimate
// (NaN = never observed; such clients keep their tier). The returned
// partition has the same tier count as prev; moved is the number of clients
// whose tier changed. prev is never mutated, and when nothing moves the
// returned *Tiers is prev itself.
//
// The hysteresis rule: the boundary between adjacent tiers is the midpoint
// of their MEDIAN smoothed latencies (medians, so one drifting client
// cannot drag its own boundary along with it). A client migrates one tier
// per pass, and only when its estimate clears the adjacent boundary by the
// relative Margin — promotion needs est < boundary·(1−Margin), demotion
// est > boundary·(1+Margin). A noisy client straddling a boundary therefore
// stays put, while a genuine step-change clears the band after a few
// smoothed observations and walks to its new tier across passes.
func Retier(smoothed []float64, prev *Tiers, opts RetierOpts) (*Tiers, int, error) {
	n := len(smoothed)
	if prev == nil || len(prev.Assignment) != n {
		return nil, 0, fmt.Errorf("tiering: retier needs a previous partition over the same %d clients", n)
	}
	m := prev.M()
	margin := opts.Margin
	if margin <= 0 {
		margin = 0.15
	}
	observed := 0
	for _, v := range smoothed {
		if !math.IsNaN(v) {
			observed++
		}
	}
	if observed == 0 {
		return prev, 0, nil // nothing measured yet; keep the profile
	}
	med := tierMedians(smoothed, prev)

	assign := make([]int, n)
	moved := 0
	for i, est := range smoothed {
		p := prev.Assignment[i]
		assign[i] = p
		if math.IsNaN(est) {
			continue // no evidence, no movement
		}
		if p > 0 {
			if b := (med[p-1] + med[p]) / 2; est < b*(1-margin) {
				assign[i] = p - 1
				moved++
				continue
			}
		}
		if p < m-1 {
			if b := (med[p] + med[p+1]) / 2; est > b*(1+margin) {
				assign[i] = p + 1
				moved++
			}
		}
	}
	if moved == 0 {
		return prev, 0, nil
	}

	next := &Tiers{Members: make([][]int, m), Assignment: assign}
	for id, tier := range assign {
		next.Members[tier] = append(next.Members[tier], id)
	}
	// Hysteresis can empty a tier in tiny populations (everyone cleared the
	// band in the same direction). An empty tier would silently leave the
	// training loop, so fall back to the plain equal-split partition of the
	// current estimates (unobserved clients standing in at their previous
	// tier's median) — every tier stays populated by construction.
	for _, members := range next.Members {
		if len(members) == 0 {
			filled := make([]float64, n)
			for i, v := range smoothed {
				if math.IsNaN(v) {
					filled[i] = med[prev.Assignment[i]]
				} else {
					filled[i] = v
				}
			}
			flat, err := Partition(filled, m)
			if err != nil {
				return nil, 0, err
			}
			return flat, migrations(prev, flat), nil
		}
	}
	return next, moved, nil
}

// tierMedians computes each previous tier's median observed latency; tiers
// with no observed member fall back to the overall observed median, and with
// nothing observed at all to 0 (Retier returns early in that case).
func tierMedians(smoothed []float64, prev *Tiers) []float64 {
	var all []float64
	perTier := make([][]float64, prev.M())
	for tier, members := range prev.Members {
		for _, id := range members {
			if v := smoothed[id]; !math.IsNaN(v) {
				perTier[tier] = append(perTier[tier], v)
				all = append(all, v)
			}
		}
	}
	overall := median(all)
	out := make([]float64, prev.M())
	for tier, vs := range perTier {
		if len(vs) == 0 {
			out[tier] = overall
		} else {
			out[tier] = median(vs)
		}
	}
	return out
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// migrations counts assignment differences between two partitions.
func migrations(a, b *Tiers) int {
	n := 0
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			n++
		}
	}
	return n
}
