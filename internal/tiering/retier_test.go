package tiering

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// staticLat builds n latencies in two clear groups: ids < n/2 fast (around
// lo), the rest slow (around hi).
func twoGroups(n int, lo, hi float64) []float64 {
	lat := make([]float64, n)
	for i := range lat {
		if i < n/2 {
			lat[i] = lo + float64(i)*0.01
		} else {
			lat[i] = hi + float64(i)*0.01
		}
	}
	return lat
}

func mustPartition(t *testing.T, lat []float64, m int) *Tiers {
	t.Helper()
	tiers, err := Partition(lat, m)
	if err != nil {
		t.Fatal(err)
	}
	return tiers
}

// TestRetierNoObservationsKeepsProfile: with nothing observed, Retier is a
// no-op returning the previous partition itself.
func TestRetierNoObservationsKeepsProfile(t *testing.T) {
	prev := mustPartition(t, twoGroups(10, 1, 10), 2)
	smoothed := make([]float64, 10)
	for i := range smoothed {
		smoothed[i] = math.NaN()
	}
	next, moved, err := Retier(smoothed, prev, RetierOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if next != prev || moved != 0 {
		t.Fatalf("expected identity no-op, got moved=%d next=%p prev=%p", moved, next, prev)
	}
}

// TestRetierStableWhenLatenciesMatchProfile: observations that agree with
// the profile move nobody.
func TestRetierStableWhenLatenciesMatchProfile(t *testing.T) {
	lat := twoGroups(10, 1, 10)
	prev := mustPartition(t, lat, 2)
	next, moved, err := Retier(lat, prev, RetierOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || next != prev {
		t.Fatalf("matching observations migrated %d clients", moved)
	}
}

// TestRetierHysteresisPreventsOscillation: a client whose noisy smoothed
// latency wobbles within the margin around the boundary never changes tier,
// no matter how many retier passes run.
func TestRetierHysteresisPreventsOscillation(t *testing.T) {
	lat := twoGroups(10, 1, 10)
	prev := mustPartition(t, lat, 2)
	// Boundary sits between 1.x and 10.x; put client 4 (fast tier) right at
	// the boundary neighborhood and wobble it ±8% (inside the 15% margin).
	tr := NewTracker(10, 0.5)
	for i, v := range lat {
		tr.Observe(i, v)
	}
	boundary := (lat[4] + lat[5]) / 2
	r := rng.New(3)
	cur := prev
	for pass := 0; pass < 50; pass++ {
		tr.Observe(4, boundary*r.Uniform(0.92, 1.08))
		next, moved, err := Retier(tr.Estimates(), cur, RetierOpts{Margin: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		if moved != 0 {
			t.Fatalf("pass %d: noisy boundary client migrated (%d moved)", pass, moved)
		}
		cur = next
	}
	if cur.Assignment[4] != prev.Assignment[4] {
		t.Fatal("client 4 ended in a different tier")
	}
}

// TestRetierStepChangeMigrates: a fast-tier client that genuinely becomes
// 10x slower crosses the boundary within a few smoothed observations — and
// never bounces back while it stays slow.
func TestRetierStepChangeMigrates(t *testing.T) {
	lat := twoGroups(10, 1, 10)
	prev := mustPartition(t, lat, 2)
	if prev.Assignment[2] != 0 {
		t.Fatal("setup: client 2 should start in the fast tier")
	}
	tr := NewTracker(10, 0.5)
	for i, v := range lat {
		tr.Observe(i, v)
	}
	cur := prev
	migratedAt := -1
	for pass := 1; pass <= 10; pass++ {
		tr.Observe(2, 10.5) // the step change: now as slow as the slow group
		next, _, err := Retier(tr.Estimates(), cur, RetierOpts{Margin: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		if cur.Assignment[2] == 1 && migratedAt < 0 {
			migratedAt = pass
		}
	}
	// est_k = 10.5 - (10.5-1)·0.5^k crosses boundary*1.15 ≈ 6.4 at k=2.
	if migratedAt < 0 {
		t.Fatal("step-change client never migrated to the slow tier")
	}
	if migratedAt > 3 {
		t.Fatalf("step-change client took %d observations to migrate, want <= 3", migratedAt)
	}
	if cur.Assignment[2] != 1 {
		t.Fatal("client 2 did not stay in the slow tier")
	}
	// Membership lists must be consistent with assignments.
	for tier, members := range cur.Members {
		for _, id := range members {
			if cur.Assignment[id] != tier {
				t.Fatalf("member list / assignment mismatch for client %d", id)
			}
		}
	}
}

// TestRetierUnobservedClientsAnchored: a client with no observations keeps
// its tier even when everyone around it moves.
func TestRetierUnobservedClientsAnchored(t *testing.T) {
	lat := twoGroups(10, 1, 10)
	prev := mustPartition(t, lat, 2)
	smoothed := make([]float64, 10)
	for i := range smoothed {
		// Invert the world: fast clients now slow and vice versa...
		if prev.Assignment[i] == 0 {
			smoothed[i] = 20
		} else {
			smoothed[i] = 1
		}
	}
	smoothed[0] = math.NaN() // ...except client 0, unobserved
	next, moved, err := Retier(smoothed, prev, RetierOpts{Margin: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if next.Assignment[0] != prev.Assignment[0] {
		t.Fatal("unobserved client migrated without evidence")
	}
	if moved == 0 {
		t.Fatal("inverted observations moved nobody")
	}
}

// TestRetierNeverEmptiesATier: even when every observed client's latency
// collapses to one side, all tiers stay populated (the fallback re-split).
func TestRetierNeverEmptiesATier(t *testing.T) {
	lat := twoGroups(10, 1, 10)
	prev := mustPartition(t, lat, 2)
	smoothed := make([]float64, 10)
	for i := range smoothed {
		smoothed[i] = 1 + float64(i)*0.001 // everyone fast now
	}
	next, _, err := Retier(smoothed, prev, RetierOpts{Margin: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for tier, members := range next.Members {
		if len(members) == 0 {
			t.Fatalf("tier %d emptied", tier)
		}
	}
}

// TestTrackerEWMA: first observation seeds the estimate, later ones blend
// with alpha, ids out of range are ignored.
func TestTrackerEWMA(t *testing.T) {
	tr := NewTracker(3, 0.25)
	tr.Observe(1, 8)
	tr.Observe(1, 4) // 8 + 0.25·(4-8) = 7
	tr.Observe(-1, 99)
	tr.Observe(3, 99)
	est := tr.Estimates()
	if !math.IsNaN(est[0]) || !math.IsNaN(est[2]) {
		t.Fatalf("unobserved clients should be NaN: %v", est)
	}
	if est[1] != 7 {
		t.Fatalf("EWMA estimate %v, want 7", est[1])
	}
	if tr.Observed() != 1 {
		t.Fatalf("Observed()=%d, want 1", tr.Observed())
	}
}
