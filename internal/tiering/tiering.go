// Package tiering implements FedAT's tiering module (§4): it takes profiled
// client response latencies and partitions clients into M logical tiers,
// tier 1 fastest. FedAT reuses TiFL's tiering approach (§2.1), so the same
// partition feeds both systems; the package also provides TiFL's adaptive,
// accuracy-based tier selector used by the TiFL baseline.
package tiering

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Tiers is a partition of clients into latency tiers. Tier 0 is the
// fastest (the paper's tier 1).
type Tiers struct {
	// Members lists the client ids in each tier.
	Members [][]int
	// Assignment maps client id → tier index.
	Assignment []int
}

// M returns the number of tiers.
func (t *Tiers) M() int { return len(t.Members) }

// Concat merges per-shard partitions into one partition over the union
// population: shard s's client ids are translated by offsets[s] (its first
// client's global id), and tier m of the result is the union of every
// shard's tier m. Hierarchical composites use it to expose K per-edge
// partitions as a single partition over the global id space; tier counts
// may differ across shards — the result has the maximum.
func Concat(parts []*Tiers, offsets []int, n int) (*Tiers, error) {
	if len(parts) == 0 || len(parts) != len(offsets) {
		return nil, fmt.Errorf("tiering: Concat with %d partitions and %d offsets", len(parts), len(offsets))
	}
	m := 0
	for _, p := range parts {
		if p.M() > m {
			m = p.M()
		}
	}
	t := &Tiers{Members: make([][]int, m), Assignment: make([]int, n)}
	for i := range t.Assignment {
		t.Assignment[i] = -1
	}
	for s, p := range parts {
		for tier, members := range p.Members {
			for _, id := range members {
				g := offsets[s] + id
				if g < 0 || g >= n {
					return nil, fmt.Errorf("tiering: Concat shard %d client %d maps to %d, outside [0,%d)", s, id, g, n)
				}
				if t.Assignment[g] != -1 {
					return nil, fmt.Errorf("tiering: Concat shards overlap at global client %d", g)
				}
				t.Members[tier] = append(t.Members[tier], g)
				t.Assignment[g] = tier
			}
		}
	}
	for i, a := range t.Assignment {
		if a == -1 {
			return nil, fmt.Errorf("tiering: Concat leaves global client %d unassigned", i)
		}
	}
	return t, nil
}

// Partition splits clients into m equal-count tiers by ascending latency
// (latencies[i] belongs to client i). Remainders go to the fastest tiers,
// matching an even profiling split.
func Partition(latencies []float64, m int) (*Tiers, error) {
	n := len(latencies)
	if m <= 0 || m > n {
		return nil, fmt.Errorf("tiering: cannot split %d clients into %d tiers", n, m)
	}
	sizes := make([]int, m)
	base, rem := n/m, n%m
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return PartitionSizes(latencies, sizes)
}

// PartitionSizes splits clients into tiers of the given sizes by ascending
// latency — the Figure 10 configurations use explicit sizes.
func PartitionSizes(latencies []float64, sizes []int) (*Tiers, error) {
	n := len(latencies)
	total := 0
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("tiering: tier %d has non-positive size %d", i, s)
		}
		total += s
	}
	if total != n {
		return nil, fmt.Errorf("tiering: sizes sum to %d, want %d clients", total, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return latencies[order[a]] < latencies[order[b]] })

	t := &Tiers{
		Members:    make([][]int, len(sizes)),
		Assignment: make([]int, n),
	}
	pos := 0
	for tier, size := range sizes {
		t.Members[tier] = make([]int, size)
		copy(t.Members[tier], order[pos:pos+size])
		pos += size
		for _, id := range t.Members[tier] {
			t.Assignment[id] = tier
		}
	}
	return t, nil
}

// TiFLSelector implements TiFL's adaptive tier selection: every Interval
// selections the per-tier test accuracies refresh the selection
// probabilities, which weight tiers inversely to their accuracy so
// under-trained (typically slower) tiers catch up. Each tier carries
// credits bounding how often it may be selected; when every tier's credits
// are spent they are replenished so training can continue past the paper's
// round budget.
type TiFLSelector struct {
	Interval int

	credits   []int
	initial   int
	accs      []float64
	probs     []float64
	selectCnt int
}

// NewTiFLSelector builds a selector for m tiers with the given credits per
// tier and probability-refresh interval.
func NewTiFLSelector(m, creditsPerTier, interval int) *TiFLSelector {
	if m <= 0 || creditsPerTier <= 0 || interval <= 0 {
		panic("tiering: invalid TiFL selector configuration")
	}
	s := &TiFLSelector{
		Interval: interval,
		credits:  make([]int, m),
		initial:  creditsPerTier,
		accs:     make([]float64, m),
		probs:    make([]float64, m),
	}
	for i := range s.credits {
		s.credits[i] = creditsPerTier
	}
	for i := range s.probs {
		s.probs[i] = 1
	}
	return s
}

// Credits returns the remaining credits of each tier (copy).
func (s *TiFLSelector) Credits() []int {
	out := make([]int, len(s.credits))
	copy(out, s.credits)
	return out
}

// UpdateAccuracies records fresh per-tier test accuracies; the next
// refresh interval converts them into selection probabilities ∝ (1−acc).
func (s *TiFLSelector) UpdateAccuracies(accs []float64) {
	if len(accs) != len(s.accs) {
		panic("tiering: accuracy count mismatch")
	}
	copy(s.accs, accs)
	s.refreshProbs()
}

func (s *TiFLSelector) refreshProbs() {
	for i, a := range s.accs {
		p := 1 - a
		if p < 0.05 {
			p = 0.05 // keep every tier selectable
		}
		s.probs[i] = p
	}
}

// Select draws the next tier to train. Tiers without credits are skipped;
// when all are spent the credits replenish.
func (s *TiFLSelector) Select(r *rng.RNG) int {
	anyCredit := false
	for _, c := range s.credits {
		if c > 0 {
			anyCredit = true
			break
		}
	}
	if !anyCredit {
		for i := range s.credits {
			s.credits[i] = s.initial
		}
	}
	w := make([]float64, len(s.probs))
	for i := range w {
		if s.credits[i] > 0 {
			w[i] = s.probs[i]
		}
	}
	tier := r.ChooseWeighted(w)
	s.credits[tier]--
	s.selectCnt++
	return tier
}

// NeedsAccuracyRefresh reports whether a probability refresh is due, i.e.
// the selection count crossed the interval. TiFL pays for this refresh
// with an extra round of test-accuracy collection from every tier — the
// communication overhead §2.1 calls out.
func (s *TiFLSelector) NeedsAccuracyRefresh() bool {
	return s.selectCnt > 0 && s.selectCnt%s.Interval == 0
}
