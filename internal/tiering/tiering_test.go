package tiering

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPartitionIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%60) + 5
		m := int(mRaw)%5 + 1
		if m > n {
			m = n
		}
		r := rng.New(seed)
		lat := make([]float64, n)
		for i := range lat {
			lat[i] = r.Float64() * 30
		}
		tiers, err := Partition(lat, m)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, members := range tiers.Members {
			for _, id := range members {
				if id < 0 || id >= n || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOrdersByLatency(t *testing.T) {
	lat := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6, 0}
	tiers, err := Partition(lat, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Every member of tier k must be no slower than every member of k+1.
	for k := 0; k+1 < tiers.M(); k++ {
		maxK := 0.0
		for _, id := range tiers.Members[k] {
			if lat[id] > maxK {
				maxK = lat[id]
			}
		}
		for _, id := range tiers.Members[k+1] {
			if lat[id] < maxK {
				t.Fatalf("tier %d member %d (lat %v) faster than tier %d max %v", k+1, id, lat[id], k, maxK)
			}
		}
	}
}

func TestPartitionAssignmentConsistent(t *testing.T) {
	lat := []float64{3, 1, 2, 5, 4, 0}
	tiers, err := Partition(lat, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tier, members := range tiers.Members {
		for _, id := range members {
			if tiers.Assignment[id] != tier {
				t.Fatalf("assignment mismatch for client %d", id)
			}
		}
	}
}

func TestPartitionRemainderGoesToFastTiers(t *testing.T) {
	lat := make([]float64, 11)
	for i := range lat {
		lat[i] = float64(i)
	}
	tiers, err := Partition(lat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers.Members[0]) != 3 {
		t.Fatalf("fastest tier got %d members, want 3", len(tiers.Members[0]))
	}
	for k := 1; k < 5; k++ {
		if len(tiers.Members[k]) != 2 {
			t.Fatalf("tier %d got %d members, want 2", k, len(tiers.Members[k]))
		}
	}
}

func TestPartitionSizesValidation(t *testing.T) {
	lat := []float64{1, 2, 3}
	if _, err := PartitionSizes(lat, []int{2, 2}); err == nil {
		t.Fatal("wrong total accepted")
	}
	if _, err := PartitionSizes(lat, []int{3, 0}); err == nil {
		t.Fatal("zero tier size accepted")
	}
	if _, err := Partition(lat, 0); err == nil {
		t.Fatal("zero tiers accepted")
	}
	if _, err := Partition(lat, 4); err == nil {
		t.Fatal("more tiers than clients accepted")
	}
}

func TestTiFLSelectorFavorsLowAccuracy(t *testing.T) {
	s := NewTiFLSelector(3, 1000000, 10)
	s.UpdateAccuracies([]float64{0.9, 0.5, 0.1})
	r := rng.New(1)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.Select(r)]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("selection does not favor low accuracy: %v", counts)
	}
	// probs ∝ 0.1 : 0.5 : 0.9 → tier2/tier0 ≈ 9
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 6 || ratio > 12 {
		t.Fatalf("selection ratio %v, want ~9", ratio)
	}
}

func TestTiFLCreditsDecrementAndReplenish(t *testing.T) {
	s := NewTiFLSelector(2, 2, 5)
	r := rng.New(2)
	for i := 0; i < 4; i++ {
		s.Select(r)
	}
	c := s.Credits()
	if c[0]+c[1] != 0 {
		t.Fatalf("credits not exhausted: %v", c)
	}
	// Next select must replenish rather than fail.
	tier := s.Select(r)
	if tier < 0 || tier > 1 {
		t.Fatalf("invalid tier %d", tier)
	}
	c = s.Credits()
	if c[0]+c[1] != 3 {
		t.Fatalf("credits after replenish: %v", c)
	}
}

func TestTiFLSkipsSpentTiers(t *testing.T) {
	s := NewTiFLSelector(2, 1, 100)
	s.UpdateAccuracies([]float64{0.0, 0.99})
	r := rng.New(3)
	first := s.Select(r)
	second := s.Select(r)
	if first == second {
		t.Fatalf("second selection reused spent tier %d", first)
	}
}

func TestNeedsAccuracyRefresh(t *testing.T) {
	s := NewTiFLSelector(2, 100, 3)
	r := rng.New(4)
	if s.NeedsAccuracyRefresh() {
		t.Fatal("refresh requested before any selection")
	}
	s.Select(r)
	s.Select(r)
	if s.NeedsAccuracyRefresh() {
		t.Fatal("refresh too early")
	}
	s.Select(r)
	if !s.NeedsAccuracyRefresh() {
		t.Fatal("refresh not requested at interval")
	}
}

func TestSelectorDeterminism(t *testing.T) {
	mk := func() []int {
		s := NewTiFLSelector(4, 10, 5)
		s.UpdateAccuracies([]float64{0.2, 0.4, 0.6, 0.8})
		r := rng.New(9)
		out := make([]int, 50)
		for i := range out {
			out[i] = s.Select(r)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selector not deterministic")
		}
	}
}
