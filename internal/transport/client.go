package transport

import (
	"fmt"
	"net"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/robust"
)

// ClientConfig configures a federated training client. Local-training
// settings (epochs, batch size, proximal λ, mini-batch schedule) are NOT
// configured here: the server's method composition ships them with every
// model push, so the engine controls local training on both fabrics.
type ClientConfig struct {
	Addr          string
	ID            uint32
	LatencyHintMs uint32
	// ArtificialDelay is added before each upload — the transport-mode
	// equivalent of the paper's injected straggler delays.
	ArtificialDelay time.Duration

	Data *dataset.ClientData
	Net  *nn.Network
	Opt  opt.Optimizer

	// Codec compresses uploads; defaults to polyline precision 4. It must
	// match the server's Run.Codec for the deployment to reproduce the
	// simulator's channel.
	Codec codec.Codec
	// Seed anchors the fixed pseudo-random mini-batch schedule (§6); it
	// must match the server's Run.Seed for cross-fabric reproducibility.
	Seed uint64
	// Attack forces this client's malicious behavior regardless of server
	// directives (fedclient -attack). When only Classes is set the client
	// is honest but can execute a server-directed label flip — fedclient
	// always fills Classes from its dataset.
	Attack robust.Attack
	// DPClip > 0 forces the local DP stage (clip norm DPClip, noise
	// multiplier DPNoise), overriding whatever the server's push carries.
	DPClip  float64
	DPNoise float64
	// UplinkTopKFrac > 0 compresses uploads as a top-k sparsified delta
	// against the round's pushed global instead of Codec — the flat
	// client→server leg of the PR 7 edge uplink compression. The server
	// decodes it statelessly per round (the model message self-describes),
	// so no server flag is needed.
	UplinkTopKFrac float64
	// DialTimeout bounds how long the initial connect retries before giving
	// up — clients routinely start before the server's listener is up, so a
	// refused connection is retried until the window closes. 0 means the
	// 5-second default; negative gives up after the first attempt.
	DialTimeout time.Duration
	Logf        func(format string, args ...any)
}

// dialRetry connects to addr, retrying failed attempts until the timeout
// window closes (server and clients start concurrently in real
// deployments; "connection refused" during the server's first moments is
// expected, not fatal). A negative timeout tries exactly once.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if timeout < 0 || !time.Now().Before(deadline) {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// RunClient connects, registers and serves training rounds until the server
// sends a shutdown (returns nil) or the connection fails.
func RunClient(cfg ClientConfig) error {
	if cfg.Data == nil || cfg.Net == nil || cfg.Opt == nil {
		return fmt.Errorf("transport: client needs data, model and optimizer")
	}
	if cfg.Codec == nil {
		cfg.Codec = codec.NewPolyline(4)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	conn, err := dialRetry(cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	reg := Register{
		ClientID:      cfg.ID,
		NumSamples:    uint32(cfg.Data.NumTrain()),
		LatencyHintMs: cfg.LatencyHintMs,
	}
	if err := WriteFrame(conn, MsgRegister, reg.Marshal()); err != nil {
		return err
	}

	trainer := fl.NewLocalClient(int(cfg.ID), cfg.Data, cfg.Net, cfg.Opt, cfg.Seed)
	shapes := make([]codec.ShapeInfo, 0, len(cfg.Net.ParamShapes()))
	for _, s := range cfg.Net.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("transport: client %d read: %w", cfg.ID, err)
		}
		switch typ {
		case MsgShutdown:
			cfg.Logf("client %d: shutdown", cfg.ID)
			return nil
		case MsgModelPush:
			spec, modelMsg, err := ParseModelPush(payload)
			if err != nil {
				return err
			}
			_, global, err := codec.UnmarshalModel(modelMsg)
			if err != nil {
				return fmt.Errorf("transport: client %d unmarshal: %w", cfg.ID, err)
			}
			// A locally forced attack wins; otherwise follow the server's
			// per-push directive (honest when the directive byte is 0).
			atk := cfg.Attack
			if !atk.Active() && spec.Attack != 0 {
				atk = robust.Attack{
					Kind:    robust.Kind(spec.Attack),
					Scale:   spec.AttackScale,
					Classes: cfg.Attack.Classes,
				}
			}
			trainer.Attack = atk
			lc := fl.LocalConfig{
				Epochs:    spec.Epochs,
				BatchSize: spec.Batch,
				Lambda:    spec.Lambda,
				Round:     spec.Round,
				DPClip:    spec.DPClip,
				DPNoise:   spec.DPNoise,
				LRScale:   spec.LRScale,
			}
			if cfg.DPClip > 0 {
				lc.DPClip, lc.DPNoise = cfg.DPClip, cfg.DPNoise
			}
			w, steps := trainer.TrainLocal(global, lc)
			if cfg.ArtificialDelay > 0 {
				time.Sleep(cfg.ArtificialDelay)
			}
			var up []byte
			if cfg.UplinkTopKFrac > 0 {
				// Stateless per-round delta against the decoded push: the
				// server reconstructs against the decode of its own frame,
				// so lossy downlink codecs cancel exactly and a dropped
				// update desynchronizes nothing.
				up, err = edge.EncodeUplink(&codec.TopK{Frac: cfg.UplinkTopKFrac}, shapes, global, w)
			} else {
				up, err = codec.MarshalModel(cfg.Codec, shapes, w)
			}
			if err != nil {
				return err
			}
			msg := ModelUpdate(cfg.ID, uint32(cfg.Data.NumTrain()), spec.Round, up)
			if err := WriteFrame(conn, MsgModelUpdate, msg); err != nil {
				return err
			}
			cfg.Logf("client %d: round %d done (%d steps, %d epochs)", cfg.ID, spec.Round, steps, spec.Epochs)
		default:
			return fmt.Errorf("transport: client %d unexpected message type %d", cfg.ID, typ)
		}
	}
}
