package transport

import (
	"fmt"
	"net"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/opt"
)

// ClientConfig configures a FedAT training client.
type ClientConfig struct {
	Addr          string
	ID            uint32
	LatencyHintMs uint32
	// ArtificialDelay is added before each upload — the transport-mode
	// equivalent of the paper's injected straggler delays.
	ArtificialDelay time.Duration

	Data *dataset.ClientData
	Net  *nn.Network
	Opt  opt.Optimizer

	Epochs    int
	BatchSize int
	Lambda    float64
	// Codec compresses uploads; defaults to polyline precision 4.
	Codec codec.Codec
	Seed  uint64
	Logf  func(format string, args ...any)
}

// RunClient connects, registers and serves training rounds until the server
// sends a shutdown (returns nil) or the connection fails.
func RunClient(cfg ClientConfig) error {
	if cfg.Data == nil || cfg.Net == nil || cfg.Opt == nil {
		return fmt.Errorf("transport: client needs data, model and optimizer")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	if cfg.Codec == nil {
		cfg.Codec = codec.NewPolyline(4)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", cfg.Addr, err)
	}
	defer conn.Close()

	reg := Register{
		ClientID:      cfg.ID,
		NumSamples:    uint32(cfg.Data.NumTrain()),
		LatencyHintMs: cfg.LatencyHintMs,
	}
	if err := WriteFrame(conn, MsgRegister, reg.Marshal()); err != nil {
		return err
	}

	trainer := fl.NewLocalClient(int(cfg.ID), cfg.Data, cfg.Net, cfg.Opt, cfg.Seed)
	shapes := make([]codec.ShapeInfo, 0, len(cfg.Net.ParamShapes()))
	for _, s := range cfg.Net.ParamShapes() {
		shapes = append(shapes, codec.ShapeInfo{Name: s.Name, Dims: s.Dims})
	}

	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("transport: client %d read: %w", cfg.ID, err)
		}
		switch typ {
		case MsgShutdown:
			cfg.Logf("client %d: shutdown", cfg.ID)
			return nil
		case MsgModelPush:
			round, modelMsg, err := ParseModelPush(payload)
			if err != nil {
				return err
			}
			_, global, err := codec.UnmarshalModel(modelMsg)
			if err != nil {
				return fmt.Errorf("transport: client %d unmarshal: %w", cfg.ID, err)
			}
			w, steps := trainer.TrainLocal(global, fl.LocalConfig{
				Epochs:    cfg.Epochs,
				BatchSize: cfg.BatchSize,
				Lambda:    cfg.Lambda,
				Round:     round,
			})
			if cfg.ArtificialDelay > 0 {
				time.Sleep(cfg.ArtificialDelay)
			}
			up, err := codec.MarshalModel(cfg.Codec, shapes, w)
			if err != nil {
				return err
			}
			msg := ModelUpdate(cfg.ID, uint32(cfg.Data.NumTrain()), round, up)
			if err := WriteFrame(conn, MsgModelUpdate, msg); err != nil {
				return err
			}
			cfg.Logf("client %d: round %d done (%d steps)", cfg.ID, round, steps)
		default:
			return fmt.Errorf("transport: client %d unexpected message type %d", cfg.ID, typ)
		}
	}
}
