package transport

import (
	"sync"
	"time"

	"repro/internal/simnet"
)

// rtClock implements simnet.Clock on the wall clock: Now is seconds since
// construction, At schedules callbacks in real time, and Run executes every
// callback on a single goroutine — the same serialization discipline the
// discrete-event simulator gives the engine, so pacer code written once
// runs on both timelines.
//
// Dispatches that will post a callback later register themselves with
// hold/release; Run returns only when the queue is empty AND no such work
// is outstanding (or Stop is called).
type rtClock struct {
	start time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	holds   int // in-flight work that will post a callback when it resolves
	stopped bool
}

var _ simnet.Clock = (*rtClock)(nil)

func newRTClock() *rtClock {
	c := &rtClock{start: time.Now()}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns wall-clock seconds since the clock was created.
func (c *rtClock) Now() float64 { return time.Since(c.start).Seconds() }

// post enqueues fn for the Run goroutine. Posts after Stop are discarded —
// a late delivery from an abandoned dispatch must not resurrect the loop.
func (c *rtClock) post(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.queue = append(c.queue, fn)
	c.cond.Signal()
}

// hold marks one unit of in-flight work; release retires it.
func (c *rtClock) hold() {
	c.mu.Lock()
	c.holds++
	c.mu.Unlock()
}

func (c *rtClock) release() {
	c.mu.Lock()
	c.holds--
	c.cond.Broadcast()
	c.mu.Unlock()
}

// At schedules fn at absolute time t (seconds on this clock). Times at or
// before now run as soon as the loop is free — the common case, since round
// completion stamps are in the past by the time results are delivered.
func (c *rtClock) At(t float64, fn func()) {
	d := time.Duration((t - c.Now()) * float64(time.Second))
	if d <= 0 {
		c.post(fn)
		return
	}
	c.hold()
	time.AfterFunc(d, func() {
		c.post(fn)
		c.release()
	})
}

// Run executes callbacks until Stop is called or the timeline drains.
func (c *rtClock) Run() {
	for {
		c.mu.Lock()
		for !c.stopped && len(c.queue) == 0 && c.holds > 0 {
			c.cond.Wait()
		}
		if c.stopped || len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		fn := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		fn()
	}
}

// Stop halts the loop; queued and future posts are discarded.
func (c *rtClock) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.queue = nil
	c.cond.Broadcast()
	c.mu.Unlock()
}

// drain blocks until no in-flight work remains — used at shutdown so
// collector goroutines finish reading their last responses before the
// server closes the connections, letting clients exit cleanly.
func (c *rtClock) drain() {
	c.mu.Lock()
	for c.holds > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}
