package transport

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/tiering"
)

// liveFabric implements fl.Fabric over the server's registered TCP
// connections: Dispatch ships the global model to a cohort and collects the
// trained responses concurrently, the rtClock is the timeline, and the
// latency partition comes from registration hints. The engine goroutine
// (the clock loop) is the only one that touches fl engine state; collector
// goroutines hand results back through the clock's queue.
type liveFabric struct {
	*rtClock
	s *Server
}

var _ fl.Fabric = (*liveFabric)(nil)

func (f *liveFabric) Dataset() string { return f.s.cfg.Dataset }
func (f *liveFabric) NumClients() int { return f.s.cfg.NumClients }

// SampleCount reports the size the client declared at registration; it
// survives a disconnect so update rules keyed on n_k stay consistent.
func (f *liveFabric) SampleCount(id int) int { return int(f.s.regs[id].NumSamples) }

// Available means "still connected": a live client has no simulated drop
// schedule, it is available until its connection goes away.
func (f *liveFabric) Available(id int, _ float64) bool {
	return f.s.client(uint32(id)) != nil
}

// NextAvailable is now for connected clients and +Inf otherwise: the live
// fabric has no rejoin schedule — registration happens once, so a
// disconnected client is gone for the rest of the run.
func (f *liveFabric) NextAvailable(id int, now float64) float64 {
	if f.s.client(uint32(id)) != nil {
		return now
	}
	return math.Inf(1)
}

func (f *liveFabric) InitialWeights() []float64 {
	out := make([]float64, len(f.s.cfg.W0))
	copy(out, f.s.cfg.W0)
	return out
}

func (f *liveFabric) Shapes() []codec.ShapeInfo { return f.s.cfg.Shapes }

// Partition tiers the population by the latency hints clients registered
// with — the live stand-in for the simulator's profiling round. With
// Run.RetierEvery set, this one-shot hint partition is only the starting
// point: the engine re-tiers from MEASURED wall-clock response latencies as
// rounds complete, so a mis-declared hint is corrected by observation.
func (f *liveFabric) Partition(cfg fl.RunConfig) (*tiering.Tiers, error) {
	lat := make([]float64, f.s.cfg.NumClients)
	for id := range lat {
		lat[id] = float64(f.s.regs[id].LatencyHintMs)
	}
	return tiering.Partition(lat, cfg.NumTiers)
}

// Repartition records the engine's runtime re-tiering (observed-latency
// refinement of the hint partition) for operator visibility.
func (f *liveFabric) Repartition(t *tiering.Tiers) {
	sizes := make([]int, t.M())
	for m, members := range t.Members {
		sizes[m] = len(members)
	}
	f.s.cfg.Logf("fed server: re-tiered from measured latencies, tier sizes %v", sizes)
}

// Dispatch pushes the model to every cohort member and spawns one reader
// per connection; when the last response resolves, the results (and their
// byte accounting) are posted back to the clock goroutine. Clients whose
// connection fails mid-round come back Dropped — the live analogue of the
// simulator's unstable clients — and the round proceeds without them.
//
// With a server-side attack regime configured, the deterministic attacker
// subset gets a second payload whose header carries the directive; honest
// members see a directive-free push, so the byte stream they receive is
// identical to an attack-free deployment.
func (f *liveFabric) Dispatch(comm *fl.Comm, cohort []int, now float64, global []float64, lc fl.LocalConfig, deliver func([]fl.TrainResult, error)) {
	msg, err := codec.MarshalModel(f.s.codec, f.s.cfg.Shapes, global)
	if err != nil {
		deliver(nil, fmt.Errorf("transport: marshal model: %w", err))
		return
	}
	spec := PushSpec{
		Round: lc.Round, Epochs: lc.Epochs, Batch: lc.BatchSize, Lambda: lc.Lambda,
		DPClip: lc.DPClip, DPNoise: lc.DPNoise, LRScale: lc.LRScale,
	}
	payload := ModelPush(spec, msg)
	var atkPayload []byte
	if len(f.s.attackers) > 0 {
		aspec := spec
		aspec.Attack = uint8(f.s.cfg.Attack.Kind)
		aspec.AttackScale = f.s.cfg.Attack.Scale
		atkPayload = ModelPush(aspec, msg) // same length as payload: byte accounting unchanged
	}
	downBytes := int64(frameBytes(len(payload)))

	// Top-k uplinks are deltas against the round's push. Reconstructing
	// against the decode of the server's OWN marshaled frame (not `global`,
	// which aliases rule state that may mutate before collection) makes a
	// lossy downlink codec cancel exactly. Computed lazily: runs only if a
	// client actually uplinks top-k this round.
	var (
		refOnce sync.Once
		refVec  []float64
		refErr  error
	)
	pushRef := func() ([]float64, error) {
		refOnce.Do(func() { _, refVec, refErr = codec.UnmarshalModel(msg) })
		return refVec, refErr
	}

	results := make([]fl.TrainResult, len(cohort))
	upBytes := make([]int64, len(cohort))
	pushed := 0
	var wg sync.WaitGroup
	for i, id := range cohort {
		results[i] = fl.TrainResult{Client: id, Dropped: true, Arrive: now}
		cc := f.s.client(uint32(id))
		if cc == nil {
			continue
		}
		p := payload
		if atkPayload != nil && f.s.attackers[id] {
			p = atkPayload
		}
		if err := cc.send(MsgModelPush, p); err != nil {
			f.s.dropClient(cc, err)
			results[i].Arrive = f.Now()
			continue
		}
		pushed++
		wg.Add(1)
		go func(i int, id int, cc *clientConn) {
			defer wg.Done()
			r, up, err := f.collect(cc, lc.Round, pushRef)
			if err != nil {
				f.s.dropClient(cc, err)
				results[i] = fl.TrainResult{Client: id, Dropped: true, Arrive: f.Now()}
				return
			}
			r.Client = id
			results[i] = r
			upBytes[i] = up
		}(i, id, cc)
	}

	f.hold()
	go func() {
		defer f.release()
		wg.Wait()
		f.post(func() {
			// Byte accounting happens on the engine goroutine: comm is not
			// safe for concurrent use.
			comm.CountControl(downBytes*int64(pushed), false)
			for _, up := range upBytes {
				comm.CountControl(up, true)
			}
			deliver(results, nil)
		})
	}()
}

// collect reads one client's trained response for the given round. The
// round timeout bounds the read so a silent peer cannot stall its round
// (and the shutdown drain) forever; hitting it drops the client like any
// other connection failure. pushRef resolves the round's pushed reference
// model, needed to reconstruct a top-k delta uplink.
func (f *liveFabric) collect(cc *clientConn, round uint64, pushRef func() ([]float64, error)) (fl.TrainResult, int64, error) {
	if t := f.s.cfg.RoundTimeout; t > 0 {
		if err := cc.conn.SetReadDeadline(time.Now().Add(t)); err != nil {
			return fl.TrainResult{}, 0, err
		}
	}
	typ, payload, err := ReadFrame(cc.conn)
	if err != nil {
		return fl.TrainResult{}, 0, err
	}
	if typ != MsgModelUpdate {
		return fl.TrainResult{}, 0, fmt.Errorf("transport: client %d sent message type %d mid-round", cc.reg.ClientID, typ)
	}
	_, numSamples, gotRound, model, err := ParseModelUpdate(payload)
	if err != nil {
		return fl.TrainResult{}, 0, err
	}
	if gotRound != round {
		return fl.TrainResult{}, 0, fmt.Errorf("transport: client %d answered round %d, want %d", cc.reg.ClientID, gotRound, round)
	}
	if numSamples == 0 {
		return fl.TrainResult{}, 0, fmt.Errorf("transport: client %d update with zero samples", cc.reg.ClientID)
	}
	_, w, err := codec.UnmarshalModel(model)
	if err != nil {
		return fl.TrainResult{}, 0, err
	}
	if codec.IsTopKMessage(model) {
		ref, err := pushRef()
		if err != nil {
			return fl.TrainResult{}, 0, err
		}
		if len(w) != len(ref) {
			return fl.TrainResult{}, 0, fmt.Errorf("transport: client %d top-k uplink carries %d weights, want %d", cc.reg.ClientID, len(w), len(ref))
		}
		for i := range w {
			w[i] += ref[i]
		}
	}
	return fl.TrainResult{
		Weights: w,
		N:       int(numSamples),
		Arrive:  f.Now(),
	}, int64(frameBytes(len(payload))), nil
}

// Probe tallies the control traffic of a bookkeeping sweep (model down,
// small reply up, per client). The live fabric performs no extra network
// round-trip for it — the cost model keeps byte totals comparable with the
// simulator's — and the sweep completes immediately on the wall clock.
func (f *liveFabric) Probe(comm *fl.Comm, ids []int, now float64, w []float64, replyBytes int) (float64, error) {
	if len(ids) == 0 {
		return now, nil
	}
	msg, err := codec.MarshalModel(f.s.codec, f.s.cfg.Shapes, w)
	if err != nil {
		return 0, fmt.Errorf("transport: marshal model: %w", err)
	}
	size := int64(frameBytes(len(msg)))
	comm.CountControl(size*int64(len(ids)), false)
	comm.CountControl(int64(replyBytes)*int64(len(ids)), true)
	return now, nil
}

// Evaluate runs the server-side evaluation harness over the mirrored
// federation, when the operator provided one (cmd/fedserver always does).
func (f *liveFabric) Evaluate(w []float64) (fl.Result, bool) {
	if f.s.cfg.Eval == nil {
		return fl.Result{}, false
	}
	return f.s.cfg.Eval.Evaluate(w), true
}

func (f *liveFabric) EvaluateSubset(w []float64, ids []int) float64 {
	if f.s.cfg.Eval == nil {
		return 0
	}
	return f.s.cfg.Eval.EvaluateSubset(w, ids)
}

// frameBytes is the on-wire size of a frame with the given payload length.
func frameBytes(payloadLen int) int { return 5 + payloadLen }
