package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// runLiveEdge deploys one edge server (its engine carrying the given
// uplink as a Syncer) plus lf.n in-process leaf clients, and returns the
// edge's run record and final model.
func (lf *liveFederation) runLiveEdge(t *testing.T, method fl.Method, cfg fl.RunConfig, up *EdgeUplink) (*metrics.Run, []float64) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: lf.n,
		Method:     method,
		Run:        cfg,
		Shapes:     lf.shapes,
		W0:         lf.factory(cfg.Seed).WeightsCopy(),
		Dataset:    lf.fed.Name,
		Observers:  []fl.Observer{up},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, lf.n)
	for i := 0; i < lf.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = RunClient(ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Codec: cfg.Codec, Seed: cfg.Seed,
			})
		}(i)
	}

	type outcome struct {
		run   *metrics.Run
		final []float64
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		run, final, err := srv.Run()
		done <- outcome{run, final, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("edge server did not finish in time")
	}
	wg.Wait()
	if out.err != nil {
		t.Fatalf("edge server error: %v", out.err)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("leaf client %d error: %v", i, err)
		}
	}
	return out.run, out.final
}

// TestLiveEdgeMatchesSimulated extends the cross-fabric contract one layer
// up: a single-edge hierarchy over real TCP — root process, edge server,
// leaf clients — produces bit-identical final weights to the flat
// in-process simulator run, and the root's merged model is bit-identical
// to the edge's (the raw uplink is lossless and a 1-edge cloud is a pure
// pass-through).
func TestLiveEdgeMatchesSimulated(t *testing.T) {
	const n = 6
	seed := uint64(13)
	lf := newLiveFederation(t, n, 0, seed)
	cfg := liveCfg(seed)
	cfg.Rounds = 3
	cfg.Codec = codec.NewPolyline(4)
	w0 := lf.factory(cfg.Seed).WeightsCopy()

	// Flat simulated run.
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{NumClients: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	env, err := fl.NewEnv(lf.fed, cluster, lf.factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var simFinal []float64
	if _, err := fl.Methods["fedavg"].Run(env, captureFinal(&simFinal)); err != nil {
		t.Fatal(err)
	}

	// Live hierarchy: root ← edge ← leaf clients.
	root, err := NewRoot(RootConfig{
		Addr: "127.0.0.1:0", Edges: 1,
		W0: tensor.Copy(w0), Shapes: lf.shapes,
		Dataset: lf.fed.Name, Method: "fedavg",
	})
	if err != nil {
		t.Fatal(err)
	}
	type rootOut struct {
		run   *metrics.Run
		final []float64
		err   error
	}
	rootDone := make(chan rootOut, 1)
	go func() {
		run, final, err := root.Run()
		rootDone <- rootOut{run, final, err}
	}()

	up, err := DialUplink(UplinkConfig{
		Root: root.Addr(), EdgeID: 0, NumClients: n,
		W0: tensor.Copy(w0), Shapes: lf.shapes,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, liveFinal := lf.runLiveEdge(t, fl.Methods["fedavg"], cfg, up)
	healthy := !up.Degraded() // sample before Close tears the connection down
	up.Close()                // edge engine done; root sees the departure and finishes

	var ro rootOut
	select {
	case ro = <-rootDone:
	case <-time.After(60 * time.Second):
		t.Fatal("root did not finish in time")
	}
	if ro.err != nil {
		t.Fatalf("root error: %v", ro.err)
	}

	if len(simFinal) == 0 || len(simFinal) != len(liveFinal) {
		t.Fatalf("weight vectors missing or mismatched: sim=%d live=%d", len(simFinal), len(liveFinal))
	}
	for i := range simFinal {
		if simFinal[i] != liveFinal[i] {
			t.Fatalf("weight %d diverged between flat sim and live edge: %v vs %v", i, simFinal[i], liveFinal[i])
		}
	}
	for i := range liveFinal {
		if ro.final[i] != liveFinal[i] {
			t.Fatalf("weight %d diverged between edge and root: %v vs %v", i, liveFinal[i], ro.final[i])
		}
	}
	if ro.run.EdgeFolds != cfg.Rounds {
		t.Fatalf("root folded %d times, want one per edge fold = %d", ro.run.EdgeFolds, cfg.Rounds)
	}
	if ro.run.UpBytes <= 0 {
		t.Fatal("root recorded no uplink traffic")
	}
	if !healthy {
		t.Fatal("uplink degraded during a healthy run")
	}
}

// scriptedEdge is a raw protocol driver standing in for an edge
// aggregator: it registers, then pushes synthetic models on demand.
type scriptedEdge struct {
	t    *testing.T
	conn *clientConn
	ref  []float64
	seq  uint64

	mu        sync.Mutex
	adoptions int
	shutdown  bool
}

func dialScriptedEdge(t *testing.T, addr string, id int, w0 []float64) *scriptedEdge {
	t.Helper()
	conn, err := dialRetry(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := Register{ClientID: uint32(id), NumSamples: 1}
	if err := WriteFrame(conn, MsgRegister, reg.Marshal()); err != nil {
		t.Fatal(err)
	}
	se := &scriptedEdge{
		t:    t,
		conn: &clientConn{reg: reg, conn: conn},
		ref:  tensor.Copy(w0),
	}
	go func() {
		for {
			typ, _, err := ReadFrame(conn)
			if err != nil {
				return
			}
			se.mu.Lock()
			switch typ {
			case MsgModelPush:
				se.adoptions++
			case MsgShutdown:
				se.shutdown = true
			}
			se.mu.Unlock()
		}
	}()
	return se
}

func (se *scriptedEdge) push(shapes []codec.ShapeInfo, w []float64) {
	se.t.Helper()
	msg, err := edge.EncodeUplink(codec.Raw{}, shapes, se.ref, w)
	if err != nil {
		se.t.Error(err)
		return
	}
	se.seq++
	if err := se.conn.send(MsgModelUpdate, ModelUpdate(se.conn.reg.ClientID, 0, se.seq, msg)); err != nil {
		se.t.Logf("scripted edge push: %v", err)
	}
}

func (se *scriptedEdge) done() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.shutdown
}

// TestRootSurvivesEdgeDisconnect is the live failure mode: one of two
// edges dies mid-run. The root retires it — completing the sync barrier
// for the survivor if the dead edge was the holdout — and keeps folding
// the surviving edge until the cloud budget completes.
func TestRootSurvivesEdgeDisconnect(t *testing.T) {
	w0 := []float64{1, 2, 3, 4}
	shapes := []codec.ShapeInfo{{Name: "w", Dims: []int{4}}}
	const budget = 4

	root, err := NewRoot(RootConfig{
		Addr: "127.0.0.1:0", Edges: 2, Rounds: budget,
		Fold: edge.FoldSync, W0: w0, Shapes: shapes,
	})
	if err != nil {
		t.Fatal(err)
	}
	type rootOut struct {
		run *metrics.Run
		err error
	}
	rootDone := make(chan rootOut, 1)
	go func() {
		run, _, err := root.Run()
		rootDone <- rootOut{run, err}
	}()

	survivor := dialScriptedEdge(t, root.Addr(), 0, w0)
	victim := dialScriptedEdge(t, root.Addr(), 1, w0)

	// Round 1: both edges push; the barrier completes and the cloud folds.
	survivor.push(shapes, []float64{2, 2, 2, 2})
	victim.push(shapes, []float64{4, 4, 4, 4})

	// Round 2: the survivor pushes, then the victim dies mid-fold — the
	// root must retire it, fold the survivor alone, and keep going.
	survivor.push(shapes, []float64{3, 3, 3, 3})
	victim.conn.conn.Close()

	// The survivor keeps pushing until the root completes its budget.
	deadline := time.After(30 * time.Second)
	for !survivor.done() {
		select {
		case <-deadline:
			t.Fatal("root never completed its fold budget on the survivor alone")
		case <-time.After(20 * time.Millisecond):
			survivor.push(shapes, []float64{5, 5, 5, 5})
		}
	}

	var ro rootOut
	select {
	case ro = <-rootDone:
	case <-time.After(30 * time.Second):
		t.Fatal("root did not return after its budget")
	}
	if ro.err != nil {
		t.Fatalf("root error: %v", ro.err)
	}
	if ro.run.EdgeFolds < budget {
		t.Fatalf("root folded %d times, want at least the %d budget", ro.run.EdgeFolds, budget)
	}
	survivor.mu.Lock()
	adoptions := survivor.adoptions
	survivor.mu.Unlock()
	if adoptions == 0 {
		t.Fatal("survivor never received an adoption broadcast")
	}
	survivor.conn.conn.Close()
}

// TestUplinkDegradesToStandalone: the root completes its fold budget and
// shuts the uplink down while the edge engine still has rounds to run. The
// edge degrades to a flat standalone server and completes its own budget.
func TestUplinkDegradesToStandalone(t *testing.T) {
	const n = 4
	seed := uint64(29)
	lf := newLiveFederation(t, n, 0, seed)
	cfg := liveCfg(seed)
	cfg.Rounds = 4
	w0 := lf.factory(cfg.Seed).WeightsCopy()

	root, err := NewRoot(RootConfig{
		Addr: "127.0.0.1:0", Edges: 1, Rounds: 1, // budget far below the edge's
		W0: tensor.Copy(w0), Shapes: lf.shapes,
	})
	if err != nil {
		t.Fatal(err)
	}
	rootDone := make(chan error, 1)
	go func() {
		_, _, err := root.Run()
		rootDone <- err
	}()

	up, err := DialUplink(UplinkConfig{
		Root: root.Addr(), EdgeID: 0, NumClients: n,
		W0: tensor.Copy(w0), Shapes: lf.shapes,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, final := lf.runLiveEdge(t, fl.Methods["fedavg"], cfg, up)
	up.Close()

	if err := <-rootDone; err != nil {
		t.Fatalf("root error: %v", err)
	}
	if run.GlobalRounds < cfg.Rounds {
		t.Fatalf("degraded edge completed only %d/%d rounds", run.GlobalRounds, cfg.Rounds)
	}
	if !moved(w0, final) {
		t.Fatal("degraded edge's model never moved")
	}
	if !up.Degraded() {
		t.Fatal("uplink should have degraded after the root's shutdown")
	}
}
