// Package transport is the live execution fabric: a TCP message protocol,
// a server that drives the internal/fl method engine over real
// connections, and the client loop that trains on push. The server itself
// contains no training loop — it implements fl.Fabric (dispatch cohorts,
// observe arrivals, wall-clock timeline) and hands the loop to the same
// pluggable policy engine the simulator runs, so any registry method or
// -compose variant deploys here unchanged and simulation results describe
// the deployed system.
//
// Wire format: every message is a length-prefixed frame
//
//	[len u32][type u8][payload]
//
// with payloads encoded little-endian. Model payloads use the codec
// package's self-describing marshal format, so the compression codec is
// negotiated implicitly per message (§4.3's marshalling).
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Message types.
const (
	// MsgRegister (client→server): clientID u32, numSamples u32,
	// latencyHintMs u32.
	MsgRegister byte = iota + 1
	// MsgModelPush (server→client): a PushSpec header (round, epochs,
	// batch, lambda, attack directive, DP stage, LR scale) followed by the
	// model message. The local-training settings ride with the push because
	// the engine's method composition decides them per round (FedProx's
	// variable epochs, a method's proximal λ, the staleness-adaptive LR) —
	// clients execute whatever local step the server's policy ships.
	MsgModelPush
	// MsgModelUpdate (client→server): clientID u32, numSamples u32,
	// round u64, model message.
	MsgModelUpdate
	// MsgShutdown (server→client): empty payload; the client exits.
	MsgShutdown
)

// maxFrame bounds a frame so a corrupt peer cannot make us allocate
// unboundedly.
const maxFrame = 64 << 20

// WriteFrame sends one message.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	return nil
}

// ReadFrame receives one message.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: invalid frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: read payload: %w", err)
	}
	return hdr[4], payload, nil
}

// Register is the client hello.
type Register struct {
	ClientID      uint32
	NumSamples    uint32
	LatencyHintMs uint32
}

// Marshal encodes the register payload.
func (m Register) Marshal() []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint32(out[0:], m.ClientID)
	binary.LittleEndian.PutUint32(out[4:], m.NumSamples)
	binary.LittleEndian.PutUint32(out[8:], m.LatencyHintMs)
	return out
}

// ParseRegister decodes a register payload.
func ParseRegister(p []byte) (Register, error) {
	if len(p) != 12 {
		return Register{}, fmt.Errorf("transport: register payload %d bytes, want 12", len(p))
	}
	return Register{
		ClientID:      binary.LittleEndian.Uint32(p[0:]),
		NumSamples:    binary.LittleEndian.Uint32(p[4:]),
		LatencyHintMs: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// PushSpec is the per-round local-training instruction carried by a model
// push: which fixed mini-batch schedule to use (Round) and how to train
// (Epochs, Batch, Lambda, and the DP stage — mirroring fl.LocalConfig),
// plus an optional attack directive (Attack, AttackScale) for simulated-
// adversary deployments: the server marks the deterministic attacker
// subset of the cohort and ships them a directive header; honest members
// get Attack 0. A fedclient may also force an attack locally, which
// overrides the directive.
type PushSpec struct {
	Round  uint64
	Epochs int
	Batch  int
	Lambda float64
	// Attack is the wire value of a robust.Kind (0 = honest).
	Attack      uint8
	AttackScale float64
	DPClip      float64
	DPNoise     float64
	// LRScale is the staleness-adaptive learning-rate factor (0 = stage
	// off), mirroring fl.LocalConfig.LRScale so live rounds train with
	// exactly the scale the engine computed.
	LRScale float64
}

// pushHeaderLen is the fixed ModelPush header: round u64, epochs u32,
// batch u32, lambda f64, attack u8, attackScale f64, dpClip f64,
// dpNoise f64, lrScale f64.
const pushHeaderLen = 8 + 4 + 4 + 8 + 1 + 8 + 8 + 8 + 8

// ModelPush frames a global model plus its local-training instruction.
func ModelPush(spec PushSpec, model []byte) []byte {
	out := make([]byte, pushHeaderLen+len(model))
	binary.LittleEndian.PutUint64(out[0:], spec.Round)
	binary.LittleEndian.PutUint32(out[8:], uint32(spec.Epochs))
	binary.LittleEndian.PutUint32(out[12:], uint32(spec.Batch))
	binary.LittleEndian.PutUint64(out[16:], math.Float64bits(spec.Lambda))
	out[24] = spec.Attack
	binary.LittleEndian.PutUint64(out[25:], math.Float64bits(spec.AttackScale))
	binary.LittleEndian.PutUint64(out[33:], math.Float64bits(spec.DPClip))
	binary.LittleEndian.PutUint64(out[41:], math.Float64bits(spec.DPNoise))
	binary.LittleEndian.PutUint64(out[49:], math.Float64bits(spec.LRScale))
	copy(out[pushHeaderLen:], model)
	return out
}

// ParseModelPush splits a push payload.
func ParseModelPush(p []byte) (spec PushSpec, model []byte, err error) {
	if len(p) < pushHeaderLen {
		return PushSpec{}, nil, fmt.Errorf("transport: model push payload too short")
	}
	spec = PushSpec{
		Round:       binary.LittleEndian.Uint64(p[0:]),
		Epochs:      int(binary.LittleEndian.Uint32(p[8:])),
		Batch:       int(binary.LittleEndian.Uint32(p[12:])),
		Lambda:      math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
		Attack:      p[24],
		AttackScale: math.Float64frombits(binary.LittleEndian.Uint64(p[25:])),
		DPClip:      math.Float64frombits(binary.LittleEndian.Uint64(p[33:])),
		DPNoise:     math.Float64frombits(binary.LittleEndian.Uint64(p[41:])),
		LRScale:     math.Float64frombits(binary.LittleEndian.Uint64(p[49:])),
	}
	return spec, p[pushHeaderLen:], nil
}

// ModelUpdate frames a client's trained model.
func ModelUpdate(clientID, numSamples uint32, round uint64, model []byte) []byte {
	out := make([]byte, 16+len(model))
	binary.LittleEndian.PutUint32(out[0:], clientID)
	binary.LittleEndian.PutUint32(out[4:], numSamples)
	binary.LittleEndian.PutUint64(out[8:], round)
	copy(out[16:], model)
	return out
}

// ParseModelUpdate splits an update payload.
func ParseModelUpdate(p []byte) (clientID, numSamples uint32, round uint64, model []byte, err error) {
	if len(p) < 16 {
		return 0, 0, 0, nil, fmt.Errorf("transport: model update payload too short")
	}
	return binary.LittleEndian.Uint32(p[0:]),
		binary.LittleEndian.Uint32(p[4:]),
		binary.LittleEndian.Uint64(p[8:]),
		p[16:], nil
}
