// Package transport is the real networked deployment of FedAT: a TCP
// message protocol, the server loop that drives per-tier synchronous rounds
// over live connections, and the client loop that trains on push. It shares
// the aggregation core (internal/core) and the client trainer (internal/fl)
// with the simulator, so results produced in simulation describe the same
// system that deploys here.
//
// Wire format: every message is a length-prefixed frame
//
//	[len u32][type u8][payload]
//
// with payloads encoded little-endian. Model payloads use the codec
// package's self-describing marshal format, so the compression codec is
// negotiated implicitly per message (§4.3's marshalling).
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message types.
const (
	// MsgRegister (client→server): clientID u32, numSamples u32,
	// latencyHintMs u32.
	MsgRegister byte = iota + 1
	// MsgModelPush (server→client): round u64, model message.
	MsgModelPush
	// MsgModelUpdate (client→server): clientID u32, numSamples u32,
	// round u64, model message.
	MsgModelUpdate
	// MsgShutdown (server→client): empty payload; the client exits.
	MsgShutdown
)

// maxFrame bounds a frame so a corrupt peer cannot make us allocate
// unboundedly.
const maxFrame = 64 << 20

// WriteFrame sends one message.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write payload: %w", err)
	}
	return nil
}

// ReadFrame receives one message.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("transport: invalid frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("transport: read payload: %w", err)
	}
	return hdr[4], payload, nil
}

// Register is the client hello.
type Register struct {
	ClientID      uint32
	NumSamples    uint32
	LatencyHintMs uint32
}

// Marshal encodes the register payload.
func (m Register) Marshal() []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint32(out[0:], m.ClientID)
	binary.LittleEndian.PutUint32(out[4:], m.NumSamples)
	binary.LittleEndian.PutUint32(out[8:], m.LatencyHintMs)
	return out
}

// ParseRegister decodes a register payload.
func ParseRegister(p []byte) (Register, error) {
	if len(p) != 12 {
		return Register{}, fmt.Errorf("transport: register payload %d bytes, want 12", len(p))
	}
	return Register{
		ClientID:      binary.LittleEndian.Uint32(p[0:]),
		NumSamples:    binary.LittleEndian.Uint32(p[4:]),
		LatencyHintMs: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// ModelPush frames a global model for a round.
func ModelPush(round uint64, model []byte) []byte {
	out := make([]byte, 8+len(model))
	binary.LittleEndian.PutUint64(out, round)
	copy(out[8:], model)
	return out
}

// ParseModelPush splits a push payload.
func ParseModelPush(p []byte) (round uint64, model []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("transport: model push payload too short")
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// ModelUpdate frames a client's trained model.
func ModelUpdate(clientID, numSamples uint32, round uint64, model []byte) []byte {
	out := make([]byte, 16+len(model))
	binary.LittleEndian.PutUint32(out[0:], clientID)
	binary.LittleEndian.PutUint32(out[4:], numSamples)
	binary.LittleEndian.PutUint64(out[8:], round)
	copy(out[16:], model)
	return out
}

// ParseModelUpdate splits an update payload.
func ParseModelUpdate(p []byte) (clientID, numSamples uint32, round uint64, model []byte, err error) {
	if len(p) < 16 {
		return 0, 0, 0, nil, fmt.Errorf("transport: model update payload too short")
	}
	return binary.LittleEndian.Uint32(p[0:]),
		binary.LittleEndian.Uint32(p[4:]),
		binary.LittleEndian.Uint64(p[8:]),
		p[16:], nil
}
