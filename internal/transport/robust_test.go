package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/robust"
	"repro/internal/simnet"
)

// runLiveRobust deploys a method over loopback TCP with the adversarial
// knobs exposed: a server-side attack regime and per-client config hooks
// (forced attacks, DP overrides, top-k uplink). All clients are honest
// unless the server directs or clientCfg forces otherwise.
func (lf *liveFederation) runLiveRobust(t *testing.T, method fl.Method, cfg fl.RunConfig, attack robust.Attack, attackFrac float64, clientCfg func(id int, cc *ClientConfig)) (*metrics.Run, []float64) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: lf.n,
		Method:     method,
		Run:        cfg,
		Shapes:     lf.shapes,
		W0:         lf.factory(cfg.Seed).WeightsCopy(),
		Dataset:    lf.fed.Name,
		Attack:     attack,
		AttackFrac: attackFrac,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, lf.n)
	for i := 0; i < lf.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := ClientConfig{
				Addr: srv.Addr(), ID: uint32(i), LatencyHintMs: 10,
				Data: lf.fed.Clients[i], Net: lf.factory(cfg.Seed),
				Opt: opt.NewAdam(cfg.LearningRate), Codec: cfg.Codec, Seed: cfg.Seed,
				// Honest clients still need the class count to execute a
				// server-directed label flip (fedclient always fills this).
				Attack: robust.Attack{Classes: lf.fed.Classes},
			}
			if clientCfg != nil {
				clientCfg(i, &cc)
			}
			clientErrs[i] = RunClient(cc)
		}(i)
	}

	type outcome struct {
		run   *metrics.Run
		final []float64
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		run, final, err := srv.Run()
		done <- outcome{run, final, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("server did not finish in time")
	}
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server error: %v", out.err)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d error: %v", i, err)
		}
	}
	return out.run, out.final
}

// TestLiveAttackAndDPMatchSimulated is the adversarial cross-fabric
// contract: a sync-paced run with a server-directed label-flip regime AND a
// DP clip+noise stage produces bit-identical final weights over real TCP
// and in the simulator. The attacker subset, the flipped batches, and the
// per-round noise draws must all resolve identically on both fabrics.
func TestLiveAttackAndDPMatchSimulated(t *testing.T) {
	const n = 6
	seed := uint64(13)
	lf := newLiveFederation(t, n, 0, seed)
	cfg := liveCfg(seed)
	cfg.Rounds = 3
	cfg.Codec = codec.NewPolyline(4)
	cfg.DPClip = 1.5
	cfg.DPNoise = 0.3

	// Simulated run: same federation, same attack regime on the same subset.
	cluster, err := simnet.NewCluster(simnet.ClusterConfig{
		NumClients: n,
		Behavior:   simnet.BehaviorConfig{AttackKind: "labelflip", AttackFrac: 0.5},
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := fl.NewEnv(lf.fed, cluster, lf.factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var simFinal []float64
	if _, err := fl.Methods["fedavg"].Run(env, captureFinal(&simFinal)); err != nil {
		t.Fatal(err)
	}

	// Live run: the server marks the attacker subset per push.
	_, liveFinal := lf.runLiveRobust(t, fl.Methods["fedavg"], cfg,
		robust.Attack{Kind: robust.LabelFlip}, 0.5, nil)

	if len(simFinal) == 0 || len(simFinal) != len(liveFinal) {
		t.Fatalf("weight vectors missing or mismatched: sim=%d live=%d", len(simFinal), len(liveFinal))
	}
	for i := range simFinal {
		if simFinal[i] != liveFinal[i] {
			t.Fatalf("weight %d diverged between fabrics under attack+DP: sim=%v live=%v", i, simFinal[i], liveFinal[i])
		}
	}
}

// TestLiveRobustFoldOverLoopback deploys a composed robust-fold method —
// plain FedAvg pacing with a coordinate-median fold — against a
// server-directed scaled-update adversary. The run must complete and learn
// something (the model moves) despite a third of the population shipping
// 10x-amplified deltas.
func TestLiveRobustFoldOverLoopback(t *testing.T) {
	m, err := fl.Compose("fedavg", "", "", "median", "fedavg+median")
	if err != nil {
		t.Fatal(err)
	}
	lf := newLiveFederation(t, 6, 0, 23)
	cfg := liveCfg(17)
	cfg.Rounds = 3
	cfg.ClientsPerRound = 4
	run, final := lf.runLiveRobust(t, m, cfg, robust.Attack{Kind: robust.ScaleUpdate}, 0.34, nil)
	if run.GlobalRounds < cfg.Rounds {
		t.Fatalf("only %d global rounds completed", run.GlobalRounds)
	}
	if !moved(lf.factory(cfg.Seed).WeightsCopy(), final) {
		t.Fatal("global model never moved")
	}
}

// TestLiveTopKUplink puts the PR 7 top-k codec on the flat client→server
// leg: every client uplinks a sparsified delta against the round's push,
// the server reconstructs statelessly, and the upload stream shrinks
// relative to the dense codec while training still completes.
func TestLiveTopKUplink(t *testing.T) {
	lf := newLiveFederation(t, 4, 0, 43)
	cfg := liveCfg(9)
	cfg.Rounds = 3
	cfg.ClientsPerRound = 4

	dense, denseFinal := lf.runLiveRobust(t, fl.Methods["fedavg"], cfg, robust.Attack{}, 0, nil)
	sparse, sparseFinal := lf.runLiveRobust(t, fl.Methods["fedavg"], cfg, robust.Attack{}, 0,
		func(id int, cc *ClientConfig) { cc.UplinkTopKFrac = 0.1 })

	if sparse.GlobalRounds < cfg.Rounds {
		t.Fatalf("only %d global rounds completed with top-k uplink", sparse.GlobalRounds)
	}
	if !moved(lf.factory(cfg.Seed).WeightsCopy(), sparseFinal) {
		t.Fatal("global model never moved under top-k uplink")
	}
	if sparse.UpBytes >= dense.UpBytes {
		t.Fatalf("top-k uplink did not shrink uploads: %d >= %d bytes", sparse.UpBytes, dense.UpBytes)
	}
	// Lossy compression must actually change the trajectory (it is not a
	// no-op path).
	if !moved(denseFinal, sparseFinal) {
		t.Fatal("top-k uplink produced a bit-identical run — suspicious pass-through")
	}
}

// TestLocalAttackOverridesDirective: a fedclient-forced attack wins over
// the server's honest (directive-free) push — the run differs from an
// all-honest deployment with the same seed.
func TestLocalAttackOverridesDirective(t *testing.T) {
	lf := newLiveFederation(t, 4, 0, 53)
	cfg := liveCfg(11)
	cfg.Rounds = 2
	cfg.ClientsPerRound = 4

	_, honest := lf.runLiveRobust(t, fl.Methods["fedavg"], cfg, robust.Attack{}, 0, nil)
	_, forced := lf.runLiveRobust(t, fl.Methods["fedavg"], cfg, robust.Attack{}, 0,
		func(id int, cc *ClientConfig) {
			if id == 0 {
				cc.Attack = robust.Attack{Kind: robust.ScaleUpdate, Scale: 5, Classes: lf.fed.Classes}
			}
		})
	if !moved(honest, forced) {
		t.Fatal("locally forced attack left the run unchanged")
	}
}
