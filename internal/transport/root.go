package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/metrics"
)

// RootConfig configures the cloud tier of a live hierarchy: the root
// accepts K edge aggregators (each a full fedserver running the method
// engine over its own clients), folds their pushed models with the same
// edge.Cloud state machine the simulator uses, and broadcasts the merged
// model back for adoption.
type RootConfig struct {
	// Addr to listen on; port 0 binds an ephemeral port (see Addr).
	Addr string
	// Edges is K; edge aggregators register with ids 0..K-1.
	Edges int
	// Rounds is the cloud fold budget: after this many cloud folds the root
	// shuts the hierarchy down. 0 runs until every edge departs.
	Rounds int
	// Fold, Buffer, StaleExp select the edge→cloud policy (edge.FoldSync /
	// edge.FoldAsync semantics).
	Fold     string
	Buffer   int
	StaleExp float64
	// TopKFrac enables the top-k delta uplink; it must match the edges'
	// -uplink-topk, since the shared per-edge reference advances in
	// lockstep on both ends.
	TopKFrac float64
	// W0 is the initial model (the shared reference's base); Shapes its
	// layout. Both must match the edges' (derived from the shared seed).
	W0     []float64
	Shapes []codec.ShapeInfo
	// Eval optionally evaluates the merged model after each EvalEvery-th
	// cloud fold.
	Eval      func(w []float64) (fl.Result, bool)
	EvalEvery int
	// Dataset and Method label the cloud run record.
	Dataset string
	Method  string
	Logf    func(format string, args ...any)
}

// RootServer drives the cloud fold loop over live edge connections. Unlike
// Server it runs no method engine — the engines run on the edges; the root
// is the edge.Cloud overlay plus a wire.
type RootServer struct {
	cfg      RootConfig
	cloud    *edge.Cloud
	ln       net.Listener
	start    time.Time
	stopping atomic.Bool
	done     chan struct{}
	stopOnce sync.Once

	mu    sync.Mutex
	edges map[uint32]*clientConn
}

// NewRoot binds the listener; call Run to serve.
func NewRoot(cfg RootConfig) (*RootServer, error) {
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("transport: root needs at least one edge")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cloud, err := edge.NewCloud(edge.CloudConfig{
		Edges:     cfg.Edges,
		Fold:      cfg.Fold,
		Buffer:    cfg.Buffer,
		StaleExp:  cfg.StaleExp,
		W0:        cfg.W0,
		Shapes:    cfg.Shapes,
		TopKFrac:  cfg.TopKFrac,
		Eval:      cfg.Eval,
		EvalEvery: cfg.EvalEvery,
		Dataset:   cfg.Dataset,
		Method:    cfg.Method,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: root listen: %w", err)
	}
	return &RootServer{
		cfg:   cfg,
		cloud: cloud,
		ln:    ln,
		done:  make(chan struct{}),
		edges: map[uint32]*clientConn{},
	}, nil
}

// Addr returns the bound listen address.
func (r *RootServer) Addr() string { return r.ln.Addr().String() }

// now is the root's timeline: wall seconds since Run started.
func (r *RootServer) now() float64 { return time.Since(r.start).Seconds() }

// Run accepts the K edge registrations, then folds pushes until the cloud
// round budget is met or every edge has departed. It returns the cloud run
// record and the final merged model.
func (r *RootServer) Run() (*metrics.Run, []float64, error) {
	defer r.ln.Close()
	r.start = time.Now()
	if err := r.acceptEdges(); err != nil {
		r.shutdownEdges()
		return nil, nil, err
	}
	r.cfg.Logf("fed root: %d edges registered; folding %s (budget %d)", r.cfg.Edges, r.cloudFold(), r.cfg.Rounds)

	var wg sync.WaitGroup
	r.mu.Lock()
	for _, ec := range r.edges {
		wg.Add(1)
		go func(ec *clientConn) {
			defer wg.Done()
			r.serveEdge(ec)
		}(ec)
	}
	r.mu.Unlock()

	<-r.done
	r.shutdownEdges()
	wg.Wait()
	return r.cloud.Record(), r.cloud.Global(), nil
}

func (r *RootServer) cloudFold() string {
	if r.cfg.Fold == "" {
		return edge.FoldSync
	}
	return r.cfg.Fold
}

// Shutdown stops the root from another goroutine.
func (r *RootServer) Shutdown() {
	r.stopping.Store(true)
	r.ln.Close()
	r.finish()
	r.mu.Lock()
	now := time.Now()
	for _, ec := range r.edges {
		ec.conn.SetReadDeadline(now)
	}
	r.mu.Unlock()
}

func (r *RootServer) finish() {
	// Stop before signalling: readers that hit connection errors during
	// teardown must not retire edges (which could mutate the record with a
	// post-budget fold).
	r.stopping.Store(true)
	r.stopOnce.Do(func() { close(r.done) })
}

func (r *RootServer) acceptEdges() error {
	for {
		r.mu.Lock()
		n := len(r.edges)
		r.mu.Unlock()
		if n >= r.cfg.Edges {
			return nil
		}
		conn, err := r.ln.Accept()
		if err != nil {
			if r.stopping.Load() {
				return fmt.Errorf("transport: root shut down during registration (%d/%d edges)", n, r.cfg.Edges)
			}
			return fmt.Errorf("transport: root accept: %w", err)
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil || typ != MsgRegister {
			conn.Close()
			continue
		}
		reg, err := ParseRegister(payload)
		if err != nil {
			conn.Close()
			continue
		}
		if int(reg.ClientID) >= r.cfg.Edges {
			conn.Close()
			return fmt.Errorf("transport: edge id %d out of range [0,%d)", reg.ClientID, r.cfg.Edges)
		}
		r.mu.Lock()
		if _, dup := r.edges[reg.ClientID]; dup {
			r.mu.Unlock()
			conn.Close()
			return fmt.Errorf("transport: duplicate edge id %d", reg.ClientID)
		}
		r.edges[reg.ClientID] = &clientConn{reg: reg, conn: conn}
		r.mu.Unlock()
		r.cfg.Logf("fed root: edge %d registered (%d clients)", reg.ClientID, reg.NumSamples)
	}
}

// serveEdge reads one edge's pushes until its connection dies or the run
// ends. A departing edge retires from the fold barrier — the survivors
// keep folding (and a retirement that completes the sync barrier folds
// immediately inside Retire).
func (r *RootServer) serveEdge(ec *clientConn) {
	id := int(ec.reg.ClientID)
	for {
		typ, payload, err := ReadFrame(ec.conn)
		if err != nil {
			if !r.stopping.Load() {
				r.cfg.Logf("fed root: edge %d departed: %v", id, err)
				before := r.cloud.Epoch()
				r.cloud.Retire(id, r.now())
				r.dropEdge(ec)
				if r.cloud.Epoch() > before {
					// Its departure completed the barrier: the survivors'
					// fold happened inside Retire; broadcast it.
					r.broadcastAdoption()
				}
				r.checkFinished()
			}
			return
		}
		switch typ {
		case MsgModelUpdate:
			edgeID, _, _, model, err := ParseModelUpdate(payload)
			if err != nil || int(edgeID) != id {
				r.cfg.Logf("fed root: edge %d sent a malformed update", id)
				continue
			}
			ev, folded, err := r.cloud.PushWire(id, model, r.now())
			if err != nil {
				r.cfg.Logf("fed root: edge %d push rejected: %v", id, err)
				continue
			}
			if folded {
				r.cfg.Logf("fed root: cloud fold %d (%d members, staleness %.0f)", ev.Round, ev.Members, ev.Staleness)
				r.broadcastAdoption()
				r.checkFinished()
			}
		default:
			r.cfg.Logf("fed root: edge %d sent unexpected message type %d", id, typ)
		}
	}
}

// broadcastAdoption offers every connected edge the merged model it has
// not yet adopted. Adoption rides MsgModelPush with the cloud epoch as the
// round — the edge's uplink uses it to stamp staleness.
func (r *RootServer) broadcastAdoption() {
	r.mu.Lock()
	conns := make([]*clientConn, 0, len(r.edges))
	for _, ec := range r.edges {
		conns = append(conns, ec)
	}
	r.mu.Unlock()
	for _, ec := range conns {
		w, epoch, ok := r.cloud.Adopt(int(ec.reg.ClientID))
		if !ok {
			continue
		}
		model, err := codec.MarshalModel(codec.Raw{}, r.cfg.Shapes, w)
		if err != nil {
			r.cfg.Logf("fed root: marshal adoption: %v", err)
			return
		}
		spec := PushSpec{Round: uint64(epoch), Epochs: r.cloud.Live()}
		if err := ec.send(MsgModelPush, ModelPush(spec, model)); err != nil {
			r.cfg.Logf("fed root: adoption to edge %d: %v", ec.reg.ClientID, err)
		}
	}
}

// checkFinished ends the run when the fold budget is met or no edge is
// left.
func (r *RootServer) checkFinished() {
	if r.cfg.Rounds > 0 && r.cloud.Epoch() >= r.cfg.Rounds {
		r.finish()
		return
	}
	if r.cloud.Live() == 0 {
		r.finish()
	}
}

func (r *RootServer) dropEdge(ec *clientConn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.edges[ec.reg.ClientID]; !ok {
		return
	}
	delete(r.edges, ec.reg.ClientID)
	ec.conn.Close()
}

func (r *RootServer) shutdownEdges() {
	r.stopping.Store(true)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ec := range r.edges {
		if err := ec.send(MsgShutdown, nil); err != nil {
			r.cfg.Logf("fed root: shutdown to edge %d: %v", ec.reg.ClientID, err)
		}
		ec.conn.Close()
	}
}
